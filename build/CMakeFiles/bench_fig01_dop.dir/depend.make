# Empty dependencies file for bench_fig01_dop.
# This may be replaced when dependencies are built.
