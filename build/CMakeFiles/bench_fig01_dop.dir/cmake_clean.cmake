file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_dop.dir/bench/bench_fig01_dop.cc.o"
  "CMakeFiles/bench_fig01_dop.dir/bench/bench_fig01_dop.cc.o.d"
  "bench_fig01_dop"
  "bench_fig01_dop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_dop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
