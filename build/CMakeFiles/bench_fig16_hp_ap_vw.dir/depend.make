# Empty dependencies file for bench_fig16_hp_ap_vw.
# This may be replaced when dependencies are built.
