file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_hp_ap_vw.dir/bench/bench_fig16_hp_ap_vw.cc.o"
  "CMakeFiles/bench_fig16_hp_ap_vw.dir/bench/bench_fig16_hp_ap_vw.cc.o.d"
  "bench_fig16_hp_ap_vw"
  "bench_fig16_hp_ap_vw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_hp_ap_vw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
