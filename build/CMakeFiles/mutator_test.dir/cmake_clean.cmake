file(REMOVE_RECURSE
  "CMakeFiles/mutator_test.dir/tests/mutator_test.cc.o"
  "CMakeFiles/mutator_test.dir/tests/mutator_test.cc.o.d"
  "mutator_test"
  "mutator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
