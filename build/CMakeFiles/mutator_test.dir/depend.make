# Empty dependencies file for mutator_test.
# This may be replaced when dependencies are built.
