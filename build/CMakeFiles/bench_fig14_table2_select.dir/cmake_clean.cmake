file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_table2_select.dir/bench/bench_fig14_table2_select.cc.o"
  "CMakeFiles/bench_fig14_table2_select.dir/bench/bench_fig14_table2_select.cc.o.d"
  "bench_fig14_table2_select"
  "bench_fig14_table2_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_table2_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
