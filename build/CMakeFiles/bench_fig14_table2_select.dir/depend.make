# Empty dependencies file for bench_fig14_table2_select.
# This may be replaced when dependencies are built.
