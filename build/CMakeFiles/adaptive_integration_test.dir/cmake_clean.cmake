file(REMOVE_RECURSE
  "CMakeFiles/adaptive_integration_test.dir/tests/adaptive_integration_test.cc.o"
  "CMakeFiles/adaptive_integration_test.dir/tests/adaptive_integration_test.cc.o.d"
  "adaptive_integration_test"
  "adaptive_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
