# Empty dependencies file for adaptive_integration_test.
# This may be replaced when dependencies are built.
