file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_tpcds.dir/bench/bench_fig17_tpcds.cc.o"
  "CMakeFiles/bench_fig17_tpcds.dir/bench/bench_fig17_tpcds.cc.o.d"
  "bench_fig17_tpcds"
  "bench_fig17_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
