# Empty dependencies file for bench_fig17_tpcds.
# This may be replaced when dependencies are built.
