# Empty dependencies file for example_skew_handling.
# This may be replaced when dependencies are built.
