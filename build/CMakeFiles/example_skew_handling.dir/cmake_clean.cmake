file(REMOVE_RECURSE
  "CMakeFiles/example_skew_handling.dir/examples/skew_handling.cpp.o"
  "CMakeFiles/example_skew_handling.dir/examples/skew_handling.cpp.o.d"
  "example_skew_handling"
  "example_skew_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_skew_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
