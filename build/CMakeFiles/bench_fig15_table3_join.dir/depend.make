# Empty dependencies file for bench_fig15_table3_join.
# This may be replaced when dependencies are built.
