file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_table3_join.dir/bench/bench_fig15_table3_join.cc.o"
  "CMakeFiles/bench_fig15_table3_join.dir/bench/bench_fig15_table3_join.cc.o.d"
  "bench_fig15_table3_join"
  "bench_fig15_table3_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_table3_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
