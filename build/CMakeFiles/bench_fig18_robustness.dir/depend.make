# Empty dependencies file for bench_fig18_robustness.
# This may be replaced when dependencies are built.
