file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_robustness.dir/bench/bench_fig18_robustness.cc.o"
  "CMakeFiles/bench_fig18_robustness.dir/bench/bench_fig18_robustness.cc.o.d"
  "bench_fig18_robustness"
  "bench_fig18_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
