# Empty dependencies file for bench_fig11_convergence_trace.
# This may be replaced when dependencies are built.
