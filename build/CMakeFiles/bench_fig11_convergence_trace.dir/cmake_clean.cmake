file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_convergence_trace.dir/bench/bench_fig11_convergence_trace.cc.o"
  "CMakeFiles/bench_fig11_convergence_trace.dir/bench/bench_fig11_convergence_trace.cc.o.d"
  "bench_fig11_convergence_trace"
  "bench_fig11_convergence_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_convergence_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
