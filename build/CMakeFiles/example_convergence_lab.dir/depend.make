# Empty dependencies file for example_convergence_lab.
# This may be replaced when dependencies are built.
