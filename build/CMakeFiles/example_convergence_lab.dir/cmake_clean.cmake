file(REMOVE_RECURSE
  "CMakeFiles/example_convergence_lab.dir/examples/convergence_lab.cpp.o"
  "CMakeFiles/example_convergence_lab.dir/examples/convergence_lab.cpp.o.d"
  "example_convergence_lab"
  "example_convergence_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_convergence_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
