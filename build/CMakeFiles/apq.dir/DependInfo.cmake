
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adaptive/convergence.cc" "CMakeFiles/apq.dir/src/adaptive/convergence.cc.o" "gcc" "CMakeFiles/apq.dir/src/adaptive/convergence.cc.o.d"
  "/root/repo/src/adaptive/executor.cc" "CMakeFiles/apq.dir/src/adaptive/executor.cc.o" "gcc" "CMakeFiles/apq.dir/src/adaptive/executor.cc.o.d"
  "/root/repo/src/adaptive/mutator.cc" "CMakeFiles/apq.dir/src/adaptive/mutator.cc.o" "gcc" "CMakeFiles/apq.dir/src/adaptive/mutator.cc.o.d"
  "/root/repo/src/engine/engine.cc" "CMakeFiles/apq.dir/src/engine/engine.cc.o" "gcc" "CMakeFiles/apq.dir/src/engine/engine.cc.o.d"
  "/root/repo/src/exec/compare.cc" "CMakeFiles/apq.dir/src/exec/compare.cc.o" "gcc" "CMakeFiles/apq.dir/src/exec/compare.cc.o.d"
  "/root/repo/src/exec/cost_model.cc" "CMakeFiles/apq.dir/src/exec/cost_model.cc.o" "gcc" "CMakeFiles/apq.dir/src/exec/cost_model.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "CMakeFiles/apq.dir/src/exec/evaluator.cc.o" "gcc" "CMakeFiles/apq.dir/src/exec/evaluator.cc.o.d"
  "/root/repo/src/exec/hash_index.cc" "CMakeFiles/apq.dir/src/exec/hash_index.cc.o" "gcc" "CMakeFiles/apq.dir/src/exec/hash_index.cc.o.d"
  "/root/repo/src/exec/kernels.cc" "CMakeFiles/apq.dir/src/exec/kernels.cc.o" "gcc" "CMakeFiles/apq.dir/src/exec/kernels.cc.o.d"
  "/root/repo/src/heuristic/parallelizer.cc" "CMakeFiles/apq.dir/src/heuristic/parallelizer.cc.o" "gcc" "CMakeFiles/apq.dir/src/heuristic/parallelizer.cc.o.d"
  "/root/repo/src/plan/builder.cc" "CMakeFiles/apq.dir/src/plan/builder.cc.o" "gcc" "CMakeFiles/apq.dir/src/plan/builder.cc.o.d"
  "/root/repo/src/plan/plan.cc" "CMakeFiles/apq.dir/src/plan/plan.cc.o" "gcc" "CMakeFiles/apq.dir/src/plan/plan.cc.o.d"
  "/root/repo/src/profile/profiler.cc" "CMakeFiles/apq.dir/src/profile/profiler.cc.o" "gcc" "CMakeFiles/apq.dir/src/profile/profiler.cc.o.d"
  "/root/repo/src/sched/simulator.cc" "CMakeFiles/apq.dir/src/sched/simulator.cc.o" "gcc" "CMakeFiles/apq.dir/src/sched/simulator.cc.o.d"
  "/root/repo/src/sched/thread_pool.cc" "CMakeFiles/apq.dir/src/sched/thread_pool.cc.o" "gcc" "CMakeFiles/apq.dir/src/sched/thread_pool.cc.o.d"
  "/root/repo/src/storage/column.cc" "CMakeFiles/apq.dir/src/storage/column.cc.o" "gcc" "CMakeFiles/apq.dir/src/storage/column.cc.o.d"
  "/root/repo/src/storage/table.cc" "CMakeFiles/apq.dir/src/storage/table.cc.o" "gcc" "CMakeFiles/apq.dir/src/storage/table.cc.o.d"
  "/root/repo/src/vwsim/vectorwise_sim.cc" "CMakeFiles/apq.dir/src/vwsim/vectorwise_sim.cc.o" "gcc" "CMakeFiles/apq.dir/src/vwsim/vectorwise_sim.cc.o.d"
  "/root/repo/src/workload/skew.cc" "CMakeFiles/apq.dir/src/workload/skew.cc.o" "gcc" "CMakeFiles/apq.dir/src/workload/skew.cc.o.d"
  "/root/repo/src/workload/tpcds.cc" "CMakeFiles/apq.dir/src/workload/tpcds.cc.o" "gcc" "CMakeFiles/apq.dir/src/workload/tpcds.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "CMakeFiles/apq.dir/src/workload/tpch.cc.o" "gcc" "CMakeFiles/apq.dir/src/workload/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
