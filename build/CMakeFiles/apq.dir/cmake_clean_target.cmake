file(REMOVE_RECURSE
  "libapq.a"
)
