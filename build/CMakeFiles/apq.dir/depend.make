# Empty dependencies file for apq.
# This may be replaced when dependencies are built.
