# Empty dependencies file for example_concurrent_workload.
# This may be replaced when dependencies are built.
