file(REMOVE_RECURSE
  "CMakeFiles/example_concurrent_workload.dir/examples/concurrent_workload.cpp.o"
  "CMakeFiles/example_concurrent_workload.dir/examples/concurrent_workload.cpp.o.d"
  "example_concurrent_workload"
  "example_concurrent_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_concurrent_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
