file(REMOVE_RECURSE
  "CMakeFiles/heuristic_test.dir/tests/heuristic_test.cc.o"
  "CMakeFiles/heuristic_test.dir/tests/heuristic_test.cc.o.d"
  "heuristic_test"
  "heuristic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
