// Live introspection: query-id allocation and scoping, the recent-query
// log, structured profile JSON, the embedded HTTP exporter (routing table
// and a live socket round-trip), and the engine-level contracts — lineage
// entries match AdaptiveOutcome run counts exactly, error paths leave a
// metric trail, and introspection never perturbs query results.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "exec/compare.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "plan/builder.h"
#include "profile/profile_json.h"
#include "workload/tpch.h"

namespace apq {
namespace {

// ---- query ids --------------------------------------------------------------

TEST(QueryIdTest, IdsAreMonotonicAndNeverZero) {
  const uint64_t a = obs::NextQueryId();
  const uint64_t b = obs::NextQueryId();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
}

TEST(QueryIdTest, ScopeInstallsAndRestoresNested) {
  EXPECT_EQ(obs::CurrentQueryId(), 0u);
  {
    obs::QueryIdScope outer(7);
    EXPECT_EQ(obs::CurrentQueryId(), 7u);
    {
      obs::QueryIdScope inner(9);
      EXPECT_EQ(obs::CurrentQueryId(), 9u);
    }
    EXPECT_EQ(obs::CurrentQueryId(), 7u);
  }
  EXPECT_EQ(obs::CurrentQueryId(), 0u);
}

// ---- the recent-query log ---------------------------------------------------

obs::QueryRecord MakeRecord(uint64_t id, const std::string& profile = "") {
  obs::QueryRecord rec;
  rec.id = id;
  rec.kind = "plan";
  rec.wall_ns = 100.0 * static_cast<double>(id);
  rec.rows = id * 10;
  rec.profile_json = profile;
  return rec;
}

TEST(QueryLogTest, SnapshotIsNewestFirstAndRingEvicts) {
  obs::QueryLog log;
  for (uint64_t id = 1; id <= obs::kQueryLogCapacity + 5; ++id) {
    log.Push(MakeRecord(id));
  }
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), obs::kQueryLogCapacity);
  EXPECT_EQ(snap.front().id, obs::kQueryLogCapacity + 5);  // newest first
  EXPECT_EQ(snap.back().id, 6u);                           // oldest evicted

  std::string json;
  EXPECT_FALSE(log.FindProfile(1, &json));  // evicted
  EXPECT_TRUE(log.FindProfile(obs::kQueryLogCapacity + 5, &json));
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(QueryLogTest, SummaryJsonCarriesScalarsButNotProfiles) {
  obs::QueryLog log;
  obs::QueryRecord ok = MakeRecord(3, "{\"query_id\":3,\"secret\":true}");
  ok.peak_bytes = 12345;
  ok.cpu_ns = 6789.0;
  log.Push(ok);
  obs::QueryRecord err = MakeRecord(4);
  err.status = "error";
  err.error = "boom \"quoted\"";
  log.Push(err);

  const std::string summary = log.SummaryJson();
  EXPECT_NE(summary.find("{\"queries\":["), std::string::npos);
  EXPECT_NE(summary.find("\"id\":3"), std::string::npos);
  EXPECT_NE(summary.find("\"id\":4"), std::string::npos);
  EXPECT_NE(summary.find("\"peak_bytes\":12345"), std::string::npos);
  EXPECT_NE(summary.find("\"cpu_ns\":6789"), std::string::npos);
  EXPECT_NE(summary.find("\"queue_wait_ns\":"), std::string::npos);
  EXPECT_NE(summary.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(summary.find("boom \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(summary.find("secret"), std::string::npos);
  // Newest first: id 4 before id 3.
  EXPECT_LT(summary.find("\"id\":4"), summary.find("\"id\":3"));
}

TEST(QueryLogTest, DumpJsonEmbedsProfileDocumentsOldestFirst) {
  obs::QueryLog log;
  log.Push(MakeRecord(1, "{\"query_id\":1}"));
  log.Push(MakeRecord(2, "{\"query_id\":2}"));
  const std::string dump = log.DumpJson();
  EXPECT_NE(dump.find("{\"queries\":["), std::string::npos);
  EXPECT_LT(dump.find("\"query_id\":1"), dump.find("\"query_id\":2"));
}

// ---- profile JSON -----------------------------------------------------------

OpProfile SyntheticOp() {
  OpProfile op;
  op.node_id = 4;
  op.kind = OpKind::kSelect;
  op.label = "sel(l_quantity)";
  op.work_ns = 1000;
  op.start_ns = 10;
  op.end_ns = 250;
  op.core = 2;
  op.tuples_in = 100;
  op.tuples_out = 40;
  // Five morsels, wall times 10/20/30/40/50: exact p50 = 30, p95 = 48.
  for (int i = 1; i <= 5; ++i) {
    MorselMetrics m;
    m.tuples_in = 20;
    m.tuples_out = 8;
    m.wall_ns = 10.0 * i;
    m.worker = i % 2;
    m.domain_begin = static_cast<uint64_t>(20 * (i - 1));
    m.domain_end = static_cast<uint64_t>(20 * i);
    op.morsels.push_back(m);
  }
  op.ComputeSkewFromMorsels();
  return op;
}

TEST(ProfileJsonTest, MorselWallPercentilesAreExact) {
  const OpProfile op = SyntheticOp();
  EXPECT_DOUBLE_EQ(MorselWallPercentileNs(op, 0.50), 30.0);
  EXPECT_DOUBLE_EQ(MorselWallPercentileNs(op, 0.95), 48.0);
  EXPECT_DOUBLE_EQ(MorselWallPercentileNs(op, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(MorselWallPercentileNs(op, 1.0), 50.0);
  OpProfile stripped = op;
  stripped.morsels.clear();  // historical profiles drop the histogram
  EXPECT_DOUBLE_EQ(MorselWallPercentileNs(stripped, 0.95), 0.0);
}

TEST(ProfileJsonTest, OpAndRunSerializeAllFields) {
  RunProfile rp;
  rp.ops.push_back(SyntheticOp());
  rp.makespan_ns = 240;
  rp.utilization = 0.5;
  const std::string json = RunProfileJson(rp);
  for (const char* needle :
       {"\"makespan_ns\":240", "\"utilization\":0.5", "\"node_id\":4",
        "\"kind\":\"select\"", "\"label\":\"sel(l_quantity)\"",
        "\"wall_ns\":240", "\"tuples_in\":100, ", "\"num_morsels\":5",
        "\"morsel_wall_p50_ns\":30", "\"morsel_wall_p95_ns\":48",
        "\"domain_begin\":80"}) {
    // The tuples_in needle would also match morsel entries; strip the
    // trailing guard before searching.
    std::string n(needle);
    if (n.back() == ' ') n.pop_back();
    EXPECT_NE(json.find(n), std::string::npos) << n << " in " << json;
  }
}

TEST(ProfileJsonTest, QueryDocPlainVsAdaptive) {
  QueryProfileDoc plain;
  plain.query_id = 11;
  plain.kind = "plan";
  plain.wall_ns = 5000;
  plain.rows = 42;
  const std::string pj = QueryProfileJson(plain);
  EXPECT_NE(pj.find("\"query_id\":11"), std::string::npos);
  EXPECT_NE(pj.find("\"runs\":1"), std::string::npos);
  EXPECT_NE(pj.find("\"mutations\":0"), std::string::npos);
  EXPECT_NE(pj.find("\"adaptive\":null"), std::string::npos);
  EXPECT_NE(pj.find("\"lineage\":[]"), std::string::npos);
  EXPECT_NE(pj.find("\"profile\":null"), std::string::npos);

  AdaptiveOutcome oc;
  oc.total_runs = 2;
  oc.serial_time_ns = 100;
  oc.gme_time_ns = 50;
  oc.gme_run = 1;
  AdaptiveLineage l0;
  l0.run = 0;
  l0.victim = 4;
  l0.action = "basic-skew";
  l0.skew_aware = true;
  l0.split_rows = {64, 192};
  oc.lineage.push_back(l0);
  AdaptiveLineage l1;
  l1.run = 1;
  oc.lineage.push_back(l1);

  QueryProfileDoc doc;
  doc.query_id = 12;
  doc.kind = "adaptive";
  doc.adaptive = &oc;
  const std::string aj = QueryProfileJson(doc);
  EXPECT_NE(aj.find("\"runs\":2"), std::string::npos);
  EXPECT_NE(aj.find("\"mutations\":1"), std::string::npos);
  EXPECT_NE(aj.find("\"speedup\":2"), std::string::npos);
  EXPECT_NE(aj.find("\"action\":\"basic-skew\""), std::string::npos);
  EXPECT_NE(aj.find("\"skew_aware\":true"), std::string::npos);
  EXPECT_NE(aj.find("\"split_rows\":[64,192]"), std::string::npos);
  EXPECT_NE(aj.find("\"action\":\"none\""), std::string::npos);
}

// ---- HTTP exporter: env parsing and routing ---------------------------------

TEST(HttpExporterTest, ParseHttpPortIsStrict) {
  EXPECT_EQ(obs::ParseHttpPort("9417"), 9417);
  EXPECT_EQ(obs::ParseHttpPort("1"), 1);
  EXPECT_EQ(obs::ParseHttpPort("65535"), 65535);
  EXPECT_EQ(obs::ParseHttpPort("0"), -1);
  EXPECT_EQ(obs::ParseHttpPort("65536"), -1);
  EXPECT_EQ(obs::ParseHttpPort("-1"), -1);
  EXPECT_EQ(obs::ParseHttpPort("80x"), -1);
  EXPECT_EQ(obs::ParseHttpPort("abc"), -1);
  EXPECT_EQ(obs::ParseHttpPort(""), -1);
  EXPECT_EQ(obs::ParseHttpPort(nullptr), -1);
}

void Handle(const std::string& path, int* status, std::string* body) {
  std::string content_type;
  obs::HttpExporter::Handle(path, status, &content_type, body);
}

TEST(HttpExporterTest, RoutingTableServesEveryEndpoint) {
  obs::MetricsRegistry::Global().GetCounter("introspect_route_counter")->Inc();
  obs::QueryLog::Global().Clear();
  obs::QueryRecord rec;
  rec.id = 99999;
  rec.kind = "plan";
  rec.profile_json = "{\"query_id\":99999,\"marker\":\"deadbeef\"}";
  obs::QueryLog::Global().Push(rec);

  int status = 0;
  std::string body;
  Handle("/metrics", &status, &body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("introspect_route_counter 1"), std::string::npos);

  Handle("/metrics.json", &status, &body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);

  Handle("/healthz", &status, &body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("ok"), std::string::npos);

  Handle("/debug/queries", &status, &body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"id\":99999"), std::string::npos);
  EXPECT_EQ(body.find("deadbeef"), std::string::npos);  // summaries only

  Handle("/debug/profile/99999", &status, &body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"marker\":\"deadbeef\""), std::string::npos);

  // Query strings are stripped before routing.
  Handle("/metrics?scrape=1", &status, &body);
  EXPECT_EQ(status, 200);

  // Worker telemetry: always answers, with an empty scheduler list until a
  // MorselScheduler installs itself as the provider.
  Handle("/debug/workers", &status, &body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"schedulers\":["), std::string::npos);

  Handle("/debug/profile/123456789", &status, &body);
  EXPECT_EQ(status, 404);
  Handle("/debug/profile/notanumber", &status, &body);
  EXPECT_EQ(status, 404);
  Handle("/nope", &status, &body);
  EXPECT_EQ(status, 404);
  EXPECT_NE(body.find("/debug/queries"), std::string::npos);  // endpoint list
  EXPECT_NE(body.find("/debug/workers"), std::string::npos);
  obs::QueryLog::Global().Clear();
}

TEST(HttpExporterTest, RequestsAreCountedPerRoute) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* metrics_c =
      reg.GetCounter("apq_http_requests_total{route=\"/metrics\"}");
  obs::Counter* workers_c =
      reg.GetCounter("apq_http_requests_total{route=\"/debug/workers\"}");
  obs::Counter* unknown_c =
      reg.GetCounter("apq_http_requests_total{route=\"unknown\"}");
  obs::Counter* profile_c =
      reg.GetCounter("apq_http_requests_total{route=\"/debug/profile\"}");
  const uint64_t m0 = metrics_c->Value();
  const uint64_t w0 = workers_c->Value();
  const uint64_t u0 = unknown_c->Value();
  const uint64_t p0 = profile_c->Value();

  int status = 0;
  std::string body;
  Handle("/metrics", &status, &body);
  Handle("/metrics", &status, &body);
  Handle("/debug/workers", &status, &body);
  Handle("/debug/profile/987654321", &status, &body);  // 404 still counted
  Handle("/wat", &status, &body);
  Handle("/also-wat", &status, &body);  // unrecognized paths share one label

  EXPECT_EQ(metrics_c->Value(), m0 + 2);
  EXPECT_EQ(workers_c->Value(), w0 + 1);
  EXPECT_EQ(profile_c->Value(), p0 + 1);
  EXPECT_EQ(unknown_c->Value(), u0 + 2);
}

TEST(HttpExporterTest, MetricsExposeBuildInfoAfterEvaluatorInit) {
  // Constructing an evaluator registers apq_build_info with its resolved
  // SIMD tier; the constant-1 gauge carries version/simd/build as labels.
  Evaluator ev{ExecOptions{}};
  int status = 0;
  std::string body;
  Handle("/metrics", &status, &body);
  EXPECT_EQ(status, 200);
  const size_t pos = body.find("apq_build_info{");
  ASSERT_NE(pos, std::string::npos);
  const std::string line = body.substr(pos, body.find('\n', pos) - pos);
  EXPECT_NE(line.find("version=\""), std::string::npos) << line;
  EXPECT_NE(line.find("simd=\""), std::string::npos) << line;
  EXPECT_NE(line.find("build=\""), std::string::npos) << line;
  EXPECT_NE(line.find("} 1"), std::string::npos) << line;
}

// ---- HTTP exporter: live socket round-trip ----------------------------------

std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(HttpExporterTest, ServesOverARealSocket) {
  obs::HttpExporter server;
  ASSERT_TRUE(server.Start(0).ok());  // ephemeral port
  ASSERT_TRUE(server.running());
  const int port = server.port();
  ASSERT_GT(port, 0);

  // Idempotent while running (same port keeps quiet, different port warns).
  EXPECT_TRUE(server.Start(port).ok());
  EXPECT_EQ(server.port(), port);

  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  obs::MetricsRegistry::Global().GetCounter("introspect_live_counter")->Inc(5);
  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(metrics.find("introspect_live_counter 5"), std::string::npos);

  EXPECT_NE(HttpGet(port, "/nope").find("HTTP/1.1 404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
  // Port is reusable after Stop.
  obs::HttpExporter again;
  ASSERT_TRUE(again.Start(0).ok());
  again.Stop();
}

// ---- engine integration -----------------------------------------------------

class IntrospectEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.lineitem_rows = 10'000;
    cat_ = Tpch::Generate(cfg);
  }
  static EngineConfig SmallConfig() {
    EngineConfig cfg = EngineConfig::WithSim(SimConfig::Cores(8, 4));
    cfg.mutator.min_partition_rows = 64;
    return cfg;
  }
  std::shared_ptr<Catalog> cat_;
};

TEST_F(IntrospectEngineTest, RunPlanAssignsIdsAndRecordsQueries) {
  obs::QueryLog::Global().Clear();
  Engine engine(SmallConfig());
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  auto a = engine.RunSerial(q6.ValueOrDie());
  auto b = engine.RunSerial(q6.ValueOrDie());
  ASSERT_TRUE(a.ok() && b.ok());
  const uint64_t ida = a.ValueOrDie().query_id;
  const uint64_t idb = b.ValueOrDie().query_id;
  EXPECT_GT(ida, 0u);
  EXPECT_GT(idb, ida);

  const auto snap = obs::QueryLog::Global().Snapshot();
  ASSERT_GE(snap.size(), 2u);
  EXPECT_EQ(snap[0].id, idb);  // newest first
  EXPECT_EQ(snap[1].id, ida);
  EXPECT_EQ(snap[0].kind, "plan");
  EXPECT_EQ(snap[0].status, "ok");
  EXPECT_EQ(snap[0].rows, b.ValueOrDie().result.NumRows());
  EXPECT_EQ(snap[0].runs, 1);
  EXPECT_GT(snap[0].wall_ns, 0.0);

  std::string profile;
  ASSERT_TRUE(obs::QueryLog::Global().FindProfile(ida, &profile));
  EXPECT_NE(profile.find("\"query_id\":" + std::to_string(ida)),
            std::string::npos);
  EXPECT_NE(profile.find("\"kind\":\"plan\""), std::string::npos);
  EXPECT_NE(profile.find("\"ops\":["), std::string::npos);
}

TEST_F(IntrospectEngineTest, AdaptiveLineageMatchesOutcomeExactly) {
  obs::QueryLog::Global().Clear();
  Engine engine(SmallConfig());
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  auto out = engine.RunAdaptive(q6.ValueOrDie());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const AdaptiveOutcome& o = out.ValueOrDie();

  // The acceptance invariant: one lineage entry per executed run, exactly.
  ASSERT_EQ(o.lineage.size(), o.runs.size());
  ASSERT_EQ(static_cast<int>(o.lineage.size()), o.total_runs);
  EXPECT_GT(o.query_id, 0u);
  int mutated = 0;
  for (size_t i = 0; i < o.lineage.size(); ++i) {
    const AdaptiveLineage& l = o.lineage[i];
    EXPECT_EQ(l.run, static_cast<int>(i));
    EXPECT_EQ(l.victim, o.runs[i].mutated_node);
    EXPECT_DOUBLE_EQ(l.time_ns, o.runs[i].time_ns);
    EXPECT_DOUBLE_EQ(l.wall_ns, o.runs[i].wall_ns);
    EXPECT_EQ(l.skew_hint_ops, o.runs[i].skew_hint_ops);
    if (!o.runs[i].mutation.empty()) EXPECT_EQ(l.action, o.runs[i].mutation);
    if (l.action != "none") {
      ++mutated;
      EXPECT_GE(l.victim, 0);
    } else {
      EXPECT_TRUE(l.split_rows.empty());
    }
  }
  EXPECT_GT(mutated, 0);  // Q6 at 10k rows always mutates at least once

  // The recorded document agrees with the outcome.
  const auto snap = obs::QueryLog::Global().Snapshot();
  ASSERT_FALSE(snap.empty());
  EXPECT_EQ(snap[0].id, o.query_id);
  EXPECT_EQ(snap[0].kind, "adaptive");
  EXPECT_EQ(snap[0].runs, o.total_runs);
  EXPECT_EQ(snap[0].mutations, mutated);

  std::string profile;
  ASSERT_TRUE(obs::QueryLog::Global().FindProfile(o.query_id, &profile));
  EXPECT_NE(profile.find("\"kind\":\"adaptive\""), std::string::npos);
  EXPECT_NE(profile.find("\"total_runs\":" + std::to_string(o.total_runs)),
            std::string::npos);
  // All lineage entries serialized: count "\"run\": occurrences.
  size_t runs_in_json = 0;
  for (size_t pos = 0; (pos = profile.find("{\"run\":", pos)) !=
                       std::string::npos;
       ++pos) {
    ++runs_in_json;
  }
  EXPECT_EQ(runs_in_json, o.lineage.size());
}

TEST_F(IntrospectEngineTest, ErrorPathBumpsCounterAndRecordsError) {
  obs::QueryLog::Global().Clear();
  obs::Counter* errors =
      obs::MetricsRegistry::Global().GetCounter("apq_query_errors_total");
  const uint64_t before = errors->Value();

  Engine engine(SmallConfig());
  // LIKE on a non-string column fails inside the evaluator.
  auto ints = Column::MakeInt64("ints", {1, 2, 3, 4});
  PlanBuilder b("bad");
  int sel = b.Select(ints.get(), Predicate::Like("x"));
  auto out = engine.RunPlan(b.Result(sel));
  ASSERT_FALSE(out.ok());

  EXPECT_EQ(errors->Value(), before + 1);
  const auto snap = obs::QueryLog::Global().Snapshot();
  ASSERT_FALSE(snap.empty());
  EXPECT_EQ(snap[0].status, "error");
  EXPECT_FALSE(snap[0].error.empty());
  EXPECT_EQ(snap[0].rows, 0u);

  // The error surfaces in /debug/queries and the profile document.
  int status = 0;
  std::string body;
  Handle("/debug/queries", &status, &body);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\":\"error\""), std::string::npos);
  std::string profile;
  ASSERT_TRUE(obs::QueryLog::Global().FindProfile(snap[0].id, &profile));
  EXPECT_NE(profile.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(profile.find("\"profile\":null"), std::string::npos);
}

// Introspection must never perturb results: the same TPC-H query through
// the engine with the HTTP exporter off vs on (and under concurrent
// scraping) is bit-identical at every worker count.
TEST_F(IntrospectEngineTest, ResultsBitIdenticalWithExporterOnVsOff) {
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());

  for (int workers : {1, 2, 4, 8}) {
    EngineConfig cfg = SmallConfig();
    cfg.use_morsels = true;
    cfg.morsel_rows = 512;
    cfg.morsel_workers = workers;

    Engine off_engine(cfg);
    auto off = off_engine.RunSerial(q6.ValueOrDie());
    ASSERT_TRUE(off.ok()) << "workers=" << workers;

    obs::HttpExporter server;
    ASSERT_TRUE(server.Start(0).ok());
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
      while (!stop.load()) {
        HttpGet(server.port(), "/metrics");
        HttpGet(server.port(), "/debug/queries");
      }
    });
    Engine on_engine(cfg);
    auto on = on_engine.RunSerial(q6.ValueOrDie());
    stop.store(true);
    scraper.join();
    server.Stop();
    ASSERT_TRUE(on.ok()) << "workers=" << workers;

    EXPECT_EQ(DiffIntermediates(off.ValueOrDie().result,
                                on.ValueOrDie().result),
              "")
        << "workers=" << workers << " (introspection changed results!)";
    EXPECT_DOUBLE_EQ(off.ValueOrDie().time_ns, on.ValueOrDie().time_ns)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace apq
