// Unit tests: columns, slices, tables, catalog.
#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/table.h"

namespace apq {
namespace {

TEST(ColumnTest, Int64Basics) {
  auto c = Column::MakeInt64("a", {1, 2, 3, 4});
  EXPECT_EQ(c->size(), 4u);
  EXPECT_EQ(c->type(), DataType::kInt64);
  EXPECT_EQ(c->GetInt(2), 3);
  EXPECT_DOUBLE_EQ(c->GetDouble(3), 4.0);
  EXPECT_EQ(c->byte_size(), 32u);
}

TEST(ColumnTest, Float64Basics) {
  auto c = Column::MakeFloat64("f", {1.5, 2.5});
  EXPECT_EQ(c->type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(c->GetDouble(0), 1.5);
  EXPECT_EQ(c->size(), 2u);
}

TEST(ColumnTest, StringDictionaryEncoding) {
  auto c = Column::MakeString("s", {"x", "y", "x", "z", "y"});
  EXPECT_EQ(c->size(), 5u);
  EXPECT_EQ(c->dictionary().size(), 3u);
  EXPECT_EQ(c->i64()[0], c->i64()[2]);  // "x" == "x"
  EXPECT_NE(c->i64()[0], c->i64()[1]);
  EXPECT_EQ(c->DictString(c->i64()[3]), "z");
  EXPECT_EQ(c->DictCode("y"), c->i64()[1]);
  EXPECT_EQ(c->DictCode("missing"), -1);
}

TEST(ColumnTest, DateStoredAsDays) {
  auto c = Column::MakeDate("d", {8035, 8036});
  EXPECT_EQ(c->type(), DataType::kDate);
  EXPECT_EQ(c->GetInt(1), 8036);
}

TEST(RowRangeTest, ContainsAndIntersect) {
  RowRange r{10, 20};
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_TRUE(r.Contains(RowRange{12, 18}));
  EXPECT_FALSE(r.Contains(RowRange{12, 21}));
  EXPECT_TRUE(r.Overlaps(RowRange{19, 25}));
  EXPECT_FALSE(r.Overlaps(RowRange{20, 25}));
  RowRange i = r.Intersect(RowRange{15, 30});
  EXPECT_EQ(i.begin, 15u);
  EXPECT_EQ(i.end, 20u);
  RowRange empty = r.Intersect(RowRange{30, 40});
  EXPECT_EQ(empty.size(), 0u);
}

TEST(ColumnSliceTest, SplitIsAlignedAndCoversRange) {
  auto c = Column::MakeInt64("a", std::vector<int64_t>(100, 1));
  ColumnSlice s{c.get(), {10, 90}};
  auto [lo, hi] = s.Split();
  EXPECT_EQ(lo.range.begin, 10u);
  EXPECT_EQ(lo.range.end, 50u);
  EXPECT_EQ(hi.range.begin, 50u);
  EXPECT_EQ(hi.range.end, 90u);
  EXPECT_TRUE(lo.Valid());
  EXPECT_TRUE(hi.Valid());
  // Split at an explicit point.
  auto [a, b] = s.Split(15);
  EXPECT_EQ(a.range.size(), 5u);
  EXPECT_EQ(b.range.size(), 75u);
}

TEST(TableTest, AddColumnEnforcesRowCount) {
  Table t("t");
  EXPECT_TRUE(t.AddColumn(Column::MakeInt64("a", {1, 2, 3})).ok());
  EXPECT_EQ(t.row_count(), 3u);
  Status st = t.AddColumn(Column::MakeInt64("b", {1, 2}));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(t.AddColumn(Column::MakeInt64("b", {4, 5, 6})).ok());
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(Column::MakeInt64("a", {1})).ok());
  Status st = t.AddColumn(Column::MakeInt64("a", {2}));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, LargestTable) {
  Catalog cat;
  auto t1 = std::make_shared<Table>("small");
  ASSERT_TRUE(t1->AddColumn(Column::MakeInt64("a", {1, 2})).ok());
  auto t2 = std::make_shared<Table>("big");
  ASSERT_TRUE(
      t2->AddColumn(Column::MakeInt64("a", std::vector<int64_t>(100, 0))).ok());
  ASSERT_TRUE(cat.AddTable(t1).ok());
  ASSERT_TRUE(cat.AddTable(t2).ok());
  ASSERT_NE(cat.LargestTable(), nullptr);
  EXPECT_EQ(cat.LargestTable()->name(), "big");
  EXPECT_EQ(cat.GetTable("missing"), nullptr);
  EXPECT_FALSE(cat.GetTableChecked("missing").ok());
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status st = Status::Misaligned("boundary");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kMisaligned);
  EXPECT_NE(st.ToString().find("boundary"), std::string::npos);
}

}  // namespace
}  // namespace apq
