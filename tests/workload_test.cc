// Tests for the TPC-H / TPC-DS / skew workload generators and query plans.
#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "workload/skew.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace apq {
namespace {

TEST(TpchGeneratorTest, SchemaAndSizes) {
  TpchConfig cfg;
  cfg.lineitem_rows = 10'000;
  auto cat = Tpch::Generate(cfg);
  const Table* li = cat->GetTable("lineitem");
  ASSERT_NE(li, nullptr);
  EXPECT_EQ(li->row_count(), 10'000u);
  EXPECT_NE(li->GetColumn("l_shipdate"), nullptr);
  EXPECT_NE(li->GetColumn("l_extendedprice"), nullptr);
  EXPECT_EQ(cat->GetTable("orders")->row_count(), cfg.orders_rows());
  EXPECT_EQ(cat->GetTable("part")->row_count(), cfg.part_rows());
  EXPECT_EQ(cat->GetTable("nation")->row_count(), 25u);
  EXPECT_EQ(cat->LargestTable()->name(), "lineitem");
}

TEST(TpchGeneratorTest, ForeignKeyIntegrity) {
  TpchConfig cfg;
  cfg.lineitem_rows = 5'000;
  auto cat = Tpch::Generate(cfg);
  const auto& pkey = cat->GetTable("lineitem")->GetColumn("l_partkey")->i64();
  int64_t parts = static_cast<int64_t>(cat->GetTable("part")->row_count());
  for (int64_t v : pkey) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, parts);
  }
  // Primary keys are dense row indices.
  const auto& pk = cat->GetTable("part")->GetColumn("p_partkey")->i64();
  for (size_t i = 0; i < pk.size(); ++i) {
    ASSERT_EQ(pk[i], static_cast<int64_t>(i));
  }
}

TEST(TpchGeneratorTest, DeterministicUnderSeed) {
  TpchConfig cfg;
  cfg.lineitem_rows = 2'000;
  auto a = Tpch::Generate(cfg);
  auto b = Tpch::Generate(cfg);
  EXPECT_EQ(a->GetTable("lineitem")->GetColumn("l_shipdate")->i64(),
            b->GetTable("lineitem")->GetColumn("l_shipdate")->i64());
  cfg.seed = 99;
  auto c = Tpch::Generate(cfg);
  EXPECT_NE(a->GetTable("lineitem")->GetColumn("l_shipdate")->i64(),
            c->GetTable("lineitem")->GetColumn("l_shipdate")->i64());
}

TEST(TpchGeneratorTest, ShipdatesInWindow) {
  TpchConfig cfg;
  cfg.lineitem_rows = 5'000;
  auto cat = Tpch::Generate(cfg);
  for (int64_t d : cat->GetTable("lineitem")->GetColumn("l_shipdate")->i64()) {
    ASSERT_GE(d, kTpchDate0);
    ASSERT_LT(d, kTpchDate0 + kTpchDateSpan);
  }
}

class TpchQueryTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    TpchConfig cfg;
    cfg.lineitem_rows = 20'000;
    cat_ = Tpch::Generate(cfg).get() ? Tpch::Generate(cfg) : nullptr;
  }
  static std::shared_ptr<Catalog> cat_;
};
std::shared_ptr<Catalog> TpchQueryTest::cat_;

TEST_P(TpchQueryTest, BuildsValidatesAndExecutes) {
  auto plan = Tpch::Query(*cat_, GetParam());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan.ValueOrDie().Validate().ok());
  Evaluator eval;
  EvalResult er;
  Status st = eval.Execute(plan.ValueOrDie(), &er);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(er.result.NumRows(), 0u);
  // Scalar results are positive revenue-like quantities.
  if (er.result.kind == Intermediate::Kind::kScalar) {
    EXPECT_GT(er.result.scalar, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest,
                         ::testing::Values("Q4", "Q6", "Q8", "Q9", "Q14",
                                           "Q19", "Q22"),
                         [](const auto& info) { return info.param; });

TEST(TpchQueryTest2, UnknownQueryIsNotFound) {
  TpchConfig cfg;
  cfg.lineitem_rows = 1'000;
  auto cat = Tpch::Generate(cfg);
  EXPECT_EQ(Tpch::Query(*cat, "Q99").status().code(), StatusCode::kNotFound);
}

TEST(TpchQueryTest2, Q6SelectivityControlsOutput) {
  TpchConfig cfg;
  cfg.lineitem_rows = 20'000;
  auto cat = Tpch::Generate(cfg);
  Evaluator eval;
  auto count_matches = [&](double frac) {
    auto plan = Tpch::Q6Selectivity(*cat, frac);
    APQ_CHECK(plan.ok());
    EvalResult er;
    APQ_CHECK_OK(eval.Execute(plan.ValueOrDie(), &er));
    // The select feeding the plan is node 0.
    return er.metrics[0].tuples_out;
  };
  uint64_t low = count_matches(0.1);
  uint64_t mid = count_matches(0.5);
  uint64_t all = count_matches(1.0);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, all);
  EXPECT_NEAR(static_cast<double>(mid) / 20000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(all) / 20000.0, 1.0, 0.01);
}

TEST(TpcdsGeneratorTest, SchemaAndSkew) {
  TpcdsConfig cfg;
  cfg.store_sales_rows = 30'000;
  auto cat = Tpcds::Generate(cfg);
  const Table* ss = cat->GetTable("store_sales");
  ASSERT_NE(ss, nullptr);
  EXPECT_EQ(ss->row_count(), 30'000u);
  // Dates are non-decreasing (date-ordered appends).
  const auto& dates = ss->GetColumn("ss_sold_date_sk")->i64();
  for (size_t i = 1; i < dates.size(); ++i) {
    ASSERT_GE(dates[i], dates[i - 1]) << "at " << i;
  }
  // Zipfian items: the head items are far more frequent than the tail.
  const auto& items = ss->GetColumn("ss_item_sk")->i64();
  uint64_t head = 0, tail = 0;
  for (int64_t v : items) {
    if (v < 50) ++head;
    if (v >= static_cast<int64_t>(cfg.item_rows) - 50) ++tail;
  }
  EXPECT_GT(head, tail * 3);
}

TEST(TpcdsGeneratorTest, SeasonalBurstExists) {
  TpcdsConfig cfg;
  cfg.store_sales_rows = 30'000;
  auto cat = Tpcds::Generate(cfg);
  const auto& dates =
      cat->GetTable("store_sales")->GetColumn("ss_sold_date_sk")->i64();
  // Count rows in the season window (day-of-year >= 320): should be ~40%,
  // far above the uniform expectation of 45/365 = 12%.
  uint64_t burst = 0;
  for (int64_t d : dates) {
    if (d % 365 >= 320) ++burst;
  }
  double frac = static_cast<double>(burst) / dates.size();
  EXPECT_GT(frac, 0.3);
}

class TpcdsQueryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TpcdsQueryTest, BuildsValidatesAndExecutes) {
  TpcdsConfig cfg;
  cfg.store_sales_rows = 20'000;
  auto cat = Tpcds::Generate(cfg);
  auto plan = Tpcds::Query(*cat, GetParam());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan.ValueOrDie().Validate().ok());
  Evaluator eval;
  EvalResult er;
  Status st = eval.Execute(plan.ValueOrDie(), &er);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(er.result.NumRows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpcdsQueryTest,
                         ::testing::Values("DS1", "DS2", "DS3", "DS4", "DS5"),
                         [](const auto& info) { return info.param; });

TEST(SkewGeneratorTest, Fig13Layout) {
  SkewConfig cfg;
  cfg.rows = 10'000;
  auto cat = GenerateSkewed(cfg);
  const auto& v = cat->GetTable("skewed")->GetColumn("v")->i64();
  ASSERT_EQ(v.size(), 10'000u);
  // First half: random values >= clusters.
  for (size_t i = 0; i < 5'000; ++i) ASSERT_GE(v[i], cfg.clusters);
  // Second half: five runs of constants 0..4, each 1000 rows.
  for (size_t i = 5'000; i < 10'000; ++i) {
    ASSERT_EQ(v[i], static_cast<int64_t>((i - 5'000) / 1'000));
  }
}

TEST(SkewGeneratorTest, SelectPlanMatchesRequestedSkew) {
  SkewConfig cfg;
  cfg.rows = 10'000;
  auto cat = GenerateSkewed(cfg);
  Evaluator eval;
  for (int pct : {10, 30, 50}) {
    auto plan = SkewedSelectPlan(*cat, cfg, pct);
    ASSERT_TRUE(plan.ok());
    EvalResult er;
    ASSERT_TRUE(eval.Execute(plan.ValueOrDie(), &er).ok());
    double frac = static_cast<double>(er.metrics[0].tuples_out) / cfg.rows;
    EXPECT_NEAR(frac, pct / 100.0, 0.02) << "pct=" << pct;
  }
}

}  // namespace
}  // namespace apq
