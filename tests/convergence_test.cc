// Tests for the convergence algorithm (paper §3): GME selection, credit/debit
// dynamics, leaking debit, peak grace, and the §3.3 scenarios.
#include <gtest/gtest.h>

#include "adaptive/convergence.h"

namespace apq {
namespace {

ConvergenceParams SmallMachine() {
  ConvergenceParams p;
  p.cores = 8;
  return p;
}

TEST(ConvergenceTest, SerialRunAlwaysAllowsContinuation) {
  ConvergenceController c(SmallMachine());
  EXPECT_TRUE(c.Observe(100.0));
  EXPECT_EQ(c.runs_observed(), 1);
  EXPECT_DOUBLE_EQ(c.serial_time(), 100.0);
}

TEST(ConvergenceTest, GmeInitializedAtFirstParallelRun) {
  ConvergenceController c(SmallMachine());
  c.Observe(100.0);
  c.Observe(60.0);
  EXPECT_DOUBLE_EQ(c.gme(), 60.0);
  EXPECT_EQ(c.gme_run(), 1);
}

TEST(ConvergenceTest, GmeUpdatesOnlyBeyondThreshold) {
  ConvergenceController c(SmallMachine());
  c.Observe(100.0);
  c.Observe(60.0);   // GME=60, improvement 40%
  c.Observe(58.0);   // improvement 42%: below the 5% gap, discarded
  EXPECT_DOUBLE_EQ(c.gme(), 60.0);
  EXPECT_EQ(c.gme_run(), 1);
  c.Observe(30.0);   // improvement 70%: beats 40% by 30 points
  EXPECT_DOUBLE_EQ(c.gme(), 30.0);
  EXPECT_EQ(c.gme_run(), 3);
  // The raw minimum tracks the sub-threshold dip separately.
  EXPECT_EQ(c.raw_min_run(), 3);
}

TEST(ConvergenceTest, GmeNeverMovesToAWorseRun) {
  ConvergenceController c(SmallMachine());
  c.Observe(100.0);
  c.Observe(20.0);   // 80% improvement
  c.Observe(95.0);   // worse, but |serial-cur|/serial has no sign
  EXPECT_DOUBLE_EQ(c.gme(), 20.0);
}

TEST(ConvergenceTest, CreditGrowsWithPositiveRoi) {
  ConvergenceController c(SmallMachine());
  c.Observe(100.0);
  c.Observe(50.0);  // ROI = 0.5 -> credit += 4
  EXPECT_NEAR(c.credit(), 1.0 + 0.5 * 8, 1e-9);
  EXPECT_DOUBLE_EQ(c.debit(), 0.0);
}

TEST(ConvergenceTest, DebitGrowsWithNegativeRoi) {
  ConvergenceParams p = SmallMachine();
  p.peak_grace = false;
  ConvergenceController c(p);
  c.Observe(100.0);
  c.Observe(50.0);   // credit 5
  c.Observe(75.0);   // ROI = -25/75 -> debit += 8/3
  EXPECT_NEAR(c.debit(), 8.0 / 3.0, 1e-9);
}

TEST(ConvergenceTest, FirstRunCreditBoundedByCoresPlusOne) {
  // Paper §3.3.1: the upper limit of the first run's credit is cores + 1.
  ConvergenceController c(SmallMachine());
  c.Observe(1000.0);
  c.Observe(1e-9);  // ROI -> ~1
  EXPECT_LE(c.credit(), 8 + 1 + 1e-6);
}

TEST(ConvergenceTest, StableSystemConvergesViaLeakingDebit) {
  // Constant times after an initial improvement: without the leak this would
  // never converge (§3.3.2); with it, convergence happens within the paper's
  // upper bound.
  ConvergenceParams p = SmallMachine();
  ConvergenceController c(p);
  bool cont = c.Observe(100.0);
  int runs = 1;
  double t = 50.0;
  while (cont && runs < 1000) {
    cont = c.Observe(t);
    ++runs;
  }
  EXPECT_LT(runs, 1000);
  EXPECT_LE(runs, c.UpperBound() + 2);
  EXPECT_GT(c.leaking_debit_value(), 0.0);
}

TEST(ConvergenceTest, WithoutLeakingDebitStableSystemDoesNotConverge) {
  ConvergenceParams p = SmallMachine();
  p.leaking_debit = false;
  p.max_runs = 200;
  ConvergenceController c(p);
  bool cont = c.Observe(100.0);
  int runs = 1;
  double t = 50.0;
  while (cont && runs < 500) {
    cont = c.Observe(t);  // perfectly stable: ROI = 0 forever
    ++runs;
  }
  // Only the hard max_runs cap stops it.
  EXPECT_GE(runs, p.max_runs);
}

TEST(ConvergenceTest, LowerBoundRunsRespected) {
  // The algorithm must not converge before cores+1 runs when parallelism
  // keeps improving the time (paper §3.3.4 lower bound).
  ConvergenceParams p = SmallMachine();
  ConvergenceController c(p);
  double t = 1000.0;
  bool cont = c.Observe(t);
  int runs = 1;
  while (cont && runs < 100) {
    t *= 0.8;  // steady improvement
    cont = c.Observe(t);
    ++runs;
  }
  EXPECT_GE(runs, c.LowerBound());
}

TEST(ConvergenceTest, PeakGraceAllowsRecoveryFromNoiseSpike) {
  ConvergenceParams p = SmallMachine();
  ConvergenceController c(p);
  c.Observe(100.0);
  c.Observe(40.0);
  // A rare OS-interference peak above the serial time: the debit would
  // exhaust the balance, but the grace run lets the descent compensate.
  bool cont_at_peak = c.Observe(900.0);
  EXPECT_TRUE(cont_at_peak);
  EXPECT_TRUE(c.Observe(40.0));  // descent restores the credit
}

TEST(ConvergenceTest, WithoutPeakGraceSpikeCanHalt) {
  ConvergenceParams p = SmallMachine();
  p.peak_grace = false;
  ConvergenceController c(p);
  c.Observe(100.0);
  c.Observe(40.0);  // credit = 1 + 0.6*8 = 5.8
  // Peak with ROI close to -1 debits ~8 > balance.
  EXPECT_FALSE(c.Observe(4000.0));
}

TEST(ConvergenceTest, MaxRunsHardCap) {
  ConvergenceParams p = SmallMachine();
  p.max_runs = 10;
  p.leaking_debit = false;
  ConvergenceController c(p);
  double t = 1000.0;
  bool cont = c.Observe(t);
  int runs = 1;
  while (cont) {
    t *= 0.9;
    cont = c.Observe(t);
    ++runs;
  }
  EXPECT_EQ(runs, 10);
}

TEST(ConvergenceTest, BoundsFormulae) {
  ConvergenceParams p;
  p.cores = 32;
  p.extra_runs = 8;
  ConvergenceController c(p);
  EXPECT_EQ(c.LowerBound(), 33);
  EXPECT_EQ(c.UpperBound(), 33 + 8 * 32);
}

}  // namespace
}  // namespace apq
