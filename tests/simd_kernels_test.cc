// Differential tests for the runtime-dispatched SIMD kernel tier
// (exec/simd/): every kernel, every dispatch tier the host supports, against
// the generic loops — exhaustively over tail lengths 0..65, all start
// offsets mod 8, and all-pass / all-fail / alternating / random predicates,
// plus misaligned candidate spans with out-of-slice ids. The house invariant
// under test: outputs are bit-identical at every tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/compare.h"
#include "exec/evaluator.h"
#include "exec/kernels.h"
#include "exec/simd/simd_ops.h"
#include "plan/builder.h"
#include "util/rng.h"

namespace apq {
namespace {

constexpr uint64_t kMaxLen = 65;   // covers 0..65: every tail mod 4 and 8
constexpr uint64_t kMaxOff = 8;    // every start alignment mod 8

/// Dispatch tiers this host can execute (scalar always; its table is
/// all-null, so routing through it IS the generic-loop path).
std::vector<simd::SimdLevel> HostTiers() {
  std::vector<simd::SimdLevel> tiers = {simd::SimdLevel::kScalar};
  if (simd::LevelSupported(simd::SimdLevel::kAvx2)) {
    tiers.push_back(simd::SimdLevel::kAvx2);
  }
  if (simd::LevelSupported(simd::SimdLevel::kAvx512)) {
    tiers.push_back(simd::SimdLevel::kAvx512);
  }
  return tiers;
}

class SimdKernelsTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = kMaxOff + kMaxLen + 7;

  void SetUp() override {
    Rng rng(23);
    std::vector<int64_t> iv(kRows);
    std::vector<int64_t> alt(kRows);
    std::vector<double> fv(kRows);
    std::vector<std::string> sv(kRows);
    const char* frags[] = {"PROMO", "PLAIN", "SPECIAL"};
    for (uint64_t i = 0; i < kRows; ++i) {
      iv[i] = rng.UniformRange(-50, 50);
      alt[i] = static_cast<int64_t>(i % 2);
      fv[i] = rng.NextDouble() * 100.0 - 50.0;
      sv[i] = std::string(frags[i % 3]) + std::to_string(i % 5);
    }
    ints_ = Column::MakeInt64("ints", std::move(iv));
    alts_ = Column::MakeInt64("alts", std::move(alt));
    floats_ = Column::MakeFloat64("floats", std::move(fv));
    strs_ = Column::MakeString("strs", sv);
  }

  // Predicates exercising all-pass, all-fail, alternating, and partial
  // selectivity for a column.
  static std::vector<Predicate> IntPreds() {
    return {Predicate::RangeI64(-1000, 1000),  // all pass
            Predicate::RangeI64(900, 100),     // all fail (empty range)
            Predicate::EqI64(1),               // alternating on alts_
            Predicate::RangeI64(-10, 10),      // partial
            Predicate::RangeF64(-25.5, 25.5)}; // cross-typed over i64
  }
  static std::vector<Predicate> FloatPreds() {
    return {Predicate::RangeF64(-1000.0, 1000.0),  // all pass
            Predicate::RangeF64(10.0, -10.0),      // all fail
            Predicate::RangeF64(-20.0, 20.0),      // partial
            Predicate::RangeI64(-20, 20),          // cross-typed over f64
            Predicate::EqI64(7)};                  // cross-typed eq
  }

  // Runs SelectDense at `tier` and with the generic loops over every
  // (offset, length) subrange and requires identical selection vectors.
  void DenseDiff(const Column& col, const Predicate& pred) {
    const std::vector<uint8_t> like =
        pred.kind == Predicate::Kind::kLike ? BuildLikeMatch(col, pred)
                                            : std::vector<uint8_t>();
    const std::vector<uint8_t>* lm =
        pred.kind == Predicate::Kind::kLike ? &like : nullptr;
    for (simd::SimdLevel tier : HostTiers()) {
      const simd::SimdOps* ops = &simd::OpsFor(tier);
      for (uint64_t off = 0; off < kMaxOff; ++off) {
        for (uint64_t len = 0; len <= kMaxLen; ++len) {
          const RowRange r{off, off + len};
          std::vector<oid> got, want;
          SelectDense(col, r, pred, lm, &want, nullptr);
          SelectDense(col, r, pred, lm, &got, ops);
          ASSERT_EQ(got, want)
              << "tier=" << simd::LevelName(tier) << " off=" << off
              << " len=" << len << " pred kind=" << static_cast<int>(pred.kind);
        }
      }
    }
  }

  // Candidate-span differential: ids carry in-slice and out-of-slice rows;
  // the span starts at every offset mod 8 (misaligned spans) and the slice
  // boundary clips both ends.
  void CandDiff(const Column& col, const Predicate& pred) {
    const std::vector<uint8_t> like =
        pred.kind == Predicate::Kind::kLike ? BuildLikeMatch(col, pred)
                                            : std::vector<uint8_t>();
    const std::vector<uint8_t>* lm =
        pred.kind == Predicate::Kind::kLike ? &like : nullptr;
    Rng rng(91);
    std::vector<oid> ids(kMaxOff + kMaxLen);
    for (auto& id : ids) id = rng.Uniform(kRows + 8);  // some beyond any slice
    const RowRange slice{3, kRows - 4};
    for (simd::SimdLevel tier : HostTiers()) {
      const simd::SimdOps* ops = &simd::OpsFor(tier);
      for (uint64_t off = 0; off < kMaxOff; ++off) {
        for (uint64_t len = 0; len <= kMaxLen; ++len) {
          std::vector<oid> got, want;
          uint64_t got_acc = 0, want_acc = 0;
          SelectCandidatesSpan(col, slice, pred, lm, ids.data() + off, len,
                               &want, &want_acc, nullptr);
          SelectCandidatesSpan(col, slice, pred, lm, ids.data() + off, len,
                               &got, &got_acc, ops);
          ASSERT_EQ(got, want)
              << "tier=" << simd::LevelName(tier) << " off=" << off
              << " len=" << len << " pred kind=" << static_cast<int>(pred.kind);
          ASSERT_EQ(got_acc, want_acc)
              << "tier=" << simd::LevelName(tier) << " off=" << off
              << " len=" << len;
        }
      }
    }
  }

  ColumnPtr ints_, alts_, floats_, strs_;
};

TEST_F(SimdKernelsTest, DenseSelectTailsAndOffsets) {
  for (const Predicate& p : IntPreds()) {
    DenseDiff(*ints_, p);
    DenseDiff(*alts_, p);
  }
  for (const Predicate& p : FloatPreds()) DenseDiff(*floats_, p);
  DenseDiff(*strs_, Predicate::Like("PROMO"));
  DenseDiff(*strs_, Predicate::Like("SPECIAL", /*anti=*/true));
}

TEST_F(SimdKernelsTest, CandidateSelectMisalignedSpans) {
  for (const Predicate& p : IntPreds()) {
    CandDiff(*ints_, p);
    CandDiff(*alts_, p);
  }
  for (const Predicate& p : FloatPreds()) CandDiff(*floats_, p);
  CandDiff(*strs_, Predicate::Like("PROMO"));
}

TEST_F(SimdKernelsTest, GatherTailsAndOffsets) {
  Rng rng(5);
  std::vector<oid> ids(kMaxOff + kMaxLen);
  for (auto& id : ids) id = rng.Uniform(kRows);  // all valid
  const RowRange full{0, kRows};
  for (simd::SimdLevel tier : HostTiers()) {
    const simd::SimdOps* ops = &simd::OpsFor(tier);
    for (const Column* col : {ints_.get(), floats_.get()}) {
      for (uint64_t off = 0; off < kMaxOff; ++off) {
        for (uint64_t len = 0; len <= kMaxLen; ++len) {
          std::vector<oid> head_a, head_b;
          ValueVec va, vb;
          va.type = col->type();
          vb.type = col->type();
          ASSERT_TRUE(GatherRowsSpan(*col, ids.data() + off, len, full, false,
                                     AlignPolicy::kStrict, &head_a, &va,
                                     nullptr)
                          .ok());
          ASSERT_TRUE(GatherRowsSpan(*col, ids.data() + off, len, full, false,
                                     AlignPolicy::kStrict, &head_b, &vb, ops)
                          .ok());
          ASSERT_EQ(head_a, head_b);
          ASSERT_EQ(va.i64, vb.i64);
          ASSERT_EQ(va.f64, vb.f64);

          // Positional form over the same span.
          std::vector<oid> hc(len), hd(len);
          ValueVec vc, vd;
          vc.type = vd.type = col->type();
          if (col->type() == DataType::kFloat64) {
            vc.f64.resize(len);
            vd.f64.resize(len);
          } else {
            vc.i64.resize(len);
            vd.i64.resize(len);
          }
          ASSERT_TRUE(GatherRowsAt(*col, ids.data() + off, len, full, false,
                                   hc.data(), &vc, 0, nullptr)
                          .ok());
          ASSERT_TRUE(GatherRowsAt(*col, ids.data() + off, len, full, false,
                                   hd.data(), &vd, 0, ops)
                          .ok());
          ASSERT_EQ(hc, hd);
          ASSERT_EQ(vc.i64, vd.i64);
          ASSERT_EQ(vc.f64, vd.f64);
        }
      }
    }
  }
}

TEST_F(SimdKernelsTest, ReductionsMatchScalarFolds) {
  Rng rng(17);
  for (simd::SimdLevel tier : HostTiers()) {
    const simd::SimdOps* ops = &simd::OpsFor(tier);
    if (ops->minmax_i64 == nullptr) continue;  // scalar: nothing to diff
    for (uint64_t off = 0; off < kMaxOff; ++off) {
      for (uint64_t len = 1; len <= kMaxLen; ++len) {
        const int64_t* iv = ints_->i64().data() + off;
        int64_t mn, mx;
        ops->minmax_i64(iv, len, &mn, &mx);
        EXPECT_EQ(mn, *std::min_element(iv, iv + len));
        EXPECT_EQ(mx, *std::max_element(iv, iv + len));

        const double* dv = floats_->f64().data() + off;
        double fmn, fmx;
        ops->minmax_f64(dv, len, &fmn, &fmx);
        EXPECT_EQ(fmn, *std::min_element(dv, dv + len));
        EXPECT_EQ(fmx, *std::max_element(dv, dv + len));

        // Exact SUM: result must equal the sequential double fold bit for
        // bit whenever the kernel claims exactness.
        double s;
        if (ops->sum_i64_exact(iv, len, &s)) {
          double want = 0.0;
          for (uint64_t i = 0; i < len; ++i) {
            want += static_cast<double>(iv[i]);
          }
          EXPECT_EQ(s, want) << "tier=" << simd::LevelName(tier)
                             << " off=" << off << " len=" << len;
        }
      }
    }
    // The no-rounding guard must decline sums it cannot prove exact.
    std::vector<int64_t> huge(32, (1ll << 60));
    double s;
    EXPECT_FALSE(ops->sum_i64_exact(huge.data(), huge.size(), &s));
  }
}

TEST(SimdDispatchTest, ParseSimdLevelNames) {
  simd::SimdLevel lvl;
  EXPECT_TRUE(simd::ParseSimdLevelName("scalar", &lvl));
  EXPECT_EQ(lvl, simd::SimdLevel::kScalar);
  EXPECT_TRUE(simd::ParseSimdLevelName("AVX2", &lvl));
  EXPECT_EQ(lvl, simd::SimdLevel::kAvx2);
  EXPECT_TRUE(simd::ParseSimdLevelName("Avx512", &lvl));
  EXPECT_EQ(lvl, simd::SimdLevel::kAvx512);
  EXPECT_FALSE(simd::ParseSimdLevelName("", &lvl));
  EXPECT_FALSE(simd::ParseSimdLevelName("avx", &lvl));
  EXPECT_FALSE(simd::ParseSimdLevelName("avx5120", &lvl));
  EXPECT_FALSE(simd::ParseSimdLevelName("sse42", &lvl));
  EXPECT_FALSE(simd::ParseSimdLevelName(nullptr, &lvl));
}

TEST(SimdDispatchTest, TierTablesMatchTheirLevel) {
  // Scalar: all-null table (routing through it is the generic path).
  const simd::SimdOps& sc = simd::OpsFor(simd::SimdLevel::kScalar);
  EXPECT_EQ(sc.level, simd::SimdLevel::kScalar);
  EXPECT_EQ(sc.select_range_i64, nullptr);
  EXPECT_EQ(sc.gather_i64, nullptr);
  EXPECT_EQ(sc.sum_i64_exact, nullptr);
  // Supported vector tiers advertise their own level and carry the core ops.
  for (simd::SimdLevel t :
       {simd::SimdLevel::kAvx2, simd::SimdLevel::kAvx512}) {
    if (!simd::LevelSupported(t)) continue;
    const simd::SimdOps& o = simd::OpsFor(t);
    EXPECT_EQ(o.level, t);
    EXPECT_NE(o.select_range_i64, nullptr);
    EXPECT_NE(o.select_cand_range_i64, nullptr);
    EXPECT_NE(o.gather_i64, nullptr);
    EXPECT_NE(o.minmax_f64, nullptr);
  }
  // Requests above the host's capability clamp to a runnable table.
  const simd::SimdOps& top = simd::OpsFor(simd::SimdLevel::kAvx512);
  EXPECT_LE(top.level, simd::HighestSupported());
  // kAuto resolves to the active table.
  EXPECT_EQ(&simd::OpsFor(simd::SimdLevel::kAuto), &simd::Ops());
}

// End-to-end: full query plans through the evaluator at every tier, every
// morsel size, and 1/2/4/8 workers must equal the scalar row-at-a-time
// interpreter on every intermediate (the acceptance invariant).
class SimdEvaluatorTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 6000;

  void SetUp() override {
    Rng rng(41);
    std::vector<int64_t> iv(kRows), keys(kRows);
    std::vector<double> fv(kRows);
    std::vector<std::string> sv(kRows);
    const char* frags[] = {"PROMO", "PLAIN", "SPECIAL", "BULK"};
    for (uint64_t i = 0; i < kRows; ++i) {
      iv[i] = rng.UniformRange(-500, 500);
      keys[i] = rng.UniformRange(0, 40);
      fv[i] = rng.NextDouble() * 1000.0 - 500.0;
      sv[i] = std::string(frags[rng.Uniform(4)]) + std::to_string(i % 7);
    }
    ints_ = Column::MakeInt64("ints", std::move(iv));
    keys_ = Column::MakeInt64("keys", std::move(keys));
    floats_ = Column::MakeFloat64("floats", std::move(fv));
    strs_ = Column::MakeString("strs", sv);
    scalar_.set_use_kernels(false);
  }

  QueryPlan Workload() {
    PlanBuilder b("simd");
    int sel = b.Select(ints_.get(), Predicate::RangeI64(-200, 200));
    int sel2 = b.Select(strs_.get(), Predicate::Like("PROMO"), sel);
    int vals = b.FetchJoin(ints_.get(), sel2);
    int keys = b.FetchJoin(keys_.get(), sel2);
    int grp = b.GroupBy(keys);
    int agg = b.AggGrouped(AggFn::kSum, grp, vals);
    int fsel = b.Select(floats_.get(), Predicate::RangeF64(-300.0, 300.0));
    int fvals = b.FetchJoin(floats_.get(), fsel);
    b.AggScalar(AggFn::kMin, fvals);
    return b.Result(agg);
  }

  void ExpectSameAs(const EvalResult& want, const ExecOptions& o) {
    Evaluator e(o);
    EvalResult got;
    ASSERT_TRUE(e.Execute(Workload(), &got).ok());
    EXPECT_EQ(DiffIntermediates(want.result, got.result), "");
    for (const auto& [id, inter] : want.intermediates) {
      ASSERT_TRUE(got.intermediates.count(id)) << "node " << id;
      EXPECT_EQ(DiffIntermediates(inter, got.intermediates.at(id)), "")
          << "node " << id;
    }
  }

  ColumnPtr ints_, keys_, floats_, strs_;
  Evaluator scalar_;
};

TEST_F(SimdEvaluatorTest, BitIdenticalAcrossTiersMorselsAndWorkers) {
  EvalResult want;
  ASSERT_TRUE(scalar_.Execute(Workload(), &want).ok());
  for (simd::SimdLevel tier : HostTiers()) {
    for (uint64_t morsel_rows : {uint64_t{256}, uint64_t{1024}}) {
      for (int workers : {1, 2, 4, 8}) {
        ExecOptions o;
        o.use_kernels = true;
        o.use_morsels = true;
        o.morsel_rows = morsel_rows;
        o.morsel_workers = workers;
        o.simd_level = tier;
        SCOPED_TRACE(std::string("tier=") + simd::LevelName(tier) +
                     " morsel=" + std::to_string(morsel_rows) +
                     " workers=" + std::to_string(workers));
        ExpectSameAs(want, o);
      }
    }
  }
}

}  // namespace
}  // namespace apq
