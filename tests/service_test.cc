// The query-service front-end: admission-controller policy (FIFO order,
// priority aging, shedding) driven with synthetic clocks, the wire protocol
// (parse and serialize), the shared admission constants, and live socket
// sessions against a running QueryService — round-trips, pipelined FIFO,
// burst shedding with a surviving server, and the determinism contract
// (served bytes identical to direct Engine::RunPlan at 1/2/4/8 workers).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "sched/morsel_scheduler.h"
#include "service/admission.h"
#include "service/admission_limits.h"
#include "service/protocol.h"
#include "service/query_service.h"
#include "workload/tpch.h"

namespace apq {
namespace service {
namespace {

// ---- shared admission constants ---------------------------------------------

TEST(AdmissionLimitsTest, GrantFormulaMatchesTheVectorwiseRule) {
  // First client: the whole machine. Later clients: cores / active.
  EXPECT_EQ(AdmissionGrant(32, 0), 32);
  EXPECT_EQ(AdmissionGrant(32, 1), 32);
  EXPECT_EQ(AdmissionGrant(32, 2), 16);
  EXPECT_EQ(AdmissionGrant(32, 4), 8);
  EXPECT_EQ(AdmissionGrant(32, 64), 1);  // floor at one worker
  EXPECT_EQ(AdmissionGrant(0, 3), 1);
}

TEST(AdmissionLimitsTest, ShortQueriesAgeFasterThanHeavies) {
  EXPECT_GT(AgingScore(/*heavy=*/false, 1e6),
            AgingScore(/*heavy=*/true, 1e6));
  // Weight ratio is the promotion horizon: a short arriving t after a heavy
  // overtakes it once wait_short * w_short > wait_heavy * w_heavy.
  EXPECT_DOUBLE_EQ(AgingScore(false, 1e6), 1e6 * kShortAgingWeight);
  EXPECT_DOUBLE_EQ(AgingScore(true, 1e6), 1e6 * kHeavyAgingWeight);
}

// ---- admission controller (synthetic clocks, no threads) --------------------

AdmissionConfig TinyConfig(int max_concurrent, std::size_t depth) {
  AdmissionConfig cfg;
  cfg.max_concurrent = max_concurrent;
  cfg.max_queue_depth = depth;
  return cfg;
}

TEST(AdmissionControllerTest, SameClassClaimsAreFifo) {
  AdmissionController ac(TinyConfig(1, 64));
  for (uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(ac.Enqueue(id, /*heavy=*/true, /*now_ns=*/1000.0 + id),
              AdmitResult::kQueued);
  }
  uint64_t id = 0;
  double wait = 0;
  for (uint64_t expect = 1; expect <= 5; ++expect) {
    ASSERT_TRUE(ac.TryClaim(/*now_ns=*/2000.0, &id, &wait));
    EXPECT_EQ(id, expect);  // arrival order: equal weights resolve FIFO
    ac.Release();
  }
  EXPECT_FALSE(ac.TryClaim(2000.0, &id, &wait));
  EXPECT_EQ(ac.Stats().promoted_total, 0u);  // pure FIFO, nothing jumped
}

TEST(AdmissionControllerTest, AgingPromotesAStarvedShortSelect) {
  AdmissionController ac(TinyConfig(1, 64));
  // A burst of heavies lands first; a short select arrives later.
  ASSERT_EQ(ac.Enqueue(1, true, 0.0), AdmitResult::kQueued);
  ASSERT_EQ(ac.Enqueue(2, true, 0.0), AdmitResult::kQueued);
  ASSERT_EQ(ac.Enqueue(3, false, 900.0), AdmitResult::kQueued);

  // At t=1000: heavies have waited 1000 (score 1000), the short 100
  // (score 400). FIFO wins — no premature promotion.
  uint64_t id = 0;
  double wait = 0;
  ASSERT_TRUE(ac.TryClaim(1000.0, &id, &wait));
  EXPECT_EQ(id, 1u);
  EXPECT_DOUBLE_EQ(wait, 1000.0);

  // By t=1400: heavy #2 scores 1400, the short (1400-900)*4 = 2000 — the
  // short overtakes the older heavy.
  ASSERT_TRUE(ac.TryClaim(1400.0, &id, &wait));
  EXPECT_EQ(id, 3u);
  EXPECT_DOUBLE_EQ(wait, 500.0);
  EXPECT_EQ(ac.Stats().promoted_total, 1u);

  // The heavy is never starved: its score keeps growing and it drains last.
  ASSERT_TRUE(ac.TryClaim(1500.0, &id, &wait));
  EXPECT_EQ(id, 2u);
}

TEST(AdmissionControllerTest, ShedsAtDepthPlusFreeSlots) {
  AdmissionController ac(TinyConfig(1, 2));
  // Handoff flows through the queue, so each free executor slot extends
  // the depth bound by one: idle single executor + depth 2 admits 3.
  ASSERT_EQ(ac.Enqueue(1, true, 0.0), AdmitResult::kQueued);
  ASSERT_EQ(ac.Enqueue(2, true, 0.0), AdmitResult::kQueued);
  ASSERT_EQ(ac.Enqueue(3, true, 0.0), AdmitResult::kQueued);
  EXPECT_EQ(ac.Enqueue(4, true, 0.0), AdmitResult::kShed);

  uint64_t id = 0;
  double wait = 0;
  ASSERT_TRUE(ac.TryClaim(1.0, &id, &wait));  // active=1, queue back to 2

  // Slot held and the queue at depth: arrivals shed, counted but not
  // enqueued.
  EXPECT_EQ(ac.Enqueue(5, true, 2.0), AdmitResult::kShed);
  const AdmissionStats s = ac.Stats();
  EXPECT_EQ(s.shed_total, 2u);
  EXPECT_EQ(s.queued, 2u);
  EXPECT_EQ(s.queue_depth_peak, 3u);

  // Finishing the claimed query frees its slot and one more admit fits.
  ac.Release();
  EXPECT_EQ(ac.Enqueue(6, true, 3.0), AdmitResult::kQueued);
}

TEST(AdmissionControllerTest, ShutdownShedsNewAndDrainsQueued) {
  AdmissionController ac(TinyConfig(2, 8));
  ASSERT_EQ(ac.Enqueue(1, false, 0.0), AdmitResult::kQueued);
  ac.Shutdown();
  EXPECT_EQ(ac.Enqueue(2, false, 1.0), AdmitResult::kShed);
  uint64_t id = 0;
  double wait = 0;
  EXPECT_TRUE(ac.WaitClaim(&id, &wait));  // drains the queued entry
  EXPECT_EQ(id, 1u);
  ac.Release();
  EXPECT_FALSE(ac.WaitClaim(&id, &wait));  // then reports shutdown
}

// ---- wire protocol ----------------------------------------------------------

TEST(ProtocolTest, ParsesQueryTagAndSelectivity) {
  Request req;
  ASSERT_TRUE(ParseRequest("RUN Q6", &req).ok());
  EXPECT_EQ(req.query, "Q6");
  EXPECT_EQ(req.tag, 0u);
  EXPECT_LT(req.sel, 0.0);

  ASSERT_TRUE(ParseRequest("RUN Q9 tag=42", &req).ok());
  EXPECT_EQ(req.query, "Q9");
  EXPECT_EQ(req.tag, 42u);

  ASSERT_TRUE(ParseRequest("RUN Q6 tag=7 sel=0.25", &req).ok());
  EXPECT_DOUBLE_EQ(req.sel, 0.25);
}

TEST(ProtocolTest, RejectsMalformedLinesWithoutCrashing) {
  Request req;
  EXPECT_FALSE(ParseRequest("", &req).ok());
  EXPECT_FALSE(ParseRequest("GET Q6", &req).ok());
  EXPECT_FALSE(ParseRequest("RUN", &req).ok());
  EXPECT_FALSE(ParseRequest("RUN Q6 tag=abc", &req).ok());
  EXPECT_FALSE(ParseRequest("RUN Q6 sel=1.5", &req).ok());
  EXPECT_FALSE(ParseRequest("RUN Q6 sel=-0.1", &req).ok());
  EXPECT_FALSE(ParseRequest("RUN Q6 bogus=1", &req).ok());
  EXPECT_FALSE(ParseRequest("RUN Q6 =1", &req).ok());
}

TEST(ProtocolTest, ErrResponseIsTypedAndSingleLine) {
  const std::string err = ErrResponse(ErrType::kShed, 9, "queue\nfull");
  EXPECT_EQ(err, "ERR SHED tag=9 queue full\nEND\n");
  EXPECT_EQ(std::string(ErrTypeName(ErrType::kParse)), "PARSE");
  EXPECT_EQ(std::string(ErrTypeName(ErrType::kPlan)), "PLAN");
  EXPECT_EQ(std::string(ErrTypeName(ErrType::kExec)), "EXEC");
}

TEST(ProtocolTest, ScalarSerializationRoundTripsExactDoubles) {
  Intermediate r;
  r.kind = Intermediate::Kind::kScalar;
  r.scalar = 0.1 + 0.2;  // not 0.3 in binary; %.17g must preserve the bits
  r.scalar_count = 3;
  const std::string s = SerializeResult(r);
  double parsed = 0;
  long long count = 0;
  ASSERT_EQ(std::sscanf(s.c_str(), "ROW %lf %lld", &parsed, &count), 2);
  EXPECT_EQ(parsed, 0.1 + 0.2);  // bit-exact, not approximately
  EXPECT_EQ(count, 3);
}

// ---- service config hardening ----------------------------------------------

TEST(ServiceConfigTest, ParseServiceLimitAcceptsRangeRejectsGarbage) {
  EXPECT_EQ(ParseServiceLimit("4", 1, 256), 4);
  EXPECT_EQ(ParseServiceLimit("1", 1, 256), 1);
  EXPECT_EQ(ParseServiceLimit("256", 1, 256), 256);
  EXPECT_EQ(ParseServiceLimit("0", 1, 256), -1);
  EXPECT_EQ(ParseServiceLimit("257", 1, 256), -1);
  EXPECT_EQ(ParseServiceLimit("abc", 1, 256), -1);
  EXPECT_EQ(ParseServiceLimit("4x", 1, 256), -1);
  EXPECT_EQ(ParseServiceLimit("", 1, 256), -1);
  EXPECT_EQ(ParseServiceLimit(nullptr, 1, 256), -1);
}

TEST(ServiceConfigTest, HeavyClassificationMatchesThePaperSplit) {
  EXPECT_FALSE(IsHeavyQuery("Q6"));
  EXPECT_FALSE(IsHeavyQuery("Q14"));
  EXPECT_TRUE(IsHeavyQuery("Q4"));
  EXPECT_TRUE(IsHeavyQuery("Q9"));
  EXPECT_TRUE(IsHeavyQuery("Q19"));
}

// ---- live socket sessions ---------------------------------------------------

// Socket reads see a response the instant the write lands, which can be a
// hair before the executor bumps its completion counters; stats assertions
// poll briefly instead of racing.
template <typename F>
bool Eventually(F f, int ms = 2000) {
  for (int i = 0; i < ms; ++i) {
    if (f()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return f();
}

std::shared_ptr<Catalog> TestCatalog() {
  static std::shared_ptr<Catalog> catalog = [] {
    TpchConfig cfg;
    cfg.lineitem_rows = 20'000;
    return Tpch::Generate(cfg);
  }();
  return catalog;
}

// A blocking line-protocol client: one connected session.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void Send(const std::string& data) {
    ASSERT_EQ(::send(fd_, data.data(), data.size(), 0),
              static_cast<ssize_t>(data.size()));
  }

  // Reads until `count` END-terminated response blocks have arrived.
  std::string ReadResponses(int count) {
    std::string out;
    int seen = 0;
    char buf[4096];
    while (seen < count) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
      seen = 0;
      size_t pos = 0;
      while ((pos = out.find("END\n", pos)) != std::string::npos) {
        ++seen;
        pos += 4;
      }
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::vector<std::string> SplitBlocks(const std::string& responses) {
  std::vector<std::string> blocks;
  size_t start = 0, pos = 0;
  while ((pos = responses.find("END\n", start)) != std::string::npos) {
    blocks.push_back(responses.substr(start, pos + 4 - start));
    start = pos + 4;
  }
  return blocks;
}

// First line of a response block.
std::string Header(const std::string& block) {
  return block.substr(0, block.find('\n'));
}

TEST(QueryServiceTest, RoundTripsAQueryOverALiveSocket) {
  QueryService svc;
  ServiceConfig cfg;
  cfg.max_concurrent = 2;
  cfg.morsel_workers = 2;
  ASSERT_TRUE(svc.Start(TestCatalog(), cfg).ok());
  ASSERT_GT(svc.port(), 0);

  Client c(svc.port());
  ASSERT_TRUE(c.connected());
  c.Send("RUN Q6 tag=11\n");
  const std::string resp = c.ReadResponses(1);
  EXPECT_EQ(resp.rfind("OK id=", 0), 0u) << resp;
  EXPECT_NE(resp.find(" tag=11 "), std::string::npos) << resp;
  EXPECT_NE(resp.find("ROW "), std::string::npos) << resp;
  EXPECT_NE(resp.find("queue_wait_ns="), std::string::npos) << resp;

  EXPECT_TRUE(Eventually(
      [&] { return svc.Stats().admission.completed_total == 1; }));
  const ServiceStats s = svc.Stats();
  EXPECT_EQ(s.requests_total, 1u);
  EXPECT_EQ(s.responses_total, 1u);
  svc.Stop();
  EXPECT_FALSE(svc.running());
}

TEST(QueryServiceTest, TypedErrorsForParseAndPlanFailures) {
  QueryService svc;
  ServiceConfig cfg;
  cfg.max_concurrent = 1;
  cfg.morsel_workers = 2;
  ASSERT_TRUE(svc.Start(TestCatalog(), cfg).ok());

  Client c(svc.port());
  ASSERT_TRUE(c.connected());
  c.Send("FLY Q6\nRUN Q99 tag=5\nRUN Q9 sel=0.5 tag=6\nRUN Q6 tag=7\n");
  const auto blocks = SplitBlocks(c.ReadResponses(4));
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].rfind("ERR PARSE tag=0 ", 0), 0u) << blocks[0];
  EXPECT_EQ(blocks[1].rfind("ERR PLAN tag=5 ", 0), 0u) << blocks[1];
  EXPECT_NE(blocks[1].find("unknown query 'Q99'"), std::string::npos);
  EXPECT_EQ(blocks[2].rfind("ERR PLAN tag=6 ", 0), 0u) << blocks[2];
  EXPECT_NE(blocks[2].find("sel= is only valid for Q6"), std::string::npos);
  // The session survives every error and still serves real queries.
  EXPECT_EQ(blocks[3].rfind("OK id=", 0), 0u) << blocks[3];
  svc.Stop();
}

TEST(QueryServiceTest, PipelinedBurstStaysFifoAndBoundsConcurrency) {
  QueryService svc;
  ServiceConfig cfg;
  cfg.max_concurrent = 1;  // serial executor: response order == claim order
  cfg.morsel_workers = 2;
  ASSERT_TRUE(svc.Start(TestCatalog(), cfg).ok());

  Client c(svc.port());
  ASSERT_TRUE(c.connected());
  // Same-class burst: aging cannot reorder equal weights, so claims are
  // FIFO and the tags come back in send order.
  std::string burst;
  for (int i = 1; i <= 6; ++i) {
    burst += "RUN Q6 tag=" + std::to_string(i) + "\n";
  }
  c.Send(burst);
  const auto blocks = SplitBlocks(c.ReadResponses(6));
  ASSERT_EQ(blocks.size(), 6u);
  for (int i = 1; i <= 6; ++i) {
    EXPECT_NE(Header(blocks[static_cast<size_t>(i - 1)])
                  .find(" tag=" + std::to_string(i) + " "),
              std::string::npos)
        << blocks[static_cast<size_t>(i - 1)];
  }
  // The burst outran the single executor: entries waited in the queue and
  // the peak depth shows it.
  EXPECT_TRUE(Eventually(
      [&] { return svc.Stats().admission.completed_total == 6; }));
  const ServiceStats s = svc.Stats();
  EXPECT_GE(s.admission.queue_depth_peak, 1u);
  EXPECT_EQ(s.admission.shed_total, 0u);
  svc.Stop();
}

TEST(QueryServiceTest, OverloadShedsTypedErrorAndServerSurvives) {
  QueryService svc;
  ServiceConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue_depth = 2;
  cfg.morsel_workers = 2;
  ASSERT_TRUE(svc.Start(TestCatalog(), cfg).ok());

  Client c(svc.port());
  ASSERT_TRUE(c.connected());
  // 10 pipelined heavies against one executor and depth 2: the structural
  // admit bound is depth + free slots = 3, so the tail MUST shed.
  std::string burst;
  for (int i = 1; i <= 10; ++i) {
    burst += "RUN Q9 tag=" + std::to_string(i) + "\n";
  }
  c.Send(burst);
  const auto blocks = SplitBlocks(c.ReadResponses(10));
  ASSERT_EQ(blocks.size(), 10u);
  int ok = 0, shed = 0;
  for (const std::string& b : blocks) {
    if (b.rfind("OK ", 0) == 0) ++ok;
    if (b.rfind("ERR SHED ", 0) == 0) {
      ++shed;
      // Shed responses are written by the reader the moment the queue
      // rejects, so they land before the queued OKs — order is not FIFO
      // here, which is exactly the fast-rejection contract.
      EXPECT_NE(b.find("retry later"), std::string::npos) << b;
    }
  }
  EXPECT_EQ(ok + shed, 10);
  EXPECT_GE(shed, 1) << "burst of 10 into depth 2 must shed";

  EXPECT_TRUE(
      Eventually([&] { return svc.Stats().responses_total == 10; }));
  EXPECT_EQ(svc.Stats().admission.shed_total, static_cast<uint64_t>(shed));

  // The server survives overload: a fresh session still round-trips.
  Client c2(svc.port());
  ASSERT_TRUE(c2.connected());
  c2.Send("RUN Q6 tag=99\n");
  EXPECT_EQ(c2.ReadResponses(1).rfind("OK id=", 0), 0u);
  svc.Stop();
}

TEST(QueryServiceTest, DebugJsonCarriesAdmissionState) {
  QueryService svc;
  ServiceConfig cfg;
  cfg.max_concurrent = 2;
  cfg.max_queue_depth = 8;
  cfg.morsel_workers = 2;
  ASSERT_TRUE(svc.Start(TestCatalog(), cfg).ok());

  Client c(svc.port());
  ASSERT_TRUE(c.connected());
  c.Send("RUN Q6 tag=1\nRUN Q14 tag=2\n");
  c.ReadResponses(2);
  ASSERT_TRUE(Eventually(
      [&] { return svc.Stats().admission.completed_total == 2; }));

  const std::string json = svc.DebugJson();
  EXPECT_NE(json.find("\"max_concurrent\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_queue_depth\":8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed_total\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fleet_workers\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_p99_ns\":"), std::string::npos) << json;

  // The static provider wraps every live service.
  const std::string all = QueryService::ServiceJson();
  EXPECT_EQ(all.rfind("{\"services\":[", 0), 0u) << all;
  EXPECT_NE(all.find("\"completed_total\":2"), std::string::npos) << all;
  svc.Stop();
  EXPECT_EQ(QueryService::ServiceJson(), "{\"services\":[]}");
}

// ---- determinism: served bytes == direct engine bytes -----------------------

TEST(QueryServiceTest, ServedResultsAreBitIdenticalToDirectExecution) {
  auto catalog = TestCatalog();

  // Direct reference: a plain morsel engine with its own fleet.
  std::map<std::string, std::string> reference;
  {
    EngineConfig cfg;
    cfg.use_morsels = true;
    Engine engine(cfg);
    for (const std::string& name : Tpch::QueryNames()) {
      auto plan = Tpch::Query(*catalog, name);
      ASSERT_TRUE(plan.ok());
      auto run = engine.RunPlan(plan.ValueOrDie());
      ASSERT_TRUE(run.ok());
      reference[name] = SerializeResult(run.ValueOrDie().result);
    }
  }

  for (const int workers : {1, 2, 4, 8}) {
    QueryService svc;
    ServiceConfig cfg;
    cfg.max_concurrent = 2;
    cfg.morsel_workers = workers;
    ASSERT_TRUE(svc.Start(catalog, cfg).ok());
    Client c(svc.port());
    ASSERT_TRUE(c.connected());
    std::string burst;
    const auto names = Tpch::QueryNames();
    for (size_t i = 0; i < names.size(); ++i) {
      burst += "RUN " + names[i] + " tag=" + std::to_string(i + 1) + "\n";
    }
    c.Send(burst);
    const auto blocks = SplitBlocks(c.ReadResponses(static_cast<int>(
        names.size())));
    ASSERT_EQ(blocks.size(), names.size());
    for (const std::string& block : blocks) {
      const std::string header = Header(block);
      ASSERT_EQ(header.rfind("OK id=", 0), 0u) << header;
      // Recover which query this is from the echoed tag.
      const size_t tp = header.find(" tag=");
      const size_t tag = std::stoull(header.substr(tp + 5));
      ASSERT_GE(tag, 1u);
      ASSERT_LE(tag, names.size());
      // Body (ROW lines between header and END) must match the direct
      // serialization byte for byte.
      const size_t body_start = block.find('\n') + 1;
      const size_t body_end = block.rfind("END\n");
      const std::string body =
          block.substr(body_start, body_end - body_start);
      EXPECT_EQ(body, reference[names[tag - 1]])
          << names[tag - 1] << " at " << workers << " workers";
    }
    svc.Stop();
  }
}

}  // namespace
}  // namespace service
}  // namespace apq
