// Morsel-driven intra-operator execution: the work-stealing scheduler, the
// morsel source, and — above all — bit-identity of morsel execution against
// whole-column kernels and the scalar interpreter across morsel sizes, worker
// counts, table shapes, and predicate selectivities.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "exec/compare.h"
#include "exec/evaluator.h"
#include "exec/morsel_source.h"
#include "plan/builder.h"
#include "sched/morsel_scheduler.h"
#include "util/rng.h"
#include "workload/tpch.h"

namespace apq {
namespace {

// ---- MorselSource ----------------------------------------------------------

TEST(MorselSourceTest, CoversRangeExactlyOnce) {
  MorselSource src(100, 1000, 128);
  ASSERT_EQ(src.num_morsels(), 8u);  // 900 rows / 128
  uint64_t expect_begin = 100;
  uint64_t covered = 0;
  for (size_t i = 0; i < src.num_morsels(); ++i) {
    Morsel m = src.morsel(i);
    EXPECT_EQ(m.index, i);
    EXPECT_EQ(m.begin, expect_begin);
    EXPECT_GT(m.end, m.begin);
    EXPECT_LE(m.size(), 128u);
    expect_begin = m.end;
    covered += m.size();
  }
  EXPECT_EQ(expect_begin, 1000u);
  EXPECT_EQ(covered, 900u);
}

TEST(MorselSourceTest, EmptyAndOversizedInputs) {
  EXPECT_EQ(MorselSource(5, 5, 64).num_morsels(), 0u);
  EXPECT_EQ(MorselSource(0, 0, 64).num_morsels(), 0u);
  // Morsel larger than the input: one morsel, the whole input.
  MorselSource big(0, 10, 1 << 20);
  ASSERT_EQ(big.num_morsels(), 1u);
  EXPECT_EQ(big.morsel(0).begin, 0u);
  EXPECT_EQ(big.morsel(0).end, 10u);
  // morsel_rows = 0 falls back to the default, never divides by zero.
  EXPECT_EQ(MorselSource(0, 10, 0).num_morsels(), 1u);
}

// ---- MorselScheduler -------------------------------------------------------

TEST(MorselSchedulerTest, RunsEveryIndexExactlyOnce) {
  MorselScheduler sched(4);
  EXPECT_EQ(sched.num_workers(), 4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  sched.ParallelFor(n, [&](size_t i, int) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_EQ(sched.total_tasks(), n);
}

TEST(MorselSchedulerTest, ZeroTasksReturnsImmediately) {
  MorselScheduler sched(2);
  bool ran = false;
  sched.ParallelFor(0, [&](size_t, int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(MorselSchedulerTest, ReportsValidWorkerIds) {
  MorselScheduler sched(3);
  std::vector<std::atomic<int>> seen(4);
  for (auto& s : seen) s.store(0);
  sched.ParallelFor(64, [&](size_t, int worker) {
    ASSERT_GE(worker, MorselScheduler::kCallerWorker);
    ASSERT_LT(worker, 3);
    seen[worker + 1].fetch_add(1);  // slot 0 = caller
  });
  int total = 0;
  for (auto& s : seen) total += s.load();
  EXPECT_EQ(total, 64);
}

TEST(MorselSchedulerTest, ConcurrentJobsShareOneFleet) {
  // The multi-query scenario: several threads issue ParallelFor against one
  // scheduler; every job must complete with every index run exactly once.
  MorselScheduler sched(4);
  constexpr int kJobs = 6;
  constexpr size_t kTasks = 200;
  std::vector<std::vector<std::atomic<int>>> hits(kJobs);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kTasks);
    for (auto& a : h) a.store(0);
  }
  std::vector<std::thread> queries;
  for (int j = 0; j < kJobs; ++j) {
    queries.emplace_back([&sched, &hits, j] {
      sched.ParallelFor(kTasks,
                        [&hits, j](size_t i, int) { hits[j][i].fetch_add(1); });
    });
  }
  for (auto& q : queries) q.join();
  for (int j = 0; j < kJobs; ++j) {
    for (size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[j][i].load(), 1) << "job " << j << " task " << i;
    }
  }
  EXPECT_EQ(sched.total_tasks(), static_cast<uint64_t>(kJobs) * kTasks);
}

TEST(MorselSchedulerTest, WorkerStatsAccountForAllTasks) {
  MorselScheduler sched(2);
  sched.ParallelFor(128, [](size_t, int) {});
  uint64_t counted = sched.caller_tasks();
  for (const auto& w : sched.worker_stats()) counted += w.tasks;
  EXPECT_EQ(counted, 128u);
  EXPECT_EQ(counted, sched.total_tasks());
}

// ---- differential: morsel vs whole-column vs scalar ------------------------

// The morsel sizes the acceptance criteria call out: pathological (1), odd
// (7), sub-default (4096), default (64K), and larger than any test table.
const uint64_t kMorselSizes[] = {1, 7, 4096, 64 * 1024, 1 << 30};

class MorselDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    const uint64_t n = 20000;
    std::vector<int64_t> iv(n);
    std::vector<double> fv(n);
    for (auto& v : iv) v = rng.UniformRange(0, 999);
    for (auto& v : fv) v = rng.NextDouble();
    ints_ = Column::MakeInt64("ints", std::move(iv));
    floats_ = Column::MakeFloat64("floats", std::move(fv));
  }

  // select(ints) -> select(floats, candidates) -> fetchjoin(floats): the
  // three morselized operators in one pipeline.
  QueryPlan Pipeline(int64_t hi, double fhi) {
    PlanBuilder b("pipeline");
    int s1 = b.Select(ints_.get(), Predicate::RangeI64(0, hi));
    int s2 = b.Select(floats_.get(), Predicate::RangeF64(0.0, fhi), s1);
    int f = b.FetchJoin(floats_.get(), s2);
    return b.Result(f);
  }

  // Reference = scalar interpreter; baseline = whole-column kernels; subject
  // = morsel execution at every (morsel size x worker count) combination.
  void ExpectMorselMatches(const QueryPlan& plan) {
    Evaluator scalar(ExecOptions{});
    scalar.set_use_kernels(false);
    Evaluator whole;  // kernels, no morsels
    EvalResult ref, base;
    ASSERT_TRUE(scalar.Execute(plan, &ref).ok());
    ASSERT_TRUE(whole.Execute(plan, &base).ok());
    ASSERT_EQ(DiffIntermediates(ref.result, base.result), "");

    for (uint64_t rows : kMorselSizes) {
      for (int workers : {1, 2, 4, 8}) {
        ExecOptions o;
        o.use_morsels = true;
        o.morsel_rows = rows;
        o.morsel_workers = workers;
        Evaluator morsel(o);
        EvalResult got;
        ASSERT_TRUE(morsel.Execute(plan, &got).ok())
            << "rows=" << rows << " workers=" << workers;
        EXPECT_EQ(DiffIntermediates(base.result, got.result), "")
            << "rows=" << rows << " workers=" << workers;
        ASSERT_EQ(base.metrics.size(), got.metrics.size());
        for (size_t i = 0; i < base.metrics.size(); ++i) {
          EXPECT_EQ(base.metrics[i].tuples_in, got.metrics[i].tuples_in);
          EXPECT_EQ(base.metrics[i].tuples_out, got.metrics[i].tuples_out);
          EXPECT_EQ(base.metrics[i].random_accesses,
                    got.metrics[i].random_accesses);
        }
      }
    }
  }

  ColumnPtr ints_, floats_;
};

TEST_F(MorselDifferentialTest, MidSelectivityPipeline) {
  ExpectMorselMatches(Pipeline(499, 0.5));
}

TEST_F(MorselDifferentialTest, AllPassPredicate) {
  ExpectMorselMatches(Pipeline(999, 1.0));
}

TEST_F(MorselDifferentialTest, AllFailPredicate) {
  ExpectMorselMatches(Pipeline(-1, 0.5));
}

TEST_F(MorselDifferentialTest, EmptyTable) {
  auto empty_i = Column::MakeInt64("ei", {});
  auto empty_f = Column::MakeFloat64("ef", {});
  PlanBuilder b("empty");
  int s = b.Select(empty_i.get(), Predicate::RangeI64(0, 10));
  int f = b.FetchJoin(empty_f.get(), s);
  ExpectMorselMatches(b.Result(f));
}

TEST_F(MorselDifferentialTest, LikePredicateOverDictionary) {
  const std::vector<std::string> fruit = {"apple",   "banana", "cherry",
                                          "apricot", "plum",   "peach"};
  std::vector<std::string> data;
  data.reserve(18000);
  for (int i = 0; i < 3000; ++i) {
    data.insert(data.end(), fruit.begin(), fruit.end());
  }
  auto strs = Column::MakeString("s", data);
  PlanBuilder b("like");
  int s = b.Select(strs.get(), Predicate::Like("ap"));
  ExpectMorselMatches(b.Result(s));
}

TEST_F(MorselDifferentialTest, PerMorselTupleCountsSumToOperatorCounts) {
  QueryPlan plan = Pipeline(499, 0.5);
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 1024;
  o.morsel_workers = 4;
  Evaluator eval(o);
  EvalResult er;
  ASSERT_TRUE(eval.Execute(plan, &er).ok());
  int morselized_ops = 0;
  for (const auto& m : er.metrics) {
    if (m.morsels.empty()) continue;
    ++morselized_ops;
    uint64_t in = 0, out = 0;
    for (const auto& ms : m.morsels) {
      in += ms.tuples_in;
      out += ms.tuples_out;
    }
    EXPECT_EQ(in, m.tuples_in) << "node " << m.node_id;
    EXPECT_EQ(out, m.tuples_out) << "node " << m.node_id;
  }
  // 20000 rows / 1024 per morsel: the dense select (and the candidate stages
  // while their inputs stay above one morsel) must have split — unless an
  // APQ_FORCE_MORSELS override raised the morsel size past the table.
  if (eval.EffectiveMorselRows() < 20000) {
    EXPECT_GE(morselized_ops, 1);
  }
}

TEST_F(MorselDifferentialTest, StrictMisalignmentReportsSameErrorAsSerial) {
  // A sliced fetch-join under kStrict whose candidates cross the slice: the
  // morsel path must fail with exactly the whole-column kernel's error.
  PlanBuilder b("strict");
  int s = b.Select(ints_.get(), Predicate::RangeI64(0, 999));
  int f = b.FetchJoin(floats_.get(), s);
  QueryPlan plan = b.Result(f);
  PlanNode& fetch = plan.node(f);
  fetch.has_slice = true;
  fetch.slice = RowRange{0, 5000};
  fetch.align = AlignPolicy::kStrict;

  Evaluator whole;
  EvalResult er;
  Status serial_st = whole.Execute(plan, &er);
  ASSERT_FALSE(serial_st.ok());

  for (uint64_t rows : kMorselSizes) {
    ExecOptions o;
    o.use_morsels = true;
    o.morsel_rows = rows;
    o.morsel_workers = 4;
    Evaluator morsel(o);
    EvalResult er2;
    Status st = morsel.Execute(plan, &er2);
    ASSERT_FALSE(st.ok()) << "rows=" << rows;
    EXPECT_EQ(st.code(), serial_st.code()) << "rows=" << rows;
    EXPECT_EQ(st.message(), serial_st.message()) << "rows=" << rows;
  }
}

TEST_F(MorselDifferentialTest, ScalarInterpreterIsNeverMorselized) {
  ExecOptions o;
  o.use_kernels = false;
  o.use_morsels = true;  // must be ignored without kernels
  o.morsel_rows = 64;
  Evaluator eval(o);
  EXPECT_FALSE(eval.MorselsEnabled());
  EvalResult er;
  ASSERT_TRUE(eval.Execute(Pipeline(499, 0.5), &er).ok());
  for (const auto& m : er.metrics) EXPECT_TRUE(m.morsels.empty());
}

// ---- wall-clock speedup (gated on real cores) ------------------------------

TEST(MorselSpeedupTest, MorselsBeatWholeColumnOnMulticore) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads; correctness/determinism "
                    "suites gate on this machine";
  }
  Rng rng(3);
  std::vector<int64_t> iv(1 << 24);  // 16M rows
  for (auto& v : iv) v = rng.UniformRange(0, 999);
  auto col = Column::MakeInt64("big", std::move(iv));
  PlanBuilder b("scan");
  int s = b.Select(col.get(), Predicate::RangeI64(0, 499));
  QueryPlan plan = b.Result(s);

  // Best-of-5 on both sides: on shared CI runners that report 4 hardware
  // threads a single sample loses to noisy neighbours; the minimum is the
  // contention-free estimate (morsel_test is also RUN_SERIAL under ctest).
  auto best_of = [&](Evaluator& eval) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      EvalResult er;
      EXPECT_TRUE(eval.Execute(plan, &er).ok());
      best = std::min(best, er.wall_ns);
    }
    return best;
  };
  Evaluator whole;  // kernels, whole-column
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_workers = 4;
  Evaluator morsel(o);
  const double whole_ns = best_of(whole);
  const double morsel_ns = best_of(morsel);
  EXPECT_LT(morsel_ns, whole_ns)
      << "morsel-parallel dense select should beat whole-column on >= 4 cores";
}

// ---- shared scheduler across evaluators ------------------------------------

TEST(MorselSharingTest, EvaluatorsShareInjectedScheduler) {
  auto sched = std::make_shared<MorselScheduler>(2);
  Rng rng(11);
  std::vector<int64_t> iv(50000);
  for (auto& v : iv) v = rng.UniformRange(0, 99);
  auto col = Column::MakeInt64("c", std::move(iv));
  PlanBuilder b("q");
  int s = b.Select(col.get(), Predicate::RangeI64(0, 49));
  QueryPlan plan = b.Result(s);

  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 1024;
  Evaluator e1(o), e2(o);
  e1.set_morsel_scheduler(sched);
  e2.set_morsel_scheduler(sched);

  const uint64_t before = sched->total_tasks();
  std::thread t1([&] {
    EvalResult er;
    ASSERT_TRUE(e1.Execute(plan, &er).ok());
  });
  std::thread t2([&] {
    EvalResult er;
    ASSERT_TRUE(e2.Execute(plan, &er).ok());
  });
  t1.join();
  t2.join();
  // Both queries' morsels ran on the one injected fleet. The per-query count
  // follows the effective morsel size (APQ_FORCE_MORSELS may override it);
  // when the whole table fits in one morsel the evaluator takes the
  // whole-column path and schedules nothing.
  const uint64_t rows = e1.EffectiveMorselRows();
  const uint64_t per_query = (50000 + rows - 1) / rows;
  const uint64_t expected = per_query >= 2 ? 2 * per_query : 0;
  EXPECT_EQ(sched->total_tasks() - before, expected);
}

}  // namespace
}  // namespace apq
