// Tests for the static heuristic parallelizer: plan shape at a given DOP and
// result preservation across all TPC-H queries.
#include <gtest/gtest.h>

#include "exec/compare.h"
#include "exec/evaluator.h"
#include "heuristic/parallelizer.h"
#include "plan/builder.h"
#include "workload/tpch.h"

namespace apq {
namespace {

class HeuristicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.lineitem_rows = 20'000;
    cat_ = Tpch::Generate(cfg);
  }

  Intermediate Eval(const QueryPlan& plan) {
    EvalResult er;
    Status st = eval_.Execute(plan, &er);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return er.result;
  }

  std::shared_ptr<Catalog> cat_;
  Evaluator eval_;
};

TEST_F(HeuristicTest, DopOneReturnsSerialPlan) {
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  HeuristicParallelizer hp(HeuristicConfig{.dop = 1});
  auto plan = hp.Parallelize(q6.ValueOrDie());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.ValueOrDie().Stats().num_selects,
            q6.ValueOrDie().Stats().num_selects);
}

TEST_F(HeuristicTest, SplitsLeavesToConfiguredDop) {
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  HeuristicParallelizer hp(HeuristicConfig{.dop = 8});
  auto plan = hp.Parallelize(q6.ValueOrDie());
  ASSERT_TRUE(plan.ok());
  PlanStats s = plan.ValueOrDie().Stats();
  // Q6 has 3 selects (1 leaf + 2 candidate) and 2 fetchjoins; the leaf is
  // split 8 ways and everything downstream is cloned per partition.
  EXPECT_EQ(s.num_selects, 3 * 8);
  EXPECT_EQ(s.num_fetchjoins, 2 * 8);
  EXPECT_GE(s.num_unions, 1);
}

TEST_F(HeuristicTest, UnionsArePushedAboveMaps) {
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  HeuristicParallelizer hp(HeuristicConfig{.dop = 4});
  auto plan_or = hp.Parallelize(q6.ValueOrDie());
  ASSERT_TRUE(plan_or.ok());
  const QueryPlan& plan = plan_or.ValueOrDie();
  // The revenue map must be cloned per partition (4 maps), not run once over
  // a packed union.
  EXPECT_EQ(plan.Stats().num_maps, 4);
}

TEST_F(HeuristicTest, AllTpchQueriesPreserveResultsUnderHp) {
  for (const auto& name : Tpch::QueryNames()) {
    auto serial = Tpch::Query(*cat_, name);
    ASSERT_TRUE(serial.ok()) << name;
    Intermediate expect = Eval(serial.ValueOrDie());
    for (int dop : {2, 8}) {
      HeuristicParallelizer hp(HeuristicConfig{.dop = dop});
      auto plan = hp.Parallelize(serial.ValueOrDie());
      ASSERT_TRUE(plan.ok()) << name << " dop=" << dop << ": "
                             << plan.status().ToString();
      ASSERT_TRUE(plan.ValueOrDie().Validate().ok()) << name;
      Intermediate got = Eval(plan.ValueOrDie());
      EXPECT_TRUE(IntermediatesEqual(expect, got, 1e-6))
          << name << " dop=" << dop << ": "
          << DiffIntermediates(expect, got, 1e-6);
    }
  }
}

TEST_F(HeuristicTest, HpUsesManyMorePartitionsThanServesSmallQueries) {
  // Table 5's flavor: the HP plan has dop-many clones of everything.
  auto q14 = Tpch::Q14(*cat_);
  ASSERT_TRUE(q14.ok());
  HeuristicParallelizer hp(HeuristicConfig{.dop = 32});
  auto plan = hp.Parallelize(q14.ValueOrDie());
  ASSERT_TRUE(plan.ok());
  PlanStats s = plan.ValueOrDie().Stats();
  EXPECT_GE(s.num_selects, 32);
  EXPECT_GE(s.num_joins, 32);
}

}  // namespace
}  // namespace apq
