// Observability layer: metrics registry units, tracer ring-buffer and
// export units, scheduler metrics invariants across worker counts, and the
// determinism contract — tracing on vs off must be bit-identical over the
// TPC-H suite at every worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "exec/compare.h"
#include "exec/evaluator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/morsel_scheduler.h"
#include "workload/tpch.h"

namespace apq {
namespace {

// ---- metrics registry -------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* c = reg.GetCounter("obs_test_counter");
  EXPECT_EQ(reg.GetCounter("obs_test_counter"), c);  // stable pointer
  const uint64_t before = c->Value();
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->Value(), before + 42);

  obs::Gauge* g = reg.GetGauge("obs_test_gauge");
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  g->Add(-10);
  EXPECT_EQ(g->Value(), -3);
}

TEST(MetricsTest, HistogramPercentilesInterpolate) {
  // Bounds 10/20/.../100: uniform values 1..100 land one per unit, so p50
  // must fall in the (40,50] bucket and interpolate near 50.
  obs::Histogram h(obs::Histogram::ExponentialBounds(10, 0, 0));
  ASSERT_EQ(h.bounds().size(), 1u);  // degenerate spec still usable

  obs::Histogram u({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) u.Observe(v);
  EXPECT_EQ(u.Count(), 100u);
  EXPECT_DOUBLE_EQ(u.Sum(), 5050.0);
  EXPECT_NEAR(u.Percentile(0.50), 50.0, 10.0);
  EXPECT_NEAR(u.Percentile(0.95), 95.0, 10.0);
  EXPECT_NEAR(u.Percentile(0.99), 99.0, 10.0);
  // Monotone in q.
  EXPECT_LE(u.Percentile(0.50), u.Percentile(0.95));
  EXPECT_LE(u.Percentile(0.95), u.Percentile(0.99));
  // Overflow bucket: values beyond the last bound report the last bound.
  u.Observe(1e12);
  EXPECT_DOUBLE_EQ(u.Percentile(1.0), 100.0);
  // Empty histogram.
  obs::Histogram e({1, 2});
  EXPECT_DOUBLE_EQ(e.Percentile(0.5), 0.0);
}

TEST(MetricsTest, PercentileHardenedEdgeCases) {
  // Empty: every quantile is a deterministic 0, never NaN or a stale bound.
  obs::Histogram empty({1, 2, 4});
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(empty.Percentile(q), 0.0) << "q=" << q;
  }

  // Overflow-only: all observations beyond the last finite bound. Every
  // rank lands in the +inf bucket, which reports the overflow lower bound
  // (the last finite bound) rather than interpolating toward infinity.
  obs::Histogram over({1, 2, 4});
  over.Observe(100.0);
  over.Observe(1e9);
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(over.Percentile(q), 4.0) << "q=" << q;
  }

  // Out-of-range q clamps instead of reading past the distribution.
  obs::Histogram u({10, 20});
  u.Observe(5);
  u.Observe(15);
  EXPECT_DOUBLE_EQ(u.Percentile(-0.5), u.Percentile(0.0));
  EXPECT_DOUBLE_EQ(u.Percentile(1.5), u.Percentile(1.0));

  // Single observation: every quantile interpolates within the one occupied
  // bucket (accuracy is one bucket width by design), never outside it.
  obs::Histogram one({10, 20});
  one.Observe(12);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_GE(one.Percentile(q), 10.0) << "q=" << q;
    EXPECT_LE(one.Percentile(q), 20.0) << "q=" << q;
  }
}

TEST(MetricsTest, JsonAndPrometheusExportContainRegisteredNames) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obs_export_counter")->Inc(3);
  reg.GetGauge("obs_export_gauge")->Set(11);
  obs::Histogram* h =
      reg.GetHistogram("obs_export_hist{op=\"t\"}", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"obs_export_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_export_gauge\":11"), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);

  const std::string prom = reg.ToPrometheus();
  EXPECT_NE(prom.find("obs_export_counter"), std::string::npos);
  EXPECT_NE(prom.find("obs_export_gauge 11"), std::string::npos);
  // Histogram label suffix merges with le; cumulative buckets + sum + count.
  EXPECT_NE(prom.find("obs_export_hist_bucket{op=\"t\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("obs_export_hist_bucket{op=\"t\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("obs_export_hist_count{op=\"t\"} 3"),
            std::string::npos);
}

// ---- tracer -----------------------------------------------------------------

TEST(TraceTest, DisabledSpanSitesEmitNothing) {
  obs::SetTraceEnabled(false);
  obs::ClearTraceBuffers();
  {
    obs::SpanScope span(obs::SpanKind::kOperator, "noop");
    obs::EmitInstant(obs::SpanKind::kSteal, "steal", 1, 2);
  }
  EXPECT_TRUE(obs::DrainEvents().empty());
}

TEST(TraceTest, SpansAndInstantsAreRecordedWhenEnabled) {
  obs::ClearTraceBuffers();
  obs::SetTraceEnabled(true);
  {
    obs::SpanScope span(obs::SpanKind::kOperator, "op-span", /*a0=*/5);
    obs::EmitInstant(obs::SpanKind::kMutation, "mutate-basic", 5, 1);
  }
  obs::SetTraceEnabled(false);
  const auto events = obs::DrainEvents();
  ASSERT_EQ(events.size(), 2u);
  // Instant first (emitted inside the span), span second (on scope exit).
  EXPECT_STREQ(events[0].name, "mutate-basic");
  EXPECT_EQ(events[0].start_ticks, events[0].end_ticks);
  EXPECT_STREQ(events[1].name, "op-span");
  EXPECT_EQ(events[1].a0, 5);
  EXPECT_GE(events[1].end_ticks, events[1].start_ticks);
}

TEST(TraceTest, RingOverwritesOldestAndReportsDrops) {
  obs::ClearTraceBuffers();
  obs::SetTraceEnabled(true);
  const size_t extra = 100;
  for (size_t i = 0; i < obs::kTraceRingCapacity + extra; ++i) {
    obs::EmitInstant(obs::SpanKind::kSteal, "fill", static_cast<int64_t>(i));
  }
  obs::SetTraceEnabled(false);
  uint64_t dropped = 0;
  const auto events = obs::DrainEvents(&dropped);
  EXPECT_EQ(events.size(), obs::kTraceRingCapacity);
  EXPECT_EQ(dropped, extra);
  // Oldest-first drain: the surviving window is the LAST capacity events.
  EXPECT_EQ(events.front().a0, static_cast<int64_t>(extra));
  EXPECT_EQ(events.back().a0,
            static_cast<int64_t>(obs::kTraceRingCapacity + extra - 1));
}

TEST(TraceTest, ChromeTraceJsonIsWellFormedEnough) {
  obs::ClearTraceBuffers();
  obs::SetTraceEnabled(true);
  {
    obs::SpanScope span(obs::SpanKind::kQuery, "query");
    obs::SpanScope inner(obs::SpanKind::kOperator, "select", 1);
  }
  obs::SetTraceEnabled(false);
  const std::string json = obs::ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"operator\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("apq_dropped_events"), std::string::npos);
}

TEST(TraceTest, WriteChromeTraceAndPathValidation) {
  obs::ClearTraceBuffers();
  obs::SetTraceEnabled(true);
  obs::EmitInstant(obs::SpanKind::kSteal, "steal", 0, 1);
  obs::SetTraceEnabled(false);

  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());

  // The APQ_TRACE hardening contract: unwritable targets are detectable (the
  // env validator warns and ignores them instead of aborting a query).
  EXPECT_FALSE(obs::ValidateWritablePath("/nonexistent-dir/x/trace.json"));
  EXPECT_FALSE(obs::ValidateWritablePath(""));
  EXPECT_FALSE(obs::ValidateWritablePath(nullptr));
  EXPECT_TRUE(obs::ValidateWritablePath(path.c_str()));
  std::remove(path.c_str());
  EXPECT_FALSE(obs::WriteChromeTrace("/nonexistent-dir/x/trace.json").ok());
}

// ---- scheduler metrics invariants ------------------------------------------

// Sum of per-worker task counters + caller tasks == tasks submitted, and
// steals <= tasks, at every worker count; the registry's aggregate counters
// advance by exactly the same amounts.
TEST(SchedulerMetricsTest, TaskAndStealCountersAreConsistent) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* tasks_total = reg.GetCounter("apq_sched_tasks_total");
  obs::Counter* steals_total = reg.GetCounter("apq_sched_steals_total");
  obs::Counter* caller_total = reg.GetCounter("apq_sched_caller_tasks_total");
  obs::Gauge* depth = reg.GetGauge("apq_sched_queue_depth");
  obs::Histogram* steal_lat = reg.GetHistogram(
      "apq_sched_steal_latency_ns", obs::Histogram::LatencyBoundsNs());

  for (int workers : {1, 2, 4, 8}) {
    MorselScheduler sched(workers);
    const uint64_t t0 = tasks_total->Value();
    const uint64_t s0 = steals_total->Value();
    const uint64_t c0 = caller_total->Value();
    const uint64_t h0 = steal_lat->Count();
    const int64_t d0 = depth->Value();

    constexpr size_t kTasks = 512;
    constexpr int kJobs = 4;
    std::atomic<uint64_t> ran{0};
    for (int j = 0; j < kJobs; ++j) {
      sched.ParallelFor(kTasks, [&](size_t, int) {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    const uint64_t submitted = kTasks * kJobs;
    EXPECT_EQ(ran.load(), submitted) << "workers=" << workers;

    // Scheduler-local invariant: every submitted task was claimed exactly
    // once, by a worker or by the submitting thread.
    const auto stats = sched.worker_stats();
    uint64_t worker_tasks = 0, worker_steals = 0;
    for (const auto& ws : stats) {
      EXPECT_LE(ws.steals, ws.tasks);
      worker_tasks += ws.tasks;
      worker_steals += ws.steals;
    }
    EXPECT_EQ(worker_tasks + sched.caller_tasks(), submitted)
        << "workers=" << workers;
    EXPECT_EQ(sched.total_tasks(), submitted);
    EXPECT_LE(worker_steals, worker_tasks);

    // Registry deltas mirror the scheduler's own counters (this suite runs
    // its schedulers quiesced and serially, so no other fleet interferes).
    EXPECT_EQ(tasks_total->Value() - t0, submitted) << "workers=" << workers;
    EXPECT_EQ(steals_total->Value() - s0, worker_steals);
    EXPECT_EQ(caller_total->Value() - c0, sched.caller_tasks());
    EXPECT_EQ(steal_lat->Count() - h0, worker_steals);
    EXPECT_EQ(depth->Value(), d0) << "queue depth must return to baseline";
  }
}

// Same invariants driven through the evaluator under forced small morsels:
// every morsel the operators report became exactly one scheduler task (plus
// whatever the agg/sort tiers submitted on top).
TEST(SchedulerMetricsTest, EvaluatorMorselRunFeedsTheCounters) {
  TpchConfig cfg;
  cfg.lineitem_rows = 6000;
  auto cat = Tpch::Generate(cfg);
  auto plan = Tpch::Q6(*cat);
  ASSERT_TRUE(plan.ok());

  for (int workers : {1, 2, 4, 8}) {
    ExecOptions o;
    o.use_morsels = true;
    o.morsel_rows = 512;
    o.morsel_workers = workers;
    Evaluator ev(o);
    EvalResult er;
    ASSERT_TRUE(ev.Execute(plan.ValueOrDie(), &er).ok());

    const auto& sched = ev.morsel_scheduler();
    ASSERT_NE(sched, nullptr);
    uint64_t op_morsels = 0;
    for (const auto& m : er.metrics) op_morsels += m.morsels.size();
    EXPECT_GT(op_morsels, 0u) << "workers=" << workers;
    // The scheduler ran at least one task per reported morsel (merge/ingest
    // stages may add more), and steals never exceed tasks.
    EXPECT_GE(sched->total_tasks(), op_morsels) << "workers=" << workers;
    uint64_t wtasks = 0, wsteals = 0;
    for (const auto& ws : sched->worker_stats()) {
      wtasks += ws.tasks;
      wsteals += ws.steals;
    }
    EXPECT_EQ(wtasks + sched->caller_tasks(), sched->total_tasks());
    EXPECT_LE(wsteals, wtasks);
  }
}

// ---- determinism: tracing must never perturb results ------------------------

TEST(TraceDeterminismTest, TpchSuiteBitIdenticalTracingOnAndOff) {
  TpchConfig cfg;
  cfg.lineitem_rows = 6000;
  auto cat = Tpch::Generate(cfg);

  for (const auto& name : Tpch::QueryNames()) {
    auto plan = Tpch::Query(*cat, name);
    ASSERT_TRUE(plan.ok()) << name;

    // Baseline: tracing off, whole-column kernels.
    obs::SetTraceEnabled(false);
    Evaluator base_ev(ExecOptions{});
    EvalResult base;
    ASSERT_TRUE(base_ev.Execute(plan.ValueOrDie(), &base).ok()) << name;

    for (int workers : {1, 2, 4, 8}) {
      ExecOptions o;
      o.use_morsels = true;
      o.morsel_rows = 512;
      o.morsel_workers = workers;

      // Tracing OFF.
      obs::SetTraceEnabled(false);
      Evaluator off_ev(o);
      EvalResult off;
      ASSERT_TRUE(off_ev.Execute(plan.ValueOrDie(), &off).ok())
          << name << " workers=" << workers;

      // Tracing ON (spans + sampled morsel spans + steal events recording).
      o.trace = true;
      Evaluator on_ev(o);
      EvalResult on;
      ASSERT_TRUE(on_ev.Execute(plan.ValueOrDie(), &on).ok())
          << name << " workers=" << workers;
      obs::SetTraceEnabled(false);

      EXPECT_EQ(DiffIntermediates(base.result, off.result), "")
          << name << " workers=" << workers;
      EXPECT_EQ(DiffIntermediates(off.result, on.result), "")
          << name << " workers=" << workers << " (tracing changed results!)";
      ASSERT_EQ(off.metrics.size(), on.metrics.size());
      for (size_t i = 0; i < off.metrics.size(); ++i) {
        EXPECT_EQ(off.metrics[i].tuples_out, on.metrics[i].tuples_out)
            << name << " workers=" << workers << " op " << i;
      }
    }
  }
  // The traced runs actually recorded spans (the contract is "no result
  // perturbation", not "no tracing").
  EXPECT_FALSE(obs::DrainEvents().empty());
  obs::ClearTraceBuffers();
}

}  // namespace
}  // namespace apq
