// Reference tests: recompute query answers with straightforward brute-force
// loops over the raw generated data, independent of the operator
// implementations, and compare against the engine (serial, heuristic, and
// adaptive execution).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "engine/engine.h"
#include "exec/compare.h"
#include "workload/skew.h"
#include "workload/tpch.h"

namespace apq {
namespace {

class ReferenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.lineitem_rows = 25'000;
    cat_ = Tpch::Generate(cfg_);
  }

  const Column* Col(const char* table, const char* col) {
    return cat_->GetTable(table)->GetColumn(col);
  }

  TpchConfig cfg_;
  std::shared_ptr<Catalog> cat_;
};

TEST_F(ReferenceTest, Q6RevenueMatchesBruteForce) {
  // Brute force: sum(price * discount) for the Q6 predicate.
  const auto& ship = Col("lineitem", "l_shipdate")->i64();
  const auto& disc = Col("lineitem", "l_discount")->f64();
  const auto& qty = Col("lineitem", "l_quantity")->i64();
  const auto& price = Col("lineitem", "l_extendedprice")->f64();
  double expect = 0;
  for (size_t i = 0; i < ship.size(); ++i) {
    if (ship[i] >= kTpchDate0 + 365 && ship[i] <= kTpchDate0 + 729 &&
        disc[i] >= 0.05 && disc[i] <= 0.07 && qty[i] >= 1 && qty[i] <= 23) {
      expect += price[i] * disc[i];
    }
  }

  Engine engine(EngineConfig::WithSim(SimConfig::Cores(8, 4)));
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  auto serial = engine.RunSerial(q6.ValueOrDie());
  ASSERT_TRUE(serial.ok());
  EXPECT_NEAR(serial.ValueOrDie().result.scalar, expect, 1e-6 * expect);

  auto hp = engine.RunHeuristic(q6.ValueOrDie(), 8);
  ASSERT_TRUE(hp.ok());
  double hp_val = hp.ValueOrDie().result.kind == Intermediate::Kind::kScalar
                      ? hp.ValueOrDie().result.scalar
                      : hp.ValueOrDie().result.agg_vals[0];
  EXPECT_NEAR(hp_val, expect, 1e-6 * expect);

  auto ap = engine.RunAdaptive(q6.ValueOrDie());
  ASSERT_TRUE(ap.ok());
  double ap_val = ap.ValueOrDie().result.kind == Intermediate::Kind::kScalar
                      ? ap.ValueOrDie().result.scalar
                      : ap.ValueOrDie().result.agg_vals[0];
  EXPECT_NEAR(ap_val, expect, 1e-6 * expect);
}

TEST_F(ReferenceTest, Q14PromoFractionMatchesBruteForce) {
  const auto& ship = Col("lineitem", "l_shipdate")->i64();
  const auto& pkey = Col("lineitem", "l_partkey")->i64();
  const auto& disc = Col("lineitem", "l_discount")->f64();
  const auto& price = Col("lineitem", "l_extendedprice")->f64();
  const Column* ptype = Col("part", "p_type");
  double promo = 0, total = 0;
  for (size_t i = 0; i < ship.size(); ++i) {
    if (ship[i] < kTpchDate0 + 1000 || ship[i] > kTpchDate0 + 1029) continue;
    double rev = price[i] * (1.0 - disc[i]);
    total += rev;
    const std::string& t = ptype->DictString(ptype->i64()[pkey[i]]);
    if (t.find("PROMO") != std::string::npos) promo += rev;
  }
  double expect = total > 0 ? promo / total : 0;

  Engine engine(EngineConfig::WithSim(SimConfig::Cores(8, 4)));
  auto q14 = Tpch::Q14(*cat_);
  ASSERT_TRUE(q14.ok());
  auto serial = engine.RunSerial(q14.ValueOrDie());
  ASSERT_TRUE(serial.ok());
  EXPECT_NEAR(serial.ValueOrDie().result.scalar, expect, 1e-9);

  auto ap = engine.RunAdaptive(q14.ValueOrDie());
  ASSERT_TRUE(ap.ok());
  EXPECT_TRUE(IntermediatesEqual(serial.ValueOrDie().result,
                                 ap.ValueOrDie().result, 1e-9));
}

TEST_F(ReferenceTest, Q4PriorityCountsMatchBruteForce) {
  const auto& odate = Col("orders", "o_orderdate")->i64();
  const Column* prio = Col("orders", "o_orderpriority");
  std::map<int64_t, int64_t> expect;  // dict code -> count
  for (size_t i = 0; i < odate.size(); ++i) {
    if (odate[i] >= kTpchDate0 + 730 && odate[i] <= kTpchDate0 + 819) {
      ++expect[prio->i64()[i]];
    }
  }

  Engine engine(EngineConfig::WithSim(SimConfig::Cores(8, 4)));
  auto q4 = Tpch::Q4(*cat_);
  ASSERT_TRUE(q4.ok());
  auto serial = engine.RunSerial(q4.ValueOrDie());
  ASSERT_TRUE(serial.ok());
  const Intermediate& r = serial.ValueOrDie().result;
  ASSERT_EQ(r.kind, Intermediate::Kind::kGroupedAgg);
  ASSERT_EQ(r.agg_vals.size(), expect.size());
  for (size_t g = 0; g < r.agg_vals.size(); ++g) {
    int64_t key = r.group_keys.AsInt(g);
    ASSERT_TRUE(expect.count(key)) << "unexpected group " << key;
    EXPECT_DOUBLE_EQ(r.agg_vals[g], static_cast<double>(expect[key]));
  }
}

TEST_F(ReferenceTest, Q22NationBalancesMatchBruteForce) {
  const auto& bal = Col("customer", "c_acctbal")->f64();
  const auto& nk = Col("customer", "c_nationkey")->i64();
  std::map<int64_t, double> expect;
  for (size_t i = 0; i < bal.size(); ++i) {
    if (bal[i] >= 0.0) expect[nk[i]] += bal[i];
  }

  Engine engine(EngineConfig::WithSim(SimConfig::Cores(8, 4)));
  auto q22 = Tpch::Q22(*cat_);
  ASSERT_TRUE(q22.ok());
  auto serial = engine.RunSerial(q22.ValueOrDie());
  ASSERT_TRUE(serial.ok());
  const Intermediate& r = serial.ValueOrDie().result;
  ASSERT_EQ(r.kind, Intermediate::Kind::kGroupedAgg);
  ASSERT_EQ(r.agg_vals.size(), expect.size());
  std::map<int64_t, double> got;
  for (size_t g = 0; g < r.agg_vals.size(); ++g) {
    got[r.group_keys.AsInt(g)] = r.agg_vals[g];
  }
  for (const auto& [key, val] : expect) {
    ASSERT_TRUE(got.count(key));
    EXPECT_NEAR(got[key], val, 1e-6 * std::abs(val));
  }
  // Sorted descending by aggregate.
  for (size_t g = 1; g < r.agg_vals.size(); ++g) {
    EXPECT_GE(r.agg_vals[g - 1], r.agg_vals[g]);
  }
}

TEST_F(ReferenceTest, Q19FlaggedRevenueMatchesBruteForce) {
  const auto& pkey = Col("lineitem", "l_partkey")->i64();
  const auto& qty = Col("lineitem", "l_quantity")->i64();
  const auto& disc = Col("lineitem", "l_discount")->f64();
  const auto& price = Col("lineitem", "l_extendedprice")->f64();
  const Column* brand = Col("part", "p_brand");
  const Column* cont = Col("part", "p_container");
  double expect = 0;
  for (size_t i = 0; i < pkey.size(); ++i) {
    const std::string& b = brand->DictString(brand->i64()[pkey[i]]);
    const std::string& c = cont->DictString(cont->i64()[pkey[i]]);
    bool bf = b.find("Brand#12") != std::string::npos;
    bool cf = c.find("SM") != std::string::npos;
    bool qf = qty[i] >= 1 && qty[i] <= 11;
    if (bf && cf && qf) expect += price[i] * (1.0 - disc[i]);
  }

  Engine engine(EngineConfig::WithSim(SimConfig::Cores(8, 4)));
  auto q19 = Tpch::Q19(*cat_);
  ASSERT_TRUE(q19.ok());
  auto serial = engine.RunSerial(q19.ValueOrDie());
  ASSERT_TRUE(serial.ok());
  EXPECT_NEAR(serial.ValueOrDie().result.scalar, expect,
              1e-6 * std::max(1.0, expect));
}

TEST(SkewReferenceTest, SelectSumMatchesBruteForce) {
  SkewConfig cfg;
  cfg.rows = 50'000;
  auto cat = GenerateSkewed(cfg);
  const auto& v = cat->GetTable("skewed")->GetColumn("v")->i64();
  for (int pct : {10, 30, 50}) {
    int clusters_hit = std::max(
        1, std::min(cfg.clusters, pct * cfg.clusters * 2 / 100));
    double expect = 0;
    for (int64_t x : v) {
      if (x >= 0 && x <= clusters_hit - 1) expect += static_cast<double>(x);
    }
    Engine engine(EngineConfig::WithSim(SimConfig::Cores(8, 4)));
    auto plan = SkewedSelectPlan(*cat, cfg, pct);
    ASSERT_TRUE(plan.ok());
    auto ap = engine.RunAdaptive(plan.ValueOrDie());
    ASSERT_TRUE(ap.ok());
    double got = ap.ValueOrDie().result.kind == Intermediate::Kind::kScalar
                     ? ap.ValueOrDie().result.scalar
                     : ap.ValueOrDie().result.agg_vals[0];
    EXPECT_NEAR(got, expect, 1e-6 * std::max(1.0, expect)) << "pct=" << pct;
  }
}

}  // namespace
}  // namespace apq
