// Correctness of the vectorized selection-vector kernels against the scalar
// row-at-a-time reference interpreter, on randomized data.
#include <gtest/gtest.h>

#include "exec/compare.h"
#include "exec/evaluator.h"
#include "exec/kernels.h"
#include "plan/builder.h"
#include "util/rng.h"

namespace apq {
namespace {

class KernelsTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 5000;

  void SetUp() override {
    Rng rng(7);
    std::vector<int64_t> iv(kRows);
    std::vector<double> fv(kRows);
    std::vector<std::string> sv(kRows);
    const char* fragments[] = {"PROMO", "PLAIN", "SPECIAL", "BULK", "AIR"};
    for (uint64_t i = 0; i < kRows; ++i) {
      iv[i] = rng.UniformRange(-500, 500);
      fv[i] = rng.NextDouble() * 1000.0 - 500.0;
      sv[i] = std::string(fragments[rng.Uniform(5)]) + " " +
              std::to_string(rng.Uniform(40));
    }
    ints_ = Column::MakeInt64("ints", std::move(iv));
    floats_ = Column::MakeFloat64("floats", std::move(fv));
    strs_ = Column::MakeString("strs", sv);
    scalar_.set_use_kernels(false);
    vectorized_.set_use_kernels(true);
  }

  // Runs the same plan through both backends and requires identical results,
  // including every reachable intermediate.
  void ExpectSame(const QueryPlan& plan) {
    EvalResult a, b;
    Status sa = scalar_.Execute(plan, &a);
    Status sb = vectorized_.Execute(plan, &b);
    ASSERT_EQ(sa.ok(), sb.ok()) << sa.ToString() << " vs " << sb.ToString();
    if (!sa.ok()) {
      EXPECT_EQ(sa.code(), sb.code());
      return;
    }
    EXPECT_EQ(DiffIntermediates(a.result, b.result), "");
    ASSERT_EQ(a.intermediates.size(), b.intermediates.size());
    for (const auto& [id, inter] : a.intermediates) {
      ASSERT_TRUE(b.intermediates.count(id));
      EXPECT_EQ(DiffIntermediates(inter, b.intermediates.at(id)), "")
          << "node " << id;
    }
    // The kernels must also report the same workload metrics, since the cost
    // model (and so every simulated figure) consumes them.
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (size_t i = 0; i < a.metrics.size(); ++i) {
      EXPECT_EQ(a.metrics[i].node_id, b.metrics[i].node_id);
      EXPECT_EQ(a.metrics[i].tuples_in, b.metrics[i].tuples_in) << i;
      EXPECT_EQ(a.metrics[i].tuples_out, b.metrics[i].tuples_out) << i;
      EXPECT_EQ(a.metrics[i].random_accesses, b.metrics[i].random_accesses)
          << i;
    }
  }

  ColumnPtr ints_, floats_, strs_;
  Evaluator scalar_, vectorized_;
};

TEST_F(KernelsTest, DenseSelectsMatchScalarPath) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = rng.UniformRange(-600, 600);
    int64_t hi = lo + rng.UniformRange(0, 400);
    PlanBuilder b("t");
    int sel = b.Select(ints_.get(), Predicate::RangeI64(lo, hi));
    ExpectSame(b.Result(sel));

    PlanBuilder b2("t2");
    int sel2 = b2.Select(floats_.get(), Predicate::RangeF64(lo, hi));
    ExpectSame(b2.Result(sel2));

    PlanBuilder b3("t3");
    int sel3 = b3.Select(ints_.get(), Predicate::EqI64(rng.UniformRange(-500, 500)));
    ExpectSame(b3.Result(sel3));
  }
}

TEST_F(KernelsTest, MistypedPredicatesMatchScalarCasts) {
  // RangeF64 over an int column and RangeI64 over a float column both go
  // through the scalar path's casts; the kernels must reproduce them.
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeF64(-250.5, 250.5));
  ExpectSame(b.Result(sel));

  PlanBuilder b2("t2");
  int sel2 = b2.Select(floats_.get(), Predicate::RangeI64(-100, 100));
  ExpectSame(b2.Result(sel2));

  PlanBuilder b3("t3");
  int sel3 = b3.Select(floats_.get(), Predicate::EqI64(0));
  ExpectSame(b3.Result(sel3));
}

TEST_F(KernelsTest, LikeOnDictionaryMatchesScalarPath) {
  for (const char* pattern : {"PROMO", "AIR", "1", "nomatch"}) {
    PlanBuilder b("t");
    int sel = b.Select(strs_.get(), Predicate::Like(pattern));
    ExpectSame(b.Result(sel));

    PlanBuilder b2("t2");
    int sel2 = b2.Select(strs_.get(), Predicate::Like(pattern, /*anti=*/true));
    ExpectSame(b2.Result(sel2));
  }
}

TEST_F(KernelsTest, CandidateListSelectsMatchScalarPath) {
  PlanBuilder b("t");
  int s1 = b.Select(ints_.get(), Predicate::RangeI64(-400, 400));
  int s2 = b.Select(floats_.get(), Predicate::RangeF64(-300.0, 300.0), s1);
  int s3 = b.Select(strs_.get(), Predicate::Like("PROMO"), s2);
  ExpectSame(b.Result(s3));
}

TEST_F(KernelsTest, CandidateSelectClipsToSlice) {
  // Candidate-list select on a sliced clone: out-of-slice candidates must be
  // clipped (paper Fig 9 boundary adjustment), identically in both backends.
  PlanBuilder b("t");
  int s1 = b.Select(ints_.get(), Predicate::RangeI64(-500, 500));
  int s2 = b.Select(floats_.get(), Predicate::RangeF64(-1000.0, 1000.0), s1);
  QueryPlan plan = b.Result(s2);
  plan.node(s2).has_slice = true;
  plan.node(s2).slice = {kRows / 4, kRows / 2};
  ExpectSame(plan);
}

TEST_F(KernelsTest, FetchJoinGatherMatchesScalarPath) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(-200, 200));
  int f1 = b.FetchJoin(floats_.get(), sel);
  int f2 = b.FetchJoin(strs_.get(), sel);
  int mp = b.MapConst(MapFn::kMul, f1, 2.0);
  ExpectSame(b.Result(mp));
  (void)f2;
}

TEST_F(KernelsTest, FetchJoinBoundaryClipAdjustMatchesScalarPath) {
  for (auto [lo, hi] : {std::pair<oid, oid>{0, kRows / 3},
                        {kRows / 3, 2 * kRows / 3},
                        {2 * kRows / 3, kRows},
                        {kRows / 2, kRows / 2}}) {  // empty slice
    PlanBuilder b("t");
    int sel = b.Select(ints_.get(), Predicate::RangeI64(-500, 500));
    int f = b.FetchJoin(floats_.get(), sel);
    QueryPlan plan = b.Result(f);
    plan.node(f).has_slice = true;
    plan.node(f).slice = {lo, hi};
    plan.node(f).align = AlignPolicy::kAdjust;
    ExpectSame(plan);
  }
}

TEST_F(KernelsTest, FetchJoinStrictMisalignmentMatchesScalarPath) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(-500, 500));
  int f = b.FetchJoin(floats_.get(), sel);
  QueryPlan plan = b.Result(f);
  plan.node(f).has_slice = true;
  plan.node(f).slice = {0, kRows / 2};
  plan.node(f).align = AlignPolicy::kStrict;
  EvalResult er;
  Status st = vectorized_.Execute(plan, &er);
  EXPECT_EQ(st.code(), StatusCode::kMisaligned);
  ExpectSame(plan);  // same error from both backends
}

TEST_F(KernelsTest, GatherRowsRejectsOutOfColumnIds) {
  std::vector<oid> ids = {0, 1, kRows + 7};
  std::vector<oid> head;
  ValueVec values;
  values.type = DataType::kFloat64;
  Status st = GatherRows(*floats_, ids, floats_->full_range(), false,
                         AlignPolicy::kAdjust, &head, &values);
  EXPECT_EQ(st.code(), StatusCode::kMisaligned);
  EXPECT_NE(st.message().find(std::to_string(kRows + 7)), std::string::npos);
}

TEST_F(KernelsTest, SelectDenseDirectAgainstNaiveLoop) {
  std::vector<oid> got;
  Predicate p = Predicate::RangeI64(-50, 50);
  SelectDense(*ints_, {100, 4000}, p, nullptr, &got);
  std::vector<oid> want;
  for (oid r = 100; r < 4000; ++r) {
    int64_t v = ints_->i64()[r];
    if (v >= -50 && v <= 50) want.push_back(r);
  }
  EXPECT_EQ(got, want);
}

TEST_F(KernelsTest, FullPipelineRandomizedParity) {
  // A query-shaped pipeline: select -> fetch -> groupby -> grouped agg ->
  // sort, on random data, through both backends.
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    int64_t lo = rng.UniformRange(-500, 0);
    int64_t hi = rng.UniformRange(0, 500);
    PlanBuilder b("t");
    int sel = b.Select(ints_.get(), Predicate::RangeI64(lo, hi));
    int keys = b.FetchJoin(ints_.get(), sel);
    int vals = b.FetchJoin(floats_.get(), sel);
    int gb = b.GroupBy(keys);
    int ag = b.AggGrouped(AggFn::kSum, gb, vals);
    int srt = b.Sort(ag, /*descending=*/true);
    ExpectSame(b.Result(srt));
  }
}

}  // namespace
}  // namespace apq
