// Unit tests: plan DAG, topological order, validation, statistics.
#include <gtest/gtest.h>

#include "plan/builder.h"
#include "plan/plan.h"

namespace apq {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    col_ = Column::MakeInt64("a", std::vector<int64_t>(100, 1));
    fcol_ = Column::MakeFloat64("f", std::vector<double>(100, 2.0));
  }
  ColumnPtr col_, fcol_;
};

TEST_F(PlanTest, BuilderWiresLinearPlan) {
  PlanBuilder b("linear");
  int sel = b.Select(col_.get(), Predicate::RangeI64(0, 5));
  int f = b.FetchJoin(fcol_.get(), sel);
  int sum = b.AggScalar(AggFn::kSum, f);
  QueryPlan plan = b.Result(sum);
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(plan.num_nodes(), 4);
  auto topo = plan.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.ValueOrDie(), (std::vector<int>{sel, f, sum, plan.result_id()}));
}

TEST_F(PlanTest, TopoOrderSkipsUnreachableNodes) {
  PlanBuilder b("t");
  int sel = b.Select(col_.get(), Predicate::RangeI64(0, 5));
  int orphan = b.Select(col_.get(), Predicate::RangeI64(6, 9));
  (void)orphan;
  QueryPlan plan = b.Result(sel);
  auto topo = plan.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.ValueOrDie().size(), 2u);  // sel + result only
}

TEST_F(PlanTest, CycleIsDetected) {
  PlanBuilder b("t");
  int sel = b.Select(col_.get(), Predicate::RangeI64(0, 5));
  int f = b.FetchJoin(fcol_.get(), sel);
  QueryPlan plan = b.Result(f);
  // Introduce a cycle by hand.
  plan.node(sel).inputs.push_back(f);
  auto topo = plan.TopologicalOrder();
  EXPECT_FALSE(topo.ok());
}

TEST_F(PlanTest, MissingResultIsAnError) {
  QueryPlan plan("empty");
  EXPECT_FALSE(plan.TopologicalOrder().ok());
  EXPECT_FALSE(plan.Validate().ok());
}

TEST_F(PlanTest, ValidateChecksSliceBounds) {
  PlanBuilder b("t");
  int sel = b.Select(col_.get(), Predicate::RangeI64(0, 5));
  QueryPlan plan = b.Result(sel);
  plan.node(sel).has_slice = true;
  plan.node(sel).slice = {50, 200};  // beyond the 100-row column
  Status st = plan.Validate();
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST_F(PlanTest, ValidateChecksArity) {
  PlanBuilder b("t");
  int sel = b.Select(col_.get(), Predicate::RangeI64(0, 5));
  int f = b.FetchJoin(fcol_.get(), sel);
  QueryPlan plan = b.Result(f);
  plan.node(f).inputs.push_back(sel);  // fetchjoin with two inputs
  EXPECT_FALSE(plan.Validate().ok());
}

TEST_F(PlanTest, ConsumersFindsReaders) {
  PlanBuilder b("t");
  int sel = b.Select(col_.get(), Predicate::RangeI64(0, 5));
  int f1 = b.FetchJoin(fcol_.get(), sel);
  int f2 = b.FetchJoin(col_.get(), sel);
  int mp = b.Map2(MapFn::kAdd, f1, f2);
  QueryPlan plan = b.Result(mp);
  std::vector<int> cons = plan.Consumers(sel);
  EXPECT_EQ(cons.size(), 2u);
}

TEST_F(PlanTest, StatsCountOperators) {
  PlanBuilder b("t");
  int sel = b.Select(col_.get(), Predicate::RangeI64(0, 5));
  int f = b.FetchJoin(fcol_.get(), sel);
  int gb = b.GroupBy(f);
  int ag = b.AggGrouped(AggFn::kSum, gb, f);
  QueryPlan plan = b.Result(ag);
  PlanStats s = plan.Stats();
  EXPECT_EQ(s.num_selects, 1);
  EXPECT_EQ(s.num_fetchjoins, 1);
  EXPECT_EQ(s.num_groupbys, 1);
  EXPECT_EQ(s.num_aggregates, 1);
  EXPECT_EQ(s.num_unions, 0);
  EXPECT_EQ(s.num_nodes, 5);
}

TEST_F(PlanTest, CloneIsIndependent) {
  PlanBuilder b("t");
  int sel = b.Select(col_.get(), Predicate::RangeI64(0, 5));
  QueryPlan plan = b.Result(sel);
  QueryPlan copy = plan.Clone();
  copy.node(sel).slice = {1, 2};
  copy.node(sel).has_slice = true;
  EXPECT_FALSE(plan.node(sel).has_slice);
}

TEST_F(PlanTest, ToStringRendersMalStyle) {
  PlanBuilder b("t");
  int sel = b.Select(col_.get(), Predicate::RangeI64(0, 5));
  QueryPlan plan = b.Result(sel);
  std::string s = plan.ToString();
  EXPECT_NE(s.find("select"), std::string::npos);
  EXPECT_NE(s.find("X_0"), std::string::npos);
}

}  // namespace
}  // namespace apq
