// The parallel aggregation subsystem (exec/agg/): AggTable unit tests, and —
// above all — differential tests of morsel-parallel group-by ingest, grouped
// aggregation, and hash-join probe against the scalar interpreter and the
// whole-column kernels, across morsel sizes, worker counts, key
// distributions, and all aggregate functions. Group ids must reproduce the
// scalar first-occurrence numbering bit-for-bit; join pairs must concatenate
// in morsel (= input) order.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "exec/agg/agg_table.h"
#include "exec/agg/parallel_agg.h"
#include "exec/compare.h"
#include "exec/evaluator.h"
#include "plan/builder.h"
#include "util/rng.h"

namespace apq {
namespace {

// The morsel sizes the acceptance criteria call out: pathological (1), odd
// (7), sub-default (4096), default (64K), and larger than any test table.
const uint64_t kMorselSizes[] = {1, 7, 4096, 64 * 1024, 1 << 30};
const AggFn kAllAggFns[] = {AggFn::kSum, AggFn::kAvg, AggFn::kCount,
                            AggFn::kMin, AggFn::kMax};

// ---- AggTable --------------------------------------------------------------

TEST(AggTableTest, AssignsSlotsInInsertionOrder) {
  AggTable t;
  EXPECT_EQ(t.FindOrInsert(42, 0), 0u);
  EXPECT_EQ(t.FindOrInsert(-7, 1), 1u);
  EXPECT_EQ(t.FindOrInsert(42, 2), 0u);  // existing key keeps its slot
  EXPECT_EQ(t.FindOrInsert(0, 3), 2u);
  EXPECT_EQ(t.num_groups(), 3u);
  EXPECT_EQ(t.key(0), 42);
  EXPECT_EQ(t.key(1), -7);
  EXPECT_EQ(t.key(2), 0);
}

TEST(AggTableTest, FindNeverInserts) {
  AggTable t;
  EXPECT_EQ(t.Find(5), AggTable::kNoSlot);
  t.FindOrInsert(5, 0);
  EXPECT_EQ(t.Find(5), 0u);
  EXPECT_EQ(t.Find(6), AggTable::kNoSlot);
  EXPECT_EQ(t.num_groups(), 1u);
}

TEST(AggTableTest, FirstPosKeepsMinimumAcrossArbitraryIngestOrder) {
  // Positions arrive out of order (work stealing): the slot must remember
  // the minimum, which is what makes the merge schedule-invariant.
  AggTable t;
  t.FindOrInsert(9, 350000);
  t.FindOrInsert(9, 130000);
  t.FindOrInsert(9, 990000);
  EXPECT_EQ(t.first_pos(t.Find(9)), 130000u);
}

TEST(AggTableTest, GrowsPastInitialCapacityWithoutLosingKeys) {
  AggTable t;  // minimal initial buckets: forces several rehashes
  const int64_t n = 100000;
  for (int64_t k = 0; k < n; ++k) {
    EXPECT_EQ(t.FindOrInsert(k * 7919 - 123, static_cast<uint64_t>(k)),
              static_cast<uint32_t>(k));
  }
  ASSERT_EQ(t.num_groups(), static_cast<uint64_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    const uint32_t slot = t.Find(k * 7919 - 123);
    ASSERT_EQ(slot, static_cast<uint32_t>(k));
    EXPECT_EQ(t.first_pos(slot), static_cast<uint64_t>(k));
  }
}

TEST(AggTableTest, UpdateMatchesScalarFoldForEveryAggFn) {
  Rng rng(5);
  std::vector<int64_t> keys(5000);
  std::vector<double> vals(5000);
  for (auto& k : keys) k = rng.UniformRange(0, 49);
  for (auto& v : vals) v = rng.NextDouble() * 100 - 50;

  for (AggFn fn : kAllAggFns) {
    AggTable t;
    for (size_t i = 0; i < keys.size(); ++i) {
      t.Update(fn, keys[i], vals[i], i);
    }
    // Scalar reference fold, same init and order.
    std::unordered_map<int64_t, std::pair<double, int64_t>> ref;
    for (size_t i = 0; i < keys.size(); ++i) {
      double init = fn == AggFn::kMin ? 1e300
                   : fn == AggFn::kMax ? -1e300
                                       : 0.0;
      auto [it, ins] = ref.emplace(keys[i], std::make_pair(init, int64_t{0}));
      switch (fn) {
        case AggFn::kSum:
        case AggFn::kAvg: it->second.first += vals[i]; break;
        case AggFn::kCount: it->second.first += 1.0; break;
        case AggFn::kMin:
          it->second.first = std::min(it->second.first, vals[i]);
          break;
        case AggFn::kMax:
          it->second.first = std::max(it->second.first, vals[i]);
          break;
        case AggFn::kNone: break;
      }
      it->second.second += 1;
    }
    ASSERT_EQ(t.num_groups(), ref.size()) << AggFnName(fn);
    for (uint32_t s = 0; s < t.num_groups(); ++s) {
      const auto& expect = ref.at(t.key(s));
      EXPECT_DOUBLE_EQ(t.agg_val(s), expect.first)
          << AggFnName(fn) << " key " << t.key(s);
      EXPECT_EQ(t.agg_count(s), expect.second) << AggFnName(fn);
    }
  }
}

// ---- ParallelGroupBy (function level) --------------------------------------

// Scalar reference: the evaluator's sequential insert loop.
void ReferenceGroupBy(const std::vector<int64_t>& keys,
                      std::vector<int64_t>* gids,
                      std::vector<int64_t>* uniq) {
  std::unordered_map<int64_t, int64_t> map;
  for (int64_t k : keys) {
    auto [it, ins] = map.emplace(k, static_cast<int64_t>(map.size()));
    if (ins) uniq->push_back(k);
    gids->push_back(it->second);
  }
}

class ParallelGroupByTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelGroupByTest, BitIdenticalToScalarAcrossMorselSizes) {
  const int workers = GetParam();
  MorselScheduler sched(workers);
  Rng rng(13);
  std::vector<int64_t> keys(30000);
  for (auto& k : keys) k = rng.UniformRange(0, 999);

  std::vector<int64_t> ref_gids, ref_keys;
  ReferenceGroupBy(keys, &ref_gids, &ref_keys);

  for (uint64_t rows : kMorselSizes) {
    ParallelAggOptions o;
    o.morsel_rows = rows;
    o.scheduler = &sched;
    std::vector<int64_t> gids, uniq;
    std::vector<MorselMetrics> mm;
    const size_t nm = ParallelGroupBy(keys.data(), keys.size(), o, &gids,
                                      &uniq, &mm);
    if (nm == 0) continue;  // one morsel: sequential path's job
    EXPECT_EQ(gids, ref_gids) << "rows=" << rows << " workers=" << workers;
    EXPECT_EQ(uniq, ref_keys) << "rows=" << rows << " workers=" << workers;
    ASSERT_EQ(mm.size(), nm);
    uint64_t in = 0;
    for (const auto& ms : mm) in += ms.tuples_in;
    EXPECT_EQ(in, keys.size());
  }
}

TEST_P(ParallelGroupByTest, AllDistinctAndSingleGroupExtremes) {
  const int workers = GetParam();
  MorselScheduler sched(workers);
  for (bool distinct : {true, false}) {
    std::vector<int64_t> keys(20000);
    for (size_t i = 0; i < keys.size(); ++i) {
      keys[i] = distinct ? static_cast<int64_t>(keys.size() - i) : 77;
    }
    std::vector<int64_t> ref_gids, ref_keys;
    ReferenceGroupBy(keys, &ref_gids, &ref_keys);
    ParallelAggOptions o;
    o.morsel_rows = 512;
    o.scheduler = &sched;
    std::vector<int64_t> gids, uniq;
    std::vector<MorselMetrics> mm;
    ASSERT_GT(ParallelGroupBy(keys.data(), keys.size(), o, &gids, &uniq, &mm),
              0u);
    EXPECT_EQ(gids, ref_gids) << "distinct=" << distinct;
    EXPECT_EQ(uniq, ref_keys) << "distinct=" << distinct;
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelGroupByTest,
                         ::testing::Values(1, 2, 4, 8));

// ---- evaluator-level differential ------------------------------------------

class ParallelAggEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(21);
    const uint64_t n = 25000;
    std::vector<int64_t> kv(n), fkv(n);
    std::vector<double> vv(n);
    for (auto& v : kv) v = rng.UniformRange(0, 499);
    for (auto& v : fkv) v = rng.UniformRange(0, 799);
    for (auto& v : vv) v = rng.NextDouble() * 10;
    keys_ = Column::MakeInt64("keys", std::move(kv));
    fk_ = Column::MakeInt64("fk", std::move(fkv));
    vals_ = Column::MakeFloat64("vals", std::move(vv));
    std::vector<int64_t> pkv(800);
    for (size_t i = 0; i < pkv.size(); ++i) pkv[i] = static_cast<int64_t>(i);
    pk_ = Column::MakeInt64("pk", std::move(pkv));
  }

  // select -> fetch keys -> groupby -> grouped agg over fetched values.
  QueryPlan GroupAggPlan(AggFn fn, int64_t hi = 399) {
    PlanBuilder b("groupagg");
    int s = b.Select(keys_.get(), Predicate::RangeI64(0, hi));
    int fk = b.FetchJoin(keys_.get(), s);
    int g = b.GroupBy(fk);
    int fv = b.FetchJoin(vals_.get(), s);
    int a = b.AggGrouped(fn, g, fn == AggFn::kCount ? -1 : fv);
    return b.Result(a);
  }

  // select -> fetch fk values -> hash-join probe against pk.
  QueryPlan ProbePlan(int64_t hi = 599) {
    PlanBuilder b("probe");
    int s = b.Select(fk_.get(), Predicate::RangeI64(0, hi));
    int f = b.FetchJoin(fk_.get(), s);
    int j = b.Join(f, pk_.get());
    return b.Result(j);
  }

  static EvalResult Run(const QueryPlan& plan, ExecOptions o) {
    Evaluator eval(o);
    EvalResult er;
    EXPECT_TRUE(eval.Execute(plan, &er).ok());
    return er;
  }

  // Runs `plan` through scalar interpreter, whole-column kernels, and the
  // parallel tier at every (morsel size x worker count); all three must
  // agree, and kGroups/kPairs intermediates must agree *bit-identically*
  // (vector equality, not just semantic DiffIntermediates).
  void ExpectParallelMatches(const QueryPlan& plan) {
    ExecOptions scalar;
    scalar.use_kernels = false;
    EvalResult ref = Run(plan, scalar);
    EvalResult base = Run(plan, ExecOptions{});
    ASSERT_EQ(DiffIntermediates(ref.result, base.result), "");

    for (uint64_t rows : kMorselSizes) {
      for (int workers : {1, 2, 4, 8}) {
        ExecOptions o;
        o.use_morsels = true;
        o.morsel_rows = rows;
        o.morsel_workers = workers;
        o.use_parallel_agg = true;
        EvalResult got = Run(plan, o);
        EXPECT_EQ(DiffIntermediates(base.result, got.result), "")
            << "rows=" << rows << " workers=" << workers;
        ASSERT_EQ(base.intermediates.size(), got.intermediates.size());
        for (const auto& [id, inter] : base.intermediates) {
          const Intermediate& other = got.intermediates.at(id);
          if (inter.kind == Intermediate::Kind::kGroups) {
            EXPECT_EQ(inter.group_ids, other.group_ids)
                << "node " << id << " rows=" << rows << " workers=" << workers;
            EXPECT_EQ(inter.group_keys.i64, other.group_keys.i64)
                << "node " << id;
          } else if (inter.kind == Intermediate::Kind::kPairs) {
            EXPECT_EQ(inter.rowids, other.rowids) << "node " << id;
            EXPECT_EQ(inter.rrowids, other.rrowids) << "node " << id;
          } else {
            EXPECT_EQ(DiffIntermediates(inter, other), "") << "node " << id;
          }
        }
      }
    }
  }

  ColumnPtr keys_, fk_, vals_, pk_;
};

TEST_F(ParallelAggEvalTest, GroupByAndGroupedAggAllFns) {
  for (AggFn fn : kAllAggFns) {
    SCOPED_TRACE(AggFnName(fn));
    ExpectParallelMatches(GroupAggPlan(fn));
  }
}

TEST_F(ParallelAggEvalTest, LeafGroupByOverBaseColumn) {
  PlanBuilder b("leafgroup");
  int g = b.GroupByLeaf(keys_.get());
  ExpectParallelMatches(b.Result(g));
}

TEST_F(ParallelAggEvalTest, EmptyTable) {
  auto empty = Column::MakeInt64("e", {});
  PlanBuilder b("empty");
  int g = b.GroupByLeaf(empty.get());
  ExpectParallelMatches(b.Result(g));
}

TEST_F(ParallelAggEvalTest, SingleGroupAndAllDistinct) {
  auto ones = Column::MakeInt64("ones", std::vector<int64_t>(20000, 1));
  std::vector<int64_t> dv(20000);
  for (size_t i = 0; i < dv.size(); ++i) {
    dv[i] = static_cast<int64_t>(dv.size() - i);
  }
  auto dist = Column::MakeInt64("dist", std::move(dv));
  for (const Column* col : {ones.get(), dist.get()}) {
    PlanBuilder b("extreme");
    int g = b.GroupByLeaf(col);
    int a = b.AggGrouped(AggFn::kCount, g);
    ExpectParallelMatches(b.Result(a));
  }
}

TEST_F(ParallelAggEvalTest, JoinProbeMatchesAcrossMorselSizes) {
  ExpectParallelMatches(ProbePlan());
}

TEST_F(ParallelAggEvalTest, LeafJoinProbe) {
  PlanBuilder b("leafjoin");
  int j = b.JoinLeaf(fk_.get(), pk_.get());
  ExpectParallelMatches(b.Result(j));
}

TEST_F(ParallelAggEvalTest, RowIdInputJoinProbe) {
  // Join over a row-id candidate list (outer column bound on the node):
  // probes gather outer.i64()[row] per candidate.
  PlanBuilder b("rowidjoin");
  int s = b.Select(fk_.get(), Predicate::RangeI64(0, 599));
  int j = b.Join(s, pk_.get());
  QueryPlan plan = b.Result(j);
  plan.node(j).column = fk_.get();
  ASSERT_TRUE(plan.Validate().ok());
  ExpectParallelMatches(plan);
}

TEST_F(ParallelAggEvalTest, SlicedProbeClipsIdenticallyToSequential) {
  // A sliced join clone (the exchange mutation's shape): out-of-slice outer
  // rows are skipped; morsel fragments must reproduce the clipped pair list.
  PlanBuilder b("sliced");
  int s = b.Select(fk_.get(), Predicate::RangeI64(0, 799));
  int f = b.FetchJoin(fk_.get(), s);
  int j = b.Join(f, pk_.get());
  QueryPlan plan = b.Result(j);
  plan.node(j).has_slice = true;
  plan.node(j).slice = RowRange{3000, 17000};
  ASSERT_TRUE(plan.Validate().ok());
  ExpectParallelMatches(plan);
}

TEST_F(ParallelAggEvalTest, PerMorselCountsSumToOperatorTotals) {
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 1024;
  o.morsel_workers = 4;
  Evaluator eval(o);
  EvalResult er;
  ASSERT_TRUE(eval.Execute(GroupAggPlan(AggFn::kSum, /*hi=*/499), &er).ok());
  EvalResult jr;
  ASSERT_TRUE(eval.Execute(ProbePlan(), &jr).ok());

  bool saw_groupby = false, saw_join = false;
  auto check = [&](const EvalResult& r) {
    for (const auto& m : r.metrics) {
      if (m.morsels.empty()) continue;
      if (m.kind == OpKind::kGroupBy) saw_groupby = true;
      if (m.kind == OpKind::kJoin) saw_join = true;
      uint64_t in = 0, out = 0;
      for (const auto& ms : m.morsels) {
        in += ms.tuples_in;
        out += ms.tuples_out;
      }
      EXPECT_EQ(in, m.tuples_in) << OpKindName(m.kind);
      EXPECT_EQ(out, m.tuples_out) << OpKindName(m.kind);
    }
  };
  check(er);
  check(jr);
  // 25000-row inputs at 1024-row morsels must have split the group-by and
  // the probe — unless APQ_FORCE_MORSELS raised the morsel size past them.
  if (eval.EffectiveMorselRows() < 20000) {
    EXPECT_TRUE(saw_groupby);
    EXPECT_TRUE(saw_join);
  }
}

TEST_F(ParallelAggEvalTest, DisablingParallelAggKeepsOperatorsWholeColumn) {
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 1024;
  o.morsel_workers = 4;
  o.use_parallel_agg = false;
  Evaluator eval(o);
  // The env override forces the tier back on (that is its job in CI); the
  // gating assertion below is only meaningful without it.
  if (eval.ParallelAggEnabled()) GTEST_SKIP() << "APQ_FORCE_MORSELS is set";
  EvalResult base = Run(GroupAggPlan(AggFn::kSum), ExecOptions{});
  EvalResult er;
  ASSERT_TRUE(eval.Execute(GroupAggPlan(AggFn::kSum), &er).ok());
  EXPECT_EQ(DiffIntermediates(base.result, er.result), "");
  for (const auto& m : er.metrics) {
    if (m.kind == OpKind::kGroupBy || m.kind == OpKind::kJoin ||
        m.kind == OpKind::kAggregate) {
      EXPECT_TRUE(m.morsels.empty()) << OpKindName(m.kind);
    }
  }
}

TEST_F(ParallelAggEvalTest, DeterministicAcrossRepeatedRuns) {
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 512;
  o.morsel_workers = 4;
  Evaluator eval(o);
  QueryPlan plan = GroupAggPlan(AggFn::kAvg);
  EvalResult first;
  ASSERT_TRUE(eval.Execute(plan, &first).ok());
  for (int rep = 0; rep < 5; ++rep) {
    EvalResult again;
    ASSERT_TRUE(eval.Execute(plan, &again).ok());
    // Bit-exact repeatability (not just tolerance): the merge folds partials
    // in morsel order, independent of stealing.
    ASSERT_EQ(first.result.agg_vals.size(), again.result.agg_vals.size());
    for (size_t g = 0; g < first.result.agg_vals.size(); ++g) {
      EXPECT_EQ(first.result.agg_vals[g], again.result.agg_vals[g]) << rep;
    }
    EXPECT_EQ(first.result.agg_counts, again.result.agg_counts) << rep;
    EXPECT_EQ(first.result.group_keys.i64, again.result.group_keys.i64) << rep;
  }
}

// ---- wall-clock speedup (gated on real cores) ------------------------------

TEST(ParallelAggSpeedupTest, ParallelGroupByBeatsSequentialOnMulticore) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads; correctness/determinism "
                    "suites gate on this machine";
  }
  Rng rng(3);
  std::vector<int64_t> kv(1 << 23);  // 8M rows
  for (auto& v : kv) v = rng.UniformRange(0, 9999);
  auto col = Column::MakeInt64("big", std::move(kv));
  PlanBuilder b("group");
  int g = b.GroupByLeaf(col.get());
  QueryPlan plan = b.Result(g);

  auto best_of = [&](Evaluator& eval) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      EvalResult er;
      EXPECT_TRUE(eval.Execute(plan, &er).ok());
      best = std::min(best, er.wall_ns);
    }
    return best;
  };
  Evaluator whole;  // kernels, whole-column ingest
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_workers = 4;
  Evaluator par(o);
  EXPECT_LT(best_of(par), best_of(whole))
      << "morsel-parallel group-by ingest should beat the sequential loop "
         "on >= 4 cores";
}

}  // namespace
}  // namespace apq
