// Tests for the virtual-time multi-core simulator: dataflow scheduling,
// parallel speedup, hyper-threading, bandwidth contention, noise determinism,
// arrivals, and utilization accounting.
#include <gtest/gtest.h>

#include "sched/simulator.h"

namespace apq {
namespace {

SimConfig Quiet(int logical, int physical) {
  SimConfig c = SimConfig::Cores(logical, physical);
  c.noise_sigma = 0.0;
  c.peak_probability = 0.0;
  return c;
}

SimTask Task(double work, double mem = 0.0, std::vector<int> deps = {}) {
  SimTask t;
  t.work_ns = work;
  t.mem_intensity = mem;
  t.deps = std::move(deps);
  return t;
}

TEST(SimulatorTest, SingleTaskRunsAtFullSpeed) {
  Simulator sim(Quiet(4, 4));
  auto out = sim.Run({Task(1000.0)});
  EXPECT_NEAR(out.makespan_ns, 1000.0, 1e-6);
  EXPECT_EQ(out.timings[0].core, 0);
}

TEST(SimulatorTest, IndependentTasksRunInParallel) {
  Simulator sim(Quiet(4, 4));
  auto out = sim.Run({Task(1000), Task(1000), Task(1000), Task(1000)});
  EXPECT_NEAR(out.makespan_ns, 1000.0, 1e-6);
  EXPECT_NEAR(out.utilization, 1.0, 1e-6);
}

TEST(SimulatorTest, MoreTasksThanCoresQueueFifo) {
  Simulator sim(Quiet(2, 2));
  auto out = sim.Run({Task(1000), Task(1000), Task(1000), Task(1000)});
  EXPECT_NEAR(out.makespan_ns, 2000.0, 1e-6);
}

TEST(SimulatorTest, DependenciesSerializeExecution) {
  Simulator sim(Quiet(4, 4));
  auto out = sim.Run({Task(500), Task(500, 0, {0}), Task(500, 0, {1})});
  EXPECT_NEAR(out.makespan_ns, 1500.0, 1e-6);
  EXPECT_GE(out.timings[1].start_ns, out.timings[0].end_ns - 1e-6);
  EXPECT_GE(out.timings[2].start_ns, out.timings[1].end_ns - 1e-6);
}

TEST(SimulatorTest, DiamondDependencyRunsBranchesConcurrently) {
  // Diamond: 0 fans out to 1 and 2, which join at 3.
  Simulator sim(Quiet(4, 4));
  auto out =
      sim.Run({Task(100), Task(400, 0, {0}), Task(400, 0, {0}),
               Task(100, 0, {1, 2})});
  EXPECT_NEAR(out.makespan_ns, 600.0, 1e-6);
}

TEST(SimulatorTest, HyperThreadsAddOnlyPartialThroughput) {
  // 8 CPU-bound tasks on 8 logical / 4 physical cores: capacity is
  // 4 + 0.3*4 = 5.2, so each task runs at 5.2/8 speed.
  SimConfig c = Quiet(8, 4);
  Simulator sim(c);
  std::vector<SimTask> tasks(8, Task(1000));
  auto out = sim.Run(tasks);
  EXPECT_NEAR(out.makespan_ns, 1000.0 * 8 / 5.2, 1.0);
}

TEST(SimulatorTest, MemoryBandwidthSaturationSlowsMemoryBoundTasks) {
  SimConfig c = Quiet(16, 16);
  c.mem_streams = 2.0;
  Simulator sim(c);
  // 8 fully memory-bound tasks share 2 streams: 4x slowdown.
  std::vector<SimTask> tasks(8, Task(1000, 1.0));
  auto out = sim.Run(tasks);
  EXPECT_NEAR(out.makespan_ns, 4000.0, 1.0);
  // CPU-bound tasks are unaffected.
  std::vector<SimTask> cpu(8, Task(1000, 0.0));
  EXPECT_NEAR(sim.Run(cpu).makespan_ns, 1000.0, 1e-6);
}

TEST(SimulatorTest, MixedIntensityScalesProportionally) {
  SimConfig c = Quiet(16, 16);
  c.mem_streams = 2.0;
  Simulator sim(c);
  // mem=0.5: rate = 0.5 + 0.5*(2/4) = 0.75 with four such tasks (sum=2 == streams -> no slowdown).
  std::vector<SimTask> four(4, Task(1000, 0.5));
  EXPECT_NEAR(sim.Run(four).makespan_ns, 1000.0, 1e-6);
  // Eight tasks: sum=4 > 2 -> mem fraction at half speed: rate 0.75.
  std::vector<SimTask> eight(8, Task(1000, 0.5));
  EXPECT_NEAR(sim.Run(eight).makespan_ns, 1000.0 / 0.75, 1.0);
}

TEST(SimulatorTest, NoiseIsDeterministicPerSeedAndSalt) {
  SimConfig c = Quiet(4, 4);
  c.noise_sigma = 0.1;
  Simulator sim(c);
  std::vector<SimTask> tasks(4, Task(1000));
  auto a = sim.Run(tasks, 1);
  auto b = sim.Run(tasks, 1);
  auto d = sim.Run(tasks, 2);
  EXPECT_DOUBLE_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_NE(a.makespan_ns, d.makespan_ns);
}

TEST(SimulatorTest, PeaksInflateWork) {
  SimConfig c = Quiet(1, 1);
  c.peak_probability = 1.0;  // every task peaks
  c.peak_magnitude = 8.0;
  Simulator sim(c);
  auto out = sim.Run({Task(1000)});
  EXPECT_NEAR(out.makespan_ns, 8000.0, 1e-6);
}

TEST(SimulatorTest, ArrivalsDelayStart) {
  Simulator sim(Quiet(4, 4));
  SimTask late = Task(100);
  late.arrival_ns = 5000;
  late.instance = 1;
  auto out = sim.Run({Task(1000), late});
  EXPECT_NEAR(out.timings[1].start_ns, 5000.0, 1e-6);
  EXPECT_NEAR(out.instance_response_ns[1], 100.0, 1e-6);
  EXPECT_NEAR(out.instance_response_ns[0], 1000.0, 1e-6);
}

TEST(SimulatorTest, UtilizationAccountsIdleCores) {
  Simulator sim(Quiet(4, 4));
  auto out = sim.Run({Task(1000)});  // one busy core of four
  EXPECT_NEAR(out.utilization, 0.25, 1e-6);
}

TEST(SimulatorTest, PerInstanceResponseTimes) {
  Simulator sim(Quiet(2, 2));
  SimTask a = Task(1000);
  a.instance = 0;
  SimTask b = Task(500, 0, {0});
  b.instance = 0;
  SimTask c2 = Task(300);
  c2.instance = 1;
  auto out = sim.Run({a, b, c2});
  EXPECT_NEAR(out.instance_response_ns[0], 1500.0, 1e-6);
  EXPECT_NEAR(out.instance_response_ns[1], 300.0, 1e-6);
}

TEST(SimulatorTest, EmptyTaskListIsFine) {
  Simulator sim(Quiet(2, 2));
  auto out = sim.Run({});
  EXPECT_EQ(out.makespan_ns, 0.0);
}

TEST(SimulatorTest, FourSocketConfigHasMoreResources) {
  SimConfig two = SimConfig::TwoSocket32();
  SimConfig four = SimConfig::FourSocket96();
  EXPECT_GT(four.logical_cores, two.logical_cores);
  EXPECT_GT(four.mem_streams, two.mem_streams);
}

}  // namespace
}  // namespace apq
