// Tests for the intermediate comparison helper and remaining util pieces
// (hash index, rng determinism, table printer, summary stats).
#include <gtest/gtest.h>

#include "exec/compare.h"
#include "exec/hash_index.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace apq {
namespace {

Intermediate RowIds(std::vector<oid> ids) {
  Intermediate r;
  r.kind = Intermediate::Kind::kRowIds;
  r.rowids = std::move(ids);
  return r;
}

Intermediate Scalar(double v, int64_t count = 1) {
  Intermediate r;
  r.kind = Intermediate::Kind::kScalar;
  r.scalar = v;
  r.scalar_count = count;
  return r;
}

Intermediate Grouped(std::vector<int64_t> keys, std::vector<double> vals) {
  Intermediate r;
  r.kind = Intermediate::Kind::kGroupedAgg;
  r.group_keys.type = DataType::kInt64;
  r.group_keys.i64 = std::move(keys);
  r.agg_vals = std::move(vals);
  r.agg_counts.assign(r.agg_vals.size(), 1);
  return r;
}

TEST(CompareTest, EqualRowIds) {
  EXPECT_TRUE(IntermediatesEqual(RowIds({1, 2, 3}), RowIds({1, 2, 3})));
}

TEST(CompareTest, RowIdCountMismatch) {
  std::string d = DiffIntermediates(RowIds({1, 2}), RowIds({1, 2, 3}));
  EXPECT_NE(d.find("count mismatch"), std::string::npos);
}

TEST(CompareTest, RowIdOrderMatters) {
  EXPECT_FALSE(IntermediatesEqual(RowIds({1, 2, 3}), RowIds({1, 3, 2})));
}

TEST(CompareTest, ScalarTolerance) {
  EXPECT_TRUE(IntermediatesEqual(Scalar(100.0), Scalar(100.0 + 1e-8), 1e-9));
  EXPECT_FALSE(IntermediatesEqual(Scalar(100.0), Scalar(101.0), 1e-9));
}

TEST(CompareTest, ScalarVsSingleGroupInterchangeable) {
  // A packed scalar partial becomes a single-group grouped aggregate.
  EXPECT_TRUE(IntermediatesEqual(Scalar(42.0), Grouped({0}, {42.0})));
  EXPECT_FALSE(IntermediatesEqual(Scalar(42.0), Grouped({0}, {43.0})));
}

TEST(CompareTest, GroupedAggOrderInsensitive) {
  EXPECT_TRUE(IntermediatesEqual(Grouped({1, 2, 3}, {10, 20, 30}),
                                 Grouped({3, 1, 2}, {30, 10, 20})));
}

TEST(CompareTest, GroupedAggMissingKey) {
  std::string d = DiffIntermediates(Grouped({1, 2}, {10, 20}),
                                    Grouped({1, 3}, {10, 20}));
  EXPECT_NE(d.find("missing"), std::string::npos);
}

TEST(CompareTest, KindMismatchReported) {
  std::string d = DiffIntermediates(RowIds({1}), Grouped({1, 2}, {1, 2}));
  EXPECT_NE(d.find("kind mismatch"), std::string::npos);
}

TEST(HashIndexTest, ProbeFindsAllDuplicates) {
  auto col = Column::MakeInt64("c", {5, 7, 5, 9, 5});
  auto idx = HashIndex::Build(*col, col->full_range());
  std::vector<oid> hits;
  idx->Probe(5, &hits);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<oid>{0, 2, 4}));
  EXPECT_EQ(idx->ProbeFirst(9), 3u);
  EXPECT_EQ(idx->ProbeFirst(123), kInvalidOid);
  EXPECT_EQ(idx->num_keys(), 5u);
}

TEST(HashIndexTest, RangeRestrictedBuild) {
  auto col = Column::MakeInt64("c", {5, 7, 5, 9, 5});
  auto idx = HashIndex::Build(*col, RowRange{1, 4});  // rows 1..3
  std::vector<oid> hits;
  idx->Probe(5, &hits);
  EXPECT_EQ(hits, (std::vector<oid>{2}));  // only row 2 is in range
  EXPECT_EQ(idx->num_keys(), 3u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) differs |= (a2.Next() != c.Next());
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = r.UniformRange(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ZipfIsSkewedTowardHead) {
  Rng r(11);
  uint64_t head = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (r.Zipf(1000, 0.7) < 100) ++head;
  }
  // Head decile should hold far more than 10% of the mass.
  EXPECT_GT(head, static_cast<uint64_t>(n) / 5);
}

TEST(RngTest, GaussianRoughlyStandard) {
  Rng r(5);
  SummaryStats s;
  for (int i = 0; i < 20'000; ++i) s.Add(r.NextGaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(SummaryStatsTest, Moments) {
  SummaryStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 3.0);  // nearest rank
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 4.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long header"});
  t.AddRow({"xxxxxx", "1"});
  // Smoke: printing to a memstream-like file is awkward portably; validate
  // the formatting helpers instead.
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<int64_t>(42)), "42");
  t.Print(stderr);  // must not crash with ragged rows
  TablePrinter ragged({"a", "b", "c"});
  ragged.AddRow({"only-one"});
  ragged.Print(stderr);
}

}  // namespace
}  // namespace apq
