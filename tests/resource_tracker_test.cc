// Per-query resource accounting (obs/resource_tracker.h): charge/uncharge
// units and the zero-drift discipline, operator-block scoping, task billing,
// the engine-level lifecycle (snapshot into the profile document, retire),
// scheduler worker-health telemetry, the APQ_QUERY_LOG parser, and the
// determinism contract — accounting on vs off must be bit-identical over
// the TPC-H suite at every worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/compare.h"
#include "exec/evaluator.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/resource_tracker.h"
#include "sched/morsel_scheduler.h"
#include "util/hash_clock.h"
#include "workload/tpch.h"

namespace apq {
namespace {

// Restores the accounting switch no matter how a test exits (it is global
// process state; other suites assume the default ON).
class AccountingGuard {
 public:
  ~AccountingGuard() { obs::SetAccountingEnabled(true); }
};

// ---- charge/uncharge units --------------------------------------------------

TEST(ResourceTrackerTest, DisabledSitesAreNoOps) {
  AccountingGuard guard;
  obs::SetAccountingEnabled(false);
  const size_t live = obs::LiveQueryResourceCount();
  obs::QueryIdScope qid(obs::NextQueryId());
  obs::ChargeBytes(1 << 20);
  obs::ChargeTransient(1 << 20);
  obs::BillTask(obs::CurrentQueryId(), nullptr, 1e6, 1e3);
  // No block was ever created, so there is nothing to snapshot or leak.
  EXPECT_EQ(obs::LiveQueryResourceCount(), live);
  obs::QueryResources qr;
  EXPECT_FALSE(obs::SnapshotQueryResources(obs::CurrentQueryId(), &qr));
}

TEST(ResourceTrackerTest, ChargesLandOnQueryAndProcessGauges) {
  AccountingGuard guard;
  obs::SetAccountingEnabled(true);
  obs::Gauge* cur =
      obs::MetricsRegistry::Global().GetGauge("apq_mem_current_bytes");
  const uint64_t id = obs::NextQueryId();
  obs::QueryIdScope qid(id);
  const int64_t cur0 = cur->Value();

  obs::ChargeBytes(4096);
  obs::ChargeBytes(4096);
  EXPECT_EQ(cur->Value(), cur0 + 8192);
  obs::UnchargeBytes(4096);

  obs::QueryResources qr;
  ASSERT_TRUE(obs::SnapshotQueryResources(id, &qr));
  EXPECT_EQ(qr.cur_bytes, 4096u);
  EXPECT_EQ(qr.peak_bytes, 8192u);

  obs::UnchargeBytes(4096);
  ASSERT_TRUE(obs::SnapshotQueryResources(id, &qr));
  EXPECT_EQ(qr.cur_bytes, 0u);  // zero drift
  EXPECT_EQ(qr.peak_bytes, 8192u);
  EXPECT_EQ(cur->Value(), cur0);

  obs::FinishQuery(id);
  EXPECT_FALSE(obs::SnapshotQueryResources(id, &qr));
}

TEST(ResourceTrackerTest, TransientChargesRaisePeakNotCurrent) {
  AccountingGuard guard;
  obs::SetAccountingEnabled(true);
  const uint64_t id = obs::NextQueryId();
  obs::QueryIdScope qid(id);
  obs::ChargeTransient(1 << 16);
  obs::QueryResources qr;
  ASSERT_TRUE(obs::SnapshotQueryResources(id, &qr));
  EXPECT_EQ(qr.cur_bytes, 0u);
  EXPECT_EQ(qr.peak_bytes, static_cast<uint64_t>(1 << 16));
  obs::FinishQuery(id);
}

TEST(ResourceTrackerTest, ScopedMemChargeReleasesOnEveryPath) {
  AccountingGuard guard;
  obs::SetAccountingEnabled(true);
  const uint64_t id = obs::NextQueryId();
  obs::QueryIdScope qid(id);
  {
    obs::ScopedMemCharge mc(1000);
    mc.Add(500);
    mc.AssumeCharged(0);
    EXPECT_EQ(mc.held(), 1500u);
    mc.Release();
    EXPECT_EQ(mc.held(), 0u);
    mc.Release();  // idempotent
    mc.Add(250);   // destructor releases the rest
  }
  obs::QueryResources qr;
  ASSERT_TRUE(obs::SnapshotQueryResources(id, &qr));
  EXPECT_EQ(qr.cur_bytes, 0u);
  EXPECT_EQ(qr.peak_bytes, 1500u);
  obs::FinishQuery(id);
}

// AssumeCharged adopts bytes charged elsewhere (the sort-run pattern: run
// tasks ChargeBytes durably, the operator's guard owns the one uncharge).
TEST(ResourceTrackerTest, AssumeChargedAdoptsWithoutDoubleCharging) {
  AccountingGuard guard;
  obs::SetAccountingEnabled(true);
  const uint64_t id = obs::NextQueryId();
  obs::QueryIdScope qid(id);
  {
    obs::ChargeBytes(2048);  // "the run tasks"
    obs::ScopedMemCharge mc;
    mc.AssumeCharged(2048);
  }
  obs::QueryResources qr;
  ASSERT_TRUE(obs::SnapshotQueryResources(id, &qr));
  EXPECT_EQ(qr.cur_bytes, 0u);
  EXPECT_EQ(qr.peak_bytes, 2048u);
  obs::FinishQuery(id);
}

// ---- operator blocks --------------------------------------------------------

TEST(ResourceTrackerTest, OpAcctScopeNestsAndCollectsCharges) {
  AccountingGuard guard;
  obs::SetAccountingEnabled(true);
  EXPECT_EQ(obs::CurrentOpAcct(), nullptr);
  obs::OpAcct outer, inner;
  {
    obs::OpAcctScope so(&outer);
    EXPECT_EQ(obs::CurrentOpAcct(), &outer);
    obs::ChargeTransient(100);
    {
      obs::OpAcctScope si(&inner);
      EXPECT_EQ(obs::CurrentOpAcct(), &inner);
      obs::ChargeTransient(300);
    }
    EXPECT_EQ(obs::CurrentOpAcct(), &outer);
  }
  EXPECT_EQ(obs::CurrentOpAcct(), nullptr);
  EXPECT_EQ(outer.peak_bytes.load(), 100u);
  EXPECT_EQ(inner.peak_bytes.load(), 300u);
  EXPECT_EQ(outer.cur_bytes.load(), 0u);
  EXPECT_EQ(inner.cur_bytes.load(), 0u);
}

TEST(ResourceTrackerTest, BillTaskClampsAndAccumulates) {
  AccountingGuard guard;
  obs::SetAccountingEnabled(true);
  const uint64_t id = obs::NextQueryId();
  obs::OpAcct acct;
  obs::BillTask(id, &acct, 1000.0, 50.0);
  obs::BillTask(id, &acct, -5.0, -5.0);  // clock skew clamps to zero
  obs::BillTask(0, nullptr, 1e9, 1e9);   // unowned: dropped entirely
  EXPECT_EQ(acct.cpu_ns.load(), 1000u);
  EXPECT_EQ(acct.queue_wait_ns.load(), 50u);
  EXPECT_EQ(acct.tasks.load(), 2u);
  obs::QueryResources qr;
  ASSERT_TRUE(obs::SnapshotQueryResources(id, &qr));
  EXPECT_EQ(qr.cpu_ns, 1000u);
  EXPECT_EQ(qr.queue_wait_ns, 50u);
  EXPECT_EQ(qr.tasks, 2u);
  obs::FinishQuery(id);
}

// ---- APQ_QUERY_LOG parsing --------------------------------------------------

TEST(ResourceTrackerTest, ParseQueryLogCapacityIsStrict) {
  EXPECT_EQ(obs::ParseQueryLogCapacity("64"), 64u);
  EXPECT_EQ(obs::ParseQueryLogCapacity("1"), 1u);
  EXPECT_EQ(obs::ParseQueryLogCapacity("1048576"), 1048576u);
  EXPECT_EQ(obs::ParseQueryLogCapacity("0"), 0u);
  EXPECT_EQ(obs::ParseQueryLogCapacity("1048577"), 0u);
  EXPECT_EQ(obs::ParseQueryLogCapacity("-1"), 0u);
  EXPECT_EQ(obs::ParseQueryLogCapacity("64x"), 0u);
  EXPECT_EQ(obs::ParseQueryLogCapacity("abc"), 0u);
  EXPECT_EQ(obs::ParseQueryLogCapacity(""), 0u);
  EXPECT_EQ(obs::ParseQueryLogCapacity(nullptr), 0u);
}

// ---- evaluator-level zero drift and CPU attribution -------------------------

// Execute a morselized TPC-H query under an owning query id at every worker
// count: all durable charges must return to zero by the time Execute
// returns, the peak must be visible, and the billed CPU must be bounded by
// the parallelism actually available.
TEST(ResourceTrackerTest, EvaluatorChargesReturnToZeroAcrossWorkerCounts) {
  AccountingGuard guard;
  obs::SetAccountingEnabled(true);
  TpchConfig cfg;
  cfg.lineitem_rows = 6000;
  auto cat = Tpch::Generate(cfg);

  for (const char* qname : {"Q6", "Q14"}) {
    auto plan = Tpch::Query(*cat, qname);
    ASSERT_TRUE(plan.ok()) << qname;
    for (int workers : {1, 2, 4, 8}) {
      ExecOptions o;
      o.use_morsels = true;
      o.morsel_rows = 512;
      o.morsel_workers = workers;
      Evaluator ev(o);

      const uint64_t id = obs::NextQueryId();
      EvalResult er;
      const double t0 = NowNs();
      {
        obs::QueryIdScope qid(id);
        ASSERT_TRUE(ev.Execute(plan.ValueOrDie(), &er).ok())
            << qname << " workers=" << workers;
      }
      const double wall = NowNs() - t0;

      obs::QueryResources qr;
      ASSERT_TRUE(obs::SnapshotQueryResources(id, &qr))
          << qname << " workers=" << workers;
      EXPECT_EQ(qr.cur_bytes, 0u)
          << qname << " workers=" << workers << " (charge drift!)";
      EXPECT_GT(qr.peak_bytes, 0u) << qname << " workers=" << workers;
      EXPECT_GT(qr.cpu_ns, 0u) << qname << " workers=" << workers;

      // Query CPU covers every operator's billed CPU (each bill lands on
      // both the operator block and the query block).
      uint64_t max_op_cpu = 0;
      for (const auto& m : er.metrics) {
        max_op_cpu = std::max(max_op_cpu, m.cpu_ns);
      }
      EXPECT_GE(qr.cpu_ns, max_op_cpu) << qname << " workers=" << workers;
      // And cannot exceed what the fleet (workers + the submitting thread)
      // could physically have executed inside the query's wall time; 1.25x
      // covers timer-granularity noise on short ops.
      EXPECT_LE(static_cast<double>(qr.cpu_ns),
                (workers + 1) * wall * 1.25)
          << qname << " workers=" << workers;

      obs::FinishQuery(id);
      EXPECT_FALSE(obs::SnapshotQueryResources(id, &qr));
    }
  }
}

// ---- scheduler worker-health telemetry --------------------------------------

TEST(ResourceTrackerTest, WorkerOccupancyIsBoundedByUptime) {
  for (int workers : {1, 2, 4, 8}) {
    MorselScheduler sched(workers);
    for (int j = 0; j < 4; ++j) {
      sched.ParallelFor(256, [](size_t i, int) {
        volatile uint64_t x = i;
        for (int k = 0; k < 100; ++k) x = x * 2654435761u + k;
      });
    }
    // Read stats before uptime: busy only grows, so busy <= uptime holds
    // strictly in this order.
    const auto stats = sched.worker_stats();
    const uint64_t caller_busy = sched.caller_busy_ns();
    const double uptime = sched.uptime_ns();
    ASSERT_EQ(static_cast<int>(stats.size()), workers);
    uint64_t total_busy = 0;
    for (const auto& ws : stats) {
      EXPECT_LE(static_cast<double>(ws.busy_ns), uptime)
          << "workers=" << workers;
      EXPECT_LE(ws.steals, ws.tasks);
      total_busy += ws.busy_ns;
    }
    // Something executed somewhere (workers or the submitting thread).
    EXPECT_GT(total_busy + caller_busy, 0u) << "workers=" << workers;
    EXPECT_EQ(sched.total_tasks(), 4u * 256u);
  }
}

TEST(ResourceTrackerTest, DebugJsonCarriesWorkerListAndFlight) {
  MorselScheduler sched(2);
  sched.ParallelFor(64, [](size_t, int) {});
  const std::string json = sched.DebugJson();
  for (const char* needle :
       {"\"workers\":2", "\"uptime_ns\":", "\"pending\":",
        "\"caller_tasks\":", "\"caller_busy_ns\":", "\"total_tasks\":",
        "\"worker_list\":[", "\"steal_fails\":", "\"busy_ns\":",
        "\"idle_ns\":", "\"flight\":["}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << " in "
                                                    << json;
  }
  // The process-wide document wraps every live scheduler.
  const std::string all = MorselScheduler::WorkersJson();
  EXPECT_NE(all.find("{\"schedulers\":["), std::string::npos);
  EXPECT_NE(all.find("\"worker_list\":["), std::string::npos);
}

// ---- engine lifecycle -------------------------------------------------------

// The engine snapshots the block into the profile document and the query
// record, then retires it: live block count returns to its baseline, and
// the recorded surfaces carry the resource fields.
TEST(ResourceTrackerTest, EngineRecordsResourcesAndRetiresBlocks) {
  AccountingGuard guard;
  obs::SetAccountingEnabled(true);
  obs::QueryLog::Global().Clear();

  TpchConfig cfg;
  cfg.lineitem_rows = 6000;
  auto cat = Tpch::Generate(cfg);
  auto q6 = Tpch::Q6(*cat);
  ASSERT_TRUE(q6.ok());

  EngineConfig ecfg = EngineConfig::WithSim(SimConfig::Cores(8, 4));
  ecfg.use_morsels = true;
  ecfg.morsel_rows = 512;
  ecfg.morsel_workers = 4;
  Engine engine(ecfg);

  const size_t live0 = obs::LiveQueryResourceCount();
  auto out = engine.RunSerial(q6.ValueOrDie());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(obs::LiveQueryResourceCount(), live0)
      << "engine leaked a query accounting block";

  const auto snap = obs::QueryLog::Global().Snapshot();
  ASSERT_FALSE(snap.empty());
  EXPECT_EQ(snap[0].id, out.ValueOrDie().query_id);
  EXPECT_GT(snap[0].peak_bytes, 0u);
  EXPECT_GT(snap[0].cpu_ns, 0.0);

  std::string profile;
  ASSERT_TRUE(
      obs::QueryLog::Global().FindProfile(snap[0].id, &profile));
  for (const char* needle :
       {"\"peak_bytes\":", "\"cpu_ns\":", "\"queue_wait_ns\":",
        "\"workers\":4", "\"parallel_efficiency\":"}) {
    EXPECT_NE(profile.find(needle), std::string::npos) << needle;
  }
  // Per-operator attribution made it into the ops array too.
  EXPECT_NE(profile.find("\"ops\":["), std::string::npos);
  obs::QueryLog::Global().Clear();
}

// ---- determinism: accounting must never perturb results ---------------------

TEST(ResourceTrackerTest, TpchSuiteBitIdenticalAccountingOnAndOff) {
  AccountingGuard guard;
  TpchConfig cfg;
  cfg.lineitem_rows = 6000;
  auto cat = Tpch::Generate(cfg);

  for (const auto& name : Tpch::QueryNames()) {
    auto plan = Tpch::Query(*cat, name);
    ASSERT_TRUE(plan.ok()) << name;

    // Baseline: accounting off, whole-column kernels.
    obs::SetAccountingEnabled(false);
    Evaluator base_ev(ExecOptions{});
    EvalResult base;
    ASSERT_TRUE(base_ev.Execute(plan.ValueOrDie(), &base).ok()) << name;

    for (int workers : {1, 2, 4, 8}) {
      ExecOptions o;
      o.use_morsels = true;
      o.morsel_rows = 512;
      o.morsel_workers = workers;

      obs::SetAccountingEnabled(false);
      Evaluator off_ev(o);
      EvalResult off;
      ASSERT_TRUE(off_ev.Execute(plan.ValueOrDie(), &off).ok())
          << name << " workers=" << workers;

      obs::SetAccountingEnabled(true);
      const uint64_t id = obs::NextQueryId();
      Evaluator on_ev(o);
      EvalResult on;
      {
        obs::QueryIdScope qid(id);
        ASSERT_TRUE(on_ev.Execute(plan.ValueOrDie(), &on).ok())
            << name << " workers=" << workers;
      }
      obs::FinishQuery(id);

      EXPECT_EQ(DiffIntermediates(base.result, off.result), "")
          << name << " workers=" << workers;
      EXPECT_EQ(DiffIntermediates(off.result, on.result), "")
          << name << " workers=" << workers
          << " (accounting changed results!)";
      ASSERT_EQ(off.metrics.size(), on.metrics.size());
      for (size_t i = 0; i < off.metrics.size(); ++i) {
        EXPECT_EQ(off.metrics[i].tuples_out, on.metrics[i].tuples_out)
            << name << " workers=" << workers << " op " << i;
      }
    }
  }
}

}  // namespace
}  // namespace apq
