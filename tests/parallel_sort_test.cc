// The parallel sort subsystem (exec/sort/): loser-tree and merge-path split
// unit tests, and — above all — differential tests of morsel-parallel sort
// and bounded top-N against the scalar stable sort, across morsel sizes,
// worker counts, input shapes (values / rowids / leaf / grouped aggregates),
// key distributions (heavy ties for stability stress), sort directions, and
// top-N limits. The permutation must reproduce std::stable_sort over values
// bit-for-bit: every comparison is keyed by (value, original position).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/compare.h"
#include "exec/evaluator.h"
#include "exec/sort/merge.h"
#include "plan/builder.h"
#include "sched/morsel_scheduler.h"
#include "util/rng.h"

namespace apq {
namespace {

// The morsel sizes the acceptance criteria call out: pathological (1), odd
// (7), sub-default (4096), default (64K), and larger than any test table.
const uint64_t kMorselSizes[] = {1, 7, 4096, 64 * 1024, 1 << 30};

// Keys with heavy ties (card distinct values): ties are where stability can
// break, so every differential runs on them.
std::vector<double> TiedKeys(uint64_t n, uint64_t seed, int64_t card) {
  Rng rng(seed);
  std::vector<double> keys(n);
  for (auto& k : keys) {
    k = static_cast<double>(rng.UniformRange(0, card - 1)) * 0.5;
  }
  return keys;
}

// Contiguous chunks of [0, n), each sorted under `less` — the shape
// BuildSortRuns produces.
std::vector<std::vector<uint64_t>> ChunkRuns(const SortKeyLess& less,
                                             uint64_t n, uint64_t rows) {
  std::vector<std::vector<uint64_t>> runs;
  for (uint64_t b = 0; b < n; b += rows) {
    const uint64_t e = std::min(n, b + rows);
    std::vector<uint64_t> run(e - b);
    std::iota(run.begin(), run.end(), b);
    std::sort(run.begin(), run.end(), less);
    runs.push_back(std::move(run));
  }
  return runs;
}

std::vector<RunSpan> Spans(const std::vector<std::vector<uint64_t>>& runs) {
  std::vector<RunSpan> s;
  s.reserve(runs.size());
  for (const auto& r : runs) s.push_back(RunSpan{r.data(), r.size()});
  return s;
}

// The old scalar path: std::stable_sort over values only, then clip.
std::vector<uint64_t> StableSortReference(const std::vector<double>& keys,
                                          bool descending, uint64_t limit) {
  std::vector<uint64_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), uint64_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](uint64_t x, uint64_t y) {
    return descending ? keys[x] > keys[y] : keys[x] < keys[y];
  });
  if (limit > 0 && limit < perm.size()) perm.resize(limit);
  return perm;
}

// ---- loser tree + sequential merge -----------------------------------------

TEST(LoserTreeMergeTest, MergesRunsIntoTheStableSortPermutation) {
  const uint64_t n = 5000;
  const std::vector<double> keys = TiedKeys(n, 11, 40);
  for (bool desc : {false, true}) {
    const SortKeyLess less{SortKeys{keys.data(), nullptr}, desc};
    for (uint64_t rows : {uint64_t{1}, uint64_t{37}, uint64_t{512}, n}) {
      const auto runs = ChunkRuns(less, n, rows);
      std::vector<uint64_t> out(n);
      MergeRuns(Spans(runs), less, out.data(), n);
      EXPECT_EQ(out, StableSortReference(keys, desc, 0))
          << "rows=" << rows << " desc=" << desc;
    }
  }
}

TEST(LoserTreeMergeTest, StopsAtOutLen) {
  const uint64_t n = 1000;
  const std::vector<double> keys = TiedKeys(n, 7, 15);
  const SortKeyLess less{SortKeys{keys.data(), nullptr}, false};
  const auto runs = ChunkRuns(less, n, 64);
  std::vector<uint64_t> out(10);
  MergeRuns(Spans(runs), less, out.data(), 10);
  const auto ref = StableSortReference(keys, false, 10);
  EXPECT_EQ(out, ref);
}

TEST(LoserTreeMergeTest, HandlesEmptySingleAndPaddedRunCounts) {
  const std::vector<double> keys = {3, 1, 2, 1, 3, 0};
  const SortKeyLess less{SortKeys{keys.data(), nullptr}, false};
  // No runs at all.
  std::vector<uint64_t> out;
  MergeRuns({}, less, out.data(), 0);
  // One run.
  const auto one = ChunkRuns(less, keys.size(), keys.size());
  out.resize(keys.size());
  MergeRuns(Spans(one), less, out.data(), out.size());
  EXPECT_EQ(out, StableSortReference(keys, false, 0));
  // Three runs (pads to four leaves) with an empty span in the middle.
  std::vector<uint64_t> a = {5, 1}, b = {}, c = {3, 0, 2, 4};
  std::sort(a.begin(), a.end(), less);
  std::sort(c.begin(), c.end(), less);
  std::vector<RunSpan> spans = {RunSpan{a.data(), a.size()},
                                RunSpan{b.data(), b.size()},
                                RunSpan{c.data(), c.size()}};
  MergeRuns(spans, less, out.data(), out.size());
  EXPECT_EQ(out, StableSortReference(keys, false, 0));
}

// ---- merge-path splits -----------------------------------------------------

TEST(SplitRunsTest, PartitionsEveryRankExactly) {
  const uint64_t n = 300;
  const std::vector<double> keys = TiedKeys(n, 3, 10);  // heavy ties
  for (bool desc : {false, true}) {
    const SortKeyLess less{SortKeys{keys.data(), nullptr}, desc};
    const auto runs = ChunkRuns(less, n, 37);
    const auto spans = Spans(runs);
    const auto ref = StableSortReference(keys, desc, 0);
    for (uint64_t t = 0; t <= n; ++t) {
      const auto splits = SplitRuns(spans, less, t);
      ASSERT_EQ(splits.size(), spans.size());
      uint64_t sum = 0;
      std::vector<uint64_t> prefix;
      for (size_t r = 0; r < spans.size(); ++r) {
        ASSERT_LE(splits[r], spans[r].len) << "t=" << t;
        sum += splits[r];
        prefix.insert(prefix.end(), spans[r].data, spans[r].data + splits[r]);
      }
      ASSERT_EQ(sum, t) << "desc=" << desc;
      // The prefixes must be exactly the t smallest elements.
      std::sort(prefix.begin(), prefix.end(), less);
      EXPECT_TRUE(std::equal(prefix.begin(), prefix.end(), ref.begin()))
          << "t=" << t << " desc=" << desc;
    }
  }
}

class ParallelMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMergeTest, ChunkedMergeBitIdenticalToSequential) {
  MorselScheduler sched(GetParam());
  const uint64_t n = 4000;
  const std::vector<double> keys = TiedKeys(n, 19, 25);
  const SortKeyLess less{SortKeys{keys.data(), nullptr}, false};
  const auto runs = ChunkRuns(less, n, 113);
  const auto spans = Spans(runs);
  const auto ref = StableSortReference(keys, false, 0);
  for (uint64_t chunk : {uint64_t{1}, uint64_t{3}, uint64_t{16}, uint64_t{64},
                         uint64_t{100000}}) {
    ParallelSortOptions o;
    o.scheduler = &sched;
    o.merge_chunk_rows = chunk;
    std::vector<uint64_t> out(n);
    std::vector<MorselMetrics> mm;
    const size_t nchunks = ParallelMergeRuns(spans, less, o, n, out.data(),
                                             &mm);
    EXPECT_EQ(out, ref) << "chunk=" << chunk;
    ASSERT_EQ(mm.size(), nchunks);
    uint64_t out_sum = 0;
    for (const auto& ms : mm) out_sum += ms.tuples_out;
    EXPECT_EQ(out_sum, n) << "chunk=" << chunk;
  }
}

TEST_P(ParallelMergeTest, ChunkedTopNMergeEmitsExactlyTheLimit) {
  MorselScheduler sched(GetParam());
  const uint64_t n = 2000, limit = 333;
  const std::vector<double> keys = TiedKeys(n, 23, 12);
  const SortKeyLess less{SortKeys{keys.data(), nullptr}, true};
  const auto runs = ChunkRuns(less, n, 71);
  ParallelSortOptions o;
  o.scheduler = &sched;
  o.merge_chunk_rows = 50;
  std::vector<uint64_t> out(limit);
  std::vector<MorselMetrics> mm;
  ParallelMergeRuns(Spans(runs), less, o, limit, out.data(), &mm);
  EXPECT_EQ(out, StableSortReference(keys, true, limit));
  uint64_t out_sum = 0;
  for (const auto& ms : mm) out_sum += ms.tuples_out;
  EXPECT_EQ(out_sum, limit);
}

INSTANTIATE_TEST_SUITE_P(Workers, ParallelMergeTest,
                         ::testing::Values(1, 2, 4, 8));

// ---- sequential helper (the scalar interpreter path) -----------------------

TEST(SortPermSequentialTest, TopNPartialSortMatchesOldFullStableSort) {
  const uint64_t n = 5000;
  const std::vector<double> keys = TiedKeys(n, 31, 60);
  for (bool desc : {false, true}) {
    for (uint64_t limit : {uint64_t{0}, uint64_t{1}, n - 1, n, n + 10}) {
      std::vector<uint64_t> perm;
      SortPermSequential(SortKeys{keys.data(), nullptr}, n, desc,
                         limit > 0 && limit < n ? limit : 0, &perm);
      EXPECT_EQ(perm, StableSortReference(keys, desc, limit))
          << "desc=" << desc << " limit=" << limit;
    }
  }
}

// ---- run formation ---------------------------------------------------------

class BuildSortRunsTest : public ::testing::TestWithParam<int> {};

TEST_P(BuildSortRunsTest, RunsAreStableSortedAndMetricsSumToInput) {
  MorselScheduler sched(GetParam());
  const uint64_t n = 5000;
  const std::vector<double> keys = TiedKeys(n, 5, 30);
  ParallelSortOptions o;
  o.morsel_rows = 512;
  o.scheduler = &sched;
  std::vector<std::vector<uint64_t>> runs;
  std::vector<MorselMetrics> mm;
  const size_t nm = BuildSortRuns(SortKeys{keys.data(), nullptr}, n, o,
                                  /*descending=*/false, &runs, &mm);
  ASSERT_EQ(nm, (n + 511) / 512);
  ASSERT_EQ(runs.size(), nm);
  ASSERT_EQ(mm.size(), nm);
  const SortKeyLess less{SortKeys{keys.data(), nullptr}, false};
  uint64_t rows = 0, in_sum = 0;
  for (size_t i = 0; i < nm; ++i) {
    EXPECT_TRUE(std::is_sorted(runs[i].begin(), runs[i].end(), less)) << i;
    rows += runs[i].size();
    in_sum += mm[i].tuples_in;
    EXPECT_EQ(mm[i].tuples_out, 0u);  // output is accounted by merge chunks
  }
  EXPECT_EQ(rows, n);
  EXPECT_EQ(in_sum, n);
}

TEST_P(BuildSortRunsTest, BoundedRunsKeepOnlyTheLimitSmallest) {
  MorselScheduler sched(GetParam());
  const uint64_t n = 3000, limit = 20;
  const std::vector<double> keys = TiedKeys(n, 9, 17);
  ParallelSortOptions o;
  o.morsel_rows = 256;
  o.scheduler = &sched;
  o.limit = limit;
  std::vector<std::vector<uint64_t>> runs;
  std::vector<MorselMetrics> mm;
  const size_t nm = BuildSortRuns(SortKeys{keys.data(), nullptr}, n, o,
                                  /*descending=*/false, &runs, &mm);
  ASSERT_GT(nm, 0u);
  const SortKeyLess less{SortKeys{keys.data(), nullptr}, false};
  for (size_t i = 0; i < nm; ++i) {
    ASSERT_LE(runs[i].size(), limit) << i;
    // Each run is the morsel's own stable-sort prefix.
    const uint64_t begin = i * 256;
    const uint64_t end = std::min(n, begin + 256);
    std::vector<uint64_t> full(end - begin);
    std::iota(full.begin(), full.end(), begin);
    std::sort(full.begin(), full.end(), less);
    full.resize(std::min<uint64_t>(limit, full.size()));
    EXPECT_EQ(runs[i], full) << i;
  }
}

TEST(BuildSortRunsGateTest, SingleMorselInputDeclines) {
  MorselScheduler sched(2);
  const std::vector<double> keys = TiedKeys(100, 1, 5);
  ParallelSortOptions o;
  o.morsel_rows = 1000;  // whole input in one morsel
  o.scheduler = &sched;
  std::vector<std::vector<uint64_t>> runs;
  std::vector<MorselMetrics> mm;
  EXPECT_EQ(BuildSortRuns(SortKeys{keys.data(), nullptr}, 100, o, false,
                          &runs, &mm),
            0u);
  EXPECT_TRUE(runs.empty());
  EXPECT_TRUE(mm.empty());
}

INSTANTIATE_TEST_SUITE_P(Workers, BuildSortRunsTest,
                         ::testing::Values(1, 2, 4, 8));

// ---- evaluator-level differential ------------------------------------------

class ParallelSortEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(17);
    const uint64_t n = 30000;
    std::vector<double> vv(n);
    std::vector<int64_t> iv(n), sel(n);
    // Tied float keys (stability stress), tied int keys, and a selection
    // attribute for carving candidate lists.
    for (auto& v : vv) v = static_cast<double>(rng.UniformRange(0, 99)) * 0.25;
    for (auto& v : iv) v = rng.UniformRange(-50, 49);
    for (auto& v : sel) v = rng.UniformRange(0, 999);
    vals_ = Column::MakeFloat64("vals", std::move(vv));
    ivals_ = Column::MakeInt64("ivals", std::move(iv));
    selcol_ = Column::MakeInt64("selcol", std::move(sel));
    allequal_ = Column::MakeInt64("allequal", std::vector<int64_t>(20000, 7));
  }

  // select -> fetch values -> sort/topn over the fetched (values + head).
  QueryPlan ValuesSortPlan(bool descending, uint64_t limit = 0,
                           int64_t hi = 499) {
    PlanBuilder b("valsort");
    int s = b.Select(selcol_.get(), Predicate::RangeI64(0, hi));
    int f = b.FetchJoin(vals_.get(), s);
    int srt = limit > 0 ? b.TopN(f, limit, descending)
                        : b.Sort(f, descending);
    return b.Result(srt);
  }

  // groupby -> grouped count -> sort the grouped aggregates.
  QueryPlan GroupedSortPlan(bool descending) {
    PlanBuilder b("groupsort");
    int g = b.GroupByLeaf(ivals_.get());
    int a = b.AggGrouped(AggFn::kCount, g);
    int srt = b.Sort(a, descending);
    return b.Result(srt);
  }

  static EvalResult Run(const QueryPlan& plan, ExecOptions o) {
    Evaluator eval(o);
    EvalResult er;
    EXPECT_TRUE(eval.Execute(plan, &er).ok());
    return er;
  }

  // Runs `plan` through the scalar interpreter, the whole-column kernels,
  // and the parallel sort tier at every (morsel size x worker count); all
  // must agree, and sorted kValues / kGroupedAgg intermediates must agree
  // *bit-identically* (vector equality, not just semantic tolerance).
  void ExpectParallelMatches(const QueryPlan& plan) {
    ExecOptions scalar;
    scalar.use_kernels = false;
    EvalResult ref = Run(plan, scalar);
    EvalResult base = Run(plan, ExecOptions{});
    ASSERT_EQ(DiffIntermediates(ref.result, base.result), "");

    for (uint64_t rows : kMorselSizes) {
      for (int workers : {1, 2, 4, 8}) {
        ExecOptions o;
        o.use_morsels = true;
        o.morsel_rows = rows;
        o.morsel_workers = workers;
        o.use_parallel_sort = true;
        EvalResult got = Run(plan, o);
        EXPECT_EQ(DiffIntermediates(base.result, got.result), "")
            << "rows=" << rows << " workers=" << workers;
        ASSERT_EQ(base.intermediates.size(), got.intermediates.size());
        for (const auto& [id, inter] : base.intermediates) {
          const Intermediate& other = got.intermediates.at(id);
          if (inter.kind == Intermediate::Kind::kValues) {
            EXPECT_EQ(inter.values.i64, other.values.i64)
                << "node " << id << " rows=" << rows << " workers=" << workers;
            EXPECT_EQ(inter.values.f64, other.values.f64) << "node " << id;
            EXPECT_EQ(inter.head, other.head) << "node " << id;
          } else if (inter.kind == Intermediate::Kind::kGroupedAgg) {
            EXPECT_EQ(inter.agg_vals, other.agg_vals) << "node " << id;
            EXPECT_EQ(inter.agg_counts, other.agg_counts) << "node " << id;
            EXPECT_EQ(inter.group_keys.i64, other.group_keys.i64)
                << "node " << id;
          } else {
            EXPECT_EQ(DiffIntermediates(inter, other), "") << "node " << id;
          }
        }
      }
    }
  }

  ColumnPtr vals_, ivals_, selcol_, allequal_;
};

TEST_F(ParallelSortEvalTest, ValuesSortAscendingAndDescending) {
  ExpectParallelMatches(ValuesSortPlan(/*descending=*/false));
  ExpectParallelMatches(ValuesSortPlan(/*descending=*/true));
}

TEST_F(ParallelSortEvalTest, TopNAcrossLimitBoundaries) {
  // The select passes ~15000 rows; cover limit in {1, n-1, n, > n} plus the
  // degenerate limit-0 top-N (sorts everything, like the scalar path).
  const uint64_t n = Run(ValuesSortPlan(false), ExecOptions{}).result.NumRows();
  ASSERT_GT(n, 2u);
  for (uint64_t limit : {uint64_t{1}, uint64_t{10}, n - 1, n, n + 1000}) {
    SCOPED_TRACE(limit);
    ExpectParallelMatches(ValuesSortPlan(/*descending=*/true, limit));
  }
  PlanBuilder b("topn0");
  int s = b.Select(selcol_.get(), Predicate::RangeI64(0, 499));
  int f = b.FetchJoin(vals_.get(), s);
  int t = b.TopN(f, 0);
  ExpectParallelMatches(b.Result(t));
}

TEST_F(ParallelSortEvalTest, AllEqualKeysPreserveInputOrder) {
  // Stability stress: every key ties, so the output head must be exactly the
  // input order at every morsel size and worker count.
  PlanBuilder b("allequal");
  int s = b.Select(allequal_.get(), Predicate::EqI64(7));
  int f = b.FetchJoin(allequal_.get(), s);
  int srt = b.Sort(f);
  QueryPlan plan = b.Result(srt);
  ExpectParallelMatches(plan);
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 512;
  o.morsel_workers = 4;
  EvalResult er = Run(plan, o);
  std::vector<oid> expect(20000);
  std::iota(expect.begin(), expect.end(), oid{0});
  EXPECT_EQ(er.result.head, expect);
}

TEST_F(ParallelSortEvalTest, EmptyInput) {
  auto empty = Column::MakeInt64("e", {});
  PlanBuilder b("emptysort");
  int s = b.Select(empty.get(), Predicate::RangeI64(0, 10));
  int f = b.FetchJoin(empty.get(), s);
  int srt = b.Sort(f);
  ExpectParallelMatches(b.Result(srt));
  PlanBuilder b2("emptyleaf");
  int l = b2.SortLeaf(empty.get());
  ExpectParallelMatches(b2.Result(l));
}

TEST_F(ParallelSortEvalTest, GroupedAggregateSort) {
  ExpectParallelMatches(GroupedSortPlan(/*descending=*/false));
  ExpectParallelMatches(GroupedSortPlan(/*descending=*/true));
}

TEST_F(ParallelSortEvalTest, RowIdInputSortGathersAndSorts) {
  // Sort over a row-id candidate list (value column bound on the node):
  // gathers vals_[row] per candidate, then orders by (value, position).
  PlanBuilder b("rowidsort");
  int s = b.Select(selcol_.get(), Predicate::RangeI64(0, 599));
  int srt = b.Sort(s);
  QueryPlan plan = b.Result(srt);
  plan.node(srt).column = vals_.get();
  ASSERT_TRUE(plan.Validate().ok());
  ExpectParallelMatches(plan);
}

TEST_F(ParallelSortEvalTest, LeafSortOverBaseColumns) {
  for (const Column* col : {vals_.get(), ivals_.get()}) {
    PlanBuilder b("leafsort");
    int srt = b.SortLeaf(col, /*descending=*/col == ivals_.get());
    ExpectParallelMatches(b.Result(srt));
  }
  PlanBuilder b("leaftopn");
  int t = b.TopNLeaf(vals_.get(), 25, /*descending=*/true);
  ExpectParallelMatches(b.Result(t));
}

TEST_F(ParallelSortEvalTest, SlicedLeafSortCoversOnlyTheSlice) {
  PlanBuilder b("slicedleaf");
  int srt = b.SortLeaf(vals_.get());
  QueryPlan plan = b.Result(srt);
  plan.node(srt).has_slice = true;
  plan.node(srt).slice = RowRange{3000, 17000};
  ASSERT_TRUE(plan.Validate().ok());
  ExpectParallelMatches(plan);
  // Manual reference: the slice's values stable-sorted, head = base row ids.
  EvalResult er = Run(plan, ExecOptions{});
  ASSERT_EQ(er.result.NumRows(), 14000u);
  const auto& f64 = vals_->f64();
  std::vector<double> window(f64.begin() + 3000, f64.begin() + 17000);
  const auto ref = StableSortReference(window, false, 0);
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(er.result.head[i], static_cast<oid>(3000 + ref[i])) << i;
    ASSERT_EQ(er.result.values.f64[i], window[ref[i]]) << i;
  }
}

TEST_F(ParallelSortEvalTest, SlicedRowIdSortClipsLikeTheJoinProbe) {
  PlanBuilder b("slicedrowid");
  int s = b.Select(selcol_.get(), Predicate::RangeI64(0, 799));
  int srt = b.Sort(s);
  QueryPlan plan = b.Result(srt);
  plan.node(srt).column = vals_.get();
  plan.node(srt).has_slice = true;
  plan.node(srt).slice = RowRange{5000, 21000};
  ASSERT_TRUE(plan.Validate().ok());
  ExpectParallelMatches(plan);
  // Manual reference: in-slice candidates only, stable by (value, position).
  EvalResult er = Run(plan, ExecOptions{});
  std::vector<oid> cand;
  for (oid row = 0; row < selcol_->size(); ++row) {
    if (selcol_->i64()[row] <= 799 && row >= 5000 && row < 21000) {
      cand.push_back(row);
    }
  }
  ASSERT_EQ(er.result.NumRows(), cand.size());
  std::vector<double> keys(cand.size());
  for (size_t i = 0; i < cand.size(); ++i) keys[i] = vals_->f64()[cand[i]];
  const auto ref = StableSortReference(keys, false, 0);
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(er.result.head[i], cand[ref[i]]) << i;
  }
}

TEST_F(ParallelSortEvalTest, PerMorselCountsSumToOperatorTotals) {
  for (uint64_t limit : {uint64_t{0}, uint64_t{100}}) {
    ExecOptions o;
    o.use_morsels = true;
    o.morsel_rows = 1024;
    o.morsel_workers = 4;
    Evaluator eval(o);
    EvalResult er;
    ASSERT_TRUE(
        eval.Execute(ValuesSortPlan(/*descending=*/false, limit), &er).ok());
    bool saw_sort = false;
    for (const auto& m : er.metrics) {
      if (m.kind != OpKind::kSort && m.kind != OpKind::kTopN) continue;
      if (m.morsels.empty()) continue;
      saw_sort = true;
      uint64_t in = 0, out = 0;
      for (const auto& ms : m.morsels) {
        in += ms.tuples_in;
        out += ms.tuples_out;
      }
      // Run tasks carry the input rows, merge chunks the output rows.
      EXPECT_EQ(in, m.tuples_in) << "limit=" << limit;
      EXPECT_EQ(out, m.tuples_out) << "limit=" << limit;
    }
    if (eval.EffectiveMorselRows() < 10000) {
      EXPECT_TRUE(saw_sort) << "limit=" << limit;
    }
  }
}

TEST_F(ParallelSortEvalTest, SlicedRowIdMorselCountsSumToSortedRows) {
  // Slice-clipped rowid inputs drop candidates before sorting, so the run
  // tasks sum to sort_rows (the clipped count), not to the operator's
  // tuples_in — the one shape where the two differ.
  PlanBuilder b("slicedcounts");
  int s = b.Select(selcol_.get(), Predicate::RangeI64(0, 799));
  int srt = b.Sort(s);
  QueryPlan plan = b.Result(srt);
  plan.node(srt).column = vals_.get();
  plan.node(srt).has_slice = true;
  plan.node(srt).slice = RowRange{5000, 21000};
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 1024;
  o.morsel_workers = 4;
  Evaluator eval(o);
  EvalResult er;
  ASSERT_TRUE(eval.Execute(plan, &er).ok());
  for (const auto& m : er.metrics) {
    if (m.kind != OpKind::kSort || m.morsels.empty()) continue;
    uint64_t in = 0, out = 0;
    for (const auto& ms : m.morsels) {
      in += ms.tuples_in;
      out += ms.tuples_out;
    }
    EXPECT_EQ(in, m.sort_rows);
    EXPECT_LT(m.sort_rows, m.tuples_in);  // clipping actually dropped rows
    EXPECT_EQ(out, m.tuples_out);
  }
}

TEST_F(ParallelSortEvalTest, DisablingParallelSortKeepsSortWholeColumn) {
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 1024;
  o.morsel_workers = 4;
  o.use_parallel_sort = false;
  Evaluator eval(o);
  // The env override forces the tier back on (that is its job in CI); the
  // gating assertion below is only meaningful without it.
  if (eval.ParallelSortEnabled()) GTEST_SKIP() << "APQ_FORCE_MORSELS is set";
  EvalResult base = Run(ValuesSortPlan(false), ExecOptions{});
  EvalResult er;
  ASSERT_TRUE(eval.Execute(ValuesSortPlan(false), &er).ok());
  EXPECT_EQ(DiffIntermediates(base.result, er.result), "");
  for (const auto& m : er.metrics) {
    if (m.kind == OpKind::kSort || m.kind == OpKind::kTopN) {
      EXPECT_TRUE(m.morsels.empty()) << OpKindName(m.kind);
    }
  }
}

TEST_F(ParallelSortEvalTest, DeterministicAcrossRepeatedRuns) {
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 512;
  o.morsel_workers = 4;
  Evaluator eval(o);
  QueryPlan plan = ValuesSortPlan(/*descending=*/true);
  EvalResult first;
  ASSERT_TRUE(eval.Execute(plan, &first).ok());
  for (int rep = 0; rep < 5; ++rep) {
    EvalResult again;
    ASSERT_TRUE(eval.Execute(plan, &again).ok());
    // Bit-exact repeatability (not just tolerance): the merged permutation
    // is unique under (value, position), independent of stealing.
    EXPECT_EQ(first.result.values.f64, again.result.values.f64) << rep;
    EXPECT_EQ(first.result.head, again.result.head) << rep;
  }
}

// ---- wall-clock speedup (gated on real cores) ------------------------------

TEST(ParallelSortSpeedupTest, ParallelSortBeatsSequentialOnMulticore) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads; correctness/determinism "
                    "suites gate on this machine";
  }
  Rng rng(3);
  std::vector<double> kv(1 << 23);  // 8M rows
  for (auto& v : kv) v = rng.NextDouble();
  auto col = Column::MakeFloat64("big", std::move(kv));
  PlanBuilder b("sort");
  int srt = b.SortLeaf(col.get());
  QueryPlan plan = b.Result(srt);

  auto best_of = [&](Evaluator& eval) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      EvalResult er;
      EXPECT_TRUE(eval.Execute(plan, &er).ok());
      best = std::min(best, er.wall_ns);
    }
    return best;
  };
  Evaluator whole;  // kernels, whole-column stable sort
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_workers = 4;
  Evaluator par(o);
  EXPECT_LT(best_of(par), best_of(whole))
      << "morsel-local runs + parallel k-way merge should beat one "
         "stable_sort on >= 4 cores";
}

}  // namespace
}  // namespace apq
