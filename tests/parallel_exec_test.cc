// Thread-pool execution of exchange-parallelized plans: threaded runs must
// reproduce serial results exactly (same intermediates, same metrics order),
// and errors must propagate cleanly out of worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "adaptive/mutator.h"
#include "sched/morsel_scheduler.h"
#include "exec/compare.h"
#include "exec/evaluator.h"
#include "heuristic/parallelizer.h"
#include "plan/builder.h"
#include "sched/thread_pool.h"
#include "workload/tpch.h"

namespace apq {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  std::atomic<int> remaining{100};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining.load() == 0; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::atomic<int> remaining{10};
  std::mutex mu;
  std::condition_variable cv;
  // Notify under the lock: the waiter destroys cv right after the predicate
  // holds, so an unlocked notify races with both the re-block and teardown.
  auto finish_one = [&] {
    if (remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
  };
  for (int i = 0; i < 5; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      pool.Submit([&] {
        count.fetch_add(1);
        finish_one();
      });
      finish_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining.load() == 0; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, DrainsPendingTasksOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.lineitem_rows = 6000;
    cat_ = Tpch::Generate(cfg);
  }

  // Executes `plan` serially and with a 4-worker pool; both must succeed and
  // agree on every reachable intermediate and on the metrics order.
  void ExpectThreadedMatchesSerial(const QueryPlan& plan) {
    Evaluator serial(ExecOptions{true, 1});
    Evaluator threaded(ExecOptions{true, 4});
    EvalResult a, b;
    ASSERT_TRUE(serial.Execute(plan, &a).ok());
    ASSERT_TRUE(threaded.Execute(plan, &b).ok());
    EXPECT_EQ(DiffIntermediates(a.result, b.result), "");
    ASSERT_EQ(a.intermediates.size(), b.intermediates.size());
    for (const auto& [id, inter] : a.intermediates) {
      ASSERT_TRUE(b.intermediates.count(id));
      EXPECT_EQ(DiffIntermediates(inter, b.intermediates.at(id)), "")
          << "node " << id;
    }
    // Metrics come back in topological order regardless of which worker ran
    // which node (the simulator depends on this ordering).
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (size_t i = 0; i < a.metrics.size(); ++i) {
      EXPECT_EQ(a.metrics[i].node_id, b.metrics[i].node_id) << i;
      EXPECT_EQ(a.metrics[i].tuples_out, b.metrics[i].tuples_out) << i;
      // Hash-build cost lands on the topologically-first join regardless of
      // which worker raced to build (both evaluators are cold here).
      EXPECT_EQ(a.metrics[i].hash_build_rows, b.metrics[i].hash_build_rows)
          << i;
    }
  }

  std::shared_ptr<Catalog> cat_;
};

TEST_F(ParallelExecTest, HeuristicPlansReproduceSerialResults) {
  for (const auto& name : Tpch::QueryNames()) {
    auto serial_plan = Tpch::Query(*cat_, name);
    ASSERT_TRUE(serial_plan.ok()) << name;
    for (int dop : {2, 8}) {
      HeuristicParallelizer hp(HeuristicConfig{.dop = dop});
      auto plan = hp.Parallelize(serial_plan.ValueOrDie());
      ASSERT_TRUE(plan.ok()) << name;
      ExpectThreadedMatchesSerial(plan.ValueOrDie()) ;
    }
  }
}

TEST_F(ParallelExecTest, MutatedExchangePlanReproducesSerialResult) {
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  QueryPlan plan = q6.MoveValueOrDie();
  // Split the leaf select 4 ways: the clones are independent subtrees feeding
  // one exchange union, exactly the concurrency the pool exploits.
  Mutator mutator;
  int sel = -1;
  for (int i = 0; i < plan.num_nodes(); ++i) {
    if (plan.node(i).kind == OpKind::kSelect) { sel = i; break; }
  }
  ASSERT_GE(sel, 0);
  ASSERT_TRUE(mutator.SplitNode(&plan, sel, 4).ok());
  ASSERT_TRUE(plan.Validate().ok());
  ExpectThreadedMatchesSerial(plan);
}

TEST_F(ParallelExecTest, ThreadedExecutionIsDeterministicAcrossRuns) {
  auto q14 = Tpch::Query(*cat_, "Q14");
  ASSERT_TRUE(q14.ok());
  HeuristicParallelizer hp(HeuristicConfig{.dop = 8});
  auto plan = hp.Parallelize(q14.ValueOrDie());
  ASSERT_TRUE(plan.ok());
  Evaluator threaded(ExecOptions{true, 4});
  EvalResult first;
  ASSERT_TRUE(threaded.Execute(plan.ValueOrDie(), &first).ok());
  for (int rep = 0; rep < 5; ++rep) {
    EvalResult again;
    ASSERT_TRUE(threaded.Execute(plan.ValueOrDie(), &again).ok());
    EXPECT_EQ(DiffIntermediates(first.result, again.result), "") << rep;
  }
}

TEST_F(ParallelExecTest, ErrorsPropagateFromWorkerThreads) {
  auto ints = Column::MakeInt64("ints", {1, 2, 3, 4});
  PlanBuilder b("bad");
  int sel = b.Select(ints.get(), Predicate::Like("x"));  // LIKE on non-string
  QueryPlan plan = b.Result(sel);
  Evaluator threaded(ExecOptions{true, 4});
  EvalResult er;
  Status st = threaded.Execute(plan, &er);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The evaluator must remain usable after a failed parallel run.
  PlanBuilder b2("good");
  int sel2 = b2.Select(ints.get(), Predicate::RangeI64(2, 3));
  QueryPlan plan2 = b2.Result(sel2);
  EvalResult er2;
  ASSERT_TRUE(threaded.Execute(plan2, &er2).ok());
  EXPECT_EQ(er2.result.rowids, (std::vector<oid>{1, 2}));
}

TEST_F(ParallelExecTest, SharedHashCacheBuildsOnce) {
  auto q9 = Tpch::Query(*cat_, "Q9");
  ASSERT_TRUE(q9.ok());
  HeuristicParallelizer hp(HeuristicConfig{.dop = 8});
  auto plan = hp.Parallelize(q9.ValueOrDie());
  ASSERT_TRUE(plan.ok());
  Evaluator threaded(ExecOptions{true, 4});
  EvalResult er1, er2;
  ASSERT_TRUE(threaded.Execute(plan.ValueOrDie(), &er1).ok());
  ASSERT_TRUE(threaded.Execute(plan.ValueOrDie(), &er2).ok());
  uint64_t builds1 = 0, builds2 = 0;
  for (const auto& m : er1.metrics) builds1 += m.hash_build_rows;
  for (const auto& m : er2.metrics) builds2 += m.hash_build_rows;
  EXPECT_GT(builds1, 0u);
  EXPECT_EQ(builds2, 0u);  // second run: all inners cached
}

// ---- morsel-driven intra-operator execution --------------------------------

TEST_F(ParallelExecTest, MorselExecutionIsDeterministicAcrossWorkerCounts) {
  // An *unmutated* serial plan: without morsels it runs on one core; with
  // them, its dense select / fetch-join split across the scheduler. Results
  // must be bit-identical to whole-column execution at every worker count.
  for (const auto& name : Tpch::QueryNames()) {
    auto plan = Tpch::Query(*cat_, name);
    ASSERT_TRUE(plan.ok()) << name;
    Evaluator whole;  // kernels, whole-column
    EvalResult base;
    ASSERT_TRUE(whole.Execute(plan.ValueOrDie(), &base).ok()) << name;
    for (int workers : {1, 2, 4, 8}) {
      ExecOptions o;
      o.use_morsels = true;
      o.morsel_rows = 512;  // lineitem_rows = 6000: every dense scan splits
      o.morsel_workers = workers;
      Evaluator morsel(o);
      EvalResult got;
      ASSERT_TRUE(morsel.Execute(plan.ValueOrDie(), &got).ok())
          << name << " workers=" << workers;
      EXPECT_EQ(DiffIntermediates(base.result, got.result), "")
          << name << " workers=" << workers;
      ASSERT_EQ(base.metrics.size(), got.metrics.size());
      for (size_t i = 0; i < base.metrics.size(); ++i) {
        EXPECT_EQ(base.metrics[i].tuples_out, got.metrics[i].tuples_out)
            << name << " workers=" << workers << " op " << i;
      }
    }
  }
}

TEST_F(ParallelExecTest, MorselsComposeWithNodePoolExecution) {
  // Both parallelism axes at once: exchange clones on the node pool, each
  // clone's scan split into morsels on the shared morsel scheduler.
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  HeuristicParallelizer hp(HeuristicConfig{.dop = 4});
  auto plan = hp.Parallelize(q6.ValueOrDie());
  ASSERT_TRUE(plan.ok());

  Evaluator serial(ExecOptions{true, 1});
  EvalResult base;
  ASSERT_TRUE(serial.Execute(plan.ValueOrDie(), &base).ok());

  ExecOptions o;
  o.num_threads = 4;
  o.use_morsels = true;
  o.morsel_rows = 256;
  o.morsel_workers = 4;
  Evaluator both(o);
  for (int rep = 0; rep < 3; ++rep) {
    EvalResult got;
    ASSERT_TRUE(both.Execute(plan.ValueOrDie(), &got).ok()) << rep;
    EXPECT_EQ(DiffIntermediates(base.result, got.result), "") << rep;
  }
}

TEST_F(ParallelExecTest, ConcurrentQueriesMultiplexOneScheduler) {
  // Two evaluators, two plans, one injected scheduler: the heavy-traffic
  // configuration. Every query's result must stay exact.
  auto sched = std::make_shared<MorselScheduler>(4);
  auto q6 = Tpch::Q6(*cat_);
  auto q14 = Tpch::Query(*cat_, "Q14");
  ASSERT_TRUE(q6.ok() && q14.ok());

  Evaluator whole;
  EvalResult base6, base14;
  ASSERT_TRUE(whole.Execute(q6.ValueOrDie(), &base6).ok());
  ASSERT_TRUE(whole.Execute(q14.ValueOrDie(), &base14).ok());

  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 512;
  Evaluator e6(o), e14(o);
  e6.set_morsel_scheduler(sched);
  e14.set_morsel_scheduler(sched);

  std::thread t6([&] {
    for (int rep = 0; rep < 4; ++rep) {
      EvalResult er;
      ASSERT_TRUE(e6.Execute(q6.ValueOrDie(), &er).ok());
      EXPECT_EQ(DiffIntermediates(base6.result, er.result), "");
    }
  });
  std::thread t14([&] {
    for (int rep = 0; rep < 4; ++rep) {
      EvalResult er;
      ASSERT_TRUE(e14.Execute(q14.ValueOrDie(), &er).ok());
      EXPECT_EQ(DiffIntermediates(base14.result, er.result), "");
    }
  });
  t6.join();
  t14.join();
  EXPECT_GT(sched->total_tasks(), 0u);
}

TEST_F(ParallelExecTest, ConcurrentFirstBuildsOfDifferentInnersDontSerialize) {
  // The per-column build latch: one plan with two joins over *different*
  // inner columns, executed on the node pool — the two first builds run
  // concurrently (previously serialized under the single cache mutex). Each
  // inner is built exactly once and the cache stays warm afterwards.
  auto fk1 = Column::MakeInt64("fk1", std::vector<int64_t>(4000, 1));
  auto fk2 = Column::MakeInt64("fk2", std::vector<int64_t>(4000, 2));
  std::vector<int64_t> pk1v(512), pk2v(1024);
  for (size_t i = 0; i < pk1v.size(); ++i) pk1v[i] = static_cast<int64_t>(i);
  for (size_t i = 0; i < pk2v.size(); ++i) pk2v[i] = static_cast<int64_t>(i);
  auto pk1 = Column::MakeInt64("pk1", std::move(pk1v));
  auto pk2 = Column::MakeInt64("pk2", std::move(pk2v));

  PlanBuilder b("two_inners");
  int j1 = b.JoinLeaf(fk1.get(), pk1.get());
  int j2 = b.JoinLeaf(fk2.get(), pk2.get());
  int c1 = b.AggScalar(AggFn::kCount, j1);
  int c2 = b.AggScalar(AggFn::kCount, j2);
  int sum = b.Map2(MapFn::kAdd, c1, c2);
  QueryPlan plan = b.Result(sum);

  Evaluator threaded(ExecOptions{true, 4});
  EvalResult er;
  ASSERT_TRUE(threaded.Execute(plan, &er).ok());
  EXPECT_DOUBLE_EQ(er.result.scalar, 8000.0);
  uint64_t builds = 0;
  for (const auto& m : er.metrics) builds += m.hash_build_rows;
  EXPECT_EQ(builds, 512u + 1024u);  // both inners built, each exactly once
  EvalResult warm;
  ASSERT_TRUE(threaded.Execute(plan, &warm).ok());
  uint64_t warm_builds = 0;
  for (const auto& m : warm.metrics) warm_builds += m.hash_build_rows;
  EXPECT_EQ(warm_builds, 0u);
}

TEST_F(ParallelExecTest, ParallelAggProbeCoversTpchAcrossWorkerCounts) {
  // The exec/agg tier on the full query suite: group-by ingest, grouped
  // aggregation, and hash-join probe run morsel-parallel at every worker
  // count, and every query's result must stay exact. Across the suite at a
  // 256-row morsel size, at least one group-by and one join must actually
  // have split (the whole point of the tier).
  bool saw_groupby = false, saw_join = false;
  for (const auto& name : Tpch::QueryNames()) {
    auto plan = Tpch::Query(*cat_, name);
    ASSERT_TRUE(plan.ok()) << name;
    Evaluator whole;  // kernels, whole-column
    EvalResult base;
    ASSERT_TRUE(whole.Execute(plan.ValueOrDie(), &base).ok()) << name;
    for (int workers : {1, 2, 4, 8}) {
      ExecOptions o;
      o.use_morsels = true;
      o.morsel_rows = 256;
      o.morsel_workers = workers;
      o.use_parallel_agg = true;
      Evaluator par(o);
      EvalResult got;
      ASSERT_TRUE(par.Execute(plan.ValueOrDie(), &got).ok())
          << name << " workers=" << workers;
      EXPECT_EQ(DiffIntermediates(base.result, got.result), "")
          << name << " workers=" << workers;
      ASSERT_EQ(base.metrics.size(), got.metrics.size());
      for (size_t i = 0; i < base.metrics.size(); ++i) {
        EXPECT_EQ(base.metrics[i].tuples_out, got.metrics[i].tuples_out)
            << name << " workers=" << workers << " op " << i;
        if (got.metrics[i].morsels.empty()) continue;
        if (got.metrics[i].kind == OpKind::kGroupBy) saw_groupby = true;
        if (got.metrics[i].kind == OpKind::kJoin) saw_join = true;
      }
    }
  }
  EXPECT_TRUE(saw_groupby) << "no TPC-H group-by ingest ran morsel-parallel";
  EXPECT_TRUE(saw_join) << "no TPC-H join probe ran morsel-parallel";
}

TEST_F(ParallelExecTest, ParallelAggComposesWithNodePoolExecution) {
  // Exchange clones on the node pool while each clone's probe/ingest splits
  // on the shared morsel scheduler — Q9 (join + group-by heavy) and Q14
  // (join heavy) under both axes at once.
  for (const char* name : {"Q9", "Q14"}) {
    auto q = Tpch::Query(*cat_, name);
    ASSERT_TRUE(q.ok()) << name;
    HeuristicParallelizer hp(HeuristicConfig{.dop = 4});
    auto plan = hp.Parallelize(q.ValueOrDie());
    ASSERT_TRUE(plan.ok()) << name;

    Evaluator serial(ExecOptions{true, 1});
    EvalResult base;
    ASSERT_TRUE(serial.Execute(plan.ValueOrDie(), &base).ok()) << name;

    ExecOptions o;
    o.num_threads = 4;
    o.use_morsels = true;
    o.morsel_rows = 256;
    o.morsel_workers = 4;
    o.use_parallel_agg = true;
    Evaluator both(o);
    for (int rep = 0; rep < 3; ++rep) {
      EvalResult got;
      ASSERT_TRUE(both.Execute(plan.ValueOrDie(), &got).ok())
          << name << " rep " << rep;
      EXPECT_EQ(DiffIntermediates(base.result, got.result), "")
          << name << " rep " << rep;
    }
  }
}

TEST_F(ParallelExecTest, ParallelSortCoversOrderedTpchQueries) {
  // The exec/sort tier on the ordered queries (Q4 count-ordered, Q6/Q9/Q22
  // revenue-per-nation ordered). Their sorts order small grouped-aggregate
  // vectors (priorities, nations), so a tiny morsel size is what makes them
  // split; every query's result must stay exact at every worker count, and
  // at least one sort must actually have morselized.
  bool saw_sort = false;
  for (const char* name : {"Q4", "Q6", "Q9", "Q22"}) {
    auto plan = Tpch::Query(*cat_, name);
    ASSERT_TRUE(plan.ok()) << name;
    Evaluator whole;  // kernels, whole-column
    EvalResult base;
    ASSERT_TRUE(whole.Execute(plan.ValueOrDie(), &base).ok()) << name;
    for (int workers : {1, 2, 4, 8}) {
      ExecOptions o;
      o.use_morsels = true;
      o.morsel_rows = 4;  // splits even the 5-priority / 25-nation sorts
      o.morsel_workers = workers;
      o.use_parallel_sort = true;
      Evaluator par(o);
      EvalResult got;
      ASSERT_TRUE(par.Execute(plan.ValueOrDie(), &got).ok())
          << name << " workers=" << workers;
      EXPECT_EQ(DiffIntermediates(base.result, got.result), "")
          << name << " workers=" << workers;
      ASSERT_EQ(base.metrics.size(), got.metrics.size());
      for (size_t i = 0; i < base.metrics.size(); ++i) {
        EXPECT_EQ(base.metrics[i].tuples_out, got.metrics[i].tuples_out)
            << name << " workers=" << workers << " op " << i;
        if ((got.metrics[i].kind == OpKind::kSort ||
             got.metrics[i].kind == OpKind::kTopN) &&
            !got.metrics[i].morsels.empty()) {
          saw_sort = true;
        }
      }
    }
  }
  // APQ_FORCE_MORSELS overrides the 4-row morsel size; the tiny grouped
  // sorts only split when the override is absent (or just as small).
  ExecOptions probe_o;
  probe_o.use_morsels = true;
  probe_o.morsel_rows = 4;
  if (Evaluator(probe_o).EffectiveMorselRows() <= 8) {
    EXPECT_TRUE(saw_sort) << "no TPC-H sort ran morsel-parallel";
  }
}

TEST_F(ParallelExecTest, WallClockIsReported) {
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  Evaluator eval;
  EvalResult er;
  ASSERT_TRUE(eval.Execute(q6.ValueOrDie(), &er).ok());
  EXPECT_GT(er.wall_ns, 0.0);
}

}  // namespace
}  // namespace apq
