// Tests for profiling: sim-task construction, run profiles, the
// most-expensive-operator feedback, utilization, and the tomograph.
#include <gtest/gtest.h>

#include "exec/compare.h"
#include "profile/profiler.h"
#include "plan/builder.h"

namespace apq {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    col_ = Column::MakeInt64("c", std::vector<int64_t>(10'000, 5));
    fcol_ = Column::MakeFloat64("f", std::vector<double>(10'000, 1.5));
    PlanBuilder b("p");
    int sel = b.Select(col_.get(), Predicate::EqI64(5));
    int fetch = b.FetchJoin(fcol_.get(), sel);
    int sum = b.AggScalar(AggFn::kSum, fetch);
    plan_ = b.Result(sum);
    APQ_CHECK_OK(eval_.Execute(plan_, &er_));
  }

  ColumnPtr col_, fcol_;
  QueryPlan plan_;
  Evaluator eval_;
  EvalResult er_;
  CostModel cm_;
};

TEST_F(ProfilerTest, BuildSimTasksWiresDependencies) {
  auto tasks = BuildSimTasks(plan_, er_.metrics, cm_);
  ASSERT_EQ(tasks.size(), er_.metrics.size());
  // Tasks follow metric order (topological); each dep index points at the
  // producing task.
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].node_id, er_.metrics[i].node_id);
    for (int d : tasks[i].deps) {
      ASSERT_GE(d, 0);
      ASSERT_LT(d, static_cast<int>(i) + 1);
    }
    if (er_.metrics[i].kind != OpKind::kResult) {
      EXPECT_GT(tasks[i].work_ns, 0);
    }
    EXPECT_GE(tasks[i].mem_intensity, 0);
    EXPECT_LE(tasks[i].mem_intensity, 1);
  }
  // The linear chain select -> fetch -> sum -> result has 1 dep each after
  // the leaf.
  EXPECT_TRUE(tasks[0].deps.empty());
  EXPECT_EQ(tasks[1].deps.size(), 1u);
}

TEST_F(ProfilerTest, InstanceAndArrivalPropagate) {
  auto tasks = BuildSimTasks(plan_, er_.metrics, cm_, /*instance=*/3,
                             /*arrival_ns=*/500.0);
  for (const auto& t : tasks) {
    EXPECT_EQ(t.instance, 3);
    EXPECT_DOUBLE_EQ(t.arrival_ns, 500.0);
  }
}

TEST_F(ProfilerTest, RunProfileFindsMostExpensive) {
  auto tasks = BuildSimTasks(plan_, er_.metrics, cm_);
  Simulator sim(SimConfig::Cores(4, 4));
  auto outcome = sim.Run(tasks);
  RunProfile rp = MakeRunProfile(plan_, er_.metrics, cm_, outcome.timings,
                                 outcome.makespan_ns, outcome.utilization);
  ASSERT_EQ(rp.ops.size(), er_.metrics.size());
  int hot = rp.MostExpensiveIndex();
  ASSERT_GE(hot, 0);
  EXPECT_NE(rp.ops[hot].kind, OpKind::kResult);
  for (const auto& op : rp.ops) {
    if (op.kind == OpKind::kResult) continue;
    EXPECT_LE(op.duration_ns(), rp.ops[hot].duration_ns() + 1e-9);
  }
  EXPECT_EQ(rp.MostExpensiveNode(), rp.ops[hot].node_id);
  EXPECT_GT(rp.TotalBusyNs(), 0);
}

TEST_F(ProfilerTest, EmptyProfileHasNoMostExpensive) {
  RunProfile rp;
  EXPECT_EQ(rp.MostExpensiveIndex(), -1);
  EXPECT_EQ(rp.MostExpensiveNode(), -1);
}

TEST_F(ProfilerTest, TomographRendersAllBusyCores) {
  auto tasks = BuildSimTasks(plan_, er_.metrics, cm_);
  Simulator sim(SimConfig::Cores(4, 4));
  auto outcome = sim.Run(tasks);
  RunProfile rp = MakeRunProfile(plan_, er_.metrics, cm_, outcome.timings,
                                 outcome.makespan_ns, outcome.utilization);
  std::string tomo = RenderTomograph(rp, 40);
  EXPECT_NE(tomo.find("core 0"), std::string::npos);
  EXPECT_NE(tomo.find('S'), std::string::npos);  // select painted
  EXPECT_NE(tomo.find('F'), std::string::npos);  // fetchjoin painted
  EXPECT_NE(tomo.find("utilization"), std::string::npos);
}

TEST_F(ProfilerTest, OpReportListsOperatorsWithSkewColumn) {
  auto tasks = BuildSimTasks(plan_, er_.metrics, cm_);
  Simulator sim(SimConfig::Cores(4, 4));
  auto outcome = sim.Run(tasks);
  RunProfile rp = MakeRunProfile(plan_, er_.metrics, cm_, outcome.timings,
                                 outcome.makespan_ns, outcome.utilization);
  std::string report = RenderOpReport(rp);
  EXPECT_NE(report.find("skew"), std::string::npos);
  EXPECT_NE(report.find("morsels"), std::string::npos);
  EXPECT_NE(report.find("select"), std::string::npos);
  EXPECT_NE(report.find("fetchjoin"), std::string::npos);
  EXPECT_NE(report.find("max morsel skew"), std::string::npos);
}

TEST_F(ProfilerTest, OpReportSurfacesMorselSkewForMorselizedRuns) {
  // A morselized execution must show a per-operator morsel count and a
  // numeric skew (>= 1) in the printed report — the satellite requirement:
  // skew visible without reading AdaptiveRun programmatically.
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 512;
  o.morsel_workers = 2;
  Evaluator eval(o);
  EvalResult er;
  APQ_CHECK_OK(eval.Execute(plan_, &er));
  auto tasks = BuildSimTasks(plan_, er.metrics, cm_);
  Simulator sim(SimConfig::Cores(4, 4));
  auto outcome = sim.Run(tasks);
  RunProfile rp = MakeRunProfile(plan_, er.metrics, cm_, outcome.timings,
                                 outcome.makespan_ns, outcome.utilization);
  ASSERT_GT(rp.MaxMorselSkew(), 0.0);  // 10'000 rows / 512 per morsel: split
  std::string report = RenderOpReport(rp);
  // At least one operator row reports its morsel count (> 0); whole-column
  // rows show "-" in the skew column.
  bool saw_morselized = false;
  for (const auto& op : rp.ops) {
    if (op.num_morsels > 0) {
      saw_morselized = true;
      EXPECT_GE(op.morsel_skew, 1.0);
    }
  }
  EXPECT_TRUE(saw_morselized);
  EXPECT_EQ(report.find("max morsel skew 0.00"), std::string::npos);
}

TEST_F(ProfilerTest, OpReportCoversMorselizedSorts) {
  // The sort tier's run/merge tasks must surface exactly like scan/agg
  // morsels: a morsel count and a skew >= 1 on the sort row of the report.
  PlanBuilder b("sorted");
  int srt = b.SortLeaf(fcol_.get());
  QueryPlan plan = b.Result(srt);
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 512;
  o.morsel_workers = 2;
  Evaluator eval(o);
  EvalResult er;
  APQ_CHECK_OK(eval.Execute(plan, &er));
  auto tasks = BuildSimTasks(plan, er.metrics, cm_);
  Simulator sim(SimConfig::Cores(4, 4));
  auto outcome = sim.Run(tasks);
  RunProfile rp = MakeRunProfile(plan, er.metrics, cm_, outcome.timings,
                                 outcome.makespan_ns, outcome.utilization);
  bool saw_sort = false;
  for (const auto& op : rp.ops) {
    if (op.kind != OpKind::kSort) continue;
    saw_sort = true;
    EXPECT_GT(op.num_morsels, 0u);  // 10'000 rows / 512 per morsel: split
    EXPECT_GE(op.morsel_skew, 1.0);
  }
  EXPECT_TRUE(saw_sort);
  std::string report = RenderOpReport(rp);
  EXPECT_NE(report.find("sort"), std::string::npos);
}

TEST_F(ProfilerTest, TupleSkewIsDeterministicAndDomainGated) {
  // morsel_tuple_skew = max/min per-row weight density over the covered
  // domains: 3.0 when two of ten equal-size morsels produce full output,
  // independent of wall times; absent (0) without domain info.
  OpProfile op;
  for (int i = 0; i < 10; ++i) {
    MorselMetrics ms;
    ms.tuples_in = 1000;
    ms.tuples_out = (i == 4 || i == 5) ? 1000 : 0;
    ms.wall_ns = 100 + 37 * i;  // arbitrary: must not affect the signal
    ms.domain_begin = static_cast<uint64_t>(i) * 1000;
    ms.domain_end = ms.domain_begin + 1000;
    op.morsels.push_back(ms);
  }
  op.ComputeSkewFromMorsels();
  EXPECT_EQ(op.num_morsels, 10u);
  EXPECT_DOUBLE_EQ(op.morsel_tuple_skew, 3.0);

  // Unknown domains withhold the signal entirely.
  for (auto& ms : op.morsels) ms.domain_begin = ms.domain_end = 0;
  op.ComputeSkewFromMorsels();
  EXPECT_EQ(op.morsel_tuple_skew, 0.0);
  EXPECT_GT(op.morsel_skew, 0.0);  // wall skew still reported

  // Overlapping (non-monotone) domains are rejected too.
  for (size_t i = 0; i < op.morsels.size(); ++i) {
    op.morsels[i].domain_begin = 0;
    op.morsels[i].domain_end = 1000;
  }
  op.ComputeSkewFromMorsels();
  EXPECT_EQ(op.morsel_tuple_skew, 0.0);
}

TEST_F(ProfilerTest, OpReportShowsTupleSkewColumn) {
  ExecOptions o;
  o.use_morsels = true;
  o.morsel_rows = 512;
  o.morsel_workers = 2;
  Evaluator eval(o);
  EvalResult er;
  APQ_CHECK_OK(eval.Execute(plan_, &er));
  auto tasks = BuildSimTasks(plan_, er.metrics, cm_);
  Simulator sim(SimConfig::Cores(4, 4));
  auto outcome = sim.Run(tasks);
  RunProfile rp = MakeRunProfile(plan_, er.metrics, cm_, outcome.timings,
                                 outcome.makespan_ns, outcome.utilization);
  // The dense select's morsels carry domains, so the deterministic signal
  // exists and is >= 1 at run level.
  EXPECT_GE(rp.MaxMorselTupleSkew(), 1.0);
  std::string report = RenderOpReport(rp);
  EXPECT_NE(report.find("tskew"), std::string::npos);
  EXPECT_NE(report.find("tuple skew"), std::string::npos);
}

TEST_F(ProfilerTest, CostModelMonotoneInWork) {
  // More tuples -> more work, for each operator kind we use.
  OpMetrics small, big;
  small.kind = big.kind = OpKind::kSelect;
  small.tuples_in = 1'000;
  big.tuples_in = 100'000;
  EXPECT_LT(cm_.Work(small), cm_.Work(big));

  small.kind = big.kind = OpKind::kExchangeUnion;
  small.bytes_in = 1'000;
  big.bytes_in = 1'000'000;
  EXPECT_LT(cm_.Work(small), cm_.Work(big));
}

TEST_F(ProfilerTest, CostModelCacheHierarchy) {
  CostParams p;
  // Random access cost rises monotonically with working-set size.
  EXPECT_LE(p.RandomAccessNs(1024), p.RandomAccessNs(p.l2_bytes * 2));
  EXPECT_LE(p.RandomAccessNs(p.l2_bytes * 2), p.RandomAccessNs(p.l3_bytes * 2));
  EXPECT_LE(p.RandomAccessNs(p.l3_bytes * 2), p.RandomAccessNs(p.l3_bytes * 100));
  EXPECT_LE(p.RandomAccessNs(p.l3_bytes * 100), p.rand_mem_ns + 1e-9);
  // The hardware-scale variant has the Table 1 cache sizes.
  CostParams hw = CostParams::HardwareScale();
  EXPECT_DOUBLE_EQ(hw.l3_bytes, 20.0 * 1024 * 1024);
}

TEST_F(ProfilerTest, MemIntensityDependsOnWorkingSet) {
  OpMetrics m;
  m.kind = OpKind::kFetchJoin;
  m.random_working_set = 1024;  // cache resident
  double small_ws = cm_.MemIntensity(m);
  m.random_working_set = 1 << 30;  // memory resident
  double big_ws = cm_.MemIntensity(m);
  EXPECT_LT(small_ws, big_ws);
}

}  // namespace
}  // namespace apq
