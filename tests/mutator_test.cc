// Tests for the basic / medium / advanced plan mutations: structure of the
// mutated plans and, crucially, result preservation (every mutation must
// leave the query answer unchanged).
#include <gtest/gtest.h>

#include "adaptive/mutator.h"
#include "exec/compare.h"
#include "exec/evaluator.h"
#include "plan/builder.h"
#include "util/rng.h"

namespace apq {
namespace {

class MutatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(3);
    std::vector<int64_t> vals(20'000), fk(20'000);
    for (auto& v : vals) v = rng.UniformRange(0, 999);
    for (auto& v : fk) v = rng.UniformRange(0, 99);
    std::vector<double> weights(20'000);
    for (auto& w : weights) w = rng.NextDouble();
    std::vector<int64_t> pk(100);
    for (size_t i = 0; i < pk.size(); ++i) pk[i] = static_cast<int64_t>(i);
    vals_ = Column::MakeInt64("vals", std::move(vals));
    fk_ = Column::MakeInt64("fk", std::move(fk));
    w_ = Column::MakeFloat64("w", std::move(weights));
    pk_ = Column::MakeInt64("pk", std::move(pk));
    cfg_.min_partition_rows = 16;
  }

  Intermediate Eval(const QueryPlan& plan) {
    EvalResult er;
    Status st = eval_.Execute(plan, &er);
    EXPECT_TRUE(st.ok()) << st.ToString() << "\n" << plan.ToString();
    return er.result;
  }

  /// Profiles a plan with uniform durations so MutateMostExpensive can pick a
  /// victim; `boost` makes one node the most expensive.
  RunProfile FakeProfile(const QueryPlan& plan, int boost_node = -1) {
    RunProfile rp;
    auto topo = plan.TopologicalOrder();
    APQ_CHECK(topo.ok());
    double t = 0;
    for (int id : topo.ValueOrDie()) {
      OpProfile op;
      op.node_id = id;
      op.kind = plan.node(id).kind;
      op.start_ns = t;
      op.end_ns = t + (id == boost_node ? 1e6 : 1e3);
      op.core = 0;
      t = op.end_ns;
      rp.ops.push_back(op);
    }
    rp.makespan_ns = t;
    return rp;
  }

  QueryPlan SelectPlan() {
    PlanBuilder b("sel");
    int sel = b.Select(vals_.get(), Predicate::RangeI64(0, 99));
    int f = b.FetchJoin(w_.get(), sel);
    int sum = b.AggScalar(AggFn::kSum, f);
    return b.Result(sum);
  }

  QueryPlan JoinPlan() {
    PlanBuilder b("join");
    int sel = b.Select(vals_.get(), Predicate::RangeI64(0, 499));
    int fpk = b.FetchJoin(fk_.get(), sel);
    int jn = b.Join(fpk, pk_.get());
    int fw = b.FetchJoin(w_.get(), jn, FetchSide::kLeft);
    int sum = b.AggScalar(AggFn::kSum, fw);
    return b.Result(sum);
  }

  QueryPlan GroupByPlan() {
    PlanBuilder b("gb");
    int sel = b.Select(vals_.get(), Predicate::RangeI64(0, 499));
    int keys = b.FetchJoin(fk_.get(), sel);
    int vals = b.FetchJoin(w_.get(), sel);
    int gb = b.GroupBy(keys);
    int ag = b.AggGrouped(AggFn::kSum, gb, vals);
    return b.Result(ag);
  }

  ColumnPtr vals_, fk_, w_, pk_;
  Evaluator eval_;
  MutatorConfig cfg_;
};

TEST_F(MutatorTest, BasicSplitSelectPreservesResult) {
  QueryPlan plan = SelectPlan();
  Intermediate serial = Eval(plan);
  Mutator m(cfg_);
  int sel_id = 0;
  ASSERT_EQ(plan.node(sel_id).kind, OpKind::kSelect);
  ASSERT_TRUE(m.SplitNode(&plan, sel_id, 2).ok());
  ASSERT_TRUE(plan.Validate().ok());
  PlanStats s = plan.Stats();
  EXPECT_EQ(s.num_selects, 2);
  EXPECT_EQ(s.num_unions, 1);
  EXPECT_TRUE(IntermediatesEqual(serial, Eval(plan), 1e-6));
}

TEST_F(MutatorTest, BasicSplitSlicesAreAlignedAndCoverTheColumn) {
  QueryPlan plan = SelectPlan();
  Mutator m(cfg_);
  ASSERT_TRUE(m.SplitNode(&plan, 0, 4).ok());
  // Collect the slices of the select clones.
  std::vector<RowRange> slices;
  for (const auto& n : plan.nodes()) {
    if (n.kind == OpKind::kSelect && n.has_slice) slices.push_back(n.slice);
  }
  ASSERT_EQ(slices.size(), 4u);
  uint64_t covered = 0;
  for (size_t i = 0; i < slices.size(); ++i) {
    covered += slices[i].size();
    if (i > 0) {
      EXPECT_EQ(slices[i].begin, slices[i - 1].end);  // aligned
    }
  }
  EXPECT_EQ(covered, vals_->size());
}

TEST_F(MutatorTest, ResplitSplicesIntoExistingUnion) {
  QueryPlan plan = SelectPlan();
  Mutator m(cfg_);
  ASSERT_TRUE(m.SplitNode(&plan, 0, 2).ok());
  // Find one select clone and split it again.
  int clone = -1;
  for (const auto& n : plan.nodes()) {
    if (n.kind == OpKind::kSelect && n.has_slice) clone = n.id;
  }
  ASSERT_GE(clone, 0);
  ASSERT_TRUE(m.SplitNode(&plan, clone, 2).ok());
  PlanStats s = plan.Stats();
  EXPECT_EQ(s.num_selects, 3);      // 2 live + 1 new pair replacing one
  EXPECT_EQ(s.num_unions, 1);       // spliced, not nested
  EXPECT_EQ(s.max_union_fanin, 3);
  Intermediate serial = Eval(SelectPlan());
  EXPECT_TRUE(IntermediatesEqual(serial, Eval(plan), 1e-6));
}

TEST_F(MutatorTest, SplitRefusesTinyPartitions) {
  QueryPlan plan = SelectPlan();
  MutatorConfig cfg;
  cfg.min_partition_rows = 50'000;  // bigger than the table
  Mutator m(cfg);
  Status st = m.SplitNode(&plan, 0, 2);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST_F(MutatorTest, SplitRefusesNonParallelizableOps) {
  QueryPlan plan = SelectPlan();
  Mutator m(cfg_);
  // Node 2 is the aggregate.
  ASSERT_EQ(plan.node(2).kind, OpKind::kAggregate);
  EXPECT_EQ(m.SplitNode(&plan, 2, 2).code(), StatusCode::kUnsupported);
}

TEST_F(MutatorTest, BasicSplitJoinPreservesResult) {
  QueryPlan plan = JoinPlan();
  Intermediate serial = Eval(plan);
  Mutator m(cfg_);
  int join_id = -1;
  for (const auto& n : plan.nodes()) {
    if (n.kind == OpKind::kJoin) join_id = n.id;
  }
  ASSERT_TRUE(m.SplitNode(&plan, join_id, 2).ok());
  ASSERT_TRUE(plan.Validate().ok());
  EXPECT_EQ(plan.Stats().num_joins, 2);
  EXPECT_TRUE(IntermediatesEqual(serial, Eval(plan), 1e-6));
}

TEST_F(MutatorTest, BasicSplitFetchJoinPreservesResultAndOrder) {
  QueryPlan plan = SelectPlan();
  Intermediate serial = Eval(plan);
  Mutator m(cfg_);
  int f_id = 1;
  ASSERT_EQ(plan.node(f_id).kind, OpKind::kFetchJoin);
  ASSERT_TRUE(m.SplitNode(&plan, f_id, 3).ok());
  EXPECT_TRUE(IntermediatesEqual(serial, Eval(plan), 1e-6));
}

TEST_F(MutatorTest, MediumMutationRemovesUnionAndPreservesResult) {
  QueryPlan plan = SelectPlan();
  Intermediate serial = Eval(plan);
  Mutator m(cfg_);
  ASSERT_TRUE(m.SplitNode(&plan, 0, 3).ok());
  // Find the union and propagate it through the fetchjoin consumer.
  int union_id = -1;
  for (const auto& n : plan.nodes()) {
    if (n.kind == OpKind::kExchangeUnion) union_id = n.id;
  }
  ASSERT_GE(union_id, 0);
  ASSERT_TRUE(m.PropagateUnion(&plan, union_id).ok());
  ASSERT_TRUE(plan.Validate().ok());
  PlanStats s = plan.Stats();
  EXPECT_EQ(s.num_fetchjoins, 3);  // cloned per union input
  EXPECT_TRUE(IntermediatesEqual(serial, Eval(plan), 1e-6));
}

TEST_F(MutatorTest, MediumMutationSuppressedAboveFaninThreshold) {
  QueryPlan plan = SelectPlan();
  MutatorConfig cfg = cfg_;
  cfg.union_fanin_threshold = 3;
  Mutator m(cfg);
  ASSERT_TRUE(m.SplitNode(&plan, 0, 5).ok());
  int union_id = -1;
  for (const auto& n : plan.nodes()) {
    if (n.kind == OpKind::kExchangeUnion) union_id = n.id;
  }
  Status st = m.PropagateUnion(&plan, union_id);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
  EXPECT_NE(st.message().find("suppressed"), std::string::npos);
}

TEST_F(MutatorTest, MediumMutationThroughScalarAggregateAddsMerge) {
  QueryPlan plan = SelectPlan();
  Intermediate serial = Eval(plan);
  Mutator m(cfg_);
  ASSERT_TRUE(m.SplitNode(&plan, 1, 2).ok());  // split the fetchjoin
  int union_id = -1;
  for (const auto& n : plan.nodes()) {
    if (n.kind == OpKind::kExchangeUnion) union_id = n.id;
  }
  // The union feeds the scalar aggregate; propagation must clone the
  // aggregate and add a merge.
  ASSERT_TRUE(m.PropagateUnion(&plan, union_id).ok());
  ASSERT_TRUE(plan.Validate().ok());
  bool has_merge = false;
  auto topo = plan.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  for (int id : topo.ValueOrDie()) {
    if (plan.node(id).kind == OpKind::kAggrMerge) has_merge = true;
  }
  EXPECT_TRUE(has_merge);
  EXPECT_TRUE(IntermediatesEqual(serial, Eval(plan), 1e-6));
}

TEST_F(MutatorTest, AdvancedGroupByPreservesResult) {
  QueryPlan plan = GroupByPlan();
  Intermediate serial = Eval(plan);
  Mutator m(cfg_);
  // Partition both fetchjoins (keys and values) 2 ways, keeping matching
  // partition structure, then parallelize the group-by.
  ASSERT_TRUE(m.SplitNode(&plan, 1, 2).ok());  // keys fetchjoin
  ASSERT_TRUE(m.SplitNode(&plan, 2, 2).ok());  // values fetchjoin
  int gb_id = 3;
  ASSERT_EQ(plan.node(gb_id).kind, OpKind::kGroupBy);
  ASSERT_TRUE(m.AdvancedGroupBy(&plan, gb_id).ok());
  ASSERT_TRUE(plan.Validate().ok());
  PlanStats s = plan.Stats();
  EXPECT_EQ(s.num_groupbys, 2);
  EXPECT_TRUE(IntermediatesEqual(serial, Eval(plan), 1e-6));
}

TEST_F(MutatorTest, AdvancedGroupByRequiresPartitionedInput) {
  QueryPlan plan = GroupByPlan();
  Mutator m(cfg_);
  Status st = m.AdvancedGroupBy(&plan, 3);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST_F(MutatorTest, AdvancedGroupByRejectsMismatchedValuePartitions) {
  QueryPlan plan = GroupByPlan();
  Mutator m(cfg_);
  ASSERT_TRUE(m.SplitNode(&plan, 1, 2).ok());  // keys 2 ways
  ASSERT_TRUE(m.SplitNode(&plan, 2, 3).ok());  // values 3 ways (mismatch)
  Status st = m.AdvancedGroupBy(&plan, 3);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST_F(MutatorTest, AdvancedSortPreservesResult) {
  PlanBuilder b("sort");
  int sel = b.Select(vals_.get(), Predicate::RangeI64(0, 99));
  int f = b.FetchJoin(w_.get(), sel);
  int srt = b.Sort(f);
  QueryPlan plan = b.Result(srt);
  Intermediate serial = Eval(plan);
  Mutator m(cfg_);
  ASSERT_TRUE(m.SplitNode(&plan, f, 2).ok());
  ASSERT_TRUE(m.AdvancedSort(&plan, srt).ok());
  ASSERT_TRUE(plan.Validate().ok());
  Intermediate par = Eval(plan);
  // Values must be identically sorted (head order may differ for ties).
  ASSERT_EQ(par.values.size(), serial.values.size());
  for (uint64_t i = 0; i < par.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(par.values.AsDouble(i), serial.values.AsDouble(i));
  }
}

TEST_F(MutatorTest, MutateMostExpensiveTargetsHotOperator) {
  QueryPlan plan = SelectPlan();
  Mutator m(cfg_);
  MutationReport report;
  auto mutated = m.MutateMostExpensive(plan, FakeProfile(plan, 0), &report);
  ASSERT_TRUE(mutated.ok());
  EXPECT_TRUE(report.mutated);
  EXPECT_EQ(report.target_node, 0);
  EXPECT_EQ(report.action, "basic");
  EXPECT_EQ(mutated.ValueOrDie().Stats().num_selects, 2);
}

TEST_F(MutatorTest, MutateMostExpensiveFallsBackToAncestorForAggregate) {
  QueryPlan plan = SelectPlan();
  Mutator m(cfg_);
  // The aggregate (node 2) is hottest but unmutable; its splittable ancestor
  // (select or fetchjoin) should be split instead.
  MutationReport report;
  auto mutated = m.MutateMostExpensive(plan, FakeProfile(plan, 2), &report);
  ASSERT_TRUE(mutated.ok());
  EXPECT_TRUE(report.mutated);
  EXPECT_NE(report.target_node, 2);
  EXPECT_EQ(report.action, "basic");
}

/// Attaches a synthetic morsel histogram to `node` of `rp`: `outs[i]` tuples
/// produced by morsel i, each morsel covering `rows_per_morsel` consecutive
/// base rows starting at `base` (domain unknown when rows_per_morsel == 0).
void AttachMorsels(RunProfile* rp, int node,
                   const std::vector<uint64_t>& outs,
                   uint64_t rows_per_morsel, uint64_t base = 0) {
  for (auto& op : rp->ops) {
    if (op.node_id != node) continue;
    op.morsels.clear();
    for (size_t i = 0; i < outs.size(); ++i) {
      MorselMetrics ms;
      ms.tuples_in = rows_per_morsel > 0 ? rows_per_morsel : 1000;
      ms.tuples_out = outs[i];
      ms.wall_ns = 1000;  // balanced wall times: only the tuple signal skews
      if (rows_per_morsel > 0) {
        ms.domain_begin = base + i * rows_per_morsel;
        ms.domain_end = ms.domain_begin + rows_per_morsel;
      }
      op.morsels.push_back(ms);
    }
    op.ComputeSkewFromMorsels();
  }
}

std::vector<RowRange> SelectSlices(const QueryPlan& plan) {
  return PartitionSlices(plan, OpKind::kSelect);
}

TEST_F(MutatorTest, HighSkewProfileFlipsBasicSplitToRangeRepartition) {
  // The select's profiled histogram concentrates output in morsels 5-6
  // (density 3x the rest): the basic mutation must re-partition on the
  // density edges at rows 10000 and 14000 instead of halving at 10000.
  QueryPlan plan = SelectPlan();
  Intermediate serial = Eval(plan);
  Mutator m(cfg_);
  RunProfile rp = FakeProfile(plan, 0);
  AttachMorsels(&rp, 0, {0, 0, 0, 0, 0, 2000, 2000, 0, 0, 0}, 2000);
  ASSERT_GE(rp.ops[0].morsel_tuple_skew, m.config().skew_threshold);
  MutationReport report;
  auto mutated = m.MutateMostExpensive(plan, rp, &report);
  ASSERT_TRUE(mutated.ok());
  EXPECT_TRUE(report.mutated);
  EXPECT_TRUE(report.skew_aware);
  EXPECT_EQ(report.action, "basic-skew");
  EXPECT_EQ(report.target_node, 0);
  std::vector<RowRange> slices = SelectSlices(mutated.ValueOrDie());
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0], (RowRange{0, 10000}));
  EXPECT_EQ(slices[1], (RowRange{10000, 14000}));
  EXPECT_EQ(slices[2], (RowRange{14000, 20000}));
  EXPECT_TRUE(IntermediatesEqual(serial, Eval(mutated.ValueOrDie()), 1e-6));
}

TEST_F(MutatorTest, BalancedProfileKeepsUniformHalving) {
  // Same histogram shape but evenly spread output: no skew, uniform split.
  QueryPlan plan = SelectPlan();
  Mutator m(cfg_);
  RunProfile rp = FakeProfile(plan, 0);
  AttachMorsels(&rp, 0, std::vector<uint64_t>(10, 400), 2000);
  EXPECT_LT(rp.ops[0].morsel_tuple_skew, m.config().skew_threshold);
  MutationReport report;
  auto mutated = m.MutateMostExpensive(plan, rp, &report);
  ASSERT_TRUE(mutated.ok());
  EXPECT_TRUE(report.mutated);
  EXPECT_FALSE(report.skew_aware);
  EXPECT_EQ(report.action, "basic");
  std::vector<RowRange> slices = SelectSlices(mutated.ValueOrDie());
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0], (RowRange{0, 10000}));
  EXPECT_EQ(slices[1], (RowRange{10000, 20000}));
}

TEST_F(MutatorTest, SkewThresholdKnobDisablesRepartitioning) {
  // A prohibitive threshold (the uniform-baseline configuration used by the
  // Fig 12 bench) keeps halving even on a maximally skewed histogram.
  QueryPlan plan = SelectPlan();
  MutatorConfig cfg = cfg_;
  cfg.skew_threshold = 1e30;
  Mutator m(cfg);
  RunProfile rp = FakeProfile(plan, 0);
  AttachMorsels(&rp, 0, {0, 0, 0, 0, 0, 2000, 2000, 0, 0, 0}, 2000);
  MutationReport report;
  auto mutated = m.MutateMostExpensive(plan, rp, &report);
  ASSERT_TRUE(mutated.ok());
  EXPECT_FALSE(report.skew_aware);
  EXPECT_EQ(report.action, "basic");
  EXPECT_EQ(SelectSlices(mutated.ValueOrDie()).size(), 2u);
}

TEST_F(MutatorTest, UnknownMorselDomainsFallBackToUniform) {
  // Histograms without base-row domains (group-by ingest, sort runs) cannot
  // be mapped to split points; the mutation quietly stays uniform.
  QueryPlan plan = SelectPlan();
  Mutator m(cfg_);
  RunProfile rp = FakeProfile(plan, 0);
  AttachMorsels(&rp, 0, {0, 0, 0, 0, 0, 2000, 2000, 0, 0, 0},
                /*rows_per_morsel=*/0);
  ASSERT_EQ(rp.ops[0].morsel_tuple_skew, 0.0);
  rp.ops[0].morsel_skew = 10.0;  // wall-skew trigger without domain info
  MutationReport report;
  auto mutated = m.MutateMostExpensive(plan, rp, &report);
  ASSERT_TRUE(mutated.ok());
  EXPECT_FALSE(report.skew_aware);
  EXPECT_EQ(report.action, "basic");
  EXPECT_EQ(SelectSlices(mutated.ValueOrDie()).size(), 2u);
}

TEST_F(MutatorTest, SkewSplitPointsLandOnDensityEdges) {
  std::vector<MorselMetrics> hist;
  for (int i = 0; i < 10; ++i) {
    MorselMetrics ms;
    ms.tuples_in = 2000;
    ms.tuples_out = (i == 5 || i == 6) ? 2000 : 0;
    ms.domain_begin = static_cast<uint64_t>(i) * 2000;
    ms.domain_end = ms.domain_begin + 2000;
    hist.push_back(ms);
  }
  auto points = Mutator::SkewSplitPoints(RowRange{0, 20000}, hist,
                                         /*min_partition_rows=*/256,
                                         /*max_pieces=*/8,
                                         /*fallback_ways=*/2);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], 10000u);
  EXPECT_EQ(points[1], 14000u);

  // min_partition_rows prunes the edge that would create a 4000-row piece.
  points = Mutator::SkewSplitPoints(RowRange{0, 20000}, hist, 5000, 8, 2);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], 10000u);
}

TEST_F(MutatorTest, SkewSplitPointsQuarantineStraddlingMorsel) {
  // A value boundary inside morsel 5 dilutes both adjacent density steps
  // below the 2x edge ratio (1.0 | 1.8 | 3.0): the two-step pattern must
  // isolate the straddling morsel into its own piece so both neighbours
  // stay homogeneous.
  std::vector<MorselMetrics> hist;
  for (int i = 0; i < 10; ++i) {
    MorselMetrics ms;
    ms.tuples_in = 2000;
    ms.tuples_out = i < 5 ? 0 : (i == 5 ? 800 : 2000);
    ms.domain_begin = static_cast<uint64_t>(i) * 2000;
    ms.domain_end = ms.domain_begin + 2000;
    hist.push_back(ms);
  }
  auto points = Mutator::SkewSplitPoints(RowRange{0, 20000}, hist, 256, 8, 2);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], 10000u);  // cold | straddler
  EXPECT_EQ(points[1], 12000u);  // straddler | hot
}

TEST_F(MutatorTest, SkewSplitPointsQuantileFallbackOnSmoothGradient) {
  // Density rises gently (no adjacent >= 2x edge) but spreads > 2x overall:
  // the split point falls on the equal-cumulative-weight boundary, not the
  // row midpoint.
  std::vector<MorselMetrics> hist;
  for (int i = 0; i < 10; ++i) {
    MorselMetrics ms;
    ms.tuples_in = 2000;
    ms.tuples_out = static_cast<uint64_t>(i) * 250;
    ms.domain_begin = static_cast<uint64_t>(i) * 2000;
    ms.domain_end = ms.domain_begin + 2000;
    hist.push_back(ms);
  }
  auto points = Mutator::SkewSplitPoints(RowRange{0, 20000}, hist, 256, 8, 2);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], 14000u);  // weighted median boundary (> 10000)

  // A flat histogram must produce no points at all (wall-noise triggers
  // degrade to uniform halving).
  for (auto& ms : hist) ms.tuples_out = 400;
  EXPECT_TRUE(
      Mutator::SkewSplitPoints(RowRange{0, 20000}, hist, 256, 8, 2).empty());
}

TEST_F(MutatorTest, StaticOriginFollowsDataflow) {
  QueryPlan plan = JoinPlan();
  // Select leaf: full column.
  EXPECT_EQ(Mutator::StaticOrigin(plan, 0), vals_->full_range());
  // FetchJoin on fk: fk's full range.
  EXPECT_EQ(Mutator::StaticOrigin(plan, 1), fk_->full_range());
}

TEST_F(MutatorTest, RepeatedMutationsKeepResultStable) {
  // Drive many mutation steps with synthetic profiles picking random nodes;
  // the result must never change (the key safety property of adaptation).
  QueryPlan serial = JoinPlan();
  Intermediate expect = Eval(serial);
  Mutator m(cfg_);
  Rng rng(11);
  QueryPlan plan = serial.Clone();
  for (int step = 0; step < 12; ++step) {
    auto topo = plan.TopologicalOrder();
    ASSERT_TRUE(topo.ok());
    const auto& order = topo.ValueOrDie();
    int victim = order[rng.Uniform(order.size())];
    MutationReport report;
    auto mutated = m.MutateMostExpensive(plan, FakeProfile(plan, victim),
                                         &report);
    ASSERT_TRUE(mutated.ok());
    plan = mutated.MoveValueOrDie();
    ASSERT_TRUE(plan.Validate().ok()) << plan.ToString();
    ASSERT_TRUE(IntermediatesEqual(expect, Eval(plan), 1e-6))
        << "diverged at step " << step;
  }
}

}  // namespace
}  // namespace apq
