// Property-based tests (parameterized sweeps) of the core invariants:
//  - any mutation sequence preserves query results exactly,
//  - dynamic partitions of a reachable plan tile the base column
//    (no repetition, no omission — paper §2.3's alignment requirements),
//  - exchange unions preserve base-table order,
//  - the convergence algorithm always terminates within its bounds.
#include <gtest/gtest.h>

#include <algorithm>

#include "adaptive/convergence.h"
#include "adaptive/mutator.h"
#include "engine/engine.h"
#include "plan/builder.h"
#include "exec/compare.h"
#include "workload/skew.h"
#include "workload/tpch.h"

namespace apq {
namespace {

// ---------------------------------------------------------------------------
// Result preservation across random mutation sequences, per query and seed.
// ---------------------------------------------------------------------------

using QuerySeed = std::tuple<std::string, int>;

class MutationFuzzTest : public ::testing::TestWithParam<QuerySeed> {};

TEST_P(MutationFuzzTest, RandomMutationSequencePreservesResult) {
  auto [query, seed] = GetParam();
  TpchConfig cfg;
  cfg.lineitem_rows = 12'000;
  cfg.seed = 7 + seed;
  auto cat = Tpch::Generate(cfg);
  auto serial = Tpch::Query(*cat, query);
  ASSERT_TRUE(serial.ok());

  Evaluator eval;
  EvalResult er;
  ASSERT_TRUE(eval.Execute(serial.ValueOrDie(), &er).ok());
  Intermediate expect = er.result;

  MutatorConfig mcfg;
  mcfg.min_partition_rows = 32;
  Mutator mutator(mcfg);
  Rng rng(1000 + seed);
  QueryPlan plan = serial.ValueOrDie().Clone();
  for (int step = 0; step < 10; ++step) {
    // Synthetic profile: random node is "most expensive".
    auto topo = plan.TopologicalOrder();
    ASSERT_TRUE(topo.ok());
    const auto& order = topo.ValueOrDie();
    RunProfile profile;
    double t = 0;
    int hot = order[rng.Uniform(order.size())];
    for (int id : order) {
      OpProfile op;
      op.node_id = id;
      op.kind = plan.node(id).kind;
      op.start_ns = t;
      op.end_ns = t + (id == hot ? 1e6 : 1e3 + rng.Uniform(100));
      t = op.end_ns;
      profile.ops.push_back(op);
    }
    MutationReport report;
    auto mutated = mutator.MutateMostExpensive(plan, profile, &report);
    ASSERT_TRUE(mutated.ok());
    plan = mutated.MoveValueOrDie();
    ASSERT_TRUE(plan.Validate().ok()) << query << " step " << step;
    EvalResult er2;
    ASSERT_TRUE(eval.Execute(plan, &er2).ok()) << query << " step " << step;
    ASSERT_TRUE(IntermediatesEqual(expect, er2.result, 1e-6))
        << query << " seed " << seed << " step " << step << ": "
        << DiffIntermediates(expect, er2.result, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueriesBySeeds, MutationFuzzTest,
    ::testing::Combine(::testing::Values("Q6", "Q14", "Q8", "Q19", "Q4"),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Partition tiling: reachable leaf slices of an adapted plan tile the column.
// ---------------------------------------------------------------------------

class PartitionTilingTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionTilingTest, ReachableSlicesTileTheBaseColumn) {
  SkewConfig scfg;
  scfg.rows = 40'000;
  scfg.seed = 13 + GetParam();
  auto cat = GenerateSkewed(scfg);
  SimConfig sim = SimConfig::Cores(8, 8);
  sim.seed = 100 + GetParam();
  sim.noise_sigma = 0.05;
  Engine engine(EngineConfig::WithSim(sim));
  auto plan = SkewedSelectPlan(*cat, scfg, 10 * (1 + GetParam() % 5));
  ASSERT_TRUE(plan.ok());
  auto ap = engine.RunAdaptive(plan.ValueOrDie());
  ASSERT_TRUE(ap.ok());
  const QueryPlan& gme = ap.ValueOrDie().gme_plan;

  auto topo = gme.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  std::vector<RowRange> slices;
  int unsliced_selects = 0;
  for (int id : topo.ValueOrDie()) {
    const PlanNode& n = gme.node(id);
    if (n.kind != OpKind::kSelect) continue;
    if (n.has_slice) slices.push_back(n.slice);
    else ++unsliced_selects;
  }
  if (slices.empty()) {
    // Never split: the single unsliced select covers everything.
    EXPECT_EQ(unsliced_selects, 1);
    return;
  }
  EXPECT_EQ(unsliced_selects, 0);
  std::sort(slices.begin(), slices.end(),
            [](const RowRange& a, const RowRange& b) { return a.begin < b.begin; });
  // No omission, no repetition: consecutive slices abut exactly (Fig 8's
  // alignment-on-the-base-column invariant).
  EXPECT_EQ(slices.front().begin, 0u);
  EXPECT_EQ(slices.back().end, scfg.rows);
  for (size_t i = 1; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].begin, slices[i - 1].end)
        << "gap or overlap at slice " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionTilingTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Union ordering: packed row ids stay sorted (base-table order).
// ---------------------------------------------------------------------------

class UnionOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(UnionOrderTest, PackedRowIdsStaySorted) {
  int ways = 2 + GetParam();
  Rng rng(50 + ways);
  std::vector<int64_t> vals(20'000);
  for (auto& v : vals) v = rng.UniformRange(0, 99);
  auto col = Column::MakeInt64("c", std::move(vals));
  PlanBuilder b("t");
  int sel = b.Select(col.get(), Predicate::RangeI64(0, 49));
  QueryPlan plan = b.Result(sel);
  MutatorConfig mcfg;
  mcfg.min_partition_rows = 8;
  Mutator m(mcfg);
  ASSERT_TRUE(m.SplitNode(&plan, sel, ways).ok());
  Evaluator eval;
  EvalResult er;
  ASSERT_TRUE(eval.Execute(plan, &er).ok());
  const auto& ids = er.result.rowids;
  for (size_t i = 1; i < ids.size(); ++i) {
    ASSERT_LT(ids[i - 1], ids[i]) << "order violated at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, UnionOrderTest, ::testing::Range(0, 7));

// ---------------------------------------------------------------------------
// Convergence termination across random execution-time landscapes.
// ---------------------------------------------------------------------------

class ConvergenceTerminationTest : public ::testing::TestWithParam<int> {};

// A realistic adaptation landscape (the paper's §3.3 assumption): a steep
// initial descent, then a mostly stable plateau with small variations and
// rare spikes. The leaking debit must terminate this within the analytical
// bounds.
TEST_P(ConvergenceTerminationTest, CalmLandscapeTerminatesWithinBounds) {
  Rng rng(31 + GetParam());
  ConvergenceParams p;
  p.cores = 4 + static_cast<int>(rng.Uniform(60));
  p.extra_runs = 2 + static_cast<int>(rng.Uniform(14));
  p.max_runs = 10'000;  // effectively disabled: the leak must terminate us
  ConvergenceController c(p);
  double serial = 1000.0;
  double floor = 40.0;
  double t = serial;
  bool cont = c.Observe(serial);
  int runs = 1;
  while (cont) {
    ASSERT_LT(runs, 9'000) << "did not terminate";
    if (t > floor * 1.5) t *= 0.75;                     // descent phase
    else t = floor * (1.0 + 0.04 * rng.NextDouble());   // stable plateau
    if (rng.NextDouble() < 0.01) t = serial * 1.5;      // rare spike
    cont = c.Observe(t);
    ++runs;
  }
  // Upper bound plus slack for peak-grace extensions and credit growth.
  EXPECT_LE(runs, c.UpperBound() * 3 + 10);
  // GME is never worse than every observed run (it is one of them).
  double raw_min = 1e300;
  for (size_t i = 1; i < c.times().size(); ++i) {
    raw_min = std::min(raw_min, c.times()[i]);
  }
  EXPECT_GE(c.gme(), raw_min - 1e-9);
  EXPECT_LE(c.gme(), serial * 10);
}

// An adversarial landscape with sustained multiplicative oscillation defeats
// the leaking debit: ROI is asymmetric (a drop by factor f credits 1-f, the
// matching climb debits only (1/f-1)*f), so credit inflow can outpace the
// constant leak indefinitely. The paper's termination argument (§3.3.2)
// assumes "execution time variations are minimal"; the hard max_runs cap is
// the backstop this repository relies on (documented in DESIGN.md).
TEST_P(ConvergenceTerminationTest, AdversarialLandscapeStoppedByMaxRuns) {
  Rng rng(61 + GetParam());
  ConvergenceParams p;
  p.cores = 8 + static_cast<int>(rng.Uniform(32));
  p.max_runs = 500;
  ConvergenceController c(p);
  double serial = 1000.0;
  double t = serial;
  bool cont = c.Observe(serial);
  int runs = 1;
  while (cont) {
    ASSERT_LE(runs, p.max_runs) << "max_runs cap violated";
    double r = rng.NextDouble();
    if (r < 0.5) t *= 0.7 + 0.3 * rng.NextDouble();        // improve
    else if (r < 0.8) t *= 0.98 + 0.04 * rng.NextDouble(); // plateau
    else t *= 1.0 + 0.3 * rng.NextDouble();                // up-hill
    if (t < 1.0) t = 1.0;
    cont = c.Observe(t);
    ++runs;
  }
  EXPECT_LE(runs, p.max_runs);
}

INSTANTIATE_TEST_SUITE_P(Landscapes, ConvergenceTerminationTest,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Adaptive vs heuristic vs serial agreement across engines and machine sizes.
// ---------------------------------------------------------------------------

class CrossStrategyAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossStrategyAgreementTest, AllStrategiesAgree) {
  auto [cores, seed] = GetParam();
  TpchConfig cfg;
  cfg.lineitem_rows = 15'000;
  cfg.seed = 7 + seed;
  auto cat = Tpch::Generate(cfg);
  EngineConfig ecfg = EngineConfig::WithSim(
      SimConfig::Cores(cores, std::max(1, cores / 2)));
  ecfg.verify_results = true;
  Engine engine(ecfg);
  auto q = Tpch::Q14(*cat);
  ASSERT_TRUE(q.ok());
  auto serial = engine.RunSerial(q.ValueOrDie());
  ASSERT_TRUE(serial.ok());
  auto hp = engine.RunHeuristic(q.ValueOrDie());
  ASSERT_TRUE(hp.ok());
  auto ap = engine.RunAdaptive(q.ValueOrDie());
  ASSERT_TRUE(ap.ok()) << ap.status().ToString();
  EXPECT_TRUE(IntermediatesEqual(serial.ValueOrDie().result,
                                 hp.ValueOrDie().result, 1e-6));
  EXPECT_TRUE(IntermediatesEqual(serial.ValueOrDie().result,
                                 ap.ValueOrDie().result, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    CoresBySeeds, CrossStrategyAgreementTest,
    ::testing::Combine(::testing::Values(2, 8, 32), ::testing::Values(0, 1)),
    [](const auto& info) {
      return "cores" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace apq
