// Unit tests for every physical operator in the evaluator.
#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "plan/builder.h"

namespace apq {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ints_ = Column::MakeInt64("ints", {5, 1, 7, 3, 9, 2, 8, 4, 6, 0});
    floats_ = Column::MakeFloat64(
        "floats", {0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5, 9.5});
    strs_ = Column::MakeString("strs", {"PROMO A", "PLAIN B", "PROMO C",
                                        "PLAIN D", "PROMO E", "PLAIN F",
                                        "PROMO G", "PLAIN H", "PROMO I",
                                        "PLAIN J"});
    fk_ = Column::MakeInt64("fk", {0, 1, 2, 0, 1, 2, 0, 1, 2, 0});
    pk_ = Column::MakeInt64("pk", {0, 1, 2});
    dim_ = Column::MakeFloat64("dimval", {10.0, 20.0, 30.0});
  }

  Intermediate Run(QueryPlan plan) {
    EvalResult er;
    Status st = eval_.Execute(plan, &er);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return er.result;
  }

  ColumnPtr ints_, floats_, strs_, fk_, pk_, dim_;
  Evaluator eval_;
};

TEST_F(EvaluatorTest, SelectRange) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(3, 7));
  Intermediate r = Run(b.Result(sel));
  ASSERT_EQ(r.kind, Intermediate::Kind::kRowIds);
  EXPECT_EQ(r.rowids, (std::vector<oid>{0, 2, 3, 7, 8}));  // 5,7,3,4,6
  EXPECT_EQ(r.origin, (RowRange{0, 10}));
}

TEST_F(EvaluatorTest, SelectEquality) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::EqI64(9));
  Intermediate r = Run(b.Result(sel));
  EXPECT_EQ(r.rowids, (std::vector<oid>{4}));
}

TEST_F(EvaluatorTest, SelectFloatRange) {
  PlanBuilder b("t");
  int sel = b.Select(floats_.get(), Predicate::RangeF64(2.0, 4.0));
  Intermediate r = Run(b.Result(sel));
  EXPECT_EQ(r.rowids, (std::vector<oid>{2, 3}));  // 2.5, 3.5
}

TEST_F(EvaluatorTest, SelectLike) {
  PlanBuilder b("t");
  int sel = b.Select(strs_.get(), Predicate::Like("PROMO"));
  Intermediate r = Run(b.Result(sel));
  EXPECT_EQ(r.rowids, (std::vector<oid>{0, 2, 4, 6, 8}));
}

TEST_F(EvaluatorTest, SelectLikeAnti) {
  PlanBuilder b("t");
  int sel = b.Select(strs_.get(), Predicate::Like("PROMO", /*anti=*/true));
  Intermediate r = Run(b.Result(sel));
  EXPECT_EQ(r.rowids, (std::vector<oid>{1, 3, 5, 7, 9}));
}

TEST_F(EvaluatorTest, SelectWithCandidates) {
  PlanBuilder b("t");
  int s1 = b.Select(ints_.get(), Predicate::RangeI64(3, 9));
  int s2 = b.Select(floats_.get(), Predicate::RangeF64(0.0, 4.9), s1);
  Intermediate r = Run(b.Result(s2));
  // s1 -> rows {0,2,3,4,7,8}; floats at those rows: .5,2.5,3.5,4.5,7.5,8.5.
  EXPECT_EQ(r.rowids, (std::vector<oid>{0, 2, 3, 4}));
}

TEST_F(EvaluatorTest, SelectLikeOnNonStringFails) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::Like("x"));
  QueryPlan plan = b.Result(sel);
  EvalResult er;
  Status st = eval_.Execute(plan, &er);
  EXPECT_FALSE(st.ok());
}

TEST_F(EvaluatorTest, FetchJoinGathersValues) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(7, 9));
  int f = b.FetchJoin(floats_.get(), sel);
  Intermediate r = Run(b.Result(f));
  ASSERT_EQ(r.kind, Intermediate::Kind::kValues);
  // matches rows {2,4,6} -> floats 2.5, 4.5, 6.5
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_DOUBLE_EQ(r.values.f64[0], 2.5);
  EXPECT_DOUBLE_EQ(r.values.f64[2], 6.5);
  EXPECT_EQ(r.head, (std::vector<oid>{2, 4, 6}));
}

TEST_F(EvaluatorTest, FetchJoinSliceClipsUnderAdjustPolicy) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));  // all rows
  int f = b.FetchJoin(floats_.get(), sel);
  QueryPlan plan = b.Result(f);
  // Restrict the fetch to rows [3, 6): out-of-slice candidates clip away.
  for (int i = 0; i < plan.num_nodes(); ++i) {
    if (plan.node(i).kind == OpKind::kFetchJoin) {
      plan.node(i).has_slice = true;
      plan.node(i).slice = {3, 6};
      plan.node(i).align = AlignPolicy::kAdjust;
    }
  }
  EvalResult er;
  ASSERT_TRUE(eval_.Execute(plan, &er).ok());
  EXPECT_EQ(er.result.head, (std::vector<oid>{3, 4, 5}));
}

TEST_F(EvaluatorTest, FetchJoinStrictPolicyReportsMisalignment) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int f = b.FetchJoin(floats_.get(), sel);
  QueryPlan plan = b.Result(f);
  for (int i = 0; i < plan.num_nodes(); ++i) {
    if (plan.node(i).kind == OpKind::kFetchJoin) {
      plan.node(i).has_slice = true;
      plan.node(i).slice = {3, 6};
      plan.node(i).align = AlignPolicy::kStrict;
    }
  }
  EvalResult er;
  Status st = eval_.Execute(plan, &er);
  EXPECT_EQ(st.code(), StatusCode::kMisaligned);
}

TEST_F(EvaluatorTest, JoinLeafProbesAllRows) {
  PlanBuilder b("t");
  int jn = b.JoinLeaf(fk_.get(), pk_.get());
  Intermediate r = Run(b.Result(jn));
  ASSERT_EQ(r.kind, Intermediate::Kind::kPairs);
  ASSERT_EQ(r.rowids.size(), 10u);  // FK join preserves cardinality
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(r.rowids[i], i);  // outer row order preserved
    EXPECT_EQ(static_cast<int64_t>(r.rrowids[i]), fk_->i64()[i]);
  }
}

TEST_F(EvaluatorTest, JoinOverFetchedValues) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(5, 9));
  int fpk = b.FetchJoin(fk_.get(), sel);
  int jn = b.Join(fpk, pk_.get());
  Intermediate r = Run(b.Result(jn));
  // matches rows {0,2,4,6,8} with fk values {0,2,1,0,2}.
  ASSERT_EQ(r.rowids.size(), 5u);
  EXPECT_EQ(r.rowids, (std::vector<oid>{0, 2, 4, 6, 8}));
  EXPECT_EQ(r.rrowids, (std::vector<oid>{0, 2, 1, 0, 2}));
}

TEST_F(EvaluatorTest, JoinDuplicateInnerMatches) {
  auto inner = Column::MakeInt64("dup", {7, 7, 8});
  auto outer = Column::MakeInt64("o", {7, 8});
  PlanBuilder b("t");
  int jn = b.JoinLeaf(outer.get(), inner.get());
  Intermediate r = Run(b.Result(jn));
  ASSERT_EQ(r.rowids.size(), 3u);  // 7 matches twice, 8 once
  EXPECT_EQ(r.rowids, (std::vector<oid>{0, 0, 1}));
}

TEST_F(EvaluatorTest, FetchJoinFromPairsBothSides) {
  PlanBuilder b("t");
  int jn = b.JoinLeaf(fk_.get(), pk_.get());
  int fl = b.FetchJoin(floats_.get(), jn, FetchSide::kLeft);
  int fr = b.FetchJoin(dim_.get(), jn, FetchSide::kRight);
  int sum = b.Map2(MapFn::kAdd, fl, fr);
  Intermediate r = Run(b.Result(sum));
  ASSERT_EQ(r.values.size(), 10u);
  // Row 0: float 0.5 + dim[fk=0]=10 -> 10.5.
  EXPECT_DOUBLE_EQ(r.values.f64[0], 10.5);
  // Row 5: float 5.5 + dim[fk=2]=30 -> 35.5.
  EXPECT_DOUBLE_EQ(r.values.f64[5], 35.5);
}

TEST_F(EvaluatorTest, GroupByAndGroupedSum) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int keys = b.FetchJoin(fk_.get(), sel);
  int vals = b.FetchJoin(floats_.get(), sel);
  int gb = b.GroupBy(keys);
  int ag = b.AggGrouped(AggFn::kSum, gb, vals);
  Intermediate r = Run(b.Result(ag));
  ASSERT_EQ(r.kind, Intermediate::Kind::kGroupedAgg);
  ASSERT_EQ(r.agg_vals.size(), 3u);
  // Key 0 at rows 0,3,6,9: 0.5+3.5+6.5+9.5 = 20.
  for (size_t g = 0; g < 3; ++g) {
    if (r.group_keys.AsInt(g) == 0) {
      EXPECT_DOUBLE_EQ(r.agg_vals[g], 20.0);
    }
    if (r.group_keys.AsInt(g) == 1) {
      EXPECT_DOUBLE_EQ(r.agg_vals[g], 13.5);
    }
    if (r.group_keys.AsInt(g) == 2) {
      EXPECT_DOUBLE_EQ(r.agg_vals[g], 16.5);
    }
  }
}

TEST_F(EvaluatorTest, GroupedCountAvgMinMax) {
  auto run_agg = [&](AggFn fn, bool with_vals) {
    PlanBuilder b("t");
    int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
    int keys = b.FetchJoin(fk_.get(), sel);
    int vals = b.FetchJoin(floats_.get(), sel);
    int gb = b.GroupBy(keys);
    int ag = b.AggGrouped(fn, gb, with_vals ? vals : -1);
    return Run(b.Result(ag));
  };
  Intermediate c = run_agg(AggFn::kCount, false);
  Intermediate a = run_agg(AggFn::kAvg, true);
  Intermediate lo = run_agg(AggFn::kMin, true);
  Intermediate hi = run_agg(AggFn::kMax, true);
  for (size_t g = 0; g < 3; ++g) {
    if (c.group_keys.AsInt(g) == 0) {
      EXPECT_DOUBLE_EQ(c.agg_vals[g], 4.0);
    }
    if (a.group_keys.AsInt(g) == 0) {
      EXPECT_DOUBLE_EQ(a.agg_vals[g], 5.0);
    }
    if (lo.group_keys.AsInt(g) == 0) {
      EXPECT_DOUBLE_EQ(lo.agg_vals[g], 0.5);
    }
    if (hi.group_keys.AsInt(g) == 0) {
      EXPECT_DOUBLE_EQ(hi.agg_vals[g], 9.5);
    }
  }
}

TEST_F(EvaluatorTest, ScalarAggregates) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int vals = b.FetchJoin(floats_.get(), sel);
  int sum = b.AggScalar(AggFn::kSum, vals);
  QueryPlan plan = b.Result(sum);
  EvalResult er;
  ASSERT_TRUE(eval_.Execute(plan, &er).ok());
  EXPECT_DOUBLE_EQ(er.result.scalar, 50.0);
  EXPECT_EQ(er.result.scalar_count, 10);
}

TEST_F(EvaluatorTest, ScalarCountOverRowIds) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(5, 9));
  int cnt = b.AggScalar(AggFn::kCount, sel);
  Intermediate r = Run(b.Result(cnt));
  EXPECT_DOUBLE_EQ(r.scalar, 5.0);
}

TEST_F(EvaluatorTest, MapArithmetic) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int vals = b.FetchJoin(floats_.get(), sel);
  int x2 = b.MapConst(MapFn::kMul, vals, 2.0);
  int inv = b.MapConst(MapFn::kRSub, vals, 1.0);  // 1 - v
  int sum = b.Map2(MapFn::kAdd, x2, inv);         // 2v + 1 - v = v + 1
  Intermediate r = Run(b.Result(sum));
  for (uint64_t i = 0; i < r.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.values.f64[i], floats_->f64()[i] + 1.0);
  }
}

TEST_F(EvaluatorTest, MapFlags) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int svals = b.FetchJoin(strs_.get(), sel);
  int flag = b.LikeFlag(svals, "PROMO");
  Intermediate r = Run(b.Result(flag));
  for (uint64_t i = 0; i < r.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.values.f64[i], i % 2 == 0 ? 1.0 : 0.0);
  }
}

TEST_F(EvaluatorTest, MapEqAndRangeFlags) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int vals = b.FetchJoin(ints_.get(), sel);
  int eq = b.EqFlag(vals, 7);
  int rg = b.RangeFlag(vals, 3, 5);
  QueryPlan plan = b.Result(eq);
  EvalResult er;
  ASSERT_TRUE(eval_.Execute(plan, &er).ok());
  const Intermediate& e = er.intermediates.at(eq);
  EXPECT_DOUBLE_EQ(e.values.f64[2], 1.0);  // ints[2] == 7
  EXPECT_DOUBLE_EQ(e.values.f64[0], 0.0);
  // Range flag needs to be reachable to be evaluated; re-run with rg result.
  PlanBuilder b2("t2");
  int sel2 = b2.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int vals2 = b2.FetchJoin(ints_.get(), sel2);
  int rg2 = b2.RangeFlag(vals2, 3, 5);
  Intermediate r = Run(b2.Result(rg2));
  EXPECT_DOUBLE_EQ(r.values.f64[0], 1.0);  // 5 in [3,5]
  EXPECT_DOUBLE_EQ(r.values.f64[2], 0.0);  // 7 not
  (void)rg;
}

TEST_F(EvaluatorTest, ScalarMapDivision) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int vals = b.FetchJoin(floats_.get(), sel);
  int s1 = b.AggScalar(AggFn::kSum, vals);
  int s2 = b.AggScalar(AggFn::kCount, vals);
  int ratio = b.Map2(MapFn::kDiv, s1, s2);
  Intermediate r = Run(b.Result(ratio));
  EXPECT_DOUBLE_EQ(r.scalar, 5.0);  // 50 / 10
}

TEST_F(EvaluatorTest, SortValuesAscendingDescending) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int vals = b.FetchJoin(ints_.get(), sel);
  int srt = b.Sort(vals);
  Intermediate r = Run(b.Result(srt));
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(r.values.i64[i], static_cast<int64_t>(i));
  }
  PlanBuilder b2("t2");
  int sel2 = b2.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int vals2 = b2.FetchJoin(ints_.get(), sel2);
  int srt2 = b2.Sort(vals2, /*descending=*/true);
  Intermediate r2 = Run(b2.Result(srt2));
  EXPECT_EQ(r2.values.i64[0], 9);
  EXPECT_EQ(r2.values.i64[9], 0);
}

TEST_F(EvaluatorTest, TopNLimits) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int vals = b.FetchJoin(ints_.get(), sel);
  int top = b.TopN(vals, 3, /*descending=*/true);
  Intermediate r = Run(b.Result(top));
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_EQ(r.values.i64[0], 9);
  EXPECT_EQ(r.values.i64[2], 7);
}

TEST_F(EvaluatorTest, SortGroupedAggregates) {
  PlanBuilder b("t");
  int sel = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int keys = b.FetchJoin(fk_.get(), sel);
  int vals = b.FetchJoin(floats_.get(), sel);
  int gb = b.GroupBy(keys);
  int ag = b.AggGrouped(AggFn::kSum, gb, vals);
  int srt = b.Sort(ag, /*descending=*/true);
  Intermediate r = Run(b.Result(srt));
  ASSERT_EQ(r.agg_vals.size(), 3u);
  EXPECT_GE(r.agg_vals[0], r.agg_vals[1]);
  EXPECT_GE(r.agg_vals[1], r.agg_vals[2]);
  EXPECT_DOUBLE_EQ(r.agg_vals[0], 20.0);  // key 0
}

TEST_F(EvaluatorTest, HashIndexIsCachedAcrossExecutions) {
  PlanBuilder b("t");
  int jn = b.JoinLeaf(fk_.get(), pk_.get());
  QueryPlan plan = b.Result(jn);
  EvalResult er1, er2;
  ASSERT_TRUE(eval_.Execute(plan, &er1).ok());
  ASSERT_TRUE(eval_.Execute(plan, &er2).ok());
  uint64_t build1 = 0, build2 = 0;
  for (const auto& m : er1.metrics) build1 += m.hash_build_rows;
  for (const auto& m : er2.metrics) build2 += m.hash_build_rows;
  EXPECT_GT(build1, 0u);
  EXPECT_EQ(build2, 0u);  // second run reuses the cached index
}

TEST_F(EvaluatorTest, MisalignedBinaryMapIsAnError) {
  PlanBuilder b("t");
  int s1 = b.Select(ints_.get(), Predicate::RangeI64(0, 4));
  int s2 = b.Select(ints_.get(), Predicate::RangeI64(0, 9));
  int v1 = b.FetchJoin(floats_.get(), s1);
  int v2 = b.FetchJoin(floats_.get(), s2);
  int mp = b.Map2(MapFn::kAdd, v1, v2);
  QueryPlan plan = b.Result(mp);
  EvalResult er;
  Status st = eval_.Execute(plan, &er);
  EXPECT_EQ(st.code(), StatusCode::kMisaligned);
}

}  // namespace
}  // namespace apq
