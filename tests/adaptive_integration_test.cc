// Integration tests: the complete adaptive-parallelization loop over the
// TPC-H and TPC-DS workloads, with every run's result checked against the
// serial plan, plus engine-level HP/AP/VW comparisons.
#include <gtest/gtest.h>

#include <cstdlib>

#include "engine/engine.h"
#include "exec/compare.h"
#include "vwsim/vectorwise_sim.h"
#include "workload/skew.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace apq {
namespace {

EngineConfig SmallEngine() {
  SimConfig sim = SimConfig::Cores(8, 4);
  EngineConfig cfg = EngineConfig::WithSim(sim);
  cfg.verify_results = true;
  cfg.mutator.min_partition_rows = 64;
  return cfg;
}

class AdaptiveTpchTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.lineitem_rows = 30'000;
    cat_ = Tpch::Generate(cfg);
  }
  std::shared_ptr<Catalog> cat_;
};

TEST_P(AdaptiveTpchTest, ConvergesAndPreservesResults) {
  Engine engine(SmallEngine());
  auto serial = Tpch::Query(*cat_, GetParam());
  ASSERT_TRUE(serial.ok());
  auto out = engine.RunAdaptive(serial.ValueOrDie());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const AdaptiveOutcome& o = out.ValueOrDie();
  // Convergence within the paper's bounds (cores=8 -> <= 8+1+8*8 + slack).
  EXPECT_LE(o.total_runs, 8 + 1 + 8 * 8 + 16);
  EXPECT_GE(o.total_runs, 2);
  // The converged plan must not be slower than serial (GME <= serial).
  EXPECT_LE(o.gme_time_ns, o.serial_time_ns * 1.05);
  // Runs recorded in order.
  ASSERT_EQ(static_cast<int>(o.runs.size()), o.total_runs);
  EXPECT_EQ(o.runs[0].run, 0);
  // GME plan is a valid plan.
  EXPECT_TRUE(o.gme_plan.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(AllQueries, AdaptiveTpchTest,
                         ::testing::Values("Q4", "Q6", "Q8", "Q9", "Q14",
                                           "Q19", "Q22"),
                         [](const auto& info) { return info.param; });

class AdaptiveTpcdsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AdaptiveTpcdsTest, ConvergesAndPreservesResults) {
  TpcdsConfig cfg;
  cfg.store_sales_rows = 30'000;
  auto cat = Tpcds::Generate(cfg);
  Engine engine(SmallEngine());
  auto serial = Tpcds::Query(*cat, GetParam());
  ASSERT_TRUE(serial.ok());
  auto out = engine.RunAdaptive(serial.ValueOrDie());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_LE(out.ValueOrDie().gme_time_ns,
            out.ValueOrDie().serial_time_ns * 1.05);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, AdaptiveTpcdsTest,
                         ::testing::Values("DS1", "DS2", "DS3", "DS4", "DS5"),
                         [](const auto& info) { return info.param; });

TEST(AdaptiveSpeedupTest, SelectPlanApproachesHeuristicPerformance) {
  TpchConfig cfg;
  cfg.lineitem_rows = 100'000;
  auto cat = Tpch::Generate(cfg);
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto serial = Tpch::Q6(*cat);
  ASSERT_TRUE(serial.ok());
  auto ap = engine.RunAdaptive(serial.ValueOrDie());
  ASSERT_TRUE(ap.ok());
  auto hp = engine.RunHeuristic(serial.ValueOrDie());
  ASSERT_TRUE(hp.ok());
  double ap_speedup = ap.ValueOrDie().Speedup();
  EXPECT_GT(ap_speedup, 2.0);  // parallelism clearly helps
  // AP within a small factor of HP in isolated execution (paper §4.2.1:
  // "similar performance").
  EXPECT_LT(ap.ValueOrDie().gme_time_ns, hp.ValueOrDie().time_ns * 3.0);
}

TEST(AdaptiveUtilizationTest, ApUsesFewerPartitionsAndLowerUtilization) {
  // Table 5's claim: the adaptive plan uses far fewer operator clones and
  // lower multi-core utilization than the heuristic plan.
  TpchConfig cfg;
  cfg.lineitem_rows = 60'000;
  auto cat = Tpch::Generate(cfg);
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto serial = Tpch::Q14(*cat);
  ASSERT_TRUE(serial.ok());
  auto ap = engine.RunAdaptive(serial.ValueOrDie());
  ASSERT_TRUE(ap.ok());
  auto hp = engine.RunHeuristic(serial.ValueOrDie());
  ASSERT_TRUE(hp.ok());
  PlanStats ap_stats = ap.ValueOrDie().gme_plan.Stats();
  PlanStats hp_stats = hp.ValueOrDie().stats;
  EXPECT_LT(ap_stats.num_selects, hp_stats.num_selects);
  EXPECT_LT(ap_stats.num_joins, hp_stats.num_joins);
}

TEST(ConcurrentWorkloadTest, BackgroundLoadSlowsQueriesDown) {
  TpchConfig cfg;
  cfg.lineitem_rows = 40'000;
  auto cat = Tpch::Generate(cfg);
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto q6 = Tpch::Q6(*cat);
  ASSERT_TRUE(q6.ok());
  auto hp_plan = engine.HeuristicPlan(q6.ValueOrDie());
  ASSERT_TRUE(hp_plan.ok());
  std::vector<const QueryPlan*> mix = {&hp_plan.ValueOrDie()};
  auto bg = engine.BuildBackground(mix, 16);
  ASSERT_TRUE(bg.ok());
  auto isolated = engine.RunHeuristic(q6.ValueOrDie());
  auto loaded = engine.RunHeuristic(q6.ValueOrDie(), -1, bg.ValueOrDie());
  ASSERT_TRUE(isolated.ok());
  ASSERT_TRUE(loaded.ok());
  EXPECT_GT(loaded.ValueOrDie().time_ns, isolated.ValueOrDie().time_ns * 1.5);
}

TEST(ConcurrentWorkloadTest, AdaptivePlansAreContentionAware) {
  // Under background load the adaptive process converges to fewer partitions
  // than it does in isolation (resource-contention awareness, paper §1).
  TpchConfig cfg;
  cfg.lineitem_rows = 40'000;
  auto cat = Tpch::Generate(cfg);
  auto q6 = Tpch::Q6(*cat);
  ASSERT_TRUE(q6.ok());

  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto ap_iso = engine.RunAdaptive(q6.ValueOrDie());
  ASSERT_TRUE(ap_iso.ok());

  Engine engine2(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto hp_plan = engine2.HeuristicPlan(q6.ValueOrDie());
  ASSERT_TRUE(hp_plan.ok());
  std::vector<const QueryPlan*> mix = {&hp_plan.ValueOrDie()};
  auto bg = engine2.BuildBackground(mix, 24);
  ASSERT_TRUE(bg.ok());
  auto ap_conc = engine2.RunAdaptive(q6.ValueOrDie(), bg.ValueOrDie());
  ASSERT_TRUE(ap_conc.ok());

  int iso_nodes = ap_iso.ValueOrDie().gme_plan.Stats().num_nodes;
  int conc_nodes = ap_conc.ValueOrDie().gme_plan.Stats().num_nodes;
  EXPECT_LE(conc_nodes, iso_nodes + 4);
}

TEST(VectorwiseSimTest, AdmissionControlDegradesLateClients) {
  TpchConfig cfg;
  cfg.lineitem_rows = 40'000;
  auto cat = Tpch::Generate(cfg);
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto q6 = Tpch::Q6(*cat);
  ASSERT_TRUE(q6.ok());
  VectorwiseSim vw;
  int dop_first = vw.ChooseDop(engine, q6.ValueOrDie(), 32, true);
  int dop_late = vw.ChooseDop(engine, q6.ValueOrDie(), 32, false);
  EXPECT_GT(dop_first, dop_late);
  EXPECT_EQ(dop_late, 1);  // 32 cores / 32 clients
}

TEST(VectorwiseSimTest, RunsAndPreservesResult) {
  TpchConfig cfg;
  cfg.lineitem_rows = 30'000;
  auto cat = Tpch::Generate(cfg);
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto q6 = Tpch::Q6(*cat);
  ASSERT_TRUE(q6.ok());
  auto serial = engine.RunSerial(q6.ValueOrDie());
  ASSERT_TRUE(serial.ok());
  VectorwiseSim vw;
  auto res = vw.Run(engine, q6.ValueOrDie(), 1, true);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(IntermediatesEqual(serial.ValueOrDie().result,
                                 res.ValueOrDie().result, 1e-6))
      << DiffIntermediates(serial.ValueOrDie().result,
                           res.ValueOrDie().result, 1e-6);
}

/// True when APQ_FORCE_MORSELS overrides the morsel size with a value that
/// does not divide the skew workload's 40960-row cluster width — boundary
/// morsels would then straddle density edges and the exact-skew assertions
/// below stop being deterministic. Uses the evaluator's own validated
/// parse, so rejected values (non-numeric, absurd) never cause a skip.
bool ForcedMorselSizeMisaligned() {
  const uint64_t forced = Evaluator::ForcedEnvMorselRows();
  if (forced <= 1) return false;  // off, or configured size kept
  return 40960 % forced != 0;
}

TEST(SkewFeedbackTest, RepartitioningHalvesConvergedSkewWithIdenticalResults) {
  // The closed loop of paper Fig 2 + Fig 12: morsel profiles observe the
  // skewed select's value clusters, the mutator re-partitions on the
  // profiled density edges, and the converged plan's intra-operator skew
  // collapses — while the uniform-halving baseline (skew_threshold = inf)
  // keeps a mixed partition with 3x tuple-weight imbalance. The Fig 13
  // layout at pct 40 concentrates 100% of the ~40% selectivity in the
  // clustered half (>= 60% skew on Fig 12's axis); the hot region
  // [204800, 368640) = 4 of the 5 40960-row clusters does not end on a
  // uniform-halving boundary, so only value-balanced split points can
  // isolate it.
  if (ForcedMorselSizeMisaligned()) {
    GTEST_SKIP() << "APQ_FORCE_MORSELS size does not divide the cluster "
                    "width; exact skew values need aligned morsels";
  }
  SkewConfig cfg;
  cfg.rows = 409'600;  // cluster width 40960 = multiple of every 2^k <= 4096
  auto cat = GenerateSkewed(cfg);
  auto plan = SkewedSelectPlan(*cat, cfg, 40);
  ASSERT_TRUE(plan.ok());

  auto run = [&](double skew_threshold, int workers) {
    EngineConfig ecfg = EngineConfig::WithSim(SimConfig::Cores(4, 4));
    ecfg.use_morsels = true;
    ecfg.morsel_rows = 2048;
    ecfg.morsel_workers = workers;
    ecfg.verify_results = true;  // every run checked against the serial plan
    ecfg.mutator.skew_threshold = skew_threshold;
    Engine engine(ecfg);
    auto out = engine.RunAdaptive(plan.ValueOrDie());
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.MoveValueOrDie();
  };

  AdaptiveOutcome uniform = run(/*skew_threshold=*/1e30, /*workers=*/2);
  AdaptiveOutcome aware = run(MutatorConfig().skew_threshold, /*workers=*/2);

  // The skew feedback actually fired (and only when enabled).
  EXPECT_EQ(uniform.skew_mutations, 0);
  EXPECT_GE(aware.skew_mutations, 1);

  // Identical query results — re-partitioning only moves split points.
  EXPECT_TRUE(IntermediatesEqual(uniform.result, aware.result, 0.0))
      << DiffIntermediates(uniform.result, aware.result, 0.0);

  // Converged plans: the uniform baseline retains a >= 3x imbalanced
  // partition; the skew-aware plan's partitions are internally homogeneous.
  const double uniform_skew = uniform.gme_profile.MaxMorselTupleSkew();
  const double aware_skew = aware.gme_profile.MaxMorselTupleSkew();
  ASSERT_GT(aware_skew, 0.0);
  EXPECT_GE(uniform_skew, 2.5);
  EXPECT_LE(aware_skew, 1.25);
  EXPECT_GE(uniform_skew, 2.0 * aware_skew)
      << "uniform " << uniform_skew << " vs skew-aware " << aware_skew;

  // The skew-aware plan's select partitions sit exactly on the profiled
  // density edges (rows/2 = 204800 and the hot-region end 368640); uniform
  // halving could never produce 368640 (it is not on any dyadic grid of the
  // 409600-row range).
  std::vector<RowRange> slices =
      PartitionSlices(aware.gme_plan, OpKind::kSelect);
  ASSERT_GE(slices.size(), 2u);
  bool edge_lo = false, edge_hi = false;
  for (const RowRange& r : slices) {
    if (r.begin == 204800u) edge_lo = true;
    if (r.begin == 368640u) edge_hi = true;
  }
  EXPECT_TRUE(edge_lo && edge_hi) << "select slices missed the value edges";

  // The runtime response fired too: skewed operators got shrunken morsels.
  int hinted_runs = 0;
  for (const auto& r : aware.runs) hinted_runs += r.skew_hint_ops > 0 ? 1 : 0;
  EXPECT_GE(hinted_runs, 1);
  for (const auto& r : uniform.runs) EXPECT_EQ(r.skew_hint_ops, 0);

  // Bit-identical results across 1/2/4/8 morsel workers (workers only move
  // morsels between threads; fragments concatenate in morsel order).
  for (int workers : {1, 4, 8}) {
    AdaptiveOutcome o = run(MutatorConfig().skew_threshold, workers);
    EXPECT_TRUE(IntermediatesEqual(aware.result, o.result, 0.0))
        << "diverged at " << workers << " workers";
    EXPECT_GE(o.skew_mutations, 1);
  }
}

TEST(SkewAdaptationTest, DynamicPartitionsBeatStaticOnSkewedData) {
  // Fig 12's core claim: adaptive (dynamic) partitioning handles execution
  // skew better than static equi-range partitioning at the same DOP.
  SkewConfig cfg;
  cfg.rows = 200'000;
  auto cat = GenerateSkewed(cfg);
  SimConfig sim = SimConfig::Cores(8, 8);
  EngineConfig ecfg = EngineConfig::WithSim(sim);
  Engine engine(ecfg);
  auto plan = SkewedSelectPlan(*cat, cfg, 30);
  ASSERT_TRUE(plan.ok());
  auto hp = engine.RunHeuristic(plan.ValueOrDie(), 8);
  ASSERT_TRUE(hp.ok());
  auto ap = engine.RunAdaptive(plan.ValueOrDie());
  ASSERT_TRUE(ap.ok());
  // Adaptive should not be slower; typically it is faster under skew.
  EXPECT_LT(ap.ValueOrDie().gme_time_ns, hp.ValueOrDie().time_ns * 1.15);
}

}  // namespace
}  // namespace apq
