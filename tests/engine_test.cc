// Engine facade tests: configuration plumbing, background workload
// construction, seed-salt determinism, and plan-builder error paths.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "plan/builder.h"
#include "workload/tpch.h"

namespace apq {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.lineitem_rows = 10'000;
    cat_ = Tpch::Generate(cfg);
  }
  std::shared_ptr<Catalog> cat_;
};

TEST_F(EngineTest, ConfigSyncsCoresToSimulator) {
  EngineConfig cfg = EngineConfig::WithSim(SimConfig::Cores(12, 6));
  EXPECT_EQ(cfg.convergence.cores, 12);
  EXPECT_EQ(cfg.hp_dop, 12);
}

TEST_F(EngineTest, RunPlanIsDeterministicPerSalt) {
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  auto a = engine.RunSerial(q6.ValueOrDie(), 5);
  auto b = engine.RunSerial(q6.ValueOrDie(), 5);
  auto c = engine.RunSerial(q6.ValueOrDie(), 6);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_DOUBLE_EQ(a.ValueOrDie().time_ns, b.ValueOrDie().time_ns);
  EXPECT_NE(a.ValueOrDie().time_ns, c.ValueOrDie().time_ns);
}

TEST_F(EngineTest, BackgroundTasksHaveDistinctInstancesAndArrivals) {
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  std::vector<const QueryPlan*> mix = {&q6.ValueOrDie()};
  auto bg = engine.BuildBackground(mix, 4, /*spacing_ns=*/1000.0);
  ASSERT_TRUE(bg.ok());
  const auto& tasks = bg.ValueOrDie();
  ASSERT_FALSE(tasks.empty());
  int max_inst = 0;
  for (const auto& t : tasks) {
    EXPECT_GE(t.instance, 1);  // instance 0 is the foreground query
    max_inst = std::max(max_inst, t.instance);
    EXPECT_DOUBLE_EQ(t.arrival_ns, (t.instance - 1) * 1000.0);
  }
  EXPECT_EQ(max_inst, 4);
  // Dependencies stay within each client's own task block.
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (int d : tasks[i].deps) {
      EXPECT_EQ(tasks[d].instance, tasks[i].instance);
    }
  }
}

TEST_F(EngineTest, EmptyBackgroundIsEmpty) {
  Engine engine;
  auto bg = engine.BuildBackground({}, 8);
  ASSERT_TRUE(bg.ok());
  EXPECT_TRUE(bg.ValueOrDie().empty());
}

TEST_F(EngineTest, HeuristicPlanDoesNotMutateInput) {
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  int before = q6.ValueOrDie().num_nodes();
  auto hp = engine.HeuristicPlan(q6.ValueOrDie(), 8);
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(q6.ValueOrDie().num_nodes(), before);
  EXPECT_GT(hp.ValueOrDie().num_nodes(), before);
}

TEST_F(EngineTest, UtilizationWithinUnitInterval) {
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));
  auto q14 = Tpch::Q14(*cat_);
  ASSERT_TRUE(q14.ok());
  auto hp = engine.RunHeuristic(q14.ValueOrDie());
  ASSERT_TRUE(hp.ok());
  EXPECT_GE(hp.ValueOrDie().utilization, 0.0);
  EXPECT_LE(hp.ValueOrDie().utilization, 1.0);
}

TEST_F(EngineTest, InvalidPlanIsRejected) {
  Engine engine;
  QueryPlan empty("empty");
  auto res = engine.RunSerial(empty);
  EXPECT_FALSE(res.ok());
}

TEST_F(EngineTest, AdaptiveRunsRecordMutationsInOrder) {
  EngineConfig cfg = EngineConfig::WithSim(SimConfig::Cores(8, 4));
  Engine engine(cfg);
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  auto ap = engine.RunAdaptive(q6.ValueOrDie());
  ASSERT_TRUE(ap.ok());
  const auto& runs = ap.ValueOrDie().runs;
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].run, static_cast<int>(i));
    EXPECT_GT(runs[i].time_ns, 0);
    // Every non-final run recorded which operator it parallelized.
    if (i + 1 < runs.size()) {
      EXPECT_GE(runs[i].mutated_node, 0) << "run " << i;
      EXPECT_FALSE(runs[i].mutation.empty()) << "run " << i;
    }
  }
  // The plan monotonically grows (mutations only add operators).
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_GE(runs[i].plan_stats.num_nodes, runs[i - 1].plan_stats.num_nodes);
  }
}

TEST_F(EngineTest, SplitWaysReducesConvergenceRuns) {
  // The §4.3 extension: more partitions per invocation, fewer runs.
  auto q6 = Tpch::Q6(*cat_);
  ASSERT_TRUE(q6.ok());
  EngineConfig two = EngineConfig::WithSim(SimConfig::TwoSocket32());
  two.mutator.split_ways = 2;
  EngineConfig eight = EngineConfig::WithSim(SimConfig::TwoSocket32());
  eight.mutator.split_ways = 8;
  Engine e2(two), e8(eight);
  auto r2 = e2.RunAdaptive(q6.ValueOrDie());
  auto r8 = e8.RunAdaptive(q6.ValueOrDie());
  ASSERT_TRUE(r2.ok() && r8.ok());
  EXPECT_LE(r8.ValueOrDie().gme_run, r2.ValueOrDie().gme_run);
}

}  // namespace
}  // namespace apq
