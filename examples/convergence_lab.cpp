// Convergence lab: watch the adaptive-parallelization feedback loop converge
// run by run, and inspect the converged plan and its tomograph.
//
//   $ ./example_convergence_lab [query] [lineitem_rows] [cores]
//   e.g. ./example_convergence_lab Q14 120000 32
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/engine.h"
#include "profile/profiler.h"
#include "workload/tpch.h"

using namespace apq;

int main(int argc, char** argv) {
  std::string query = argc > 1 ? argv[1] : "Q6";
  uint64_t rows = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60'000;
  int cores = argc > 3 ? std::atoi(argv[3]) : 32;

  TpchConfig cfg;
  cfg.lineitem_rows = rows;
  auto catalog = Tpch::Generate(cfg);

  SimConfig sim = SimConfig::Cores(cores, cores / 2);
  sim.noise_sigma = 0.03;
  Engine engine(EngineConfig::WithSim(sim));

  auto serial = Tpch::Query(*catalog, query);
  if (!serial.ok()) {
    std::fprintf(stderr, "unknown query '%s' (try Q4 Q6 Q8 Q9 Q14 Q19 Q22)\n",
                 query.c_str());
    return 1;
  }
  std::printf("serial plan:\n%s\n\n", serial.ValueOrDie().ToString().c_str());

  auto ap = engine.RunAdaptive(serial.ValueOrDie());
  APQ_CHECK(ap.ok());
  const AdaptiveOutcome& o = ap.ValueOrDie();

  std::printf("run-by-run convergence (%s, %lu rows, %d cores):\n",
              query.c_str(), static_cast<unsigned long>(rows), cores);
  double maxt = 0;
  for (const auto& r : o.runs) maxt = std::max(maxt, r.time_ns);
  for (const auto& r : o.runs) {
    int bars = static_cast<int>(r.time_ns / maxt * 48);
    std::printf("%4d %9.3f ms %-8s |%s\n", r.run, r.time_ns / 1e6,
                r.mutation.c_str(), std::string(bars, '#').c_str());
  }
  std::printf("\nGME %.3f ms at run %d (serial %.3f ms, %.1fx); %d runs\n",
              o.gme_time_ns / 1e6, o.gme_run, o.serial_time_ns / 1e6,
              o.Speedup(), o.total_runs);
  std::printf("converged plan: %s\n\n", o.gme_plan.Stats().ToString().c_str());
  std::printf("%s", RenderTomograph(o.gme_profile).c_str());
  return 0;
}
