// Standalone query server: bind the service front-end on a port and serve
// the TPC-H workload queries to any number of concurrent sessions until
// killed.
//
//   $ APQ_HTTP=9417 ./example_service_server 9500
//
// then from another terminal (netcat is a complete client):
//
//   $ printf 'RUN Q6 tag=1\nRUN Q9 tag=2\n' | nc 127.0.0.1 9500
//   $ curl -s http://127.0.0.1:9417/debug/service
//
// The port comes from argv[1], or APQ_SERVICE_PORT when absent. Admission
// limits come from APQ_SERVICE_MAX_CONCURRENT / APQ_SERVICE_QUEUE_DEPTH
// (docs/reference.md has the full knob inventory).
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include "obs/trace.h"
#include "service/query_service.h"
#include "workload/tpch.h"

using namespace apq;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  obs::InitFromEnv();

  service::ServiceConfig cfg = service::ServiceConfig::FromEnv();
  cfg.port = argc > 1 ? std::atoi(argv[1]) : service::ServiceEnvPort();
  if (cfg.port <= 0 || cfg.port > 65535) {
    std::fprintf(stderr,
                 "usage: %s <port>   (or set APQ_SERVICE_PORT)\n", argv[0]);
    return 2;
  }

  TpchConfig tpch;
  tpch.lineitem_rows = 600'000;
  auto catalog = Tpch::Generate(tpch);

  service::QueryService svc;
  Status st = svc.Start(catalog, cfg);
  if (!st.ok()) {
    std::fprintf(stderr, "service failed to start: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("apq query service on 127.0.0.1:%d  "
              "(fleet=%d workers, max_concurrent=%d, queue_depth=%zu)\n",
              svc.port(), svc.fleet_workers(), cfg.max_concurrent,
              cfg.max_queue_depth);
  std::printf("try:  printf 'RUN Q6 tag=1\\n' | nc 127.0.0.1 %d\n",
              svc.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) ::usleep(100 * 1000);

  svc.Stop();
  const service::ServiceStats s = svc.Stats();
  std::printf("served %llu responses (%llu admitted, %llu shed, "
              "%llu promoted)\n",
              static_cast<unsigned long long>(s.responses_total),
              static_cast<unsigned long long>(s.admission.admitted_total),
              static_cast<unsigned long long>(s.admission.shed_total),
              static_cast<unsigned long long>(s.admission.promoted_total));
  return 0;
}
