// Skew handling (paper §4.1.1, Figs 8/12/13): how adaptive parallelization's
// dynamically sized partitions absorb execution skew that defeats static
// equi-range partitioning.
//
//   $ ./example_skew_handling
#include <algorithm>
#include <cstdio>

#include "engine/engine.h"
#include "workload/skew.h"

using namespace apq;

int main() {
  // Fig 13 data: first half random, second half five clusters of identical
  // values. Selecting cluster values produces matches concentrated in the
  // second half of the column.
  SkewConfig scfg;
  scfg.rows = 1'000'000;
  auto catalog = GenerateSkewed(scfg);
  std::printf("skewed column: %lu rows, matches land in the second half\n\n",
              static_cast<unsigned long>(scfg.rows));

  Engine engine(EngineConfig::WithSim(SimConfig::Cores(8, 8)));
  auto plan = SkewedSelectPlan(*catalog, scfg, /*pct_skew=*/30);
  APQ_CHECK(plan.ok());

  // Static equi-range partitioning: 8 equal slices, no matter where the
  // matching tuples live.
  auto hp = engine.RunHeuristic(plan.ValueOrDie(), 8);
  APQ_CHECK(hp.ok());
  std::printf("static 8 partitions, 8 threads:  %8.3f ms\n",
              hp.ValueOrDie().time_ns / 1e6);

  // Adaptive: the operator on the skewed partition keeps turning expensive
  // and keeps splitting "until expensiveness balances out" (paper §4.1.1).
  auto ap = engine.RunAdaptive(plan.ValueOrDie());
  APQ_CHECK(ap.ok());
  const AdaptiveOutcome& o = ap.ValueOrDie();
  std::printf("dynamic partitions, 8 threads:   %8.3f ms  (%d runs)\n\n",
              o.gme_time_ns / 1e6, o.total_runs);

  // Show the dynamically sized partitions of the converged plan (Fig 8):
  // fine partitions over the hot (clustered) region, coarse elsewhere.
  // The gather (fetch-join) over the matching tuples dominates this plan, so
  // its clones carry the interesting partitioning; fall back to the select's
  // slices if the select was the hot operator instead.
  auto reachable = o.gme_plan.TopologicalOrder();
  APQ_CHECK(reachable.ok());
  std::vector<RowRange> slices;
  for (OpKind kind : {OpKind::kFetchJoin, OpKind::kSelect}) {
    for (int id : reachable.ValueOrDie()) {
      const PlanNode& n = o.gme_plan.node(id);
      if (n.kind == kind && n.has_slice) slices.push_back(n.slice);
    }
    if (!slices.empty()) break;
  }
  std::sort(slices.begin(), slices.end(),
            [](const RowRange& a, const RowRange& b) { return a.begin < b.begin; });
  std::printf("converged hot-operator partitions (dynamic sizes, Fig 8):\n");
  for (const auto& s : slices) {
    double pct = 100.0 * s.size() / scfg.rows;
    int bars = std::max(1, static_cast<int>(pct / 2));
    std::printf("  [%9lu, %9lu)  %5.1f%%  %s\n",
                static_cast<unsigned long>(s.begin),
                static_cast<unsigned long>(s.end), pct,
                std::string(bars, '#').c_str());
  }
  std::printf(
      "\nNote how the second half (where the matches cluster) is cut into\n"
      "finer partitions than the cold first half.\n");

  // The same skew is visible *inside* a single operator when the serial plan
  // runs morsel-driven: the profiler's printed report carries a per-operator
  // morsel count and skew column (max/mean morsel wall time).
  EngineConfig mcfg = EngineConfig::WithSim(SimConfig::Cores(8, 8));
  mcfg.use_morsels = true;
  Engine morsel_engine(mcfg);
  auto mr = morsel_engine.RunSerial(plan.ValueOrDie());
  APQ_CHECK(mr.ok());
  std::printf("\nper-operator report of the morsel-driven serial run:\n%s",
              RenderOpReport(mr.ValueOrDie().profile).c_str());
  return 0;
}
