// Quickstart: build a tiny column store, write a serial plan, and let
// adaptive parallelization morph it into a near-optimal parallel plan.
//
//   $ ./example_quickstart
#include <cstdio>

#include "engine/engine.h"
#include "plan/builder.h"
#include "util/rng.h"

using namespace apq;

int main() {
  // 1. Make a table with one million rows.
  Rng rng(1);
  std::vector<int64_t> vals(1'000'000);
  for (auto& v : vals) v = rng.UniformRange(0, 999);
  auto table = std::make_shared<Table>("events");
  APQ_CHECK_OK(table->AddColumn(Column::MakeInt64("score", std::move(vals))));

  Catalog catalog;
  APQ_CHECK_OK(catalog.AddTable(table));
  const Column* score = catalog.GetTable("events")->GetColumn("score");

  // 2. A serial plan: SELECT sum(score) FROM events WHERE score < 100.
  PlanBuilder builder("quickstart");
  int sel = builder.Select(score, Predicate::RangeI64(0, 99));
  int fetch = builder.FetchJoin(score, sel);
  int sum = builder.AggScalar(AggFn::kSum, fetch);
  QueryPlan serial = builder.Result(sum);
  std::printf("%s\n\n", serial.ToString().c_str());

  // 3. An engine simulating the paper's 32-hardware-thread machine.
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));

  auto serial_run = engine.RunSerial(serial);
  APQ_CHECK(serial_run.ok());
  std::printf("serial:   %8.3f ms  (result sum = %.0f)\n",
              serial_run.ValueOrDie().time_ns / 1e6,
              serial_run.ValueOrDie().result.scalar);

  // 4. Adaptive parallelization: repeated invocations, each morphing the
  //    plan by parallelizing the most expensive operator.
  auto adaptive = engine.RunAdaptive(serial);
  APQ_CHECK(adaptive.ok());
  const AdaptiveOutcome& out = adaptive.ValueOrDie();
  std::printf("adaptive: %8.3f ms after %d runs (GME at run %d, %.1fx)\n",
              out.gme_time_ns / 1e6, out.total_runs, out.gme_run,
              out.Speedup());
  std::printf("converged plan: %s\n",
              out.gme_plan.Stats().ToString().c_str());

  // 5. Compare with the static heuristic parallelizer at full DOP.
  auto hp = engine.RunHeuristic(serial);
  APQ_CHECK(hp.ok());
  std::printf("heuristic(32): %5.3f ms, plan: %s\n",
              hp.ValueOrDie().time_ns / 1e6,
              hp.ValueOrDie().stats.ToString().c_str());
  return 0;
}
