// Concurrent workload (paper §4.2.3/§4.2.5): adaptive plans use fewer
// partitions and less of the machine, which pays off when 32 clients compete
// for it.
//
//   $ ./example_concurrent_workload
//
// Watch it live: start with the HTTP introspection endpoint up and poll the
// recent-query ring from another terminal while the clients run —
//
//   $ APQ_HTTP=9417 ./example_concurrent_workload &
//   $ watch -n 0.5 'curl -s http://127.0.0.1:9417/debug/queries'
//   $ curl -s http://127.0.0.1:9417/metrics | grep apq_sched
//   $ curl -s http://127.0.0.1:9417/debug/profile/3   # full EXPLAIN-ANALYZE
//
// Every engine below shares one process-wide query log, so the adaptive and
// per-client serial queries all appear in /debug/queries, newest first.
#include <cstdio>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "sched/morsel_scheduler.h"
#include "workload/tpch.h"

using namespace apq;

// Hardware-truth counterpart of the simulated contention study: several
// engines run queries concurrently, all multiplexing ONE morsel-scheduler
// worker fleet instead of spawning a pool per query (the production
// configuration for heavy multi-query traffic).
static void SharedSchedulerDemo(const std::shared_ptr<Catalog>& catalog) {
  auto sched = std::make_shared<MorselScheduler>();  // hardware-sized fleet
  constexpr int kClients = 4;

  std::vector<std::unique_ptr<Engine>> engines;
  for (int c = 0; c < kClients; ++c) {
    EngineConfig cfg = EngineConfig::WithSim(SimConfig::TwoSocket32());
    cfg.use_morsels = true;
    cfg.morsel_rows = 8192;
    cfg.morsel_scheduler = sched;  // every engine shares the one fleet
    engines.push_back(std::make_unique<Engine>(cfg));
  }

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto q = c % 2 == 0 ? Tpch::Q6(*catalog)
                          : Tpch::Query(*catalog, "Q14");
      APQ_CHECK(q.ok());
      auto r = engines[c]->RunSerial(q.ValueOrDie());
      APQ_CHECK(r.ok());
    });
  }
  for (auto& t : clients) t.join();

  std::printf("\nmorsel scheduler shared by %d concurrent engines:\n",
              kClients);
  std::printf("  workers %d, morsels executed %llu (callers ran %llu)\n",
              sched->num_workers(),
              static_cast<unsigned long long>(sched->total_tasks()),
              static_cast<unsigned long long>(sched->caller_tasks()));
  auto stats = sched->worker_stats();
  for (size_t w = 0; w < stats.size(); ++w) {
    std::printf("  worker %zu: %llu morsels (%llu stolen)\n", w,
                static_cast<unsigned long long>(stats[w].tasks),
                static_cast<unsigned long long>(stats[w].steals));
  }
}

int main() {
  TpchConfig cfg;
  cfg.lineitem_rows = 60'000;
  auto catalog = Tpch::Generate(cfg);
  Engine engine(EngineConfig::WithSim(SimConfig::TwoSocket32()));

  auto q6 = Tpch::Q6(*catalog);
  APQ_CHECK(q6.ok());

  // A 32-client background batch of heuristically parallelized queries.
  auto hp_plan = engine.HeuristicPlan(q6.ValueOrDie(), 32);
  APQ_CHECK(hp_plan.ok());
  std::vector<const QueryPlan*> mix = {&hp_plan.ValueOrDie()};
  auto bg = engine.BuildBackground(mix, 32, /*spacing_ns=*/0.3e6);
  APQ_CHECK(bg.ok());

  // Heuristic vs adaptive, isolated and under load.
  auto hp_iso = engine.RunHeuristic(q6.ValueOrDie());
  auto ap_iso = engine.RunAdaptive(q6.ValueOrDie());
  auto hp_conc = engine.RunHeuristic(q6.ValueOrDie(), -1, bg.ValueOrDie());
  auto ap_conc = engine.RunAdaptive(q6.ValueOrDie(), bg.ValueOrDie());
  APQ_CHECK(hp_iso.ok() && ap_iso.ok() && hp_conc.ok() && ap_conc.ok());

  std::printf("TPC-H Q6, 32 simulated hardware threads\n\n");
  std::printf("                 isolated    32-client concurrent\n");
  std::printf("heuristic (32p)  %7.3f ms  %7.3f ms\n",
              hp_iso.ValueOrDie().time_ns / 1e6,
              hp_conc.ValueOrDie().time_ns / 1e6);
  std::printf("adaptive         %7.3f ms  %7.3f ms\n",
              ap_iso.ValueOrDie().gme_time_ns / 1e6,
              ap_conc.ValueOrDie().gme_time_ns / 1e6);

  PlanStats iso_stats = ap_iso.ValueOrDie().gme_plan.Stats();
  PlanStats conc_stats = ap_conc.ValueOrDie().gme_plan.Stats();
  std::printf(
      "\nadaptive plan shape:    isolated %d nodes, under load %d nodes\n",
      iso_stats.num_nodes, conc_stats.num_nodes);
  std::printf(
      "utilization (isolated): heuristic %.0f%%, adaptive %.0f%%\n",
      hp_iso.ValueOrDie().utilization * 100,
      ap_iso.ValueOrDie().gme_profile.utilization * 100);
  std::printf(
      "\nThe adaptive plan was tuned by execution feedback *under load*, so\n"
      "its degree of parallelism reflects the resources actually available\n"
      "(paper: 'adaptive parallelized plans are resource contention aware').\n");

  SharedSchedulerDemo(catalog);
  return 0;
}
