// Small summary-statistics helpers used by benches and the convergence tests.
#ifndef APQ_UTIL_STATS_H_
#define APQ_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace apq {

/// \brief Accumulates a stream of doubles and reports summary statistics.
class SummaryStats {
 public:
  void Add(double v) {
    values_.push_back(v);
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  size_t count() const { return values_.size(); }
  double sum() const { return sum_; }
  double min() const { return values_.empty() ? 0.0 : min_; }
  double max() const { return values_.empty() ? 0.0 : max_; }
  double mean() const { return values_.empty() ? 0.0 : sum_ / values_.size(); }

  double stddev() const {
    if (values_.size() < 2) return 0.0;
    double m = mean();
    double acc = 0.0;
    for (double v : values_) acc += (v - m) * (v - m);
    return std::sqrt(acc / (values_.size() - 1));
  }

  /// q in [0,1]; nearest-rank percentile of the observed values.
  double Percentile(double q) const {
    if (values_.empty()) return 0.0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

}  // namespace apq

#endif  // APQ_UTIL_STATS_H_
