// ASCII table printer used by the bench harnesses to emit paper-style tables.
#ifndef APQ_UTIL_TABLE_PRINTER_H_
#define APQ_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace apq {

/// \brief Collects rows of string cells and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  static std::string Fmt(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
  }
  static std::string Fmt(int64_t v) { return std::to_string(v); }

  void Print(FILE* out = stdout) const {
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
    for (const auto& r : rows_) {
      for (size_t i = 0; i < r.size() && i < widths.size(); ++i) {
        if (r[i].size() > widths[i]) widths[i] = r[i].size();
      }
    }
    PrintRule(out, widths);
    PrintRow(out, header_, widths);
    PrintRule(out, widths);
    for (const auto& r : rows_) PrintRow(out, r, widths);
    PrintRule(out, widths);
  }

 private:
  static void PrintRule(FILE* out, const std::vector<size_t>& widths) {
    std::fputc('+', out);
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputc('\n', out);
  }
  static void PrintRow(FILE* out, const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::fputc('|', out);
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      std::fprintf(out, " %-*s |", static_cast<int>(widths[i]), cell.c_str());
    }
    std::fputc('\n', out);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace apq

#endif  // APQ_UTIL_TABLE_PRINTER_H_
