// ASCII table printer used by the bench harnesses to emit paper-style tables.
#ifndef APQ_UTIL_TABLE_PRINTER_H_
#define APQ_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace apq {

/// \brief Collects rows of string cells and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  static std::string Fmt(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
  }
  static std::string Fmt(int64_t v) { return std::to_string(v); }

  /// The rendered table as a string (for log sinks and test assertions).
  std::string ToString() const {
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
    for (const auto& r : rows_) {
      for (size_t i = 0; i < r.size() && i < widths.size(); ++i) {
        if (r[i].size() > widths[i]) widths[i] = r[i].size();
      }
    }
    std::string out;
    AppendRule(&out, widths);
    AppendRow(&out, header_, widths);
    AppendRule(&out, widths);
    for (const auto& r : rows_) AppendRow(&out, r, widths);
    AppendRule(&out, widths);
    return out;
  }

  void Print(FILE* out = stdout) const {
    std::fputs(ToString().c_str(), out);
  }

 private:
  static void AppendRule(std::string* out, const std::vector<size_t>& widths) {
    out->push_back('+');
    for (size_t w : widths) {
      out->append(w + 2, '-');
      out->push_back('+');
    }
    out->push_back('\n');
  }
  static void AppendRow(std::string* out, const std::vector<std::string>& row,
                        const std::vector<size_t>& widths) {
    out->push_back('|');
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out->push_back(' ');
      out->append(cell);
      out->append(widths[i] > cell.size() ? widths[i] - cell.size() : 0, ' ');
      out->append(" |");
    }
    out->push_back('\n');
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace apq

#endif  // APQ_UTIL_TABLE_PRINTER_H_
