// Tiny shared primitives used across the execution tiers: the 64-bit hash
// finalizer (one definition for the join hash index and the aggregation
// tables, so bucket addressing and radix partitioning never drift apart),
// a monotonic nanosecond clock for wall-clock/hardware-truth timings, and
// power-of-two rounding for bucket/partition sizing.
#ifndef APQ_UTIL_HASH_CLOCK_H_
#define APQ_UTIL_HASH_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace apq {

/// Murmur3/splitmix-style 64-bit finalizer over an int64 key.
inline uint64_t MixHash64(int64_t key) {
  uint64_t z = static_cast<uint64_t>(key) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Smallest power of two >= v (v = 0 or 1 gives 1).
inline uint64_t NextPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Monotonic wall clock in nanoseconds (steady_clock since epoch).
inline double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace apq

#endif  // APQ_UTIL_HASH_CLOCK_H_
