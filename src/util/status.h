// Status / StatusOr error model, in the style of Arrow and RocksDB.
//
// Library code never throws for recoverable errors; operations that can fail
// return a Status (or StatusOr<T> when they also produce a value). CHECK-style
// macros are reserved for programmer errors (invariant violations).
#ifndef APQ_UTIL_STATUS_H_
#define APQ_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace apq {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kMisaligned,      // tuple-reconstruction boundary misalignment (Fig 9/10)
  kUnsupported,
  kInternal,
};

/// \brief Lightweight error carrier: a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Misaligned(std::string m) {
    return Status(StatusCode::kMisaligned, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kMisaligned: return "Misaligned";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief A Status or a value of type T; inspect ok() before ValueOrDie().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {}  // NOLINT implicit
  StatusOr(T v) : value_(std::move(v)) {}        // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& ValueOrDie() {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return value_;
  }
  const T& ValueOrDie() const {
    return const_cast<StatusOr*>(this)->ValueOrDie();
  }
  T&& MoveValueOrDie() { return std::move(ValueOrDie()); }

 private:
  Status status_;
  T value_{};
};

#define APQ_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::apq::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

#define APQ_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "APQ_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define APQ_CHECK_OK(expr)                                                 \
  do {                                                                     \
    ::apq::Status _st = (expr);                                            \
    if (!_st.ok()) {                                                       \
      std::fprintf(stderr, "APQ_CHECK_OK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, _st.ToString().c_str());                      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

}  // namespace apq

#endif  // APQ_UTIL_STATUS_H_
