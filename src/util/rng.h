// Deterministic pseudo-random number generation.
//
// Every source of randomness in the library (data generation, simulator noise,
// scheduling jitter) flows from an explicitly seeded Rng so that experiments
// are exactly reproducible.
#ifndef APQ_UTIL_RNG_H_
#define APQ_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace apq {

/// \brief xoshiro256** seeded via splitmix64; fast and statistically solid.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 to fill the state from a single word.
    for (auto& w : s_) {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      w = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Zipfian rank in [0, n) with exponent theta (approximate inverse CDF).
  uint64_t Zipf(uint64_t n, double theta) {
    // Rejection-free approximation adequate for skewed workload generation.
    double u = NextDouble();
    double p = std::pow(u, 1.0 / (1.0 - theta));
    uint64_t r = static_cast<uint64_t>(p * static_cast<double>(n));
    return r >= n ? n - 1 : r;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace apq

#endif  // APQ_UTIL_RNG_H_
