// TPC-H-shaped workload: a from-scratch data generator with the benchmark's
// schema, key relationships and uniform distributions, plus the paper's query
// subset (Table 4: simple Q6/Q14; complex Q4/Q8/Q9/Q19/Q22), expressed as
// single-attribute group-by plans as the paper's prototype required.
//
// Substitution note (DESIGN.md §2): this replaces dbgen. TPC-H data is
// uniform; the experiments depend on plan shape and uniformity, not on the
// authors' absolute scale factors.
#ifndef APQ_WORKLOAD_TPCH_H_
#define APQ_WORKLOAD_TPCH_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "storage/table.h"
#include "util/status.h"

namespace apq {

/// \brief Generator sizing. Row counts of the dimension tables derive from
/// lineitem_rows with TPC-H-like ratios.
struct TpchConfig {
  uint64_t lineitem_rows = 120'000;
  uint64_t seed = 7;

  uint64_t orders_rows() const { return std::max<uint64_t>(lineitem_rows / 4, 64); }
  uint64_t part_rows() const { return std::max<uint64_t>(lineitem_rows / 30, 64); }
  uint64_t customer_rows() const {
    return std::max<uint64_t>(orders_rows() / 10, 32);
  }
  uint64_t supplier_rows() const {
    return std::max<uint64_t>(part_rows() / 40, 16);
  }
};

/// Day numbers bounding the generated shipdates (days since 1970-01-01,
/// TPC-H's 1992-01-01 .. 1998-12-31 window).
constexpr int64_t kTpchDate0 = 8035;
constexpr int64_t kTpchDateSpan = 2556;

/// \brief TPC-H data + query-plan factory.
class Tpch {
 public:
  /// Generates the catalog: lineitem, orders, part, customer, supplier,
  /// nation. Foreign keys are dense row indices with full integrity (every
  /// fk matches exactly one dimension row).
  static std::shared_ptr<Catalog> Generate(const TpchConfig& config);

  /// The paper's evaluation queries, by name: "Q4","Q6","Q8","Q9","Q14",
  /// "Q19","Q22".
  static StatusOr<QueryPlan> Query(const Catalog& cat, const std::string& name);
  static std::vector<std::string> QueryNames();

  // Individual builders (serial plans).
  static StatusOr<QueryPlan> Q4(const Catalog& cat);
  static StatusOr<QueryPlan> Q6(const Catalog& cat);
  /// Q6 with explicit predicate control, used by the Fig 14 / Table 2 select
  /// experiments. `match_fraction` = fraction of lineitem producing output
  /// (the paper's "0% selectivity" = all output corresponds to 1.0 here).
  static StatusOr<QueryPlan> Q6Selectivity(const Catalog& cat,
                                           double match_fraction);
  static StatusOr<QueryPlan> Q8(const Catalog& cat);
  static StatusOr<QueryPlan> Q9(const Catalog& cat);
  static StatusOr<QueryPlan> Q14(const Catalog& cat);
  static StatusOr<QueryPlan> Q19(const Catalog& cat);
  static StatusOr<QueryPlan> Q22(const Catalog& cat);
};

}  // namespace apq

#endif  // APQ_WORKLOAD_TPCH_H_
