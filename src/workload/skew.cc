#include "workload/skew.h"

#include "plan/builder.h"
#include "util/rng.h"

namespace apq {

std::shared_ptr<Catalog> GenerateSkewed(const SkewConfig& config) {
  auto cat = std::make_shared<Catalog>();
  Rng rng(config.seed);
  const uint64_t n = config.rows;
  const uint64_t half = n / 2;
  std::vector<int64_t> v(n);
  // First half: random values well above the cluster constants.
  for (uint64_t i = 0; i < half; ++i) {
    v[i] = static_cast<int64_t>(config.clusters) +
           static_cast<int64_t>(
               rng.Uniform(static_cast<uint64_t>(config.random_max)));
  }
  // Second half: `clusters` sequential runs of identical values 0..c-1
  // (Fig 13: "5 sequential clusters of 100 million identical tuples").
  const uint64_t per_cluster = (n - half) / config.clusters;
  for (uint64_t i = half; i < n; ++i) {
    int64_t c = static_cast<int64_t>((i - half) / per_cluster);
    if (c >= config.clusters) c = config.clusters - 1;
    v[i] = c;
  }
  auto t = std::make_shared<Table>("skewed");
  APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("v", std::move(v))));
  APQ_CHECK_OK(cat->AddTable(t));
  return cat;
}

StatusOr<QueryPlan> SkewedSelectPlan(const Catalog& cat,
                                     const SkewConfig& config, int pct_skew) {
  const Table* t = cat.GetTable("skewed");
  if (!t) return Status::NotFound("table 'skewed'");
  const Column* v = t->GetColumn("v");
  // Each cluster holds (rows/2)/clusters rows = 10% of the table for the
  // default 5 clusters. pct_skew in {10,20,..,50} selects 1..5 clusters.
  int clusters_hit =
      std::max(1, std::min(config.clusters,
                           pct_skew * config.clusters * 2 / 100));
  int64_t hi = clusters_hit - 1;
  if (pct_skew > 50) {
    // Beyond the clusters (50% of the table) the predicate widens into the
    // uniform random domain: every cluster matches plus the fraction
    // (pct-50)/50 of the random half, scattered evenly across it. Total
    // selectivity ~= pct%, with the dense second half still contributing the
    // positional concentration the Fig 12 skew axis measures.
    clusters_hit = config.clusters;
    double q = std::min(1.0, (pct_skew - 50) / 50.0);
    hi = config.clusters +
         static_cast<int64_t>(q * static_cast<double>(config.random_max -
                                                      config.clusters));
  }
  PlanBuilder b("skewed_select_" + std::to_string(pct_skew));
  int sel = b.Select(v, Predicate::RangeI64(0, hi));
  // Fetch + sum keeps the output from being dead code and adds the
  // materialization the paper's select plans have.
  int fv = b.FetchJoin(v, sel);
  int sum = b.AggScalar(AggFn::kSum, fv);
  return b.Result(sum);
}

}  // namespace apq
