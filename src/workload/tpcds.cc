#include "workload/tpcds.h"

#include <cmath>

#include "plan/builder.h"
#include "util/rng.h"

namespace apq {

namespace {

const char* kCategories[] = {"Books", "Electronics", "Home", "Jewelry",
                             "Men", "Music", "Shoes", "Sports", "Toys",
                             "Women"};
const char* kStates[] = {"CA", "NY", "TX", "WA", "IL", "GA", "FL", "OH"};

const Column* Col(const Catalog& cat, const std::string& table,
                  const std::string& col) {
  const Table* t = cat.GetTable(table);
  APQ_CHECK(t != nullptr);
  const Column* c = t->GetColumn(col);
  APQ_CHECK(c != nullptr);
  return c;
}

}  // namespace

std::shared_ptr<Catalog> Tpcds::Generate(const TpcdsConfig& config) {
  auto cat = std::make_shared<Catalog>();
  Rng rng(config.seed);

  const uint64_t nf = config.store_sales_rows;
  const uint64_t ni = config.item_rows;
  const uint64_t nd = config.date_rows;
  const uint64_t ns = config.store_rows;

  // --- store_sales (fact, skewed) -----------------------------------------
  // Rows are appended in date order (as real fact tables are), and the last
  // ~eighth of each year is a seasonal burst: 40% of the year's sales land
  // there. A date-range selection therefore matches a *contiguous, uneven*
  // region of the table — static equi-range partitions see very different
  // match counts (execution skew), while the value distribution of items is
  // Zipfian (popular products dominate).
  {
    auto t = std::make_shared<Table>("store_sales");
    std::vector<int64_t> date(nf), item(nf), store(nf), qty(nf);
    std::vector<double> price(nf), ext(nf);
    const uint64_t years = std::max<uint64_t>(nd / 365, 1);
    const uint64_t rows_per_year = nf / years;
    uint64_t row = 0;
    for (uint64_t y = 0; y < years && row < nf; ++y) {
      uint64_t year_rows = (y == years - 1) ? nf - row : rows_per_year;
      uint64_t burst_rows = year_rows / 2;  // 50% in the season burst
      uint64_t normal_rows = year_rows - burst_rows;
      for (uint64_t k = 0; k < year_rows && row < nf; ++k, ++row) {
        int64_t day;
        if (k < normal_rows) {
          // Spread over the first ~345 days.
          day = static_cast<int64_t>(y * 365 +
                                     (k * 345) / std::max<uint64_t>(normal_rows, 1));
        } else {
          // Burst: the last 20 days of the year.
          day = static_cast<int64_t>(
              y * 365 + 345 +
              ((k - normal_rows) * 20) / std::max<uint64_t>(burst_rows, 1));
        }
        date[row] = day;
        item[row] = static_cast<int64_t>(rng.Zipf(ni, config.zipf_theta));
        store[row] = static_cast<int64_t>(rng.Uniform(ns));
        qty[row] = rng.UniformRange(1, 100);
        price[row] = 1.0 + rng.NextDouble() * 299.0;
        ext[row] = price[row] * static_cast<double>(qty[row]);
      }
    }
    APQ_CHECK_OK(
        t->AddColumn(Column::MakeInt64("ss_sold_date_sk", std::move(date))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("ss_item_sk", std::move(item))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("ss_store_sk", std::move(store))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("ss_quantity", std::move(qty))));
    APQ_CHECK_OK(
        t->AddColumn(Column::MakeFloat64("ss_sales_price", std::move(price))));
    APQ_CHECK_OK(
        t->AddColumn(Column::MakeFloat64("ss_ext_sales_price", std::move(ext))));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  // --- item -----------------------------------------------------------------
  {
    auto t = std::make_shared<Table>("item");
    std::vector<int64_t> sk(ni), brand(ni);
    std::vector<std::string> category(ni);
    for (uint64_t i = 0; i < ni; ++i) {
      sk[i] = static_cast<int64_t>(i);
      brand[i] = rng.UniformRange(1, 400);
      category[i] = kCategories[rng.Uniform(10)];
    }
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("i_item_sk", std::move(sk))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("i_brand_id", std::move(brand))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("i_category", category)));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  // --- date_dim --------------------------------------------------------------
  {
    auto t = std::make_shared<Table>("date_dim");
    std::vector<int64_t> sk(nd), year(nd), moy(nd);
    for (uint64_t i = 0; i < nd; ++i) {
      sk[i] = static_cast<int64_t>(i);
      year[i] = 1998 + static_cast<int64_t>(i / 365);
      moy[i] = 1 + static_cast<int64_t>((i % 365) / 31);
    }
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("d_date_sk", std::move(sk))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("d_year", std::move(year))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("d_moy", std::move(moy))));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  // --- store -----------------------------------------------------------------
  {
    auto t = std::make_shared<Table>("store");
    std::vector<int64_t> sk(ns);
    std::vector<std::string> state(ns);
    for (uint64_t i = 0; i < ns; ++i) {
      sk[i] = static_cast<int64_t>(i);
      state[i] = kStates[rng.Uniform(8)];
    }
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("s_store_sk", std::move(sk))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("s_state", state)));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  return cat;
}

std::vector<std::string> Tpcds::QueryNames() {
  return {"DS1", "DS2", "DS3", "DS4", "DS5"};
}

StatusOr<QueryPlan> Tpcds::Query(const Catalog& cat, const std::string& name) {
  const uint64_t n_sales = cat.GetTable("store_sales")->row_count();
  (void)n_sales;

  if (name == "DS1") {
    // Seasonal revenue per item category: date select hits the burst region.
    PlanBuilder b("tpcds_ds1");
    int sel = b.Select(Col(cat, "store_sales", "ss_sold_date_sk"),
                       Predicate::RangeI64(340, 364));
    int fitem = b.FetchJoin(Col(cat, "store_sales", "ss_item_sk"), sel);
    int jn = b.Join(fitem, Col(cat, "item", "i_item_sk"));
    int fcat = b.FetchJoin(Col(cat, "item", "i_category"), jn, FetchSide::kRight);
    int fprice = b.FetchJoin(Col(cat, "store_sales", "ss_ext_sales_price"), jn,
                             FetchSide::kLeft);
    int gb = b.GroupBy(fcat);
    int ag = b.AggGrouped(AggFn::kSum, gb, fprice);
    int srt = b.Sort(ag, true);
    return b.Result(srt);
  }
  if (name == "DS2") {
    // Bulk purchases: quantity filter + revenue sum (select-dominated).
    PlanBuilder b("tpcds_ds2");
    int sel = b.Select(Col(cat, "store_sales", "ss_quantity"),
                       Predicate::RangeI64(80, 100));
    int fprice =
        b.FetchJoin(Col(cat, "store_sales", "ss_ext_sales_price"), sel);
    int sum = b.AggScalar(AggFn::kSum, fprice);
    return b.Result(sum);
  }
  if (name == "DS3") {
    // Season-plus-quarter revenue per brand (join-dominated; the window
    // covers one seasonal burst, so matches stay position-clustered).
    PlanBuilder b("tpcds_ds3");
    int sel = b.Select(Col(cat, "store_sales", "ss_sold_date_sk"),
                       Predicate::RangeI64(345, 475));
    int fitem = b.FetchJoin(Col(cat, "store_sales", "ss_item_sk"), sel);
    int jn = b.Join(fitem, Col(cat, "item", "i_item_sk"));
    int fbrand =
        b.FetchJoin(Col(cat, "item", "i_brand_id"), jn, FetchSide::kRight);
    int fprice = b.FetchJoin(Col(cat, "store_sales", "ss_ext_sales_price"), jn,
                             FetchSide::kLeft);
    int gb = b.GroupBy(fbrand);
    int ag = b.AggGrouped(AggFn::kSum, gb, fprice);
    int srt = b.Sort(ag, true);
    return b.Result(srt);
  }
  if (name == "DS4") {
    // Seasonal revenue per store.
    PlanBuilder b("tpcds_ds4");
    int sel = b.Select(Col(cat, "store_sales", "ss_sold_date_sk"),
                       Predicate::RangeI64(705, 729));
    int fstore = b.FetchJoin(Col(cat, "store_sales", "ss_store_sk"), sel);
    int jn = b.Join(fstore, Col(cat, "store", "s_store_sk"));
    int fsk2 =
        b.FetchJoin(Col(cat, "store", "s_store_sk"), jn, FetchSide::kRight);
    int fprice = b.FetchJoin(Col(cat, "store_sales", "ss_ext_sales_price"), jn,
                             FetchSide::kLeft);
    int gb = b.GroupBy(fsk2);
    int ag = b.AggGrouped(AggFn::kSum, gb, fprice);
    int srt = b.Sort(ag, true);
    return b.Result(srt);
  }
  if (name == "DS5") {
    // Hot-item drill-down: the Zipf head makes matches frequent and
    // position-independent, while quantity restricts them.
    PlanBuilder b("tpcds_ds5");
    int sel = b.Select(Col(cat, "store_sales", "ss_item_sk"),
                       Predicate::RangeI64(0, 15));
    int sel2 = b.Select(Col(cat, "store_sales", "ss_quantity"),
                        Predicate::RangeI64(1, 50), sel);
    int fprice =
        b.FetchJoin(Col(cat, "store_sales", "ss_ext_sales_price"), sel2);
    int fqty = b.FetchJoin(Col(cat, "store_sales", "ss_quantity"), sel2);
    int rev = b.Map2(MapFn::kMul, fprice, fqty, "weighted");
    int sum = b.AggScalar(AggFn::kSum, rev);
    return b.Result(sum);
  }
  return Status::NotFound("unknown TPC-DS query '" + name + "'");
}

}  // namespace apq
