#include "workload/tpch.h"

#include <algorithm>

#include "plan/builder.h"
#include "util/rng.h"

namespace apq {

namespace {

const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kTypePrefix[] = {"STANDARD", "SMALL", "MEDIUM",
                             "LARGE", "ECONOMY", "PROMO"};
const char* kTypeMid[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                          "BRUSHED"};
const char* kTypeMetal[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSize[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainerKind[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                                "CAN", "DRUM"};
const char* kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                        "FOB"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

const Column* Col(const Catalog& cat, const std::string& table,
                  const std::string& col) {
  const Table* t = cat.GetTable(table);
  APQ_CHECK(t != nullptr);
  const Column* c = t->GetColumn(col);
  APQ_CHECK(c != nullptr);
  return c;
}

}  // namespace

std::shared_ptr<Catalog> Tpch::Generate(const TpchConfig& config) {
  auto cat = std::make_shared<Catalog>();
  Rng rng(config.seed);

  const uint64_t nl = config.lineitem_rows;
  const uint64_t no = config.orders_rows();
  const uint64_t np = config.part_rows();
  const uint64_t nc = config.customer_rows();
  const uint64_t ns = config.supplier_rows();
  const uint64_t nn = 25;

  // --- lineitem -----------------------------------------------------------
  {
    auto t = std::make_shared<Table>("lineitem");
    std::vector<int64_t> okey(nl), pkey(nl), skey(nl), qty(nl), ship(nl),
        commit(nl), receipt(nl);
    std::vector<double> price(nl), disc(nl), tax(nl);
    std::vector<std::string> rflag(nl), mode(nl), instruct(nl);
    for (uint64_t i = 0; i < nl; ++i) {
      okey[i] = static_cast<int64_t>(rng.Uniform(no));
      pkey[i] = static_cast<int64_t>(rng.Uniform(np));
      skey[i] = static_cast<int64_t>(rng.Uniform(ns));
      qty[i] = rng.UniformRange(1, 50);
      price[i] = 900.0 + rng.NextDouble() * 104100.0;
      disc[i] = 0.01 * static_cast<double>(rng.Uniform(11));
      tax[i] = 0.01 * static_cast<double>(rng.Uniform(9));
      ship[i] = kTpchDate0 + rng.UniformRange(0, kTpchDateSpan - 1);
      commit[i] = ship[i] + rng.UniformRange(-30, 30);
      receipt[i] = ship[i] + rng.UniformRange(1, 30);
      rflag[i] = (ship[i] < kTpchDate0 + 1200) ? (rng.Uniform(2) ? "A" : "R")
                                               : "N";
      mode[i] = kModes[rng.Uniform(7)];
      instruct[i] = rng.Uniform(4) == 0 ? "DELIVER IN PERSON" : "NONE";
    }
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("l_orderkey", std::move(okey))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("l_partkey", std::move(pkey))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("l_suppkey", std::move(skey))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("l_quantity", std::move(qty))));
    APQ_CHECK_OK(
        t->AddColumn(Column::MakeFloat64("l_extendedprice", std::move(price))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeFloat64("l_discount", std::move(disc))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeFloat64("l_tax", std::move(tax))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeDate("l_shipdate", std::move(ship))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeDate("l_commitdate", std::move(commit))));
    APQ_CHECK_OK(
        t->AddColumn(Column::MakeDate("l_receiptdate", std::move(receipt))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("l_returnflag", rflag)));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("l_shipmode", mode)));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("l_shipinstruct", instruct)));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  // --- orders --------------------------------------------------------------
  {
    auto t = std::make_shared<Table>("orders");
    std::vector<int64_t> okey(no), ckey(no), odate(no);
    std::vector<double> total(no);
    std::vector<std::string> prio(no);
    for (uint64_t i = 0; i < no; ++i) {
      okey[i] = static_cast<int64_t>(i);
      ckey[i] = static_cast<int64_t>(rng.Uniform(nc));
      odate[i] = kTpchDate0 + rng.UniformRange(0, kTpchDateSpan - 120);
      total[i] = 1000.0 + rng.NextDouble() * 450000.0;
      prio[i] = kPriorities[rng.Uniform(5)];
    }
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("o_orderkey", std::move(okey))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("o_custkey", std::move(ckey))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeDate("o_orderdate", std::move(odate))));
    APQ_CHECK_OK(
        t->AddColumn(Column::MakeFloat64("o_totalprice", std::move(total))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("o_orderpriority", prio)));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  // --- part ----------------------------------------------------------------
  {
    auto t = std::make_shared<Table>("part");
    std::vector<int64_t> pk(np), size(np);
    std::vector<double> retail(np);
    std::vector<std::string> type(np), brand(np), container(np);
    for (uint64_t i = 0; i < np; ++i) {
      pk[i] = static_cast<int64_t>(i);
      size[i] = rng.UniformRange(1, 50);
      retail[i] = 900.0 + static_cast<double>(i % 1000);
      type[i] = std::string(kTypePrefix[rng.Uniform(6)]) + " " +
                kTypeMid[rng.Uniform(5)] + " " + kTypeMetal[rng.Uniform(5)];
      brand[i] = "Brand#" + std::to_string(rng.UniformRange(11, 55));
      container[i] = std::string(kContainerSize[rng.Uniform(5)]) + " " +
                     kContainerKind[rng.Uniform(8)];
    }
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("p_partkey", std::move(pk))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("p_size", std::move(size))));
    APQ_CHECK_OK(
        t->AddColumn(Column::MakeFloat64("p_retailprice", std::move(retail))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("p_type", type)));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("p_brand", brand)));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("p_container", container)));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  // --- customer -------------------------------------------------------------
  {
    auto t = std::make_shared<Table>("customer");
    std::vector<int64_t> ck(nc), nk(nc);
    std::vector<double> bal(nc);
    std::vector<std::string> phone(nc), seg(nc);
    for (uint64_t i = 0; i < nc; ++i) {
      ck[i] = static_cast<int64_t>(i);
      nk[i] = static_cast<int64_t>(rng.Uniform(nn));
      bal[i] = -999.0 + rng.NextDouble() * 10998.0;
      phone[i] = std::to_string(10 + nk[i]) + "-" +
                 std::to_string(100 + rng.Uniform(900));
      seg[i] = kSegments[rng.Uniform(5)];
    }
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("c_custkey", std::move(ck))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("c_nationkey", std::move(nk))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeFloat64("c_acctbal", std::move(bal))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("c_phone", phone)));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("c_mktsegment", seg)));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  // --- supplier --------------------------------------------------------------
  {
    auto t = std::make_shared<Table>("supplier");
    std::vector<int64_t> sk(ns), nk(ns);
    for (uint64_t i = 0; i < ns; ++i) {
      sk[i] = static_cast<int64_t>(i);
      nk[i] = static_cast<int64_t>(rng.Uniform(nn));
    }
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("s_suppkey", std::move(sk))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("s_nationkey", std::move(nk))));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  // --- nation ----------------------------------------------------------------
  {
    auto t = std::make_shared<Table>("nation");
    std::vector<int64_t> nk(nn), rk(nn);
    std::vector<std::string> name(nn);
    for (uint64_t i = 0; i < nn; ++i) {
      nk[i] = static_cast<int64_t>(i);
      rk[i] = static_cast<int64_t>(i % 5);
      name[i] = kNations[i];
    }
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("n_nationkey", std::move(nk))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeInt64("n_regionkey", std::move(rk))));
    APQ_CHECK_OK(t->AddColumn(Column::MakeString("n_name", name)));
    APQ_CHECK_OK(cat->AddTable(t));
  }

  return cat;
}

std::vector<std::string> Tpch::QueryNames() {
  return {"Q4", "Q6", "Q8", "Q9", "Q14", "Q19", "Q22"};
}

StatusOr<QueryPlan> Tpch::Query(const Catalog& cat, const std::string& name) {
  if (name == "Q4") return Q4(cat);
  if (name == "Q6") return Q6(cat);
  if (name == "Q8") return Q8(cat);
  if (name == "Q9") return Q9(cat);
  if (name == "Q14") return Q14(cat);
  if (name == "Q19") return Q19(cat);
  if (name == "Q22") return Q22(cat);
  return Status::NotFound("unknown TPC-H query '" + name + "'");
}

StatusOr<QueryPlan> Tpch::Q4(const Catalog& cat) {
  // Orders placed in one quarter, counted per priority (single-attribute
  // group-by form of the order-priority checking query).
  PlanBuilder b("tpch_q4");
  int sel = b.Select(Col(cat, "orders", "o_orderdate"),
                     Predicate::RangeI64(kTpchDate0 + 730, kTpchDate0 + 819));
  int prio = b.FetchJoin(Col(cat, "orders", "o_orderpriority"), sel);
  int gb = b.GroupBy(prio);
  int cnt = b.AggGrouped(AggFn::kCount, gb);
  int srt = b.Sort(cnt);
  return b.Result(srt);
}

StatusOr<QueryPlan> Tpch::Q6(const Catalog& cat) {
  PlanBuilder b("tpch_q6");
  int sel1 = b.Select(Col(cat, "lineitem", "l_shipdate"),
                      Predicate::RangeI64(kTpchDate0 + 365, kTpchDate0 + 729));
  int sel2 = b.Select(Col(cat, "lineitem", "l_discount"),
                      Predicate::RangeF64(0.05, 0.07), sel1);
  int sel3 = b.Select(Col(cat, "lineitem", "l_quantity"),
                      Predicate::RangeI64(1, 23), sel2);
  int fp = b.FetchJoin(Col(cat, "lineitem", "l_extendedprice"), sel3);
  int fd = b.FetchJoin(Col(cat, "lineitem", "l_discount"), sel3);
  int rev = b.Map2(MapFn::kMul, fp, fd, "revenue");
  int sum = b.AggScalar(AggFn::kSum, rev);
  return b.Result(sum);
}

StatusOr<QueryPlan> Tpch::Q6Selectivity(const Catalog& cat,
                                        double match_fraction) {
  // One range predicate on l_shipdate tuned to match the requested fraction
  // (dates are uniform over the window).
  PlanBuilder b("tpch_q6_sel");
  int64_t hi =
      kTpchDate0 + static_cast<int64_t>(match_fraction * kTpchDateSpan);
  int sel = b.Select(Col(cat, "lineitem", "l_shipdate"),
                     Predicate::RangeI64(kTpchDate0, hi - 1));
  int fp = b.FetchJoin(Col(cat, "lineitem", "l_extendedprice"), sel);
  int fd = b.FetchJoin(Col(cat, "lineitem", "l_discount"), sel);
  int rev = b.Map2(MapFn::kMul, fp, fd, "revenue");
  int sum = b.AggScalar(AggFn::kSum, rev);
  return b.Result(sum);
}

StatusOr<QueryPlan> Tpch::Q8(const Catalog& cat) {
  // National market share: revenue per supplier nation for one part type.
  PlanBuilder b("tpch_q8");
  int jn = b.JoinLeaf(Col(cat, "lineitem", "l_partkey"),
                      Col(cat, "part", "p_partkey"));
  int ftype = b.FetchJoin(Col(cat, "part", "p_type"), jn, FetchSide::kRight);
  int tflag = b.LikeFlag(ftype, "ECONOMY ANODIZED STEEL");
  int fp = b.FetchJoin(Col(cat, "lineitem", "l_extendedprice"), jn,
                       FetchSide::kLeft);
  int fd =
      b.FetchJoin(Col(cat, "lineitem", "l_discount"), jn, FetchSide::kLeft);
  int om = b.MapConst(MapFn::kRSub, fd, 1.0, "1-disc");
  int rev = b.Map2(MapFn::kMul, fp, om, "revenue");
  int frev = b.Map2(MapFn::kMul, rev, tflag, "flagged_rev");
  int fsk =
      b.FetchJoin(Col(cat, "lineitem", "l_suppkey"), jn, FetchSide::kLeft);
  int jn2 = b.Join(fsk, Col(cat, "supplier", "s_suppkey"));
  int fnat =
      b.FetchJoin(Col(cat, "supplier", "s_nationkey"), jn2, FetchSide::kRight);
  int gb = b.GroupBy(fnat);
  int ag = b.AggGrouped(AggFn::kSum, gb, frev);
  int srt = b.Sort(ag, /*descending=*/true);
  return b.Result(srt);
}

StatusOr<QueryPlan> Tpch::Q9(const Catalog& cat) {
  // Product-type profit per supplier nation.
  PlanBuilder b("tpch_q9");
  int jn = b.JoinLeaf(Col(cat, "lineitem", "l_partkey"),
                      Col(cat, "part", "p_partkey"));
  int ftype = b.FetchJoin(Col(cat, "part", "p_type"), jn, FetchSide::kRight);
  int tflag = b.LikeFlag(ftype, "BRASS");
  int fp = b.FetchJoin(Col(cat, "lineitem", "l_extendedprice"), jn,
                       FetchSide::kLeft);
  int fd =
      b.FetchJoin(Col(cat, "lineitem", "l_discount"), jn, FetchSide::kLeft);
  int om = b.MapConst(MapFn::kRSub, fd, 1.0, "1-disc");
  int rev = b.Map2(MapFn::kMul, fp, om, "revenue");
  int fq =
      b.FetchJoin(Col(cat, "lineitem", "l_quantity"), jn, FetchSide::kLeft);
  int cost = b.MapConst(MapFn::kMul, fq, 1.2, "supplycost");
  int profit = b.Map2(MapFn::kSub, rev, cost, "profit");
  int fprofit = b.Map2(MapFn::kMul, profit, tflag, "flagged_profit");
  int fsk =
      b.FetchJoin(Col(cat, "lineitem", "l_suppkey"), jn, FetchSide::kLeft);
  int jn2 = b.Join(fsk, Col(cat, "supplier", "s_suppkey"));
  int fnat =
      b.FetchJoin(Col(cat, "supplier", "s_nationkey"), jn2, FetchSide::kRight);
  int gb = b.GroupBy(fnat);
  int ag = b.AggGrouped(AggFn::kSum, gb, fprofit);
  int srt = b.Sort(ag, /*descending=*/true);
  return b.Result(srt);
}

StatusOr<QueryPlan> Tpch::Q14(const Catalog& cat) {
  // Promotion effect: promo revenue fraction for one shipment month.
  PlanBuilder b("tpch_q14");
  int sel = b.Select(Col(cat, "lineitem", "l_shipdate"),
                     Predicate::RangeI64(kTpchDate0 + 1000, kTpchDate0 + 1029));
  int fpk = b.FetchJoin(Col(cat, "lineitem", "l_partkey"), sel);
  int jn = b.Join(fpk, Col(cat, "part", "p_partkey"));
  int ftype = b.FetchJoin(Col(cat, "part", "p_type"), jn, FetchSide::kRight);
  int flag = b.LikeFlag(ftype, "PROMO");
  int fp = b.FetchJoin(Col(cat, "lineitem", "l_extendedprice"), jn,
                       FetchSide::kLeft);
  int fd =
      b.FetchJoin(Col(cat, "lineitem", "l_discount"), jn, FetchSide::kLeft);
  int om = b.MapConst(MapFn::kRSub, fd, 1.0, "1-disc");
  int rev = b.Map2(MapFn::kMul, fp, om, "revenue");
  int promo = b.Map2(MapFn::kMul, rev, flag, "promo_rev");
  int s1 = b.AggScalar(AggFn::kSum, promo);
  int s2 = b.AggScalar(AggFn::kSum, rev);
  int ratio = b.Map2(MapFn::kDiv, s1, s2, "promo_fraction");
  return b.Result(ratio);
}

StatusOr<QueryPlan> Tpch::Q19(const Catalog& cat) {
  // Discounted revenue for brand/container/quantity conditions.
  PlanBuilder b("tpch_q19");
  int jn = b.JoinLeaf(Col(cat, "lineitem", "l_partkey"),
                      Col(cat, "part", "p_partkey"));
  int fbrand = b.FetchJoin(Col(cat, "part", "p_brand"), jn, FetchSide::kRight);
  int bflag = b.LikeFlag(fbrand, "Brand#12");
  int fcont =
      b.FetchJoin(Col(cat, "part", "p_container"), jn, FetchSide::kRight);
  int cflag = b.LikeFlag(fcont, "SM");
  int fq =
      b.FetchJoin(Col(cat, "lineitem", "l_quantity"), jn, FetchSide::kLeft);
  int qflag = b.RangeFlag(fq, 1, 11);
  int fp = b.FetchJoin(Col(cat, "lineitem", "l_extendedprice"), jn,
                       FetchSide::kLeft);
  int fd =
      b.FetchJoin(Col(cat, "lineitem", "l_discount"), jn, FetchSide::kLeft);
  int om = b.MapConst(MapFn::kRSub, fd, 1.0, "1-disc");
  int rev = b.Map2(MapFn::kMul, fp, om, "revenue");
  int f1 = b.Map2(MapFn::kMul, bflag, cflag);
  int f2 = b.Map2(MapFn::kMul, f1, qflag);
  int val = b.Map2(MapFn::kMul, rev, f2, "qualified_rev");
  int sum = b.AggScalar(AggFn::kSum, val);
  return b.Result(sum);
}

StatusOr<QueryPlan> Tpch::Q22(const Catalog& cat) {
  // Positive-balance customers aggregated per nation (global sales
  // opportunity, single-attribute group-by form).
  PlanBuilder b("tpch_q22");
  int sel = b.Select(Col(cat, "customer", "c_acctbal"),
                     Predicate::RangeF64(0.0, 1e9));
  int fnk = b.FetchJoin(Col(cat, "customer", "c_nationkey"), sel);
  int jn = b.Join(fnk, Col(cat, "nation", "n_nationkey"));
  int fbal =
      b.FetchJoin(Col(cat, "customer", "c_acctbal"), jn, FetchSide::kLeft);
  int fnat =
      b.FetchJoin(Col(cat, "nation", "n_nationkey"), jn, FetchSide::kRight);
  int gb = b.GroupBy(fnat);
  int ag = b.AggGrouped(AggFn::kSum, gb, fbal);
  int srt = b.Sort(ag, /*descending=*/true);
  return b.Result(srt);
}

}  // namespace apq
