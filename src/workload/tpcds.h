// TPC-DS-shaped workload: a skewed retail-sales schema (store_sales fact with
// clustered dates and Zipfian items) plus the five join/group-by query shapes
// used for the paper's Fig 17 comparison.
//
// Substitution note (DESIGN.md §2): replaces the TPC-DS SF-100 dataset. The
// paper attributes the up-to-5x adaptive win to "correct partitioning ... and
// the skewed data distribution"; the generator concentrates fact rows by
// position (date-ordered appends with seasonal bursts), which is exactly what
// static equi-range partitioning mishandles.
#ifndef APQ_WORKLOAD_TPCDS_H_
#define APQ_WORKLOAD_TPCDS_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "storage/table.h"
#include "util/status.h"

namespace apq {

/// \brief Generator sizing for the TPC-DS-shaped catalog.
struct TpcdsConfig {
  uint64_t store_sales_rows = 150'000;
  uint64_t item_rows = 2'000;
  uint64_t date_rows = 1'826;  // five years of days
  uint64_t store_rows = 50;
  double zipf_theta = 0.7;  // item popularity skew
  uint64_t seed = 21;
};

/// \brief TPC-DS data + query factory.
class Tpcds {
 public:
  static std::shared_ptr<Catalog> Generate(const TpcdsConfig& config);

  /// Queries "DS1".."DS5" (Fig 17's 1..5).
  static StatusOr<QueryPlan> Query(const Catalog& cat, const std::string& name);
  static std::vector<std::string> QueryNames();
};

}  // namespace apq

#endif  // APQ_WORKLOAD_TPCDS_H_
