// The skewed micro-benchmark column of the paper's Fig 13: first half random,
// second half five sequential clusters of identical values. Selecting one or
// more cluster values produces position-clustered matches — the execution-
// skew stress case for static partitioning (Fig 12).
#ifndef APQ_WORKLOAD_SKEW_H_
#define APQ_WORKLOAD_SKEW_H_

#include <memory>

#include "plan/plan.h"
#include "storage/table.h"

namespace apq {

/// \brief Fig 13 data layout parameters.
struct SkewConfig {
  uint64_t rows = 2'000'000;  // paper: 1000M; scaled to laptop budgets
  int clusters = 5;           // identical-value clusters in the second half
  int64_t random_max = 1'000'000'000;
  uint64_t seed = 13;
};

/// \brief Generates a table "skewed" with one int64 column "v": rows/2 random
/// values in [clusters, random_max), then `clusters` consecutive runs of the
/// constant values 0,1,..,clusters-1.
std::shared_ptr<Catalog> GenerateSkewed(const SkewConfig& config);

/// \brief Select plan whose predicate matches `pct_skew` percent of the table
/// by covering random-range plus whole clusters:
/// pct 10 -> ~10% of rows match (one cluster), pct 50 -> all five clusters.
/// Matches are concentrated in the second half — the paper's "% Skew" axis.
/// pct > 50 additionally matches the fraction (pct-50)/50 of the random
/// half (scattered uniformly), so ~pct% of the table matches overall while
/// the dense clusters keep the positional concentration.
StatusOr<QueryPlan> SkewedSelectPlan(const Catalog& cat,
                                     const SkewConfig& config, int pct_skew);

}  // namespace apq

#endif  // APQ_WORKLOAD_SKEW_H_
