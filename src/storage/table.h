// Tables and the catalog: named collections of equally sized columns.
#ifndef APQ_STORAGE_TABLE_H_
#define APQ_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "util/status.h"

namespace apq {

/// \brief A base table: a set of columns sharing one row count.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  uint64_t row_count() const { return row_count_; }
  uint64_t byte_size() const;

  Status AddColumn(ColumnPtr col);
  const Column* GetColumn(const std::string& name) const;
  StatusOr<const Column*> GetColumnChecked(const std::string& name) const;

  std::vector<std::string> ColumnNames() const;
  size_t num_columns() const { return columns_.size(); }

 private:
  std::string name_;
  uint64_t row_count_ = 0;
  bool has_columns_ = false;
  std::map<std::string, ColumnPtr> columns_;
  std::vector<std::string> order_;  // insertion order for listing
};

using TablePtr = std::shared_ptr<Table>;

/// \brief Catalog of base tables loaded into the engine.
class Catalog {
 public:
  Status AddTable(TablePtr table);
  const Table* GetTable(const std::string& name) const;
  StatusOr<const Table*> GetTableChecked(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// The largest table by byte size: the heuristic parallelizer's partitioning
  /// target (as in MonetDB's mitosis).
  const Table* LargestTable() const;

 private:
  std::map<std::string, TablePtr> tables_;
};

}  // namespace apq

#endif  // APQ_STORAGE_TABLE_H_
