#include "storage/table.h"

namespace apq {

uint64_t Table::byte_size() const {
  uint64_t total = 0;
  for (const auto& [name, col] : columns_) total += col->byte_size();
  return total;
}

Status Table::AddColumn(ColumnPtr col) {
  if (!col) return Status::InvalidArgument("null column");
  if (has_columns_ && col->size() != row_count_) {
    return Status::InvalidArgument(
        "column '" + col->name() + "' has " + std::to_string(col->size()) +
        " rows, table '" + name_ + "' has " + std::to_string(row_count_));
  }
  if (columns_.count(col->name())) {
    return Status::AlreadyExists("column '" + col->name() + "'");
  }
  row_count_ = col->size();
  has_columns_ = true;
  order_.push_back(col->name());
  columns_.emplace(col->name(), std::move(col));
  return Status::OK();
}

const Column* Table::GetColumn(const std::string& name) const {
  auto it = columns_.find(name);
  return it == columns_.end() ? nullptr : it->second.get();
}

StatusOr<const Column*> Table::GetColumnChecked(const std::string& name) const {
  const Column* c = GetColumn(name);
  if (!c) return Status::NotFound("column '" + name + "' in table '" + name_ + "'");
  return c;
}

std::vector<std::string> Table::ColumnNames() const { return order_; }

Status Catalog::AddTable(TablePtr table) {
  if (!table) return Status::InvalidArgument("null table");
  if (tables_.count(table->name())) {
    return Status::AlreadyExists("table '" + table->name() + "'");
  }
  tables_.emplace(table->name(), std::move(table));
  return Status::OK();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

StatusOr<const Table*> Catalog::GetTableChecked(const std::string& name) const {
  const Table* t = GetTable(name);
  if (!t) return Status::NotFound("table '" + name + "'");
  return t;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

const Table* Catalog::LargestTable() const {
  const Table* best = nullptr;
  uint64_t best_size = 0;
  for (const auto& [name, t] : tables_) {
    if (t->byte_size() >= best_size) {
      best_size = t->byte_size();
      best = t.get();
    }
  }
  return best;
}

}  // namespace apq
