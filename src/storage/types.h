// Fundamental storage types: row ids (oids), data types, row ranges.
#ifndef APQ_STORAGE_TYPES_H_
#define APQ_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

namespace apq {

/// Row identifier. Like MonetDB's oid: dense, 0-based position in a base table.
using oid = uint64_t;

constexpr oid kInvalidOid = ~static_cast<oid>(0);

/// Column value types. Dates are stored as int64 days-since-epoch; strings are
/// dictionary-encoded (int64 code into the column's dictionary).
enum class DataType : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
  kDate = 3,
};

inline const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64: return "i64";
    case DataType::kFloat64: return "f64";
    case DataType::kString: return "str";
    case DataType::kDate: return "date";
  }
  return "?";
}

/// Width in bytes of one value of the given type (dictionary codes for str).
inline size_t DataTypeWidth(DataType t) {
  switch (t) {
    case DataType::kFloat64: return 8;
    default: return 8;
  }
}

/// \brief Half-open row-id interval [begin, end) over a base table.
///
/// Every intermediate result remembers the base range it was derived from;
/// this is what makes dynamic-partition boundary alignment (paper Fig 9)
/// checkable.
struct RowRange {
  oid begin = 0;
  oid end = 0;

  uint64_t size() const { return end - begin; }
  bool Contains(oid o) const { return o >= begin && o < end; }
  bool Contains(const RowRange& other) const {
    return other.begin >= begin && other.end <= end;
  }
  bool Overlaps(const RowRange& other) const {
    return begin < other.end && other.begin < end;
  }
  /// Intersection of the two ranges (empty if disjoint).
  RowRange Intersect(const RowRange& other) const {
    RowRange r{begin > other.begin ? begin : other.begin,
               end < other.end ? end : other.end};
    if (r.begin > r.end) r = {0, 0};
    return r;
  }
  bool operator==(const RowRange& o) const {
    return begin == o.begin && end == o.end;
  }

  std::string ToString() const {
    return "[" + std::to_string(begin) + "," + std::to_string(end) + ")";
  }
};

}  // namespace apq

#endif  // APQ_STORAGE_TYPES_H_
