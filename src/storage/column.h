// Columnar storage: a Column is a typed, contiguous array of values.
//
// Strings are dictionary encoded: the column stores int64 codes plus a shared
// dictionary. Dates are int64 days since 1970-01-01. This mirrors the array
// representation the paper assumes for range-sliced adaptive partitioning.
#ifndef APQ_STORAGE_COLUMN_H_
#define APQ_STORAGE_COLUMN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace apq {

/// \brief A typed column of values. Base storage for tables and a value
/// container for materialized intermediates.
class Column {
 public:
  Column(std::string name, DataType type) : name_(std::move(name)), type_(type) {}

  static std::shared_ptr<Column> MakeInt64(std::string name,
                                           std::vector<int64_t> data) {
    auto c = std::make_shared<Column>(std::move(name), DataType::kInt64);
    c->i64_ = std::move(data);
    return c;
  }
  static std::shared_ptr<Column> MakeFloat64(std::string name,
                                             std::vector<double> data) {
    auto c = std::make_shared<Column>(std::move(name), DataType::kFloat64);
    c->f64_ = std::move(data);
    return c;
  }
  static std::shared_ptr<Column> MakeDate(std::string name,
                                          std::vector<int64_t> days) {
    auto c = std::make_shared<Column>(std::move(name), DataType::kDate);
    c->i64_ = std::move(days);
    return c;
  }
  /// Builds a dictionary-encoded string column from raw strings.
  static std::shared_ptr<Column> MakeString(std::string name,
                                            const std::vector<std::string>& data);

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }

  uint64_t size() const {
    return type_ == DataType::kFloat64 ? f64_.size() : i64_.size();
  }
  uint64_t byte_size() const { return size() * DataTypeWidth(type_); }

  bool is_numeric_storage() const { return type_ == DataType::kFloat64; }

  /// Raw int64 payload (values, date days, or dictionary codes).
  const std::vector<int64_t>& i64() const { return i64_; }
  std::vector<int64_t>& mutable_i64() { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  std::vector<double>& mutable_f64() { return f64_; }

  /// Dictionary for string columns (code -> string).
  const std::vector<std::string>& dictionary() const { return dict_; }

  /// Looks up a string's dictionary code; -1 if absent.
  int64_t DictCode(const std::string& s) const {
    auto it = dict_index_.find(s);
    return it == dict_index_.end() ? -1 : it->second;
  }
  const std::string& DictString(int64_t code) const { return dict_[code]; }

  int64_t GetInt(oid row) const { return i64_[row]; }
  double GetDouble(oid row) const {
    return type_ == DataType::kFloat64 ? f64_[row]
                                       : static_cast<double>(i64_[row]);
  }

  RowRange full_range() const { return RowRange{0, size()}; }

 private:
  std::string name_;
  DataType type_;
  std::vector<int64_t> i64_;   // int64 / date-days / dictionary codes
  std::vector<double> f64_;    // float64 values
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int64_t> dict_index_;
};

using ColumnPtr = std::shared_ptr<Column>;

/// \brief A zero-copy read-only slice of a base column: the unit of
/// adaptive-parallelization range partitioning (paper Fig 8).
///
/// Creating a slice only marks boundary row ids; no data is copied.
struct ColumnSlice {
  const Column* column = nullptr;
  RowRange range;

  uint64_t size() const { return range.size(); }
  bool Valid() const {
    return column != nullptr && range.end <= column->size() &&
           range.begin <= range.end;
  }
  /// Splits this slice in two at the midpoint (or a given split row).
  std::pair<ColumnSlice, ColumnSlice> Split(oid split_at = kInvalidOid) const {
    oid mid = split_at == kInvalidOid ? range.begin + range.size() / 2 : split_at;
    if (mid < range.begin) mid = range.begin;
    if (mid > range.end) mid = range.end;
    return {ColumnSlice{column, {range.begin, mid}},
            ColumnSlice{column, {mid, range.end}}};
  }
};

}  // namespace apq

#endif  // APQ_STORAGE_COLUMN_H_
