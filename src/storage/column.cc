#include "storage/column.h"

namespace apq {

std::shared_ptr<Column> Column::MakeString(std::string name,
                                           const std::vector<std::string>& data) {
  auto c = std::make_shared<Column>(std::move(name), DataType::kString);
  c->i64_.reserve(data.size());
  for (const auto& s : data) {
    auto it = c->dict_index_.find(s);
    int64_t code;
    if (it == c->dict_index_.end()) {
      code = static_cast<int64_t>(c->dict_.size());
      c->dict_.push_back(s);
      c->dict_index_.emplace(s, code);
    } else {
      code = it->second;
    }
    c->i64_.push_back(code);
  }
  return c;
}

}  // namespace apq
