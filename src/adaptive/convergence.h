// The adaptive-parallelization convergence algorithm (paper §3).
//
// Observes the execution time of successive runs (run 0 = the serial plan)
// and decides when to stop mutating. Mechanics:
//   - GME (global minimum execution): minimal time so far, updated only when
//     the improvement over the serial time beats the current GME improvement
//     by more than `gme_threshold` (discards noise-level "new minima").
//   - ROI (rate of improvement) vs the previous run drives a credit/debit
//     balance scaled by the core count; the next run is allowed only while
//     credit - debit > 0.
//   - Leaking debit: once run > cores, a constant leak (credit at the
//     threshold run divided by extra_runs * cores) drains the balance,
//     guaranteeing convergence on stable systems.
//   - Noisy peaks (time above the serial time) receive one grace run so that
//     the descent's credit can cancel the ascent's debit.
#ifndef APQ_ADAPTIVE_CONVERGENCE_H_
#define APQ_ADAPTIVE_CONVERGENCE_H_

#include <vector>

namespace apq {

/// \brief Convergence algorithm tuning (paper defaults).
struct ConvergenceParams {
  int cores = 32;               // Number_Of_Cores in the paper's formulas
  /// GME replacement threshold. The paper used 5% on its hardware and notes
  /// that "correct tuning of the threshold parameter is crucial"; 2% fits
  /// this repository's scaled-down datasets (smaller serial/best ratios
  /// saturate a 5% step earlier). The ablation bench sweeps this knob.
  double gme_threshold = 0.02;
  int extra_runs = 8;           // Extra_Runs (paper: 8 is safe)
  int max_runs = 400;           // hard safety bound
  bool leaking_debit = true;    // ablation switch (§3.3.2)
  bool peak_grace = true;       // ablation switch (§3.3.3)
};

/// \brief State machine implementing the convergence decisions.
class ConvergenceController {
 public:
  explicit ConvergenceController(ConvergenceParams params = ConvergenceParams())
      : params_(params) {}

  /// Records the execution time of the next run (first call = run 0, the
  /// serial plan). Returns true if another run is allowed.
  bool Observe(double exec_ns);

  int runs_observed() const { return static_cast<int>(times_.size()); }
  double serial_time() const { return times_.empty() ? 0 : times_[0]; }
  double gme() const { return gme_; }
  int gme_run() const { return gme_run_; }
  double credit() const { return credit_; }
  double debit() const { return debit_; }
  double balance() const { return credit_ - debit_; }
  double leaking_debit_value() const { return leak_; }
  const std::vector<double>& times() const { return times_; }

  /// Run with the raw minimum time (may differ from the GME run when noise
  /// produced a sub-threshold dip).
  int raw_min_run() const { return raw_min_run_; }

  /// Theoretical lower bound on convergence runs (paper §3.3.4).
  int LowerBound() const { return params_.cores + 1; }
  /// Approximate upper bound on convergence runs (paper §3.3.4).
  int UpperBound() const {
    return params_.cores + 1 + params_.extra_runs * params_.cores;
  }

 private:
  ConvergenceParams params_;
  std::vector<double> times_;
  double gme_ = 0;
  double gme_imprv_ = 0;
  int gme_run_ = -1;
  int raw_min_run_ = -1;
  double raw_min_ = 0;
  double credit_ = 1.0;  // paper: starts at 1
  double debit_ = 0.0;
  double leak_ = 0.0;
  bool leak_armed_ = false;
  bool grace_used_ = false;
};

}  // namespace apq

#endif  // APQ_ADAPTIVE_CONVERGENCE_H_
