// The adaptive parallelization driver: repeated query invocations, each run
// profiled on the simulated machine, the most expensive operator mutated,
// until the convergence controller stops the process (paper Fig 2 workflow).
#ifndef APQ_ADAPTIVE_EXECUTOR_H_
#define APQ_ADAPTIVE_EXECUTOR_H_

#include <string>
#include <vector>

#include "adaptive/convergence.h"
#include "adaptive/mutator.h"
#include "exec/compare.h"
#include "exec/cost_model.h"
#include "exec/evaluator.h"
#include "plan/plan.h"
#include "profile/profiler.h"
#include "sched/simulator.h"

namespace apq {

/// \brief One adaptive run's record.
struct AdaptiveRun {
  int run = 0;
  double time_ns = 0;          // response time of this invocation (simulated)
  double wall_ns = 0;          // hardware truth: evaluator wall-clock time
  double utilization = 0;      // multi-core utilization of this run
  int mutated_node = -1;       // operator parallelized after this run
  std::string mutation;        // basic / medium / advanced / none
  PlanStats plan_stats;        // shape of the plan that executed
  /// Worst per-operator morsel skew (max/mean morsel wall time) observed in
  /// this run; 0 when the run executed whole-column. Intra-operator feedback
  /// the convergence loop sees alongside the operator times.
  double max_morsel_skew = 0;
  /// Worst deterministic per-operator tuple-weight skew
  /// (OpProfile::morsel_tuple_skew) observed in this run; 0 when no
  /// morselized operator carried domain information.
  double max_morsel_tuple_skew = 0;
  /// Operators whose skew in THIS run crossed the mutator's skew threshold
  /// and therefore got a shrunken morsel size for the NEXT run (the runtime
  /// skew response; 0 when ExecOptions::adaptive_morsel_rows is off).
  int skew_hint_ops = 0;
};

/// \brief One entry of the adaptive-convergence lineage: what adaptation did
/// after each run and why — the structured answer to "how did this query
/// reach its converged plan". One entry per executed run (lineage.size() ==
/// runs.size() == AdaptiveOutcome::total_runs); serialized into the
/// per-query profile JSON (profile/profile_json.h) and served by the HTTP
/// introspection endpoint as /debug/profile/<query-id>.
struct AdaptiveLineage {
  int run = 0;
  double time_ns = 0;   // per-run cost: simulated response time
  double wall_ns = 0;   // hardware wall-clock of the run's evaluation
  /// Worst wall/tuple morsel skews observed in this run (the signals the
  /// mutator and the runtime skew response acted on).
  double max_morsel_skew = 0;
  double max_morsel_tuple_skew = 0;
  /// Operators whose morsels were shrunk for the NEXT run by the runtime
  /// skew response (AdaptiveRun::skew_hint_ops).
  int skew_hint_ops = 0;
  /// The operator parallelized after this run (-1 when the run ended the
  /// process — converged, or nothing left to mutate).
  int victim = -1;
  /// "basic" / "basic-skew" / "medium" / "advanced" / "none".
  std::string action = "none";
  /// True when the mutation used skew-aware value-balanced re-partitioning.
  bool skew_aware = false;
  /// Interior base-row split points the mutation chose
  /// (MutationReport::split_rows); empty for non-splitting actions.
  std::vector<uint64_t> split_rows;
};

/// \brief Outcome of a full adaptive-parallelization instance.
struct AdaptiveOutcome {
  std::vector<AdaptiveRun> runs;   // runs[0] = serial plan
  /// Per-run adaptation decisions, parallel to `runs` (entry i records what
  /// the mutator did AFTER run i, plus run i's cost and skew signals).
  std::vector<AdaptiveLineage> lineage;
  /// The obs::CurrentQueryId() active while the loop ran (0 outside an
  /// Engine query) — correlates this outcome with trace spans and the
  /// introspection endpoint's /debug/profile/<id>.
  uint64_t query_id = 0;
  double serial_time_ns = 0;
  double serial_wall_ns = 0;       // wall-clock of the serial-plan evaluation
  double gme_wall_ns = 0;          // wall-clock of the GME run's evaluation
  double gme_time_ns = 0;
  int gme_run = -1;
  /// Raw minimum over all runs (may differ from the GME when late
  /// sub-threshold refinements are discarded by the GME rule).
  double best_time_ns = 0;
  int best_run = -1;
  int total_runs = 0;
  /// Mutations that used skew-aware value-balanced re-partitioning
  /// ("basic-skew") across the whole adaptive process.
  int skew_mutations = 0;
  QueryPlan gme_plan;              // the plan the process converged on
  /// Profile of the GME run. Historical profiles keep every scalar field
  /// (including the per-op skew signals) but NOT the raw OpProfile::morsels
  /// histograms — those are stripped per run to bound memory, so here
  /// num_morsels > 0 with an empty morsels vector is expected.
  RunProfile gme_profile;
  Intermediate result;             // query result (identical across runs)

  double Speedup() const {
    return gme_time_ns > 0 ? serial_time_ns / gme_time_ns : 0;
  }
};

/// \brief Configuration of the adaptive executor.
struct AdaptiveParams {
  ConvergenceParams convergence;
  MutatorConfig mutator;
  /// Verify that every mutated plan reproduces the serial result (enabled in
  /// tests; costs one comparison per run).
  bool verify_results = false;
};

/// \brief Runs the adaptive-parallelization feedback loop.
class AdaptiveExecutor {
 public:
  AdaptiveExecutor(Evaluator* evaluator, CostModel cost_model,
                   Simulator simulator, AdaptiveParams params)
      : evaluator_(evaluator),
        cost_model_(cost_model),
        simulator_(simulator),
        params_(params) {}

  /// Runs the loop starting from `serial_plan`. If `background` is non-empty,
  /// those tasks are co-scheduled with every run (concurrent workload); the
  /// reported time is this query's response time.
  StatusOr<AdaptiveOutcome> Run(const QueryPlan& serial_plan,
                                const std::vector<SimTask>& background = {});

 private:
  Evaluator* evaluator_;
  CostModel cost_model_;
  Simulator simulator_;
  AdaptiveParams params_;
};

}  // namespace apq

#endif  // APQ_ADAPTIVE_EXECUTOR_H_
