// Plan mutation: the paper's basic / medium / advanced mutation schemes
// (§2.1, Figs 3-6) plus the plan-explosion guard (§2.3).
//
//  - Basic:    clone an expensive filtering operator (select / fetch-join /
//              join) onto two halves of its range partition; an exchange
//              union (existing or new) packs the clones' results.
//  - Medium:   when an exchange union itself is expensive, remove it by
//              propagating its inputs to its dataflow-dependent consumers,
//              cloning each consumer per input, and packing with a new union.
//              Refused when the union's fan-in exceeds the threshold (15).
//  - Advanced: parallelize non-filtering operators (group-by / sort) by
//              cloning them per partition together with their dependent
//              aggregation operators; partial grouped aggregates are packed
//              by a cheap union and recombined by an aggr-merge.
//
// Mutations are pure plan-to-plan transformations; orphaned nodes stay in the
// node list but become unreachable from the result.
#ifndef APQ_ADAPTIVE_MUTATOR_H_
#define APQ_ADAPTIVE_MUTATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "profile/profiler.h"
#include "util/status.h"

namespace apq {

/// \brief Mutation tuning knobs.
struct MutatorConfig {
  /// Do not split partitions below this many rows (sized for this
  /// repository's scaled-down datasets; MonetDB's equivalent floor is much
  /// larger on full-size data).
  uint64_t min_partition_rows = 256;
  /// Paper §2.3: suppress exchange-union removal (medium mutation) when the
  /// union has more than this many inputs, to stop plan explosion.
  int union_fanin_threshold = 15;
  /// Partitions introduced per basic mutation. The paper uses 2 (one new
  /// operator per invocation) to observe plan evolution, and notes (§4.3)
  /// that "the number of runs could be made much lower if more and even
  /// number of operators are introduced per invocation" — this knob
  /// implements that extension.
  int split_ways = 2;
  /// Skew feedback (paper Fig 12): when the target operator's observed
  /// morsel skew — max(OpProfile::morsel_skew, OpProfile::morsel_tuple_skew)
  /// — reaches this threshold, the basic mutation switches from uniform
  /// range halving to value-balanced range re-partitioning with split points
  /// chosen from the profiled per-morsel tuple histogram. Both metrics are 1
  /// when perfectly balanced; 1.5 flags a morsel 50% over the mean (or a
  /// subrange 1.5x denser than the sparsest), comfortably above the noise of
  /// balanced runs while still catching the paper's clustered-value layouts
  /// (which profile at 2-3x).
  double skew_threshold = 1.5;
  /// Upper bound on partitions created by one skew-aware re-partition (the
  /// strongest density edges win). Uniform basic splits keep using
  /// split_ways.
  int skew_max_ways = 8;
};

/// \brief What a mutation step did (for traces and tests).
struct MutationReport {
  bool mutated = false;
  int target_node = -1;       // the operator that was parallelized
  std::string action;         // "basic", "basic-skew", "medium", "advanced"
  std::string detail;
  /// True when the basic mutation used skew-aware value-balanced range
  /// re-partitioning instead of uniform halving.
  bool skew_aware = false;
  /// Interior split points (base-row boundaries between consecutive pieces)
  /// a basic split chose — pieces.size() - 1 entries, ascending. The trace
  /// exporter turns these into per-point re-partition events so a skewed
  /// split's chosen boundaries are visible in the tomograph.
  std::vector<uint64_t> split_rows;
};

/// \brief Applies the three mutation schemes to query plans.
class Mutator {
 public:
  explicit Mutator(MutatorConfig config = MutatorConfig())
      : config_(config) {}

  const MutatorConfig& config() const { return config_; }

  /// One adaptive-parallelization step: parallelize the most expensive
  /// operator of `profile`; if that operator cannot be mutated, fall back to
  /// the next most expensive. Returns the mutated plan; `report->mutated` is
  /// false if no operator could be parallelized further.
  StatusOr<QueryPlan> MutateMostExpensive(const QueryPlan& plan,
                                          const RunProfile& profile,
                                          MutationReport* report);

  // --- primitives (also used by the heuristic parallelizer and tests) -----

  /// Basic mutation: splits `node_id`'s range partition into `ways` clones
  /// and packs them with an exchange union (splicing into an existing union
  /// consumer to keep partition order, per Fig 8).
  Status SplitNode(QueryPlan* plan, int node_id, int ways);

  /// Medium mutation: removes union `union_id` by propagating its inputs to
  /// all consumers. `max_fanin` overrides the config threshold (the
  /// heuristic parallelizer passes a large value).
  Status PropagateUnion(QueryPlan* plan, int union_id, int max_fanin = -1);

  /// Advanced mutation of a group-by whose input is an exchange union:
  /// clones group-by and its dependent aggregates per union input, packs the
  /// partial grouped aggregates, and re-merges them.
  Status AdvancedGroupBy(QueryPlan* plan, int groupby_id);

  /// Advanced mutation of a sort/top-n whose input is an exchange union:
  /// per-partition sorts followed by a final merge sort.
  Status AdvancedSort(QueryPlan* plan, int sort_id);

  /// The base row range a node's output row ids are drawn from.
  static RowRange StaticOrigin(const QueryPlan& plan, int node_id);

  /// Splits `node_id` and applies the same split to its alignment partners —
  /// sibling value chains consumed by the same binary map or group-by /
  /// aggregate pair — so that later medium/advanced mutations stay
  /// applicable (the paper's §2.2 "resolving propagation dependencies").
  /// When `prof` (the node's profile from the run that chose it) shows skew
  /// at or above MutatorConfig::skew_threshold, the split points are chosen
  /// from the profiled per-morsel tuple histogram instead of uniform
  /// chunking (paper Fig 12 dynamic partitioning); partners follow the same
  /// points so partition structures stay pairwise aligned. `report` (if
  /// non-null) records whether the skew-aware path was taken.
  Status SplitAligned(QueryPlan* plan, int node_id, int ways = 2,
                      const OpProfile* prof = nullptr,
                      MutationReport* report = nullptr);

  /// Value-balanced split points for `range` derived from a per-morsel
  /// tuple histogram whose entries carry base-row domains (paper Fig 12):
  /// boundaries land on the strongest per-row weight-density edges (weight =
  /// tuples_in + 2*tuples_out), or on equal-cumulative-weight quantiles when
  /// the density has no sharp edge. Returns interior split rows (ascending,
  /// every resulting piece >= min_partition_rows, at most max_pieces - 1
  /// points); empty when the histogram carries no usable domain information
  /// — the caller then falls back to uniform chunking.
  static std::vector<uint64_t> SkewSplitPoints(
      RowRange range, const std::vector<MorselMetrics>& hist,
      uint64_t min_partition_rows, int max_pieces, int fallback_ways);

  /// Splices unions that feed unions (mat.pack is associative and order
  /// preserving); keeps partition structure flat and pairwise comparable.
  static void FlattenUnions(QueryPlan* plan);

 private:
  /// The shared basic-split eligibility gate: parallelizable kind, and not a
  /// pairs-fed fetch-join (which cannot be range-split order-preservingly).
  static Status CheckBasicSplittable(const QueryPlan& plan, int node_id);

  /// Mutates one specific operator according to its kind; Unsupported if this
  /// operator cannot be parallelized in its current form. `prof` is the
  /// operator's profile from the run that selected it (may be null — e.g.
  /// from the heuristic parallelizer — in which case splits are uniform).
  Status MutateOp(QueryPlan* plan, int node_id, MutationReport* report,
                  const OpProfile* prof);

  /// Computes the range pieces a basic split of `node_id` would create:
  /// skew-aware (value-balanced, from prof's morsel histogram) when prof
  /// crosses the skew threshold, uniform `ways` chunks otherwise. Performs
  /// the basic-split eligibility checks.
  StatusOr<std::vector<RowRange>> PlanPieces(const QueryPlan& plan,
                                             int node_id, int ways,
                                             const OpProfile* prof,
                                             bool* skewed) const;

  /// Basic split of `node_id` onto the given consecutive range pieces,
  /// packing the clones with an exchange union (splicing into an existing
  /// union consumer to keep partition order, per Fig 8).
  Status SplitNodeAt(QueryPlan* plan, int node_id,
                     const std::vector<RowRange>& pieces);

  /// Finds the most expensive splittable ancestor of `node_id` (used when a
  /// non-filtering operator's input is not yet partitioned).
  int FindSplittableAncestor(const QueryPlan& plan, int node_id,
                             const RunProfile& profile) const;

  /// Rewires every consumer of `old_id` to read `new_id` instead.
  static void RewireConsumers(QueryPlan* plan, int old_id, int new_id);

  MutatorConfig config_;
};

}  // namespace apq

#endif  // APQ_ADAPTIVE_MUTATOR_H_
