#include "adaptive/mutator.h"

#include <algorithm>
#include <vector>

#include "util/table_printer.h"

namespace apq {

namespace {

bool IsUnion(const QueryPlan& plan, int id) {
  return plan.node(id).kind == OpKind::kExchangeUnion;
}

/// True when node `id` statically produces join pairs (directly or as a
/// union of joins).
bool ProducesPairs(const QueryPlan& plan, int id) {
  const PlanNode& n = plan.node(id);
  if (n.kind == OpKind::kJoin) return true;
  if (n.kind == OpKind::kExchangeUnion && !n.inputs.empty()) {
    return ProducesPairs(plan, n.inputs[0]);
  }
  return false;
}

/// True when two unions pack pairwise-aligned partitions, so a binary
/// consumer can be cloned per input pair. Fan-in equality alone is NOT
/// sufficient: the k-th inputs must cover the same partition of the same
/// candidate stream, otherwise the clones' operands have different lengths
/// (a Misaligned error at best, silent corruption at worst).
bool UnionsPartitionCompatible(const QueryPlan& plan, int u1, int u2) {
  if (u1 == u2) return true;
  const PlanNode& a = plan.node(u1);
  const PlanNode& b = plan.node(u2);
  if (a.inputs.size() != b.inputs.size()) return false;
  for (size_t k = 0; k < a.inputs.size(); ++k) {
    const PlanNode& x = plan.node(a.inputs[k]);
    const PlanNode& y = plan.node(b.inputs[k]);
    if (a.inputs[k] == b.inputs[k]) continue;
    // Aligned iff both read the same candidate stream and clip against the
    // same partition (or neither clips). A leaf pair without a shared
    // candidate input has no alignment guarantee.
    if (x.inputs != y.inputs || x.inputs.empty()) return false;
    if (x.has_slice != y.has_slice) return false;
    if (x.has_slice && !(x.slice == y.slice)) return false;
  }
  return true;
}

/// Whether a consumer node can be cloned per union input during medium
/// mutation. `union_id` is the union being removed.
bool IsPropagatableConsumer(const QueryPlan& plan, const PlanNode& c,
                            int union_id) {
  switch (c.kind) {
    case OpKind::kSelect:
    case OpKind::kFetchJoin:
    case OpKind::kJoin:
      return true;
    case OpKind::kMap: {
      if (c.inputs.size() == 1) return true;
      // Binary map: the other input must be a union with pairwise-aligned
      // partitions (or the same union twice).
      int other = c.inputs[0] == union_id ? c.inputs[1] : c.inputs[0];
      if (other == union_id) return true;
      if (!IsUnion(plan, other)) return false;
      return UnionsPartitionCompatible(plan, union_id, other);
    }
    case OpKind::kAggregate:
      // Scalar aggregate over the union's values: clone + pack + merge.
      return c.inputs.size() == 1;
    case OpKind::kGroupBy:
      // Delegated to the advanced mutation.
      return c.inputs.size() == 1;
    case OpKind::kSort:
    case OpKind::kTopN:
      return true;
    default:
      return false;
  }
}

}  // namespace

RowRange Mutator::StaticOrigin(const QueryPlan& plan, int node_id) {
  const PlanNode& n = plan.node(node_id);
  if (n.has_slice) return n.slice;
  switch (n.kind) {
    case OpKind::kSelect:
    case OpKind::kFetchJoin:
    case OpKind::kGroupBy:
      if (n.column) return n.column->full_range();
      break;
    case OpKind::kJoin:
      if (n.column) return n.column->full_range();
      break;
    case OpKind::kExchangeUnion: {
      RowRange hull{~static_cast<oid>(0), 0};
      for (int in : n.inputs) {
        RowRange r = StaticOrigin(plan, in);
        hull.begin = std::min(hull.begin, r.begin);
        hull.end = std::max(hull.end, r.end);
      }
      if (hull.begin > hull.end) hull = {0, 0};
      return hull;
    }
    default:
      break;
  }
  if (!n.inputs.empty()) return StaticOrigin(plan, n.inputs[0]);
  return RowRange{0, 0};
}

void Mutator::RewireConsumers(QueryPlan* plan, int old_id, int new_id) {
  for (int i = 0; i < plan->num_nodes(); ++i) {
    if (i == new_id) continue;
    for (int& in : plan->node(i).inputs) {
      if (in == old_id) in = new_id;
    }
  }
}

std::vector<uint64_t> Mutator::SkewSplitPoints(
    RowRange range, const std::vector<MorselMetrics>& hist,
    uint64_t min_partition_rows, int max_pieces, int fallback_ways) {
  if (hist.size() < 2 || max_pieces < 2) return {};
  // The histogram is only usable when every morsel carries a valid base-row
  // domain inside this partition, in ascending non-overlapping order (dense
  // scans and select-fed candidate lists qualify; group-by ingest, sort runs
  // and probe-position morsels do not).
  for (size_t i = 0; i < hist.size(); ++i) {
    const MorselMetrics& h = hist[i];
    if (h.domain_end <= h.domain_begin) return {};
    if (h.domain_begin < range.begin || h.domain_end > range.end) return {};
    if (i > 0 && h.domain_begin < hist[i - 1].domain_end) return {};
  }
  // Per-row cost proxy: one unit to scan a covered row, two to materialize a
  // produced tuple (write + downstream read) — deterministic, unlike morsel
  // wall times.
  auto weight = [](const MorselMetrics& h) {
    return static_cast<double>(h.tuples_in) +
           2.0 * static_cast<double>(h.tuples_out);
  };
  auto density = [&weight](const MorselMetrics& h) {
    return weight(h) / static_cast<double>(h.domain_end - h.domain_begin);
  };

  // Prefer split points on sharp density edges: a boundary between two
  // morsels whose per-row weight differs by >= 2x marks the start or end of
  // a value cluster (the paper's Fig 13 layout), and cutting exactly there
  // makes each piece internally homogeneous — the mutation that actually
  // removes intra-operator skew instead of halving it.
  constexpr double kEdgeRatio = 2.0;
  struct Edge {
    uint64_t row;
    double strength;
  };
  auto ratio_of = [&density](const MorselMetrics& x, const MorselMetrics& y) {
    double a = std::max(density(x), 1e-12);
    double b = std::max(density(y), 1e-12);
    return a > b ? a / b : b / a;
  };
  std::vector<Edge> edges;
  for (size_t i = 0; i + 1 < hist.size(); ++i) {
    double ratio = ratio_of(hist[i], hist[i + 1]);
    if (ratio >= kEdgeRatio) edges.push_back({hist[i + 1].domain_begin, ratio});
  }
  // A value boundary that falls inside a morsel dilutes both adjacent steps
  // below the edge ratio (cold | mixed | hot reads as two ~1.8x steps for a
  // 2x cluster). Detect the two-step pattern and quarantine the straddling
  // morsel into its own piece: its neighbours become homogeneous, and the
  // single-morsel piece itself runs whole-column (no morsel skew at all).
  for (size_t i = 0; i + 2 < hist.size(); ++i) {
    double span = ratio_of(hist[i], hist[i + 2]);
    if (span < kEdgeRatio) continue;
    if (ratio_of(hist[i], hist[i + 1]) >= kEdgeRatio) continue;
    if (ratio_of(hist[i + 1], hist[i + 2]) >= kEdgeRatio) continue;
    edges.push_back({hist[i + 1].domain_begin, span});
    edges.push_back({hist[i + 2].domain_begin, span});
  }

  std::vector<uint64_t> points;
  if (!edges.empty()) {
    std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
      if (x.strength != y.strength) return x.strength > y.strength;
      return x.row < y.row;
    });
    if (static_cast<int>(edges.size()) > max_pieces - 1) {
      edges.resize(static_cast<size_t>(max_pieces - 1));
    }
    for (const Edge& e : edges) points.push_back(e.row);
  } else {
    // No sharp boundary. Only fall back to equal-cumulative-weight quantiles
    // when the histogram itself proves a real density spread (a smooth
    // gradient); a flat histogram means the trigger came from wall-clock
    // noise and uniform halving is the honest split.
    double dmin = density(hist[0]), dmax = dmin;
    for (const MorselMetrics& h : hist) {
      double d = density(h);
      dmin = std::min(dmin, d);
      dmax = std::max(dmax, d);
    }
    if (dmin <= 0 || dmax / dmin < kEdgeRatio) return {};
    double total = 0;
    for (const MorselMetrics& h : hist) total += weight(h);
    if (total <= 0) return {};
    int ways = std::min(std::max(fallback_ways, 2), max_pieces);
    double cum = 0;
    size_t i = 0;
    for (int k = 1; k < ways; ++k) {
      double target = total * k / ways;
      while (i < hist.size() && cum < target) {
        cum += weight(hist[i]);
        ++i;
      }
      if (i >= hist.size()) break;
      points.push_back(hist[i].domain_begin);
    }
  }

  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  // Enforce the minimum partition granularity (points are ascending, so a
  // point too close to range.end rules out every later point too).
  std::vector<uint64_t> kept;
  uint64_t prev = range.begin;
  for (uint64_t p : points) {
    if (p <= prev || p >= range.end) continue;
    if (p - prev < min_partition_rows) continue;
    if (range.end - p < min_partition_rows) break;
    kept.push_back(p);
    prev = p;
  }
  return kept;
}

Status Mutator::CheckBasicSplittable(const QueryPlan& plan, int node_id) {
  const PlanNode& node = plan.node(node_id);
  if (!IsBasicParallelizable(node.kind)) {
    return Status::Unsupported(std::string("cannot basic-split a ") +
                               OpKindName(node.kind));
  }
  // Range-splitting is only order-preserving when the candidates are sorted
  // in the partition domain (paper §2.3: packed results must follow the
  // mutation sequence order), and only alignment-preserving when sibling
  // tuple-reconstruction chains can follow the same split. A fetch-join over
  // join pairs fails both (right-side row ids are unsorted; left/right
  // siblings must stay pairwise aligned), so pairs-fed fetch-joins are
  // parallelized exclusively by propagating the join's partitioning through
  // them (medium mutation).
  if (node.kind == OpKind::kFetchJoin && !node.inputs.empty() &&
      ProducesPairs(plan, node.inputs[0])) {
    return Status::Unsupported(
        "fetchjoin over join pairs cannot be range-split; parallelize the "
        "join and propagate instead");
  }
  return Status::OK();
}

StatusOr<std::vector<RowRange>> Mutator::PlanPieces(const QueryPlan& plan,
                                                    int node_id, int ways,
                                                    const OpProfile* prof,
                                                    bool* skewed) const {
  if (skewed != nullptr) *skewed = false;
  if (ways < 2) return Status::InvalidArgument("split needs ways >= 2");
  APQ_RETURN_NOT_OK(CheckBasicSplittable(plan, node_id));
  const PlanNode& node = plan.node(node_id);
  RowRange range = node.has_slice ? node.slice : StaticOrigin(plan, node_id);
  if (range.size() < static_cast<uint64_t>(ways)) {
    return Status::Unsupported("partition too small to split: " +
                               range.ToString());
  }
  if (range.size() / ways < config_.min_partition_rows) {
    return Status::Unsupported("split below min partition rows");
  }

  // Skew feedback (paper Fig 12): when the profiled run shows intra-operator
  // skew, re-partition on value-balanced split points from the per-morsel
  // tuple histogram instead of uniform chunks. Splits only ever move the
  // boundaries of consecutive subranges, so results stay bit-identical.
  if (prof != nullptr &&
      std::max(prof->morsel_skew, prof->morsel_tuple_skew) >=
          config_.skew_threshold) {
    std::vector<uint64_t> points =
        SkewSplitPoints(range, prof->morsels, config_.min_partition_rows,
                        config_.skew_max_ways, ways);
    if (!points.empty()) {
      std::vector<RowRange> pieces;
      pieces.reserve(points.size() + 1);
      uint64_t prev = range.begin;
      for (uint64_t p : points) {
        pieces.push_back(RowRange{prev, p});
        prev = p;
      }
      pieces.push_back(RowRange{prev, range.end});
      if (skewed != nullptr) *skewed = true;
      return pieces;
    }
  }

  std::vector<RowRange> pieces;
  pieces.reserve(static_cast<size_t>(ways));
  uint64_t chunk = range.size() / ways;
  for (int w = 0; w < ways; ++w) {
    RowRange piece;
    piece.begin = range.begin + chunk * w;
    piece.end = (w == ways - 1) ? range.end : range.begin + chunk * (w + 1);
    pieces.push_back(piece);
  }
  return pieces;
}

Status Mutator::SplitNode(QueryPlan* plan, int node_id, int ways) {
  auto pieces = PlanPieces(*plan, node_id, ways, nullptr, nullptr);
  if (!pieces.ok()) return pieces.status();
  return SplitNodeAt(plan, node_id, pieces.ValueOrDie());
}

Status Mutator::SplitNodeAt(QueryPlan* plan, int node_id,
                            const std::vector<RowRange>& pieces) {
  if (pieces.size() < 2) {
    return Status::InvalidArgument("split needs at least 2 pieces");
  }
  // Re-checked (not only in PlanPieces) because the alignment-partner path
  // applies one pieces decision to other nodes.
  APQ_RETURN_NOT_OK(CheckBasicSplittable(*plan, node_id));
  const PlanNode node = plan->node(node_id);  // copy: plan will be mutated
  RowRange range = node.has_slice ? node.slice : StaticOrigin(*plan, node_id);
  if (pieces.front().begin != range.begin || pieces.back().end != range.end) {
    return Status::InvalidArgument("pieces do not cover " + range.ToString());
  }
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (pieces[i].size() == 0) {
      return Status::InvalidArgument("empty piece " + pieces[i].ToString());
    }
    if (i > 0 && pieces[i].begin != pieces[i - 1].end) {
      return Status::InvalidArgument("pieces are not consecutive");
    }
  }

  // Create the clones over consecutive subranges (dynamic partitioning keeps
  // boundaries aligned on the base column by construction, paper Fig 8).
  std::vector<int> clone_ids;
  clone_ids.reserve(pieces.size());
  for (const RowRange& piece : pieces) {
    PlanNode clone = node;
    clone.id = -1;
    clone.slice = piece;
    clone.has_slice = true;
    clone_ids.push_back(plan->AddNode(clone));
  }

  // Wire the clones: splice into an existing union consumer in place of the
  // split node (preserving partition order) or introduce a new union.
  std::vector<int> consumers = plan->Consumers(node_id);
  bool spliced = false;
  if (consumers.size() == 1 && IsUnion(*plan, consumers[0])) {
    PlanNode& u = plan->node(consumers[0]);
    auto it = std::find(u.inputs.begin(), u.inputs.end(), node_id);
    if (it != u.inputs.end()) {
      size_t pos = static_cast<size_t>(it - u.inputs.begin());
      u.inputs.erase(it);
      u.inputs.insert(u.inputs.begin() + pos, clone_ids.begin(),
                      clone_ids.end());
      spliced = true;
    }
  }
  if (!spliced) {
    PlanNode u;
    u.kind = OpKind::kExchangeUnion;
    u.inputs = clone_ids;
    u.label = "pack(" + node.label + ")";
    int u_id = plan->AddNode(u);
    RewireConsumers(plan, node_id, u_id);
    // Exclude the clones themselves (they copied the original inputs, not
    // node_id; nothing to undo).
    for (int cid : clone_ids) {
      for (int& in : plan->node(cid).inputs) {
        APQ_CHECK(in != u_id);
        (void)in;
      }
    }
  }
  return Status::OK();
}

Status Mutator::PropagateUnion(QueryPlan* plan, int union_id, int max_fanin) {
  const PlanNode u = plan->node(union_id);  // copy
  if (u.kind != OpKind::kExchangeUnion) {
    return Status::InvalidArgument("node is not an exchange union");
  }
  int threshold = max_fanin > 0 ? max_fanin : config_.union_fanin_threshold;
  if (static_cast<int>(u.inputs.size()) > threshold) {
    return Status::Unsupported(
        "union removal suppressed: fan-in " + std::to_string(u.inputs.size()) +
        " exceeds threshold " + std::to_string(threshold));
  }
  std::vector<int> consumers = plan->Consumers(union_id);
  if (consumers.empty()) return Status::Unsupported("union has no consumers");
  for (int cid : consumers) {
    const PlanNode& c = plan->node(cid);
    if (c.kind == OpKind::kResult || c.kind == OpKind::kAggrMerge ||
        c.kind == OpKind::kExchangeUnion || c.kind == OpKind::kAggrMerge) {
      return Status::Unsupported(std::string("union feeds a ") +
                                 OpKindName(c.kind) + "; not propagatable");
    }
    if (!IsPropagatableConsumer(*plan, c, union_id)) {
      return Status::Unsupported(
          std::string("consumer ") + OpKindName(c.kind) +
          " cannot be cloned along the union inputs");
    }
    if (c.kind == OpKind::kAggregate && c.inputs.size() == 2) {
      return Status::Unsupported(
          "grouped aggregate consumers are handled by the advanced mutation");
    }
  }

  const size_t fanin = u.inputs.size();
  for (int cid : consumers) {
    const PlanNode c = plan->node(cid);  // copy
    if (c.kind == OpKind::kGroupBy) {
      // Delegate: parallelizing through a group-by is the advanced mutation.
      APQ_RETURN_NOT_OK(AdvancedGroupBy(plan, cid));
      continue;
    }
    if (c.kind == OpKind::kSort || c.kind == OpKind::kTopN) {
      APQ_RETURN_NOT_OK(AdvancedSort(plan, cid));
      continue;
    }
    // Identify which input slots reference the union; binary ops may pair
    // with a sibling union of equal fan-in.
    std::vector<int> clone_ids;
    clone_ids.reserve(fanin);
    for (size_t k = 0; k < fanin; ++k) {
      PlanNode clone = c;
      clone.id = -1;
      for (int& in : clone.inputs) {
        if (in == union_id) {
          in = u.inputs[k];
        } else if (IsUnion(*plan, in) &&
                   UnionsPartitionCompatible(*plan, union_id, in)) {
          in = plan->node(in).inputs[k];
        }
      }
      clone_ids.push_back(plan->AddNode(clone));
    }
    PlanNode pack;
    pack.kind = OpKind::kExchangeUnion;
    pack.inputs = clone_ids;
    pack.label = "pack(" + std::string(OpKindName(c.kind)) + ")";
    int pack_id = plan->AddNode(pack);

    if (c.kind == OpKind::kAggregate) {
      // Partial scalar aggregates must be recombined.
      PlanNode merge;
      merge.kind = OpKind::kAggrMerge;
      merge.agg_fn = c.agg_fn;
      merge.inputs = {pack_id};
      merge.label = "merge(" + std::string(AggFnName(c.agg_fn)) + ")";
      int merge_id = plan->AddNode(merge);
      RewireConsumers(plan, cid, merge_id);
    } else {
      RewireConsumers(plan, cid, pack_id);
    }
  }
  return Status::OK();
}

Status Mutator::AdvancedGroupBy(QueryPlan* plan, int groupby_id) {
  const PlanNode gb = plan->node(groupby_id);  // copy
  if (gb.kind != OpKind::kGroupBy) {
    return Status::InvalidArgument("node is not a group-by");
  }
  if (gb.inputs.size() != 1 || !IsUnion(*plan, gb.inputs[0])) {
    return Status::Unsupported(
        "advanced mutation needs the group-by input to be partitioned "
        "(an exchange union); parallelize its producer first");
  }
  const PlanNode u = plan->node(gb.inputs[0]);  // copy
  const size_t fanin = u.inputs.size();

  // All consumers must be aggregates whose optional value input is a union of
  // matching fan-in.
  std::vector<int> agg_ids = plan->Consumers(groupby_id);
  if (agg_ids.empty()) return Status::Unsupported("group-by has no consumers");
  for (int aid : agg_ids) {
    const PlanNode& a = plan->node(aid);
    if (a.kind != OpKind::kAggregate || a.inputs[0] != groupby_id) {
      return Status::Unsupported(
          "group-by consumers must be aggregates over its groups");
    }
    if (a.inputs.size() == 2) {
      int v = a.inputs[1];
      if (!IsUnion(*plan, v) ||
          !UnionsPartitionCompatible(*plan, gb.inputs[0], v)) {
        return Status::Unsupported(
            "aggregate value input is not a matching partitioned union");
      }
    }
  }

  // Clone the group-by once per partition (shared by all aggregates).
  std::vector<int> gb_clones;
  gb_clones.reserve(fanin);
  for (size_t k = 0; k < fanin; ++k) {
    PlanNode clone = gb;
    clone.id = -1;
    clone.inputs = {u.inputs[k]};
    gb_clones.push_back(plan->AddNode(clone));
  }

  for (int aid : agg_ids) {
    const PlanNode a = plan->node(aid);  // copy
    std::vector<int> agg_clones;
    agg_clones.reserve(fanin);
    for (size_t k = 0; k < fanin; ++k) {
      PlanNode clone = a;
      clone.id = -1;
      clone.inputs[0] = gb_clones[k];
      if (clone.inputs.size() == 2) {
        clone.inputs[1] = plan->node(a.inputs[1]).inputs[k];
      }
      agg_clones.push_back(plan->AddNode(clone));
    }
    PlanNode pack;
    pack.kind = OpKind::kExchangeUnion;
    pack.inputs = agg_clones;
    pack.label = "pack(partial " + std::string(AggFnName(a.agg_fn)) + ")";
    int pack_id = plan->AddNode(pack);

    PlanNode merge;
    merge.kind = OpKind::kAggrMerge;
    merge.agg_fn = a.agg_fn;
    merge.inputs = {pack_id};
    merge.label = "merge(" + std::string(AggFnName(a.agg_fn)) + ")";
    int merge_id = plan->AddNode(merge);
    RewireConsumers(plan, aid, merge_id);
  }
  return Status::OK();
}

Status Mutator::AdvancedSort(QueryPlan* plan, int sort_id) {
  const PlanNode s = plan->node(sort_id);  // copy
  if (s.kind != OpKind::kSort && s.kind != OpKind::kTopN) {
    return Status::InvalidArgument("node is not a sort/top-n");
  }
  if (s.inputs.size() != 1 || !IsUnion(*plan, s.inputs[0])) {
    return Status::Unsupported(
        "advanced sort needs a partitioned (union) input");
  }
  const PlanNode u = plan->node(s.inputs[0]);  // copy
  std::vector<int> clones;
  clones.reserve(u.inputs.size());
  for (int in : u.inputs) {
    PlanNode clone = s;
    clone.id = -1;
    clone.inputs = {in};
    clones.push_back(plan->AddNode(clone));
  }
  PlanNode pack;
  pack.kind = OpKind::kExchangeUnion;
  pack.inputs = clones;
  pack.label = "pack(sorted runs)";
  int pack_id = plan->AddNode(pack);

  // Final merge: a sort over concatenated sorted runs (cheap for nearly
  // sorted data; the cost model is charged conservatively).
  PlanNode merge = s;
  merge.id = -1;
  merge.inputs = {pack_id};
  merge.label = "mergesort";
  int merge_id = plan->AddNode(merge);
  RewireConsumers(plan, sort_id, merge_id);
  // The clones copied s's input; restore their per-partition inputs (done at
  // creation) — but RewireConsumers above may have redirected them if they
  // read sort_id, which they do not.
  return Status::OK();
}

void Mutator::FlattenUnions(QueryPlan* plan) {
  for (int id = 0; id < plan->num_nodes(); ++id) {
    if (plan->node(id).kind != OpKind::kExchangeUnion) continue;
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<int> flat;
      flat.reserve(plan->node(id).inputs.size());
      for (int in : plan->node(id).inputs) {
        if (plan->node(in).kind == OpKind::kExchangeUnion) {
          const auto& nested = plan->node(in).inputs;
          flat.insert(flat.end(), nested.begin(), nested.end());
          changed = true;
        } else {
          flat.push_back(in);
        }
      }
      plan->node(id).inputs = std::move(flat);
    }
  }
}

Status Mutator::SplitAligned(QueryPlan* plan, int node_id, int ways,
                             const OpProfile* prof, MutationReport* report) {
  const PlanNode before = plan->node(node_id);  // copy
  RowRange before_range = before.has_slice
                              ? before.slice
                              : StaticOrigin(*plan, node_id);

  // Pre-split context: position within an existing union, and the nodes that
  // consume this node's output (where pairing partners are found).
  std::vector<int> consumers = plan->Consumers(node_id);
  int union_id = -1;
  size_t pos = 0;
  size_t union_size_before = 0;
  if (consumers.size() == 1 &&
      plan->node(consumers[0]).kind == OpKind::kExchangeUnion) {
    union_id = consumers[0];
    const auto& ins = plan->node(union_id).inputs;
    pos = static_cast<size_t>(
        std::find(ins.begin(), ins.end(), node_id) - ins.begin());
    union_size_before = ins.size();
  }

  // One pieces decision shared by this node and every alignment partner, so
  // partner partition structures stay pairwise identical even when the
  // boundaries came from a skewed histogram.
  bool skewed = false;
  auto pieces_or = PlanPieces(*plan, node_id, ways, prof, &skewed);
  if (!pieces_or.ok()) return pieces_or.status();
  const std::vector<RowRange> pieces = pieces_or.MoveValueOrDie();
  APQ_RETURN_NOT_OK(SplitNodeAt(plan, node_id, pieces));
  if (report != nullptr) {
    report->skew_aware = skewed;
    report->split_rows.clear();
    report->split_rows.reserve(pieces.size() - 1);
    for (size_t i = 1; i < pieces.size(); ++i) {
      report->split_rows.push_back(pieces[i].begin);
    }
    if (skewed) {
      report->detail = "skew " +
                       TablePrinter::Fmt(std::max(prof->morsel_skew,
                                                  prof->morsel_tuple_skew),
                                         2) +
                       ": value-balanced re-partition of " +
                       OpKindName(before.kind) + " into " +
                       std::to_string(pieces.size()) + " pieces";
    }
  }

  // Alignment partners only matter for value-producing reconstruction
  // chains; row-id chains (selects) clip correctly on their own.
  if (before.kind != OpKind::kFetchJoin) return Status::OK();

  // Nodes whose output is paired positionally with this node's output.
  std::vector<int> partner_sources;
  std::vector<int> pair_consumers =
      union_id >= 0 ? plan->Consumers(union_id) : consumers;
  int self = union_id >= 0 ? union_id : node_id;
  for (int cid : pair_consumers) {
    const PlanNode& c = plan->node(cid);
    if (c.kind == OpKind::kMap && c.inputs.size() == 2) {
      int other = c.inputs[0] == self ? c.inputs[1] : c.inputs[0];
      if (other != self) partner_sources.push_back(other);
    } else if (c.kind == OpKind::kGroupBy) {
      for (int aid : plan->Consumers(cid)) {
        const PlanNode& a = plan->node(aid);
        if (a.kind == OpKind::kAggregate && a.inputs.size() == 2 &&
            a.inputs[1] != self) {
          partner_sources.push_back(a.inputs[1]);
        }
      }
    } else if (c.kind == OpKind::kAggregate && c.inputs.size() == 2 &&
               c.inputs[1] == self) {
      const PlanNode& g = plan->node(c.inputs[0]);
      if (g.kind == OpKind::kGroupBy && !g.inputs.empty() &&
          g.inputs[0] != self) {
        partner_sources.push_back(g.inputs[0]);
      }
    }
  }

  // Resolve each partner source to the concrete clone that mirrors this
  // node, and split it the same way (best effort: a partner that cannot
  // follow simply blocks later pairing, it never corrupts results).
  for (int src : partner_sources) {
    int target = -1;
    const PlanNode& p = plan->node(src);
    if (p.kind == OpKind::kExchangeUnion) {
      if (p.inputs.size() == union_size_before && pos < p.inputs.size()) {
        target = p.inputs[pos];
      }
    } else {
      target = src;
    }
    if (target < 0 || target == node_id) continue;
    const PlanNode& t = plan->node(target);
    if (t.kind != OpKind::kFetchJoin) continue;
    if (t.inputs != before.inputs) continue;  // different candidate stream
    RowRange t_range =
        t.has_slice ? t.slice : StaticOrigin(*plan, target);
    if (!(t_range == before_range)) continue;
    // Same pieces as the primary split: partner alignment requires identical
    // boundaries, uniform or skew-derived alike.
    Status st = SplitNodeAt(plan, target, pieces);
    if (!st.ok() && st.code() != StatusCode::kUnsupported) return st;
  }
  return Status::OK();
}

int Mutator::FindSplittableAncestor(const QueryPlan& plan, int node_id,
                                    const RunProfile& profile) const {
  // Collect ancestors via DFS.
  std::vector<int> stack = {node_id};
  std::vector<bool> seen(plan.num_nodes(), false);
  std::vector<bool> ancestor(plan.num_nodes(), false);
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = true;
    for (int in : plan.node(id).inputs) {
      ancestor[in] = true;
      stack.push_back(in);
    }
  }
  // Most expensive splittable ancestor by profiled duration.
  int best = -1;
  double best_time = -1;
  for (const auto& op : profile.ops) {
    if (op.node_id < 0 || op.node_id >= plan.num_nodes()) continue;
    if (!ancestor[op.node_id]) continue;
    const PlanNode& cand = plan.node(op.node_id);
    if (!IsBasicParallelizable(cand.kind)) continue;
    if (cand.kind == OpKind::kFetchJoin &&
        cand.fetch_side == FetchSide::kRight) {
      continue;  // not range-splittable (order preservation)
    }
    if (op.duration_ns() > best_time) {
      best_time = op.duration_ns();
      best = op.node_id;
    }
  }
  return best;
}

Status Mutator::MutateOp(QueryPlan* plan, int node_id, MutationReport* report,
                         const OpProfile* prof) {
  // Copy, not reference: every mutation below AddNode()s into the plan,
  // which may reallocate the node vector — reading `n` afterwards (for the
  // report string, or to continue scanning n.inputs for a union) would be a
  // use-after-free (caught by the CI ASan job).
  const PlanNode n = plan->node(node_id);
  switch (n.kind) {
    case OpKind::kSelect:
    case OpKind::kFetchJoin:
    case OpKind::kJoin: {
      Status st =
          SplitAligned(plan, node_id, config_.split_ways, prof, report);
      if (st.ok()) {
        if (report->skew_aware) {
          report->action = "basic-skew";  // detail set by SplitAligned
        } else {
          report->action = "basic";
          report->detail = std::string("split ") + OpKindName(n.kind);
        }
        return Status::OK();
      }
      if (st.code() != StatusCode::kUnsupported) return st;
      // Not range-splittable (e.g. right-side fetch-join): parallelize by
      // removing the union feeding it, if one exists.
      for (int in : n.inputs) {
        if (IsUnion(*plan, in)) {
          APQ_RETURN_NOT_OK(PropagateUnion(plan, in));
          report->action = "medium";
          report->detail = "propagated input union (unsplittable operator)";
          return Status::OK();
        }
      }
      return st;
    }
    case OpKind::kExchangeUnion: {
      APQ_RETURN_NOT_OK(PropagateUnion(plan, node_id));
      report->action = "medium";
      report->detail = "propagated union inputs to consumers";
      return Status::OK();
    }
    case OpKind::kGroupBy: {
      APQ_RETURN_NOT_OK(AdvancedGroupBy(plan, node_id));
      report->action = "advanced";
      report->detail = "cloned group-by + aggregates per partition";
      return Status::OK();
    }
    case OpKind::kSort:
    case OpKind::kTopN: {
      APQ_RETURN_NOT_OK(AdvancedSort(plan, node_id));
      report->action = "advanced";
      report->detail = "per-partition sorts + merge";
      return Status::OK();
    }
    case OpKind::kMap: {
      // Parallelized by removing the union feeding it.
      for (int in : n.inputs) {
        if (IsUnion(*plan, in)) {
          APQ_RETURN_NOT_OK(PropagateUnion(plan, in));
          report->action = "medium";
          report->detail = "propagated input union through map";
          return Status::OK();
        }
      }
      return Status::Unsupported("map input is not partitioned yet");
    }
    case OpKind::kAggregate: {
      if (n.inputs.size() == 1 && IsUnion(*plan, n.inputs[0])) {
        int u = n.inputs[0];
        APQ_RETURN_NOT_OK(PropagateUnion(plan, u));
        report->action = "medium";
        report->detail = "cloned scalar aggregate per partition + merge";
        return Status::OK();
      }
      return Status::Unsupported("aggregate input is not partitioned yet");
    }
    case OpKind::kAggrMerge:
    case OpKind::kResult:
      return Status::Unsupported(std::string(OpKindName(n.kind)) +
                                 " is not parallelizable");
  }
  return Status::Unsupported("unknown operator");
}

StatusOr<QueryPlan> Mutator::MutateMostExpensive(const QueryPlan& plan,
                                                 const RunProfile& profile,
                                                 MutationReport* report) {
  report->mutated = false;
  // Operators ordered by effective cost, descending: measured execution time
  // inflated by the deterministic tuple skew (capped). A skewed operator's
  // completion time after parallelization is bounded by its densest
  // partition, so observed skew is hidden cost — prioritizing it is what
  // makes the feedback loop re-partition the skewed select before the GME
  // settles, instead of after (paper Fig 12). The wall-based morsel_skew is
  // deliberately NOT used here: it varies run to run and would scramble the
  // victim order.
  auto effective_cost = [](const OpProfile& op) {
    double skew = std::min(std::max(op.morsel_tuple_skew, 1.0), 8.0);
    return op.duration_ns() * skew;
  };
  std::vector<int> order(profile.ops.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return effective_cost(profile.ops[a]) > effective_cost(profile.ops[b]);
  });

  // Profiles by node id, so the skew histogram of any chosen victim (target
  // or ancestor) can accompany the mutation.
  auto prof_of = [&profile](int node_id) -> const OpProfile* {
    for (const auto& p : profile.ops) {
      if (p.node_id == node_id) return &p;
    }
    return nullptr;
  };

  for (int idx : order) {
    const OpProfile& op = profile.ops[idx];
    if (op.kind == OpKind::kResult) continue;
    QueryPlan mutated = plan.Clone();
    MutationReport attempt;
    attempt.target_node = op.node_id;
    Status st = MutateOp(&mutated, op.node_id, &attempt, &op);
    if (st.ok()) {
      FlattenUnions(&mutated);
      attempt.mutated = true;
      *report = attempt;
      return mutated;
    }
    // Non-filtering op whose input is not yet partitioned: parallelize the
    // most expensive splittable ancestor instead (the paper's propagation-
    // dependency resolution).
    int anc = FindSplittableAncestor(plan, op.node_id, profile);
    if (anc >= 0) {
      QueryPlan mutated2 = plan.Clone();
      MutationReport attempt2;
      attempt2.target_node = anc;
      Status st2 = MutateOp(&mutated2, anc, &attempt2, prof_of(anc));
      if (st2.ok()) {
        FlattenUnions(&mutated2);
        attempt2.mutated = true;
        attempt2.detail += " (ancestor of X_" + std::to_string(op.node_id) + ")";
        *report = attempt2;
        return mutated2;
      }
    }
    // Otherwise fall through to the next most expensive operator.
  }
  // Nothing mutable: return the plan unchanged.
  return plan.Clone();
}

}  // namespace apq
