#include "adaptive/convergence.h"

#include <algorithm>
#include <cmath>

namespace apq {

bool ConvergenceController::Observe(double exec_ns) {
  times_.push_back(exec_ns);
  int run = static_cast<int>(times_.size()) - 1;

  if (run == 0) {
    // Serial execution: establishes the baseline only.
    return true;
  }

  double serial = times_[0];
  double prev = times_[run - 1];

  // Raw minimum (best plan seen, ignoring the GME threshold).
  if (raw_min_run_ < 0 || exec_ns < raw_min_) {
    raw_min_ = exec_ns;
    raw_min_run_ = run;
  }

  // --- GME update (paper §3.1) -------------------------------------------
  double cur_imprv = serial > 0 ? std::abs(serial - exec_ns) / serial : 0;
  if (gme_run_ < 0) {
    gme_ = exec_ns;
    gme_run_ = run;
    gme_imprv_ = cur_imprv;
  } else if (exec_ns < gme_ && (cur_imprv - gme_imprv_) > params_.gme_threshold) {
    gme_ = exec_ns;
    gme_run_ = run;
    gme_imprv_ = cur_imprv;
  }

  // --- ROI and credit/debit (paper §3.2) ----------------------------------
  double roi = (prev - exec_ns) / std::max(exec_ns, prev);
  if (roi >= 0) {
    credit_ += roi * params_.cores;
  } else {
    debit_ += -roi * params_.cores;
  }

  // --- Leaking debit (paper §3.3.2) ---------------------------------------
  if (params_.leaking_debit) {
    if (!leak_armed_ && run >= params_.cores) {
      double remaining_runs =
          static_cast<double>(params_.extra_runs) * params_.cores;
      leak_ = credit_ / remaining_runs;
      leak_armed_ = true;
    }
    if (leak_armed_) {
      // The paper's constant leak is computed once, at the threshold run.
      // Credit that keeps accruing afterwards (plateau jitter, spike
      // recoveries) can outpace it, so §3.3.2's claim that "the available
      // credit is drained to 0" requires the leak to scale with the balance:
      // drain at least fast enough to reach zero by the paper's own upper
      // bound on convergence runs.
      double runs_left = std::max(1, UpperBound() - run);
      double schedule = (credit_ - debit_) / runs_left;
      debit_ += std::max(leak_, schedule);
    }
  }

  if (run + 1 >= params_.max_runs) return false;

  bool balance_positive = (credit_ - debit_) > 0;
  if (balance_positive) {
    grace_used_ = false;
    return true;
  }

  // --- Peak grace (paper §3.3.3) ------------------------------------------
  // A unique peak (time above serial) would otherwise halt the algorithm
  // immediately; allow the next run so the descent can compensate.
  if (params_.peak_grace && !grace_used_ && exec_ns > serial) {
    grace_used_ = true;
    return true;
  }
  return false;
}

}  // namespace apq
