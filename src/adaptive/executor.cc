#include "adaptive/executor.h"

namespace apq {

StatusOr<AdaptiveOutcome> AdaptiveExecutor::Run(
    const QueryPlan& serial_plan, const std::vector<SimTask>& background) {
  AdaptiveOutcome out;
  ConvergenceController conv(params_.convergence);
  Mutator mutator(params_.mutator);

  QueryPlan plan = serial_plan.Clone();
  Intermediate serial_result;
  int run = 0;
  // Tracks which executed run each plan corresponds to, so the GME plan can
  // be recovered. plans[r] executed as run r.
  std::vector<QueryPlan> plan_history;
  std::vector<RunProfile> profile_history;

  while (true) {
    EvalResult er;
    APQ_RETURN_NOT_OK(evaluator_->Execute(plan, &er));
    if (run == 0) {
      serial_result = er.result;
      out.result = er.result;
    } else if (params_.verify_results) {
      std::string diff = DiffIntermediates(serial_result, er.result, 1e-6);
      if (!diff.empty()) {
        return Status::Internal("run " + std::to_string(run) +
                                " result diverged from serial: " + diff);
      }
    }

    // Simulate this run on the virtual machine, alongside any background
    // workload (instance 0 is this query).
    std::vector<SimTask> tasks =
        BuildSimTasks(plan, er.metrics, cost_model_, /*instance=*/0);
    size_t own_tasks = tasks.size();
    for (SimTask t : background) {
      // Background deps are indices within the background vector; shift them.
      for (int& d : t.deps) d += static_cast<int>(own_tasks);
      if (t.instance == 0) t.instance = 1;
      tasks.push_back(std::move(t));
    }
    SimOutcome sim = simulator_.Run(tasks, /*run_seed_salt=*/run + 1);
    double time = sim.instance_response_ns[0];
    std::vector<SimTaskTiming> own_timings(sim.timings.begin(),
                                           sim.timings.begin() + own_tasks);
    RunProfile profile = MakeRunProfile(plan, er.metrics, cost_model_,
                                        own_timings, sim.makespan_ns,
                                        sim.utilization);
    // Utilization of this query's own operators against its own span.
    if (time > 0) {
      double busy = 0;
      for (const auto& op : profile.ops) busy += op.duration_ns();
      profile.utilization =
          busy / (time * simulator_.config().logical_cores);
      profile.makespan_ns = time;
    }

    plan_history.push_back(plan.Clone());
    profile_history.push_back(profile);

    bool cont = conv.Observe(time);

    AdaptiveRun rec;
    rec.run = run;
    rec.time_ns = time;
    rec.wall_ns = er.wall_ns;
    rec.utilization = profile.utilization;
    rec.plan_stats = plan.Stats();
    rec.max_morsel_skew = profile.MaxMorselSkew();
    out.runs.push_back(rec);

    if (!cont) break;

    // Morph: parallelize the most expensive operator for the next run.
    MutationReport report;
    auto mutated = mutator.MutateMostExpensive(plan, profile, &report);
    if (!mutated.ok()) return mutated.status();
    out.runs.back().mutated_node = report.target_node;
    out.runs.back().mutation = report.mutated ? report.action : "none";
    if (!report.mutated) {
      // No operator can be parallelized further; natural convergence.
      break;
    }
    plan = mutated.MoveValueOrDie();
    APQ_RETURN_NOT_OK(plan.Validate());
    ++run;
  }

  out.serial_time_ns = conv.serial_time();
  out.total_runs = conv.runs_observed();
  out.best_run = conv.raw_min_run() < 0 ? 0 : conv.raw_min_run();
  out.best_time_ns = out.best_run == 0 ? conv.serial_time()
                                       : conv.times()[out.best_run];
  if (out.best_time_ns > conv.serial_time()) {
    out.best_run = 0;
    out.best_time_ns = conv.serial_time();
  }
  out.gme_run = conv.gme_run() < 0 ? 0 : conv.gme_run();
  out.gme_time_ns = conv.gme_run() < 0 ? conv.serial_time() : conv.gme();
  if (out.gme_time_ns > out.serial_time_ns) {
    // Parallelization never beat the serial plan (small inputs / contention):
    // converge on the serial plan itself.
    out.gme_run = 0;
    out.gme_time_ns = out.serial_time_ns;
  }
  out.gme_plan = plan_history[out.gme_run].Clone();
  out.gme_profile = profile_history[out.gme_run];
  out.serial_wall_ns = out.runs[0].wall_ns;
  out.gme_wall_ns = out.runs[out.gme_run].wall_ns;
  return out;
}

}  // namespace apq
