#include "adaptive/executor.h"

#include <algorithm>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace apq {

namespace {

/// Static-storage event name for a mutation action (ring-buffer slots store
/// the name pointer, not a copy).
const char* MutationEventName(const MutationReport& r) {
  if (r.action == "basic") return "mutate-basic";
  if (r.action == "basic-skew") return "mutate-basic-skew";
  if (r.action == "medium") return "mutate-medium";
  if (r.action == "advanced") return "mutate-advanced";
  return "mutate";
}

/// Floor for the runtime skew response: morsels this small are pure
/// scheduling overhead even on the scaled-down datasets.
constexpr uint64_t kMinAdaptiveMorselRows = 256;

/// Caps on the per-run proportional shrink. A run with tuple skew s shrinks
/// an operator's morsels by ~s (more skew -> smaller morsels -> more steal
/// opportunities), but never by more than 8x per run: one pathological
/// histogram should not collapse morsels straight to the floor, because the
/// response must stay reversible when the skew was transient.
constexpr double kMinShrinkFactor = 2.0;
constexpr double kMaxShrinkFactor = 8.0;

}  // namespace

StatusOr<AdaptiveOutcome> AdaptiveExecutor::Run(
    const QueryPlan& serial_plan, const std::vector<SimTask>& background) {
  AdaptiveOutcome out;
  out.query_id = obs::CurrentQueryId();
  ConvergenceController conv(params_.convergence);
  Mutator mutator(params_.mutator);

  // Morsel-size hints are per-plan (node ids): start every adaptive process
  // clean, and clear them again on EVERY exit path (including error
  // returns) — a leaked hint map would silently shrink the morsels of any
  // later query whose node ids collide, which is all of them.
  evaluator_->SetAdaptiveMorselRows({});
  struct HintGuard {
    Evaluator* evaluator;
    ~HintGuard() { evaluator->SetAdaptiveMorselRows({}); }
  } hint_guard{evaluator_};

  QueryPlan plan = serial_plan.Clone();
  Intermediate serial_result;
  int run = 0;
  // Tracks which executed run each plan corresponds to, so the GME plan can
  // be recovered. plans[r] executed as run r.
  std::vector<QueryPlan> plan_history;
  std::vector<RunProfile> profile_history;
  // Last run's morsel-size hints, keyed by node id: the proportional skew
  // response below shrinks/grows relative to these rather than restarting
  // from the base size every run.
  std::unordered_map<int, uint64_t> prev_hints;

  static obs::Counter* const adaptive_runs =
      obs::MetricsRegistry::Global().GetCounter("apq_adaptive_runs_total");
  static obs::Counter* const mutations =
      obs::MetricsRegistry::Global().GetCounter("apq_mutations_total");
  static obs::Counter* const skew_repartitions =
      obs::MetricsRegistry::Global().GetCounter(
          "apq_skew_repartitions_total");

  while (true) {
    // One span per adaptive iteration: execute + profile + (maybe) mutate.
    // Nests under the engine's query span and above the evaluator's execute
    // span on this thread.
    obs::SpanScope run_span(obs::SpanKind::kRun, "adaptive-run", run,
                            static_cast<int64_t>(out.query_id));
    adaptive_runs->Inc();
    EvalResult er;
    APQ_RETURN_NOT_OK(evaluator_->Execute(plan, &er));
    if (run == 0) {
      serial_result = er.result;
      out.result = er.result;
    } else if (params_.verify_results) {
      std::string diff = DiffIntermediates(serial_result, er.result, 1e-6);
      if (!diff.empty()) {
        return Status::Internal("run " + std::to_string(run) +
                                " result diverged from serial: " + diff);
      }
    }

    // Simulate this run on the virtual machine, alongside any background
    // workload (instance 0 is this query).
    std::vector<SimTask> tasks =
        BuildSimTasks(plan, er.metrics, cost_model_, /*instance=*/0);
    size_t own_tasks = tasks.size();
    for (SimTask t : background) {
      // Background deps are indices within the background vector; shift them.
      for (int& d : t.deps) d += static_cast<int>(own_tasks);
      if (t.instance == 0) t.instance = 1;
      tasks.push_back(std::move(t));
    }
    SimOutcome sim = simulator_.Run(tasks, /*run_seed_salt=*/run + 1);
    double time = sim.instance_response_ns[0];
    std::vector<SimTaskTiming> own_timings(sim.timings.begin(),
                                           sim.timings.begin() + own_tasks);
    RunProfile profile = MakeRunProfile(plan, er.metrics, cost_model_,
                                        own_timings, sim.makespan_ns,
                                        sim.utilization);
    // Utilization of this query's own operators against its own span.
    if (time > 0) {
      double busy = 0;
      for (const auto& op : profile.ops) busy += op.duration_ns();
      profile.utilization =
          busy / (time * simulator_.config().logical_cores);
      profile.makespan_ns = time;
    }

    plan_history.push_back(plan.Clone());
    // History keeps the scalar per-op skew fields but not the raw morsel
    // histograms: only the CURRENT run's histogram feeds the mutator, and
    // retaining (or even transiently copying) every run's would cost
    // O(ops x morsels) per run. Swap each histogram out around the copy.
    profile_history.emplace_back();
    {
      RunProfile& hist = profile_history.back();
      hist.makespan_ns = profile.makespan_ns;
      hist.utilization = profile.utilization;
      hist.ops.reserve(profile.ops.size());
      for (auto& op : profile.ops) {
        std::vector<MorselMetrics> saved;
        saved.swap(op.morsels);
        hist.ops.push_back(op);
        op.morsels = std::move(saved);
      }
    }

    bool cont = conv.Observe(time);

    AdaptiveRun rec;
    rec.run = run;
    rec.time_ns = time;
    rec.wall_ns = er.wall_ns;
    rec.utilization = profile.utilization;
    rec.plan_stats = plan.Stats();
    rec.max_morsel_skew = profile.MaxMorselSkew();
    rec.max_morsel_tuple_skew = profile.MaxMorselTupleSkew();
    out.runs.push_back(rec);

    // Lineage entry for this run, parallel to out.runs; the decision fields
    // (victim / action / split points) are filled below once the mutator has
    // spoken. Invariant checked by tests: lineage.size() == total_runs.
    AdaptiveLineage lin;
    lin.run = run;
    lin.time_ns = time;
    lin.wall_ns = er.wall_ns;
    lin.max_morsel_skew = rec.max_morsel_skew;
    lin.max_morsel_tuple_skew = rec.max_morsel_tuple_skew;
    out.lineage.push_back(std::move(lin));

    // Runtime skew response: operators that ran imbalanced this run get a
    // shrunken morsel size next run, so the work-stealing scheduler
    // rebalances within the operator while the mutator works on the plan.
    // The shrink is proportional to the measured tuple skew (capped at
    // kMaxShrinkFactor per run, floored at kMinAdaptiveMorselRows), and
    // operators whose skew drops back below the threshold grow their morsels
    // back toward the base size (2x per run) — transient skew must not pin
    // an operator at tiny morsels forever. Hints persist across runs while
    // the node survives; mutated clones have fresh node ids, so hints never
    // outlive the nodes they profiled.
    if (evaluator_->options().adaptive_morsel_rows) {
      std::unordered_map<int, uint64_t> hints;
      const uint64_t base = evaluator_->EffectiveMorselRows();
      for (const auto& op : profile.ops) {
        if (op.num_morsels < 2) continue;
        auto prev = prev_hints.find(op.node_id);
        const uint64_t cur = prev == prev_hints.end() ? base : prev->second;
        const double skew = std::max(op.morsel_skew, op.morsel_tuple_skew);
        if (skew >= params_.mutator.skew_threshold) {
          const double factor =
              std::min(std::max(skew, kMinShrinkFactor), kMaxShrinkFactor);
          const uint64_t shrunk = std::max(
              static_cast<uint64_t>(static_cast<double>(cur) / factor),
              kMinAdaptiveMorselRows);
          if (shrunk < base) hints[op.node_id] = shrunk;
        } else if (cur < base) {
          // Converged below threshold: grow back toward the base size.
          const uint64_t grown = std::min(cur * 2, base);
          if (grown < base) hints[op.node_id] = grown;
        }
      }
      out.runs.back().skew_hint_ops = static_cast<int>(hints.size());
      out.lineage.back().skew_hint_ops = static_cast<int>(hints.size());
      if (!hints.empty()) {
        // One event per shrunken operator so the trace shows WHICH nodes the
        // runtime skew response squeezed and to what morsel size.
        for (const auto& [node, rows] : hints) {
          obs::EmitInstant(obs::SpanKind::kMutation, "skew-morsel-shrink",
                           node, static_cast<int64_t>(rows));
        }
      }
      prev_hints = hints;
      evaluator_->SetAdaptiveMorselRows(std::move(hints));
    }

    if (!cont) break;

    // Morph: parallelize the most expensive operator for the next run.
    MutationReport report;
    auto mutated = mutator.MutateMostExpensive(plan, profile, &report);
    if (!mutated.ok()) return mutated.status();
    out.runs.back().mutated_node = report.target_node;
    out.runs.back().mutation = report.mutated ? report.action : "none";
    out.lineage.back().victim = report.target_node;
    out.lineage.back().action = report.mutated ? report.action : "none";
    out.lineage.back().skew_aware = report.mutated && report.skew_aware;
    out.lineage.back().split_rows = report.split_rows;
    if (report.mutated && report.skew_aware) ++out.skew_mutations;
    if (report.mutated) {
      mutations->Inc();
      if (report.skew_aware) skew_repartitions->Inc();
      obs::EmitInstant(obs::SpanKind::kMutation, MutationEventName(report),
                       report.target_node,
                       static_cast<int64_t>(report.split_rows.size()),
                       report.skew_aware ? 1 : 0);
      // The chosen split points, one event each (a1 = base-row boundary):
      // for a skew-aware re-partition these are the value-balanced
      // boundaries the Fig 12 feedback loop picked.
      for (uint64_t row : report.split_rows) {
        obs::EmitInstant(obs::SpanKind::kMutation,
                         report.skew_aware ? "skew-split-point"
                                           : "split-point",
                         report.target_node, static_cast<int64_t>(row));
      }
    }
    if (!report.mutated) {
      // No operator can be parallelized further; natural convergence.
      break;
    }
    plan = mutated.MoveValueOrDie();
    APQ_RETURN_NOT_OK(plan.Validate());
    ++run;
  }

  out.serial_time_ns = conv.serial_time();
  out.total_runs = conv.runs_observed();
  out.best_run = conv.raw_min_run() < 0 ? 0 : conv.raw_min_run();
  out.best_time_ns = out.best_run == 0 ? conv.serial_time()
                                       : conv.times()[out.best_run];
  if (out.best_time_ns > conv.serial_time()) {
    out.best_run = 0;
    out.best_time_ns = conv.serial_time();
  }
  out.gme_run = conv.gme_run() < 0 ? 0 : conv.gme_run();
  out.gme_time_ns = conv.gme_run() < 0 ? conv.serial_time() : conv.gme();
  if (out.gme_time_ns > out.serial_time_ns) {
    // Parallelization never beat the serial plan (small inputs / contention):
    // converge on the serial plan itself.
    out.gme_run = 0;
    out.gme_time_ns = out.serial_time_ns;
  }
  out.gme_plan = plan_history[out.gme_run].Clone();
  out.gme_profile = profile_history[out.gme_run];
  out.serial_wall_ns = out.runs[0].wall_ns;
  out.gme_wall_ns = out.runs[out.gme_run].wall_ns;
  return out;
}

}  // namespace apq
