// Heuristic (static) plan parallelization: the MonetDB-style baseline the
// paper compares against (mitosis + mergetable).
//
// Given a serial plan and a target degree of parallelism N, every leaf
// operator reading the largest table is split into N equi-range partitions,
// and the resulting exchange unions are pushed up through all dataflow-
// dependent operators until only the final packs/merges remain. All
// parallelizable operators end up with exactly N clones, independent of data
// distribution or runtime feedback — which is precisely what the adaptive
// scheme improves upon.
#ifndef APQ_HEURISTIC_PARALLELIZER_H_
#define APQ_HEURISTIC_PARALLELIZER_H_

#include "adaptive/mutator.h"
#include "plan/plan.h"
#include "storage/table.h"
#include "util/status.h"

namespace apq {

/// \brief Heuristic parallelizer configuration.
struct HeuristicConfig {
  int dop = 32;  // number of partitions / threads (MonetDB: #threads)
  /// Partition only leaves whose column belongs to the largest base input
  /// (measured by the leaf's readable range in bytes), like MonetDB's
  /// mitosis; smaller inputs stay unpartitioned.
  bool largest_table_only = true;
  uint64_t min_partition_rows = 1;
};

/// \brief Statically parallelizes a serial plan.
class HeuristicParallelizer {
 public:
  explicit HeuristicParallelizer(HeuristicConfig config = HeuristicConfig())
      : config_(config) {}

  /// Returns the parallelized plan (the input plan is not modified).
  StatusOr<QueryPlan> Parallelize(const QueryPlan& serial_plan) const;

 private:
  HeuristicConfig config_;
};

}  // namespace apq

#endif  // APQ_HEURISTIC_PARALLELIZER_H_
