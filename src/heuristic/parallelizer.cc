#include "heuristic/parallelizer.h"

#include <algorithm>

namespace apq {

StatusOr<QueryPlan> HeuristicParallelizer::Parallelize(
    const QueryPlan& serial_plan) const {
  QueryPlan plan = serial_plan.Clone();
  if (config_.dop < 2) return plan;

  MutatorConfig mcfg;
  mcfg.min_partition_rows = config_.min_partition_rows;
  // The heuristic baseline has no plan-explosion guard: a large int stands in
  // for "unbounded" when pushing unions up.
  mcfg.union_fanin_threshold = 1 << 20;
  Mutator mutator(mcfg);

  // Phase 1: split leaf operators N ways. With largest_table_only, split only
  // the leaves reading the biggest base input (MonetDB partitions the largest
  // table and propagates).
  auto order = plan.TopologicalOrder();
  if (!order.ok()) return order.status();
  uint64_t largest = 0;
  for (int id : order.ValueOrDie()) {
    const PlanNode& n = plan.node(id);
    if (!n.inputs.empty() || !IsBasicParallelizable(n.kind)) continue;
    if (!n.column) continue;
    largest = std::max(largest, n.EffectiveRange().size());
  }
  for (int id : order.ValueOrDie()) {
    const PlanNode& n = plan.node(id);
    if (!n.inputs.empty() || !IsBasicParallelizable(n.kind)) continue;
    if (!n.column) continue;
    uint64_t rows = n.EffectiveRange().size();
    if (config_.largest_table_only && rows < largest) continue;
    if (rows < static_cast<uint64_t>(config_.dop)) continue;
    Status st = mutator.SplitNode(&plan, id, config_.dop);
    if (!st.ok() && st.code() != StatusCode::kUnsupported) return st;
  }

  // Phase 2: push unions up through dataflow-dependent operators until fix-
  // point (a plan re-writer "propagating the partitions to data flow
  // dependent operators", paper §4.2.1).
  for (int iter = 0; iter < 1024; ++iter) {
    auto topo = plan.TopologicalOrder();
    if (!topo.ok()) return topo.status();
    bool changed = false;
    for (int id : topo.ValueOrDie()) {
      if (plan.node(id).kind != OpKind::kExchangeUnion) continue;
      Status st = mutator.PropagateUnion(&plan, id, /*max_fanin=*/1 << 20);
      if (st.ok()) {
        Mutator::FlattenUnions(&plan);
        changed = true;
        break;  // plan structure changed; recompute topo order
      }
      if (st.code() != StatusCode::kUnsupported) return st;
    }
    if (!changed) break;
  }

  APQ_RETURN_NOT_OK(plan.Validate());
  plan.set_name(serial_plan.name() + "_hp" + std::to_string(config_.dop));
  return plan;
}

}  // namespace apq
