// The query service's wire format: a deliberately tiny line-oriented
// protocol (one request line in, one response block out) so any client —
// the bench replayer, netcat, a CI script — can drive the engine without a
// client library.
//
// Request (one LF-terminated line per query, pipelining allowed):
//
//   RUN <query> [key=value ...]
//
// where <query> is a workload query name (TPC-H "Q4".."Q22", see
// workload/tpch.h) and the optional parameters are:
//
//   tag=<n>        echoed verbatim in the response header, so a client can
//                  correlate pipelined responses with requests
//   sel=<frac>     Q6 only: selectivity-controlled variant (Q6Selectivity)
//
// Response block:
//
//   OK id=<qid> tag=<n> kind=<kind> rows=<r> workers=<w> wall_ns=<ns> \
//      queue_wait_ns=<ns>
//   ROW <v1> [<v2> [<v3>]]          (one line per result row)
//   END
//
// or, on failure, a typed single-line error followed by END:
//
//   ERR <type> tag=<n> <message>
//   END
//
// <type> is a machine-parseable token: SHED (admission queue full — retry
// later), PARSE (malformed request line), PLAN (unknown query name /
// bad parameter), EXEC (the engine failed; <message> carries the Status).
// Result rows serialize every value with enough precision that two
// responses are byte-identical iff the results are bit-identical — the
// service determinism tests diff the serialized form directly against
// Engine::RunPlan output.
#ifndef APQ_SERVICE_PROTOCOL_H_
#define APQ_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/intermediate.h"
#include "util/status.h"

namespace apq {
namespace service {

/// Typed error tokens (the <type> of an ERR line).
enum class ErrType { kShed, kParse, kPlan, kExec };
const char* ErrTypeName(ErrType t);

/// \brief One parsed request line.
struct Request {
  std::string query;          // e.g. "Q6"
  uint64_t tag = 0;           // client correlation tag (0 = none given)
  double sel = -1.0;          // sel=<frac> parameter (-1 = absent)
};

/// Parses "RUN <query> [key=value ...]". Unknown keys are rejected (a typo
/// silently ignored would be a misconfiguration, the house hardening rule).
Status ParseRequest(const std::string& line, Request* out);

/// Serializes one query result as the ROW lines of a response block
/// (excluding the OK header and END trailer). Deterministic: bit-identical
/// intermediates produce byte-identical text, making the wire form directly
/// diffable for the determinism tests.
std::string SerializeResult(const Intermediate& result);

/// The full OK response block: header + ROW lines + END.
std::string OkResponse(uint64_t query_id, uint64_t tag, int workers,
                       double wall_ns, double queue_wait_ns,
                       const Intermediate& result);

/// The full ERR response block: "ERR <type> tag=<n> <message>\nEND\n".
/// Newlines inside `message` are flattened to spaces so the block stays
/// line-parseable.
std::string ErrResponse(ErrType type, uint64_t tag, const std::string& message);

}  // namespace service
}  // namespace apq

#endif  // APQ_SERVICE_PROTOCOL_H_
