// The query-service front-end: serve the engine, don't just bench it.
//
// A QueryService binds a local TCP port (127.0.0.1 only, like the
// introspection endpoint) and accepts the line protocol of
// service/protocol.h from many concurrent client sessions. One dedicated
// reader thread multiplexes every session with poll() — accepting new
// connections, splitting received bytes into request lines, and parsing
// them — while a fleet of exactly max_concurrent executor threads runs the
// admitted queries, each on its own Engine, all multiplexing ONE shared
// morsel-scheduler worker fleet (the production configuration of
// examples/concurrent_workload.cpp).
//
// Admission control (service/admission.h) sits between the two:
//
//   * at most max_concurrent queries produce morsels at once — the bound is
//     structural (the executor fleet is that size);
//   * overflow queues FIFO with priority aging (short selects age
//     kShortAgingWeight times faster than heavy analytics, so a burst of
//     heavies cannot starve them — admission_limits.h);
//   * beyond max_queue_depth arrivals are shed with the typed ERR SHED
//     response instead of queued, so overload degrades to fast rejection,
//     never to collapse;
//   * under load each admitted query's share of the worker fleet is
//     degraded by the shared Vectorwise grant formula
//     (service::AdmissionGrant, the same constants vwsim simulates): the
//     service multiplies the query's morsel size by the load factor, which
//     caps how many fleet workers its tasks can occupy without touching
//     results (morsel size never changes output — the house invariant).
//
// Observability: apq_service_* metrics in the global registry (scraped via
// /metrics), and /debug/service on the HTTP exporter serves per-service
// admission state (QueryService::ServiceJson, installed via
// obs::SetServiceProvider), validated by tools/service_check.py.
#ifndef APQ_SERVICE_QUERY_SERVICE_H_
#define APQ_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/protocol.h"
#include "util/status.h"
#include "workload/tpch.h"

namespace apq {

class Engine;
class MorselScheduler;

namespace service {

/// \brief Service configuration. Defaults come from admission_limits.h;
/// FromEnv() applies the APQ_SERVICE_* environment knobs on top (each
/// hardened like every other APQ_* knob: an invalid value warns once and
/// keeps the default).
struct ServiceConfig {
  /// TCP port to bind on 127.0.0.1 (0 = kernel-assigned ephemeral port, for
  /// tests and the in-process bench).
  int port = 0;
  /// Concurrently executing (morsel-producing) queries; also the executor
  /// thread count. APQ_SERVICE_MAX_CONCURRENT overrides.
  int max_concurrent = kDefaultMaxConcurrent;
  /// Queued queries beyond which arrivals are shed with ERR SHED.
  /// APQ_SERVICE_QUEUE_DEPTH overrides (0 = shed whenever all executors are
  /// busy).
  std::size_t max_queue_depth = kDefaultMaxQueueDepth;
  /// Workers of the shared morsel fleet (0 = one per hardware thread).
  int morsel_workers = 0;
  /// Base rows per morsel for admitted queries.
  uint64_t morsel_rows = 0;  // 0 = kDefaultMorselRows
  /// Degrade per-query fleet share under load (AdmissionGrant). Off pins
  /// every query at the full fleet (differential tests flip this).
  bool degrade_workers = true;

  /// Defaults + APQ_SERVICE_MAX_CONCURRENT / APQ_SERVICE_QUEUE_DEPTH.
  static ServiceConfig FromEnv();
};

/// Parses an APQ_SERVICE_MAX_CONCURRENT-style value: a decimal integer in
/// [min, max]. Returns -1 on anything else (empty, garbage, out of range).
/// Pure — exposed for tests; FromEnv adds the warn-once behavior.
long ParseServiceLimit(const char* value, long min, long max);

/// The validated APQ_SERVICE_PORT (0 = unset or rejected with a one-line
/// warning). Parsed once per process; the standalone server binary uses it.
int ServiceEnvPort();

/// True for the query names the admission queue classes as heavy analytics
/// (multi-join/aggregation shapes: Q4, Q8, Q9, Q19, Q22); Q6 and Q14 are
/// short selects.
bool IsHeavyQuery(const std::string& name);

/// \brief Point-in-time service statistics (tests; /debug/service carries
/// the same numbers).
struct ServiceStats {
  AdmissionStats admission;
  std::size_t sessions = 0;
  uint64_t requests_total = 0;
  uint64_t responses_total = 0;
  uint64_t exec_errors_total = 0;
  uint64_t degraded_total = 0;  ///< admitted queries granted < fleet workers
};

/// \brief The multi-session query server.
class QueryService {
 public:
  QueryService() = default;
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Binds 127.0.0.1:config.port, builds the workload plans against
  /// `catalog`, spawns the reader and executor threads, and registers this
  /// instance with /debug/service. On failure nothing is running and the
  /// Status says why.
  Status Start(std::shared_ptr<Catalog> catalog, ServiceConfig config);

  /// Drains and stops: sheds new arrivals, finishes claimed queries, joins
  /// every thread, closes every session. Safe to call twice.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolved for ephemeral requests); 0 when not running.
  int port() const { return port_; }
  const ServiceConfig& config() const { return config_; }
  /// Workers in the shared morsel fleet this service dispatches onto.
  int fleet_workers() const;

  ServiceStats Stats() const;

  /// This service's admission document (one entry of /debug/service).
  std::string DebugJson() const;

  /// The /debug/service body: every running service's DebugJson under
  /// {"services":[...]}. Installed as the HTTP exporter's service provider
  /// by the first Start.
  static std::string ServiceJson();

 private:
  struct Session;
  struct Pending;

  void ReaderLoop();
  void ExecutorLoop();
  /// Parses and admits one request line from `session` (writes typed errors
  /// for parse/plan/shed failures directly).
  void HandleLine(const std::shared_ptr<Session>& session,
                  const std::string& line);
  /// Runs one claimed request on `engine` and writes its response.
  void Execute(Engine& engine, const Pending& p, double queue_wait_ns);

  ServiceConfig config_;
  std::shared_ptr<Catalog> catalog_;
  std::shared_ptr<MorselScheduler> scheduler_;
  std::map<std::string, QueryPlan> plans_;  // workload queries by name
  std::unique_ptr<AdmissionController> admission_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread reader_;
  std::vector<std::thread> executors_;

  mutable std::mutex mu_;  // sessions_, pending_, counters below
  std::map<int, std::shared_ptr<Session>> sessions_;  // by fd
  std::map<uint64_t, std::shared_ptr<Pending>> pending_;  // by admission id
  uint64_t next_request_id_ = 1;
  uint64_t requests_total_ = 0;
  uint64_t responses_total_ = 0;
  uint64_t exec_errors_total_ = 0;
  uint64_t degraded_total_ = 0;

  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_responses_ = nullptr;
  obs::Counter* m_exec_errors_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
  obs::Gauge* m_sessions_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;     // arrival -> response written
  obs::Histogram* m_queue_wait_ = nullptr;  // same instrument the controller
                                            // observes; read for percentiles
};

}  // namespace service
}  // namespace apq

#endif  // APQ_SERVICE_QUERY_SERVICE_H_
