#include "service/admission.h"

#include <algorithm>

#include "util/hash_clock.h"

namespace apq {
namespace service {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  auto& reg = obs::MetricsRegistry::Global();
  m_admitted_ = reg.GetCounter("apq_service_admitted_total");
  m_queued_ = reg.GetCounter("apq_service_queued_total");
  m_shed_ = reg.GetCounter("apq_service_shed_total");
  m_promoted_ = reg.GetCounter("apq_service_promoted_total");
  m_completed_ = reg.GetCounter("apq_service_completed_total");
  m_queue_depth_ = reg.GetGauge("apq_service_queue_depth");
  m_active_ = reg.GetGauge("apq_service_active_queries");
  m_queue_wait_ = reg.GetHistogram("apq_service_queue_wait_ns",
                                   obs::Histogram::LatencyBoundsNs());
}

AdmitResult AdmissionController::Enqueue(uint64_t id, bool heavy,
                                         double now_ns) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Handoff to idle executors passes through the queue too, so each free
    // concurrency slot extends the depth bound by one: the structural limit
    // is depth + free slots, independent of how fast a sleeping executor
    // wakes to claim. With every slot held the bound is max_queue_depth
    // alone — which makes max_queue_depth=0 mean "shed whenever all
    // executors are busy" rather than "shed everything".
    const std::size_t free_slots =
        static_cast<std::size_t>(std::max(0, config_.max_concurrent - active_));
    if (shutdown_ || queue_.size() >= config_.max_queue_depth + free_slots) {
      ++shed_total_;
      m_shed_->Inc();
      return AdmitResult::kShed;
    }
    Entry e;
    e.id = id;
    e.heavy = heavy;
    e.enqueue_ns = now_ns;
    e.seq = next_seq_++;
    queue_.push_back(e);
    ++admitted_total_;
    queue_depth_peak_ = std::max(queue_depth_peak_, queue_.size());
    m_admitted_->Inc();
    m_queued_->Inc();
    m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return AdmitResult::kQueued;
}

std::size_t AdmissionController::PickLocked(double now_ns) const {
  std::size_t best = queue_.size();
  double best_score = -1.0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Entry& e = queue_[i];
    // Aging can hand out a timestamp slightly older than an entry enqueued
    // by a racing thread; clamp so a "future" entry scores zero, not NaN
    // territory.
    const double wait = std::max(0.0, now_ns - e.enqueue_ns);
    const double score = AgingScore(e.heavy, wait);
    // Strictly-greater keeps the scan's first (oldest-seq) entry on ties —
    // the deque is in arrival order, so equal scores resolve FIFO.
    if (best == queue_.size() || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

bool AdmissionController::ClaimAtLocked(std::size_t idx, double now_ns,
                                        uint64_t* id, double* queue_wait_ns) {
  const Entry e = queue_[idx];
  // Claiming anything but the front means aging promoted this entry past an
  // older arrival.
  if (idx != 0) {
    ++promoted_total_;
    m_promoted_->Inc();
  }
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  ++active_;
  const double wait = std::max(0.0, now_ns - e.enqueue_ns);
  if (wait > 0) ++waited_total_;
  *id = e.id;
  *queue_wait_ns = wait;
  m_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  m_active_->Set(active_);
  m_queue_wait_->Observe(wait);
  return true;
}

bool AdmissionController::WaitClaim(uint64_t* id, double* queue_wait_ns) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // shutdown drains claims
  const double now = NowNs();
  return ClaimAtLocked(PickLocked(now), now, id, queue_wait_ns);
}

bool AdmissionController::TryClaim(double now_ns, uint64_t* id,
                                   double* queue_wait_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  return ClaimAtLocked(PickLocked(now_ns), now_ns, id, queue_wait_ns);
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --active_;
  ++completed_total_;
  m_active_->Set(active_);
  m_completed_->Inc();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

AdmissionStats AdmissionController::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats s;
  s.queued = queue_.size();
  s.active = active_;
  s.queue_depth_peak = queue_depth_peak_;
  s.admitted_total = admitted_total_;
  s.waited_total = waited_total_;
  s.shed_total = shed_total_;
  s.promoted_total = promoted_total_;
  s.completed_total = completed_total_;
  return s;
}

}  // namespace service
}  // namespace apq
