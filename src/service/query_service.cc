#include "service/query_service.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "engine/engine.h"
#include "obs/http_exporter.h"
#include "sched/morsel_scheduler.h"
#include "util/hash_clock.h"

namespace apq {
namespace service {

namespace {

// Reader-loop poll period: the stop flag is observed within this bound
// (mirrors the HTTP exporter's serve loop).
constexpr int kPollMs = 100;
// A request line longer than this is garbage; drop the connection.
constexpr size_t kMaxLineBytes = 4096;

// Live services, for the /debug/service provider (same pattern as
// MorselScheduler::WorkersJson).
std::mutex& ServicesMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::vector<QueryService*>& Services() {
  static std::vector<QueryService*>* v = new std::vector<QueryService*>();
  return *v;
}

void SockWriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to salvage
    off += static_cast<size_t>(n);
  }
}

}  // namespace

// ---- config / env knobs -----------------------------------------------------

long ParseServiceLimit(const char* value, long min, long max) {
  if (value == nullptr || value[0] == '\0') return -1;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0' || v < min || v > max) {
    return -1;
  }
  return v;
}

ServiceConfig ServiceConfig::FromEnv() {
  ServiceConfig cfg;
  static const long max_concurrent = [] {
    const char* v = std::getenv("APQ_SERVICE_MAX_CONCURRENT");
    if (v == nullptr || v[0] == '\0') return -1L;
    const long p = ParseServiceLimit(v, 1, 256);
    if (p < 0) {
      std::fprintf(stderr,
                   "apq: ignoring APQ_SERVICE_MAX_CONCURRENT=\"%s\": expected "
                   "an integer in 1..256; keeping the default %d\n",
                   v, kDefaultMaxConcurrent);
    }
    return p;
  }();
  static const long queue_depth = [] {
    const char* v = std::getenv("APQ_SERVICE_QUEUE_DEPTH");
    if (v == nullptr || v[0] == '\0') return -1L;
    const long p = ParseServiceLimit(v, 0, 1048576);
    if (p < 0) {
      std::fprintf(stderr,
                   "apq: ignoring APQ_SERVICE_QUEUE_DEPTH=\"%s\": expected an "
                   "integer in 0..1048576; keeping the default %zu\n",
                   v, kDefaultMaxQueueDepth);
    }
    return p;
  }();
  if (max_concurrent > 0) cfg.max_concurrent = static_cast<int>(max_concurrent);
  if (queue_depth >= 0) cfg.max_queue_depth = static_cast<size_t>(queue_depth);
  return cfg;
}

int ServiceEnvPort() {
  static const int port = [] {
    const char* v = std::getenv("APQ_SERVICE_PORT");
    if (v == nullptr || v[0] == '\0') return 0;
    const int p = obs::ParseHttpPort(v);
    if (p < 0) {
      std::fprintf(stderr,
                   "apq: ignoring APQ_SERVICE_PORT=\"%s\": expected a port in "
                   "1..65535\n",
                   v);
      return 0;
    }
    return p;
  }();
  return port;
}

bool IsHeavyQuery(const std::string& name) {
  // The paper's Table 4 split: Q6/Q14 are the simple (select-dominated)
  // queries; the multi-join/aggregation shapes are heavy analytics.
  return !(name == "Q6" || name == "Q14");
}

// ---- session / pending request ---------------------------------------------

struct QueryService::Session {
  explicit Session(int fd_in) : fd(fd_in) {}
  ~Session() {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  void Write(const std::string& data) {
    std::lock_guard<std::mutex> lock(write_mu);
    SockWriteAll(fd, data);
  }

  const int fd;
  std::string inbuf;     // reader thread only
  std::mutex write_mu;   // whole response blocks are written under this
};

struct QueryService::Pending {
  uint64_t id = 0;
  std::shared_ptr<Session> session;
  Request req;
  double arrival_ns = 0;
};

// ---- lifecycle --------------------------------------------------------------

QueryService::~QueryService() { Stop(); }

int QueryService::fleet_workers() const {
  return scheduler_ ? scheduler_->num_workers() : 0;
}

Status QueryService::Start(std::shared_ptr<Catalog> catalog,
                           ServiceConfig config) {
  if (running()) {
    return Status::AlreadyExists("service already running on 127.0.0.1:" +
                                 std::to_string(port_));
  }
  if (catalog == nullptr) {
    return Status::InvalidArgument("service needs a catalog");
  }
  if (config.max_concurrent < 1) {
    return Status::InvalidArgument("max_concurrent must be >= 1");
  }
  config_ = config;
  catalog_ = std::move(catalog);

  // Build every workload plan once; requests reference them read-only.
  plans_.clear();
  for (const std::string& name : Tpch::QueryNames()) {
    auto plan = Tpch::Query(*catalog_, name);
    if (!plan.ok()) {
      return Status::Internal("building " + name + ": " +
                              plan.status().ToString());
    }
    plans_.emplace(name, plan.MoveValueOrDie());
  }

  scheduler_ = std::make_shared<MorselScheduler>(config_.morsel_workers);
  AdmissionConfig acfg;
  acfg.max_concurrent = config_.max_concurrent;
  acfg.max_queue_depth = config_.max_queue_depth;
  admission_ = std::make_unique<AdmissionController>(acfg);

  auto& reg = obs::MetricsRegistry::Global();
  m_requests_ = reg.GetCounter("apq_service_requests_total");
  m_responses_ = reg.GetCounter("apq_service_responses_total");
  m_exec_errors_ = reg.GetCounter("apq_service_exec_errors_total");
  m_degraded_ = reg.GetCounter("apq_service_degraded_total");
  m_sessions_ = reg.GetGauge("apq_service_sessions");
  m_latency_ = reg.GetHistogram("apq_service_latency_ns",
                                obs::Histogram::LatencyBoundsNs());
  m_queue_wait_ = reg.GetHistogram("apq_service_queue_wait_ns",
                                   obs::Histogram::LatencyBoundsNs());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    Status st = Status::Internal("bind/listen on 127.0.0.1:" +
                                 std::to_string(config_.port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = config_.port;
  }
  listen_fd_ = fd;

  running_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { ReaderLoop(); });
  executors_.reserve(static_cast<size_t>(config_.max_concurrent));
  for (int i = 0; i < config_.max_concurrent; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }

  {
    std::lock_guard<std::mutex> lock(ServicesMu());
    Services().push_back(this);
  }
  obs::SetServiceProvider(&QueryService::ServiceJson);
  return Status::OK();
}

void QueryService::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(ServicesMu());
    auto& v = Services();
    for (auto it = v.begin(); it != v.end(); ++it) {
      if (*it == this) {
        v.erase(it);
        break;
      }
    }
  }
  // New arrivals shed from here on; executors drain what is already queued,
  // then exit.
  admission_->Shutdown();
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  for (auto& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.clear();  // destructors close the fds
  pending_.clear();
  if (m_sessions_ != nullptr) m_sessions_->Set(0);
}

// ---- reader -----------------------------------------------------------------

void QueryService::ReaderLoop() {
  while (running_.load(std::memory_order_acquire)) {
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Session>> polled;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pfds.reserve(sessions_.size() + 1);
      polled.reserve(sessions_.size());
      pfds.push_back({listen_fd_, POLLIN, 0});
      for (const auto& [fd, session] : sessions_) {
        pfds.push_back({fd, POLLIN, 0});
        polled.push_back(session);
      }
    }
    const int pr = ::poll(pfds.data(), pfds.size(), kPollMs);
    if (pr <= 0) continue;

    if ((pfds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        // Bound both directions so a stalled client can neither wedge the
        // reader nor an executor writing a response.
        timeval tv{5, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        std::lock_guard<std::mutex> lock(mu_);
        sessions_.emplace(fd, std::make_shared<Session>(fd));
        m_sessions_->Set(static_cast<int64_t>(sessions_.size()));
      }
    }

    for (size_t i = 1; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::shared_ptr<Session>& session = polled[i - 1];
      char buf[4096];
      const ssize_t n = ::recv(session->fd, buf, sizeof(buf), 0);
      bool drop = n <= 0;
      if (n > 0) {
        session->inbuf.append(buf, static_cast<size_t>(n));
        size_t nl;
        while ((nl = session->inbuf.find('\n')) != std::string::npos) {
          std::string line = session->inbuf.substr(0, nl);
          session->inbuf.erase(0, nl + 1);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (!line.empty()) HandleLine(session, line);
        }
        if (session->inbuf.size() > kMaxLineBytes) drop = true;  // garbage
      }
      if (drop) {
        std::lock_guard<std::mutex> lock(mu_);
        sessions_.erase(session->fd);  // in-flight requests keep it alive
        m_sessions_->Set(static_cast<int64_t>(sessions_.size()));
      }
    }
  }
}

void QueryService::HandleLine(const std::shared_ptr<Session>& session,
                              const std::string& line) {
  m_requests_->Inc();
  Request req;
  const Status st = ParseRequest(line, &req);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_total_;
  }
  if (!st.ok()) {
    session->Write(ErrResponse(ErrType::kParse, req.tag, st.message()));
    std::lock_guard<std::mutex> lock(mu_);
    ++responses_total_;
    m_responses_->Inc();
    return;
  }
  const bool known = plans_.count(req.query) > 0;
  if (!known || (req.sel >= 0.0 && req.query != "Q6")) {
    std::string names;
    for (const std::string& n : Tpch::QueryNames()) {
      names += (names.empty() ? "" : "|") + n;
    }
    session->Write(ErrResponse(
        ErrType::kPlan, req.tag,
        !known ? "unknown query '" + req.query + "' (expected " + names + ")"
               : "sel= is only valid for Q6"));
    std::lock_guard<std::mutex> lock(mu_);
    ++responses_total_;
    m_responses_->Inc();
    return;
  }

  auto p = std::make_shared<Pending>();
  p->session = session;
  p->req = req;
  p->arrival_ns = NowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    p->id = next_request_id_++;
    pending_.emplace(p->id, p);
  }
  const AdmitResult admit =
      admission_->Enqueue(p->id, IsHeavyQuery(req.query), p->arrival_ns);
  if (admit == AdmitResult::kShed) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(p->id);
    }
    session->Write(ErrResponse(
        ErrType::kShed, req.tag,
        "admission queue full (max_queue_depth=" +
            std::to_string(config_.max_queue_depth) +
            ", max_concurrent=" + std::to_string(config_.max_concurrent) +
            "); retry later"));
    std::lock_guard<std::mutex> lock(mu_);
    ++responses_total_;
    m_responses_->Inc();
  }
}

// ---- executors --------------------------------------------------------------

void QueryService::ExecutorLoop() {
  // One engine per executor, all multiplexing the one shared fleet. The sim
  // config is irrelevant to served queries; wall_ns is hardware truth.
  EngineConfig cfg;
  cfg.use_morsels = true;
  cfg.morsel_scheduler = scheduler_;
  if (config_.morsel_rows > 0) cfg.morsel_rows = config_.morsel_rows;
  Engine engine(cfg);

  uint64_t id = 0;
  double queue_wait_ns = 0;
  while (admission_->WaitClaim(&id, &queue_wait_ns)) {
    std::shared_ptr<Pending> p;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        p = it->second;
        pending_.erase(it);
      }
    }
    if (p != nullptr) Execute(engine, *p, queue_wait_ns);
    admission_->Release();
  }
}

void QueryService::Execute(Engine& engine, const Pending& p,
                           double queue_wait_ns) {
  // Degrade this query's fleet share under load: the shared Vectorwise
  // grant over the morsel fleet, applied as a morsel-size multiplier —
  // `active` times larger morsels means this query's operator splits into
  // ~1/active as many tasks, so it can occupy at most its granted share of
  // the workers. Morsel size never changes results (the house invariant),
  // so degradation is invisible to correctness.
  const int fleet = fleet_workers();
  int granted = fleet;
  if (config_.degrade_workers) {
    granted = admission_->GrantedWorkers(fleet, admission_->Stats().active);
    if (granted < fleet) {
      std::lock_guard<std::mutex> lock(mu_);
      ++degraded_total_;
      m_degraded_->Inc();
    }
  }
  const uint64_t base_rows =
      config_.morsel_rows > 0 ? config_.morsel_rows : kDefaultMorselRows;
  const uint64_t eff_rows =
      granted > 0 ? base_rows * static_cast<uint64_t>(
                                    std::max(1, fleet / granted))
                  : base_rows;
  if (engine.evaluator()->options().morsel_rows != eff_rows) {
    ExecOptions o = engine.evaluator()->options();
    o.morsel_rows = eff_rows;
    engine.evaluator()->set_options(o);
  }

  // Resolve the plan: a cached workload plan, or the selectivity-controlled
  // Q6 variant built per request.
  const QueryPlan* plan = nullptr;
  QueryPlan sel_plan;
  if (p.req.sel >= 0.0) {
    auto sp = Tpch::Q6Selectivity(*catalog_, p.req.sel);
    if (!sp.ok()) {
      p.session->Write(
          ErrResponse(ErrType::kPlan, p.req.tag, sp.status().ToString()));
      std::lock_guard<std::mutex> lock(mu_);
      ++responses_total_;
      m_responses_->Inc();
      return;
    }
    sel_plan = sp.MoveValueOrDie();
    plan = &sel_plan;
  } else {
    plan = &plans_.at(p.req.query);
  }

  auto run = engine.RunPlan(*plan);
  std::string response;
  bool failed = false;
  if (run.ok()) {
    const QueryRunResult& r = run.ValueOrDie();
    response = OkResponse(r.query_id, p.req.tag, granted, r.wall_ns,
                          queue_wait_ns, r.result);
  } else {
    response =
        ErrResponse(ErrType::kExec, p.req.tag, run.status().ToString());
    failed = true;
  }
  p.session->Write(response);
  m_latency_->Observe(NowNs() - p.arrival_ns);
  std::lock_guard<std::mutex> lock(mu_);
  ++responses_total_;
  m_responses_->Inc();
  if (failed) {
    ++exec_errors_total_;
    m_exec_errors_->Inc();
  }
}

// ---- stats / debug ----------------------------------------------------------

ServiceStats QueryService::Stats() const {
  ServiceStats s;
  s.admission = admission_ ? admission_->Stats() : AdmissionStats();
  std::lock_guard<std::mutex> lock(mu_);
  s.sessions = sessions_.size();
  s.requests_total = requests_total_;
  s.responses_total = responses_total_;
  s.exec_errors_total = exec_errors_total_;
  s.degraded_total = degraded_total_;
  return s;
}

std::string QueryService::DebugJson() const {
  const ServiceStats s = Stats();
  std::ostringstream os;
  os.precision(15);
  os << "{\"port\":" << port_ << ",\"sessions\":" << s.sessions
     << ",\"fleet_workers\":" << fleet_workers()
     << ",\"sched_pending\":" << (scheduler_ ? scheduler_->pending() : 0)
     << ",\"max_concurrent\":" << config_.max_concurrent
     << ",\"max_queue_depth\":" << config_.max_queue_depth
     << ",\"active\":" << s.admission.active
     << ",\"queued\":" << s.admission.queued
     << ",\"queue_depth_peak\":" << s.admission.queue_depth_peak
     << ",\"admitted_total\":" << s.admission.admitted_total
     << ",\"waited_total\":" << s.admission.waited_total
     << ",\"shed_total\":" << s.admission.shed_total
     << ",\"promoted_total\":" << s.admission.promoted_total
     << ",\"completed_total\":" << s.admission.completed_total
     << ",\"requests_total\":" << s.requests_total
     << ",\"responses_total\":" << s.responses_total
     << ",\"exec_errors_total\":" << s.exec_errors_total
     << ",\"degraded_total\":" << s.degraded_total;
  if (m_queue_wait_ != nullptr && m_latency_ != nullptr) {
    os << ",\"queue_wait_p50_ns\":" << m_queue_wait_->Percentile(0.50)
       << ",\"queue_wait_p99_ns\":" << m_queue_wait_->Percentile(0.99)
       << ",\"latency_p50_ns\":" << m_latency_->Percentile(0.50)
       << ",\"latency_p99_ns\":" << m_latency_->Percentile(0.99);
  }
  os << "}";
  return os.str();
}

std::string QueryService::ServiceJson() {
  std::ostringstream os;
  os << "{\"services\":[";
  {
    std::lock_guard<std::mutex> lock(ServicesMu());
    bool first = true;
    for (QueryService* svc : Services()) {
      if (!first) os << ",";
      first = false;
      os << svc->DebugJson();
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace service
}  // namespace apq
