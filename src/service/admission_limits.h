// Admission-control limits shared by the Vectorwise-style simulator
// (src/vwsim/) and the real query service (src/service/).
//
// The paper's §4.2.4 baseline models Vectorwise 3.5.1 admission control:
// under a concurrent workload the first client's query receives the whole
// machine and every later client is granted cores/active_clients. The live
// query service applies the *same* grant formula to its shared morsel-worker
// fleet, so the simulated comparator and the served engine cannot drift:
// both sides include this header and nothing else defines these policies
// (docs/architecture.md documents the mapping).
#ifndef APQ_SERVICE_ADMISSION_LIMITS_H_
#define APQ_SERVICE_ADMISSION_LIMITS_H_

#include <algorithm>
#include <cstddef>

namespace apq {
namespace service {

/// Target per-core work (ns) for cost-model DOP selection
/// (VectorwiseConfig::work_per_core_ns). Sized for the repository's
/// scaled-down datasets.
constexpr double kDefaultWorkPerCoreNs = 5.0e4;

/// Queries allowed to produce morsels concurrently; later arrivals queue.
/// The service sizes its executor fleet to this, and the simulator's
/// "active clients" bound plays the same role.
constexpr int kDefaultMaxConcurrent = 4;

/// Queued (admitted-but-waiting) queries beyond which arrivals are shed
/// with a typed error instead of queued.
constexpr std::size_t kDefaultMaxQueueDepth = 64;

/// Priority-aging weights: a queued query's effective priority is
/// wait_ns * weight(class). Short selects age faster than heavy analytics,
/// so a short query stuck behind a pile of heavies is promoted once it has
/// waited 1/kShortAgingWeight as long as the heavies ahead of it — FIFO is
/// preserved within a class (the score is strictly increasing in wait), and
/// heavies can never be starved outright (their score grows without bound
/// too).
constexpr double kShortAgingWeight = 4.0;
constexpr double kHeavyAgingWeight = 1.0;

/// The Vectorwise grant: the first client gets every core; each client of a
/// loaded machine gets cores/active (>= 1). The service applies this to the
/// morsel-worker fleet per admitted query; vwsim applies it to the simulated
/// machine's logical cores.
inline int AdmissionGrant(int cores, int active_clients) {
  if (active_clients <= 1) return std::max(1, cores);
  return std::max(1, cores / active_clients);
}

/// Effective queue priority of a request of the given class that has waited
/// `wait_ns`. The dispatcher claims the highest score (ties broken by
/// arrival order), which is FIFO within a class and aged promotion across
/// classes.
inline double AgingScore(bool heavy, double wait_ns) {
  return wait_ns * (heavy ? kHeavyAgingWeight : kShortAgingWeight);
}

}  // namespace service
}  // namespace apq

#endif  // APQ_SERVICE_ADMISSION_LIMITS_H_
