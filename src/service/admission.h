// Admission control for the query service: bound the number of concurrently
// morsel-producing queries, queue the overflow FIFO with priority aging, and
// shed with a typed error when the queue itself overflows.
//
// This is the policy layer only — it owns no sockets and no engines. The
// service enqueues an opaque request id per accepted query; a fleet of
// exactly max_concurrent executor threads claims ids back out, so the
// concurrency bound is structural (there is no executor to over-admit onto).
//
// Queue discipline: the claimer picks the queued entry with the highest
// AgingScore(class, wait) — wait-proportional, with short selects aging
// kShortAgingWeight times faster than heavy analytics (admission_limits.h).
// Within a class the score is strictly increasing in wait, so order is FIFO;
// across classes a short select stuck behind a burst of heavies is promoted
// once it has waited long enough, and a heavy can never be starved outright
// because its score also grows without bound.
//
// Every transition is observable: apq_service_{admitted,queued,shed,
// promoted,completed}_total counters, apq_service_{queue_depth,active}
// gauges, and an apq_service_queue_wait_ns histogram, all in the global
// MetricsRegistry (scraped via /metrics and summarized by /debug/service).
//
// Deterministically testable: Enqueue/TryClaim take explicit timestamps, so
// the unit tests drive aging with a synthetic clock instead of sleeping.
#ifndef APQ_SERVICE_ADMISSION_H_
#define APQ_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "service/admission_limits.h"

namespace apq {
namespace service {

/// \brief Admission policy knobs (defaults from admission_limits.h).
struct AdmissionConfig {
  int max_concurrent = kDefaultMaxConcurrent;
  std::size_t max_queue_depth = kDefaultMaxQueueDepth;
};

/// \brief Outcome of offering a request to the controller.
enum class AdmitResult {
  kQueued,  ///< accepted; a claimer will pick it up (possibly immediately)
  kShed,    ///< queue at max_queue_depth — rejected, nothing enqueued
};

/// \brief Point-in-time controller statistics (for /debug/service and tests).
struct AdmissionStats {
  std::size_t queued = 0;        ///< waiting in the queue right now
  int active = 0;                ///< claimed and not yet released
  std::size_t queue_depth_peak = 0;
  uint64_t admitted_total = 0;   ///< requests accepted (queued or immediate)
  uint64_t waited_total = 0;     ///< of those, claimed with non-zero wait
  uint64_t shed_total = 0;
  uint64_t promoted_total = 0;   ///< claims that jumped an older entry (aging)
  uint64_t completed_total = 0;  ///< Release() calls
};

/// \brief The bounded-concurrency admission queue.
///
/// Thread-safe. Claimed ids MUST be released exactly once.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = AdmissionConfig());

  const AdmissionConfig& config() const { return config_; }

  /// Offers request `id` (opaque to the controller) of the given class.
  /// `now_ns` is the arrival timestamp (tests pass synthetic clocks; the
  /// service passes NowNs()). kShed means the queue was full and nothing
  /// was recorded.
  AdmitResult Enqueue(uint64_t id, bool heavy, double now_ns);

  /// Claims the highest-priority queued request, blocking until one is
  /// available or Shutdown() is called (then false). `*queue_wait_ns` gets
  /// the claim-minus-enqueue wait of the claimed entry.
  bool WaitClaim(uint64_t* id, double* queue_wait_ns);

  /// Non-blocking claim at an explicit time (unit tests drive aging with
  /// synthetic timestamps). False when the queue is empty.
  bool TryClaim(double now_ns, uint64_t* id, double* queue_wait_ns);

  /// Marks a claimed request finished, freeing its concurrency slot.
  void Release();

  /// Wakes every WaitClaim with false; further Enqueues are shed.
  void Shutdown();

  AdmissionStats Stats() const;

  /// Workers to grant a query admitted while `active` queries (including
  /// it) hold slots: the shared Vectorwise formula over the morsel fleet.
  int GrantedWorkers(int fleet_workers, int active) const {
    return AdmissionGrant(fleet_workers, active);
  }

 private:
  struct Entry {
    uint64_t id = 0;
    bool heavy = false;
    double enqueue_ns = 0;
    uint64_t seq = 0;  // arrival order, the FIFO tie-break
  };

  // mu_ held. Picks argmax AgingScore; returns queue index or npos.
  std::size_t PickLocked(double now_ns) const;
  bool ClaimAtLocked(std::size_t idx, double now_ns, uint64_t* id,
                     double* queue_wait_ns);

  const AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  bool shutdown_ = false;
  uint64_t next_seq_ = 0;
  int active_ = 0;
  std::size_t queue_depth_peak_ = 0;
  uint64_t admitted_total_ = 0;
  uint64_t waited_total_ = 0;
  uint64_t shed_total_ = 0;
  uint64_t promoted_total_ = 0;
  uint64_t completed_total_ = 0;

  // Registry instruments (process-wide; multiple controllers aggregate).
  obs::Counter* m_admitted_;
  obs::Counter* m_queued_;
  obs::Counter* m_shed_;
  obs::Counter* m_promoted_;
  obs::Counter* m_completed_;
  obs::Gauge* m_queue_depth_;
  obs::Gauge* m_active_;
  obs::Histogram* m_queue_wait_;
};

}  // namespace service
}  // namespace apq

#endif  // APQ_SERVICE_ADMISSION_H_
