#include "service/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace apq {
namespace service {

namespace {

// %.17g round-trips every double exactly, so serialized results are
// byte-identical iff the values are bit-identical.
void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendInt(std::string* out, int64_t v) {
  out->append(std::to_string(v));
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseFrac(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  if (v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace

const char* ErrTypeName(ErrType t) {
  switch (t) {
    case ErrType::kShed: return "SHED";
    case ErrType::kParse: return "PARSE";
    case ErrType::kPlan: return "PLAN";
    case ErrType::kExec: return "EXEC";
  }
  return "?";
}

Status ParseRequest(const std::string& line, Request* out) {
  *out = Request();
  std::istringstream is(line);
  std::string verb;
  if (!(is >> verb) || verb != "RUN") {
    return Status::InvalidArgument("expected 'RUN <query> [key=value ...]'");
  }
  if (!(is >> out->query)) {
    return Status::InvalidArgument("RUN without a query name");
  }
  std::string kv;
  while (is >> kv) {
    const size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed parameter '" + kv +
                                     "' (expected key=value)");
    }
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (key == "tag") {
      if (!ParseU64(val, &out->tag)) {
        return Status::InvalidArgument("bad tag '" + val + "'");
      }
    } else if (key == "sel") {
      if (!ParseFrac(val, &out->sel)) {
        return Status::InvalidArgument("bad sel '" + val +
                                       "' (expected a fraction in [0,1])");
      }
    } else {
      return Status::InvalidArgument("unknown parameter '" + key + "'");
    }
  }
  return Status::OK();
}

std::string SerializeResult(const Intermediate& result) {
  std::string out;
  out.reserve(result.NumRows() * 16 + 16);
  switch (result.kind) {
    case Intermediate::Kind::kScalar:
      out.append("ROW ");
      AppendDouble(&out, result.scalar);
      out.push_back(' ');
      AppendInt(&out, result.scalar_count);
      out.push_back('\n');
      break;
    case Intermediate::Kind::kGroupedAgg:
      for (uint64_t g = 0; g < result.agg_vals.size(); ++g) {
        out.append("ROW ");
        if (result.group_keys.is_f64()) {
          AppendDouble(&out, result.group_keys.f64[g]);
        } else {
          AppendInt(&out, result.group_keys.i64[g]);
        }
        out.push_back(' ');
        AppendDouble(&out, result.agg_vals[g]);
        out.push_back(' ');
        AppendInt(&out, result.agg_counts[g]);
        out.push_back('\n');
      }
      break;
    case Intermediate::Kind::kValues:
      for (uint64_t i = 0; i < result.values.size(); ++i) {
        out.append("ROW ");
        if (result.values.is_f64()) {
          AppendDouble(&out, result.values.f64[i]);
        } else {
          AppendInt(&out, result.values.i64[i]);
        }
        if (i < result.head.size()) {
          out.push_back(' ');
          AppendInt(&out, static_cast<int64_t>(result.head[i]));
        }
        out.push_back('\n');
      }
      break;
    case Intermediate::Kind::kRowIds:
      for (const oid id : result.rowids) {
        out.append("ROW ");
        AppendInt(&out, static_cast<int64_t>(id));
        out.push_back('\n');
      }
      break;
    case Intermediate::Kind::kPairs:
      for (uint64_t i = 0; i < result.rowids.size(); ++i) {
        out.append("ROW ");
        AppendInt(&out, static_cast<int64_t>(result.rowids[i]));
        out.push_back(' ');
        AppendInt(&out, static_cast<int64_t>(result.rrowids[i]));
        out.push_back('\n');
      }
      break;
    case Intermediate::Kind::kGroups:
      for (uint64_t i = 0; i < result.group_ids.size(); ++i) {
        out.append("ROW ");
        AppendInt(&out, result.group_ids[i]);
        out.push_back('\n');
      }
      break;
    case Intermediate::Kind::kNone:
      break;
  }
  return out;
}

std::string OkResponse(uint64_t query_id, uint64_t tag, int workers,
                       double wall_ns, double queue_wait_ns,
                       const Intermediate& result) {
  std::string out = "OK id=" + std::to_string(query_id) +
                    " tag=" + std::to_string(tag) +
                    " kind=" + Intermediate::KindName(result.kind) +
                    " rows=" + std::to_string(result.NumRows()) +
                    " workers=" + std::to_string(workers) + " wall_ns=";
  AppendDouble(&out, wall_ns);
  out.append(" queue_wait_ns=");
  AppendDouble(&out, queue_wait_ns);
  out.push_back('\n');
  out.append(SerializeResult(result));
  out.append("END\n");
  return out;
}

std::string ErrResponse(ErrType type, uint64_t tag,
                        const std::string& message) {
  std::string flat = message;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return std::string("ERR ") + ErrTypeName(type) +
         " tag=" + std::to_string(tag) + " " + flat + "\nEND\n";
}

}  // namespace service
}  // namespace apq
