#include "plan/builder.h"

namespace apq {

int PlanBuilder::Select(const Column* column, Predicate pred, int candidates,
                        std::string label) {
  PlanNode n;
  n.kind = OpKind::kSelect;
  n.column = column;
  n.pred = std::move(pred);
  if (candidates >= 0) n.inputs.push_back(candidates);
  n.label = label.empty() ? "select(" + column->name() + ")" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::FetchJoin(const Column* column, int input, FetchSide side,
                           std::string label) {
  PlanNode n;
  n.kind = OpKind::kFetchJoin;
  n.column = column;
  n.inputs = {input};
  n.fetch_side = side;
  n.label = label.empty() ? "fetch(" + column->name() + ")" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::Join(int probe_input, const Column* inner, std::string label) {
  PlanNode n;
  n.kind = OpKind::kJoin;
  n.column2 = inner;
  n.inputs = {probe_input};
  n.label = label.empty() ? "join(~" + inner->name() + ")" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::JoinLeaf(const Column* outer, const Column* inner,
                          std::string label) {
  PlanNode n;
  n.kind = OpKind::kJoin;
  n.column = outer;
  n.column2 = inner;
  n.label = label.empty()
                ? "join(" + outer->name() + "~" + inner->name() + ")"
                : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::GroupBy(int values_input, std::string label) {
  PlanNode n;
  n.kind = OpKind::kGroupBy;
  n.inputs = {values_input};
  n.label = label.empty() ? "groupby" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::GroupByLeaf(const Column* column, std::string label) {
  PlanNode n;
  n.kind = OpKind::kGroupBy;
  n.column = column;
  n.label =
      label.empty() ? "groupby(" + column->name() + ")" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::AggScalar(AggFn fn, int input, std::string label) {
  PlanNode n;
  n.kind = OpKind::kAggregate;
  n.agg_fn = fn;
  n.inputs = {input};
  n.label = label.empty() ? std::string(AggFnName(fn)) : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::AggGrouped(AggFn fn, int groups, int values,
                            std::string label) {
  PlanNode n;
  n.kind = OpKind::kAggregate;
  n.agg_fn = fn;
  n.inputs = {groups};
  if (values >= 0) n.inputs.push_back(values);
  n.label = label.empty() ? std::string(AggFnName(fn)) + "_by" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::MapConst(MapFn fn, int input, double c, std::string label) {
  PlanNode n;
  n.kind = OpKind::kMap;
  n.map_fn = fn;
  n.map_const = c;
  n.map_use_const = true;
  n.inputs = {input};
  n.label = label.empty() ? "mapc" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::Map2(MapFn fn, int a, int b, std::string label) {
  PlanNode n;
  n.kind = OpKind::kMap;
  n.map_fn = fn;
  n.inputs = {a, b};
  n.label = label.empty() ? "map2" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::LikeFlag(int input, std::string pattern, bool anti,
                          std::string label) {
  PlanNode n;
  n.kind = OpKind::kMap;
  n.map_fn = MapFn::kLikeFlag;
  n.map_use_const = true;
  n.pred = Predicate::Like(std::move(pattern), anti);
  n.inputs = {input};
  n.label = label.empty() ? "likeflag" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::EqFlag(int input, int64_t v, std::string label) {
  PlanNode n;
  n.kind = OpKind::kMap;
  n.map_fn = MapFn::kEqFlag;
  n.map_use_const = true;
  n.pred = Predicate::EqI64(v);
  n.inputs = {input};
  n.label = label.empty() ? "eqflag" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::RangeFlag(int input, int64_t lo, int64_t hi,
                           std::string label) {
  PlanNode n;
  n.kind = OpKind::kMap;
  n.map_fn = MapFn::kRangeFlag;
  n.map_use_const = true;
  n.pred = Predicate::RangeI64(lo, hi);
  n.inputs = {input};
  n.label = label.empty() ? "rangeflag" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::Sort(int input, bool descending, std::string label) {
  PlanNode n;
  n.kind = OpKind::kSort;
  n.descending = descending;
  n.inputs = {input};
  n.label = label.empty() ? "sort" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::TopN(int input, uint64_t limit, bool descending,
                      std::string label) {
  PlanNode n;
  n.kind = OpKind::kTopN;
  n.limit = limit;
  n.descending = descending;
  n.inputs = {input};
  n.label = label.empty() ? "topn" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::SortLeaf(const Column* column, bool descending,
                          std::string label) {
  PlanNode n;
  n.kind = OpKind::kSort;
  n.descending = descending;
  n.column = column;
  n.label = label.empty() ? "sort(" + column->name() + ")" : std::move(label);
  return plan_.AddNode(std::move(n));
}

int PlanBuilder::TopNLeaf(const Column* column, uint64_t limit,
                          bool descending, std::string label) {
  PlanNode n;
  n.kind = OpKind::kTopN;
  n.limit = limit;
  n.descending = descending;
  n.column = column;
  n.label = label.empty() ? "topn(" + column->name() + ")" : std::move(label);
  return plan_.AddNode(std::move(n));
}

QueryPlan PlanBuilder::Result(int input) {
  PlanNode n;
  n.kind = OpKind::kResult;
  n.inputs = {input};
  n.label = "result";
  int id = plan_.AddNode(std::move(n));
  plan_.set_result(id);
  return std::move(plan_);
}

}  // namespace apq
