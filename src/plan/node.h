// Plan nodes: one physical operator instance with its bindings.
//
// Plans are MAL-like dataflow graphs: a node lists the node ids it consumes
// (its dataflow dependencies) plus bindings to base columns and range slices.
// Keeping operators individually identifiable in the plan is the paper's
// stated applicability requirement for adaptive parallelization.
#ifndef APQ_PLAN_NODE_H_
#define APQ_PLAN_NODE_H_

#include <string>
#include <vector>

#include "exec/op_kind.h"
#include "exec/predicate.h"
#include "storage/column.h"
#include "storage/types.h"

namespace apq {

/// \brief One operator instance in a query plan.
struct PlanNode {
  int id = -1;
  OpKind kind = OpKind::kResult;
  /// Producing node ids, in argument order. Empty entries are not allowed;
  /// leaf operators (no inputs) read directly from their bound column slice.
  std::vector<int> inputs;

  // --- bindings ----------------------------------------------------------
  /// Primary bound base column (select source, fetch-join target, join outer,
  /// group-by key source when leaf).
  const Column* column = nullptr;
  /// Secondary bound column (join inner / build side).
  const Column* column2 = nullptr;
  /// Range partition of the primary column this clone works on. When
  /// has_slice is false the operator sees the full column.
  RowRange slice;
  bool has_slice = false;

  // --- operator parameters ------------------------------------------------
  Predicate pred;                        // kSelect
  AggFn agg_fn = AggFn::kNone;           // kAggregate / kAggrMerge
  MapFn map_fn = MapFn::kNone;           // kMap
  double map_const = 0.0;                // kMap constant operand
  bool map_use_const = false;
  FetchSide fetch_side = FetchSide::kAuto;  // kFetchJoin over kPairs input
  AlignPolicy align = AlignPolicy::kAdjust; // kFetchJoin boundary policy
  bool descending = false;               // kSort
  uint64_t limit = 0;                    // kTopN

  std::string label;  // human-readable tag for printing / tomograph

  /// The effective range of the primary column this node reads.
  RowRange EffectiveRange() const {
    if (!column) return RowRange{0, 0};
    return has_slice ? slice : column->full_range();
  }

  std::string ToString() const;
};

}  // namespace apq

#endif  // APQ_PLAN_NODE_H_
