// QueryPlan: a DAG of PlanNodes with topological evaluation order.
#ifndef APQ_PLAN_PLAN_H_
#define APQ_PLAN_PLAN_H_

#include <string>
#include <vector>

#include "plan/node.h"
#include "util/status.h"

namespace apq {

/// \brief Statistics about a plan's shape (paper Table 5).
struct PlanStats {
  int num_nodes = 0;
  int num_selects = 0;
  int num_joins = 0;
  int num_fetchjoins = 0;
  int num_unions = 0;
  int num_groupbys = 0;
  int num_aggregates = 0;
  int num_maps = 0;
  int max_union_fanin = 0;
  std::string ToString() const;
};

/// \brief A query plan: an append-only list of nodes forming a DAG.
///
/// Node ids are indices into nodes(). Mutations (adaptive parallelization)
/// produce new plans via Clone() + AddNode()/ReplaceInput(); nodes are never
/// removed, only disconnected (disconnected nodes are skipped by
/// TopologicalOrder(), which only returns nodes reachable from the result).
class QueryPlan {
 public:
  QueryPlan() = default;
  explicit QueryPlan(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Appends a node, assigning and returning its id.
  int AddNode(PlanNode node);

  PlanNode& node(int id) { return nodes_[id]; }
  const PlanNode& node(int id) const { return nodes_[id]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<PlanNode>& nodes() const { return nodes_; }

  /// The terminal (result) node id; by convention the unique kResult node.
  int result_id() const { return result_id_; }
  void set_result(int id) { result_id_ = id; }

  /// Ids of nodes that consume `id` as an input, among reachable nodes.
  std::vector<int> Consumers(int id) const;

  /// Nodes reachable from the result, in dependency-respecting order.
  /// Returns an error if a cycle is detected or the result is unset.
  StatusOr<std::vector<int>> TopologicalOrder() const;

  /// Structural validation: input ids in range, result set, acyclic, input
  /// arity sane for each operator kind.
  Status Validate() const;

  QueryPlan Clone() const { return *this; }

  PlanStats Stats() const;

  /// MAL-ish textual rendering for debugging and the examples.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<PlanNode> nodes_;
  int result_id_ = -1;
};

/// \brief Range-partition slices of every reachable node of `kind`, sorted by
/// begin row — the converged partitioning a sequence of basic mutations
/// produced (uniform chunks or the skew-aware value-balanced boundaries),
/// as inspected by tests and the Fig 12 bench.
std::vector<RowRange> PartitionSlices(const QueryPlan& plan, OpKind kind);

}  // namespace apq

#endif  // APQ_PLAN_PLAN_H_
