#include "plan/plan.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace apq {

std::string PlanNode::ToString() const {
  std::ostringstream os;
  os << "X_" << id << " := " << OpKindName(kind) << "(";
  bool first = true;
  for (int in : inputs) {
    if (!first) os << ",";
    os << "X_" << in;
    first = false;
  }
  if (column) {
    if (!first) os << ",";
    os << column->name();
    if (has_slice) os << slice.ToString();
    first = false;
  }
  if (column2) {
    if (!first) os << ",";
    os << column2->name();
  }
  switch (kind) {
    case OpKind::kSelect: os << "; " << pred.ToString(); break;
    case OpKind::kAggregate:
    case OpKind::kAggrMerge: os << "; " << AggFnName(agg_fn); break;
    default: break;
  }
  os << ")";
  if (!label.empty()) os << "  # " << label;
  return os.str();
}

std::string PlanStats::ToString() const {
  std::ostringstream os;
  os << "nodes=" << num_nodes << " selects=" << num_selects
     << " joins=" << num_joins << " fetchjoins=" << num_fetchjoins
     << " unions=" << num_unions << " groupbys=" << num_groupbys
     << " aggs=" << num_aggregates << " maps=" << num_maps
     << " max_union_fanin=" << max_union_fanin;
  return os.str();
}

int QueryPlan::AddNode(PlanNode node) {
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

std::vector<int> QueryPlan::Consumers(int id) const {
  std::vector<int> out;
  auto order = TopologicalOrder();
  const std::vector<int>* scope = nullptr;
  std::vector<int> all;
  if (order.ok()) {
    scope = &order.ValueOrDie();
  } else {
    all.resize(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) all[i] = static_cast<int>(i);
    scope = &all;
  }
  for (int nid : *scope) {
    const PlanNode& n = nodes_[nid];
    if (std::find(n.inputs.begin(), n.inputs.end(), id) != n.inputs.end()) {
      out.push_back(nid);
    }
  }
  return out;
}

StatusOr<std::vector<int>> QueryPlan::TopologicalOrder() const {
  if (result_id_ < 0 || result_id_ >= num_nodes()) {
    return Status::Internal("plan '" + name_ + "' has no result node");
  }
  std::vector<int> order;
  // 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<uint8_t> state(nodes_.size(), 0);
  std::function<Status(int)> visit = [&](int id) -> Status {
    if (id < 0 || id >= num_nodes()) {
      return Status::Internal("node input id out of range: " +
                              std::to_string(id));
    }
    if (state[id] == 2) return Status::OK();
    if (state[id] == 1) {
      return Status::Internal("cycle detected at node " + std::to_string(id));
    }
    state[id] = 1;
    for (int in : nodes_[id].inputs) APQ_RETURN_NOT_OK(visit(in));
    state[id] = 2;
    order.push_back(id);
    return Status::OK();
  };
  APQ_RETURN_NOT_OK(visit(result_id_));
  return order;
}

Status QueryPlan::Validate() const {
  auto order_or = TopologicalOrder();
  if (!order_or.ok()) return order_or.status();
  for (int id : order_or.ValueOrDie()) {
    const PlanNode& n = nodes_[id];
    switch (n.kind) {
      case OpKind::kSelect:
        if (!n.column) return Status::InvalidArgument("select without column");
        if (n.inputs.size() > 1) {
          return Status::InvalidArgument("select takes at most one candidate input");
        }
        break;
      case OpKind::kFetchJoin:
        if (!n.column) return Status::InvalidArgument("fetchjoin without column");
        if (n.inputs.size() != 1) {
          return Status::InvalidArgument("fetchjoin takes exactly one input");
        }
        break;
      case OpKind::kJoin:
        if (!n.column2) return Status::InvalidArgument("join without inner column");
        if (n.inputs.size() > 1) {
          return Status::InvalidArgument("join takes at most one probe input");
        }
        if (n.inputs.empty() && !n.column) {
          return Status::InvalidArgument("leaf join needs an outer column");
        }
        break;
      case OpKind::kGroupBy:
        if (n.inputs.size() != 1 && !n.column) {
          return Status::InvalidArgument("groupby needs an input or a column");
        }
        break;
      case OpKind::kAggregate:
        if (n.agg_fn == AggFn::kNone) {
          return Status::InvalidArgument("aggregate without function");
        }
        if (n.inputs.empty() || n.inputs.size() > 2) {
          return Status::InvalidArgument("aggregate takes 1 or 2 inputs");
        }
        break;
      case OpKind::kAggrMerge:
        if (n.inputs.size() != 1) {
          return Status::InvalidArgument("aggrmerge takes exactly one input");
        }
        break;
      case OpKind::kExchangeUnion:
        if (n.inputs.empty()) {
          return Status::InvalidArgument("exchange union without inputs");
        }
        break;
      case OpKind::kMap:
        if (n.map_fn == MapFn::kNone) {
          return Status::InvalidArgument("map without function");
        }
        if (n.inputs.empty() || n.inputs.size() > 2) {
          return Status::InvalidArgument("map takes 1 or 2 inputs");
        }
        if (n.inputs.size() == 1 && !n.map_use_const && !n.column) {
          return Status::InvalidArgument("unary map needs a constant or column");
        }
        break;
      case OpKind::kSort:
      case OpKind::kTopN:
        if (n.inputs.size() > 1) {
          return Status::InvalidArgument("sort/topn take at most one input");
        }
        if (n.inputs.empty() && !n.column) {
          return Status::InvalidArgument("leaf sort/topn needs a column");
        }
        break;
      case OpKind::kResult:
        if (n.inputs.size() != 1) {
          return Status::InvalidArgument("result takes exactly one input");
        }
        break;
    }
    if (n.has_slice && n.column) {
      if (n.slice.end > n.column->size() || n.slice.begin > n.slice.end) {
        return Status::OutOfRange("slice " + n.slice.ToString() +
                                  " outside column '" + n.column->name() + "'");
      }
    }
  }
  return Status::OK();
}

PlanStats QueryPlan::Stats() const {
  PlanStats s;
  auto order_or = TopologicalOrder();
  if (!order_or.ok()) return s;
  for (int id : order_or.ValueOrDie()) {
    const PlanNode& n = nodes_[id];
    ++s.num_nodes;
    switch (n.kind) {
      case OpKind::kSelect: ++s.num_selects; break;
      case OpKind::kJoin: ++s.num_joins; break;
      case OpKind::kFetchJoin: ++s.num_fetchjoins; break;
      case OpKind::kExchangeUnion:
        ++s.num_unions;
        s.max_union_fanin =
            std::max(s.max_union_fanin, static_cast<int>(n.inputs.size()));
        break;
      case OpKind::kGroupBy: ++s.num_groupbys; break;
      case OpKind::kAggregate:
      case OpKind::kAggrMerge: ++s.num_aggregates; break;
      case OpKind::kMap: ++s.num_maps; break;
      default: break;
    }
  }
  return s;
}

std::vector<RowRange> PartitionSlices(const QueryPlan& plan, OpKind kind) {
  std::vector<RowRange> slices;
  auto order_or = plan.TopologicalOrder();
  if (!order_or.ok()) return slices;
  for (int id : order_or.ValueOrDie()) {
    const PlanNode& n = plan.node(id);
    if (n.kind == kind && n.has_slice) slices.push_back(n.slice);
  }
  std::sort(slices.begin(), slices.end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
            });
  return slices;
}

std::string QueryPlan::ToString() const {
  std::ostringstream os;
  os << "plan " << name_ << " {\n";
  auto order_or = TopologicalOrder();
  if (order_or.ok()) {
    for (int id : order_or.ValueOrDie()) {
      os << "  " << nodes_[id].ToString() << "\n";
    }
  } else {
    os << "  <invalid: " << order_or.status().ToString() << ">\n";
  }
  os << "}";
  return os.str();
}

}  // namespace apq
