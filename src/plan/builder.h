// Fluent construction of serial plans (the optimizer front-end stand-in).
#ifndef APQ_PLAN_BUILDER_H_
#define APQ_PLAN_BUILDER_H_

#include <string>

#include "plan/plan.h"

namespace apq {

/// \brief Builds serial query plans node by node. Each method appends one
/// operator and returns its node id for wiring.
class PlanBuilder {
 public:
  explicit PlanBuilder(std::string name) : plan_(std::move(name)) {}

  /// Predicate scan over a base column; `candidates` (optional) restricts the
  /// scan to a prior selection's row ids.
  int Select(const Column* column, Predicate pred, int candidates = -1,
             std::string label = "");

  /// Tuple reconstruction: fetches `column` values at the input's row ids
  /// (kRowIds input) or at one side of a join result (kPairs input).
  int FetchJoin(const Column* column, int input,
                FetchSide side = FetchSide::kAuto, std::string label = "");

  /// Hash join probing the input values (head row ids = outer) against a
  /// hash index on `inner`.
  int Join(int probe_input, const Column* inner, std::string label = "");

  /// Leaf hash join: dense scan of `outer` probed against `inner`.
  int JoinLeaf(const Column* outer, const Column* inner,
               std::string label = "");

  /// Single-attribute group-by over materialized key values.
  int GroupBy(int values_input, std::string label = "");

  /// Leaf group-by: dense scan of a base column's key values.
  int GroupByLeaf(const Column* column, std::string label = "");

  /// Scalar aggregate over values (or count over row ids).
  int AggScalar(AggFn fn, int input, std::string label = "");

  /// Grouped aggregate: fn per group of `groups`, over `values` (omit for
  /// count).
  int AggGrouped(AggFn fn, int groups, int values = -1, std::string label = "");

  /// Arithmetic with a constant: fn(value, c) per row.
  int MapConst(MapFn fn, int input, double c, std::string label = "");

  /// Element-wise arithmetic between two aligned value vectors.
  int Map2(MapFn fn, int a, int b, std::string label = "");

  /// 0/1 flag per row: dictionary string LIKE %pattern%.
  int LikeFlag(int input, std::string pattern, bool anti = false,
               std::string label = "");

  /// 0/1 flag per row: value == v.
  int EqFlag(int input, int64_t v, std::string label = "");

  /// 0/1 flag per row: lo <= value <= hi.
  int RangeFlag(int input, int64_t lo, int64_t hi, std::string label = "");

  /// Sort values, row-id candidates (bind the value column on the node), or
  /// grouped aggregates.
  int Sort(int input, bool descending = false, std::string label = "");
  int TopN(int input, uint64_t n, bool descending = false,
           std::string label = "");

  /// Leaf sort: order a base column's slice directly (ORDER BY on a base
  /// table), producing values plus their row ids.
  int SortLeaf(const Column* column, bool descending = false,
               std::string label = "");
  int TopNLeaf(const Column* column, uint64_t n, bool descending = false,
               std::string label = "");

  /// Marks `input` as the query result and returns the finished plan.
  QueryPlan Result(int input);

  QueryPlan& plan() { return plan_; }

 private:
  QueryPlan plan_;
};

}  // namespace apq

#endif  // APQ_PLAN_BUILDER_H_
