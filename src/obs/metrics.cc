#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace apq {
namespace obs {

namespace {

// Fixed-format double for export: trims trailing zeros so JSON stays
// readable, keeps enough digits that nanosecond sums round-trip.
std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Splits `apq_foo_total{worker="3"}` into base name and label body
// (`worker="3"`, no braces); label body is empty when there is none.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  const size_t close = name.rfind('}');
  *labels = name.substr(brace + 1,
                        close == std::string::npos || close <= brace
                            ? std::string::npos
                            : close - brace - 1);
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.empty()) bounds_.push_back(1.0);
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  // Branchless-ish bucket search: bounds counts are tiny (<= ~30), the
  // binary search is a handful of predictable compares.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS accumulation of the double sum.
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  double old_sum;
  do {
    std::memcpy(&old_sum, &old_bits, sizeof(old_sum));
    const double new_sum = old_sum + v;
    uint64_t new_bits;
    std::memcpy(&new_bits, &new_sum, sizeof(new_bits));
    if (sum_bits_.compare_exchange_weak(old_bits, new_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  } while (true);
}

double Histogram::Sum() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double sum;
  std::memcpy(&sum, &bits, sizeof(sum));
  return sum;
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Percentile(double q) const {
  // Snapshot the buckets once and derive the total from the SAME snapshot:
  // count_ is a separate relaxed atomic, so reading it independently can
  // disagree with the buckets mid-Observe and push the rank past the walk.
  // With the snapshot total, the answer is deterministic for every state the
  // buckets can actually be observed in: empty -> 0, everything in the
  // overflow bucket -> the overflow lower bound (bounds_.back()).
  const std::vector<uint64_t> counts = BucketCounts();
  const size_t n = counts.size();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t c = counts[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within =
          (rank - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + (hi - lo) * std::min(std::max(within, 0.0), 1.0);
    }
    cum += c;
  }
  return bounds_.back();
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_bits_.store(0);
}

std::vector<double> Histogram::ExponentialBounds(double first, double factor,
                                                 int n) {
  std::vector<double> out;
  out.reserve(n > 0 ? n : 0);
  double b = first;
  for (int i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed:
  return *g;  // instruments may be touched by atexit exporters and workers
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << c->Value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << g->Value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\"" << name << "\":{"
       << "\"count\":" << h->Count() << ",\"sum\":" << FmtDouble(h->Sum())
       << ",\"mean\":" << FmtDouble(h->Mean())
       << ",\"p50\":" << FmtDouble(h->Percentile(0.50))
       << ",\"p95\":" << FmtDouble(h->Percentile(0.95))
       << ",\"p99\":" << FmtDouble(h->Percentile(0.99)) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    os << base << (labels.empty() ? "" : "{" + labels + "}") << " "
       << c->Value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    os << base << (labels.empty() ? "" : "{" + labels + "}") << " "
       << g->Value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    const std::string sep = labels.empty() ? "" : labels + ",";
    const auto counts = h->BucketCounts();
    const auto& bounds = h->bounds();
    uint64_t cum = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      os << base << "_bucket{" << sep << "le=\"" << FmtDouble(bounds[i])
         << "\"} " << cum << "\n";
    }
    cum += counts[bounds.size()];
    os << base << "_bucket{" << sep << "le=\"+Inf\"} " << cum << "\n";
    os << base << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << " "
       << FmtDouble(h->Sum()) << "\n";
    os << base << "_count" << (labels.empty() ? "" : "{" + labels + "}")
       << " " << h->Count() << "\n";
  }
  return os.str();
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace apq
