#include "obs/query_log.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/trace.h"  // ValidateWritablePath

namespace apq {
namespace obs {

namespace {

std::atomic<uint64_t> g_next_query_id{1};
thread_local uint64_t t_current_query_id = 0;

// Minimal JSON string escaping for status/error texts (profile documents
// arrive pre-serialized and are embedded verbatim).
void JsonEscapeInto(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

void AppendSummary(std::ostringstream& os, const QueryRecord& r) {
  os.precision(15);
  os << "{\"id\":" << r.id << ",\"kind\":\"";
  JsonEscapeInto(os, r.kind);
  os << "\",\"status\":\"";
  JsonEscapeInto(os, r.status);
  os << "\",\"error\":\"";
  JsonEscapeInto(os, r.error);
  os << "\",\"wall_ns\":" << r.wall_ns << ",\"time_ns\":" << r.time_ns
     << ",\"rows\":" << r.rows << ",\"runs\":" << r.runs
     << ",\"mutations\":" << r.mutations
     << ",\"peak_bytes\":" << r.peak_bytes << ",\"cpu_ns\":" << r.cpu_ns
     << ",\"queue_wait_ns\":" << r.queue_wait_ns << "}";
}

}  // namespace

uint64_t NextQueryId() {
  return g_next_query_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CurrentQueryId() { return t_current_query_id; }

QueryIdScope::QueryIdScope(uint64_t id) : prev_(t_current_query_id) {
  t_current_query_id = id;
}

QueryIdScope::~QueryIdScope() { t_current_query_id = prev_; }

QueryLog& QueryLog::Global() {
  static QueryLog* g = new QueryLog();  // leaked: atexit dumps still read it
  return *g;
}

void QueryLog::Push(QueryRecord rec) {
  const size_t cap = QueryLogCapacity();
  std::lock_guard<std::mutex> lock(mu_);
  recent_.push_back(std::move(rec));
  while (recent_.size() > cap) recent_.pop_front();
}

std::vector<QueryRecord> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryRecord>(recent_.rbegin(), recent_.rend());
}

bool QueryLog::FindProfile(uint64_t id, std::string* json) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->id == id) {
      *json = it->profile_json;
      return true;
    }
  }
  return false;
}

std::string QueryLog::SummaryJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"queries\":[";
  bool first = true;
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (!first) os << ",";
    AppendSummary(os, *it);
    first = false;
  }
  os << "]}";
  return os.str();
}

std::string QueryLog::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"queries\":[";
  bool first = true;
  for (const QueryRecord& r : recent_) {
    if (!first) os << ",\n";
    // Records always carry a document (the engine serializes one even for
    // failed queries); guard anyway so a hand-pushed record cannot corrupt
    // the dump.
    if (r.profile_json.empty()) {
      AppendSummary(os, r);
    } else {
      os << r.profile_json;
    }
    first = false;
  }
  os << "]}";
  return os.str();
}

void QueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  recent_.clear();
}

size_t ParseQueryLogCapacity(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return 0;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return 0;
  if (v < 1 || v > (1ull << 20)) return 0;  // an absurd ring is a typo
  return static_cast<size_t>(v);
}

size_t QueryLogCapacity() {
  static const size_t cap = [] {
    const char* env = std::getenv("APQ_QUERY_LOG");
    if (env == nullptr || *env == '\0') return kQueryLogCapacity;
    const size_t parsed = ParseQueryLogCapacity(env);
    if (parsed == 0) {
      std::fprintf(stderr,
                   "apq: ignoring APQ_QUERY_LOG='%s' (want 1..1048576); "
                   "query log keeps %zu entries\n",
                   env, kQueryLogCapacity);
      return kQueryLogCapacity;
    }
    return parsed;
  }();
  return cap;
}

const std::string& ProfileEnvPath() {
  static const std::string path = [] {
    const char* v = std::getenv("APQ_PROFILE");
    if (v == nullptr || v[0] == '\0') return std::string();
    if (!ValidateWritablePath(v)) {
      std::fprintf(stderr,
                   "apq: ignoring APQ_PROFILE=\"%s\": cannot open for "
                   "writing; profile dump stays off\n",
                   v);
      return std::string();
    }
    return std::string(v);
  }();
  return path;
}

}  // namespace obs
}  // namespace apq
