// Recent-query introspection ring + process-wide query-id allocation.
//
// Every Engine query (RunPlan / RunAdaptive) draws one monotonically
// increasing id from NextQueryId(); the id is threaded — via the
// thread-local QueryIdScope — into the trace spans (query / adaptive-run /
// execute span args), the adaptive lineage, and the per-query profile JSON,
// so a single id correlates every observability surface: grep the Chrome
// trace for a0 == id, curl /debug/profile/<id>, and read the same query.
//
// Completed (or failed) queries push a QueryRecord — summary scalars plus
// the pre-serialized profile JSON document — into the fixed-capacity global
// QueryLog ring. The HTTP exporter (obs/http_exporter.h) serves the ring as
// /debug/queries and /debug/profile/<id>, and a valid APQ_PROFILE=<path>
// dumps it as one JSON document at process exit, no HTTP required.
//
// The log deliberately stores *serialized* JSON: src/obs stays independent
// of the plan/profile layers (the engine serializes via
// profile/profile_json.h and hands the finished string down), and the
// exporter thread never touches live engine state — it only copies strings
// under the log's mutex.
#ifndef APQ_OBS_QUERY_LOG_H_
#define APQ_OBS_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace apq {
namespace obs {

/// Draws the next process-wide query id (1, 2, 3, ...). Ids are never
/// reused; 0 means "no query".
uint64_t NextQueryId();

/// The query id of the query currently executing on this thread (0 when no
/// QueryIdScope is active). Span sites read this to tag events.
uint64_t CurrentQueryId();

/// \brief RAII: installs `id` as this thread's current query id for the
/// scope's lifetime, restoring the previous value on exit (nesting-safe —
/// an engine invoked from inside another engine's callback keeps both ids
/// straight).
class QueryIdScope {
 public:
  explicit QueryIdScope(uint64_t id);
  ~QueryIdScope();
  QueryIdScope(const QueryIdScope&) = delete;
  QueryIdScope& operator=(const QueryIdScope&) = delete;

 private:
  uint64_t prev_;
};

/// \brief One finished query, as the introspection surface remembers it.
struct QueryRecord {
  uint64_t id = 0;
  std::string kind;          // "plan" | "adaptive"
  std::string status = "ok"; // "ok" | "error"
  std::string error;         // status message when status == "error"
  double wall_ns = 0;        // hardware wall-clock of the whole invocation
  double time_ns = 0;        // simulated response time (0 on error)
  uint64_t rows = 0;         // result cardinality
  int runs = 1;              // adaptive runs executed (1 for a plain plan)
  int mutations = 0;         // runs that mutated the plan
  uint64_t peak_bytes = 0;   // peak charged bytes (obs/resource_tracker.h)
  double cpu_ns = 0;         // summed task/operator execution time
  double queue_wait_ns = 0;  // summed scheduler queue-wait
  /// The full per-query JSON document served by /debug/profile/<id>
  /// (profile/profile_json.h schema).
  std::string profile_json;
};

/// Default queries remembered by the ring; older records are evicted.
constexpr size_t kQueryLogCapacity = 64;

/// Parses an APQ_QUERY_LOG value: a plain decimal ring size in
/// [1, 1048576]. Returns 0 on anything else (empty, non-numeric, zero,
/// absurd) so the caller can warn and keep the default.
size_t ParseQueryLogCapacity(const char* s);

/// The ring capacity actually in effect: APQ_QUERY_LOG when set and valid
/// (parsed once, warn-once on bad values — hardened like
/// APQ_FORCE_MORSELS), kQueryLogCapacity otherwise.
size_t QueryLogCapacity();

/// \brief Fixed-capacity ring of recent queries, mutex-protected (pushes
/// happen once per query, reads once per scrape — nowhere near a hot path).
class QueryLog {
 public:
  QueryLog() = default;
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// The process-wide log the engine records into.
  static QueryLog& Global();

  void Push(QueryRecord rec);

  /// Newest-first copies of the current records.
  std::vector<QueryRecord> Snapshot() const;

  /// Copies record `id`'s profile JSON into `*json`; false when evicted or
  /// never recorded.
  bool FindProfile(uint64_t id, std::string* json) const;

  /// {"queries":[{summary fields}...]} newest first — the /debug/queries
  /// body. Summaries exclude the (potentially large) profile documents.
  std::string SummaryJson() const;

  /// {"queries":[<full profile documents>]} oldest first — the APQ_PROFILE
  /// dump, schema-validated by tools/profile_check.py.
  std::string DumpJson() const;

  void Clear();  // tests

 private:
  mutable std::mutex mu_;
  std::deque<QueryRecord> recent_;  // oldest at front
};

/// The validated APQ_PROFILE target ("" = unset or rejected with a one-line
/// warning). Parsed once per process, hardened exactly like APQ_TRACE: an
/// unwritable path never aborts a query.
const std::string& ProfileEnvPath();

}  // namespace obs
}  // namespace apq

#endif  // APQ_OBS_QUERY_LOG_H_
