// Always-on span tracer: the paper's tomograph (Figs 19/20), for real.
//
// Every worker thread records spans (query / adaptive-run / operator /
// morsel-batch) and instant events (steals, mutations, skew re-partitions)
// into a lock-free per-thread fixed-capacity ring buffer; a post-run drain
// exports them as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing.
//
// Cost contract:
//   - Tracing disabled (the default): every span site is ONE relaxed atomic
//     load + branch. No clock reads, no stores, no allocation.
//   - Tracing enabled: two TSC reads + one ring slot store per span. Morsel
//     spans are additionally sampled (every 8th morsel by deterministic
//     morsel index) so sub-microsecond tasks stay cheap.
//   - Tracing NEVER perturbs results: it only observes timings. Differential
//     tests assert bit-identical output with tracing on/off.
//
// Ring buffers are single-writer (the owning thread) / snapshot-reader: the
// writer publishes each slot with a release store of the head; the drain
// reads heads with acquire loads. A drain concurrent with active writers can
// observe a torn in-flight slot — drains are documented post-run
// (quiescent) operations, and the exporter drops obviously invalid slots.
//
// Clocking: raw TSC on x86-64 (rdtsc, ~20 cycles, monotonic on every
// invariant-TSC CPU this code targets), steady_clock elsewhere. Ticks are
// converted to wall nanoseconds at export time by two-point calibration
// against steady_clock, so the hot path never multiplies.
#ifndef APQ_OBS_TRACE_H_
#define APQ_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace apq {
namespace obs {

/// \brief Event category; becomes the Chrome trace "cat" field.
enum class SpanKind : uint8_t {
  kQuery = 0,     // one Engine::RunPlan / RunAdaptive invocation
  kRun,           // one adaptive-loop iteration (execute + profile + mutate)
  kOperator,      // one plan-node execution
  kMorsel,        // one (sampled) morsel task
  kSteal,         // instant: a worker stole a task (a0=thief, a1=victim)
  kMutation,      // instant: plan mutation / skew re-partition split point
  kScheduler,     // scheduler-internal spans
};

/// Chrome trace category name for a kind (static storage).
const char* SpanKindName(SpanKind k);

/// \brief One ring-buffer slot. POD; `name` must point to static-storage
/// strings (operator kind names, literal labels) — the exporter reads it
/// long after the emitting scope died.
struct TraceEvent {
  uint64_t start_ticks = 0;
  uint64_t end_ticks = 0;  // == start_ticks for instant events
  const char* name = nullptr;
  SpanKind kind = SpanKind::kOperator;
  uint32_t tid = 0;  // small per-thread id (assigned at first emit)
  int64_t a0 = 0, a1 = 0, a2 = 0;  // event args (node id, tuples, ...)
};

/// Events kept per thread; oldest are overwritten (dropped counts are
/// reported by Drain). 8192 events x ~64B = 512KB per recording thread.
constexpr size_t kTraceRingCapacity = 8192;

/// Morsel spans are recorded when (morsel_index & kMorselSampleMask) == 0.
constexpr uint64_t kMorselSampleMask = 7;

/// Raw timestamp: TSC on x86-64, steady_clock ns elsewhere.
uint64_t TraceTicks();

/// The one branch every disabled span site pays.
inline bool TraceEnabled();

/// Turns collection on/off process-wide. Enabling is sticky until disabled;
/// ExecOptions::trace / EngineConfig::trace call this, as does a valid
/// APQ_TRACE environment variable.
void SetTraceEnabled(bool on);

/// Appends a span to the calling thread's ring (no-op when disabled).
void EmitSpan(SpanKind kind, const char* name, uint64_t start_ticks,
              uint64_t end_ticks, int64_t a0 = 0, int64_t a1 = 0,
              int64_t a2 = 0);

/// Appends an instant event (ph:"i" in the export).
void EmitInstant(SpanKind kind, const char* name, int64_t a0 = 0,
                 int64_t a1 = 0, int64_t a2 = 0);

/// \brief RAII span: reads the clock on construction/destruction when (and
/// only when) tracing was enabled at construction. Args may be filled late
/// (tuple counts are only known when the operator finishes).
class SpanScope {
 public:
  SpanScope(SpanKind kind, const char* name, int64_t a0 = 0, int64_t a1 = 0)
      : kind_(kind), name_(name), a0_(a0), a1_(a1) {
    if (TraceEnabled()) {
      active_ = true;
      start_ = TraceTicks();
    }
  }
  ~SpanScope() {
    if (active_) EmitSpan(kind_, name_, start_, TraceTicks(), a0_, a1_, a2_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  void set_args(int64_t a0, int64_t a1, int64_t a2 = 0) {
    a0_ = a0;
    a1_ = a1;
    a2_ = a2;
  }

 private:
  SpanKind kind_;
  const char* name_;
  int64_t a0_, a1_;
  int64_t a2_ = 0;
  uint64_t start_ = 0;
  bool active_ = false;
};

/// Snapshots every thread's ring (oldest-first per thread). `dropped`, when
/// non-null, receives the number of events lost to ring overwrites.
std::vector<TraceEvent> DrainEvents(uint64_t* dropped = nullptr);

/// Renders the current snapshot as Chrome trace-event JSON
/// ({"traceEvents":[...]}, "X" duration + "i" instant events, microsecond
/// timestamps calibrated against steady_clock).
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`.
Status WriteChromeTrace(const std::string& path);

/// Clears every ring buffer and drop counter (tests; also used between
/// adaptive experiments to keep exports scoped to one run).
void ClearTraceBuffers();

/// True when `path` can be opened for writing (probe-open + close). Does not
/// truncate an existing file. The APQ_TRACE/APQ_METRICS validators warn and
/// ignore the variable when this fails — tracing must never abort a query.
bool ValidateWritablePath(const char* path);

/// The validated APQ_TRACE target ("" = unset or rejected with a warning).
/// Parsed once per process, exactly like APQ_FORCE_MORSELS / APQ_SIMD.
const std::string& TraceEnvPath();

/// The validated APQ_METRICS target ("" = unset/rejected). A ".json" suffix
/// selects MetricsRegistry JSON; anything else gets Prometheus text.
const std::string& MetricsEnvPath();

/// Reads APQ_TRACE / APQ_METRICS / APQ_PROFILE / APQ_HTTP once: a valid
/// APQ_TRACE enables collection, and an atexit exporter flushes the trace,
/// the metrics snapshot (APQ_METRICS), and the recent-query profile dump
/// (APQ_PROFILE, obs/query_log.h) when the process ends, so benches and
/// examples get observability without Engine plumbing. A valid APQ_HTTP
/// starts the live introspection endpoint (obs/http_exporter.h). Idempotent
/// and cheap after the first call; the evaluator calls this from
/// set_options.
void InitFromEnv();

// ---- implementation details (header-inline for the hot-path branch) ----

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace apq

#endif  // APQ_OBS_TRACE_H_
