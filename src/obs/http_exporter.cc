#include "obs/http_exporter.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "util/hash_clock.h"

namespace apq {
namespace obs {

namespace {

// Serve-loop poll period: the stop flag is observed within this bound.
constexpr int kPollMs = 100;
// A request line longer than this is garbage; drop the connection.
constexpr size_t kMaxRequestBytes = 4096;

// Per-route request counters: apq_http_requests_total{route="..."}. The
// route label is drawn from a fixed vocabulary (id-suffixed paths collapse
// to "/debug/profile", everything unrecognized to "unknown") so a scanner
// walking random paths cannot grow the registry without bound.
Counter* RouteCounter(const char* route) {
  return MetricsRegistry::Global().GetCounter(
      std::string("apq_http_requests_total{route=\"") + route + "\"}");
}

std::atomic<std::string (*)()> g_workers_provider{nullptr};
std::atomic<std::string (*)()> g_service_provider{nullptr};

std::string StatusLine(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK";
    case 404: return "HTTP/1.1 404 Not Found";
    case 405: return "HTTP/1.1 405 Method Not Allowed";
    default: return "HTTP/1.1 500 Internal Server Error";
  }
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to salvage
    off += static_cast<size_t>(n);
  }
}

// Process start anchor for /healthz uptime.
const double g_start_ns = NowNs();

}  // namespace

HttpExporter& HttpExporter::Global() {
  static HttpExporter* g = new HttpExporter();  // leaked: atexit-stop only
  return *g;
}

void HttpExporter::Handle(const std::string& raw_path, int* http_status,
                          std::string* content_type, std::string* body) {
  // Strip any query string: /metrics?x=y routes like /metrics.
  const size_t q = raw_path.find('?');
  const std::string path =
      q == std::string::npos ? raw_path : raw_path.substr(0, q);

  *http_status = 200;
  *content_type = "application/json";
  if (path == "/metrics") {
    RouteCounter("/metrics")->Inc();
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    *body = MetricsRegistry::Global().ToPrometheus();
    return;
  }
  if (path == "/metrics.json") {
    RouteCounter("/metrics.json")->Inc();
    *body = MetricsRegistry::Global().ToJson();
    return;
  }
  if (path == "/healthz") {
    RouteCounter("/healthz")->Inc();
    std::ostringstream os;
    os.precision(15);
    os << "ok uptime_s=" << (NowNs() - g_start_ns) / 1e9 << "\n";
    *content_type = "text/plain; charset=utf-8";
    *body = os.str();
    return;
  }
  if (path == "/debug/queries") {
    RouteCounter("/debug/queries")->Inc();
    *body = QueryLog::Global().SummaryJson();
    return;
  }
  if (path == "/debug/workers") {
    RouteCounter("/debug/workers")->Inc();
    std::string (*provider)() = g_workers_provider.load();
    *body = provider != nullptr ? provider() : "{\"schedulers\":[]}";
    return;
  }
  if (path == "/debug/service") {
    RouteCounter("/debug/service")->Inc();
    std::string (*provider)() = g_service_provider.load();
    *body = provider != nullptr ? provider() : "{\"services\":[]}";
    return;
  }
  const std::string profile_prefix = "/debug/profile/";
  if (path.rfind(profile_prefix, 0) == 0) {
    RouteCounter("/debug/profile")->Inc();
    const std::string id_str = path.substr(profile_prefix.size());
    char* end = nullptr;
    errno = 0;
    const unsigned long long id = std::strtoull(id_str.c_str(), &end, 10);
    if (errno != 0 || end == id_str.c_str() || *end != '\0' || id == 0 ||
        !QueryLog::Global().FindProfile(static_cast<uint64_t>(id), body)) {
      *http_status = 404;
      *body = "{\"error\":\"no profile for query id '" + id_str + "'\"}";
    }
    return;
  }
  RouteCounter("unknown")->Inc();
  *http_status = 404;
  *body = "{\"error\":\"not found\",\"endpoints\":[\"/metrics\","
          "\"/metrics.json\",\"/healthz\",\"/debug/queries\","
          "\"/debug/profile/<id>\",\"/debug/workers\",\"/debug/service\"]}";
}

Status HttpExporter::Start(int port) {
  if (running()) {
    if (port != 0 && port != port_) {
      std::fprintf(stderr,
                   "apq: introspection endpoint already on port %d; "
                   "ignoring request for port %d\n",
                   port_, port);
    }
    return Status::OK();
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    Status st = Status::Internal("bind/listen on 127.0.0.1:" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  // Resolve the kernel-assigned port for ephemeral (port 0) requests.
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }

  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // The serve loop polls with a timeout, so flipping the flag is enough; the
  // shutdown just hurries a blocked accept along.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpExporter::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollMs);
    if (pr <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    // Bound the read so a stalled client cannot wedge the (single) serve
    // thread; introspection clients send one short GET line.
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::string req;
    char buf[1024];
    while (req.size() < kMaxRequestBytes &&
           req.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<size_t>(n));
    }

    // Parse "GET <path> HTTP/1.x".
    std::string method, path;
    {
      const size_t sp1 = req.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? std::string::npos : req.find(' ', sp1 + 1);
      if (sp1 != std::string::npos && sp2 != std::string::npos) {
        method = req.substr(0, sp1);
        path = req.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }

    int http_status = 405;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body = "method not allowed\n";
    if (method == "GET" || method == "HEAD") {
      Handle(path, &http_status, &content_type, &body);
    }

    std::ostringstream os;
    os << StatusLine(http_status) << "\r\nContent-Type: " << content_type
       << "\r\nContent-Length: " << body.size()
       << "\r\nConnection: close\r\n\r\n";
    if (method != "HEAD") os << body;
    WriteAll(fd, os.str());
    ::shutdown(fd, SHUT_WR);
    ::close(fd);
  }
}

void SetWorkersProvider(std::string (*provider)()) {
  g_workers_provider.store(provider);
}

void SetServiceProvider(std::string (*provider)()) {
  g_service_provider.store(provider);
}

int ParseHttpPort(const char* value) {
  if (value == nullptr || value[0] == '\0') return -1;
  char* end = nullptr;
  errno = 0;
  const long port = std::strtol(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0' || port < 1 || port > 65535) {
    return -1;
  }
  return static_cast<int>(port);
}

int HttpEnvPort() {
  static const int port = [] {
    const char* v = std::getenv("APQ_HTTP");
    if (v == nullptr || v[0] == '\0') return 0;
    const int p = ParseHttpPort(v);
    if (p < 0) {
      std::fprintf(stderr,
                   "apq: ignoring APQ_HTTP=\"%s\": expected a port in "
                   "1..65535; introspection stays off\n",
                   v);
      return 0;
    }
    return p;
  }();
  return port;
}

void InitHttpFromEnv() {
  static const bool once = [] {
    const int port = HttpEnvPort();
    if (port > 0) {
      Status st = HttpExporter::Global().Start(port);
      if (!st.ok()) {
        std::fprintf(stderr,
                     "apq: APQ_HTTP introspection endpoint failed to start: "
                     "%s; introspection stays off\n",
                     st.ToString().c_str());
      } else {
        std::atexit([] { HttpExporter::Global().Stop(); });
      }
    }
    return true;
  }();
  (void)once;
}

}  // namespace obs
}  // namespace apq
