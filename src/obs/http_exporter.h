// Live introspection endpoint: a tiny embedded single-threaded HTTP/1.1
// server (plain POSIX sockets, no dependencies) that lets you ask a RUNNING
// process what it is doing — the pull-side counterpart of the push-side
// span/metrics substrate in obs/trace.h and obs/metrics.h.
//
//   GET /metrics              Prometheus text exposition (MetricsRegistry)
//   GET /metrics.json         the same registry as one JSON object
//   GET /healthz              "ok" + uptime (liveness probe)
//   GET /debug/queries        recent-query ring: id, kind, status, wall,
//                             rows, run and mutation counts (obs/query_log.h)
//   GET /debug/profile/<id>   one query's full profile document: per-op
//                             wall/tuples/morsel skew plus the adaptive
//                             lineage (profile/profile_json.h schema)
//   GET /debug/workers        scheduler worker health: per-worker busy/idle
//                             occupancy, steal success/failure counts, and
//                             the flight-recorder pressure ring (provided by
//                             sched/morsel_scheduler.h via
//                             SetWorkersProvider)
//   GET /debug/service        query-service admission state: sessions,
//                             active/queued queries, shed and promotion
//                             totals, queue-wait and latency percentiles
//                             (provided by service/query_service.h via
//                             SetServiceProvider)
//
// Design constraints, in order:
//   1. Zero cost when off (the default): nothing is constructed, no thread,
//      no socket. Queries never wait on the exporter — every handler reads
//      relaxed-atomic snapshots or copies strings under short mutexes.
//   2. Hardened like APQ_TRACE: an invalid APQ_HTTP value or a failing
//      bind/listen warns once on stderr and introspection stays off. It
//      never aborts or fails a query.
//   3. Deliberately single-threaded and sequential: one scrape at a time is
//      plenty for a Prometheus poller plus a human with curl, and a serial
//      accept loop cannot amplify load on the engine. Binds 127.0.0.1 only —
//      this is an introspection port, not a public API.
#ifndef APQ_OBS_HTTP_EXPORTER_H_
#define APQ_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <string>
#include <thread>

#include "util/status.h"

namespace apq {
namespace obs {

/// \brief The embedded introspection server. Instantiable for tests (an
/// ephemeral port via Start(0)); production use goes through Global(),
/// started by EngineConfig::http_port or APQ_HTTP=<port>.
class HttpExporter {
 public:
  HttpExporter() = default;
  ~HttpExporter() { Stop(); }
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// The process-wide exporter.
  static HttpExporter& Global();

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, for tests)
  /// and starts the serve thread. Idempotent while running: a second Start
  /// keeps the original port (and warns when a different one was asked
  /// for). On failure the server stays off and the Status says why.
  Status Start(int port);

  /// Stops the serve thread and closes the socket. Safe to call when not
  /// running.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolved for ephemeral requests); 0 when not running.
  int port() const { return port_; }

  /// Routes one request path to (http status, content type, body). Exposed
  /// so unit tests can exercise the routing table without sockets; the
  /// serve loop calls exactly this.
  static void Handle(const std::string& path, int* http_status,
                     std::string* content_type, std::string* body);

 private:
  void Serve();

  std::thread thread_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;
};

/// Installs the /debug/workers body provider. The scheduler layer sits
/// above obs in the dependency order, so it injects its renderer here (a
/// plain function pointer swapped atomically) instead of obs calling into
/// sched. nullptr (the default) serves an empty scheduler list.
void SetWorkersProvider(std::string (*provider)());

/// Installs the /debug/service body provider, same pattern as
/// SetWorkersProvider: the service layer injects QueryService::ServiceJson.
/// nullptr (the default) serves an empty service list.
void SetServiceProvider(std::string (*provider)());

/// Parses an APQ_HTTP-style port value: returns the port for "1".."65535",
/// -1 for anything else (empty, garbage, out of range). Pure — exposed for
/// tests; the env reader adds the warn-once behavior.
int ParseHttpPort(const char* value);

/// The validated APQ_HTTP port (0 = unset or rejected with a one-line
/// warning). Parsed once per process.
int HttpEnvPort();

/// Reads APQ_HTTP once and starts Global() on that port when valid.
/// Idempotent and cheap after the first call; obs::InitFromEnv calls this.
void InitHttpFromEnv();

}  // namespace obs
}  // namespace apq

#endif  // APQ_OBS_HTTP_EXPORTER_H_
