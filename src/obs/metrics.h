// Process-wide metrics registry: counters, gauges, and fixed-bucket latency
// histograms with interpolated p50/p95/p99, exported as JSON and as
// Prometheus text exposition format.
//
// Design goals, in order:
//   1. Hot-path cost: one relaxed atomic add per counter increment, one
//      atomic add + one bucket store per histogram observation. No locks,
//      no allocation, no formatting anywhere near an operator or morsel.
//   2. Always-on: instruments register themselves once (registry lookup under
//      a mutex, cached as a raw pointer by the call site) and live for the
//      process lifetime — pointers handed out by the registry never dangle.
//   3. Export is cheap enough to run per-query but only runs on demand:
//      ToJson()/ToPrometheus() walk the registry under the registration
//      mutex; readings are relaxed-atomic snapshots (counters may be mid-
//      update — fine for monitoring, and the consistency tests quiesce
//      first).
//
// This is the "metrics endpoint" half of the observability layer; the
// span tracer (obs/trace.h) is the other half.
#ifndef APQ_OBS_METRICS_H_
#define APQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace apq {
namespace obs {

/// \brief Monotonically increasing counter (events, tuples, tasks).
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time signed value (queue depth, active dispatch level).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram: `bounds` are ascending inclusive upper
/// bucket bounds; one implicit +inf overflow bucket is appended. Percentiles
/// interpolate linearly within the bucket that holds the requested rank
/// (within the overflow bucket the last finite bound is returned), so
/// accuracy is one bucket width — pick bounds to match (LatencyBoundsNs
/// covers 250ns..16s at 2x resolution, plenty for p50/p95/p99 of anything
/// this engine times).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  double Mean() const;
  /// q in [0, 1]. Deterministic edge cases: 0 when empty; the overflow
  /// lower bound (bounds().back()) when the rank lands in the +inf bucket.
  /// The rank is computed from one snapshot of the bucket counts (not the
  /// separately-updated Count()), so a read racing Observe still walks a
  /// self-consistent distribution.
  double Percentile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

  /// n ascending bounds: first, first*factor, first*factor^2, ...
  static std::vector<double> ExponentialBounds(double first, double factor,
                                               int n);
  /// Default latency ladder in nanoseconds: 250ns doubling to ~16s.
  static std::vector<double> LatencyBoundsNs() {
    return ExponentialBounds(250.0, 2.0, 27);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // CAS-accumulated double
};

/// \brief Name -> instrument registry. Get* registers on first use and
/// returns the same pointer forever after; pointers are valid for the
/// process lifetime. Instrument names follow Prometheus conventions and may
/// carry a label suffix: `apq_sched_tasks_total{worker="3"}`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrument registers with.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is used only on first registration of `name`.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// p50, p95, p99}}} — one flat JSON object, stable key order.
  std::string ToJson() const;

  /// Prometheus text exposition format. Histograms emit cumulative
  /// `_bucket{le="..."}` series plus `_sum` and `_count`; a label suffix in
  /// the registered name is merged with the `le` label.
  std::string ToPrometheus() const;

  /// Zeroes every registered instrument (tests only; instruments stay
  /// registered so cached pointers remain valid).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace apq

#endif  // APQ_OBS_METRICS_H_
