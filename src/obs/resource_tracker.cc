#include "obs/resource_tracker.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/query_log.h"

namespace apq {
namespace obs {

namespace internal {
std::atomic<bool> g_accounting_enabled{true};
}  // namespace internal

namespace {

// Process-wide aggregate of all live charges, and its all-time high
// watermark. Kept in local atomics (the gauges mirror them) so the CAS-max
// loop never races a scrape's Set.
std::atomic<int64_t> g_process_cur{0};
std::atomic<int64_t> g_process_peak{0};

Gauge* CurrentBytesGauge() {
  static Gauge* g =
      MetricsRegistry::Global().GetGauge("apq_mem_current_bytes");
  return g;
}
Gauge* PeakBytesGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge("apq_mem_peak_bytes");
  return g;
}
Gauge* HashCacheGauge() {
  static Gauge* g =
      MetricsRegistry::Global().GetGauge("apq_hash_cache_bytes");
  return g;
}

void AddProcessBytes(int64_t delta) {
  const int64_t cur =
      g_process_cur.fetch_add(delta, std::memory_order_relaxed) + delta;
  CurrentBytesGauge()->Set(cur);
  int64_t peak = g_process_peak.load(std::memory_order_relaxed);
  while (cur > peak && !g_process_peak.compare_exchange_weak(
                           peak, cur, std::memory_order_relaxed)) {
  }
  if (cur > peak) PeakBytesGauge()->Set(cur);
}

// One query's live accounting block. Held by shared_ptr so a worker
// thread's cache entry stays valid even if the engine retires the query
// while a straggler task is still billing (the late bill lands on a
// detached block and is dropped with it — never a dangling read).
struct QueryBlock {
  std::atomic<uint64_t> cur_bytes{0};
  std::atomic<uint64_t> peak_bytes{0};
  std::atomic<uint64_t> cpu_ns{0};
  std::atomic<uint64_t> queue_wait_ns{0};
  std::atomic<uint64_t> tasks{0};
};

std::mutex g_blocks_mu;
std::unordered_map<uint64_t, std::shared_ptr<QueryBlock>>& Blocks() {
  static auto* m =
      new std::unordered_map<uint64_t, std::shared_ptr<QueryBlock>>();
  return *m;
}

// Thread-local cache: the common case is many charges for the same query
// id in a row, so the mutex-protected map is touched once per (thread,
// query), not once per charge.
struct BlockCache {
  uint64_t qid = 0;
  std::shared_ptr<QueryBlock> block;
};
thread_local BlockCache t_block_cache;

QueryBlock* BlockFor(uint64_t qid) {
  if (qid == 0) return nullptr;
  BlockCache& c = t_block_cache;
  if (c.qid == qid && c.block) return c.block.get();
  std::lock_guard<std::mutex> lock(g_blocks_mu);
  auto& slot = Blocks()[qid];
  if (!slot) slot = std::make_shared<QueryBlock>();
  c.qid = qid;
  c.block = slot;
  return c.block.get();
}

void MaxInto(std::atomic<uint64_t>* peak, uint64_t v) {
  uint64_t p = peak->load(std::memory_order_relaxed);
  while (v > p &&
         !peak->compare_exchange_weak(p, v, std::memory_order_relaxed)) {
  }
}

thread_local OpAcct* t_op_acct = nullptr;

}  // namespace

void SetAccountingEnabled(bool on) {
  internal::g_accounting_enabled.store(on, std::memory_order_relaxed);
}

void InitAccountingFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("APQ_ACCOUNTING");
    if (env == nullptr || *env == '\0') return;
    if (std::strcmp(env, "0") == 0) {
      SetAccountingEnabled(false);
    } else if (std::strcmp(env, "1") == 0) {
      SetAccountingEnabled(true);
    } else {
      std::fprintf(stderr,
                   "apq: ignoring APQ_ACCOUNTING='%s' (want 0 or 1); "
                   "resource accounting stays on\n",
                   env);
    }
  });
}

OpAcct* CurrentOpAcct() { return t_op_acct; }

OpAcctScope::OpAcctScope(OpAcct* acct) : prev_(t_op_acct) {
  t_op_acct = acct;
}
OpAcctScope::~OpAcctScope() { t_op_acct = prev_; }

OpAcct* ExchangeOpAcct(OpAcct* acct) {
  OpAcct* prev = t_op_acct;
  t_op_acct = acct;
  return prev;
}

void ChargeBytes(uint64_t n) {
  if (!AccountingEnabled() || n == 0) return;
  if (QueryBlock* b = BlockFor(CurrentQueryId())) {
    const uint64_t cur =
        b->cur_bytes.fetch_add(n, std::memory_order_relaxed) + n;
    MaxInto(&b->peak_bytes, cur);
  }
  if (OpAcct* a = t_op_acct) {
    const uint64_t cur =
        a->cur_bytes.fetch_add(n, std::memory_order_relaxed) + n;
    MaxInto(&a->peak_bytes, cur);
  }
  AddProcessBytes(static_cast<int64_t>(n));
}

void UnchargeBytes(uint64_t n) {
  if (!AccountingEnabled() || n == 0) return;
  if (QueryBlock* b = BlockFor(CurrentQueryId())) {
    b->cur_bytes.fetch_sub(n, std::memory_order_relaxed);
  }
  if (OpAcct* a = t_op_acct) {
    a->cur_bytes.fetch_sub(n, std::memory_order_relaxed);
  }
  AddProcessBytes(-static_cast<int64_t>(n));
}

void ChargeTransient(uint64_t n) {
  if (!AccountingEnabled() || n == 0) return;
  ChargeBytes(n);
  UnchargeBytes(n);
}

void AddHashCacheBytes(int64_t delta) {
  if (!AccountingEnabled() || delta == 0) return;
  HashCacheGauge()->Add(delta);
}

void BillTask(uint64_t query_id, OpAcct* acct, double cpu_ns,
              double queue_wait_ns) {
  if (!AccountingEnabled()) return;
  const uint64_t cpu = cpu_ns > 0 ? static_cast<uint64_t>(cpu_ns) : 0;
  const uint64_t wait =
      queue_wait_ns > 0 ? static_cast<uint64_t>(queue_wait_ns) : 0;
  if (QueryBlock* b = BlockFor(query_id)) {
    b->cpu_ns.fetch_add(cpu, std::memory_order_relaxed);
    b->queue_wait_ns.fetch_add(wait, std::memory_order_relaxed);
    b->tasks.fetch_add(1, std::memory_order_relaxed);
  }
  if (acct != nullptr) {
    acct->cpu_ns.fetch_add(cpu, std::memory_order_relaxed);
    acct->queue_wait_ns.fetch_add(wait, std::memory_order_relaxed);
    acct->tasks.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SnapshotQueryResources(uint64_t id, QueryResources* out) {
  if (id == 0) return false;
  std::shared_ptr<QueryBlock> b;
  {
    std::lock_guard<std::mutex> lock(g_blocks_mu);
    auto it = Blocks().find(id);
    if (it == Blocks().end()) return false;
    b = it->second;
  }
  out->cur_bytes = b->cur_bytes.load(std::memory_order_relaxed);
  out->peak_bytes = b->peak_bytes.load(std::memory_order_relaxed);
  out->cpu_ns = b->cpu_ns.load(std::memory_order_relaxed);
  out->queue_wait_ns = b->queue_wait_ns.load(std::memory_order_relaxed);
  out->tasks = b->tasks.load(std::memory_order_relaxed);
  return true;
}

void FinishQuery(uint64_t id) {
  if (id == 0) return;
  std::shared_ptr<QueryBlock> b;
  {
    std::lock_guard<std::mutex> lock(g_blocks_mu);
    auto it = Blocks().find(id);
    if (it == Blocks().end()) return;
    b = std::move(it->second);
    Blocks().erase(it);
  }
  // The block's peak is already covered by the process watermark (every
  // charge raised both), but fold it in explicitly so the invariant holds
  // even for charges made while the watermark gauge was being re-seeded.
  const int64_t peak =
      static_cast<int64_t>(b->peak_bytes.load(std::memory_order_relaxed));
  int64_t p = g_process_peak.load(std::memory_order_relaxed);
  while (peak > p && !g_process_peak.compare_exchange_weak(
                         p, peak, std::memory_order_relaxed)) {
  }
  if (peak > p) PeakBytesGauge()->Set(peak);
  // Invalidate this thread's cache eagerly; other threads' caches expire
  // on their next different-query charge (and keep the detached block
  // alive via shared_ptr until then).
  if (t_block_cache.qid == id) {
    t_block_cache.qid = 0;
    t_block_cache.block.reset();
  }
}

size_t LiveQueryResourceCount() {
  std::lock_guard<std::mutex> lock(g_blocks_mu);
  return Blocks().size();
}

}  // namespace obs
}  // namespace apq
