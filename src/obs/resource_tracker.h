// Per-query resource accounting: the measurement substrate admission
// control needs — how much memory and CPU each query actually consumes.
//
// Three things live here:
//
//   1. MEMORY. Allocation sites (kernel output growth, agg-table slabs,
//      sort runs, hash builds, intermediate columns) charge bytes against
//      the query currently installed on the thread (obs/query_log.h
//      QueryIdScope — the morsel scheduler re-installs it inside worker
//      tasks). Each query tracks current and peak charged bytes; the
//      process tracks an aggregate current gauge (apq_mem_current_bytes)
//      and an all-time high watermark (apq_mem_peak_bytes).
//   2. CPU. The scheduler bills every finished morsel task's duration and
//      queue-wait to the owning query (BillTask); whole-column operators
//      bill their node wall time from the evaluator. Per query that yields
//      cpu_ns, queue_wait_ns, and task counts — enough to compute parallel
//      efficiency (cpu_ns / wall_ns / workers).
//   3. PER-OPERATOR ATTRIBUTION. The evaluator installs an OpAcct block
//      around each plan-node execution (OpAcctScope); charges and task
//      bills made while it is installed also land there, so the
//      EXPLAIN-ANALYZE document carries peak_bytes / cpu_ns /
//      queue_wait_ns per operator.
//
// Cost contract (mirrors obs/trace.h):
//   - Accounting disabled: every site is ONE relaxed atomic load + branch.
//   - Accounting enabled (the default): a handful of relaxed atomic adds
//     per *operator or morsel task* — never per row.
//   - Accounting NEVER perturbs results: differential tests assert
//     bit-identical TPC-H output with accounting on vs off at every worker
//     count.
//
// Charge discipline (the zero-drift invariant, asserted by
// tests/resource_tracker_test.cc): every durable ChargeBytes is matched by
// exactly one UnchargeBytes before the engine retires the query, so a
// query's current bytes return to 0 at query end. Short-lived buffers use
// ChargeTransient (peak-visible, net zero). Cross-query state (the hash
// index cache) is charged transiently during the build and then parked in
// its own steady-state gauge (apq_hash_cache_bytes) instead of leaking
// into per-query drift.
#ifndef APQ_OBS_RESOURCE_TRACKER_H_
#define APQ_OBS_RESOURCE_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace apq {
namespace obs {

/// The one branch every disabled accounting site pays.
inline bool AccountingEnabled();

/// Turns accounting on/off process-wide (tests and the APQ_ACCOUNTING env
/// override; on by default).
void SetAccountingEnabled(bool on);

/// Reads APQ_ACCOUNTING once (hardened like APQ_FORCE_MORSELS: "0" or "1",
/// anything else warns once and keeps the default ON). Called from
/// obs::InitFromEnv.
void InitAccountingFromEnv();

/// \brief Per-operator accounting block. Owned by the evaluator (one per
/// plan-node execution), installed thread-locally by OpAcctScope and
/// propagated into scheduler tasks, so morsel-task charges and bills from
/// any worker land on the operator that spawned them.
struct OpAcct {
  std::atomic<uint64_t> cur_bytes{0};
  std::atomic<uint64_t> peak_bytes{0};
  std::atomic<uint64_t> cpu_ns{0};
  std::atomic<uint64_t> queue_wait_ns{0};
  std::atomic<uint64_t> tasks{0};
};

/// The operator block installed on this thread (nullptr outside any
/// OpAcctScope / scheduler task).
OpAcct* CurrentOpAcct();

/// \brief RAII: installs `acct` as this thread's operator block, restoring
/// the previous one on exit (nesting-safe). The scheduler performs the
/// equivalent install/restore around each task it runs.
class OpAcctScope {
 public:
  explicit OpAcctScope(OpAcct* acct);
  ~OpAcctScope();
  OpAcctScope(const OpAcctScope&) = delete;
  OpAcctScope& operator=(const OpAcctScope&) = delete;

 private:
  OpAcct* prev_;
};

/// Installs `acct` directly (the scheduler's task prologue; pairs with a
/// second call to restore). Returns the previously installed block.
OpAcct* ExchangeOpAcct(OpAcct* acct);

/// Bills `n` bytes to the current query (and current operator block).
/// Durable: the caller owes a matching UnchargeBytes before query end.
void ChargeBytes(uint64_t n);

/// Returns `n` previously charged bytes.
void UnchargeBytes(uint64_t n);

/// Charge + immediate uncharge: records `n` in the query/operator/process
/// peaks without moving the steady-state gauges. For short-lived working
/// buffers (kernel output growth, merge-chunk scratch) where holding the
/// charge across the call would be indistinguishable from a leak.
void ChargeTransient(uint64_t n);

/// \brief RAII guard for durable charges: whatever is held at destruction
/// is uncharged, so early returns and error paths cannot drift.
class ScopedMemCharge {
 public:
  ScopedMemCharge() = default;
  explicit ScopedMemCharge(uint64_t n) { Add(n); }
  ~ScopedMemCharge() { Release(); }
  ScopedMemCharge(const ScopedMemCharge&) = delete;
  ScopedMemCharge& operator=(const ScopedMemCharge&) = delete;

  /// Charges `n` more bytes onto the guard.
  void Add(uint64_t n) {
    ChargeBytes(n);
    held_ += n;
  }
  /// Adopts `n` bytes that were already charged elsewhere (e.g. by morsel
  /// tasks running under this operator), so this guard's destructor is the
  /// single matching uncharge.
  void AssumeCharged(uint64_t n) { held_ += n; }
  /// Uncharges everything held now (idempotent; the destructor otherwise
  /// does it).
  void Release() {
    if (held_ > 0) UnchargeBytes(held_);
    held_ = 0;
  }
  uint64_t held() const { return held_; }

 private:
  uint64_t held_ = 0;
};

/// Adds `delta` (signed) to the cross-query hash-index-cache gauge
/// (apq_hash_cache_bytes). The cache outlives queries, so its steady state
/// is tracked process-wide instead of being charged to the builder.
void AddHashCacheBytes(int64_t delta);

/// Bills one finished scheduler task to query `query_id` (0 = unowned,
/// dropped) and to `acct` (nullable): `cpu_ns` of execution and
/// `queue_wait_ns` spent between submit and claim.
void BillTask(uint64_t query_id, OpAcct* acct, double cpu_ns,
              double queue_wait_ns);

/// \brief One query's accounting snapshot.
struct QueryResources {
  uint64_t cur_bytes = 0;   // still-charged bytes (0 at query end, or drift)
  uint64_t peak_bytes = 0;  // high watermark of charged bytes
  uint64_t cpu_ns = 0;      // summed task/operator execution time
  uint64_t queue_wait_ns = 0;  // summed task queue-wait
  uint64_t tasks = 0;          // scheduler tasks billed
};

/// Copies query `id`'s live accounting block into `*out`; false when the
/// query never charged anything (or accounting is off).
bool SnapshotQueryResources(uint64_t id, QueryResources* out);

/// Retires query `id`: folds its peak into the process high watermark and
/// drops the block. The engine calls this after recording the query.
void FinishQuery(uint64_t id);

/// Number of queries with live (un-retired) accounting blocks (tests).
size_t LiveQueryResourceCount();

// ---- implementation details (header-inline for the hot-path branch) ----

namespace internal {
extern std::atomic<bool> g_accounting_enabled;
}  // namespace internal

inline bool AccountingEnabled() {
  return internal::g_accounting_enabled.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace apq

#endif  // APQ_OBS_RESOURCE_TRACKER_H_
