#include "obs/trace.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/resource_tracker.h"

namespace apq {
namespace obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One thread's ring. Owned by a shared_ptr held both thread_locally (writer)
// and by the global registry (reader), so buffers survive thread exit and
// drains never race a destructor.
struct ThreadRing {
  TraceEvent ring[kTraceRingCapacity];
  std::atomic<uint64_t> head{0};  // total events ever written
  uint32_t tid = 0;
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::atomic<uint32_t> next_tid{1};
  // Calibration anchor: (ticks, steady ns) captured at registry creation;
  // the exporter takes a second sample to solve ns-per-tick.
  uint64_t anchor_ticks = 0;
  uint64_t anchor_ns = 0;
};

RingRegistry& Registry() {
  static RingRegistry* g = [] {
    auto* r = new RingRegistry();  // leaked: atexit exporters still drain it
    r->anchor_ticks = TraceTicks();
    r->anchor_ns = SteadyNowNs();
    return r;
  }();
  return *g;
}

ThreadRing* LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    RingRegistry& reg = Registry();
    r->tid = reg.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.rings.push_back(r);
    return r;
  }();
  return ring.get();
}

void Emit(const TraceEvent& e) {
  ThreadRing* r = LocalRing();
  const uint64_t h = r->head.load(std::memory_order_relaxed);
  TraceEvent slot = e;
  slot.tid = r->tid;
  r->ring[h % kTraceRingCapacity] = slot;
  r->head.store(h + 1, std::memory_order_release);
}

// Converts raw ticks to microseconds relative to the calibration anchor.
struct TickConverter {
  uint64_t anchor_ticks;
  double us_per_tick;
  double ToUs(uint64_t ticks) const {
    return ticks >= anchor_ticks
               ? static_cast<double>(ticks - anchor_ticks) * us_per_tick
               : -static_cast<double>(anchor_ticks - ticks) * us_per_tick;
  }
};

TickConverter MakeConverter() {
  RingRegistry& reg = Registry();
  const uint64_t t1 = TraceTicks();
  const uint64_t n1 = SteadyNowNs();
  const uint64_t dt = t1 > reg.anchor_ticks ? t1 - reg.anchor_ticks : 0;
  const uint64_t dn = n1 > reg.anchor_ns ? n1 - reg.anchor_ns : 0;
  double ns_per_tick = 1.0;  // non-TSC clocks already tick in ns
  if (dt > 0 && dn > 0) ns_per_tick = static_cast<double>(dn) /
                                      static_cast<double>(dt);
  return TickConverter{reg.anchor_ticks, ns_per_tick / 1000.0};
}

void JsonEscapeInto(std::ostringstream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') os << '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u0020";  // control chars never appear in our static names
      continue;
    }
    os << c;
  }
}

// ---- APQ_TRACE / APQ_METRICS: validated once, like APQ_FORCE_MORSELS ----

std::string ValidatedEnvPath(const char* var) {
  const char* v = std::getenv(var);
  if (v == nullptr || v[0] == '\0') return "";
  if (!ValidateWritablePath(v)) {
    std::fprintf(stderr,
                 "apq: ignoring %s=\"%s\": cannot open for writing (%s); "
                 "tracing stays off for this target\n",
                 var, v, std::strerror(errno));
    return "";
  }
  return v;
}

void ExportAtExit() {
  const std::string& trace_path = TraceEnvPath();
  if (!trace_path.empty()) {
    Status st = WriteChromeTrace(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "apq: trace export to \"%s\" failed: %s\n",
                   trace_path.c_str(), st.ToString().c_str());
    }
  }
  const std::string& metrics_path = MetricsEnvPath();
  if (!metrics_path.empty()) {
    const bool json = metrics_path.size() >= 5 &&
                      metrics_path.rfind(".json") == metrics_path.size() - 5;
    const std::string body = json ? MetricsRegistry::Global().ToJson()
                                  : MetricsRegistry::Global().ToPrometheus();
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "apq: metrics export to \"%s\" failed: %s\n",
                   metrics_path.c_str(), std::strerror(errno));
    }
  }
  const std::string& profile_path = ProfileEnvPath();
  if (!profile_path.empty()) {
    const std::string body = QueryLog::Global().DumpJson();
    std::FILE* f = std::fopen(profile_path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "apq: profile export to \"%s\" failed: %s\n",
                   profile_path.c_str(), std::strerror(errno));
    }
  }
}

}  // namespace

const char* SpanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kQuery: return "query";
    case SpanKind::kRun: return "run";
    case SpanKind::kOperator: return "operator";
    case SpanKind::kMorsel: return "morsel";
    case SpanKind::kSteal: return "steal";
    case SpanKind::kMutation: return "mutation";
    case SpanKind::kScheduler: return "scheduler";
  }
  return "?";
}

uint64_t TraceTicks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return SteadyNowNs();
#endif
}

void SetTraceEnabled(bool on) {
  if (on) Registry();  // pin the calibration anchor before the first span
  internal::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void EmitSpan(SpanKind kind, const char* name, uint64_t start_ticks,
              uint64_t end_ticks, int64_t a0, int64_t a1, int64_t a2) {
  if (!TraceEnabled()) return;
  TraceEvent e;
  e.start_ticks = start_ticks;
  e.end_ticks = end_ticks >= start_ticks ? end_ticks : start_ticks;
  e.name = name;
  e.kind = kind;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
  Emit(e);
}

void EmitInstant(SpanKind kind, const char* name, int64_t a0, int64_t a1,
                 int64_t a2) {
  if (!TraceEnabled()) return;
  const uint64_t t = TraceTicks();
  EmitSpan(kind, name, t, t, a0, a1, a2);
}

std::vector<TraceEvent> DrainEvents(uint64_t* dropped) {
  RingRegistry& reg = Registry();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  std::vector<TraceEvent> out;
  uint64_t lost = 0;
  for (const auto& r : rings) {
    const uint64_t head = r->head.load(std::memory_order_acquire);
    const uint64_t n = head < kTraceRingCapacity ? head : kTraceRingCapacity;
    lost += head - n;
    // Oldest-first: the ring holds events [head - n, head).
    for (uint64_t i = head - n; i < head; ++i) {
      const TraceEvent& e = r->ring[i % kTraceRingCapacity];
      if (e.name == nullptr) continue;  // torn/unwritten slot
      out.push_back(e);
    }
  }
  if (dropped != nullptr) *dropped = lost;
  return out;
}

std::string ChromeTraceJson() {
  uint64_t dropped = 0;
  const std::vector<TraceEvent> events = DrainEvents(&dropped);
  const TickConverter conv = MakeConverter();
  std::ostringstream os;
  // Default stream precision is 6 significant digits: a ts of 1000167.244 µs
  // would round to 1000170 while its dur kept sub-µs precision, making
  // sequential spans appear to overlap in long traces. 15 digits keeps ts
  // exact over any realistic run length.
  os.precision(15);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    const double ts = conv.ToUs(e.start_ticks);
    if (ts < 0) continue;  // predates the calibration anchor: unconvertible
    os << (first ? "" : ",\n") << "{\"ph\":\""
       << (e.end_ticks > e.start_ticks ? 'X' : 'i') << "\",\"name\":\"";
    JsonEscapeInto(os, e.name);
    os << "\",\"cat\":\"" << SpanKindName(e.kind) << "\",\"pid\":1,\"tid\":"
       << e.tid << ",\"ts\":" << ts;
    if (e.end_ticks > e.start_ticks) {
      os << ",\"dur\":" << conv.ToUs(e.end_ticks) - ts;
    } else {
      os << ",\"s\":\"t\"";  // thread-scoped instant
    }
    os << ",\"args\":{\"a0\":" << e.a0 << ",\"a1\":" << e.a1
       << ",\"a2\":" << e.a2 << "}}";
    first = false;
  }
  os << "],\"metadata\":{\"apq_dropped_events\":" << dropped << "}}";
  return os.str();
}

Status WriteChromeTrace(const std::string& path) {
  const std::string body = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open trace file '" + path +
                                   "': " + std::strerror(errno));
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

void ClearTraceBuffers() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& r : reg.rings) {
    // Resetting head is enough: DrainEvents only reads [head - n, head), and
    // stale slots past the new head are unreachable until overwritten.
    r->head.store(0, std::memory_order_release);
    for (auto& slot : r->ring) slot.name = nullptr;
  }
}

bool ValidateWritablePath(const char* path) {
  if (path == nullptr || path[0] == '\0') return false;
  std::FILE* f = std::fopen(path, "a");  // append: don't clobber on probe
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

const std::string& TraceEnvPath() {
  static const std::string path = ValidatedEnvPath("APQ_TRACE");
  return path;
}

const std::string& MetricsEnvPath() {
  static const std::string path = ValidatedEnvPath("APQ_METRICS");
  return path;
}

void InitFromEnv() {
  static const bool once = [] {
    const bool trace = !TraceEnvPath().empty();
    const bool metrics = !MetricsEnvPath().empty();
    const bool profile = !ProfileEnvPath().empty();
    if (trace) SetTraceEnabled(true);
    if (trace || metrics || profile) std::atexit(ExportAtExit);
    InitAccountingFromEnv();
    InitHttpFromEnv();
    return true;
  }();
  (void)once;
}

}  // namespace obs
}  // namespace apq
