#include "profile/profile_json.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "exec/op_kind.h"

namespace apq {

namespace {

void EscapeInto(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

std::ostringstream MakeStream() {
  std::ostringstream os;
  os.precision(15);
  return os;
}

// JSON has no NaN/Infinity literals; clamp the (never-expected) cases to 0
// rather than emitting an unparseable document.
double Finite(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

double MorselWallPercentileNs(const OpProfile& op, double q) {
  if (op.morsels.empty()) return 0.0;
  std::vector<double> walls;
  walls.reserve(op.morsels.size());
  for (const auto& m : op.morsels) walls.push_back(m.wall_ns);
  std::sort(walls.begin(), walls.end());
  const double rank = q * static_cast<double>(walls.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, walls.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return walls[lo] + (walls[hi] - walls[lo]) * frac;
}

std::string OpProfileJson(const OpProfile& op) {
  std::ostringstream os = MakeStream();
  os << "{\"node_id\":" << op.node_id << ",\"kind\":\"" << OpKindName(op.kind)
     << "\",\"label\":\"";
  EscapeInto(os, op.label);
  os << "\",\"work_ns\":" << Finite(op.work_ns)
     << ",\"start_ns\":" << Finite(op.start_ns)
     << ",\"end_ns\":" << Finite(op.end_ns)
     << ",\"wall_ns\":" << Finite(op.duration_ns())
     << ",\"core\":" << op.core << ",\"tuples_in\":" << op.tuples_in
     << ",\"tuples_out\":" << op.tuples_out
     << ",\"peak_bytes\":" << op.peak_bytes << ",\"cpu_ns\":" << op.cpu_ns
     << ",\"queue_wait_ns\":" << op.queue_wait_ns
     << ",\"num_morsels\":" << op.num_morsels
     << ",\"morsel_skew\":" << Finite(op.morsel_skew)
     << ",\"morsel_tuple_skew\":" << Finite(op.morsel_tuple_skew)
     << ",\"morsel_wall_p50_ns\":" << Finite(MorselWallPercentileNs(op, 0.50))
     << ",\"morsel_wall_p95_ns\":" << Finite(MorselWallPercentileNs(op, 0.95))
     << ",\"morsels\":[";
  bool first = true;
  for (const auto& m : op.morsels) {
    if (!first) os << ",";
    os << "{\"tuples_in\":" << m.tuples_in << ",\"tuples_out\":" << m.tuples_out
       << ",\"wall_ns\":" << Finite(m.wall_ns) << ",\"worker\":" << m.worker
       << ",\"domain_begin\":" << m.domain_begin
       << ",\"domain_end\":" << m.domain_end << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

std::string RunProfileJson(const RunProfile& profile) {
  std::ostringstream os = MakeStream();
  os << "{\"makespan_ns\":" << Finite(profile.makespan_ns)
     << ",\"utilization\":" << Finite(profile.utilization) << ",\"ops\":[";
  bool first = true;
  for (const auto& op : profile.ops) {
    if (!first) os << ",";
    os << OpProfileJson(op);
    first = false;
  }
  os << "]}";
  return os.str();
}

std::string AdaptiveLineageJson(const AdaptiveLineage& entry) {
  std::ostringstream os = MakeStream();
  os << "{\"run\":" << entry.run << ",\"time_ns\":" << Finite(entry.time_ns)
     << ",\"wall_ns\":" << Finite(entry.wall_ns)
     << ",\"max_morsel_skew\":" << Finite(entry.max_morsel_skew)
     << ",\"max_morsel_tuple_skew\":" << Finite(entry.max_morsel_tuple_skew)
     << ",\"skew_hint_ops\":" << entry.skew_hint_ops
     << ",\"victim\":" << entry.victim << ",\"action\":\"";
  EscapeInto(os, entry.action);
  os << "\",\"skew_aware\":" << (entry.skew_aware ? "true" : "false")
     << ",\"split_rows\":[";
  bool first = true;
  for (uint64_t row : entry.split_rows) {
    if (!first) os << ",";
    os << row;
    first = false;
  }
  os << "]}";
  return os.str();
}

std::string QueryProfileJson(const QueryProfileDoc& doc) {
  std::ostringstream os = MakeStream();
  int runs = 1;
  int mutations = 0;
  if (doc.adaptive != nullptr) {
    runs = doc.adaptive->total_runs;
    for (const auto& entry : doc.adaptive->lineage) {
      if (entry.action != "none") ++mutations;
    }
  }
  os << "{\"query_id\":" << doc.query_id << ",\"kind\":\"";
  EscapeInto(os, doc.kind);
  os << "\",\"status\":\"";
  EscapeInto(os, doc.status);
  os << "\",\"error\":\"";
  EscapeInto(os, doc.error);
  // parallel_efficiency = cpu / (wall * workers): 1.0 = every worker busy
  // for the whole query; 0 when the denominator is unknown.
  const double denom = doc.wall_ns * static_cast<double>(doc.workers);
  const double efficiency = denom > 0 ? doc.cpu_ns / denom : 0.0;
  os << "\",\"wall_ns\":" << Finite(doc.wall_ns)
     << ",\"time_ns\":" << Finite(doc.time_ns) << ",\"rows\":" << doc.rows
     << ",\"runs\":" << runs << ",\"mutations\":" << mutations
     << ",\"peak_bytes\":" << doc.peak_bytes
     << ",\"cpu_ns\":" << Finite(doc.cpu_ns)
     << ",\"queue_wait_ns\":" << Finite(doc.queue_wait_ns)
     << ",\"workers\":" << doc.workers
     << ",\"parallel_efficiency\":" << Finite(efficiency)
     << ",\"adaptive\":";
  if (doc.adaptive == nullptr) {
    os << "null";
  } else {
    const AdaptiveOutcome& a = *doc.adaptive;
    os << "{\"serial_time_ns\":" << Finite(a.serial_time_ns)
       << ",\"gme_time_ns\":" << Finite(a.gme_time_ns)
       << ",\"gme_run\":" << a.gme_run << ",\"best_run\":" << a.best_run
       << ",\"best_time_ns\":" << Finite(a.best_time_ns)
       << ",\"total_runs\":" << a.total_runs
       << ",\"skew_mutations\":" << a.skew_mutations
       << ",\"speedup\":" << Finite(a.Speedup()) << "}";
  }
  os << ",\"lineage\":[";
  if (doc.adaptive != nullptr) {
    bool first = true;
    for (const auto& entry : doc.adaptive->lineage) {
      if (!first) os << ",";
      os << AdaptiveLineageJson(entry);
      first = false;
    }
  }
  os << "],\"profile\":";
  if (doc.profile == nullptr) {
    os << "null";
  } else {
    os << RunProfileJson(*doc.profile);
  }
  os << "}";
  return os.str();
}

}  // namespace apq
