// Structured EXPLAIN-ANALYZE export: serializes run profiles and the
// adaptive-convergence lineage as JSON, so "what did this query do, which
// operators dominated, how skewed were their morsels, and what did
// adaptation change run-over-run" is answerable from one machine-readable
// document instead of by eyeballing trace dumps.
//
// The document schema (validated by tools/profile_check.py, served by the
// HTTP introspection endpoint as /debug/profile/<query-id>, and dumped at
// process exit via APQ_PROFILE=<path>):
//
//   {"query_id": 7, "kind": "adaptive", "status": "ok", "error": "",
//    "wall_ns": ..., "time_ns": ..., "rows": ..., "runs": R,
//    "mutations": M,
//    "peak_bytes": ..., "cpu_ns": ..., "queue_wait_ns": ...,
//    "workers": W, "parallel_efficiency": ...,   // cpu/(wall*W), 0 unknown
//    "adaptive": {"serial_time_ns":..., "gme_time_ns":..., "gme_run":...,
//                 "best_run":..., "best_time_ns":..., "total_runs": R,
//                 "skew_mutations":..., "speedup":...} | null,
//    "lineage": [{"run":0, "time_ns":..., "wall_ns":...,
//                 "max_morsel_skew":..., "max_morsel_tuple_skew":...,
//                 "skew_hint_ops":..., "victim":..., "action":"basic-skew",
//                 "skew_aware":true, "split_rows":[...]}, ...],   // R entries
//    "profile": {"makespan_ns":..., "utilization":...,
//                "ops": [{"node_id":..., "kind":"select", "label":"...",
//                         "work_ns":..., "start_ns":..., "end_ns":...,
//                         "wall_ns":..., "core":..., "tuples_in":...,
//                         "tuples_out":..., "peak_bytes":..., "cpu_ns":...,
//                         "queue_wait_ns":..., "num_morsels":...,
//                         "morsel_skew":..., "morsel_tuple_skew":...,
//                         "morsel_wall_p50_ns":..., "morsel_wall_p95_ns":...,
//                         "morsels":[{"tuples_in":..., "tuples_out":...,
//                                     "wall_ns":..., "worker":...,
//                                     "domain_begin":...,
//                                     "domain_end":...}, ...]}]} | null}
//
// Conventions: "lineage" is [] and "adaptive" null for plain (non-adaptive)
// queries; "profile" is null when execution failed before producing one.
// Historical/GME profiles have their raw morsel histograms stripped
// (executor.h), so num_morsels > 0 with "morsels":[] is valid — the exact
// p50/p95 then serialize as 0.
#ifndef APQ_PROFILE_PROFILE_JSON_H_
#define APQ_PROFILE_PROFILE_JSON_H_

#include <cstdint>
#include <string>

#include "adaptive/executor.h"
#include "profile/profiler.h"

namespace apq {

/// Exact (sorted, nearest-rank interpolated) percentile of an operator's
/// per-morsel wall times; 0 when the histogram is empty or stripped. Unlike
/// RenderOpReport's bucketed estimate this is exact — the JSON document is
/// for machines, not column alignment.
double MorselWallPercentileNs(const OpProfile& op, double q);

/// One operator as a JSON object (schema above).
std::string OpProfileJson(const OpProfile& op);

/// A whole run as a JSON object: makespan, utilization, "ops" array.
std::string RunProfileJson(const RunProfile& profile);

/// One lineage entry as a JSON object (schema above).
std::string AdaptiveLineageJson(const AdaptiveLineage& entry);

/// \brief Everything the engine knows about one finished query, bundled for
/// serialization. Pointers borrow from the caller for the call's duration;
/// null `adaptive` means a plain plan query, null `profile` means execution
/// failed before a profile existed.
struct QueryProfileDoc {
  uint64_t query_id = 0;
  std::string kind = "plan";   // "plan" | "adaptive"
  std::string status = "ok";   // "ok" | "error"
  std::string error;           // status message when status == "error"
  double wall_ns = 0;
  double time_ns = 0;
  uint64_t rows = 0;
  /// Resource accounting totals (obs/resource_tracker.h; 0 with accounting
  /// off). `workers` is the morsel-scheduler worker count the query ran
  /// with (0 unknown), the denominator of parallel_efficiency.
  uint64_t peak_bytes = 0;
  double cpu_ns = 0;
  double queue_wait_ns = 0;
  int workers = 0;
  const RunProfile* profile = nullptr;
  const AdaptiveOutcome* adaptive = nullptr;
};

/// The full per-query document (schema above). "runs" is
/// adaptive->total_runs (1 for a plain plan); "mutations" counts lineage
/// entries whose action is not "none".
std::string QueryProfileJson(const QueryProfileDoc& doc);

}  // namespace apq

#endif  // APQ_PROFILE_PROFILE_JSON_H_
