// Per-operator execution profiles: the feedback that drives adaptive
// parallelization (paper §2 "Run-time environment": scheduler + interpreter +
// profiler; profiled data = operator execution time, memory claims, thread).
#ifndef APQ_PROFILE_PROFILER_H_
#define APQ_PROFILE_PROFILER_H_

#include <string>
#include <vector>

#include "exec/cost_model.h"
#include "exec/evaluator.h"
#include "plan/plan.h"
#include "sched/simulator.h"

namespace apq {

/// \brief Profile of one operator execution within a run.
struct OpProfile {
  int node_id = -1;
  OpKind kind = OpKind::kResult;
  std::string label;
  double work_ns = 0;       // cost-model single-core work
  double start_ns = 0;
  double end_ns = 0;
  int core = -1;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  /// Resource accounting (obs/resource_tracker.h; 0 with accounting off):
  /// peak bytes charged while the operator ran, its summed task execution
  /// time (node wall when whole-column), and summed scheduler queue-wait.
  uint64_t peak_bytes = 0;
  uint64_t cpu_ns = 0;
  uint64_t queue_wait_ns = 0;
  /// Morsel-driven execution (0 = ran whole-column). morsel_skew is the max
  /// morsel wall-time over the mean (1 = perfectly balanced): the
  /// intra-operator skew signal the adaptive loop observes alongside the
  /// inter-operator times.
  uint64_t num_morsels = 0;
  double morsel_skew = 0;
  /// Deterministic companion to the wall-time skew: max over min per-row
  /// tuple-weight density across the operator's morsels (weight = tuples_in
  /// + 2*tuples_out, normalized by each morsel's covered base-row domain).
  /// 1 = the tuple work is evenly spread over the operator's range; >1 = the
  /// output (and hence materialization cost) concentrates in part of the
  /// range — the paper's Fig 12 value skew. 0 when the morsels carry no
  /// usable domain information (group-by ingest, sort runs, probe
  /// positions). Unlike morsel_skew this is identical run-to-run, so the
  /// mutator can act on it without chasing hardware noise.
  double morsel_tuple_skew = 0;
  /// Per-morsel tuple/time histogram in morsel (= input) order, copied from
  /// OpMetrics::morsels: the raw feedback the skew-aware mutator turns into
  /// value-balanced range split points.
  std::vector<MorselMetrics> morsels;

  double duration_ns() const { return end_ns - start_ns; }

  /// Fills num_morsels / morsel_skew / morsel_tuple_skew from `morsels`
  /// (also used by tests to build synthetic skewed profiles).
  void ComputeSkewFromMorsels();
};

/// \brief Profile of one complete query run on the simulated machine.
struct RunProfile {
  std::vector<OpProfile> ops;  // in execution (topological) order
  double makespan_ns = 0;
  double utilization = 0;  // multi-core utilization (Figs 19/20)

  /// The most expensive operator by measured execution time, skipping
  /// kResult. Returns ops index, or -1 if empty.
  int MostExpensiveIndex() const;

  /// Node id of the most expensive operator (-1 if none).
  int MostExpensiveNode() const;

  /// Total busy time across operators (the "total CPU core time" line of the
  /// paper's tomograph captions).
  double TotalBusyNs() const;

  /// Worst intra-operator morsel skew across the run (0 when no operator ran
  /// morsel-driven).
  double MaxMorselSkew() const;

  /// Worst deterministic per-operator tuple-weight skew across the run (0
  /// when no morselized operator carried domain information).
  double MaxMorselTupleSkew() const;
};

/// \brief Builds simulator tasks from evaluated metrics, wiring dataflow
/// dependencies from the plan.
/// `instance` and `arrival_ns` support concurrent-workload simulations; the
/// returned task order matches `metrics` order.
std::vector<SimTask> BuildSimTasks(const QueryPlan& plan,
                                   const std::vector<OpMetrics>& metrics,
                                   const CostModel& cost_model,
                                   int instance = 0, double arrival_ns = 0);

/// \brief Assembles per-operator profiles from metrics plus simulated
/// timings (timings[i] corresponds to metrics[i]).
RunProfile MakeRunProfile(const QueryPlan& plan,
                          const std::vector<OpMetrics>& metrics,
                          const CostModel& cost_model,
                          const std::vector<SimTaskTiming>& timings,
                          double makespan_ns, double utilization);

/// \brief ASCII rendering of per-core operator activity over time, in the
/// spirit of the paper's tomograph figures (Figs 19/20).
std::string RenderTomograph(const RunProfile& profile, int width = 72);

/// \brief ASCII per-operator report: one row per operator with its measured
/// time, tuple flow, morsel count, p50/p95 per-morsel wall time (from the
/// obs::Histogram latency ladder; "-" when the operator ran whole-column or
/// the raw morsel histogram was dropped), and tuple skew, plus a summary
/// line with the run's worst max/mean wall and tuple skews — so imbalance is
/// visible straight from the printed profile, without walking AdaptiveRun
/// programmatically.
std::string RenderOpReport(const RunProfile& profile);

}  // namespace apq

#endif  // APQ_PROFILE_PROFILER_H_
