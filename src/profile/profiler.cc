#include "profile/profiler.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/table_printer.h"

namespace apq {

int RunProfile::MostExpensiveIndex() const {
  int best = -1;
  double best_time = -1;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == OpKind::kResult) continue;
    double d = ops[i].duration_ns();
    if (d > best_time) {
      best_time = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int RunProfile::MostExpensiveNode() const {
  int idx = MostExpensiveIndex();
  return idx < 0 ? -1 : ops[idx].node_id;
}

double RunProfile::TotalBusyNs() const {
  double total = 0;
  for (const auto& op : ops) total += op.duration_ns();
  return total;
}

double RunProfile::MaxMorselSkew() const {
  double worst = 0;
  for (const auto& op : ops) worst = std::max(worst, op.morsel_skew);
  return worst;
}

double RunProfile::MaxMorselTupleSkew() const {
  double worst = 0;
  for (const auto& op : ops) worst = std::max(worst, op.morsel_tuple_skew);
  return worst;
}

void OpProfile::ComputeSkewFromMorsels() {
  num_morsels = morsels.size();
  morsel_skew = 0;
  morsel_tuple_skew = 0;
  if (morsels.empty()) return;

  // Wall-time skew: max/mean morsel wall time. 1 = balanced, >1 = some
  // morsel (a dense value cluster, a hot dictionary range) dominated — skew
  // invisible at whole-operator granularity. Hardware truth; varies run to
  // run.
  double total = 0, peak = 0;
  for (const auto& ms : morsels) {
    total += ms.wall_ns;
    peak = std::max(peak, ms.wall_ns);
  }
  double mean = total / static_cast<double>(morsels.size());
  morsel_skew = mean > 0 ? peak / mean : 1.0;

  // Tuple-weight skew: deterministic max/min per-row weight density over the
  // covered base-row domains. Weight models scan cost per covered row plus
  // materialization cost per produced tuple; requires every morsel to carry
  // a valid, strictly ascending domain (otherwise the densities are not
  // comparable and the signal is reported as absent).
  double dmin = 0, dmax = 0;
  uint64_t prev_end = 0;
  for (size_t i = 0; i < morsels.size(); ++i) {
    const auto& ms = morsels[i];
    if (ms.domain_end <= ms.domain_begin) return;
    if (i > 0 && ms.domain_begin < prev_end) return;
    prev_end = ms.domain_end;
    double d = (static_cast<double>(ms.tuples_in) +
                2.0 * static_cast<double>(ms.tuples_out)) /
               static_cast<double>(ms.domain_end - ms.domain_begin);
    if (i == 0) {
      dmin = dmax = d;
    } else {
      dmin = std::min(dmin, d);
      dmax = std::max(dmax, d);
    }
  }
  morsel_tuple_skew = dmin > 0 ? dmax / dmin : (dmax > 0 ? dmax * 1e9 : 1.0);
}

std::vector<SimTask> BuildSimTasks(const QueryPlan& plan,
                                   const std::vector<OpMetrics>& metrics,
                                   const CostModel& cost_model, int instance,
                                   double arrival_ns) {
  std::unordered_map<int, int> node_to_task;
  node_to_task.reserve(metrics.size());
  for (size_t i = 0; i < metrics.size(); ++i) {
    node_to_task[metrics[i].node_id] = static_cast<int>(i);
  }
  std::vector<SimTask> tasks(metrics.size());
  for (size_t i = 0; i < metrics.size(); ++i) {
    const OpMetrics& m = metrics[i];
    SimTask& t = tasks[i];
    t.node_id = m.node_id;
    t.instance = instance;
    t.work_ns = cost_model.Work(m);
    t.mem_intensity = cost_model.MemIntensity(m);
    t.arrival_ns = arrival_ns;
    for (int in : plan.node(m.node_id).inputs) {
      auto it = node_to_task.find(in);
      if (it != node_to_task.end()) t.deps.push_back(it->second);
    }
  }
  return tasks;
}

RunProfile MakeRunProfile(const QueryPlan& plan,
                          const std::vector<OpMetrics>& metrics,
                          const CostModel& cost_model,
                          const std::vector<SimTaskTiming>& timings,
                          double makespan_ns, double utilization) {
  RunProfile rp;
  rp.makespan_ns = makespan_ns;
  rp.utilization = utilization;
  rp.ops.reserve(metrics.size());
  for (size_t i = 0; i < metrics.size(); ++i) {
    OpProfile op;
    op.node_id = metrics[i].node_id;
    op.kind = metrics[i].kind;
    op.label = plan.node(op.node_id).label;
    op.work_ns = cost_model.Work(metrics[i]);
    op.start_ns = timings[i].start_ns;
    op.end_ns = timings[i].end_ns;
    op.core = timings[i].core;
    op.tuples_in = metrics[i].tuples_in;
    op.tuples_out = metrics[i].tuples_out;
    op.peak_bytes = metrics[i].peak_bytes;
    op.cpu_ns = metrics[i].cpu_ns;
    op.queue_wait_ns = metrics[i].queue_wait_ns;
    op.morsels = metrics[i].morsels;
    op.ComputeSkewFromMorsels();
    rp.ops.push_back(op);
  }
  return rp;
}

std::string RenderOpReport(const RunProfile& profile) {
  TablePrinter tp({"node", "op", "label", "time_ms", "tuples_in", "tuples_out",
                   "morsels", "p50_ms", "p95_ms", "tskew"});
  for (const auto& op : profile.ops) {
    // Per-morsel wall-time distribution through the registry's histogram
    // type: p50/p95 make a fat tail (one hot morsel) directly readable where
    // the old single max/mean figure only hinted at it. The max/mean skew
    // scalar still drives the mutator and the summary line below.
    std::string p50 = "-", p95 = "-";
    if (!op.morsels.empty()) {
      obs::Histogram h(obs::Histogram::LatencyBoundsNs());
      for (const auto& ms : op.morsels) h.Observe(ms.wall_ns);
      p50 = TablePrinter::Fmt(h.Percentile(0.50) / 1e6, 3);
      p95 = TablePrinter::Fmt(h.Percentile(0.95) / 1e6, 3);
    }
    tp.AddRow({std::to_string(op.node_id), OpKindName(op.kind), op.label,
               TablePrinter::Fmt(op.duration_ns() / 1e6, 3),
               std::to_string(op.tuples_in), std::to_string(op.tuples_out),
               std::to_string(op.num_morsels), p50, p95,
               op.morsel_tuple_skew > 0
                   ? TablePrinter::Fmt(op.morsel_tuple_skew, 2)
                   : "-"});
  }
  std::ostringstream os;
  os << tp.ToString();
  os << "makespan " << TablePrinter::Fmt(profile.makespan_ns / 1e6, 3)
     << " ms, utilization " << TablePrinter::Fmt(profile.utilization * 100, 1)
     << "%, max morsel skew "
     << TablePrinter::Fmt(profile.MaxMorselSkew(), 2) << " (tuple skew "
     << TablePrinter::Fmt(profile.MaxMorselTupleSkew(), 2) << ")\n";
  return os.str();
}

std::string RenderTomograph(const RunProfile& profile, int width) {
  // One row per core; each operator paints its kind's letter over its
  // execution interval. '.' = idle.
  char glyph[16];
  glyph[static_cast<int>(OpKind::kSelect)] = 'S';
  glyph[static_cast<int>(OpKind::kFetchJoin)] = 'F';
  glyph[static_cast<int>(OpKind::kJoin)] = 'J';
  glyph[static_cast<int>(OpKind::kGroupBy)] = 'G';
  glyph[static_cast<int>(OpKind::kAggregate)] = 'A';
  glyph[static_cast<int>(OpKind::kAggrMerge)] = 'M';
  glyph[static_cast<int>(OpKind::kExchangeUnion)] = 'U';
  glyph[static_cast<int>(OpKind::kMap)] = 'm';
  glyph[static_cast<int>(OpKind::kSort)] = 'O';
  glyph[static_cast<int>(OpKind::kTopN)] = 'T';
  glyph[static_cast<int>(OpKind::kResult)] = 'r';

  int max_core = 0;
  for (const auto& op : profile.ops) max_core = std::max(max_core, op.core);
  double span = profile.makespan_ns > 0 ? profile.makespan_ns : 1.0;

  std::vector<std::string> rows(max_core + 1, std::string(width, '.'));
  for (const auto& op : profile.ops) {
    if (op.core < 0 || op.kind == OpKind::kResult) continue;
    int b = static_cast<int>(op.start_ns / span * width);
    int e = static_cast<int>(op.end_ns / span * width);
    if (e <= b) e = b + 1;
    if (e > width) e = width;
    for (int x = b; x < e; ++x) rows[op.core][x] = glyph[static_cast<int>(op.kind)];
  }

  std::ostringstream os;
  os << "tomograph: makespan=" << profile.makespan_ns / 1e6
     << " ms, utilization=" << profile.utilization * 100 << "%\n";
  os << "  S=select F=fetchjoin J=join G=groupby A=aggr M=merge U=union "
        "m=map O=sort\n";
  for (size_t c = 0; c < rows.size(); ++c) {
    os << (c < 10 ? " core " : "core ") << c << " |" << rows[c] << "|\n";
  }
  return os.str();
}

}  // namespace apq
