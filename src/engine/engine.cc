#include "engine/engine.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash_clock.h"

namespace apq {

namespace {

// End-to-end hardware latency per query, both entry points. Resolved once;
// observation is a couple of relaxed atomics per query.
obs::Histogram* QueryLatencyHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "apq_query_latency_ns", obs::Histogram::LatencyBoundsNs());
  return h;
}

}  // namespace

StatusOr<QueryRunResult> Engine::RunPlan(const QueryPlan& plan,
                                         const std::vector<SimTask>& background,
                                         uint64_t seed_salt) {
  obs::SpanScope query_span(obs::SpanKind::kQuery, "query");
  const double q0 = NowNs();
  EvalResult er;
  APQ_RETURN_NOT_OK(evaluator_.Execute(plan, &er));
  QueryLatencyHistogram()->Observe(NowNs() - q0);
  std::vector<SimTask> tasks =
      BuildSimTasks(plan, er.metrics, cost_model_, /*instance=*/0);
  size_t own = tasks.size();
  for (SimTask t : background) {
    for (int& d : t.deps) d += static_cast<int>(own);
    if (t.instance == 0) t.instance = 1;
    tasks.push_back(std::move(t));
  }
  SimOutcome sim = simulator_.Run(tasks, seed_salt);

  QueryRunResult out;
  out.time_ns = sim.instance_response_ns[0];
  out.wall_ns = er.wall_ns;
  out.result = er.result;
  out.stats = plan.Stats();
  std::vector<SimTaskTiming> own_timings(sim.timings.begin(),
                                         sim.timings.begin() + own);
  out.profile = MakeRunProfile(plan, er.metrics, cost_model_, own_timings,
                               sim.makespan_ns, sim.utilization);
  // Utilization of this query against its own span.
  double busy = 0;
  for (const auto& op : out.profile.ops) busy += op.duration_ns();
  if (out.time_ns > 0) {
    out.utilization = busy / (out.time_ns * config_.sim.logical_cores);
  }
  out.profile.utilization = out.utilization;
  out.profile.makespan_ns = out.time_ns;
  return out;
}

StatusOr<QueryPlan> Engine::HeuristicPlan(const QueryPlan& serial_plan,
                                          int dop) const {
  HeuristicConfig hc;
  hc.dop = dop > 0 ? dop : config_.hp_dop;
  HeuristicParallelizer hp(hc);
  return hp.Parallelize(serial_plan);
}

StatusOr<QueryRunResult> Engine::RunHeuristic(
    const QueryPlan& serial_plan, int dop,
    const std::vector<SimTask>& background, uint64_t seed_salt) {
  auto plan = HeuristicPlan(serial_plan, dop);
  if (!plan.ok()) return plan.status();
  return RunPlan(plan.ValueOrDie(), background, seed_salt);
}

StatusOr<AdaptiveOutcome> Engine::RunAdaptive(
    const QueryPlan& serial_plan, const std::vector<SimTask>& background) {
  obs::SpanScope query_span(obs::SpanKind::kQuery, "adaptive-query");
  const double q0 = NowNs();
  AdaptiveParams params;
  params.convergence = config_.convergence;
  params.convergence.cores = config_.sim.logical_cores;
  params.mutator = config_.mutator;
  params.verify_results = config_.verify_results;
  AdaptiveExecutor exec(&evaluator_, cost_model_, simulator_, params);
  auto out = exec.Run(serial_plan, background);
  QueryLatencyHistogram()->Observe(NowNs() - q0);
  if (out.ok()) {
    query_span.set_args(static_cast<int64_t>(out.ValueOrDie().total_runs),
                        out.ValueOrDie().gme_run);
  }
  return out;
}

StatusOr<std::vector<SimTask>> Engine::BuildBackground(
    const std::vector<const QueryPlan*>& mix, int clients, double spacing_ns) {
  std::vector<SimTask> out;
  if (mix.empty() || clients <= 0) return out;
  // Evaluate each distinct plan once; replicate tasks per client.
  std::vector<std::vector<SimTask>> per_plan;
  per_plan.reserve(mix.size());
  for (const QueryPlan* p : mix) {
    EvalResult er;
    APQ_RETURN_NOT_OK(evaluator_.Execute(*p, &er));
    per_plan.push_back(BuildSimTasks(*p, er.metrics, cost_model_));
  }
  for (int c = 0; c < clients; ++c) {
    const auto& tmpl = per_plan[c % per_plan.size()];
    int base = static_cast<int>(out.size());
    for (SimTask t : tmpl) {
      t.instance = c + 1;
      t.arrival_ns = spacing_ns * c;
      for (int& d : t.deps) d += base;
      out.push_back(std::move(t));
    }
  }
  return out;
}

}  // namespace apq
