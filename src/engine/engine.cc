#include "engine/engine.h"

#include <cstdio>

#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/resource_tracker.h"
#include "obs/trace.h"
#include "profile/profile_json.h"
#include "util/hash_clock.h"

namespace apq {

namespace {

// End-to-end hardware latency per query, both entry points. Resolved once;
// observation is a couple of relaxed atomics per query.
obs::Histogram* QueryLatencyHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "apq_query_latency_ns", obs::Histogram::LatencyBoundsNs());
  return h;
}

// Failed queries must leave a metric trail (satellite: every Engine query
// error path bumps this and records an error-status QueryRecord).
obs::Counter* QueryErrorsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("apq_query_errors_total");
  return c;
}

// Serializes `doc`, wraps it in a QueryRecord, and pushes it into the
// recent-query ring — the single recording point both entry points (and
// both their ok/error paths) funnel through.
void RecordQuery(const QueryProfileDoc& doc, int runs, int mutations) {
  obs::QueryRecord rec;
  rec.id = doc.query_id;
  rec.kind = doc.kind;
  rec.status = doc.status;
  rec.error = doc.error;
  rec.wall_ns = doc.wall_ns;
  rec.time_ns = doc.time_ns;
  rec.rows = doc.rows;
  rec.runs = runs;
  rec.mutations = mutations;
  rec.peak_bytes = doc.peak_bytes;
  rec.cpu_ns = doc.cpu_ns;
  rec.queue_wait_ns = doc.queue_wait_ns;
  rec.profile_json = QueryProfileJson(doc);
  obs::QueryLog::Global().Push(std::move(rec));
}

// Folds query `qid`'s resource-accounting block into `doc` (peak bytes, CPU,
// queue wait — zeros with accounting off) and retires the block. `workers` is
// the parallel-efficiency denominator: the morsel-scheduler fleet size when
// one exists, else 1 (whole-column execution runs on the calling thread).
void SnapshotResources(uint64_t qid, const Evaluator& evaluator,
                       QueryProfileDoc* doc) {
  obs::QueryResources qr;
  if (obs::SnapshotQueryResources(qid, &qr)) {
    doc->peak_bytes = qr.peak_bytes;
    doc->cpu_ns = static_cast<double>(qr.cpu_ns);
    doc->queue_wait_ns = static_cast<double>(qr.queue_wait_ns);
  }
  const auto& sched = evaluator.morsel_scheduler();
  doc->workers = (sched != nullptr && sched->num_workers() > 0)
                     ? sched->num_workers()
                     : 1;
  obs::FinishQuery(qid);
}

}  // namespace

void Engine::StartIntrospection(int port) {
  Status st = obs::HttpExporter::Global().Start(port);
  if (!st.ok()) {
    std::fprintf(stderr,
                 "apq: EngineConfig::http_port introspection endpoint failed "
                 "to start: %s; introspection stays off\n",
                 st.ToString().c_str());
  }
}

StatusOr<QueryRunResult> Engine::RunPlanInner(
    const QueryPlan& plan, const std::vector<SimTask>& background,
    uint64_t seed_salt) {
  EvalResult er;
  APQ_RETURN_NOT_OK(evaluator_.Execute(plan, &er));
  std::vector<SimTask> tasks =
      BuildSimTasks(plan, er.metrics, cost_model_, /*instance=*/0);
  size_t own = tasks.size();
  for (SimTask t : background) {
    for (int& d : t.deps) d += static_cast<int>(own);
    if (t.instance == 0) t.instance = 1;
    tasks.push_back(std::move(t));
  }
  SimOutcome sim = simulator_.Run(tasks, seed_salt);

  QueryRunResult out;
  out.time_ns = sim.instance_response_ns[0];
  out.wall_ns = er.wall_ns;
  out.result = er.result;
  out.stats = plan.Stats();
  std::vector<SimTaskTiming> own_timings(sim.timings.begin(),
                                         sim.timings.begin() + own);
  out.profile = MakeRunProfile(plan, er.metrics, cost_model_, own_timings,
                               sim.makespan_ns, sim.utilization);
  // Utilization of this query against its own span.
  double busy = 0;
  for (const auto& op : out.profile.ops) busy += op.duration_ns();
  if (out.time_ns > 0) {
    out.utilization = busy / (out.time_ns * config_.sim.logical_cores);
  }
  out.profile.utilization = out.utilization;
  out.profile.makespan_ns = out.time_ns;
  return out;
}

StatusOr<QueryRunResult> Engine::RunPlan(const QueryPlan& plan,
                                         const std::vector<SimTask>& background,
                                         uint64_t seed_salt) {
  const uint64_t qid = obs::NextQueryId();
  obs::QueryIdScope qid_scope(qid);
  obs::SpanScope query_span(obs::SpanKind::kQuery, "query",
                            static_cast<int64_t>(qid));
  const double q0 = NowNs();
  auto out = RunPlanInner(plan, background, seed_salt);
  const double wall = NowNs() - q0;
  QueryLatencyHistogram()->Observe(wall);

  QueryProfileDoc doc;
  doc.query_id = qid;
  doc.kind = "plan";
  doc.wall_ns = wall;
  if (out.ok()) {
    QueryRunResult& r = out.ValueOrDie();
    r.query_id = qid;
    doc.time_ns = r.time_ns;
    doc.rows = r.result.NumRows();
    doc.profile = &r.profile;
  } else {
    QueryErrorsCounter()->Inc();
    doc.status = "error";
    doc.error = out.status().ToString();
  }
  SnapshotResources(qid, evaluator_, &doc);
  RecordQuery(doc, /*runs=*/1, /*mutations=*/0);
  return out;
}

StatusOr<QueryPlan> Engine::HeuristicPlan(const QueryPlan& serial_plan,
                                          int dop) const {
  HeuristicConfig hc;
  hc.dop = dop > 0 ? dop : config_.hp_dop;
  HeuristicParallelizer hp(hc);
  return hp.Parallelize(serial_plan);
}

StatusOr<QueryRunResult> Engine::RunHeuristic(
    const QueryPlan& serial_plan, int dop,
    const std::vector<SimTask>& background, uint64_t seed_salt) {
  auto plan = HeuristicPlan(serial_plan, dop);
  if (!plan.ok()) return plan.status();
  return RunPlan(plan.ValueOrDie(), background, seed_salt);
}

StatusOr<AdaptiveOutcome> Engine::RunAdaptive(
    const QueryPlan& serial_plan, const std::vector<SimTask>& background) {
  const uint64_t qid = obs::NextQueryId();
  obs::QueryIdScope qid_scope(qid);
  obs::SpanScope query_span(obs::SpanKind::kQuery, "adaptive-query",
                            static_cast<int64_t>(qid));
  const double q0 = NowNs();
  AdaptiveParams params;
  params.convergence = config_.convergence;
  params.convergence.cores = config_.sim.logical_cores;
  params.mutator = config_.mutator;
  params.verify_results = config_.verify_results;
  AdaptiveExecutor exec(&evaluator_, cost_model_, simulator_, params);
  auto out = exec.Run(serial_plan, background);
  const double wall = NowNs() - q0;
  QueryLatencyHistogram()->Observe(wall);

  QueryProfileDoc doc;
  doc.query_id = qid;
  doc.kind = "adaptive";
  doc.wall_ns = wall;
  int runs = 0;
  int mutations = 0;
  if (out.ok()) {
    const AdaptiveOutcome& a = out.ValueOrDie();
    query_span.set_args(static_cast<int64_t>(qid), a.total_runs, a.gme_run);
    doc.time_ns = a.gme_time_ns;
    doc.rows = a.result.NumRows();
    doc.profile = &a.gme_profile;
    doc.adaptive = &a;
    runs = a.total_runs;
    for (const auto& entry : a.lineage) {
      if (entry.action != "none") ++mutations;
    }
  } else {
    QueryErrorsCounter()->Inc();
    doc.status = "error";
    doc.error = out.status().ToString();
  }
  SnapshotResources(qid, evaluator_, &doc);
  RecordQuery(doc, runs, mutations);
  return out;
}

StatusOr<std::vector<SimTask>> Engine::BuildBackground(
    const std::vector<const QueryPlan*>& mix, int clients, double spacing_ns) {
  std::vector<SimTask> out;
  if (mix.empty() || clients <= 0) return out;
  // Evaluate each distinct plan once; replicate tasks per client.
  std::vector<std::vector<SimTask>> per_plan;
  per_plan.reserve(mix.size());
  for (const QueryPlan* p : mix) {
    EvalResult er;
    APQ_RETURN_NOT_OK(evaluator_.Execute(*p, &er));
    per_plan.push_back(BuildSimTasks(*p, er.metrics, cost_model_));
  }
  for (int c = 0; c < clients; ++c) {
    const auto& tmpl = per_plan[c % per_plan.size()];
    int base = static_cast<int>(out.size());
    for (SimTask t : tmpl) {
      t.instance = c + 1;
      t.arrival_ns = spacing_ns * c;
      for (int& d : t.deps) d += base;
      out.push_back(std::move(t));
    }
  }
  return out;
}

}  // namespace apq
