// Public facade: ties storage, evaluation, the cost model, the simulated
// machine, and the three parallelization strategies together.
#ifndef APQ_ENGINE_ENGINE_H_
#define APQ_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "adaptive/executor.h"
#include "exec/cost_model.h"
#include "exec/evaluator.h"
#include "heuristic/parallelizer.h"
#include "plan/plan.h"
#include "profile/profiler.h"
#include "sched/simulator.h"
#include "storage/table.h"

namespace apq {

/// \brief Engine-wide configuration.
struct EngineConfig {
  SimConfig sim = SimConfig::TwoSocket32();
  CostParams cost;
  ConvergenceParams convergence;   // cores is synced to sim.logical_cores
  MutatorConfig mutator;
  int hp_dop = 32;                 // heuristic parallelizer default DOP
  bool verify_results = false;     // cross-check every adaptive run
  /// Real execution backend: worker threads for plan-node execution
  /// (1 = serial, 0 = one per hardware thread) and vectorized kernels.
  /// Simulated timings are unaffected; wall_ns fields report hardware truth.
  int exec_threads = 1;
  bool use_kernels = true;
  /// Morsel-driven intra-operator execution (see ExecOptions::use_morsels).
  bool use_morsels = false;
  uint64_t morsel_rows = kDefaultMorselRows;
  int morsel_workers = 0;  // 0 = one per hardware thread
  /// Morsel-parallel aggregation + hash-join probe (exec/agg/; see
  /// ExecOptions::use_parallel_agg). Only active when morsels are on.
  bool use_parallel_agg = true;
  /// Morsel-parallel sort: per-morsel stable runs + merge-path loser-tree
  /// merge (exec/sort/; see ExecOptions::use_parallel_sort). Only active
  /// when morsels are on.
  bool use_parallel_sort = true;
  /// Runtime skew response (see ExecOptions::adaptive_morsel_rows): the
  /// adaptive loop shrinks the morsel size of operators whose previous run
  /// crossed MutatorConfig::skew_threshold, so stealing rebalances within
  /// the operator between mutations.
  bool adaptive_morsel_rows = true;
  /// SIMD dispatch tier for the vectorized kernels (see
  /// ExecOptions::simd_level): kAuto = best level the CPU supports; lower
  /// levels pin the tier for differential testing. APQ_SIMD overrides.
  simd::SimdLevel simd_level = simd::SimdLevel::kAuto;
  /// Span tracing (see ExecOptions::trace): query/run/operator/morsel spans
  /// plus steal and mutation events into the process-wide ring buffers,
  /// exportable as Chrome trace JSON (obs/trace.h). APQ_TRACE=<file> enables
  /// this too and flushes the trace at process exit.
  bool trace = false;
  /// Live introspection endpoint (obs/http_exporter.h): when > 0, the
  /// engine constructor starts the process-wide HTTP exporter on
  /// 127.0.0.1:<http_port> (GET /metrics, /metrics.json, /healthz,
  /// /debug/queries, /debug/profile/<query-id>). 0 = off. APQ_HTTP=<port>
  /// enables it too, without Engine plumbing; a failing bind warns once and
  /// introspection stays off — it never fails a query.
  int http_port = 0;
  /// Morsel scheduler to share with other engines/queries. When null and
  /// use_morsels is set, the engine creates its own; pass
  /// MorselScheduler::Shared() (or another engine's morsel_scheduler()) so
  /// concurrent queries multiplex one worker fleet instead of one pool each.
  /// Injecting a scheduler implies use_morsels — a shared fleet that no
  /// query ever dispatches to would be a silent misconfiguration.
  std::shared_ptr<MorselScheduler> morsel_scheduler;

  EngineConfig() { convergence.cores = sim.logical_cores; }
  static EngineConfig WithSim(SimConfig s) {
    EngineConfig c;
    c.sim = s;
    c.convergence.cores = s.logical_cores;
    c.hp_dop = s.logical_cores;
    return c;
  }
};

/// \brief Result of executing one plan once on the simulated machine.
struct QueryRunResult {
  /// Process-wide query id (obs/query_log.h): the key correlating this
  /// result with its trace spans and /debug/profile/<id> document.
  uint64_t query_id = 0;
  double time_ns = 0;       // response time (simulated machine)
  double wall_ns = 0;       // hardware truth: evaluator wall-clock time
  double utilization = 0;   // multi-core utilization during the run
  Intermediate result;      // exact query result
  RunProfile profile;
  PlanStats stats;
};

/// \brief The column-store engine with adaptive parallelization.
class Engine {
 public:
  explicit Engine(EngineConfig config = EngineConfig())
      : config_(config),
        evaluator_(MakeExecOptions(config)),
        cost_model_(config.cost),
        simulator_(config.sim) {
    if (config_.morsel_scheduler) {
      evaluator_.set_morsel_scheduler(config_.morsel_scheduler);
    } else if (config_.use_morsels) {
      // Created eagerly so morsel_scheduler() can be handed to sibling
      // engines before the first query runs.
      evaluator_.EnsureMorselScheduler();
    }
    if (config_.http_port > 0) StartIntrospection(config_.http_port);
  }

  const EngineConfig& config() const { return config_; }
  Evaluator* evaluator() { return &evaluator_; }

  /// The morsel scheduler this engine's queries execute on (null unless
  /// use_morsels or an injected scheduler). Pass it to other engines'
  /// EngineConfig::morsel_scheduler to share one worker fleet.
  const std::shared_ptr<MorselScheduler>& morsel_scheduler() const {
    return evaluator_.morsel_scheduler();
  }
  const Simulator& simulator() const { return simulator_; }
  const CostModel& cost_model() const { return cost_model_; }

  /// Executes `plan` as-is; background tasks (if any) contend for the
  /// machine. `seed_salt` decorrelates noise between repetitions.
  StatusOr<QueryRunResult> RunPlan(const QueryPlan& plan,
                                   const std::vector<SimTask>& background = {},
                                   uint64_t seed_salt = 0);

  /// Serial execution (the optimizer's serial plan, run 0 of adaptation).
  StatusOr<QueryRunResult> RunSerial(const QueryPlan& serial_plan,
                                     uint64_t seed_salt = 0) {
    return RunPlan(serial_plan, {}, seed_salt);
  }

  /// Heuristic (static) parallelization at `dop` (default config.hp_dop).
  StatusOr<QueryRunResult> RunHeuristic(
      const QueryPlan& serial_plan, int dop = -1,
      const std::vector<SimTask>& background = {}, uint64_t seed_salt = 0);

  /// Statically parallelizes without running (for plan-shape analysis).
  StatusOr<QueryPlan> HeuristicPlan(const QueryPlan& serial_plan,
                                    int dop = -1) const;

  /// Full adaptive-parallelization instance (repeated invocations until
  /// convergence).
  StatusOr<AdaptiveOutcome> RunAdaptive(
      const QueryPlan& serial_plan,
      const std::vector<SimTask>& background = {});

  /// Builds a background workload: `clients` concurrent streams, each running
  /// its plan from `mix` (round-robin), arrivals spaced by `spacing_ns`.
  /// Plans are evaluated once; tasks are replicated per client. Instances are
  /// numbered from 1 (instance 0 is reserved for the foreground query).
  StatusOr<std::vector<SimTask>> BuildBackground(
      const std::vector<const QueryPlan*>& mix, int clients,
      double spacing_ns = 0.0);

 private:
  /// Starts the process-wide HTTP exporter on `port` (hardened: a failing
  /// bind warns once on stderr and introspection stays off).
  static void StartIntrospection(int port);

  /// RunPlan minus the query-id / record bookkeeping (the outer method
  /// records the outcome — including errors — into the query log).
  StatusOr<QueryRunResult> RunPlanInner(const QueryPlan& plan,
                                        const std::vector<SimTask>& background,
                                        uint64_t seed_salt);

  static ExecOptions MakeExecOptions(const EngineConfig& c) {
    ExecOptions o;
    o.use_kernels = c.use_kernels;
    o.num_threads = c.exec_threads;
    o.use_morsels = c.use_morsels || c.morsel_scheduler != nullptr;
    o.morsel_rows = c.morsel_rows;
    o.morsel_workers = c.morsel_workers;
    o.use_parallel_agg = c.use_parallel_agg;
    o.use_parallel_sort = c.use_parallel_sort;
    o.adaptive_morsel_rows = c.adaptive_morsel_rows;
    o.simd_level = c.simd_level;
    o.trace = c.trace;
    return o;
  }

  EngineConfig config_;
  Evaluator evaluator_;
  CostModel cost_model_;
  Simulator simulator_;
};

}  // namespace apq

#endif  // APQ_ENGINE_ENGINE_H_
