// K-way merge of sorted runs: loser tree + merge-path output partitioning.
//
// Phase two of the parallel sort subsystem (see sort_runs.h). The sorted
// runs are merged through a tournament *loser tree*: k run cursors at the
// leaves, each internal node remembering the loser of its subtree's match,
// so producing the next output row costs one replay path of log2(k)
// comparisons — independent of run sizes and without a heap's
// sift-down branches.
//
// The merge is parallelized by *output* partitioning (the k-sequence
// generalization of the 2-way merge path): for an output boundary t,
// SplitRuns finds the unique per-run split indices whose prefixes are
// exactly the t smallest elements under the total (value, position) order.
// Positions are globally unique, so the partition is unique and every chunk
// [t_j, t_j+1) of the final output can be merged by an independent worker
// from disjoint run slices — no locks, no post-pass, and the concatenated
// chunks are the same permutation a single sequential merge would emit.
#ifndef APQ_EXEC_SORT_MERGE_H_
#define APQ_EXEC_SORT_MERGE_H_

#include <cstdint>
#include <vector>

#include "exec/sort/sort_runs.h"

namespace apq {

/// \brief One sorted run (or a slice of one) as a borrowed span of input
/// positions in (value, position) order.
struct RunSpan {
  const uint64_t* data = nullptr;
  uint64_t len = 0;
};

/// \brief Tournament loser tree over k sorted run cursors. Next() pops the
/// globally smallest remaining element in O(log k) comparisons.
class LoserTree {
 public:
  /// Spans may be empty; the tree pads itself to a power of two with
  /// exhausted leaves.
  LoserTree(std::vector<RunSpan> runs, const SortKeyLess& less);

  /// Pops the smallest remaining position into `*out`. Returns false when
  /// every run is exhausted.
  bool Next(uint64_t* out);

 private:
  /// True when run a's current head precedes run b's (exhausted runs lose).
  bool RunLess(size_t a, size_t b) const;
  size_t Rebuild(size_t node);

  std::vector<RunSpan> runs_;   // padded to leaves_ entries
  std::vector<uint64_t> pos_;   // cursor per run
  std::vector<size_t> tree_;    // internal nodes: loser run of each match
  size_t leaves_ = 0;           // power-of-two leaf count
  size_t winner_ = 0;           // run holding the current global minimum
  SortKeyLess less_;
};

/// \brief Sequential k-way merge: writes the first `out_len` positions of the
/// merged order into out[0..out_len). out_len may be less than the total run
/// length (the bounded top-N merge stops at the limit).
void MergeRuns(const std::vector<RunSpan>& runs, const SortKeyLess& less,
               uint64_t* out, uint64_t out_len);

/// \brief Merge-path split: per-run indices s[r] with sum(s) == t such that
/// the prefixes runs[r][0..s[r]) are exactly the t smallest elements of the
/// union under the total (value, position) order. t must be <= the total run
/// length. The splits are unique because positions are globally unique.
std::vector<uint64_t> SplitRuns(const std::vector<RunSpan>& runs,
                                const SortKeyLess& less, uint64_t t);

/// \brief Parallel k-way merge: partitions the output [0, out_len) into
/// chunks at SplitRuns boundaries and merges each chunk with its own loser
/// tree on the scheduler, one disjoint output range per task.
///
/// Chunk size is opts.merge_chunk_rows, or (when 0) sized so roughly two
/// chunks exist per scheduler worker with a floor that keeps tiny outputs
/// sequential. Appends one MorselMetrics per chunk (tuples_in = 0,
/// tuples_out = chunk rows: run-formation morsels already account for the
/// operator's input rows, so input and output sums stay exact). Runs
/// sequentially (single chunk) when the scheduler is null. Returns the chunk
/// count.
size_t ParallelMergeRuns(const std::vector<RunSpan>& runs,
                         const SortKeyLess& less,
                         const ParallelSortOptions& opts, uint64_t out_len,
                         uint64_t* out, std::vector<MorselMetrics>* morsels);

}  // namespace apq

#endif  // APQ_EXEC_SORT_MERGE_H_
