// Morsel-local stable sorted runs: phase one of the parallel sort subsystem.
//
// Sort was the last heavy operator still running whole-column: one
// std::stable_sort over the full input for both kSort and kTopN. This
// subsystem splits the input into morsels on the work-stealing scheduler
// (sched/morsel_scheduler.h): each morsel is sorted into a *run* of input
// positions ordered by the total order (key value, original position), and
// the runs are combined by the merge-path-partitioned loser-tree merge in
// exec/sort/merge.h.
//
// Keying every comparison by (value, position) is what makes the pipeline
// schedule-invariant: positions are globally unique, so the order is total,
// ties between equal values always resolve to the earlier input position
// (exactly std::stable_sort's guarantee), and the merged permutation is THE
// unique sorted permutation — bit-identical to the scalar path at any morsel
// size, worker count, or steal order.
//
// The bounded top-N path reuses the same machinery: each run keeps only its
// `limit` smallest elements (a heap-based std::partial_sort), so the merge
// sees at most runs x limit candidates instead of n rows. Any global
// top-`limit` element is necessarily among its own morsel's top `limit`, so
// the clipped merge is still exact.
#ifndef APQ_EXEC_SORT_SORT_RUNS_H_
#define APQ_EXEC_SORT_SORT_RUNS_H_

#include <cstdint>
#include <vector>

#include "exec/morsel_source.h"
#include "sched/morsel_scheduler.h"

namespace apq {

/// \brief Read-only view of the sort key column: float64 or int64 (whichever
/// pointer is non-null). Keys compare as doubles — the scalar comparator's
/// ValueVec::AsDouble semantics — so the parallel and scalar paths cannot
/// diverge on integer inputs.
struct SortKeys {
  const double* f64 = nullptr;
  const int64_t* i64 = nullptr;

  double at(uint64_t pos) const {
    return f64 != nullptr ? f64[pos] : static_cast<double>(i64[pos]);
  }
};

/// \brief The sort subsystem's single comparator: a strict *total* order over
/// (key value, input position). Shared by the scalar interpreter path and
/// every parallel phase (run sort, split search, loser-tree merge), so the
/// tie-break semantics cannot drift between them. Sorting positions with this
/// comparator reproduces std::stable_sort over values bit-for-bit.
struct SortKeyLess {
  SortKeys keys;
  bool descending = false;

  bool value_less(double a, double b) const {
    return descending ? a > b : a < b;
  }
  bool operator()(uint64_t x, uint64_t y) const {
    const double a = keys.at(x), b = keys.at(y);
    if (value_less(a, b)) return true;
    if (value_less(b, a)) return false;
    return x < y;  // equal keys: earlier input position first (stability)
  }
};

/// \brief How the sort pipeline splits and schedules its input.
struct ParallelSortOptions {
  uint64_t morsel_rows = kDefaultMorselRows;
  MorselScheduler* scheduler = nullptr;  ///< required; callers share fleets
  /// Top-N bound: >0 keeps only the `limit` smallest (under the sort order)
  /// elements of each run, and the merge emits only `limit` rows. 0 = full
  /// sort. Callers pass 0 when limit >= n (the scalar path's degenerate
  /// top-N, which sorts everything).
  uint64_t limit = 0;
  /// Output rows per parallel-merge chunk (0 = sized from the worker count;
  /// see merge.h). Tests shrink this to exercise multi-chunk merges on small
  /// inputs.
  uint64_t merge_chunk_rows = 0;
};

/// \brief Sequential permutation sort — the scalar interpreter's path, built
/// on the same shared comparator. Fills `perm` with positions [0, n) ordered
/// by (value, position); `limit` in (0, n) switches to a heap-based
/// std::partial_sort that emits only the first `limit` rows of the sorted
/// order instead of fully sorting n rows.
void SortPermSequential(const SortKeys& keys, uint64_t n, bool descending,
                        uint64_t limit, std::vector<uint64_t>* perm);

/// \brief Morsel-parallel run formation over positions [0, n).
///
/// Appends one sorted run per morsel to `runs` (run i = morsel i's positions
/// in (value, position) order, clipped to `opts.limit` when bounded) and one
/// MorselMetrics per run to `morsels` (tuples_in = morsel rows, so the run
/// tasks sum to the n rows sorted; tuples_out = 0 — output rows are
/// accounted by the merge chunks).
///
/// Returns the number of runs; 0 when the input fits in fewer than two
/// morsels or no scheduler was given — the caller should then run
/// SortPermSequential (nothing has been written).
size_t BuildSortRuns(const SortKeys& keys, uint64_t n,
                     const ParallelSortOptions& opts, bool descending,
                     std::vector<std::vector<uint64_t>>* runs,
                     std::vector<MorselMetrics>* morsels);

}  // namespace apq

#endif  // APQ_EXEC_SORT_SORT_RUNS_H_
