#include "exec/sort/merge.h"

#include <algorithm>

#include "obs/resource_tracker.h"
#include "util/hash_clock.h"

namespace apq {

namespace {

/// Floor for auto-sized merge chunks: below this, chunk setup (split search +
/// tree build) outweighs the merge itself, so small outputs merge in one go.
constexpr uint64_t kMinMergeChunkRows = 1024;

}  // namespace

LoserTree::LoserTree(std::vector<RunSpan> runs, const SortKeyLess& less)
    : runs_(std::move(runs)), less_(less) {
  leaves_ = NextPow2(runs_.size());
  if (leaves_ == 0) leaves_ = 1;
  runs_.resize(leaves_);  // padding runs are empty spans (always lose)
  pos_.assign(leaves_, 0);
  tree_.assign(leaves_, 0);
  winner_ = Rebuild(1);
}

bool LoserTree::RunLess(size_t a, size_t b) const {
  const bool a_done = pos_[a] >= runs_[a].len;
  const bool b_done = pos_[b] >= runs_[b].len;
  if (a_done) return false;
  if (b_done) return true;
  return less_(runs_[a].data[pos_[a]], runs_[b].data[pos_[b]]);
}

size_t LoserTree::Rebuild(size_t node) {
  if (node >= leaves_) return node - leaves_;
  const size_t l = Rebuild(2 * node);
  const size_t r = Rebuild(2 * node + 1);
  const bool left_wins = !RunLess(r, l);  // ties go left: lower run index
  tree_[node] = left_wins ? r : l;
  return left_wins ? l : r;
}

bool LoserTree::Next(uint64_t* out) {
  if (pos_[winner_] >= runs_[winner_].len) return false;  // all exhausted
  *out = runs_[winner_].data[pos_[winner_]];
  ++pos_[winner_];
  // Replay the winner's path: at each match the stored loser challenges.
  size_t w = winner_;
  for (size_t node = (w + leaves_) / 2; node >= 1; node /= 2) {
    if (RunLess(tree_[node], w)) std::swap(tree_[node], w);
  }
  winner_ = w;
  return true;
}

void MergeRuns(const std::vector<RunSpan>& runs, const SortKeyLess& less,
               uint64_t* out, uint64_t out_len) {
  LoserTree tree(runs, less);
  for (uint64_t i = 0; i < out_len; ++i) {
    if (!tree.Next(&out[i])) break;  // out_len never exceeds the total length
  }
}

std::vector<uint64_t> SplitRuns(const std::vector<RunSpan>& runs,
                                const SortKeyLess& less, uint64_t t) {
  const size_t k = runs.size();
  std::vector<uint64_t> splits(k, 0);
  if (t == 0) return splits;
  uint64_t total = 0;
  for (const RunSpan& r : runs) total += r.len;
  if (t >= total) {
    for (size_t r = 0; r < k; ++r) splits[r] = runs[r].len;
    return splits;
  }

  // Find the element of global rank t (0-indexed: exactly t elements precede
  // it) by joint binary search over the runs: per-run candidate windows
  // [lo, hi) shrink monotonically, the pivot is the candidate at the middle
  // of the remaining window mass (a weighted-median stand-in), and every
  // iteration discards at least the pivot itself, so the search terminates.
  // The rank-t element is never discarded — elements are only excluded by
  // proving them strictly before or strictly after it — and positions are
  // globally unique, so the rank-t element (and the split) is unique.
  std::vector<uint64_t> lo(k, 0), hi(k);
  for (size_t r = 0; r < k; ++r) hi[r] = runs[r].len;
  std::vector<uint64_t> lb(k, 0);  // per-run lower bound of the pivot
  while (true) {
    uint64_t remaining = 0;
    for (size_t r = 0; r < k; ++r) {
      remaining += hi[r] > lo[r] ? hi[r] - lo[r] : 0;
    }
    if (remaining == 0) break;  // unreachable for a total order; see below
    uint64_t skip = remaining / 2;
    size_t p = 0;
    for (size_t r = 0; r < k; ++r) {
      const uint64_t width = hi[r] > lo[r] ? hi[r] - lo[r] : 0;
      if (width == 0) continue;
      if (skip < width) {
        p = r;
        break;
      }
      skip -= width;
    }
    const uint64_t pivot = runs[p].data[lo[p] + skip];

    uint64_t rank = 0;
    for (size_t r = 0; r < k; ++r) {
      lb[r] = static_cast<uint64_t>(
          std::lower_bound(runs[r].data, runs[r].data + runs[r].len, pivot,
                           less) -
          runs[r].data);
      rank += lb[r];
    }
    if (rank == t) return lb;  // prefixes = exactly the t smallest
    if (rank < t) {
      // Everything at or before the pivot ranks below t. Only run p holds
      // the pivot itself (positions are unique), so its window skips one
      // further.
      for (size_t r = 0; r < k; ++r) {
        lo[r] = std::max(lo[r], lb[r] + (r == p ? 1 : 0));
      }
    } else {
      for (size_t r = 0; r < k; ++r) hi[r] = std::min(hi[r], lb[r]);
    }
  }

  // Defensive fallback (keys that defeat the total order, e.g. NaN): count
  // off the first t elements with a sequential merge. Deterministic, just
  // not sublinear.
  std::vector<uint64_t> cursor(k, 0);
  std::fill(splits.begin(), splits.end(), 0);
  for (uint64_t taken = 0; taken < t; ++taken) {
    size_t best = k;
    for (size_t r = 0; r < k; ++r) {
      if (cursor[r] >= runs[r].len) continue;
      if (best == k ||
          less(runs[r].data[cursor[r]], runs[best].data[cursor[best]])) {
        best = r;
      }
    }
    if (best == k) break;
    ++cursor[best];
    ++splits[best];
  }
  return splits;
}

size_t ParallelMergeRuns(const std::vector<RunSpan>& runs,
                         const SortKeyLess& less,
                         const ParallelSortOptions& opts, uint64_t out_len,
                         uint64_t* out, std::vector<MorselMetrics>* morsels) {
  if (out_len == 0) return 0;
  uint64_t chunk = opts.merge_chunk_rows;
  if (chunk == 0) {
    const uint64_t workers =
        opts.scheduler ? static_cast<uint64_t>(opts.scheduler->num_workers())
                       : 0;
    // ~2 chunks per worker (plus the caller) keeps stealing useful without
    // paying a split search per few rows.
    const uint64_t tasks = 2 * (workers + 1);
    chunk = std::max(kMinMergeChunkRows, (out_len + tasks - 1) / tasks);
  }
  size_t nchunks = static_cast<size_t>((out_len + chunk - 1) / chunk);
  if (opts.scheduler == nullptr) nchunks = 1;
  if (nchunks == 1) chunk = out_len;

  // Output boundaries: chunk j merges runs[r][bounds[j][r], bounds[j+1][r]).
  std::vector<std::vector<uint64_t>> bounds(nchunks + 1);
  bounds[0].assign(runs.size(), 0);
  for (size_t j = 1; j <= nchunks; ++j) {
    bounds[j] = SplitRuns(runs, less,
                          std::min<uint64_t>(j * chunk, out_len));
  }

  std::vector<MorselMetrics> mm(nchunks);
  auto merge_chunk = [&](size_t j, int worker) {
    const double t0 = NowNs();
    const uint64_t out_begin = j * chunk;
    const uint64_t rows = std::min<uint64_t>(chunk, out_len - out_begin);
    std::vector<RunSpan> slices(runs.size());
    for (size_t r = 0; r < runs.size(); ++r) {
      slices[r] =
          RunSpan{runs[r].data + bounds[j][r], bounds[j + 1][r] - bounds[j][r]};
    }
    MergeRuns(slices, less, out + out_begin, rows);
    // This chunk's scratch (run slices + loser tree) plus its output span.
    obs::ChargeTransient(slices.size() * sizeof(RunSpan) +
                         rows * sizeof(uint64_t));
    mm[j] = MorselMetrics{0, rows, NowNs() - t0, worker};
  };
  if (opts.scheduler != nullptr && nchunks > 1) {
    opts.scheduler->ParallelFor(nchunks, merge_chunk);
  } else {
    for (size_t j = 0; j < nchunks; ++j) {
      merge_chunk(j, MorselScheduler::kCallerWorker);
    }
  }

  morsels->insert(morsels->end(), mm.begin(), mm.end());
  return nchunks;
}

}  // namespace apq
