#include "exec/sort/sort_runs.h"

#include <algorithm>
#include <numeric>

#include "obs/resource_tracker.h"
#include "util/hash_clock.h"

namespace apq {

void SortPermSequential(const SortKeys& keys, uint64_t n, bool descending,
                        uint64_t limit, std::vector<uint64_t>* perm) {
  perm->resize(n);
  std::iota(perm->begin(), perm->end(), uint64_t{0});
  const SortKeyLess less{keys, descending};
  if (limit > 0 && limit < n) {
    // Heap-select the limit smallest under the total order: O(n log limit)
    // instead of sorting all n rows. The position tie-break makes the result
    // identical to a full stable sort's first `limit` rows even though
    // partial_sort itself is unstable.
    std::partial_sort(perm->begin(),
                      perm->begin() + static_cast<int64_t>(limit), perm->end(),
                      less);
    perm->resize(limit);
  } else {
    // (value, position) is a total order, so an unstable sort over it equals
    // std::stable_sort over values — without stable_sort's O(n) scratch.
    std::sort(perm->begin(), perm->end(), less);
  }
}

size_t BuildSortRuns(const SortKeys& keys, uint64_t n,
                     const ParallelSortOptions& opts, bool descending,
                     std::vector<std::vector<uint64_t>>* runs,
                     std::vector<MorselMetrics>* morsels) {
  MorselSource src(0, n, opts.morsel_rows);
  const size_t nm = src.num_morsels();
  if (nm < 2 || opts.scheduler == nullptr) return 0;

  const size_t base = runs->size();
  runs->resize(base + nm);
  std::vector<MorselMetrics> mm(nm);
  opts.scheduler->ParallelFor(nm, [&](size_t i, int worker) {
    const Morsel ms = src.morsel(i);
    const double t0 = NowNs();
    std::vector<uint64_t>& run = (*runs)[base + i];
    run.resize(ms.size());
    std::iota(run.begin(), run.end(), ms.begin);
    const SortKeyLess less{keys, descending};
    if (opts.limit > 0 && opts.limit < run.size()) {
      std::partial_sort(run.begin(),
                        run.begin() + static_cast<int64_t>(opts.limit),
                        run.end(), less);
      run.resize(opts.limit);
      run.shrink_to_fit();  // bounded top-N keeps runs x limit rows live
    } else {
      std::sort(run.begin(), run.end(), less);
    }
    // Durable: the run stays live until the merge consumes it; the caller
    // (MorselSortPerm) adopts and releases the sum of all run charges.
    obs::ChargeBytes(run.size() * sizeof(uint64_t));
    mm[i] = MorselMetrics{ms.size(), 0, NowNs() - t0, worker};
  });

  morsels->insert(morsels->end(), mm.begin(), mm.end());
  return nm;
}

}  // namespace apq
