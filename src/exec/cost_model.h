// Converts per-operator workload metrics into virtual single-core time.
//
// The constants are calibrated to a ~2 GHz Xeon-class core with the cache
// hierarchy of the paper's Table 1 machine (256 KB L2, 20 MB shared L3).
// Absolute values only set the time scale; the experiments depend on the
// *relative* behaviour: sequential scans are cheap, random gathers whose
// working set exceeds the L3 are expensive, exchange unions pay pure
// materialization cost, and every operator carries a fixed dispatch overhead
// (which is what makes plan explosion harmful).
#ifndef APQ_EXEC_COST_MODEL_H_
#define APQ_EXEC_COST_MODEL_H_

#include "exec/evaluator.h"

namespace apq {

/// \brief Cost-model calibration constants (virtual nanoseconds).
///
/// Cache sizes: the repository runs the paper's experiments on datasets
/// scaled down ~100-1000x from SF-10/SF-100 (DESIGN.md §2), so the simulated
/// cache hierarchy is shrunk proportionally — the paper's regime has base
/// columns (GBs) hundreds of times larger than the shared L3 (20 MB), and the
/// default 8 KB / 64 KB "L2/L3" keeps our 1-100 MB columns in the same
/// ws >> cache regime. HardwareScale() restores the Table 1 machine's true
/// sizes for full-size data.
struct CostParams {
  double dispatch_ns = 3500.0;        // per-operator scheduling/setup
  double scan_ns_per_tuple = 0.6;     // sequential read + predicate
  double out_ns_per_tuple = 0.9;      // sequential append
  double copy_ns_per_byte = 0.22;     // memcpy (exchange union)
  double hash_insert_ns = 16.0;       // hash build, per row
  double sort_ns_per_item = 13.0;     // * log2(n)
  double group_ns_per_tuple = 6.0;    // hash-group lookup on top of scan

  // Random-access latency by working-set residency (scaled caches; see
  // struct comment).
  double l2_bytes = 8.0 * 1024;
  double l3_bytes = 64.0 * 1024;
  double rand_l2_ns = 4.0;
  double rand_l3_ns = 14.0;
  double rand_mem_ns = 78.0;

  /// The physical cache sizes of the paper's Table 1 two-socket machine.
  static CostParams HardwareScale() {
    CostParams p;
    p.l2_bytes = 256.0 * 1024;
    p.l3_bytes = 20.0 * 1024 * 1024;
    return p;
  }

  /// Latency of one random access into a working set of `ws` bytes.
  double RandomAccessNs(double ws) const {
    if (ws <= l2_bytes) return rand_l2_ns;
    if (ws <= l3_bytes) {
      // Interpolate L2..L3 on a log scale.
      double f = (ws - l2_bytes) / (l3_bytes - l2_bytes);
      return rand_l2_ns + f * (rand_l3_ns - rand_l2_ns);
    }
    // Beyond L3: approach memory latency as the working set grows to 8x L3.
    double f = (ws - l3_bytes) / (7.0 * l3_bytes);
    if (f > 1.0) f = 1.0;
    return rand_l3_ns + f * (rand_mem_ns - rand_l3_ns);
  }
};

/// \brief The cost model: work (virtual ns on one core at full speed) and
/// memory intensity (fraction of the work that competes for DRAM bandwidth).
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams()) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Virtual single-core nanoseconds to execute the operator.
  double Work(const OpMetrics& m) const;

  /// Fraction in [0,1] of the operator's work that is memory-bandwidth bound;
  /// the simulator slows this fraction when concurrent memory-bound operators
  /// saturate the memory controllers (paper §1: "memory bandwidth pressure
  /// due to parallel operator executions").
  double MemIntensity(const OpMetrics& m) const;

 private:
  CostParams params_;
};

}  // namespace apq

#endif  // APQ_EXEC_COST_MODEL_H_
