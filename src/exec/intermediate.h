// Intermediate results flowing between operators.
//
// Every intermediate carries the base row range it was derived from (its
// *origin*), which is what lets the engine verify dynamic-partition boundary
// alignment during tuple reconstruction (paper §2.3, Figs 9/10).
#ifndef APQ_EXEC_INTERMEDIATE_H_
#define APQ_EXEC_INTERMEDIATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/types.h"

namespace apq {

/// \brief A typed vector of values (a materialized column fragment).
struct ValueVec {
  DataType type = DataType::kInt64;
  std::vector<int64_t> i64;        // ints / date days / dictionary codes
  std::vector<double> f64;
  const Column* dict = nullptr;    // dictionary provider for string codes

  uint64_t size() const {
    return type == DataType::kFloat64 ? f64.size() : i64.size();
  }
  bool is_f64() const { return type == DataType::kFloat64; }

  double AsDouble(uint64_t i) const {
    return is_f64() ? f64[i] : static_cast<double>(i64[i]);
  }
  int64_t AsInt(uint64_t i) const {
    return is_f64() ? static_cast<int64_t>(f64[i]) : i64[i];
  }

  void Reserve(uint64_t n) {
    if (is_f64()) f64.reserve(n); else i64.reserve(n);
  }
  void Append(const ValueVec& other) {
    if (is_f64()) f64.insert(f64.end(), other.f64.begin(), other.f64.end());
    else i64.insert(i64.end(), other.i64.begin(), other.i64.end());
  }
};

/// \brief The result of one operator execution.
struct Intermediate {
  enum class Kind : uint8_t {
    kNone = 0,
    kRowIds,      // sorted candidate row ids into a base table
    kValues,      // materialized values, optionally with head row ids
    kPairs,       // join result: (left row id, right row id) pairs
    kGroups,      // group ids per input row + distinct group keys
    kGroupedAgg,  // per-group aggregate values (keys + values + counts)
    kScalar,      // single aggregate value
  };

  Kind kind = Kind::kNone;

  // kRowIds / kValues / kPairs: the base range this result was computed from.
  RowRange origin;

  // kRowIds (also the left side of kPairs).
  std::vector<oid> rowids;
  // kPairs: right-side row ids, parallel to rowids.
  std::vector<oid> rrowids;

  // kValues: values and (optional) head row ids aligned 1:1 with values.
  ValueVec values;
  std::vector<oid> head;

  // kGroups: group id per input position; keys indexed by group id.
  std::vector<int64_t> group_ids;
  ValueVec group_keys;

  // kGroupedAgg: group_keys plus per-group aggregate and count.
  std::vector<double> agg_vals;
  std::vector<int64_t> agg_counts;

  // kScalar.
  double scalar = 0.0;
  int64_t scalar_count = 0;

  /// Cardinality of this intermediate (tuples produced).
  uint64_t NumRows() const {
    switch (kind) {
      case Kind::kRowIds: return rowids.size();
      case Kind::kPairs: return rowids.size();
      case Kind::kValues: return values.size();
      case Kind::kGroups: return group_ids.size();
      case Kind::kGroupedAgg: return agg_vals.size();
      case Kind::kScalar: return 1;
      case Kind::kNone: return 0;
    }
    return 0;
  }

  /// Approximate bytes materialized by this intermediate (drives union cost).
  uint64_t ByteSize() const {
    switch (kind) {
      case Kind::kRowIds: return rowids.size() * sizeof(oid);
      case Kind::kPairs: return rowids.size() * 2 * sizeof(oid);
      case Kind::kValues:
        return values.size() * 8 + head.size() * sizeof(oid);
      case Kind::kGroups:
        return group_ids.size() * 8 + group_keys.size() * 8;
      case Kind::kGroupedAgg: return agg_vals.size() * 24;
      case Kind::kScalar: return 16;
      case Kind::kNone: return 0;
    }
    return 0;
  }

  static const char* KindName(Kind k) {
    switch (k) {
      case Kind::kNone: return "none";
      case Kind::kRowIds: return "rowids";
      case Kind::kValues: return "values";
      case Kind::kPairs: return "pairs";
      case Kind::kGroups: return "groups";
      case Kind::kGroupedAgg: return "groupedagg";
      case Kind::kScalar: return "scalar";
    }
    return "?";
  }
};

}  // namespace apq

#endif  // APQ_EXEC_INTERMEDIATE_H_
