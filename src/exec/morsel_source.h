// Splits an operator's columnar input into fixed-size morsels.
//
// A morsel is a contiguous chunk of the input — a row-id subrange of a dense
// scan, or an index span of a candidate list / fetch-join id list. Morsels
// are indexed 0..num_morsels() in input order; the evaluator executes each
// morsel through the whole-column kernels (exec/kernels.h) into a per-morsel
// fragment and concatenates the fragments by morsel index, which reproduces
// whole-column execution bit-for-bit regardless of which scheduler worker ran
// which morsel in what order.
#ifndef APQ_EXEC_MORSEL_SOURCE_H_
#define APQ_EXEC_MORSEL_SOURCE_H_

#include <cstdint>

#include "storage/types.h"

namespace apq {

/// Default morsel granularity: ~64K rows (a few hundred KB of column data,
/// L2-resident; coarse enough that scheduling cost is noise).
constexpr uint64_t kDefaultMorselRows = 64 * 1024;

/// \brief One morsel's share of an operator execution (intra-operator
/// parallelism). Tuple counts are deterministic — they depend only on the
/// morsel partitioning, not on which worker ran the morsel — while wall_ns
/// and worker are hardware truth and vary run to run.
struct MorselMetrics {
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  double wall_ns = 0;
  int worker = -1;  ///< executing scheduler worker; -1 = caller thread
                    ///< (MorselScheduler::kCallerWorker)
  /// Base-table row interval [domain_begin, domain_end) of the operator's
  /// primary column this morsel covered: the morsel's row subrange for dense
  /// scans, the first..last candidate row id for candidate/fetch-join id
  /// lists. domain_begin == domain_end means the domain is unknown (group-by
  /// ingest, sort runs, probe positions). This is what lets the skew-aware
  /// mutator translate a per-morsel tuple histogram back into range split
  /// points (paper Fig 12 dynamic partitioning).
  uint64_t domain_begin = 0;
  uint64_t domain_end = 0;
};

/// \brief One morsel: the half-open interval [begin, end) of the input.
/// For dense scans these are base-table row ids; for candidate lists they
/// are positions into the candidate vector.
struct Morsel {
  size_t index = 0;
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
};

/// \brief Enumerates the morsels covering [begin, end).
class MorselSource {
 public:
  MorselSource(uint64_t begin, uint64_t end, uint64_t morsel_rows)
      : begin_(begin),
        end_(end < begin ? begin : end),
        rows_(morsel_rows == 0 ? kDefaultMorselRows : morsel_rows) {}

  /// Morsels over a dense row range.
  MorselSource(RowRange range, uint64_t morsel_rows)
      : MorselSource(range.begin, range.end, morsel_rows) {}

  uint64_t total() const { return end_ - begin_; }

  size_t num_morsels() const {
    return static_cast<size_t>((total() + rows_ - 1) / rows_);
  }

  Morsel morsel(size_t i) const {
    Morsel m;
    m.index = i;
    m.begin = begin_ + i * rows_;
    m.end = m.begin + rows_ < end_ ? m.begin + rows_ : end_;
    return m;
  }

 private:
  uint64_t begin_;
  uint64_t end_;
  uint64_t rows_;
};

}  // namespace apq

#endif  // APQ_EXEC_MORSEL_SOURCE_H_
