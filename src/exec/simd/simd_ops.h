// Runtime-dispatched SIMD kernel tier: one function-pointer table per
// instruction-set level (scalar / AVX2 / AVX-512), probed once per process.
//
// The branch-free loops in exec/kernels.cc auto-vectorize at -O2, but the
// selection-vector write itself stays serial there (dst[k] = i; k += pred):
// the compiler cannot compress-store. This tier supplies the explicitly
// vectorized forms — AVX2 movemask + LUT-permute compress and AVX-512
// vpcompressq for the selection-vector emission, vpgatherqq for fetch-join /
// candidate gathers, a gathered byte-table probe for LIKE, and SUM/COUNT/
// MIN/MAX ingest reductions for the aggregation tier.
//
// Dispatch contract:
//  * Every pointer may be null; a null entry means "this level has no
//    vectorized form for the op" and the caller runs its generic loop.
//    The scalar level's table is all-null by construction, so routing
//    through it IS the pre-SIMD code path.
//  * Every non-null entry is bit-identical to the generic loop it replaces:
//    selection vectors and gathers are integer outputs emitted in input
//    order; the float reductions are restricted to folds whose value is
//    order-independent (MIN/MAX lattice folds on NaN-free data) or proven
//    exact (guarded integer SUM) — see each entry.
//  * The active table is chosen once per process: the APQ_SIMD environment
//    override (scalar|avx2|avx512, validated; for tests and CI) wins over
//    ExecOptions::simd_level, which wins over the cpuid probe.
#ifndef APQ_EXEC_SIMD_SIMD_OPS_H_
#define APQ_EXEC_SIMD_SIMD_OPS_H_

#include <cstddef>
#include <cstdint>

#include "storage/types.h"

namespace apq {
namespace simd {

/// Dispatch tier. Values order by capability so tiers compare with <.
enum class SimdLevel : int {
  kAuto = -1,   ///< resolve via APQ_SIMD / cpuid probe (ExecOptions default)
  kScalar = 0,  ///< generic loops only (all-null op table)
  kAvx2 = 1,    ///< 4-lane: movemask + LUT-permute compress, vpgatherqq
  kAvx512 = 2,  ///< 8-lane: vpcompressq compress, masked gathers
};

/// Selection kernels may store one full vector at the write cursor and
/// advance it by the passing-lane count, so the last store of a block can
/// reach up to one vector beyond the final count. Callers must size select
/// destinations with this much slack beyond the worst-case output.
inline constexpr size_t kSelectStoreSlack = 8;

/// The LIKE probe gathers 32-bit words at byte offsets into the match table,
/// reading up to 3 bytes past the addressed code. BuildLikeMatch pads its
/// table by this many zero bytes so the gather never leaves the allocation.
inline constexpr size_t kLikeMatchPad = 8;

/// \brief Function-pointer table of one dispatch level. Null entry = no
/// vectorized form at this level; run the generic loop.
///
/// Dense selects write the row ids i in [begin, end) whose value passes the
/// predicate to dst (capacity >= (end - begin) + kSelectStoreSlack) in row
/// order and return the count — exactly the generic DenseLoop output.
/// Candidate selects scan ids[0..n), drop ids outside [rbegin, rend)
/// (unsigned compares, like RowRange::Contains), add the in-range count to
/// *accesses, and compress the surviving original ids. Gathers write
/// src[ids[i]] to dst[i] for pre-validated ids.
struct SimdOps {
  SimdLevel level = SimdLevel::kScalar;

  // ---- dense selects -------------------------------------------------------
  size_t (*select_range_i64)(const int64_t* data, oid begin, oid end,
                             int64_t lo, int64_t hi, oid* dst) = nullptr;
  size_t (*select_eq_i64)(const int64_t* data, oid begin, oid end, int64_t eq,
                          oid* dst) = nullptr;
  size_t (*select_range_f64)(const double* data, oid begin, oid end, double lo,
                             double hi, oid* dst) = nullptr;
  /// RangeF64 predicate over int64 storage (value cast to double, as the
  /// scalar interpreter does). Needs exact int64->double lanes (AVX-512DQ).
  size_t (*select_range_f64_over_i64)(const int64_t* data, oid begin, oid end,
                                      double lo, double hi, oid* dst) = nullptr;
  /// RangeI64/EqI64 over float64 storage (value truncated, vcvttpd2qq).
  size_t (*select_range_i64_over_f64)(const double* data, oid begin, oid end,
                                      int64_t lo, int64_t hi,
                                      oid* dst) = nullptr;
  size_t (*select_eq_i64_over_f64)(const double* data, oid begin, oid end,
                                   int64_t eq, oid* dst) = nullptr;
  /// LIKE dictionary byte-table probe: match must carry kLikeMatchPad bytes
  /// of tail padding (BuildLikeMatch guarantees it).
  size_t (*select_like)(const int64_t* codes, oid begin, oid end,
                        const uint8_t* match, oid* dst) = nullptr;

  // ---- candidate-list selects ----------------------------------------------
  size_t (*select_cand_range_i64)(const int64_t* data, const oid* ids,
                                  size_t n, oid rbegin, oid rend, int64_t lo,
                                  int64_t hi, oid* dst,
                                  uint64_t* accesses) = nullptr;
  size_t (*select_cand_eq_i64)(const int64_t* data, const oid* ids, size_t n,
                               oid rbegin, oid rend, int64_t eq, oid* dst,
                               uint64_t* accesses) = nullptr;
  size_t (*select_cand_range_f64)(const double* data, const oid* ids, size_t n,
                                  oid rbegin, oid rend, double lo, double hi,
                                  oid* dst, uint64_t* accesses) = nullptr;
  size_t (*select_cand_like)(const int64_t* codes, const oid* ids, size_t n,
                             oid rbegin, oid rend, const uint8_t* match,
                             oid* dst, uint64_t* accesses) = nullptr;

  // ---- gathers (ids pre-validated in-bounds) -------------------------------
  void (*gather_i64)(const int64_t* src, const oid* ids, size_t n,
                     int64_t* dst) = nullptr;
  void (*gather_f64)(const double* src, const oid* ids, size_t n,
                     double* dst) = nullptr;

  // ---- aggregation ingest reductions ---------------------------------------
  /// Exact min/max over v[0..n); n must be > 0. Bit-identical to the
  /// sequential fold for int64 always, and for float64 on NaN-free data
  /// (MIN/MAX are lattice folds; the only scalar divergence would be the
  /// sign of a -0.0/+0.0 tie, which no engine workload produces).
  void (*minmax_i64)(const int64_t* v, size_t n, int64_t* mn,
                     int64_t* mx) = nullptr;
  void (*minmax_f64)(const double* v, size_t n, double* mn,
                     double* mx) = nullptr;
  /// Guarded exact SUM over int64 values: returns true and sets *sum only
  /// when n * max|v| <= 2^53, in which case EVERY association order of the
  /// double fold (including the scalar interpreter's sequential one) is
  /// exact and equal to the integer sum — bit-identical by proof, not by
  /// luck. Returns false (caller folds sequentially) otherwise.
  bool (*sum_i64_exact)(const int64_t* v, size_t n, double* sum) = nullptr;
};

/// The process-wide active table: APQ_SIMD override if set (validated,
/// unknown values warned and ignored), else the cpuid probe's best level.
const SimdOps& Ops();

/// The table of one specific level (kAuto resolves like Ops()). Levels above
/// HighestSupported() clamp down — the returned table is always runnable.
const SimdOps& OpsFor(SimdLevel level);

/// Resolution used by the evaluator: APQ_SIMD env override (testing/CI) >
/// `requested` (ExecOptions::simd_level) > cpuid probe.
const SimdOps& Resolve(SimdLevel requested);

/// Best level this CPU (and build) supports.
SimdLevel HighestSupported();
bool LevelSupported(SimdLevel level);

/// The level Ops() resolved to (after env override and probe).
SimdLevel ActiveLevel();

const char* LevelName(SimdLevel level);

/// Parses a level name ("scalar" | "avx2" | "avx512", case-insensitive).
/// Returns false on anything else. Exposed for the env-parsing tests.
bool ParseSimdLevelName(const char* s, SimdLevel* out);

}  // namespace simd
}  // namespace apq

#endif  // APQ_EXEC_SIMD_SIMD_OPS_H_
