// AVX2 tier: 4-lane (64-bit element) kernels.
//
// This file is compiled with -mavx2 (per-file flag, see CMakeLists); nothing
// here executes unless the runtime probe (or APQ_SIMD) selected the tier, so
// the binary stays portable.
//
// Selection-vector emission is movemask + LUT permute: compare 4 values,
// movemask the 4 lane predicates, permute the row-id vector by a 16-entry
// lookup table that packs the passing lanes to the front, store, and advance
// the write cursor by popcount. The store always writes a full vector, which
// is why select destinations carry kSelectStoreSlack. Candidate selects and
// fetch-join gathers use vpgatherqq; the LIKE probe gathers 32-bit words
// from the (padded) dictionary byte table.
//
// Every loop's tail runs the exact scalar fold of the generic kernels, so
// outputs are bit-identical to exec/kernels.cc's loops at any length or
// alignment.
#include "exec/simd/simd_ops.h"

#include <immintrin.h>

#include <cstdint>
#include <cstring>

namespace apq {
namespace simd {
namespace {

// Packs the set-mask 64-bit lanes of a 256-bit vector to the front, as
// vpermd (32-bit lane) index pairs: entry m lists pairs (2j, 2j+1) for each
// set bit j of m in ascending order, zero-padded.
alignas(32) constexpr uint32_t kCompress4[16][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},  // 0000
    {0, 1, 0, 0, 0, 0, 0, 0},  // 0001
    {2, 3, 0, 0, 0, 0, 0, 0},  // 0010
    {0, 1, 2, 3, 0, 0, 0, 0},  // 0011
    {4, 5, 0, 0, 0, 0, 0, 0},  // 0100
    {0, 1, 4, 5, 0, 0, 0, 0},  // 0101
    {2, 3, 4, 5, 0, 0, 0, 0},  // 0110
    {0, 1, 2, 3, 4, 5, 0, 0},  // 0111
    {6, 7, 0, 0, 0, 0, 0, 0},  // 1000
    {0, 1, 6, 7, 0, 0, 0, 0},  // 1001
    {2, 3, 6, 7, 0, 0, 0, 0},  // 1010
    {0, 1, 2, 3, 6, 7, 0, 0},  // 1011
    {4, 5, 6, 7, 0, 0, 0, 0},  // 1100
    {0, 1, 4, 5, 6, 7, 0, 0},  // 1101
    {2, 3, 4, 5, 6, 7, 0, 0},  // 1110
    {0, 1, 2, 3, 4, 5, 6, 7},  // 1111
};

inline size_t CompressStore4(__m256i rows, int mask, oid* dst, size_t k) {
  const __m256i perm =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(kCompress4[mask]));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k),
                      _mm256_permutevar8x32_epi32(rows, perm));
  return k + static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
}

inline __m256i LoadIds(const oid* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

// Signed-compare bias for unsigned 64-bit compares (AVX2 has only cmpgt_epi64).
inline __m256i Bias(__m256i v) {
  return _mm256_xor_si256(v, _mm256_set1_epi64x(INT64_MIN));
}

// ---- dense selects ----------------------------------------------------------

// MaskFn: const T* -> 4-bit pass mask for 4 consecutive values.
// PredFn: T -> size_t 0/1 (the generic functor, for the tail).
template <typename T, typename MaskFn, typename PredFn>
inline size_t DenseSelect(const T* data, oid begin, oid end, oid* dst,
                          MaskFn mask4, PredFn pred) {
  size_t k = 0;
  oid i = begin;
  __m256i rows = _mm256_setr_epi64x(
      static_cast<long long>(begin), static_cast<long long>(begin) + 1,
      static_cast<long long>(begin) + 2, static_cast<long long>(begin) + 3);
  const __m256i four = _mm256_set1_epi64x(4);
  // 4x unrolled: all four masks (and their popcounts) issue before the first
  // compress-store, so the serial dependency through the write cursor k is
  // four 1-cycle adds per 16 rows instead of movemask+popcount latency per 4.
  for (; i + 16 <= end; i += 16) {
    const int m0 = mask4(data + i);
    const int m1 = mask4(data + i + 4);
    const int m2 = mask4(data + i + 8);
    const int m3 = mask4(data + i + 12);
    k = CompressStore4(rows, m0, dst, k);
    rows = _mm256_add_epi64(rows, four);
    k = CompressStore4(rows, m1, dst, k);
    rows = _mm256_add_epi64(rows, four);
    k = CompressStore4(rows, m2, dst, k);
    rows = _mm256_add_epi64(rows, four);
    k = CompressStore4(rows, m3, dst, k);
    rows = _mm256_add_epi64(rows, four);
  }
  for (; i + 4 <= end; i += 4) {
    k = CompressStore4(rows, mask4(data + i), dst, k);
    rows = _mm256_add_epi64(rows, four);
  }
  for (; i < end; ++i) {
    dst[k] = i;
    k += pred(data[i]);
  }
  return k;
}

size_t SelectRangeI64(const int64_t* data, oid begin, oid end, int64_t lo,
                      int64_t hi, oid* dst) {
  const __m256i lov = _mm256_set1_epi64x(lo);
  const __m256i hiv = _mm256_set1_epi64x(hi);
  return DenseSelect(
      data, begin, end, dst,
      [&](const int64_t* p) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
        const __m256i fail = _mm256_or_si256(_mm256_cmpgt_epi64(lov, v),
                                             _mm256_cmpgt_epi64(v, hiv));
        return ~_mm256_movemask_pd(_mm256_castsi256_pd(fail)) & 0xF;
      },
      [&](int64_t v) { return static_cast<size_t>((v >= lo) & (v <= hi)); });
}

size_t SelectEqI64(const int64_t* data, oid begin, oid end, int64_t eq,
                   oid* dst) {
  const __m256i ev = _mm256_set1_epi64x(eq);
  return DenseSelect(
      data, begin, end, dst,
      [&](const int64_t* p) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
        return _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, ev)));
      },
      [&](int64_t v) { return static_cast<size_t>(v == eq); });
}

size_t SelectRangeF64(const double* data, oid begin, oid end, double lo,
                      double hi, oid* dst) {
  const __m256d lov = _mm256_set1_pd(lo);
  const __m256d hiv = _mm256_set1_pd(hi);
  return DenseSelect(
      data, begin, end, dst,
      [&](const double* p) {
        const __m256d v = _mm256_loadu_pd(p);
        // _CMP_GE_OQ / _CMP_LE_OQ are false on NaN, like the scalar >= / <=.
        return _mm256_movemask_pd(
            _mm256_and_pd(_mm256_cmp_pd(v, lov, _CMP_GE_OQ),
                          _mm256_cmp_pd(v, hiv, _CMP_LE_OQ)));
      },
      [&](double v) { return static_cast<size_t>((v >= lo) & (v <= hi)); });
}

size_t SelectLike(const int64_t* codes, oid begin, oid end,
                  const uint8_t* match, oid* dst) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i ff = _mm_set1_epi32(0xFF);
  return DenseSelect(
      codes, begin, end, dst,
      [&](const int64_t* p) {
        const __m256i c =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
        // 32-bit gather at byte offsets: reads match[code .. code+3], within
        // the table thanks to BuildLikeMatch's kLikeMatchPad tail bytes.
        const __m128i w = _mm256_i64gather_epi32(
            reinterpret_cast<const int*>(match), c, 1);
        const __m128i hit =
            _mm_cmpeq_epi32(_mm_and_si128(w, ff), zero);  // 0 byte = miss
        return ~_mm_movemask_ps(_mm_castsi128_ps(hit)) & 0xF;
      },
      [&](int64_t code) { return static_cast<size_t>(match[code]); });
}

// ---- candidate-list selects -------------------------------------------------

// GatherMaskFn: (__m256i ids, __m256i in_mask) -> 4-bit predicate mask over
// the gathered values (masked lanes gather 0 and are ANDed away by in_mask).
// PredFn: T -> size_t 0/1 for the scalar tail.
template <typename T, typename GatherMaskFn, typename PredFn>
inline size_t CandSelect(const T* data, const oid* ids, size_t n, oid rbegin,
                         oid rend, oid* dst, uint64_t* accesses,
                         GatherMaskFn gmask, PredFn pred) {
  size_t k = 0;
  uint64_t acc = 0;
  const __m256i rb = Bias(_mm256_set1_epi64x(static_cast<long long>(rbegin)));
  const __m256i re = Bias(_mm256_set1_epi64x(static_cast<long long>(rend)));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i idv = LoadIds(ids + i);
    const __m256i idb = Bias(idv);
    // in = id >= rbegin && id < rend, unsigned (RowRange::Contains).
    const __m256i in = _mm256_andnot_si256(_mm256_cmpgt_epi64(rb, idb),
                                           _mm256_cmpgt_epi64(re, idb));
    const int inm = _mm256_movemask_pd(_mm256_castsi256_pd(in));
    acc += static_cast<uint64_t>(__builtin_popcount(static_cast<unsigned>(inm)));
    const int pass = gmask(idv, in) & inm;
    k = CompressStore4(idv, pass, dst, k);
  }
  for (; i < n; ++i) {
    const oid row = ids[i];
    const size_t in = static_cast<size_t>(row >= rbegin && row < rend);
    acc += in;
    const oid safe = in ? row : rbegin;
    dst[k] = row;
    k += in & pred(data[safe]);
  }
  *accesses += acc;
  return k;
}

size_t SelectCandRangeI64(const int64_t* data, const oid* ids, size_t n,
                          oid rbegin, oid rend, int64_t lo, int64_t hi,
                          oid* dst, uint64_t* accesses) {
  const __m256i lov = _mm256_set1_epi64x(lo);
  const __m256i hiv = _mm256_set1_epi64x(hi);
  const __m256i zero = _mm256_setzero_si256();
  return CandSelect(
      data, ids, n, rbegin, rend, dst, accesses,
      [&](__m256i idv, __m256i in) {
        const __m256i v = _mm256_mask_i64gather_epi64(
            zero, reinterpret_cast<const long long*>(data), idv, in, 8);
        const __m256i fail = _mm256_or_si256(_mm256_cmpgt_epi64(lov, v),
                                             _mm256_cmpgt_epi64(v, hiv));
        return ~_mm256_movemask_pd(_mm256_castsi256_pd(fail)) & 0xF;
      },
      [&](int64_t v) { return static_cast<size_t>((v >= lo) & (v <= hi)); });
}

size_t SelectCandEqI64(const int64_t* data, const oid* ids, size_t n,
                       oid rbegin, oid rend, int64_t eq, oid* dst,
                       uint64_t* accesses) {
  const __m256i ev = _mm256_set1_epi64x(eq);
  const __m256i zero = _mm256_setzero_si256();
  return CandSelect(
      data, ids, n, rbegin, rend, dst, accesses,
      [&](__m256i idv, __m256i in) {
        const __m256i v = _mm256_mask_i64gather_epi64(
            zero, reinterpret_cast<const long long*>(data), idv, in, 8);
        return _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, ev)));
      },
      [&](int64_t v) { return static_cast<size_t>(v == eq); });
}

size_t SelectCandRangeF64(const double* data, const oid* ids, size_t n,
                          oid rbegin, oid rend, double lo, double hi, oid* dst,
                          uint64_t* accesses) {
  const __m256d lov = _mm256_set1_pd(lo);
  const __m256d hiv = _mm256_set1_pd(hi);
  const __m256d zero = _mm256_setzero_pd();
  return CandSelect(
      data, ids, n, rbegin, rend, dst, accesses,
      [&](__m256i idv, __m256i in) {
        const __m256d v = _mm256_mask_i64gather_pd(
            zero, data, idv, _mm256_castsi256_pd(in), 8);
        return _mm256_movemask_pd(
            _mm256_and_pd(_mm256_cmp_pd(v, lov, _CMP_GE_OQ),
                          _mm256_cmp_pd(v, hiv, _CMP_LE_OQ)));
      },
      [&](double v) { return static_cast<size_t>((v >= lo) & (v <= hi)); });
}

size_t SelectCandLike(const int64_t* codes, const oid* ids, size_t n,
                      oid rbegin, oid rend, const uint8_t* match, oid* dst,
                      uint64_t* accesses) {
  const __m256i zero = _mm256_setzero_si256();
  const __m128i zero128 = _mm_setzero_si128();
  const __m128i ff = _mm_set1_epi32(0xFF);
  return CandSelect(
      codes, ids, n, rbegin, rend, dst, accesses,
      [&](__m256i idv, __m256i in) {
        const __m256i c = _mm256_mask_i64gather_epi64(
            zero, reinterpret_cast<const long long*>(codes), idv, in, 8);
        const __m128i w = _mm256_i64gather_epi32(
            reinterpret_cast<const int*>(match), c, 1);
        const __m128i hit = _mm_cmpeq_epi32(_mm_and_si128(w, ff), zero128);
        return ~_mm_movemask_ps(_mm_castsi128_ps(hit)) & 0xF;
      },
      [&](int64_t code) { return static_cast<size_t>(match[code]); });
}

// ---- gathers ----------------------------------------------------------------

void GatherI64(const int64_t* src, const oid* ids, size_t n, int64_t* dst) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(src), LoadIds(ids + i), 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] = src[ids[i]];
}

void GatherF64(const double* src, const oid* ids, size_t n, double* dst) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_i64gather_pd(src, LoadIds(ids + i), 8));
  }
  for (; i < n; ++i) dst[i] = src[ids[i]];
}

// ---- aggregation ingest reductions -----------------------------------------

void MinMaxI64(const int64_t* v, size_t n, int64_t* mn, int64_t* mx) {
  int64_t lo = v[0], hi = v[0];
  size_t i = 0;
  if (n >= 4) {
    __m256i vmin = _mm256_set1_epi64x(v[0]);
    __m256i vmax = vmin;
    for (; i + 4 <= n; i += 4) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
      vmin = _mm256_blendv_epi8(vmin, x, _mm256_cmpgt_epi64(vmin, x));
      vmax = _mm256_blendv_epi8(vmax, x, _mm256_cmpgt_epi64(x, vmax));
    }
    alignas(32) int64_t a[4], b[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(a), vmin);
    _mm256_store_si256(reinterpret_cast<__m256i*>(b), vmax);
    for (int l = 0; l < 4; ++l) {
      lo = a[l] < lo ? a[l] : lo;
      hi = b[l] > hi ? b[l] : hi;
    }
  }
  for (; i < n; ++i) {
    lo = v[i] < lo ? v[i] : lo;
    hi = v[i] > hi ? v[i] : hi;
  }
  *mn = lo;
  *mx = hi;
}

void MinMaxF64(const double* v, size_t n, double* mn, double* mx) {
  double lo = v[0], hi = v[0];
  size_t i = 0;
  if (n >= 4) {
    __m256d vmin = _mm256_set1_pd(v[0]);
    __m256d vmax = vmin;
    for (; i + 4 <= n; i += 4) {
      const __m256d x = _mm256_loadu_pd(v + i);
      vmin = _mm256_min_pd(vmin, x);
      vmax = _mm256_max_pd(vmax, x);
    }
    alignas(32) double a[4], b[4];
    _mm256_store_pd(a, vmin);
    _mm256_store_pd(b, vmax);
    for (int l = 0; l < 4; ++l) {
      lo = a[l] < lo ? a[l] : lo;
      hi = b[l] > hi ? b[l] : hi;
    }
  }
  for (; i < n; ++i) {
    lo = v[i] < lo ? v[i] : lo;
    hi = v[i] > hi ? v[i] : hi;
  }
  *mn = lo;
  *mx = hi;
}

bool SumI64Exact(const int64_t* v, size_t n, double* sum) {
  if (n == 0) {
    *sum = 0.0;
    return true;
  }
  // Lane sums may wrap if the guard below fails; the wrap is well-defined
  // (intrinsic adds / unsigned tail) and the result is discarded then.
  uint64_t s = 0;
  int64_t mn, mx;
  MinMaxI64(v, n, &mn, &mx);
  size_t i = 0;
  if (n >= 4) {
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
      acc = _mm256_add_epi64(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
    }
    alignas(32) uint64_t a[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(a), acc);
    s = a[0] + a[1] + a[2] + a[3];
  }
  for (; i < n; ++i) s += static_cast<uint64_t>(v[i]);
  const uint64_t am = mn == INT64_MIN ? (1ull << 63)
                                      : static_cast<uint64_t>(mn < 0 ? -mn : mn);
  const uint64_t bm = static_cast<uint64_t>(mx < 0 ? -mx : mx);
  const uint64_t maxabs = am > bm ? am : bm;
  // n * maxabs <= 2^53 bounds every partial sum of every association order
  // at 2^53, where doubles are exact — so the sequential scalar fold equals
  // this integer sum bit-for-bit.
  if (maxabs > (1ull << 53) / n) return false;
  *sum = static_cast<double>(static_cast<int64_t>(s));
  return true;
}

}  // namespace

const SimdOps& Avx2Ops() {
  static const SimdOps ops = [] {
    SimdOps o;
    o.level = SimdLevel::kAvx2;
    o.select_range_i64 = SelectRangeI64;
    o.select_eq_i64 = SelectEqI64;
    o.select_range_f64 = SelectRangeF64;
    // Cross-typed predicates need exact int64<->double lanes (AVX-512DQ);
    // they fall back to the generic loops at this tier.
    o.select_like = SelectLike;
    o.select_cand_range_i64 = SelectCandRangeI64;
    o.select_cand_eq_i64 = SelectCandEqI64;
    o.select_cand_range_f64 = SelectCandRangeF64;
    o.select_cand_like = SelectCandLike;
    o.gather_i64 = GatherI64;
    o.gather_f64 = GatherF64;
    o.minmax_i64 = MinMaxI64;
    o.minmax_f64 = MinMaxF64;
    o.sum_i64_exact = SumI64Exact;
    return o;
  }();
  return ops;
}

}  // namespace simd
}  // namespace apq
