// Runtime CPU dispatch for the SIMD kernel tier.
//
// The probe runs once per process (__builtin_cpu_supports, cached in a
// static); the APQ_SIMD environment override mirrors the hardened
// APQ_FORCE_MORSELS parsing: anything that is not a known level name is
// rejected with a one-line warning and the runtime probe decides, so a typo
// can never silently change which kernels run. A recognized level the CPU
// cannot execute is clamped down (with a warning) instead of crashing on an
// illegal instruction.
#include "exec/simd/simd_ops.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace apq {
namespace simd {

// Defined in kernels_avx2.cc / kernels_avx512.cc, compiled with -mavx2 /
// -mavx512f (per-file flags; see CMakeLists). When the APQ_SIMD build option
// is off those files are not compiled and these externs must not be
// referenced — the scalar table is all that exists.
#if defined(APQ_SIMD_TIERS)
const SimdOps& Avx2Ops();
const SimdOps& Avx512Ops();
#endif

namespace {

const SimdOps& ScalarOps() {
  static const SimdOps ops = [] {
    SimdOps o;
    o.level = SimdLevel::kScalar;
    return o;
  }();
  return ops;
}

SimdLevel ProbeHighest() {
#if defined(APQ_SIMD_TIERS) && defined(__x86_64__)
  // AVX-512 needs F (compress, masked gathers) plus DQ (vcvtqq2pd /
  // vcvttpd2qq for the cross-typed predicates) and VL (256-bit mask compares
  // in the LIKE probe) — all present together on every AVX-512 part that
  // matters (Skylake-SP onward, Zen 4 onward).
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

/// Parsed APQ_SIMD override: kAuto when unset or rejected.
SimdLevel EnvLevel() {
  static const SimdLevel level = [] {
    const char* v = std::getenv("APQ_SIMD");
    if (v == nullptr || v[0] == '\0') return SimdLevel::kAuto;
    SimdLevel parsed;
    if (!ParseSimdLevelName(v, &parsed)) {
      std::fprintf(stderr,
                   "apq: ignoring APQ_SIMD=\"%s\": unknown level (use "
                   "scalar, avx2, or avx512); using the runtime probe\n",
                   v);
      return SimdLevel::kAuto;
    }
    const SimdLevel best = ProbeHighest();
    if (parsed > best) {
      std::fprintf(stderr,
                   "apq: APQ_SIMD=\"%s\" exceeds what this CPU/build "
                   "supports; clamping to %s\n",
                   v, LevelName(best));
      return best;
    }
    return parsed;
  }();
  return level;
}

}  // namespace

bool ParseSimdLevelName(const char* s, SimdLevel* out) {
  if (s == nullptr) return false;
  char buf[8];
  size_t i = 0;
  for (; s[i] != '\0'; ++i) {
    if (i + 1 >= sizeof(buf)) return false;
    buf[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(s[i])));
  }
  buf[i] = '\0';
  if (std::strcmp(buf, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(buf, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  if (std::strcmp(buf, "avx512") == 0) {
    *out = SimdLevel::kAvx512;
    return true;
  }
  return false;
}

const char* LevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAuto: return "auto";
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "?";
}

SimdLevel HighestSupported() {
  static const SimdLevel best = ProbeHighest();
  return best;
}

bool LevelSupported(SimdLevel level) {
  return level != SimdLevel::kAuto && level <= HighestSupported();
}

const SimdOps& OpsFor(SimdLevel level) {
  if (level == SimdLevel::kAuto) return Ops();
  if (level > HighestSupported()) level = HighestSupported();
#if defined(APQ_SIMD_TIERS)
  switch (level) {
    case SimdLevel::kAvx512: return Avx512Ops();
    case SimdLevel::kAvx2: return Avx2Ops();
    default: break;
  }
#endif
  return ScalarOps();
}

const SimdOps& Ops() {
  static const SimdOps* active = [] {
    const SimdLevel env = EnvLevel();
    return &OpsFor(env == SimdLevel::kAuto ? HighestSupported() : env);
  }();
  return *active;
}

const SimdOps& Resolve(SimdLevel requested) {
  if (EnvLevel() != SimdLevel::kAuto) return Ops();
  if (requested == SimdLevel::kAuto) return Ops();
  return OpsFor(requested);
}

SimdLevel ActiveLevel() { return Ops().level; }

}  // namespace simd
}  // namespace apq
