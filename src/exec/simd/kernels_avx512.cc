// AVX-512 tier: 8-lane (64-bit element) kernels.
//
// Compiled with -mavx512f -mavx512dq -mavx512vl (per-file flags, see
// CMakeLists); the dispatch probe requires F+DQ+VL before selecting this
// table. Selection-vector emission is the native form the AVX2 tier
// emulates: compare into a mask register, vpcompressq the row-id vector,
// store a full vector, advance by popcount (kSelectStoreSlack covers the
// overstore). DQ supplies exact int64<->double lane conversions
// (vcvtqq2pd / vcvttpd2qq), which is what unlocks the cross-typed
// predicates the AVX2 tier leaves to the generic loops.
//
// Tails run the exact scalar fold of exec/kernels.cc, so outputs are
// bit-identical at any length or alignment.
#include "exec/simd/simd_ops.h"

#include <immintrin.h>

#include <cstdint>

namespace apq {
namespace simd {
namespace {

inline size_t CompressStore8(__m512i rows, __mmask8 m, oid* dst, size_t k) {
  _mm512_storeu_si512(dst + k, _mm512_maskz_compress_epi64(m, rows));
  return k + static_cast<size_t>(__builtin_popcount(m));
}

inline __m512i LoadIds(const oid* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

// ---- dense selects ----------------------------------------------------------

// MaskFn: const T* -> __mmask8 over 8 consecutive values.
// PredFn: T -> size_t 0/1 (the generic functor, for the tail).
template <typename T, typename MaskFn, typename PredFn>
inline size_t DenseSelect(const T* data, oid begin, oid end, oid* dst,
                          MaskFn mask8, PredFn pred) {
  size_t k = 0;
  oid i = begin;
  __m512i rows = _mm512_add_epi64(
      _mm512_set1_epi64(static_cast<long long>(begin)),
      _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
  const __m512i eight = _mm512_set1_epi64(8);
  for (; i + 8 <= end; i += 8) {
    k = CompressStore8(rows, mask8(data + i), dst, k);
    rows = _mm512_add_epi64(rows, eight);
  }
  for (; i < end; ++i) {
    dst[k] = i;
    k += pred(data[i]);
  }
  return k;
}

size_t SelectRangeI64(const int64_t* data, oid begin, oid end, int64_t lo,
                      int64_t hi, oid* dst) {
  const __m512i lov = _mm512_set1_epi64(lo);
  const __m512i hiv = _mm512_set1_epi64(hi);
  return DenseSelect(
      data, begin, end, dst,
      [&](const int64_t* p) {
        const __m512i v = _mm512_loadu_si512(p);
        return static_cast<__mmask8>(_mm512_cmpge_epi64_mask(v, lov) &
                                     _mm512_cmple_epi64_mask(v, hiv));
      },
      [&](int64_t v) { return static_cast<size_t>((v >= lo) & (v <= hi)); });
}

size_t SelectEqI64(const int64_t* data, oid begin, oid end, int64_t eq,
                   oid* dst) {
  const __m512i ev = _mm512_set1_epi64(eq);
  return DenseSelect(
      data, begin, end, dst,
      [&](const int64_t* p) {
        return _mm512_cmpeq_epi64_mask(_mm512_loadu_si512(p), ev);
      },
      [&](int64_t v) { return static_cast<size_t>(v == eq); });
}

size_t SelectRangeF64(const double* data, oid begin, oid end, double lo,
                      double hi, oid* dst) {
  const __m512d lov = _mm512_set1_pd(lo);
  const __m512d hiv = _mm512_set1_pd(hi);
  return DenseSelect(
      data, begin, end, dst,
      [&](const double* p) {
        const __m512d v = _mm512_loadu_pd(p);
        return static_cast<__mmask8>(_mm512_cmp_pd_mask(v, lov, _CMP_GE_OQ) &
                                     _mm512_cmp_pd_mask(v, hiv, _CMP_LE_OQ));
      },
      [&](double v) { return static_cast<size_t>((v >= lo) & (v <= hi)); });
}

size_t SelectRangeF64OverI64(const int64_t* data, oid begin, oid end,
                             double lo, double hi, oid* dst) {
  const __m512d lov = _mm512_set1_pd(lo);
  const __m512d hiv = _mm512_set1_pd(hi);
  return DenseSelect(
      data, begin, end, dst,
      [&](const int64_t* p) {
        // vcvtqq2pd: the exact lane form of the scalar static_cast<double>.
        const __m512d v = _mm512_cvtepi64_pd(_mm512_loadu_si512(p));
        return static_cast<__mmask8>(_mm512_cmp_pd_mask(v, lov, _CMP_GE_OQ) &
                                     _mm512_cmp_pd_mask(v, hiv, _CMP_LE_OQ));
      },
      [&](int64_t v) {
        const double x = static_cast<double>(v);
        return static_cast<size_t>((x >= lo) & (x <= hi));
      });
}

size_t SelectRangeI64OverF64(const double* data, oid begin, oid end,
                             int64_t lo, int64_t hi, oid* dst) {
  const __m512i lov = _mm512_set1_epi64(lo);
  const __m512i hiv = _mm512_set1_epi64(hi);
  return DenseSelect(
      data, begin, end, dst,
      [&](const double* p) {
        // vcvttpd2qq truncates like the scalar static_cast<int64_t> (and
        // yields the same INT64_MIN sentinel x86 cvttsd2si produces on
        // out-of-range input).
        const __m512i v = _mm512_cvttpd_epi64(_mm512_loadu_pd(p));
        return static_cast<__mmask8>(_mm512_cmpge_epi64_mask(v, lov) &
                                     _mm512_cmple_epi64_mask(v, hiv));
      },
      [&](double v) {
        const int64_t x = static_cast<int64_t>(v);
        return static_cast<size_t>((x >= lo) & (x <= hi));
      });
}

size_t SelectEqI64OverF64(const double* data, oid begin, oid end, int64_t eq,
                          oid* dst) {
  const __m512i ev = _mm512_set1_epi64(eq);
  return DenseSelect(
      data, begin, end, dst,
      [&](const double* p) {
        return _mm512_cmpeq_epi64_mask(_mm512_cvttpd_epi64(_mm512_loadu_pd(p)),
                                       ev);
      },
      [&](double v) {
        return static_cast<size_t>(static_cast<int64_t>(v) == eq);
      });
}

size_t SelectLike(const int64_t* codes, oid begin, oid end,
                  const uint8_t* match, oid* dst) {
  const __m256i ff = _mm256_set1_epi32(0xFF);
  const __m256i zero = _mm256_setzero_si256();
  return DenseSelect(
      codes, begin, end, dst,
      [&](const int64_t* p) {
        // 32-bit gather at byte offsets; kLikeMatchPad keeps the trailing
        // 3-byte over-read inside the table allocation.
        const __m256i w = _mm512_i64gather_epi32(
            _mm512_loadu_si512(p), reinterpret_cast<const int*>(match), 1);
        return _mm256_cmpneq_epi32_mask(_mm256_and_si256(w, ff), zero);
      },
      [&](int64_t code) { return static_cast<size_t>(match[code]); });
}

// ---- candidate-list selects -------------------------------------------------

// GatherMaskFn: (__m512i ids, __mmask8 in) -> __mmask8 predicate mask over
// the gathered values (masked-off lanes gather 0; in is ANDed by the caller).
// PredFn: T -> size_t 0/1 for the scalar tail.
template <typename T, typename GatherMaskFn, typename PredFn>
inline size_t CandSelect(const T* data, const oid* ids, size_t n, oid rbegin,
                         oid rend, oid* dst, uint64_t* accesses,
                         GatherMaskFn gmask, PredFn pred) {
  size_t k = 0;
  uint64_t acc = 0;
  const __m512i rb = _mm512_set1_epi64(static_cast<long long>(rbegin));
  const __m512i re = _mm512_set1_epi64(static_cast<long long>(rend));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i idv = LoadIds(ids + i);
    const __mmask8 in =
        _mm512_cmpge_epu64_mask(idv, rb) & _mm512_cmplt_epu64_mask(idv, re);
    acc += static_cast<uint64_t>(__builtin_popcount(in));
    const __mmask8 pass = gmask(idv, in) & in;
    k = CompressStore8(idv, pass, dst, k);
  }
  for (; i < n; ++i) {
    const oid row = ids[i];
    const size_t in = static_cast<size_t>(row >= rbegin && row < rend);
    acc += in;
    const oid safe = in ? row : rbegin;
    dst[k] = row;
    k += in & pred(data[safe]);
  }
  *accesses += acc;
  return k;
}

size_t SelectCandRangeI64(const int64_t* data, const oid* ids, size_t n,
                          oid rbegin, oid rend, int64_t lo, int64_t hi,
                          oid* dst, uint64_t* accesses) {
  const __m512i lov = _mm512_set1_epi64(lo);
  const __m512i hiv = _mm512_set1_epi64(hi);
  const __m512i zero = _mm512_setzero_si512();
  return CandSelect(
      data, ids, n, rbegin, rend, dst, accesses,
      [&](__m512i idv, __mmask8 in) {
        const __m512i v = _mm512_mask_i64gather_epi64(
            zero, in, idv, reinterpret_cast<const long long*>(data), 8);
        return static_cast<__mmask8>(_mm512_cmpge_epi64_mask(v, lov) &
                                     _mm512_cmple_epi64_mask(v, hiv));
      },
      [&](int64_t v) { return static_cast<size_t>((v >= lo) & (v <= hi)); });
}

size_t SelectCandEqI64(const int64_t* data, const oid* ids, size_t n,
                       oid rbegin, oid rend, int64_t eq, oid* dst,
                       uint64_t* accesses) {
  const __m512i ev = _mm512_set1_epi64(eq);
  const __m512i zero = _mm512_setzero_si512();
  return CandSelect(
      data, ids, n, rbegin, rend, dst, accesses,
      [&](__m512i idv, __mmask8 in) {
        const __m512i v = _mm512_mask_i64gather_epi64(
            zero, in, idv, reinterpret_cast<const long long*>(data), 8);
        return _mm512_cmpeq_epi64_mask(v, ev);
      },
      [&](int64_t v) { return static_cast<size_t>(v == eq); });
}

size_t SelectCandRangeF64(const double* data, const oid* ids, size_t n,
                          oid rbegin, oid rend, double lo, double hi, oid* dst,
                          uint64_t* accesses) {
  const __m512d lov = _mm512_set1_pd(lo);
  const __m512d hiv = _mm512_set1_pd(hi);
  const __m512d zero = _mm512_setzero_pd();
  return CandSelect(
      data, ids, n, rbegin, rend, dst, accesses,
      [&](__m512i idv, __mmask8 in) {
        const __m512d v = _mm512_mask_i64gather_pd(zero, in, idv, data, 8);
        return static_cast<__mmask8>(_mm512_cmp_pd_mask(v, lov, _CMP_GE_OQ) &
                                     _mm512_cmp_pd_mask(v, hiv, _CMP_LE_OQ));
      },
      [&](double v) { return static_cast<size_t>((v >= lo) & (v <= hi)); });
}

size_t SelectCandLike(const int64_t* codes, const oid* ids, size_t n,
                      oid rbegin, oid rend, const uint8_t* match, oid* dst,
                      uint64_t* accesses) {
  const __m512i zero = _mm512_setzero_si512();
  const __m256i ff = _mm256_set1_epi32(0xFF);
  const __m256i zero256 = _mm256_setzero_si256();
  return CandSelect(
      codes, ids, n, rbegin, rend, dst, accesses,
      [&](__m512i idv, __mmask8 in) {
        const __m512i c = _mm512_mask_i64gather_epi64(
            zero, in, idv, reinterpret_cast<const long long*>(codes), 8);
        const __m256i w = _mm512_i64gather_epi32(
            c, reinterpret_cast<const int*>(match), 1);
        return _mm256_cmpneq_epi32_mask(_mm256_and_si256(w, ff), zero256);
      },
      [&](int64_t code) { return static_cast<size_t>(match[code]); });
}

// ---- gathers ----------------------------------------------------------------

void GatherI64(const int64_t* src, const oid* ids, size_t n, int64_t* dst) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_i64gather_epi64(
        LoadIds(ids + i), reinterpret_cast<const long long*>(src), 8);
    _mm512_storeu_si512(dst + i, v);
  }
  for (; i < n; ++i) dst[i] = src[ids[i]];
}

void GatherF64(const double* src, const oid* ids, size_t n, double* dst) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_i64gather_pd(LoadIds(ids + i), src, 8));
  }
  for (; i < n; ++i) dst[i] = src[ids[i]];
}

// ---- aggregation ingest reductions -----------------------------------------

void MinMaxI64(const int64_t* v, size_t n, int64_t* mn, int64_t* mx) {
  int64_t lo = v[0], hi = v[0];
  size_t i = 0;
  if (n >= 8) {
    __m512i vmin = _mm512_set1_epi64(v[0]);
    __m512i vmax = vmin;
    for (; i + 8 <= n; i += 8) {
      const __m512i x = _mm512_loadu_si512(v + i);
      vmin = _mm512_min_epi64(vmin, x);
      vmax = _mm512_max_epi64(vmax, x);
    }
    lo = _mm512_reduce_min_epi64(vmin);
    hi = _mm512_reduce_max_epi64(vmax);
  }
  for (; i < n; ++i) {
    lo = v[i] < lo ? v[i] : lo;
    hi = v[i] > hi ? v[i] : hi;
  }
  *mn = lo;
  *mx = hi;
}

void MinMaxF64(const double* v, size_t n, double* mn, double* mx) {
  double lo = v[0], hi = v[0];
  size_t i = 0;
  if (n >= 8) {
    __m512d vmin = _mm512_set1_pd(v[0]);
    __m512d vmax = vmin;
    for (; i + 8 <= n; i += 8) {
      const __m512d x = _mm512_loadu_pd(v + i);
      vmin = _mm512_min_pd(vmin, x);
      vmax = _mm512_max_pd(vmax, x);
    }
    lo = _mm512_reduce_min_pd(vmin);
    hi = _mm512_reduce_max_pd(vmax);
  }
  for (; i < n; ++i) {
    lo = v[i] < lo ? v[i] : lo;
    hi = v[i] > hi ? v[i] : hi;
  }
  *mn = lo;
  *mx = hi;
}

bool SumI64Exact(const int64_t* v, size_t n, double* sum) {
  if (n == 0) {
    *sum = 0.0;
    return true;
  }
  uint64_t s = 0;
  int64_t mn, mx;
  MinMaxI64(v, n, &mn, &mx);
  size_t i = 0;
  if (n >= 8) {
    __m512i acc = _mm512_setzero_si512();
    for (; i + 8 <= n; i += 8) {
      acc = _mm512_add_epi64(acc, _mm512_loadu_si512(v + i));
    }
    alignas(64) uint64_t a[8];
    _mm512_store_si512(a, acc);
    for (int l = 0; l < 8; ++l) s += a[l];
  }
  for (; i < n; ++i) s += static_cast<uint64_t>(v[i]);
  const uint64_t am = mn == INT64_MIN ? (1ull << 63)
                                      : static_cast<uint64_t>(mn < 0 ? -mn : mn);
  const uint64_t bm = static_cast<uint64_t>(mx < 0 ? -mx : mx);
  const uint64_t maxabs = am > bm ? am : bm;
  // See kernels_avx2.cc: n * max|v| <= 2^53 makes every association order of
  // the double fold exact, so the scalar sequential fold equals this sum.
  if (maxabs > (1ull << 53) / n) return false;
  *sum = static_cast<double>(static_cast<int64_t>(s));
  return true;
}

}  // namespace

const SimdOps& Avx512Ops() {
  static const SimdOps ops = [] {
    SimdOps o;
    o.level = SimdLevel::kAvx512;
    o.select_range_i64 = SelectRangeI64;
    o.select_eq_i64 = SelectEqI64;
    o.select_range_f64 = SelectRangeF64;
    o.select_range_f64_over_i64 = SelectRangeF64OverI64;
    o.select_range_i64_over_f64 = SelectRangeI64OverF64;
    o.select_eq_i64_over_f64 = SelectEqI64OverF64;
    o.select_like = SelectLike;
    o.select_cand_range_i64 = SelectCandRangeI64;
    o.select_cand_eq_i64 = SelectCandEqI64;
    o.select_cand_range_f64 = SelectCandRangeF64;
    o.select_cand_like = SelectCandLike;
    o.gather_i64 = GatherI64;
    o.gather_f64 = GatherF64;
    o.minmax_i64 = MinMaxI64;
    o.minmax_f64 = MinMaxF64;
    o.sum_i64_exact = SumI64Exact;
    return o;
  }();
  return ops;
}

}  // namespace simd
}  // namespace apq
