#include "exec/compare.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace apq {

namespace {

bool Close(double a, double b, double tol) {
  double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= tol * scale;
}

}  // namespace

std::string DiffIntermediates(const Intermediate& a, const Intermediate& b,
                              double tol) {
  std::ostringstream os;
  // A scalar and a single-group grouped aggregate are interchangeable (the
  // union of scalar partials packs into a grouped form).
  auto as_scalar = [](const Intermediate& x, double* v) {
    if (x.kind == Intermediate::Kind::kScalar) {
      *v = x.scalar;
      return true;
    }
    if (x.kind == Intermediate::Kind::kGroupedAgg && x.agg_vals.size() == 1) {
      *v = x.agg_vals[0];
      return true;
    }
    return false;
  };
  double sa, sb;
  if (as_scalar(a, &sa) && as_scalar(b, &sb)) {
    if (!Close(sa, sb, tol)) {
      os << "scalar mismatch: " << sa << " vs " << sb;
      return os.str();
    }
    return "";
  }

  if (a.kind != b.kind) {
    os << "kind mismatch: " << Intermediate::KindName(a.kind) << " vs "
       << Intermediate::KindName(b.kind);
    return os.str();
  }

  switch (a.kind) {
    case Intermediate::Kind::kRowIds:
    case Intermediate::Kind::kPairs: {
      if (a.rowids.size() != b.rowids.size()) {
        os << "rowid count mismatch: " << a.rowids.size() << " vs "
           << b.rowids.size();
        return os.str();
      }
      for (size_t i = 0; i < a.rowids.size(); ++i) {
        if (a.rowids[i] != b.rowids[i]) {
          os << "rowid[" << i << "]: " << a.rowids[i] << " vs " << b.rowids[i];
          return os.str();
        }
      }
      if (a.kind == Intermediate::Kind::kPairs) {
        for (size_t i = 0; i < a.rrowids.size(); ++i) {
          if (a.rrowids[i] != b.rrowids[i]) {
            os << "rrowid[" << i << "]: " << a.rrowids[i] << " vs "
               << b.rrowids[i];
            return os.str();
          }
        }
      }
      return "";
    }
    case Intermediate::Kind::kValues: {
      if (a.values.size() != b.values.size()) {
        os << "value count mismatch: " << a.values.size() << " vs "
           << b.values.size();
        return os.str();
      }
      for (uint64_t i = 0; i < a.values.size(); ++i) {
        if (!Close(a.values.AsDouble(i), b.values.AsDouble(i), tol)) {
          os << "value[" << i << "]: " << a.values.AsDouble(i) << " vs "
             << b.values.AsDouble(i);
          return os.str();
        }
      }
      if (!a.head.empty() && !b.head.empty() && a.head != b.head) {
        os << "head rowids differ";
        return os.str();
      }
      return "";
    }
    case Intermediate::Kind::kGroupedAgg: {
      std::map<int64_t, std::pair<double, int64_t>> ma, mb;
      for (size_t i = 0; i < a.agg_vals.size(); ++i) {
        ma[a.group_keys.AsInt(i)] = {a.agg_vals[i],
                                     i < a.agg_counts.size() ? a.agg_counts[i]
                                                             : 1};
      }
      for (size_t i = 0; i < b.agg_vals.size(); ++i) {
        mb[b.group_keys.AsInt(i)] = {b.agg_vals[i],
                                     i < b.agg_counts.size() ? b.agg_counts[i]
                                                             : 1};
      }
      if (ma.size() != mb.size()) {
        os << "group count mismatch: " << ma.size() << " vs " << mb.size();
        return os.str();
      }
      for (const auto& [key, va] : ma) {
        auto it = mb.find(key);
        if (it == mb.end()) {
          os << "group key " << key << " missing";
          return os.str();
        }
        if (!Close(va.first, it->second.first, tol)) {
          os << "group " << key << " value: " << va.first << " vs "
             << it->second.first;
          return os.str();
        }
      }
      return "";
    }
    case Intermediate::Kind::kScalar: {
      if (!Close(a.scalar, b.scalar, tol)) {
        os << "scalar: " << a.scalar << " vs " << b.scalar;
        return os.str();
      }
      return "";
    }
    case Intermediate::Kind::kGroups: {
      if (a.group_ids.size() != b.group_ids.size() ||
          a.group_keys.size() != b.group_keys.size()) {
        os << "groups shape mismatch";
        return os.str();
      }
      // Group ids are renameable; compare via key identity per row.
      for (size_t i = 0; i < a.group_ids.size(); ++i) {
        int64_t ka = a.group_keys.AsInt(a.group_ids[i]);
        int64_t kb = b.group_keys.AsInt(b.group_ids[i]);
        if (ka != kb) {
          os << "row " << i << " group key: " << ka << " vs " << kb;
          return os.str();
        }
      }
      return "";
    }
    case Intermediate::Kind::kNone:
      return "";
  }
  return "unreachable";
}

}  // namespace apq
