// Semantic comparison of intermediates, used to verify that every mutated
// (parallelized) plan produces exactly the serial plan's result.
#ifndef APQ_EXEC_COMPARE_H_
#define APQ_EXEC_COMPARE_H_

#include <string>

#include "exec/intermediate.h"

namespace apq {

/// \brief Compares two intermediates for semantic equality.
///
/// Row-id / pair / value results compare element-wise in order (parallel
/// plans must preserve base-table order, paper §2.3). Grouped aggregates
/// compare as key -> (value, count) maps since merge order is unspecified.
/// Scalars compare within `tol` relative tolerance.
/// Returns an empty string when equal, else a human-readable difference.
std::string DiffIntermediates(const Intermediate& a, const Intermediate& b,
                              double tol = 1e-9);

inline bool IntermediatesEqual(const Intermediate& a, const Intermediate& b,
                               double tol = 1e-9) {
  return DiffIntermediates(a, b, tol).empty();
}

}  // namespace apq

#endif  // APQ_EXEC_COMPARE_H_
