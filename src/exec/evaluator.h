// Plan interpretation: executes a QueryPlan on real data, producing exact
// results plus per-operator workload metrics for the cost model.
//
// Results are always exact regardless of how the plan was parallelized. Two
// timings exist for a run: the virtual-time simulator (src/sched/simulator.h)
// converts the metrics gathered here into the paper machine's time, and the
// evaluator itself can execute independent plan nodes (exchange clone
// subtrees) concurrently on a real thread pool for hardware wall-clock truth.
//
// The hot path is vectorized: selects and fetch-joins run through the batch
// kernels in exec/kernels.h (selection vectors, branch-hoisted tight loops).
// The original row-at-a-time interpreter is retained behind
// ExecOptions::use_kernels = false as a reference implementation for
// correctness tests and the scalar-vs-vectorized microbenchmarks.
#ifndef APQ_EXEC_EVALUATOR_H_
#define APQ_EXEC_EVALUATOR_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/hash_index.h"
#include "exec/intermediate.h"
#include "plan/plan.h"
#include "sched/thread_pool.h"
#include "util/status.h"

namespace apq {

/// \brief What one operator execution did, in machine-independent units.
/// The cost model converts this into virtual time.
struct OpMetrics {
  int node_id = -1;
  OpKind kind = OpKind::kResult;
  uint64_t tuples_in = 0;    // tuples scanned / probed / consumed
  uint64_t tuples_out = 0;   // tuples produced
  uint64_t bytes_in = 0;     // bytes read (sequential)
  uint64_t bytes_out = 0;    // bytes materialized
  uint64_t random_accesses = 0;       // gathers / hash probes
  uint64_t random_working_set = 0;    // bytes of the randomly accessed region
  uint64_t hash_build_rows = 0;       // rows inserted into a new hash index
  uint64_t sort_rows = 0;             // rows sorted (n log n term)
};

/// \brief Result of interpreting a plan.
struct EvalResult {
  /// Intermediates of reachable nodes, indexed by node id.
  std::unordered_map<int, Intermediate> intermediates;
  /// Per-node workload metrics, in topological order of execution
  /// (deterministic: identical for serial and threaded execution).
  std::vector<OpMetrics> metrics;
  /// The intermediate feeding the result node.
  Intermediate result;
  /// Wall-clock nanoseconds the evaluator spent executing the plan.
  double wall_ns = 0;
};

/// \brief Execution backend configuration.
struct ExecOptions {
  /// Use the vectorized selection-vector kernels (exec/kernels.h). When
  /// false, the original scalar row-at-a-time interpreter runs instead.
  bool use_kernels = true;
  /// Worker threads for plan-node execution. 1 = serial (in the calling
  /// thread); >1 = independent nodes (exchange clone subtrees) run
  /// concurrently on a shared thread pool. 0 = one per hardware thread.
  int num_threads = 1;
};

/// \brief Interprets plans operator-at-a-time (like MonetDB's MAL
/// interpreter). Hash indexes for join inners are cached across operators and
/// across repeated invocations of the same Evaluator, mirroring BAT hash
/// caching; the cache is thread-safe so parallel join clones share one build.
class Evaluator {
 public:
  Evaluator() = default;
  explicit Evaluator(ExecOptions options) { set_options(options); }

  void set_options(ExecOptions options) {
    if (options.num_threads == 0) {
      options.num_threads = ThreadPool::DefaultThreads();
    }
    if (options.num_threads < 1) options.num_threads = 1;
    if (options_.num_threads != options.num_threads) pool_.reset();
    options_ = options;
  }
  const ExecOptions& options() const { return options_; }
  void set_use_kernels(bool on) { options_.use_kernels = on; }
  void set_num_threads(int n) {
    ExecOptions o = options_;
    o.num_threads = n;
    set_options(o);
  }

  /// Executes `plan`; on success fills `out`.
  Status Execute(const QueryPlan& plan, EvalResult* out);

  /// Drops cached hash indexes (e.g. between unrelated experiments).
  void ClearCaches() {
    std::lock_guard<std::mutex> lock(hash_mu_);
    hash_cache_.clear();
  }

 private:
  /// Read view over per-node result slots during one execution. A node id is
  /// readable iff done[id] is set, which the schedulers guarantee for every
  /// input before a node runs.
  struct ExecContext {
    const std::vector<Intermediate>* slots = nullptr;
    const std::vector<uint8_t>* done = nullptr;
  };

  Status ExecuteSerial(const QueryPlan& plan, const std::vector<int>& order,
                       std::vector<Intermediate>* slots,
                       std::vector<uint8_t>* done,
                       std::vector<OpMetrics>* metrics);
  Status ExecuteParallel(const QueryPlan& plan, const std::vector<int>& order,
                         std::vector<Intermediate>* slots,
                         std::vector<uint8_t>* done,
                         std::vector<OpMetrics>* metrics);

  Status ExecNode(const QueryPlan& plan, const PlanNode& node,
                  const ExecContext& ctx, Intermediate* result, OpMetrics* m);

  Status ExecSelect(const PlanNode& node, const ExecContext& ctx,
                    Intermediate* result, OpMetrics* m);
  Status ExecFetchJoin(const PlanNode& node, const ExecContext& ctx,
                       Intermediate* result, OpMetrics* m);
  Status ExecJoin(const PlanNode& node, const ExecContext& ctx,
                  Intermediate* result, OpMetrics* m);
  Status ExecGroupBy(const PlanNode& node, const ExecContext& ctx,
                     Intermediate* result, OpMetrics* m);
  Status ExecAggregate(const PlanNode& node, const ExecContext& ctx,
                       Intermediate* result, OpMetrics* m);
  Status ExecAggrMerge(const PlanNode& node, const ExecContext& ctx,
                       Intermediate* result, OpMetrics* m);
  Status ExecUnion(const PlanNode& node, const ExecContext& ctx,
                   Intermediate* result, OpMetrics* m);
  Status ExecMap(const PlanNode& node, const ExecContext& ctx,
                 Intermediate* result, OpMetrics* m);
  Status ExecSort(const PlanNode& node, const ExecContext& ctx,
                  Intermediate* result, OpMetrics* m);

  std::shared_ptr<HashIndex> GetOrBuildHash(const Column& column);

  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // lazily created when num_threads > 1

  std::mutex hash_mu_;
  std::unordered_map<const Column*, std::shared_ptr<HashIndex>> hash_cache_;
  /// Hash builds performed during the current Execute. Build cost is
  /// attributed after the run to the topologically-first join over the built
  /// column, so hash_build_rows in the metrics is identical for serial and
  /// threaded execution (under threads, any clone may race to build first).
  std::vector<std::pair<const Column*, uint64_t>> hash_builds_;
};

}  // namespace apq

#endif  // APQ_EXEC_EVALUATOR_H_
