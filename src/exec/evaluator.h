// Plan interpretation: executes a QueryPlan on real data, producing exact
// results plus per-operator workload metrics for the cost model.
//
// Results are always exact regardless of how the plan was parallelized; the
// timing of parallel execution is produced separately by the virtual-time
// simulator (src/sched/simulator.h) from the metrics gathered here.
#ifndef APQ_EXEC_EVALUATOR_H_
#define APQ_EXEC_EVALUATOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/hash_index.h"
#include "exec/intermediate.h"
#include "plan/plan.h"
#include "util/status.h"

namespace apq {

/// \brief What one operator execution did, in machine-independent units.
/// The cost model converts this into virtual time.
struct OpMetrics {
  int node_id = -1;
  OpKind kind = OpKind::kResult;
  uint64_t tuples_in = 0;    // tuples scanned / probed / consumed
  uint64_t tuples_out = 0;   // tuples produced
  uint64_t bytes_in = 0;     // bytes read (sequential)
  uint64_t bytes_out = 0;    // bytes materialized
  uint64_t random_accesses = 0;       // gathers / hash probes
  uint64_t random_working_set = 0;    // bytes of the randomly accessed region
  uint64_t hash_build_rows = 0;       // rows inserted into a new hash index
  uint64_t sort_rows = 0;             // rows sorted (n log n term)
};

/// \brief Result of interpreting a plan.
struct EvalResult {
  /// Intermediates of reachable nodes, indexed by node id.
  std::unordered_map<int, Intermediate> intermediates;
  /// Per-node workload metrics, in topological order of execution.
  std::vector<OpMetrics> metrics;
  /// The intermediate feeding the result node.
  Intermediate result;
};

/// \brief Interprets plans operator-at-a-time (like MonetDB's MAL
/// interpreter). Hash indexes for join inners are cached across operators and
/// across repeated invocations of the same Evaluator, mirroring BAT hash
/// caching.
class Evaluator {
 public:
  Evaluator() = default;

  /// Executes `plan`; on success fills `out`.
  Status Execute(const QueryPlan& plan, EvalResult* out);

  /// Drops cached hash indexes (e.g. between unrelated experiments).
  void ClearCaches() { hash_cache_.clear(); }

 private:
  Status ExecNode(const QueryPlan& plan, const PlanNode& node, EvalResult* out,
                  Intermediate* result, OpMetrics* m);

  Status ExecSelect(const PlanNode& node, const EvalResult& ctx,
                    Intermediate* result, OpMetrics* m);
  Status ExecFetchJoin(const PlanNode& node, const EvalResult& ctx,
                       Intermediate* result, OpMetrics* m);
  Status ExecJoin(const PlanNode& node, const EvalResult& ctx,
                  Intermediate* result, OpMetrics* m);
  Status ExecGroupBy(const PlanNode& node, const EvalResult& ctx,
                     Intermediate* result, OpMetrics* m);
  Status ExecAggregate(const PlanNode& node, const EvalResult& ctx,
                       Intermediate* result, OpMetrics* m);
  Status ExecAggrMerge(const PlanNode& node, const EvalResult& ctx,
                       Intermediate* result, OpMetrics* m);
  Status ExecUnion(const PlanNode& node, const EvalResult& ctx,
                   Intermediate* result, OpMetrics* m);
  Status ExecMap(const PlanNode& node, const EvalResult& ctx,
                 Intermediate* result, OpMetrics* m);
  Status ExecSort(const PlanNode& node, const EvalResult& ctx,
                  Intermediate* result, OpMetrics* m);

  const std::shared_ptr<HashIndex>& GetOrBuildHash(const Column& column,
                                                   OpMetrics* m);

  std::unordered_map<const Column*, std::shared_ptr<HashIndex>> hash_cache_;
};

}  // namespace apq

#endif  // APQ_EXEC_EVALUATOR_H_
