// Plan interpretation: executes a QueryPlan on real data, producing exact
// results plus per-operator workload metrics for the cost model.
//
// Results are always exact regardless of how the plan was parallelized. Two
// timings exist for a run: the virtual-time simulator (src/sched/simulator.h)
// converts the metrics gathered here into the paper machine's time, and the
// evaluator itself can execute independent plan nodes (exchange clone
// subtrees) concurrently on a real thread pool for hardware wall-clock truth.
//
// The hot path is vectorized: selects and fetch-joins run through the batch
// kernels in exec/kernels.h (selection vectors, branch-hoisted tight loops).
// The original row-at-a-time interpreter is retained behind
// ExecOptions::use_kernels = false as a reference implementation for
// correctness tests and the scalar-vs-vectorized microbenchmarks.
#ifndef APQ_EXEC_EVALUATOR_H_
#define APQ_EXEC_EVALUATOR_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/hash_index.h"
#include "exec/intermediate.h"
#include "exec/morsel_source.h"
#include "exec/simd/simd_ops.h"
#include "exec/sort/sort_runs.h"
#include "obs/metrics.h"
#include "obs/resource_tracker.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "sched/morsel_scheduler.h"
#include "sched/thread_pool.h"
#include "util/status.h"

namespace apq {

/// \brief What one operator execution did, in machine-independent units.
/// The cost model converts this into virtual time.
struct OpMetrics {
  int node_id = -1;
  OpKind kind = OpKind::kResult;
  uint64_t tuples_in = 0;    // tuples scanned / probed / consumed
  uint64_t tuples_out = 0;   // tuples produced
  uint64_t bytes_in = 0;     // bytes read (sequential)
  uint64_t bytes_out = 0;    // bytes materialized
  uint64_t random_accesses = 0;       // gathers / hash probes
  uint64_t random_working_set = 0;    // bytes of the randomly accessed region
  uint64_t hash_build_rows = 0;       // rows inserted into a new hash index
  uint64_t sort_rows = 0;             // rows sorted (n log n term)
  uint64_t peak_bytes = 0;   // peak bytes charged while this operator ran
  uint64_t cpu_ns = 0;       // summed task execution time (node wall when
                             // the operator ran whole-column, no tasks)
  uint64_t queue_wait_ns = 0;  // summed scheduler queue-wait of its tasks
  /// Per-morsel breakdown in morsel (= input) order; empty when the operator
  /// ran whole-column. Morsel tuple counts sum exactly to tuples_in/out.
  std::vector<MorselMetrics> morsels;
};

/// \brief Result of interpreting a plan.
struct EvalResult {
  /// Intermediates of reachable nodes, indexed by node id.
  std::unordered_map<int, Intermediate> intermediates;
  /// Per-node workload metrics, in topological order of execution
  /// (deterministic: identical for serial and threaded execution).
  std::vector<OpMetrics> metrics;
  /// The intermediate feeding the result node.
  Intermediate result;
  /// Wall-clock nanoseconds the evaluator spent executing the plan.
  double wall_ns = 0;
};

/// \brief Execution backend configuration.
struct ExecOptions {
  /// Use the vectorized selection-vector kernels (exec/kernels.h). When
  /// false, the original scalar row-at-a-time interpreter runs instead.
  bool use_kernels = true;
  /// Worker threads for plan-node execution. 1 = serial (in the calling
  /// thread); >1 = independent nodes (exchange clone subtrees) run
  /// concurrently on a shared thread pool. 0 = one per hardware thread.
  int num_threads = 1;
  /// Morsel-driven intra-operator execution: dense selects, candidate
  /// selects, and fetch-join gathers are split into fixed-size morsels and
  /// executed on a work-stealing scheduler (sched/morsel_scheduler.h), then
  /// concatenated in morsel order — bit-identical to whole-column kernels.
  /// Requires use_kernels; the scalar interpreter is never morselized.
  /// The APQ_FORCE_MORSELS=1 environment variable overrides this to true.
  bool use_morsels = false;
  /// Rows per morsel (0 = kDefaultMorselRows).
  uint64_t morsel_rows = kDefaultMorselRows;
  /// Workers of a lazily created morsel scheduler (0 = one per hardware
  /// thread). Ignored when a shared scheduler is injected via
  /// set_morsel_scheduler (the multi-query configuration).
  int morsel_workers = 0;
  /// Morsel-parallel aggregation and hash-join probe (exec/agg/): group-by
  /// ingest runs through thread-local AggTables with a partitioned merge
  /// (group ids renumbered to the scalar first-occurrence order), grouped
  /// aggregation through per-morsel partials merged by group-id range, and
  /// the join probe produces ordered pair fragments. Only active when
  /// morsels are enabled (use_morsels / APQ_FORCE_MORSELS); flip this off to
  /// keep selects/gathers morselized while aggregation and probe stay
  /// whole-column.
  bool use_parallel_agg = true;
  /// Morsel-parallel sort (exec/sort/): kSort/kTopN inputs are sorted into
  /// morsel-local stable runs combined by a merge-path-partitioned
  /// loser-tree k-way merge — every comparison keyed by (value, original
  /// position), so the permutation is bit-identical to the scalar stable
  /// sort at any morsel size, worker count, or steal order. Bounded top-N
  /// keeps a limit-sized selection per run and merges only runs x limit
  /// candidates. Only active when morsels are enabled (use_morsels /
  /// APQ_FORCE_MORSELS, which forces this tier on too).
  bool use_parallel_sort = true;
  /// SIMD dispatch tier for the vectorized kernels: kAuto resolves to the
  /// best level the CPU supports (cpuid probe), lower levels pin the tier
  /// (for differential testing). The APQ_SIMD environment variable
  /// (scalar|avx2|avx512, validated like APQ_FORCE_MORSELS) overrides this.
  /// Only meaningful with use_kernels; outputs are bit-identical at every
  /// level. Levels above what the CPU/build supports clamp down.
  simd::SimdLevel simd_level = simd::SimdLevel::kAuto;
  /// Enable span tracing (obs/trace.h) for executions through this
  /// evaluator: operator spans, sampled morsel spans, steal events. Enabling
  /// is process-wide and sticky (the ring buffers are shared); a valid
  /// APQ_TRACE environment variable also enables it and adds an at-exit
  /// Chrome-trace export. Tracing never changes results — only timings are
  /// observed — and costs one branch per span site when off.
  bool trace = false;
  /// Honor per-node morsel-size overrides injected between runs via
  /// SetAdaptiveMorselRows: the adaptive loop shrinks the morsel size of
  /// operators whose previous run showed high intra-operator skew, so
  /// work-stealing rebalances within the operator (more, smaller tasks)
  /// before the mutator has even re-partitioned it. Results stay
  /// bit-identical at any morsel size; this only changes task granularity.
  bool adaptive_morsel_rows = true;
};

/// Registers the apq_build_info metric (constant 1, labeled with the
/// version, the resolved SIMD dispatch tier, and the build type) once per
/// process, so scraped fleets can correlate perf deltas with binaries.
/// Called from set_options after SIMD resolution; later tier changes keep
/// the first registration (one build = one info series).
void RegisterBuildInfo(simd::SimdLevel level);

/// \brief Interprets plans operator-at-a-time (like MonetDB's MAL
/// interpreter). Hash indexes for join inners are cached across operators and
/// across repeated invocations of the same Evaluator, mirroring BAT hash
/// caching; the cache is thread-safe so parallel join clones share one build.
class Evaluator {
 public:
  Evaluator() = default;
  explicit Evaluator(ExecOptions options) { set_options(options); }

  void set_options(ExecOptions options) {
    if (options.num_threads == 0) {
      options.num_threads = ThreadPool::DefaultThreads();
    }
    if (options.num_threads < 1) options.num_threads = 1;
    if (options_.num_threads != options.num_threads) pool_.reset();
    // A lazily created scheduler is rebuilt at the new worker count; an
    // injected (shared) scheduler is never dropped by an options change.
    if (options_.morsel_workers != options.morsel_workers &&
        morsel_sched_owned_) {
      morsel_sched_.reset();
      morsel_sched_owned_ = false;
    }
    options_ = options;
    // Resolved once per options change, not per kernel call: env override >
    // requested level > cpuid probe. Scalar tier = all-null table = the
    // generic loops.
    simd_ops_ = &simd::Resolve(options_.simd_level);
    // Observability wiring (rare path: once per options change). APQ_TRACE /
    // APQ_METRICS are read here so benches and examples that never touch
    // Engine still export at exit; the gauge mirrors the dispatch tier the
    // kernels actually run with.
    obs::InitFromEnv();
    if (options_.trace) obs::SetTraceEnabled(true);
    obs::MetricsRegistry::Global()
        .GetGauge("apq_simd_dispatch_level")
        ->Set(static_cast<int64_t>(simd_ops_->level));
    RegisterBuildInfo(simd_ops_->level);
  }
  const ExecOptions& options() const { return options_; }
  void set_use_kernels(bool on) { options_.use_kernels = on; }
  void set_num_threads(int n) {
    ExecOptions o = options_;
    o.num_threads = n;
    set_options(o);
  }

  /// Executes `plan`; on success fills `out`.
  Status Execute(const QueryPlan& plan, EvalResult* out);

  /// Drops cached hash indexes (e.g. between unrelated experiments). Must not
  /// race with an Execute that is building hashes.
  void ClearCaches() {
    std::lock_guard<std::mutex> lock(hash_mu_);
    for (const auto& [col, slot] : hash_cache_) {
      if (slot && slot->index) {
        obs::AddHashCacheBytes(
            -static_cast<int64_t>(slot->index->byte_size()));
      }
    }
    hash_cache_.clear();
  }

  /// Injects a (possibly shared) morsel scheduler. Concurrent queries that
  /// share one scheduler multiplex one worker fleet instead of spawning a
  /// pool per query; Engine wires its scheduler through here.
  void set_morsel_scheduler(std::shared_ptr<MorselScheduler> sched) {
    morsel_sched_ = std::move(sched);
    morsel_sched_owned_ = false;
  }
  const std::shared_ptr<MorselScheduler>& morsel_scheduler() const {
    return morsel_sched_;
  }
  /// Returns the morsel scheduler, creating one (options().morsel_workers
  /// workers) if none was injected.
  const std::shared_ptr<MorselScheduler>& EnsureMorselScheduler();

  /// True when morsel-driven execution applies: use_morsels (or the
  /// APQ_FORCE_MORSELS=1 environment override) and the vectorized kernels.
  bool MorselsEnabled() const;

  /// True when the parallel aggregation/probe tier applies: morsels enabled
  /// and use_parallel_agg (APQ_FORCE_MORSELS forces this tier on too, so a
  /// forced CI run exercises every morselized operator).
  bool ParallelAggEnabled() const;

  /// True when the parallel sort tier applies: morsels enabled and
  /// use_parallel_sort (APQ_FORCE_MORSELS forces this tier on too).
  bool ParallelSortEnabled() const;

  /// Rows per morsel actually used: options().morsel_rows, unless
  /// APQ_FORCE_MORSELS carries an explicit row count (e.g. =4096).
  uint64_t EffectiveMorselRows() const;

  /// The validated APQ_FORCE_MORSELS value: 0 = unset/off/rejected, 1 = on
  /// with the configured size, >1 = forced rows per morsel. Exposed so tests
  /// reason about the forced size with the evaluator's own parsing instead
  /// of re-implementing it.
  static uint64_t ForcedEnvMorselRows();

  /// The SIMD dispatch table this evaluator's kernels run with (after the
  /// APQ_SIMD override and cpuid clamping). Never null once options are set.
  const simd::SimdOps* simd_ops() const { return simd_ops_; }

  /// Rows per morsel for one specific plan node: the adaptive override when
  /// one was injected (and options().adaptive_morsel_rows is on), otherwise
  /// EffectiveMorselRows().
  uint64_t MorselRowsForNode(int node_id) const;

  /// Injects per-node morsel-size overrides for subsequent Execute() calls
  /// (the adaptive executor's runtime response to observed morsel skew).
  /// Replaces any previous hints; must not be called concurrently with an
  /// Execute(). Node ids refer to the next plan to be executed — mutated
  /// clones get fresh ids and therefore no stale hints.
  void SetAdaptiveMorselRows(std::unordered_map<int, uint64_t> rows_by_node) {
    adaptive_rows_ = std::move(rows_by_node);
  }
  const std::unordered_map<int, uint64_t>& adaptive_morsel_rows() const {
    return adaptive_rows_;
  }

 private:
  /// Read view over per-node result slots during one execution. A node id is
  /// readable iff done[id] is set, which the schedulers guarantee for every
  /// input before a node runs.
  struct ExecContext {
    const std::vector<Intermediate>* slots = nullptr;
    const std::vector<uint8_t>* done = nullptr;
  };

  Status ExecuteSerial(const QueryPlan& plan, const std::vector<int>& order,
                       std::vector<Intermediate>* slots,
                       std::vector<uint8_t>* done,
                       std::vector<OpMetrics>* metrics);
  Status ExecuteParallel(const QueryPlan& plan, const std::vector<int>& order,
                         std::vector<Intermediate>* slots,
                         std::vector<uint8_t>* done,
                         std::vector<OpMetrics>* metrics);

  Status ExecNode(const QueryPlan& plan, const PlanNode& node,
                  const ExecContext& ctx, Intermediate* result, OpMetrics* m);
  Status ExecNodeInner(const QueryPlan& plan, const PlanNode& node,
                       const ExecContext& ctx, Intermediate* result,
                       OpMetrics* m);

  Status ExecSelect(const PlanNode& node, const ExecContext& ctx,
                    Intermediate* result, OpMetrics* m);
  Status ExecFetchJoin(const PlanNode& node, const ExecContext& ctx,
                       Intermediate* result, OpMetrics* m);
  Status ExecJoin(const PlanNode& node, const ExecContext& ctx,
                  Intermediate* result, OpMetrics* m);
  Status ExecGroupBy(const PlanNode& node, const ExecContext& ctx,
                     Intermediate* result, OpMetrics* m);
  Status ExecAggregate(const PlanNode& node, const ExecContext& ctx,
                       Intermediate* result, OpMetrics* m);
  Status ExecAggrMerge(const PlanNode& node, const ExecContext& ctx,
                       Intermediate* result, OpMetrics* m);
  Status ExecUnion(const PlanNode& node, const ExecContext& ctx,
                   Intermediate* result, OpMetrics* m);
  Status ExecMap(const PlanNode& node, const ExecContext& ctx,
                 Intermediate* result, OpMetrics* m);
  Status ExecSort(const PlanNode& node, const ExecContext& ctx,
                  Intermediate* result, OpMetrics* m);

  /// Morsel-parallel select over a dense range. Returns the number of morsels
  /// run (0 = caller should take the whole-column path).
  size_t MorselSelectDense(const Column& col, RowRange range,
                           const Predicate& pred,
                           const std::vector<uint8_t>* like_match,
                           Intermediate* result, OpMetrics* m);
  /// Morsel-parallel select over a candidate list.
  size_t MorselSelectCandidates(const Column& col, RowRange range,
                                const Predicate& pred,
                                const std::vector<uint8_t>* like_match,
                                const std::vector<oid>& candidates,
                                Intermediate* result, OpMetrics* m);
  /// Morsel-parallel fetch-join gather; on success appends to result->head /
  /// result->values. `*ran` reports whether the morsel path was taken.
  Status MorselGather(const Column& col, const std::vector<oid>& ids,
                      RowRange range, bool sliced, AlignPolicy align,
                      Intermediate* result, OpMetrics* m, bool* ran);

  /// Morsel-parallel group-by ingest over keys[0..n) (exec/agg/): fills
  /// result->group_ids / group_keys.i64 in the scalar first-occurrence
  /// order. Returns morsels run (0 = take the sequential path).
  size_t MorselGroupBy(const int64_t* keys, uint64_t n, Intermediate* result,
                       OpMetrics* m);

  /// Morsel-parallel grouped aggregation into the pre-initialized
  /// result->agg_vals / agg_counts (AVG left undivided, as sequentially).
  size_t MorselGroupedAgg(const int64_t* gids, uint64_t n,
                          const ValueVec* vals, AggFn fn, uint64_t ngroups,
                          Intermediate* result);

  /// Morsel-parallel permutation sort (exec/sort/): fills `perm` with the
  /// first min(limit, n) positions (limit = 0 sorts everything) of [0, n)
  /// in (key value, position) order — bit-identical to the scalar stable
  /// sort — and lands per-run / per-merge-chunk counts in `m->morsels`:
  /// run tasks carry tuples_in (summing to n = the operator's sort_rows;
  /// equal to its tuples_in except for slice-clipped rowid inputs, which
  /// drop out-of-slice candidates before sorting) and merge chunks carry
  /// tuples_out (summing to the operator's tuples_out). Returns the number
  /// of runs; 0 = caller runs SortPermSequential (nothing written).
  size_t MorselSortPerm(const SortKeys& keys, uint64_t n, bool descending,
                        uint64_t limit, std::vector<uint64_t>* perm,
                        OpMetrics* m);

  /// Morsel-parallel hash-join probe: `probe_span(begin, end, l, r)` probes
  /// input positions [begin, end) appending matches to the fragment vectors;
  /// fragments are concatenated in morsel order onto result->rowids/rrowids
  /// — bit-identical to one sequential probe over [0, n).
  size_t MorselJoinProbe(
      uint64_t n,
      const std::function<void(uint64_t, uint64_t, std::vector<oid>*,
                               std::vector<oid>*)>& probe_span,
      Intermediate* result, OpMetrics* m);

  std::shared_ptr<HashIndex> GetOrBuildHash(const Column& column);

  ExecOptions options_;
  /// Active SIMD dispatch table (see set_options). The default matches the
  /// default ExecOptions: auto-resolved.
  const simd::SimdOps* simd_ops_ = &simd::Resolve(simd::SimdLevel::kAuto);
  std::unique_ptr<ThreadPool> pool_;  // lazily created when num_threads > 1
  std::shared_ptr<MorselScheduler> morsel_sched_;  // injected or lazy
  bool morsel_sched_owned_ = false;   // true iff lazily created (not injected)
  /// Per-node morsel-size overrides for the next Execute (adaptive skew
  /// response); read-only during execution.
  std::unordered_map<int, uint64_t> adaptive_rows_;

  /// One cache entry per join-inner column. The per-entry once_flag is the
  /// build latch: concurrent first builds of *different* inners proceed in
  /// parallel (hash_mu_ only guards the map itself), while clones racing for
  /// the *same* inner still share a single build.
  struct HashSlot {
    std::once_flag built;
    std::shared_ptr<HashIndex> index;
  };

  std::mutex hash_mu_;  // guards hash_cache_ (the map) and hash_builds_
  std::unordered_map<const Column*, std::shared_ptr<HashSlot>> hash_cache_;
  /// Hash builds performed during the current Execute. Build cost is
  /// attributed after the run to the topologically-first join over the built
  /// column, so hash_build_rows in the metrics is identical for serial and
  /// threaded execution (under threads, any clone may race to build first).
  std::vector<std::pair<const Column*, uint64_t>> hash_builds_;
};

}  // namespace apq

#endif  // APQ_EXEC_EVALUATOR_H_
