// Physical operator kinds and their parallelization semantics.
//
// The adaptive mutator (paper §2.1) classifies operators three ways:
//  - filtering operators (select, join, fetch-join):     basic mutation
//  - non-filtering operators (group-by, sort):           advanced mutation
//  - the exchange union operator itself:                 medium mutation
#ifndef APQ_EXEC_OP_KIND_H_
#define APQ_EXEC_OP_KIND_H_

#include <cstdint>

namespace apq {

enum class OpKind : uint8_t {
  kSelect = 0,      // algebra.select: predicate over a base-column slice
  kFetchJoin,       // algebra.leftfetchjoin: tuple reconstruction by row id
  kJoin,            // algebra.join: hash join, probe outer / build inner
  kGroupBy,         // group.group on a single attribute
  kAggregate,       // aggr.sum/avg/count/min/max (scalar or grouped)
  kAggrMerge,       // re-aggregation of packed partial grouped aggregates
  kExchangeUnion,   // mat.pack: order-preserving concatenation
  kMap,             // batcalc arithmetic
  kSort,            // algebra.sort
  kTopN,            // limited sort
  kResult,          // terminal marker
};

inline const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kSelect: return "select";
    case OpKind::kFetchJoin: return "fetchjoin";
    case OpKind::kJoin: return "join";
    case OpKind::kGroupBy: return "groupby";
    case OpKind::kAggregate: return "aggregate";
    case OpKind::kAggrMerge: return "aggrmerge";
    case OpKind::kExchangeUnion: return "xunion";
    case OpKind::kMap: return "map";
    case OpKind::kSort: return "sort";
    case OpKind::kTopN: return "topn";
    case OpKind::kResult: return "result";
  }
  return "?";
}

/// True for operators whose output can be smaller than their input (the
/// paper's "filtering property"); these use the *basic* mutation.
inline bool IsFilteringOp(OpKind k) {
  switch (k) {
    case OpKind::kSelect:
    case OpKind::kJoin:
    case OpKind::kFetchJoin:
    case OpKind::kMap:
      return true;
    default:
      return false;
  }
}

/// True for operators parallelized by the *advanced* mutation (selectivity=0:
/// output size equals input size; need partial/merge aggregation downstream).
inline bool IsAdvancedOp(OpKind k) {
  return k == OpKind::kGroupBy || k == OpKind::kSort;
}

/// True if the basic mutation can clone this operator onto a split of its
/// bound base-column slice. Maps are parallelized via union propagation
/// (medium mutation) because they carry no row-id domain to clip against.
inline bool IsBasicParallelizable(OpKind k) {
  switch (k) {
    case OpKind::kSelect:
    case OpKind::kJoin:
    case OpKind::kFetchJoin:
      return true;
    default:
      return false;
  }
}

enum class AggFn : uint8_t { kNone = 0, kSum, kAvg, kCount, kMin, kMax };

inline const char* AggFnName(AggFn f) {
  switch (f) {
    case AggFn::kNone: return "none";
    case AggFn::kSum: return "sum";
    case AggFn::kAvg: return "avg";
    case AggFn::kCount: return "count";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

enum class MapFn : uint8_t {
  kNone = 0,
  kAdd,       // x + y
  kSub,       // x - y
  kMul,       // x * y
  kDiv,       // x / y
  kRSub,      // y - x (constant minus value, e.g. 1 - discount)
  kLikeFlag,  // batstr.like + ifthenelse: 1.0 if dict string matches pattern
  kEqFlag,    // 1.0 if value == predicate constant
  kRangeFlag, // 1.0 if predicate lo <= value <= hi
};

enum class FetchSide : uint8_t { kAuto = 0, kLeft, kRight };

/// Boundary-alignment policy for tuple reconstruction over dynamic partitions
/// (paper Fig 9/10).
enum class AlignPolicy : uint8_t {
  kStrict = 0,  // misalignment is an error (fixed-size partitions, Fig 9A)
  kAdjust,      // clip candidate row ids to the slice boundary (Fig 9B-F)
};

}  // namespace apq

#endif  // APQ_EXEC_OP_KIND_H_
