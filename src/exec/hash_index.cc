#include "exec/hash_index.h"

namespace apq {

std::shared_ptr<HashIndex> HashIndex::Build(const Column& column,
                                            RowRange range) {
  auto idx = std::make_shared<HashIndex>();
  idx->column_ = &column;
  idx->range_ = range;
  uint64_t n = range.size();
  uint64_t cap = 16;
  while (cap < n * 2) cap <<= 1;
  idx->buckets_.assign(cap, 0);
  idx->next_.assign(n, 0);
  idx->mask_ = cap - 1;
  const auto& vals = column.i64();
  for (uint64_t off = 0; off < n; ++off) {
    int64_t key = vals[range.begin + off];
    uint64_t slot = Mix(key) & idx->mask_;
    idx->next_[off] = idx->buckets_[slot];
    idx->buckets_[slot] = static_cast<uint32_t>(off + 1);
  }
  idx->num_entries_ = n;
  return idx;
}

void HashIndex::Probe(int64_t key, std::vector<oid>* out) const {
  const auto& vals = column_->i64();
  uint64_t slot = Mix(key) & mask_;
  for (uint32_t cur = buckets_[slot]; cur != 0; cur = next_[cur - 1]) {
    oid row = range_.begin + (cur - 1);
    if (vals[row] == key) out->push_back(row);
  }
}

oid HashIndex::ProbeFirst(int64_t key) const {
  const auto& vals = column_->i64();
  uint64_t slot = Mix(key) & mask_;
  for (uint32_t cur = buckets_[slot]; cur != 0; cur = next_[cur - 1]) {
    oid row = range_.begin + (cur - 1);
    if (vals[row] == key) return row;
  }
  return kInvalidOid;
}

}  // namespace apq
