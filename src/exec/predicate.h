// Selection predicates over columnar data.
#ifndef APQ_EXEC_PREDICATE_H_
#define APQ_EXEC_PREDICATE_H_

#include <cstdint>
#include <string>

#include "storage/column.h"

namespace apq {

/// \brief A single-column predicate (the unit evaluated by the select
/// operator). Range bounds are inclusive.
struct Predicate {
  enum class Kind : uint8_t {
    kNone = 0,
    kRangeI64,   // lo <= v <= hi on int64/date
    kRangeF64,   // flo <= v <= fhi on float64
    kEqI64,      // v == lo
    kLike,       // substring match on dictionary strings
  };

  Kind kind = Kind::kNone;
  int64_t lo = 0;
  int64_t hi = 0;
  double flo = 0.0;
  double fhi = 0.0;
  std::string pattern;  // for kLike: substring to find
  bool anti = false;    // negate the match

  static Predicate RangeI64(int64_t lo, int64_t hi) {
    Predicate p;
    p.kind = Kind::kRangeI64;
    p.lo = lo;
    p.hi = hi;
    return p;
  }
  static Predicate RangeF64(double lo, double hi) {
    Predicate p;
    p.kind = Kind::kRangeF64;
    p.flo = lo;
    p.fhi = hi;
    return p;
  }
  static Predicate EqI64(int64_t v) {
    Predicate p;
    p.kind = Kind::kEqI64;
    p.lo = v;
    return p;
  }
  static Predicate Like(std::string pattern, bool anti = false) {
    Predicate p;
    p.kind = Kind::kLike;
    p.pattern = std::move(pattern);
    p.anti = anti;
    return p;
  }

  std::string ToString() const {
    switch (kind) {
      case Kind::kNone: return "true";
      case Kind::kRangeI64:
        return std::to_string(lo) + "<=v<=" + std::to_string(hi);
      case Kind::kRangeF64:
        return std::to_string(flo) + "<=v<=" + std::to_string(fhi);
      case Kind::kEqI64: return "v==" + std::to_string(lo);
      case Kind::kLike:
        return std::string(anti ? "not like %" : "like %") + pattern + "%";
    }
    return "?";
  }
};

}  // namespace apq

#endif  // APQ_EXEC_PREDICATE_H_
