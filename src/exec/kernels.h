// Vectorized batch kernels over selection vectors.
//
// The scalar interpreter (evaluator.cc) tests a per-row lambda that
// re-dispatches on predicate kind and column type for every tuple. These
// kernels hoist all of that out of the loop: dispatch happens once per
// operator, the inner loop is a predicate-specialized tight loop writing a
// selection vector branch-free (dst[k] = i; k += pred(v)), and every output
// buffer is sized once up front. This is the Vectorwise-style execution the
// paper measures against, applied to the whole-column (MonetDB-style)
// operators this repository interprets.
//
// All kernels reproduce the scalar path bit-for-bit, including the dynamic
// partition boundary rules of paper Figs 9/10 (kStrict errors on out-of-slice
// row ids, kAdjust clips them for the sibling clones to produce).
#ifndef APQ_EXEC_KERNELS_H_
#define APQ_EXEC_KERNELS_H_

#include <cstdint>
#include <vector>

#include "exec/intermediate.h"
#include "exec/simd/simd_ops.h"
#include "exec/op_kind.h"
#include "exec/predicate.h"
#include "storage/column.h"
#include "storage/types.h"
#include "util/status.h"

namespace apq {

/// Precomputes which dictionary codes of `col` match a LIKE predicate
/// (substring, optionally negated). One byte per code; indexed by code. The
/// table carries simd::kLikeMatchPad zero bytes of tail padding so the SIMD
/// gathered probe never reads outside it.
std::vector<uint8_t> BuildLikeMatch(const Column& col, const Predicate& p);

/// Dense select: appends the row ids in [range.begin, range.end) whose value
/// in `col` satisfies `pred` to `out`, in row order. For kLike predicates
/// `like_match` must be the BuildLikeMatch table; it is ignored otherwise.
/// `ops` selects the SIMD dispatch tier (null or an absent entry runs the
/// generic loop) — same for every kernel below; outputs are bit-identical
/// across tiers.
void SelectDense(const Column& col, RowRange range, const Predicate& pred,
                 const std::vector<uint8_t>* like_match, std::vector<oid>* out,
                 const simd::SimdOps* ops = nullptr);

/// Candidate-list select: like SelectDense but scanning `candidates` instead
/// of the dense range. Candidates outside `range` are clipped (paper Fig 9
/// boundary adjustment); `*random_accesses` receives the number of in-range
/// candidates (each costs a random gather into the slice).
void SelectCandidates(const Column& col, RowRange range, const Predicate& pred,
                      const std::vector<uint8_t>* like_match,
                      const std::vector<oid>& candidates, std::vector<oid>* out,
                      uint64_t* random_accesses,
                      const simd::SimdOps* ops = nullptr);

/// Span form of SelectCandidates, scanning `candidates[0..n)`. The morsel
/// executor runs one span per morsel; concatenating the outputs in span order
/// equals one whole-list call.
void SelectCandidatesSpan(const Column& col, RowRange range,
                          const Predicate& pred,
                          const std::vector<uint8_t>* like_match,
                          const oid* candidates, size_t n,
                          std::vector<oid>* out, uint64_t* random_accesses,
                          const simd::SimdOps* ops = nullptr);

/// Fetch-join gather: materializes col[id] for every id in `ids` into
/// `values` (and the surviving ids into `head`), in input order.
///  - Any id beyond the column is a Misaligned error (reported for the first
///    offending id, matching the scalar interpreter).
///  - When `sliced`, ids outside `range` are a Misaligned error under
///    AlignPolicy::kStrict and are clipped under AlignPolicy::kAdjust.
Status GatherRows(const Column& col, const std::vector<oid>& ids,
                  RowRange range, bool sliced, AlignPolicy align,
                  std::vector<oid>* head, ValueVec* values,
                  const simd::SimdOps* ops = nullptr);

/// Span form of GatherRows over `ids[0..n)`, for per-morsel gathers.
/// Error selection is per-span first-offender, so taking the error of the
/// lowest-indexed failing span reproduces the whole-list error exactly.
Status GatherRowsSpan(const Column& col, const oid* ids, size_t n,
                      RowRange range, bool sliced, AlignPolicy align,
                      std::vector<oid>* head, ValueVec* values,
                      const simd::SimdOps* ops = nullptr);

/// Positional span gather for morsel execution when every id yields exactly
/// one output value (any case except slice + kAdjust, whose clipping makes
/// output sizes data-dependent): validates ids[0..n) — full strict-slice
/// semantics when `strict_sliced`, beyond-column bounds otherwise — then
/// writes ids[i] to head_dst[i] and col[ids[i]] to values position
/// offset + i. head_dst and *values must already be sized; disjoint spans of
/// one destination may be written concurrently.
Status GatherRowsAt(const Column& col, const oid* ids, size_t n,
                    RowRange range, bool strict_sliced, oid* head_dst,
                    ValueVec* values, uint64_t offset,
                    const simd::SimdOps* ops = nullptr);

}  // namespace apq

#endif  // APQ_EXEC_KERNELS_H_
