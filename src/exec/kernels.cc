#include "exec/kernels.h"

#include <algorithm>
#include <string>

#include "obs/resource_tracker.h"

namespace apq {

namespace {

// ---- predicate functors ----------------------------------------------------
// One functor per (predicate kind x storage type) pairing; the operator()
// returns 0/1 so the selection loops can advance their write cursor without
// branching. Semantics mirror evaluator.cc's scalar `test` lambda exactly,
// including the int<->float casts for mistyped predicates.

struct TrueI64 {
  size_t operator()(int64_t) const { return 1; }
};
struct RangeI64 {
  int64_t lo, hi;
  size_t operator()(int64_t v) const {
    return static_cast<size_t>((v >= lo) & (v <= hi));
  }
};
struct EqI64 {
  int64_t v0;
  size_t operator()(int64_t v) const { return static_cast<size_t>(v == v0); }
};
// RangeF64 predicate over int64 storage: the scalar path casts the value.
struct RangeF64OverI64 {
  double lo, hi;
  size_t operator()(int64_t v) const {
    double x = static_cast<double>(v);
    return static_cast<size_t>((x >= lo) & (x <= hi));
  }
};
struct LikeCode {
  const uint8_t* match;
  size_t operator()(int64_t code) const { return match[code]; }
};

struct TrueF64 {
  size_t operator()(double) const { return 1; }
};
struct RangeF64 {
  double lo, hi;
  size_t operator()(double v) const {
    return static_cast<size_t>((v >= lo) & (v <= hi));
  }
};
// Int predicates over float64 storage: the scalar path truncates the value.
struct RangeI64OverF64 {
  int64_t lo, hi;
  size_t operator()(double v) const {
    int64_t x = static_cast<int64_t>(v);
    return static_cast<size_t>((x >= lo) & (x <= hi));
  }
};
struct EqI64OverF64 {
  int64_t v0;
  size_t operator()(double v) const {
    return static_cast<size_t>(static_cast<int64_t>(v) == v0);
  }
};
struct FalseAny {
  size_t operator()(int64_t) const { return 0; }
  size_t operator()(double) const { return 0; }
};

// ---- selection loops -------------------------------------------------------

// Rows per growth step of an output vector. Growing blockwise keeps
// resize()'s value-initialization proportional to the *output* and
// cache-warm, instead of one cold memset over the worst case; the selection
// loop then overwrites warm lines. The vector's own geometric growth bounds
// both reallocation cost and retained capacity at O(output) — deliberately
// no worst-case reserve, which would pin scanned-range-sized capacity inside
// long-lived intermediates. 32K oids = 256 KB, comfortably L2-resident.
constexpr size_t kGrowBlock = 32768;

// Appends all row ids in [begin, end) whose value passes `pred`. The loop
// body is branch-free: the row id is stored unconditionally and the write
// cursor advances by the 0/1 predicate result. The write pointer is
// re-fetched after every resize, so block-boundary reallocation is safe.
template <typename T, typename P>
void DenseLoop(const T* data, oid begin, oid end, P pred,
               std::vector<oid>* out) {
  size_t k = out->size();
  for (oid b = begin; b < end; b += kGrowBlock) {
    const oid e = b + kGrowBlock < end ? static_cast<oid>(b + kGrowBlock) : end;
    out->resize(k + (e - b));
    oid* dst = out->data();
    for (oid i = b; i < e; ++i) {
      dst[k] = i;
      k += pred(data[i]);
    }
  }
  out->resize(k);
}

// Candidate scan with boundary clip: candidates outside `range` are dropped
// (they belong to sibling clones). Out-of-range candidates never touch the
// data array; `range.begin` is a safe in-slice dummy row for the masked read.
template <typename T, typename P>
void CandidateLoop(const T* data, const oid* ids, size_t n, RowRange range,
                   P pred, std::vector<oid>* out, uint64_t* random_accesses) {
  if (range.size() == 0) return;  // empty slice: every candidate clips away
  size_t k = out->size();
  uint64_t accesses = 0;
  for (size_t b = 0; b < n; b += kGrowBlock) {
    const size_t e = b + kGrowBlock < n ? b + kGrowBlock : n;
    out->resize(k + (e - b));
    oid* dst = out->data();
    for (size_t i = b; i < e; ++i) {
      const oid row = ids[i];
      const size_t in = static_cast<size_t>(range.Contains(row));
      accesses += in;
      const oid safe = in ? row : range.begin;
      dst[k] = row;
      k += in & pred(data[safe]);
    }
  }
  out->resize(k);
  *random_accesses += accesses;
}

// ---- SIMD select drivers ---------------------------------------------------
// Same blockwise output growth as DenseLoop/CandidateLoop, but each block is
// filled by a dispatch-table kernel that compress-stores passing row ids.
// Those kernels may store one full vector past their final count, so every
// block is sized with kSelectStoreSlack; the final resize trims to the real
// count. `run(b, e, dst)` / `run(ids, n, dst)` returns the block's count.

template <typename F>
void DenseSimdLoop(oid begin, oid end, std::vector<oid>* out, F run) {
  size_t k = out->size();
  for (oid b = begin; b < end; b += kGrowBlock) {
    const oid e = b + kGrowBlock < end ? static_cast<oid>(b + kGrowBlock) : end;
    out->resize(k + (e - b) + simd::kSelectStoreSlack);
    k += run(b, e, out->data() + k);
  }
  out->resize(k);
}

template <typename F>
void CandSimdLoop(const oid* ids, size_t n, std::vector<oid>* out, F run) {
  size_t k = out->size();
  for (size_t b = 0; b < n; b += kGrowBlock) {
    const size_t e = b + kGrowBlock < n ? b + kGrowBlock : n;
    out->resize(k + (e - b) + simd::kSelectStoreSlack);
    k += run(ids + b, e - b, out->data() + k);
  }
  out->resize(k);
}

// Routes a dense select to the dispatch-table kernel for (pred kind x storage
// type) when the active tier has one. Returns false to run the generic loop.
bool TrySimdSelectDense(const Column& col, RowRange range,
                        const Predicate& pred,
                        const std::vector<uint8_t>* like_match,
                        std::vector<oid>* out, const simd::SimdOps* ops) {
  if (ops == nullptr) return false;
  if (col.type() == DataType::kFloat64) {
    const double* data = col.f64().data();
    switch (pred.kind) {
      case Predicate::Kind::kRangeF64:
        if (ops->select_range_f64 == nullptr) return false;
        DenseSimdLoop(range.begin, range.end, out, [&](oid b, oid e, oid* dst) {
          return ops->select_range_f64(data, b, e, pred.flo, pred.fhi, dst);
        });
        return true;
      case Predicate::Kind::kRangeI64:
        if (ops->select_range_i64_over_f64 == nullptr) return false;
        DenseSimdLoop(range.begin, range.end, out, [&](oid b, oid e, oid* dst) {
          return ops->select_range_i64_over_f64(data, b, e, pred.lo, pred.hi,
                                                dst);
        });
        return true;
      case Predicate::Kind::kEqI64:
        if (ops->select_eq_i64_over_f64 == nullptr) return false;
        DenseSimdLoop(range.begin, range.end, out, [&](oid b, oid e, oid* dst) {
          return ops->select_eq_i64_over_f64(data, b, e, pred.lo, dst);
        });
        return true;
      default:
        return false;
    }
  }
  const int64_t* data = col.i64().data();
  switch (pred.kind) {
    case Predicate::Kind::kRangeI64:
      if (ops->select_range_i64 == nullptr) return false;
      DenseSimdLoop(range.begin, range.end, out, [&](oid b, oid e, oid* dst) {
        return ops->select_range_i64(data, b, e, pred.lo, pred.hi, dst);
      });
      return true;
    case Predicate::Kind::kEqI64:
      if (ops->select_eq_i64 == nullptr) return false;
      DenseSimdLoop(range.begin, range.end, out, [&](oid b, oid e, oid* dst) {
        return ops->select_eq_i64(data, b, e, pred.lo, dst);
      });
      return true;
    case Predicate::Kind::kRangeF64:
      if (ops->select_range_f64_over_i64 == nullptr) return false;
      DenseSimdLoop(range.begin, range.end, out, [&](oid b, oid e, oid* dst) {
        return ops->select_range_f64_over_i64(data, b, e, pred.flo, pred.fhi,
                                              dst);
      });
      return true;
    case Predicate::Kind::kLike:
      if (ops->select_like == nullptr) return false;
      DenseSimdLoop(range.begin, range.end, out, [&](oid b, oid e, oid* dst) {
        return ops->select_like(data, b, e, like_match->data(), dst);
      });
      return true;
    default:
      return false;
  }
}

// Candidate-list counterpart. The caller has already handled the empty-slice
// early return; the cross-typed predicates have no candidate SIMD form and
// fall back to the generic loop.
bool TrySimdSelectCandidates(const Column& col, RowRange range,
                             const Predicate& pred,
                             const std::vector<uint8_t>* like_match,
                             const oid* ids, size_t n, std::vector<oid>* out,
                             uint64_t* random_accesses,
                             const simd::SimdOps* ops) {
  if (ops == nullptr) return false;
  if (col.type() == DataType::kFloat64) {
    const double* data = col.f64().data();
    if (pred.kind != Predicate::Kind::kRangeF64 ||
        ops->select_cand_range_f64 == nullptr) {
      return false;
    }
    CandSimdLoop(ids, n, out, [&](const oid* p, size_t m, oid* dst) {
      return ops->select_cand_range_f64(data, p, m, range.begin, range.end,
                                        pred.flo, pred.fhi, dst,
                                        random_accesses);
    });
    return true;
  }
  const int64_t* data = col.i64().data();
  switch (pred.kind) {
    case Predicate::Kind::kRangeI64:
      if (ops->select_cand_range_i64 == nullptr) return false;
      CandSimdLoop(ids, n, out, [&](const oid* p, size_t m, oid* dst) {
        return ops->select_cand_range_i64(data, p, m, range.begin, range.end,
                                          pred.lo, pred.hi, dst,
                                          random_accesses);
      });
      return true;
    case Predicate::Kind::kEqI64:
      if (ops->select_cand_eq_i64 == nullptr) return false;
      CandSimdLoop(ids, n, out, [&](const oid* p, size_t m, oid* dst) {
        return ops->select_cand_eq_i64(data, p, m, range.begin, range.end,
                                       pred.lo, dst, random_accesses);
      });
      return true;
    case Predicate::Kind::kLike:
      if (ops->select_cand_like == nullptr) return false;
      CandSimdLoop(ids, n, out, [&](const oid* p, size_t m, oid* dst) {
        return ops->select_cand_like(data, p, m, range.begin, range.end,
                                     like_match->data(), dst, random_accesses);
      });
      return true;
    default:
      return false;
  }
}

// Dispatches a select over int64-backed storage (ints, dates, dict codes).
template <typename Sink>
void DispatchI64(const Predicate& pred, const std::vector<uint8_t>* like_match,
                 Sink&& sink) {
  switch (pred.kind) {
    case Predicate::Kind::kNone: sink(TrueI64{}); break;
    case Predicate::Kind::kRangeI64: sink(RangeI64{pred.lo, pred.hi}); break;
    case Predicate::Kind::kEqI64: sink(EqI64{pred.lo}); break;
    case Predicate::Kind::kRangeF64:
      sink(RangeF64OverI64{pred.flo, pred.fhi});
      break;
    case Predicate::Kind::kLike: sink(LikeCode{like_match->data()}); break;
    default: sink(FalseAny{}); break;
  }
}

// Dispatches a select over float64 storage.
template <typename Sink>
void DispatchF64(const Predicate& pred, Sink&& sink) {
  switch (pred.kind) {
    case Predicate::Kind::kNone: sink(TrueF64{}); break;
    case Predicate::Kind::kRangeF64: sink(RangeF64{pred.flo, pred.fhi}); break;
    case Predicate::Kind::kRangeI64:
      sink(RangeI64OverF64{pred.lo, pred.hi});
      break;
    case Predicate::Kind::kEqI64: sink(EqI64OverF64{pred.lo}); break;
    default: sink(FalseAny{}); break;
  }
}

// ---- gather loops ----------------------------------------------------------

inline void GatherVals(const int64_t* src, const oid* ids, size_t n,
                       int64_t* dst, const simd::SimdOps* ops) {
  if (ops != nullptr && ops->gather_i64 != nullptr) {
    ops->gather_i64(src, ids, n, dst);
    return;
  }
  for (size_t i = 0; i < n; ++i) dst[i] = src[ids[i]];
}

inline void GatherVals(const double* src, const oid* ids, size_t n,
                       double* dst, const simd::SimdOps* ops) {
  if (ops != nullptr && ops->gather_f64 != nullptr) {
    ops->gather_f64(src, ids, n, dst);
    return;
  }
  for (size_t i = 0; i < n; ++i) dst[i] = src[ids[i]];
}

template <typename T>
void GatherAll(const T* src, const oid* ids, size_t n, std::vector<oid>* head,
               std::vector<T>* vals, const simd::SimdOps* ops) {
  const size_t hbase = head->size();
  const size_t vbase = vals->size();
  head->resize(hbase + n);
  vals->resize(vbase + n);
  std::copy(ids, ids + n, head->data() + hbase);
  GatherVals(src, ids, n, vals->data() + vbase, ops);
}

template <typename T>
void GatherClipped(const T* src, const oid* ids, size_t n, RowRange range,
                   std::vector<oid>* head, std::vector<T>* vals) {
  if (range.size() == 0) return;
  const size_t hbase = head->size();
  const size_t vbase = vals->size();
  size_t k = 0;
  for (size_t b = 0; b < n; b += kGrowBlock) {
    const size_t e = b + kGrowBlock < n ? b + kGrowBlock : n;
    head->resize(hbase + k + (e - b));
    vals->resize(vbase + k + (e - b));
    oid* hdst = head->data() + hbase;
    T* vdst = vals->data() + vbase;
    for (size_t i = b; i < e; ++i) {
      const oid row = ids[i];
      const size_t in = static_cast<size_t>(range.Contains(row));
      const oid safe = in ? row : range.begin;
      hdst[k] = row;
      vdst[k] = src[safe];
      k += in;
    }
  }
  head->resize(hbase + k);
  vals->resize(vbase + k);
}

template <typename T>
void GatherAt(const T* src, const oid* ids, size_t n, oid* hdst, T* vdst,
              const simd::SimdOps* ops) {
  std::copy(ids, ids + n, hdst);
  GatherVals(src, ids, n, vdst, ops);
}

Status MisalignedBeyond(const Column& col, oid id) {
  return Status::Misaligned("fetchjoin rowid " + std::to_string(id) +
                            " beyond column '" + col.name() + "' size " +
                            std::to_string(col.size()));
}

Status MisalignedOutside(const Column& col, oid id, RowRange range) {
  return Status::Misaligned("fetchjoin rowid " + std::to_string(id) +
                            " outside slice " + range.ToString() + " of '" +
                            col.name() + "'");
}

// Strict-mode validation: a branchless violation count first (vectorizes to
// a sum-reduction, like BoundsCheckIds' max pre-pass); only on failure do we
// rescan in input order, checking beyond-column before out-of-slice per id —
// the same id fails with the same error the scalar interpreter reports.
Status StrictCheckIds(const Column& col, const oid* ids, size_t n,
                      RowRange range) {
  const oid csize = col.size();
  size_t bad = 0;
  for (size_t i = 0; i < n; ++i) {
    bad += static_cast<size_t>(ids[i] >= csize) |
           static_cast<size_t>(ids[i] < range.begin) |
           static_cast<size_t>(ids[i] >= range.end);
  }
  if (bad != 0) {
    for (size_t i = 0; i < n; ++i) {
      if (ids[i] >= csize) return MisalignedBeyond(col, ids[i]);
      if (!range.Contains(ids[i])) return MisalignedOutside(col, ids[i], range);
    }
  }
  return Status::OK();
}

// Bounds pre-pass (vectorizes to a max-reduction): only on failure do we
// rescan for the first offending id, to report the same error the scalar
// interpreter would.
Status BoundsCheckIds(const Column& col, const oid* ids, size_t n) {
  oid max_id = 0;
  for (size_t i = 0; i < n; ++i) max_id = ids[i] > max_id ? ids[i] : max_id;
  if (n > 0 && max_id >= col.size()) {
    oid bad = max_id;
    for (size_t i = 0; i < n; ++i) {
      if (ids[i] >= col.size()) { bad = ids[i]; break; }
    }
    return MisalignedBeyond(col, bad);
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> BuildLikeMatch(const Column& col, const Predicate& p) {
  const auto& dict = col.dictionary();
  // kLikeMatchPad zero tail bytes: the SIMD probe gathers 32-bit words at
  // byte offsets, reading up to 3 bytes past the addressed code.
  std::vector<uint8_t> match(dict.size() + simd::kLikeMatchPad, 0);
  for (size_t i = 0; i < dict.size(); ++i) {
    bool hit = dict[i].find(p.pattern) != std::string::npos;
    match[i] = (hit != p.anti) ? 1 : 0;
  }
  return match;
}

void SelectDense(const Column& col, RowRange range, const Predicate& pred,
                 const std::vector<uint8_t>* like_match, std::vector<oid>* out,
                 const simd::SimdOps* ops) {
  // One charge per kernel invocation (whole column or one morsel), never per
  // row: the selection vector produced here is this call's working growth.
  const size_t before = out->size();
  if (TrySimdSelectDense(col, range, pred, like_match, out, ops)) {
    obs::ChargeTransient((out->size() - before) * sizeof(oid));
    return;
  }
  if (col.type() == DataType::kFloat64) {
    const double* data = col.f64().data();
    DispatchF64(pred, [&](auto p) { DenseLoop(data, range.begin, range.end, p, out); });
  } else {
    const int64_t* data = col.i64().data();
    DispatchI64(pred, like_match,
                [&](auto p) { DenseLoop(data, range.begin, range.end, p, out); });
  }
  obs::ChargeTransient((out->size() - before) * sizeof(oid));
}

void SelectCandidates(const Column& col, RowRange range, const Predicate& pred,
                      const std::vector<uint8_t>* like_match,
                      const std::vector<oid>& candidates, std::vector<oid>* out,
                      uint64_t* random_accesses, const simd::SimdOps* ops) {
  SelectCandidatesSpan(col, range, pred, like_match, candidates.data(),
                       candidates.size(), out, random_accesses, ops);
}

void SelectCandidatesSpan(const Column& col, RowRange range,
                          const Predicate& pred,
                          const std::vector<uint8_t>* like_match,
                          const oid* ids, size_t n, std::vector<oid>* out,
                          uint64_t* random_accesses, const simd::SimdOps* ops) {
  if (range.size() == 0) return;  // empty slice: every candidate clips away
  const size_t before = out->size();
  if (TrySimdSelectCandidates(col, range, pred, like_match, ids, n, out,
                              random_accesses, ops)) {
    obs::ChargeTransient((out->size() - before) * sizeof(oid));
    return;
  }
  if (col.type() == DataType::kFloat64) {
    const double* data = col.f64().data();
    DispatchF64(pred, [&](auto p) {
      CandidateLoop(data, ids, n, range, p, out, random_accesses);
    });
  } else {
    const int64_t* data = col.i64().data();
    DispatchI64(pred, like_match, [&](auto p) {
      CandidateLoop(data, ids, n, range, p, out, random_accesses);
    });
  }
  obs::ChargeTransient((out->size() - before) * sizeof(oid));
}

Status GatherRows(const Column& col, const std::vector<oid>& ids,
                  RowRange range, bool sliced, AlignPolicy align,
                  std::vector<oid>* head, ValueVec* values,
                  const simd::SimdOps* ops) {
  return GatherRowsSpan(col, ids.data(), ids.size(), range, sliced, align,
                        head, values, ops);
}

Status GatherRowsSpan(const Column& col, const oid* ids, size_t n,
                      RowRange range, bool sliced, AlignPolicy align,
                      std::vector<oid>* head, ValueVec* values,
                      const simd::SimdOps* ops) {
  if (sliced && align == AlignPolicy::kStrict) {
    APQ_RETURN_NOT_OK(StrictCheckIds(col, ids, n, range));
    sliced = false;  // all ids verified in-slice: take the unclipped gather
  } else {
    APQ_RETURN_NOT_OK(BoundsCheckIds(col, ids, n));
  }
  const size_t before =
      col.type() == DataType::kFloat64 ? values->f64.size() : values->i64.size();
  if (col.type() == DataType::kFloat64) {
    if (sliced) GatherClipped(col.f64().data(), ids, n, range, head, &values->f64);
    else GatherAll(col.f64().data(), ids, n, head, &values->f64, ops);
  } else {
    if (sliced) GatherClipped(col.i64().data(), ids, n, range, head, &values->i64);
    else GatherAll(col.i64().data(), ids, n, head, &values->i64, ops);
  }
  const size_t after =
      col.type() == DataType::kFloat64 ? values->f64.size() : values->i64.size();
  obs::ChargeTransient((after - before) * (sizeof(int64_t) + sizeof(oid)));
  return Status::OK();
}

Status GatherRowsAt(const Column& col, const oid* ids, size_t n,
                    RowRange range, bool strict_sliced, oid* head_dst,
                    ValueVec* values, uint64_t offset,
                    const simd::SimdOps* ops) {
  if (strict_sliced) {
    APQ_RETURN_NOT_OK(StrictCheckIds(col, ids, n, range));
  } else {
    APQ_RETURN_NOT_OK(BoundsCheckIds(col, ids, n));
  }
  if (col.type() == DataType::kFloat64) {
    GatherAt(col.f64().data(), ids, n, head_dst, values->f64.data() + offset,
             ops);
  } else {
    GatherAt(col.i64().data(), ids, n, head_dst, values->i64.data() + offset,
             ops);
  }
  // The destination was pre-sized by the caller; record this task's span of
  // it so per-morsel gathers surface in the peak like the span path does.
  obs::ChargeTransient(n * (sizeof(int64_t) + sizeof(oid)));
  return Status::OK();
}

}  // namespace apq
