// Hash index over a column's int64 values, used by the hash-join build side.
//
// Like MonetDB's BAT hashes, indexes are built lazily and cached per column in
// the evaluation context, so parallel join clones probing the same inner share
// one build.
#ifndef APQ_EXEC_HASH_INDEX_H_
#define APQ_EXEC_HASH_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/column.h"
#include "storage/types.h"
#include "util/hash_clock.h"

namespace apq {

/// \brief Open-addressing hash map from int64 key to the first matching row,
/// with a chain for duplicates.
class HashIndex {
 public:
  /// Builds an index over column values in [range.begin, range.end).
  static std::shared_ptr<HashIndex> Build(const Column& column, RowRange range);

  /// Appends all rows whose key equals `key` to `out`.
  void Probe(int64_t key, std::vector<oid>* out) const;

  /// First row matching `key`, or kInvalidOid.
  oid ProbeFirst(int64_t key) const;

  uint64_t num_keys() const { return num_entries_; }
  uint64_t byte_size() const {
    return buckets_.size() * sizeof(uint64_t) + next_.size() * sizeof(uint32_t);
  }

 private:
  static uint64_t Mix(int64_t key) { return MixHash64(key); }

  // buckets_ maps hash slot -> 1 + local row offset (0 = empty).
  std::vector<uint32_t> buckets_;
  std::vector<uint32_t> next_;  // chain: local row offset -> 1 + next offset
  const Column* column_ = nullptr;
  RowRange range_;
  uint64_t mask_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace apq

#endif  // APQ_EXEC_HASH_INDEX_H_
