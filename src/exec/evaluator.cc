#include "exec/evaluator.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <unordered_map>

#include "exec/agg/parallel_agg.h"
#include "exec/kernels.h"
#include "exec/sort/merge.h"
#include "obs/query_log.h"
#include "obs/resource_tracker.h"
#include "util/hash_clock.h"

// CMake stamps the project version in; a bare compile (e.g. an IDE index
// pass) still builds.
#ifndef APQ_VERSION
#define APQ_VERSION "dev"
#endif

namespace apq {

void RegisterBuildInfo(simd::SimdLevel level) {
  static const bool once = [level] {
#ifdef NDEBUG
    const char* build = "release";
#else
    const char* build = "debug";
#endif
    obs::MetricsRegistry::Global()
        .GetGauge(std::string("apq_build_info{version=\"") + APQ_VERSION +
                  "\",simd=\"" + simd::LevelName(level) + "\",build=\"" +
                  build + "\"}")
        ->Set(1);
    return true;
  }();
  (void)once;
}

namespace {

bool EvalPredI64(const Predicate& p, int64_t v) {
  switch (p.kind) {
    case Predicate::Kind::kNone: return true;
    case Predicate::Kind::kRangeI64: return v >= p.lo && v <= p.hi;
    case Predicate::Kind::kEqI64: return v == p.lo;
    default: return false;
  }
}

ValueVec MakeVecLike(const Column& col) {
  ValueVec v;
  v.type = col.type();
  if (col.type() == DataType::kString) v.dict = &col;
  return v;
}

void GatherInto(const Column& col, oid row, ValueVec* vals) {
  if (col.type() == DataType::kFloat64) {
    vals->f64.push_back(col.f64()[row]);
  } else {
    vals->i64.push_back(col.i64()[row]);
  }
}

// Applies a sort permutation to (values, head): the result holds values[p]
// (and head[p], when head is non-null) for each p in perm, in perm order.
void GatherPermuted(const ValueVec& values, const std::vector<oid>* head,
                    const std::vector<uint64_t>& perm, Intermediate* result) {
  result->kind = Intermediate::Kind::kValues;
  result->values.type = values.type;
  result->values.dict = values.dict;
  result->values.Reserve(perm.size());
  if (head != nullptr) result->head.reserve(perm.size());
  for (uint64_t i : perm) {
    if (values.is_f64()) result->values.f64.push_back(values.f64[i]);
    else result->values.i64.push_back(values.i64[i]);
    if (head != nullptr) result->head.push_back((*head)[i]);
  }
}

Status InputSlot(const std::vector<Intermediate>& slots,
                 const std::vector<uint8_t>& done, int id,
                 const Intermediate** out) {
  if (id < 0 || id >= static_cast<int>(slots.size()) || !done[id]) {
    return Status::Internal("input X_" + std::to_string(id) + " not evaluated");
  }
  *out = &slots[id];
  return Status::OK();
}

// CI and stress runs force morsel execution onto every kernels-path query
// without touching call sites. Returns 0 when unset/off, 1 when set (keep the
// configured morsel size), or a row count when the variable carries one
// (APQ_FORCE_MORSELS=4096 — small enough that unit-test tables split too).
// Anything that does not parse as a sane row count is rejected with a
// one-line warning rather than silently becoming an undefined morsel size.
uint64_t ForcedMorselRowsFromEnv() {
  // A morsel bigger than this could only mean a typo (it exceeds any table
  // this repository can hold in memory) or a negative value pushed through
  // strtoull's modular wrap.
  constexpr unsigned long long kMaxSaneMorselRows = 1ull << 32;
  static const uint64_t forced = [] {
    const char* v = std::getenv("APQ_FORCE_MORSELS");
    if (v == nullptr || v[0] == '\0') return uint64_t{0};
    char* end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') {
      std::fprintf(stderr,
                   "apq: ignoring APQ_FORCE_MORSELS=\"%s\": not a number "
                   "(use 1 to force, or a rows-per-morsel count)\n",
                   v);
      return uint64_t{0};
    }
    if (errno == ERANGE || n > kMaxSaneMorselRows) {
      std::fprintf(stderr,
                   "apq: ignoring APQ_FORCE_MORSELS=\"%s\": absurd morsel "
                   "size (max %llu rows)\n",
                   v, kMaxSaneMorselRows);
      return uint64_t{0};
    }
    if (n == 0) {
      std::fprintf(stderr,
                   "apq: APQ_FORCE_MORSELS=\"%s\" parses to 0; morsel "
                   "execution is NOT forced\n",
                   v);
      return uint64_t{0};
    }
    // 1 forces with the configured size, larger values force that many rows
    // per morsel.
    return static_cast<uint64_t>(n);
  }();
  return forced;
}

// Per-op-kind tuple-flow counters (every tier funnels through ExecNode, so
// these cover kernels, morsels, parallel agg/sort/probe and SIMD alike).
// Resolved once per process; the per-run update is one relaxed add per
// operator, far off the hot path.
struct TupleFlow {
  obs::Counter* in = nullptr;
  obs::Counter* out = nullptr;
};

const TupleFlow& TupleFlowFor(OpKind k) {
  constexpr size_t kKinds = static_cast<size_t>(OpKind::kResult) + 1;
  static const std::array<TupleFlow, kKinds>* flows = [] {
    auto* f = new std::array<TupleFlow, kKinds>();
    auto& reg = obs::MetricsRegistry::Global();
    for (size_t i = 0; i < kKinds; ++i) {
      const char* name = OpKindName(static_cast<OpKind>(i));
      (*f)[i].in = reg.GetCounter(
          std::string("apq_op_tuples_in_total{op=\"") + name + "\"}");
      (*f)[i].out = reg.GetCounter(
          std::string("apq_op_tuples_out_total{op=\"") + name + "\"}");
    }
    return f;
  }();
  return (*flows)[static_cast<size_t>(k)];
}

}  // namespace

#define APQ_INPUT_OF(ctx, id, out) \
  APQ_RETURN_NOT_OK(InputSlot(*(ctx).slots, *(ctx).done, (id), (out)))

bool Evaluator::MorselsEnabled() const {
  return options_.use_kernels &&
         (options_.use_morsels || ForcedMorselRowsFromEnv() != 0);
}

bool Evaluator::ParallelAggEnabled() const {
  return MorselsEnabled() &&
         (options_.use_parallel_agg || ForcedMorselRowsFromEnv() != 0);
}

bool Evaluator::ParallelSortEnabled() const {
  return MorselsEnabled() &&
         (options_.use_parallel_sort || ForcedMorselRowsFromEnv() != 0);
}

uint64_t Evaluator::EffectiveMorselRows() const {
  const uint64_t forced = ForcedMorselRowsFromEnv();
  return forced > 1 ? forced : options_.morsel_rows;
}

uint64_t Evaluator::ForcedEnvMorselRows() { return ForcedMorselRowsFromEnv(); }

uint64_t Evaluator::MorselRowsForNode(int node_id) const {
  if (options_.adaptive_morsel_rows && !adaptive_rows_.empty()) {
    auto it = adaptive_rows_.find(node_id);
    if (it != adaptive_rows_.end() && it->second > 0) return it->second;
  }
  return EffectiveMorselRows();
}

const std::shared_ptr<MorselScheduler>& Evaluator::EnsureMorselScheduler() {
  if (!morsel_sched_) {
    morsel_sched_ = std::make_shared<MorselScheduler>(options_.morsel_workers);
    morsel_sched_owned_ = true;
  }
  return morsel_sched_;
}

size_t Evaluator::MorselSelectDense(const Column& col, RowRange range,
                                    const Predicate& pred,
                                    const std::vector<uint8_t>* like_match,
                                    Intermediate* result, OpMetrics* m) {
  MorselSource src(range, MorselRowsForNode(m->node_id));
  const size_t nm = src.num_morsels();
  if (nm < 2) return 0;  // one morsel = whole column; skip the detour

  // Each morsel selects into its own fragment; concatenation in morsel order
  // reproduces the whole-column scan bit-for-bit (SelectDense appends row ids
  // in row order within its subrange).
  std::vector<std::vector<oid>> frags(nm);
  std::vector<MorselMetrics> mm(nm);
  EnsureMorselScheduler()->ParallelFor(nm, [&](size_t i, int worker) {
    const Morsel ms = src.morsel(i);
    // Sampled by deterministic morsel index, so the trace never depends on
    // which worker ran the morsel (determinism) and hot loops pay at most
    // one span per kMorselSampleMask+1 tasks.
    const bool tr =
        obs::TraceEnabled() && (i & obs::kMorselSampleMask) == 0;
    const uint64_t tt0 = tr ? obs::TraceTicks() : 0;
    const double t0 = NowNs();
    SelectDense(col, RowRange{ms.begin, ms.end}, pred, like_match, &frags[i],
                simd_ops_);
    mm[i] = MorselMetrics{ms.size(), frags[i].size(), NowNs() - t0, worker,
                          ms.begin, ms.end};
    if (tr) {
      obs::EmitSpan(obs::SpanKind::kMorsel, "morsel-select", tt0,
                    obs::TraceTicks(), m->node_id, static_cast<int64_t>(i),
                    static_cast<int64_t>(frags[i].size()));
    }
  });

  size_t total = 0;
  for (const auto& f : frags) total += f.size();
  result->rowids.reserve(result->rowids.size() + total);
  for (const auto& f : frags) {
    result->rowids.insert(result->rowids.end(), f.begin(), f.end());
  }
  m->morsels = std::move(mm);
  return nm;
}

size_t Evaluator::MorselSelectCandidates(const Column& col, RowRange range,
                                         const Predicate& pred,
                                         const std::vector<uint8_t>* like_match,
                                         const std::vector<oid>& candidates,
                                         Intermediate* result, OpMetrics* m) {
  MorselSource src(0, candidates.size(), MorselRowsForNode(m->node_id));
  const size_t nm = src.num_morsels();
  if (nm < 2) return 0;

  std::vector<std::vector<oid>> frags(nm);
  std::vector<uint64_t> accesses(nm, 0);
  std::vector<MorselMetrics> mm(nm);
  EnsureMorselScheduler()->ParallelFor(nm, [&](size_t i, int worker) {
    const Morsel ms = src.morsel(i);
    const bool tr =
        obs::TraceEnabled() && (i & obs::kMorselSampleMask) == 0;
    const uint64_t tt0 = tr ? obs::TraceTicks() : 0;
    const double t0 = NowNs();
    SelectCandidatesSpan(col, range, pred, like_match,
                         candidates.data() + ms.begin, ms.size(), &frags[i],
                         &accesses[i], simd_ops_);
    // Ascending candidate span; a span crossing this clone's slice boundary
    // reports no domain (see MorselGather's domain note — the tuple counts
    // would be diluted by clip-only candidates).
    uint64_t db = candidates[ms.begin];
    uint64_t de = candidates[ms.end - 1] + 1;
    if (db < range.begin || de > range.end) db = de = 0;
    mm[i] = MorselMetrics{ms.size(), frags[i].size(), NowNs() - t0, worker,
                          db, de};
    if (tr) {
      obs::EmitSpan(obs::SpanKind::kMorsel, "morsel-select-cand", tt0,
                    obs::TraceTicks(), m->node_id, static_cast<int64_t>(i),
                    static_cast<int64_t>(frags[i].size()));
    }
  });

  size_t total = 0;
  for (const auto& f : frags) total += f.size();
  result->rowids.reserve(result->rowids.size() + total);
  for (size_t i = 0; i < nm; ++i) {
    result->rowids.insert(result->rowids.end(), frags[i].begin(),
                          frags[i].end());
    m->random_accesses += accesses[i];
  }
  m->morsels = std::move(mm);
  return nm;
}

Status Evaluator::MorselGather(const Column& col, const std::vector<oid>& ids,
                               RowRange range, bool sliced, AlignPolicy align,
                               Intermediate* result, OpMetrics* m, bool* ran) {
  *ran = false;
  MorselSource src(0, ids.size(), MorselRowsForNode(m->node_id));
  const size_t nm = src.num_morsels();
  if (nm < 2) return Status::OK();
  *ran = true;
  // Candidate row ids from selects are ascending, so [first, last+1) is the
  // base-row domain this morsel covers; the skew-aware mutator validates
  // monotonicity before using it (pairs-fed id lists may be unsorted). A
  // sliced clone only owns its slice's share of the candidate span — a
  // morsel whose span crosses the slice boundary (fully or partially) has
  // its tuple counts diluted by clip-only candidates, so its domain is
  // reported unknown and the operator's tuple-skew signal is withheld
  // rather than mistaking clipping for skew.
  auto domain = [&ids, &range, sliced](const Morsel& ms) {
    uint64_t db = ids[ms.begin];
    uint64_t de = ids[ms.end - 1] + 1;
    if (sliced && (db < range.begin || de > range.end)) {
      return std::pair<uint64_t, uint64_t>{0, 0};
    }
    return std::pair<uint64_t, uint64_t>{db, de};
  };

  // Without kAdjust clipping every id yields exactly one output (strict
  // slices validate, they don't drop), so morsel i owns exactly the output
  // span [ms.begin, ms.end): workers gather straight into the pre-sized
  // result — no fragment vectors, no second concatenation pass.
  if (!(sliced && align == AlignPolicy::kAdjust)) {
    const size_t hbase = result->head.size();
    const uint64_t vbase = result->values.size();
    result->head.resize(hbase + ids.size());
    if (result->values.is_f64()) {
      result->values.f64.resize(vbase + ids.size());
    } else {
      result->values.i64.resize(vbase + ids.size());
    }
    std::vector<Status> statuses(nm);
    std::vector<MorselMetrics> direct_mm(nm);
    EnsureMorselScheduler()->ParallelFor(nm, [&](size_t i, int worker) {
      const Morsel ms = src.morsel(i);
      const bool tr =
          obs::TraceEnabled() && (i & obs::kMorselSampleMask) == 0;
      const uint64_t tt0 = tr ? obs::TraceTicks() : 0;
      const double t0 = NowNs();
      statuses[i] = GatherRowsAt(col, ids.data() + ms.begin, ms.size(), range,
                                 /*strict_sliced=*/sliced,
                                 result->head.data() + hbase + ms.begin,
                                 &result->values, vbase + ms.begin, simd_ops_);
      const auto [db, de] = domain(ms);
      direct_mm[i] =
          MorselMetrics{ms.size(), ms.size(), NowNs() - t0, worker, db, de};
      if (tr) {
        obs::EmitSpan(obs::SpanKind::kMorsel, "morsel-gather", tt0,
                      obs::TraceTicks(), m->node_id, static_cast<int64_t>(i),
                      static_cast<int64_t>(ms.size()));
      }
    });
    // Lowest failing morsel = input-order first offender, matching the
    // whole-list error; the partially written result is discarded upstream.
    for (const auto& st : statuses) {
      if (!st.ok()) return st;
    }
    m->morsels = std::move(direct_mm);
    return Status::OK();
  }

  struct Frag {
    std::vector<oid> head;
    ValueVec values;
    Status status = Status::OK();
  };
  std::vector<Frag> frags(nm);
  for (auto& f : frags) {
    f.values.type = result->values.type;
    f.values.dict = result->values.dict;
  }
  std::vector<MorselMetrics> mm(nm);
  EnsureMorselScheduler()->ParallelFor(nm, [&](size_t i, int worker) {
    const Morsel ms = src.morsel(i);
    const bool tr =
        obs::TraceEnabled() && (i & obs::kMorselSampleMask) == 0;
    const uint64_t tt0 = tr ? obs::TraceTicks() : 0;
    const double t0 = NowNs();
    frags[i].status =
        GatherRowsSpan(col, ids.data() + ms.begin, ms.size(), range, sliced,
                       align, &frags[i].head, &frags[i].values, simd_ops_);
    const auto [db, de] = domain(ms);
    mm[i] = MorselMetrics{ms.size(), frags[i].values.size(), NowNs() - t0,
                          worker, db, de};
    if (tr) {
      obs::EmitSpan(obs::SpanKind::kMorsel, "morsel-gather", tt0,
                    obs::TraceTicks(), m->node_id, static_cast<int64_t>(i),
                    static_cast<int64_t>(frags[i].values.size()));
    }
  });

  // Errors surface from the lowest-indexed failing morsel: morsel order is
  // input order, so this is the same first-offender error the whole-list
  // kernel (and the scalar interpreter) reports.
  for (const auto& f : frags) {
    if (!f.status.ok()) return f.status;
  }
  size_t total = 0;
  for (const auto& f : frags) total += f.head.size();
  result->head.reserve(result->head.size() + total);
  result->values.Reserve(result->values.size() + total);
  for (auto& f : frags) {
    result->head.insert(result->head.end(), f.head.begin(), f.head.end());
    result->values.Append(f.values);
  }
  m->morsels = std::move(mm);
  return Status::OK();
}

size_t Evaluator::MorselGroupBy(const int64_t* keys, uint64_t n,
                                Intermediate* result, OpMetrics* m) {
  ParallelAggOptions o;
  o.morsel_rows = MorselRowsForNode(m->node_id);
  o.scheduler = EnsureMorselScheduler().get();
  std::vector<MorselMetrics> mm;
  const size_t nm = ParallelGroupBy(keys, n, o, &result->group_ids,
                                    &result->group_keys.i64, &mm);
  if (nm > 0) m->morsels = std::move(mm);
  return nm;
}

size_t Evaluator::MorselGroupedAgg(const int64_t* gids, uint64_t n,
                                   const ValueVec* vals, AggFn fn,
                                   uint64_t ngroups, Intermediate* result) {
  const double* vf = nullptr;
  const int64_t* vi = nullptr;
  if (vals != nullptr) {
    if (vals->is_f64()) {
      vf = vals->f64.data();
    } else {
      vi = vals->i64.data();
    }
  }
  ParallelAggOptions o;
  o.morsel_rows = EffectiveMorselRows();
  o.scheduler = EnsureMorselScheduler().get();
  o.simd = simd_ops_;
  // No per-morsel metrics here: a morsel's output is a partial over an
  // unknowable share of the ngroups output rows, so per-morsel tuple counts
  // could not sum to the operator totals the profiler relies on.
  return ParallelGroupedAgg(gids, n, vf, vi, fn, ngroups, o,
                            result->agg_vals.data(),
                            result->agg_counts.data());
}

size_t Evaluator::MorselSortPerm(const SortKeys& keys, uint64_t n,
                                 bool descending, uint64_t limit,
                                 std::vector<uint64_t>* perm, OpMetrics* m) {
  ParallelSortOptions o;
  o.morsel_rows = MorselRowsForNode(m->node_id);
  o.scheduler = EnsureMorselScheduler().get();
  o.limit = limit;
  std::vector<std::vector<uint64_t>> runs;
  std::vector<MorselMetrics> mm;
  const size_t nm = BuildSortRuns(keys, n, o, descending, &runs, &mm);
  if (nm == 0) return 0;

  std::vector<RunSpan> spans(runs.size());
  uint64_t total = 0;
  for (size_t r = 0; r < runs.size(); ++r) {
    spans[r] = RunSpan{runs[r].data(), runs[r].size()};
    total += runs[r].size();
  }
  // The run tasks charged their fragments durably; adopt the sum so one
  // release covers them when the merge is done (error-path safe).
  obs::ScopedMemCharge guard;
  guard.AssumeCharged(total * sizeof(uint64_t));
  // Bounded top-N: the runs were clipped to their limit smallest, so the
  // merge sees at most runs x limit candidates and emits only limit rows.
  const uint64_t out_len = limit > 0 && limit < total ? limit : total;
  perm->resize(out_len);
  guard.Add(out_len * sizeof(uint64_t));
  ParallelMergeRuns(spans, SortKeyLess{keys, descending}, o, out_len,
                    perm->data(), &mm);
  m->morsels = std::move(mm);
  return nm;
}

size_t Evaluator::MorselJoinProbe(
    uint64_t n,
    const std::function<void(uint64_t, uint64_t, std::vector<oid>*,
                             std::vector<oid>*)>& probe_span,
    Intermediate* result, OpMetrics* m) {
  MorselSource src(0, n, MorselRowsForNode(m->node_id));
  const size_t nm = src.num_morsels();
  if (nm < 2) return 0;

  // Per-probe match order is the hash chain order of one shared (read-only)
  // build, so concatenating per-morsel pair fragments in morsel order
  // reproduces the sequential probe loop bit-for-bit.
  struct Frag {
    std::vector<oid> l, r;
  };
  std::vector<Frag> frags(nm);
  std::vector<MorselMetrics> mm(nm);
  EnsureMorselScheduler()->ParallelFor(nm, [&](size_t i, int worker) {
    const Morsel ms = src.morsel(i);
    const bool tr =
        obs::TraceEnabled() && (i & obs::kMorselSampleMask) == 0;
    const uint64_t tt0 = tr ? obs::TraceTicks() : 0;
    const double t0 = NowNs();
    probe_span(ms.begin, ms.end, &frags[i].l, &frags[i].r);
    mm[i] = MorselMetrics{ms.size(), frags[i].l.size(), NowNs() - t0, worker};
    if (tr) {
      obs::EmitSpan(obs::SpanKind::kMorsel, "morsel-probe", tt0,
                    obs::TraceTicks(), m->node_id, static_cast<int64_t>(i),
                    static_cast<int64_t>(frags[i].l.size()));
    }
  });

  size_t total = 0;
  for (const auto& f : frags) total += f.l.size();
  result->rowids.reserve(result->rowids.size() + total);
  result->rrowids.reserve(result->rrowids.size() + total);
  for (const auto& f : frags) {
    result->rowids.insert(result->rowids.end(), f.l.begin(), f.l.end());
    result->rrowids.insert(result->rrowids.end(), f.r.begin(), f.r.end());
  }
  m->morsels = std::move(mm);
  return nm;
}

std::shared_ptr<HashIndex> Evaluator::GetOrBuildHash(const Column& column) {
  // hash_mu_ only covers the map lookup/insert; the build itself runs under
  // the slot's once_flag. Concurrent first builds of *different* inners
  // therefore proceed in parallel, while clones racing for the *same* inner
  // still share one build (the sharing MonetDB's BAT hash gives), with
  // late-comers blocking in call_once until the winner finishes.
  std::shared_ptr<HashSlot> slot;
  {
    std::lock_guard<std::mutex> lock(hash_mu_);
    auto& entry = hash_cache_[&column];
    if (!entry) entry = std::make_shared<HashSlot>();
    slot = entry;
  }
  std::call_once(slot->built, [&] {
    slot->index = HashIndex::Build(column, column.full_range());
    // The index outlives this query (BAT-style cross-query cache): surface
    // the build in the builder's peak, then park the steady-state bytes in
    // the process-wide cache gauge instead of leaving per-query drift.
    obs::ChargeTransient(slot->index->byte_size());
    obs::AddHashCacheBytes(static_cast<int64_t>(slot->index->byte_size()));
    std::lock_guard<std::mutex> lock(hash_mu_);
    hash_builds_.emplace_back(&column, slot->index->num_keys());
  });
  return slot->index;
}

Status Evaluator::Execute(const QueryPlan& plan, EvalResult* out) {
  APQ_RETURN_NOT_OK(plan.Validate());
  out->intermediates.clear();
  out->metrics.clear();
  auto order_or = plan.TopologicalOrder();
  if (!order_or.ok()) return order_or.status();
  const std::vector<int>& order = order_or.ValueOrDie();

  std::vector<Intermediate> slots(plan.num_nodes());
  std::vector<uint8_t> done(plan.num_nodes(), 0);
  std::vector<OpMetrics> metrics(order.size());

  // Create the morsel scheduler on this thread before nodes fan out to pool
  // workers; lazy creation inside a worker would race.
  if (MorselsEnabled()) EnsureMorselScheduler();

  {
    std::lock_guard<std::mutex> lock(hash_mu_);
    hash_builds_.clear();
  }
  // One span per plan execution: the nesting parent of every operator span
  // on this thread (query -> [adaptive run ->] execute -> operator).
  // a1 = the engine's query id, correlating this span with
  // /debug/profile/<id> (0 outside an Engine query).
  obs::SpanScope exec_span(obs::SpanKind::kRun, "execute",
                           static_cast<int64_t>(order.size()),
                           static_cast<int64_t>(obs::CurrentQueryId()));
  double t0 = NowNs();
  Status exec_st =
      options_.num_threads > 1
          ? ExecuteParallel(plan, order, &slots, &done, &metrics)
          : ExecuteSerial(plan, order, &slots, &done, &metrics);
  // Uncharge every materialized slot (ExecNode charged each completed
  // node's output durable) before slots are moved out — on the error path
  // too, so a failed query cannot leave drift behind.
  for (int id : order) {
    if (done[id]) obs::UnchargeBytes(slots[id].ByteSize());
  }
  APQ_RETURN_NOT_OK(exec_st);
  out->wall_ns = NowNs() - t0;

  // Attribute hash-build cost to the topologically-first join over each
  // built inner, independent of which worker actually built it.
  {
    std::lock_guard<std::mutex> lock(hash_mu_);
    for (const auto& [col, rows] : hash_builds_) {
      for (size_t i = 0; i < order.size(); ++i) {
        const PlanNode& node = plan.node(order[i]);
        if (node.kind == OpKind::kJoin && node.column2 == col) {
          metrics[i].hash_build_rows += rows;
          break;
        }
      }
    }
    hash_builds_.clear();
  }

  out->metrics = std::move(metrics);
  // Tuple-flow accounting: once per run over the finished metrics, never in
  // an operator or morsel loop.
  static obs::Counter* const queries_total =
      obs::MetricsRegistry::Global().GetCounter("apq_queries_total");
  queries_total->Inc();
  for (const OpMetrics& m : out->metrics) {
    const TupleFlow& tf = TupleFlowFor(m.kind);
    tf.in->Inc(m.tuples_in);
    tf.out->Inc(m.tuples_out);
  }
  const PlanNode& res = plan.node(plan.result_id());
  out->result = slots[res.inputs[0]];
  for (int id : order) {
    out->intermediates.emplace(id, std::move(slots[id]));
  }
  return Status::OK();
}

Status Evaluator::ExecuteSerial(const QueryPlan& plan,
                                const std::vector<int>& order,
                                std::vector<Intermediate>* slots,
                                std::vector<uint8_t>* done,
                                std::vector<OpMetrics>* metrics) {
  ExecContext ctx{slots, done};
  for (size_t i = 0; i < order.size(); ++i) {
    int id = order[i];
    const PlanNode& node = plan.node(id);
    OpMetrics& m = (*metrics)[i];
    m.node_id = id;
    m.kind = node.kind;
    APQ_RETURN_NOT_OK(ExecNode(plan, node, ctx, &(*slots)[id], &m));
    (*done)[id] = 1;
  }
  return Status::OK();
}

Status Evaluator::ExecuteParallel(const QueryPlan& plan,
                                  const std::vector<int>& order,
                                  std::vector<Intermediate>* slots,
                                  std::vector<uint8_t>* done,
                                  std::vector<OpMetrics>* metrics) {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.num_threads);

  const int n = plan.num_nodes();
  // Dataflow bookkeeping over reachable nodes. Duplicate inputs (e.g. a map
  // of x with itself) contribute one pending count per edge.
  std::vector<int> topo_pos(n, -1);
  for (size_t i = 0; i < order.size(); ++i) topo_pos[order[i]] = static_cast<int>(i);
  std::vector<std::vector<int>> consumers(n);
  std::vector<int> pending(n, 0);
  for (int id : order) {
    for (int in : plan.node(id).inputs) {
      consumers[in].push_back(id);
      ++pending[id];
    }
  }

  struct Control {
    std::mutex mu;
    std::condition_variable cv;
    Status error = Status::OK();
    bool failed = false;
    size_t remaining = 0;   // reachable nodes not yet completed
    int in_flight = 0;      // tasks submitted but not finished
  } ctl;
  ctl.remaining = order.size();

  ExecContext ctx{slots, done};

  // Pool workers have no query-id scope of their own; carry the submitting
  // thread's id across so their charges and bills land on the right query.
  const uint64_t query_id = obs::CurrentQueryId();

  // run_node executes one ready node on a worker, then (under the control
  // lock) retires it and collects consumers that became ready. All cross-
  // thread visibility of slots/done flows through ctl.mu: a consumer is only
  // scheduled after its producers published their slots under the lock.
  std::function<void(int)> schedule;
  std::function<void(int)> run_node = [&](int id) {
    obs::QueryIdScope query_scope(query_id);
    bool skip;
    {
      std::lock_guard<std::mutex> lock(ctl.mu);
      skip = ctl.failed;
    }
    Status st = Status::OK();
    Intermediate result;
    OpMetrics m;
    if (!skip) {
      const PlanNode& node = plan.node(id);
      m.node_id = id;
      m.kind = node.kind;
      st = ExecNode(plan, node, ctx, &result, &m);
    }
    std::vector<int> ready;
    {
      std::lock_guard<std::mutex> lock(ctl.mu);
      --ctl.in_flight;
      if (!skip && st.ok()) {
        (*slots)[id] = std::move(result);
        (*metrics)[topo_pos[id]] = m;
        (*done)[id] = 1;
        --ctl.remaining;
        if (!ctl.failed) {
          for (int c : consumers[id]) {
            if (--pending[c] == 0) ready.push_back(c);
          }
        }
      } else if (!skip && !ctl.failed) {
        ctl.failed = true;
        ctl.error = st;
      }
      ctl.in_flight += static_cast<int>(ready.size());
      // Notify while holding the lock: the waiter owns ctl's stack frame and
      // may destroy it the moment it observes the predicate, so an unlocked
      // notify could touch a dead condition_variable.
      if ((ctl.remaining == 0 || ctl.failed) && ctl.in_flight == 0) {
        ctl.cv.notify_all();
      }
    }
    for (int c : ready) schedule(c);
  };
  schedule = [&](int id) { pool_->Submit([&run_node, id] { run_node(id); }); };

  std::vector<int> roots;
  for (int id : order) {
    if (pending[id] == 0) roots.push_back(id);
  }
  {
    std::lock_guard<std::mutex> lock(ctl.mu);
    ctl.in_flight = static_cast<int>(roots.size());
  }
  for (int id : roots) schedule(id);

  std::unique_lock<std::mutex> lock(ctl.mu);
  ctl.cv.wait(lock, [&] {
    return (ctl.remaining == 0 || ctl.failed) && ctl.in_flight == 0;
  });
  return ctl.failed ? ctl.error : Status::OK();
}

Status Evaluator::ExecNode(const QueryPlan& plan, const PlanNode& node,
                           const ExecContext& ctx, Intermediate* result,
                           OpMetrics* m) {
  // One span per operator execution; OpKindName returns static-storage
  // strings, as the ring buffer requires. Tuple counts are attached after
  // the operator ran.
  obs::SpanScope span(obs::SpanKind::kOperator, OpKindName(node.kind),
                      node.id);
  // Per-operator resource attribution (obs/resource_tracker.h): charges and
  // task bills made while this node runs — on this thread or on scheduler
  // workers, which re-install the block — land in `acct`. The block lives on
  // this frame; ParallelFor drains every task before returning, so no
  // billing outlives it.
  obs::OpAcct acct;
  obs::OpAcctScope acct_scope(obs::AccountingEnabled() ? &acct : nullptr);
  const double t0 = NowNs();
  Status st = ExecNodeInner(plan, node, ctx, result, m);
  const double node_wall = NowNs() - t0;
  if (st.ok()) {
    // The node's materialized output stays live until the Execute-level
    // sweep uncharges every slot after the run.
    obs::ChargeBytes(result->ByteSize());
  }
  if (obs::AccountingEnabled()) {
    m->peak_bytes = acct.peak_bytes.load(std::memory_order_relaxed);
    m->queue_wait_ns = acct.queue_wait_ns.load(std::memory_order_relaxed);
    const uint64_t task_cpu = acct.cpu_ns.load(std::memory_order_relaxed);
    if (acct.tasks.load(std::memory_order_relaxed) > 0) {
      // Morselized: summed task time, billed to the query by the scheduler.
      m->cpu_ns = task_cpu;
    } else {
      // Whole-column: never went through the scheduler, so the node wall IS
      // the cpu — record it and bill the owning query directly.
      m->cpu_ns = static_cast<uint64_t>(node_wall > 0 ? node_wall : 0);
      obs::BillTask(obs::CurrentQueryId(), nullptr,
                    static_cast<double>(m->cpu_ns), 0);
    }
  }
  span.set_args(node.id, static_cast<int64_t>(m->tuples_in),
                static_cast<int64_t>(m->tuples_out));
  return st;
}

Status Evaluator::ExecNodeInner(const QueryPlan& plan, const PlanNode& node,
                                const ExecContext& ctx, Intermediate* result,
                                OpMetrics* m) {
  (void)plan;
  switch (node.kind) {
    case OpKind::kSelect: return ExecSelect(node, ctx, result, m);
    case OpKind::kFetchJoin: return ExecFetchJoin(node, ctx, result, m);
    case OpKind::kJoin: return ExecJoin(node, ctx, result, m);
    case OpKind::kGroupBy: return ExecGroupBy(node, ctx, result, m);
    case OpKind::kAggregate: return ExecAggregate(node, ctx, result, m);
    case OpKind::kAggrMerge: return ExecAggrMerge(node, ctx, result, m);
    case OpKind::kExchangeUnion: return ExecUnion(node, ctx, result, m);
    case OpKind::kMap: return ExecMap(node, ctx, result, m);
    case OpKind::kSort:
    case OpKind::kTopN: return ExecSort(node, ctx, result, m);
    case OpKind::kResult: {
      const Intermediate* in;
      APQ_INPUT_OF(ctx, node.inputs[0], &in);
      *result = *in;
      return Status::OK();
    }
  }
  return Status::Unsupported("unknown op kind");
}

Status Evaluator::ExecSelect(const PlanNode& node, const ExecContext& ctx,
                             Intermediate* result, OpMetrics* m) {
  const Column& col = *node.column;
  RowRange range = node.EffectiveRange();
  result->kind = Intermediate::Kind::kRowIds;
  result->origin = range;

  std::vector<uint8_t> like_match;
  bool is_like = node.pred.kind == Predicate::Kind::kLike;
  if (is_like) {
    if (col.type() != DataType::kString) {
      return Status::InvalidArgument("LIKE on non-string column '" + col.name() +
                                     "'");
    }
    like_match = BuildLikeMatch(col, node.pred);
  }

  // Candidate-list form (algebra.subselect with candidates). Candidate
  // scanning is sequential; the value lookups are random gathers into this
  // clone's slice.
  const Intermediate* in = nullptr;
  if (!node.inputs.empty()) {
    APQ_INPUT_OF(ctx, node.inputs[0], &in);
    if (in->kind != Intermediate::Kind::kRowIds) {
      return Status::InvalidArgument("select candidates must be rowids");
    }
    m->tuples_in = in->rowids.size();
    m->random_working_set = range.size() * DataTypeWidth(col.type());
  } else {
    m->tuples_in = range.size();
  }

  if (options_.use_kernels) {
    // Morsel-driven path first: splits the input across the work-stealing
    // scheduler and concatenates per-morsel fragments in input order. Returns
    // 0 when disabled or when the input fits in a single morsel, in which
    // case the whole-column kernel below runs (identical output either way).
    size_t nm = 0;
    if (MorselsEnabled()) {
      nm = in ? MorselSelectCandidates(col, range, node.pred, &like_match,
                                       in->rowids, result, m)
              : MorselSelectDense(col, range, node.pred, &like_match, result,
                                  m);
    }
    if (nm == 0) {
      if (in) {
        SelectCandidates(col, range, node.pred, &like_match, in->rowids,
                         &result->rowids, &m->random_accesses, simd_ops_);
      } else {
        SelectDense(col, range, node.pred, &like_match, &result->rowids,
                    simd_ops_);
      }
    }
  } else {
    // Scalar reference path: per-row lambda re-dispatching on kind and type.
    bool is_f64 = col.type() == DataType::kFloat64;
    auto test = [&](oid row) -> bool {
      if (is_like) return like_match[col.i64()[row]] != 0;
      if (is_f64) {
        if (node.pred.kind == Predicate::Kind::kRangeF64) {
          double v = col.f64()[row];
          return v >= node.pred.flo && v <= node.pred.fhi;
        }
        return EvalPredI64(node.pred, static_cast<int64_t>(col.f64()[row]));
      }
      if (node.pred.kind == Predicate::Kind::kRangeF64) {
        double v = static_cast<double>(col.i64()[row]);
        return v >= node.pred.flo && v <= node.pred.fhi;
      }
      return EvalPredI64(node.pred, col.i64()[row]);
    };

    if (in) {
      for (oid row : in->rowids) {
        if (!range.Contains(row)) continue;  // boundary clip (Fig 9 adjust)
        ++m->random_accesses;
        if (test(row)) result->rowids.push_back(row);
      }
    } else {
      for (oid row = range.begin; row < range.end; ++row) {
        if (test(row)) result->rowids.push_back(row);
      }
    }
  }
  m->tuples_out = result->rowids.size();
  m->bytes_in = m->tuples_in * DataTypeWidth(col.type());
  m->bytes_out = m->tuples_out * sizeof(oid);
  return Status::OK();
}

Status Evaluator::ExecFetchJoin(const PlanNode& node, const ExecContext& ctx,
                                Intermediate* result, OpMetrics* m) {
  const Column& col = *node.column;
  const Intermediate* in;
  APQ_INPUT_OF(ctx, node.inputs[0], &in);
  RowRange range = node.EffectiveRange();

  const std::vector<oid>* ids = nullptr;
  switch (in->kind) {
    case Intermediate::Kind::kRowIds:
      ids = &in->rowids;
      break;
    case Intermediate::Kind::kPairs:
      ids = (node.fetch_side == FetchSide::kRight) ? &in->rrowids : &in->rowids;
      break;
    default:
      return Status::InvalidArgument("fetchjoin input must be rowids or pairs");
  }

  result->kind = Intermediate::Kind::kValues;
  result->values = MakeVecLike(col);
  result->origin = range;
  m->tuples_in = ids->size();

  // Boundary alignment (paper Figs 9/10): candidate row ids must index into
  // this clone's slice of the fetch target. Under kStrict any out-of-slice id
  // is a misalignment error; under kAdjust the boundaries are clipped and the
  // sibling clones (covering the neighbouring slices) produce the rest.
  bool sliced = node.has_slice;
  if (options_.use_kernels) {
    bool morsels_ran = false;
    if (MorselsEnabled()) {
      APQ_RETURN_NOT_OK(MorselGather(col, *ids, range, sliced, node.align,
                                     result, m, &morsels_ran));
    }
    if (!morsels_ran) {
      APQ_RETURN_NOT_OK(GatherRows(col, *ids, range, sliced, node.align,
                                   &result->head, &result->values, simd_ops_));
    }
  } else {
    result->head.reserve(ids->size());
    result->values.Reserve(ids->size());
    for (oid row : *ids) {
      if (row >= col.size()) {
        return Status::Misaligned("fetchjoin rowid " + std::to_string(row) +
                                  " beyond column '" + col.name() + "' size " +
                                  std::to_string(col.size()));
      }
      if (sliced && !range.Contains(row)) {
        if (node.align == AlignPolicy::kStrict) {
          return Status::Misaligned(
              "fetchjoin rowid " + std::to_string(row) + " outside slice " +
              range.ToString() + " of '" + col.name() + "'");
        }
        continue;  // kAdjust: clip
      }
      result->head.push_back(row);
      GatherInto(col, row, &result->values);
    }
  }
  m->tuples_out = result->values.size();
  // Scanning the candidate list is sequential (tuples_in); only the in-slice
  // candidates cost a random gather into the slice's working set.
  m->random_accesses = result->values.size();
  m->random_working_set = range.size() * DataTypeWidth(col.type());
  m->bytes_in = ids->size() * sizeof(oid);
  m->bytes_out = result->values.size() * 16;
  return Status::OK();
}

Status Evaluator::ExecJoin(const PlanNode& node, const ExecContext& ctx,
                           Intermediate* result, OpMetrics* m) {
  const Column& inner = *node.column2;
  const std::shared_ptr<HashIndex> hash = GetOrBuildHash(inner);
  result->kind = Intermediate::Kind::kPairs;

  // Per-probe matches are appended to the right-side vector by the index;
  // the outer row id is then replicated in one batched fill instead of
  // per-match push_backs.
  auto probe_into = [&hash](int64_t key, oid outer_row, std::vector<oid>* l,
                            std::vector<oid>* r) {
    size_t before = r->size();
    hash->Probe(key, r);
    l->insert(l->end(), r->size() - before, outer_row);
  };
  // Each input shape defines its probe loop once, as a span over input
  // positions [b, e): the morsel-parallel tier (exec/agg) runs it per morsel
  // into ordered pair fragments, and when that declines (input fits one
  // morsel, or the tier is off) the same span runs sequentially over the
  // whole input into the result vectors. One loop body per shape — the
  // parallel and sequential paths cannot diverge.
  auto run_probe = [&](uint64_t n,
                       const std::function<void(uint64_t, uint64_t,
                                                std::vector<oid>*,
                                                std::vector<oid>*)>& span) {
    size_t nm = 0;
    if (ParallelAggEnabled()) nm = MorselJoinProbe(n, span, result, m);
    if (nm == 0) {
      result->rowids.reserve(n);
      result->rrowids.reserve(n);
      span(0, n, &result->rowids, &result->rrowids);
    }
  };

  if (!node.inputs.empty()) {
    const Intermediate* in;
    APQ_INPUT_OF(ctx, node.inputs[0], &in);
    if (in->kind == Intermediate::Kind::kValues) {
      // Probe materialized keys; head gives outer row ids.
      uint64_t n = in->values.size();
      bool has_head = !in->head.empty();
      RowRange range = node.has_slice ? node.slice : in->origin;
      result->origin = range;
      m->tuples_in = n;
      run_probe(n, [&](uint64_t b, uint64_t e, std::vector<oid>* l,
                       std::vector<oid>* r) {
        for (uint64_t i = b; i < e; ++i) {
          oid outer_row = has_head ? in->head[i] : in->origin.begin + i;
          if (node.has_slice && !range.Contains(outer_row)) continue;
          probe_into(in->values.AsInt(i), outer_row, l, r);
        }
      });
    } else if (in->kind == Intermediate::Kind::kRowIds) {
      if (!node.column) {
        return Status::InvalidArgument("join over rowids needs an outer column");
      }
      const Column& outer = *node.column;
      RowRange range = node.has_slice ? node.slice : in->origin;
      result->origin = range;
      m->tuples_in = in->rowids.size();
      const std::vector<oid>& cand = in->rowids;
      run_probe(cand.size(), [&](uint64_t b, uint64_t e, std::vector<oid>* l,
                                 std::vector<oid>* r) {
        for (uint64_t i = b; i < e; ++i) {
          oid row = cand[i];
          if (node.has_slice && !range.Contains(row)) continue;
          probe_into(outer.i64()[row], row, l, r);
        }
      });
    } else {
      return Status::InvalidArgument("join input must be values or rowids");
    }
  } else {
    // Leaf join: dense scan of the outer column slice.
    const Column& outer = *node.column;
    RowRange range = node.EffectiveRange();
    result->origin = range;
    m->tuples_in = range.size();
    run_probe(range.size(), [&](uint64_t b, uint64_t e, std::vector<oid>* l,
                                std::vector<oid>* r) {
      for (uint64_t i = b; i < e; ++i) {
        oid row = range.begin + i;
        probe_into(outer.i64()[row], row, l, r);
      }
    });
  }
  m->tuples_out = result->rowids.size();
  m->random_accesses = m->tuples_in;
  m->random_working_set = hash->byte_size() + inner.byte_size();
  m->bytes_in = m->tuples_in * 8;
  m->bytes_out = m->tuples_out * 2 * sizeof(oid);
  return Status::OK();
}

Status Evaluator::ExecGroupBy(const PlanNode& node, const ExecContext& ctx,
                              Intermediate* result, OpMetrics* m) {
  result->kind = Intermediate::Kind::kGroups;

  // Sequential ingest (the tiers' differential oracle). The map and key
  // vector are sized up front from the input cardinality — capped, so a
  // low-cardinality group-by over millions of rows doesn't pay an O(n)
  // allocation for a ten-entry map; past the cap, doubling growth costs a
  // handful of rehashes instead of the per-insert regrowth this replaces.
  auto ingest_all = [&](auto key_at, uint64_t n) {
    const uint64_t cap = std::min<uint64_t>(n, uint64_t{1} << 16);
    std::unordered_map<int64_t, int64_t> key_to_gid;
    key_to_gid.reserve(cap);
    result->group_keys.i64.reserve(cap);
    result->group_ids.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t key = key_at(i);
      auto [it, inserted] =
          key_to_gid.emplace(key, static_cast<int64_t>(key_to_gid.size()));
      if (inserted) result->group_keys.i64.push_back(key);
      result->group_ids.push_back(it->second);
    }
  };

  if (!node.inputs.empty()) {
    const Intermediate* in;
    APQ_INPUT_OF(ctx, node.inputs[0], &in);
    if (in->kind != Intermediate::Kind::kValues) {
      return Status::InvalidArgument("groupby input must be values");
    }
    result->group_keys.type = in->values.type;
    result->group_keys.dict = in->values.dict;
    result->origin = in->origin;
    result->head = in->head;
    uint64_t n = in->values.size();
    m->tuples_in = n;
    // Parallel ingest (exec/agg tier) needs contiguous int64 keys; f64 group
    // keys (rare — AsInt truncation per row) stay sequential.
    size_t nm = 0;
    if (ParallelAggEnabled() && !in->values.is_f64()) {
      nm = MorselGroupBy(in->values.i64.data(), n, result, m);
    }
    if (nm == 0) {
      ingest_all([&](uint64_t i) { return in->values.AsInt(i); }, n);
    }
  } else {
    const Column& col = *node.column;
    RowRange range = node.EffectiveRange();
    result->group_keys = MakeVecLike(col);
    result->group_keys.type = DataType::kInt64;
    result->origin = range;
    m->tuples_in = range.size();
    size_t nm = 0;
    if (ParallelAggEnabled()) {
      nm = MorselGroupBy(col.i64().data() + range.begin, range.size(), result,
                         m);
    }
    if (nm == 0) {
      ingest_all([&](uint64_t i) { return col.i64()[range.begin + i]; },
                 range.size());
    }
  }
  m->tuples_out = result->group_ids.size();
  m->random_accesses = m->tuples_in;
  // One entry per distinct key (group_keys holds int64 keys on every path).
  m->random_working_set = result->group_keys.i64.size() * 32;
  m->bytes_in = m->tuples_in * 8;
  m->bytes_out = m->tuples_out * 8 + result->group_keys.size() * 8;
  return Status::OK();
}

Status Evaluator::ExecAggregate(const PlanNode& node, const ExecContext& ctx,
                                Intermediate* result, OpMetrics* m) {
  const Intermediate* first;
  APQ_INPUT_OF(ctx, node.inputs[0], &first);

  if (first->kind == Intermediate::Kind::kGroups) {
    // Grouped aggregation.
    const Intermediate* vals = nullptr;
    if (node.inputs.size() == 2) {
      APQ_INPUT_OF(ctx, node.inputs[1], &vals);
      if (vals->kind != Intermediate::Kind::kValues) {
        return Status::InvalidArgument("grouped aggregate values input invalid");
      }
      if (vals->values.size() != first->group_ids.size()) {
        return Status::Misaligned(
            "grouped aggregate: groups have " +
            std::to_string(first->group_ids.size()) + " rows, values " +
            std::to_string(vals->values.size()));
      }
    } else if (node.agg_fn != AggFn::kCount) {
      return Status::InvalidArgument("grouped non-count aggregate needs values");
    }
    size_t ngroups = first->group_keys.size();
    result->kind = Intermediate::Kind::kGroupedAgg;
    result->group_keys = first->group_keys;
    result->agg_counts.assign(ngroups, 0);
    double init = node.agg_fn == AggFn::kMin ? 1e300
                 : node.agg_fn == AggFn::kMax ? -1e300
                                              : 0.0;
    result->agg_vals.assign(ngroups, init);
    uint64_t n = first->group_ids.size();
    m->tuples_in = n;
    // Parallel grouped aggregation (exec/agg tier): per-morsel partial
    // tables merged over group-id ranges. COUNT/MIN/MAX and all counts are
    // bit-identical to the loop below; SUM/AVG merge partial sums in morsel
    // order (deterministic, last-bit reassociation vs the sequential fold).
    size_t nm = 0;
    if (ParallelAggEnabled() && ngroups > 0) {
      nm = MorselGroupedAgg(first->group_ids.data(), n,
                            vals ? &vals->values : nullptr, node.agg_fn,
                            ngroups, result);
    }
    if (nm == 0) {
      for (uint64_t i = 0; i < n; ++i) {
        int64_t g = first->group_ids[i];
        double v = vals ? vals->values.AsDouble(i) : 1.0;
        switch (node.agg_fn) {
          case AggFn::kSum:
          case AggFn::kAvg: result->agg_vals[g] += v; break;
          case AggFn::kCount: result->agg_vals[g] += 1.0; break;
          case AggFn::kMin:
            result->agg_vals[g] = std::min(result->agg_vals[g], v);
            break;
          case AggFn::kMax:
            result->agg_vals[g] = std::max(result->agg_vals[g], v);
            break;
          case AggFn::kNone: break;
        }
        result->agg_counts[g] += 1;
      }
    }
    if (node.agg_fn == AggFn::kAvg) {
      for (size_t g = 0; g < ngroups; ++g) {
        if (result->agg_counts[g] > 0) result->agg_vals[g] /= result->agg_counts[g];
      }
    }
    m->tuples_out = ngroups;
    m->bytes_in = n * 16;
    m->bytes_out = ngroups * 24;
    return Status::OK();
  }

  if (first->kind != Intermediate::Kind::kValues &&
      first->kind != Intermediate::Kind::kRowIds &&
      first->kind != Intermediate::Kind::kPairs) {
    return Status::InvalidArgument("scalar aggregate input must be values/rowids");
  }
  // Scalar aggregation.
  result->kind = Intermediate::Kind::kScalar;
  uint64_t n = first->kind == Intermediate::Kind::kValues ? first->values.size()
                                                          : first->rowids.size();
  m->tuples_in = n;
  double acc = node.agg_fn == AggFn::kMin ? 1e300
              : node.agg_fn == AggFn::kMax ? -1e300
                                           : 0.0;
  if (first->kind == Intermediate::Kind::kValues) {
    // SIMD ingest reductions, only where the result is provably the scalar
    // fold's: COUNT is (double)n exactly while n <= 2^53 (the repeated +1.0
    // fold is exact there); MIN/MAX are lattice folds (and the int64->double
    // cast is monotonic, so min/max commute with it); int64 SUM/AVG go
    // through the guarded exact path (sum_i64_exact declines when the
    // no-rounding proof fails). float64 SUM/AVG always fold sequentially —
    // reassociation would change last bits.
    bool done = false;
    if (options_.use_kernels && n > 0) {
      const ValueVec& vv = first->values;
      switch (node.agg_fn) {
        case AggFn::kCount:
          if (n <= (1ull << 53)) {
            acc = static_cast<double>(n);
            done = true;
          }
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          if (!vv.is_f64() && simd_ops_->minmax_i64 != nullptr) {
            int64_t mn, mx;
            simd_ops_->minmax_i64(vv.i64.data(), n, &mn, &mx);
            acc = node.agg_fn == AggFn::kMin
                      ? std::min(acc, static_cast<double>(mn))
                      : std::max(acc, static_cast<double>(mx));
            done = true;
          } else if (vv.is_f64() && simd_ops_->minmax_f64 != nullptr) {
            double mn, mx;
            simd_ops_->minmax_f64(vv.f64.data(), n, &mn, &mx);
            acc = node.agg_fn == AggFn::kMin ? std::min(acc, mn)
                                             : std::max(acc, mx);
            done = true;
          }
          break;
        case AggFn::kSum:
        case AggFn::kAvg:
          if (!vv.is_f64() && simd_ops_->sum_i64_exact != nullptr) {
            done = simd_ops_->sum_i64_exact(vv.i64.data(), n, &acc);
          }
          break;
        case AggFn::kNone:
          break;
      }
    }
    if (!done) {
      for (uint64_t i = 0; i < n; ++i) {
        double v = first->values.AsDouble(i);
        switch (node.agg_fn) {
          case AggFn::kSum:
          case AggFn::kAvg: acc += v; break;
          case AggFn::kCount: acc += 1.0; break;
          case AggFn::kMin: acc = std::min(acc, v); break;
          case AggFn::kMax: acc = std::max(acc, v); break;
          case AggFn::kNone: break;
        }
      }
    }
  } else {
    if (node.agg_fn != AggFn::kCount) {
      return Status::InvalidArgument("rowid aggregate supports only count");
    }
    acc = static_cast<double>(n);
  }
  if (node.agg_fn == AggFn::kAvg && n > 0) acc /= static_cast<double>(n);
  result->scalar = acc;
  result->scalar_count = static_cast<int64_t>(n);
  m->tuples_out = 1;
  m->bytes_in = n * 8;
  m->bytes_out = 16;
  return Status::OK();
}

Status Evaluator::ExecAggrMerge(const PlanNode& node, const ExecContext& ctx,
                                Intermediate* result, OpMetrics* m) {
  const Intermediate* in;
  APQ_INPUT_OF(ctx, node.inputs[0], &in);
  if (in->kind != Intermediate::Kind::kGroupedAgg) {
    return Status::InvalidArgument("aggrmerge input must be grouped aggregates");
  }
  result->kind = Intermediate::Kind::kGroupedAgg;
  result->group_keys.type = in->group_keys.type;
  result->group_keys.dict = in->group_keys.dict;
  std::unordered_map<int64_t, size_t> key_to_slot;
  uint64_t n = in->agg_vals.size();
  m->tuples_in = n;
  for (uint64_t i = 0; i < n; ++i) {
    int64_t key = in->group_keys.AsInt(i);
    auto [it, inserted] = key_to_slot.emplace(key, result->agg_vals.size());
    if (inserted) {
      result->group_keys.i64.push_back(key);
      double init = node.agg_fn == AggFn::kMin ? 1e300
                   : node.agg_fn == AggFn::kMax ? -1e300
                                                : 0.0;
      result->agg_vals.push_back(init);
      result->agg_counts.push_back(0);
    }
    size_t slot = it->second;
    double v = in->agg_vals[i];
    int64_t c = in->agg_counts.empty() ? 1 : in->agg_counts[i];
    switch (node.agg_fn) {
      case AggFn::kSum:
      case AggFn::kCount: result->agg_vals[slot] += v; break;
      case AggFn::kAvg:
        // Partial avgs are combined weighted by their counts.
        result->agg_vals[slot] += v * static_cast<double>(c);
        break;
      case AggFn::kMin:
        result->agg_vals[slot] = std::min(result->agg_vals[slot], v);
        break;
      case AggFn::kMax:
        result->agg_vals[slot] = std::max(result->agg_vals[slot], v);
        break;
      case AggFn::kNone: break;
    }
    result->agg_counts[slot] += c;
  }
  if (node.agg_fn == AggFn::kAvg) {
    for (size_t g = 0; g < result->agg_vals.size(); ++g) {
      if (result->agg_counts[g] > 0) {
        result->agg_vals[g] /= static_cast<double>(result->agg_counts[g]);
      }
    }
  }
  m->tuples_out = result->agg_vals.size();
  m->bytes_in = n * 24;
  m->bytes_out = m->tuples_out * 24;
  return Status::OK();
}

Status Evaluator::ExecUnion(const PlanNode& node, const ExecContext& ctx,
                            Intermediate* result, OpMetrics* m) {
  std::vector<const Intermediate*> ins;
  ins.reserve(node.inputs.size());
  for (int id : node.inputs) {
    const Intermediate* in;
    APQ_INPUT_OF(ctx, id, &in);
    ins.push_back(in);
  }
  Intermediate::Kind kind = ins[0]->kind;
  // Scalar partials and grouped-aggregate partials mix freely: a scalar is a
  // single-group partial with key 0 (arises when an aggregate clone inside a
  // pack was itself parallelized and replaced by a merge).
  auto agg_like = [](Intermediate::Kind k) {
    return k == Intermediate::Kind::kScalar ||
           k == Intermediate::Kind::kGroupedAgg;
  };
  bool all_agg_like = agg_like(kind);
  for (const auto* in : ins) {
    all_agg_like = all_agg_like && agg_like(in->kind);
    if (in->kind != kind && !all_agg_like) {
      return Status::InvalidArgument(
          std::string("exchange union over mixed kinds: ") +
          Intermediate::KindName(kind) + " vs " +
          Intermediate::KindName(in->kind));
    }
  }
  if (all_agg_like) kind = Intermediate::Kind::kScalar;  // unified path below

  // mat.pack: concatenate preserving input order. Because clones are wired in
  // mutation order over ordered range partitions, concatenation preserves the
  // base-table order (paper §2.3 "the exchange union operator must maintain
  // the correct ordering").
  switch (kind) {
    case Intermediate::Kind::kRowIds: {
      result->kind = kind;
      result->origin = ins[0]->origin;
      size_t total = 0;
      for (const auto* in : ins) total += in->rowids.size();
      result->rowids.reserve(total);
      for (const auto* in : ins) {
        result->rowids.insert(result->rowids.end(), in->rowids.begin(),
                              in->rowids.end());
        result->origin.begin = std::min(result->origin.begin, in->origin.begin);
        result->origin.end = std::max(result->origin.end, in->origin.end);
      }
      break;
    }
    case Intermediate::Kind::kPairs: {
      result->kind = kind;
      result->origin = ins[0]->origin;
      size_t total = 0;
      for (const auto* in : ins) total += in->rowids.size();
      result->rowids.reserve(total);
      result->rrowids.reserve(total);
      for (const auto* in : ins) {
        result->rowids.insert(result->rowids.end(), in->rowids.begin(),
                              in->rowids.end());
        result->rrowids.insert(result->rrowids.end(), in->rrowids.begin(),
                               in->rrowids.end());
        result->origin.begin = std::min(result->origin.begin, in->origin.begin);
        result->origin.end = std::max(result->origin.end, in->origin.end);
      }
      break;
    }
    case Intermediate::Kind::kValues: {
      result->kind = kind;
      result->values.type = ins[0]->values.type;
      result->values.dict = ins[0]->values.dict;
      result->origin = ins[0]->origin;
      size_t total = 0, heads = 0;
      for (const auto* in : ins) {
        total += in->values.size();
        heads += in->head.size();
      }
      result->values.Reserve(total);
      result->head.reserve(heads);
      for (const auto* in : ins) {
        result->values.Append(in->values);
        result->head.insert(result->head.end(), in->head.begin(),
                            in->head.end());
        result->origin.begin = std::min(result->origin.begin, in->origin.begin);
        result->origin.end = std::max(result->origin.end, in->origin.end);
      }
      break;
    }
    case Intermediate::Kind::kScalar: {
      // Packing aggregate partials (scalars and/or grouped partials):
      // represent as one grouped aggregate so a downstream aggrmerge can
      // recombine them; a scalar is a single group with key 0.
      result->kind = Intermediate::Kind::kGroupedAgg;
      result->group_keys.type = DataType::kInt64;
      for (const auto* in : ins) {
        if (in->kind == Intermediate::Kind::kScalar) {
          result->group_keys.i64.push_back(0);
          result->agg_vals.push_back(in->scalar);
          result->agg_counts.push_back(in->scalar_count);
        } else {
          result->group_keys.Append(in->group_keys);
          result->agg_vals.insert(result->agg_vals.end(), in->agg_vals.begin(),
                                  in->agg_vals.end());
          if (in->agg_counts.empty()) {
            result->agg_counts.insert(result->agg_counts.end(),
                                      in->agg_vals.size(), 1);
          } else {
            result->agg_counts.insert(result->agg_counts.end(),
                                      in->agg_counts.begin(),
                                      in->agg_counts.end());
          }
        }
      }
      break;
    }
    case Intermediate::Kind::kGroupedAgg: {
      result->kind = kind;
      result->group_keys.type = ins[0]->group_keys.type;
      result->group_keys.dict = ins[0]->group_keys.dict;
      for (const auto* in : ins) {
        result->group_keys.Append(in->group_keys);
        result->agg_vals.insert(result->agg_vals.end(), in->agg_vals.begin(),
                                in->agg_vals.end());
        if (in->agg_counts.empty()) {
          result->agg_counts.insert(result->agg_counts.end(),
                                    in->agg_vals.size(), 1);
        } else {
          result->agg_counts.insert(result->agg_counts.end(),
                                    in->agg_counts.begin(),
                                    in->agg_counts.end());
        }
      }
      break;
    }
    default:
      return Status::Unsupported("exchange union over kind " +
                                 std::string(Intermediate::KindName(kind)));
  }
  for (const auto* in : ins) m->tuples_in += in->NumRows();
  m->tuples_out = result->NumRows();
  // The union's cost is materialization: it copies all input bytes.
  for (const auto* in : ins) m->bytes_in += in->ByteSize();
  m->bytes_out = result->ByteSize();
  return Status::OK();
}

Status Evaluator::ExecMap(const PlanNode& node, const ExecContext& ctx,
                          Intermediate* result, OpMetrics* m) {
  const Intermediate* a;
  APQ_INPUT_OF(ctx, node.inputs[0], &a);

  // Scalar arithmetic (calc.* over single values, e.g. Q14's final ratio).
  if (a->kind == Intermediate::Kind::kScalar ||
      (a->kind == Intermediate::Kind::kGroupedAgg && a->agg_vals.size() == 1)) {
    double x = a->kind == Intermediate::Kind::kScalar ? a->scalar : a->agg_vals[0];
    double y = node.map_const;
    if (node.inputs.size() == 2) {
      const Intermediate* b2;
      APQ_INPUT_OF(ctx, node.inputs[1], &b2);
      if (b2->kind == Intermediate::Kind::kScalar) y = b2->scalar;
      else if (b2->kind == Intermediate::Kind::kGroupedAgg &&
               b2->agg_vals.size() == 1) y = b2->agg_vals[0];
      else return Status::InvalidArgument("scalar map needs scalar operands");
    }
    result->kind = Intermediate::Kind::kScalar;
    switch (node.map_fn) {
      case MapFn::kAdd: result->scalar = x + y; break;
      case MapFn::kSub: result->scalar = x - y; break;
      case MapFn::kRSub: result->scalar = y - x; break;
      case MapFn::kMul: result->scalar = x * y; break;
      case MapFn::kDiv: result->scalar = y == 0 ? 0 : x / y; break;
      default:
        return Status::InvalidArgument("unsupported scalar map function");
    }
    m->tuples_in = node.inputs.size();
    m->tuples_out = 1;
    return Status::OK();
  }

  if (a->kind != Intermediate::Kind::kValues) {
    return Status::InvalidArgument("map input must be values");
  }
  uint64_t n = a->values.size();
  const Intermediate* b = nullptr;
  if (node.inputs.size() == 2) {
    APQ_INPUT_OF(ctx, node.inputs[1], &b);
    if (b->kind != Intermediate::Kind::kValues || b->values.size() != n) {
      return Status::Misaligned("binary map over misaligned inputs (" +
                                std::to_string(n) + " vs " +
                                std::to_string(b->values.size()) + ")");
    }
  }
  result->kind = Intermediate::Kind::kValues;
  result->values.type = DataType::kFloat64;
  result->values.f64.reserve(n);
  result->head = a->head;
  result->origin = a->origin;
  m->tuples_in = n * (b ? 2 : 1);

  // Flag maps (batstr.like / comparisons folded through ifthenelse).
  std::vector<uint8_t> like_match;
  if (node.map_fn == MapFn::kLikeFlag) {
    if (a->values.dict == nullptr) {
      return Status::InvalidArgument("like-flag map needs dictionary values");
    }
    like_match = BuildLikeMatch(*a->values.dict, node.pred);
  }

  for (uint64_t i = 0; i < n; ++i) {
    double x = a->values.AsDouble(i);
    double y = b ? b->values.AsDouble(i) : node.map_const;
    double r = 0;
    switch (node.map_fn) {
      case MapFn::kAdd: r = x + y; break;
      case MapFn::kSub: r = x - y; break;
      case MapFn::kRSub: r = y - x; break;
      case MapFn::kMul: r = x * y; break;
      case MapFn::kDiv: r = y == 0 ? 0 : x / y; break;
      case MapFn::kLikeFlag:
        r = like_match[a->values.i64[i]] ? 1.0 : 0.0;
        break;
      case MapFn::kEqFlag:
        r = a->values.AsInt(i) == node.pred.lo ? 1.0 : 0.0;
        break;
      case MapFn::kRangeFlag: {
        if (node.pred.kind == Predicate::Kind::kRangeF64) {
          r = (x >= node.pred.flo && x <= node.pred.fhi) ? 1.0 : 0.0;
        } else {
          int64_t v = a->values.AsInt(i);
          r = (v >= node.pred.lo && v <= node.pred.hi) ? 1.0 : 0.0;
        }
        break;
      }
      case MapFn::kNone: break;
    }
    result->values.f64.push_back(r);
  }
  m->tuples_out = n;
  m->bytes_in = m->tuples_in * 8;
  m->bytes_out = n * 8;
  return Status::OK();
}

Status Evaluator::ExecSort(const PlanNode& node, const ExecContext& ctx,
                           Intermediate* result, OpMetrics* m) {
  const Intermediate* in = nullptr;
  if (!node.inputs.empty()) {
    APQ_INPUT_OF(ctx, node.inputs[0], &in);
  }

  // One permutation routine for every input shape: the parallel sort tier
  // (exec/sort/) when morsels are on and the input splits, the sequential
  // shared-comparator sort otherwise. Both emit the unique (value, position)
  // order — std::stable_sort's permutation — so the gather loops below
  // cannot observe which one ran.
  auto sort_perm = [&](const SortKeys& keys, uint64_t n,
                       std::vector<uint64_t>* perm) {
    const uint64_t limit =
        node.kind == OpKind::kTopN && node.limit > 0 && node.limit < n
            ? node.limit
            : 0;
    size_t nm = 0;
    if (ParallelSortEnabled()) {
      nm = MorselSortPerm(keys, n, node.descending, limit, perm, m);
    }
    if (nm == 0) SortPermSequential(keys, n, node.descending, limit, perm);
  };
  auto keys_of = [](const ValueVec& v) {
    return v.is_f64() ? SortKeys{v.f64.data(), nullptr}
                      : SortKeys{nullptr, v.i64.data()};
  };

  if (in != nullptr && in->kind == Intermediate::Kind::kGroupedAgg) {
    // Order grouped aggregates by aggregate value.
    const uint64_t n = in->agg_vals.size();
    std::vector<uint64_t> perm;
    sort_perm(SortKeys{in->agg_vals.data(), nullptr}, n, &perm);
    result->kind = Intermediate::Kind::kGroupedAgg;
    result->group_keys.type = in->group_keys.type;
    result->group_keys.dict = in->group_keys.dict;
    result->group_keys.Reserve(perm.size());
    result->agg_vals.reserve(perm.size());
    result->agg_counts.reserve(perm.size());
    for (uint64_t i : perm) {
      result->group_keys.i64.push_back(in->group_keys.AsInt(i));
      result->agg_vals.push_back(in->agg_vals[i]);
      result->agg_counts.push_back(in->agg_counts.empty() ? 1
                                                          : in->agg_counts[i]);
    }
    m->tuples_in = n;
    m->tuples_out = perm.size();
    m->sort_rows = n;
    m->bytes_in = n * 24;
    m->bytes_out = perm.size() * 24;
    return Status::OK();
  }

  if (in != nullptr && in->kind == Intermediate::Kind::kValues) {
    const uint64_t n = in->values.size();
    std::vector<uint64_t> perm;
    sort_perm(keys_of(in->values), n, &perm);
    GatherPermuted(in->values, in->head.empty() ? nullptr : &in->head, perm,
                   result);
    result->origin = in->origin;
    m->tuples_in = n;
    m->tuples_out = perm.size();
    m->sort_rows = n;
    m->bytes_in = n * 8;
    m->bytes_out = perm.size() * 8;
    return Status::OK();
  }

  if (in != nullptr && in->kind == Intermediate::Kind::kRowIds) {
    // Order a candidate list by its values in `column`, clipping ids outside
    // this clone's slice like the join probe does (sibling clones covering
    // the neighbouring slices sort the rest).
    if (node.column == nullptr) {
      return Status::InvalidArgument("sort over rowids needs a bound column");
    }
    const Column& col = *node.column;
    const RowRange range = node.has_slice ? node.slice : in->origin;
    ValueVec vals = MakeVecLike(col);
    std::vector<oid> head;
    head.reserve(in->rowids.size());
    vals.Reserve(in->rowids.size());
    for (oid row : in->rowids) {
      if (row >= col.size()) {
        return Status::Misaligned("sort rowid " + std::to_string(row) +
                                  " beyond column '" + col.name() + "' size " +
                                  std::to_string(col.size()));
      }
      if (node.has_slice && !range.Contains(row)) continue;
      head.push_back(row);
      GatherInto(col, row, &vals);
    }
    const uint64_t n = vals.size();
    std::vector<uint64_t> perm;
    sort_perm(keys_of(vals), n, &perm);
    GatherPermuted(vals, &head, perm, result);
    result->origin = range;
    m->tuples_in = in->rowids.size();
    m->tuples_out = perm.size();
    m->sort_rows = n;
    m->random_accesses = n;
    m->random_working_set = range.size() * DataTypeWidth(col.type());
    m->bytes_in = in->rowids.size() * sizeof(oid);
    m->bytes_out = perm.size() * 16;
    return Status::OK();
  }

  if (in == nullptr) {
    // Leaf sort: order a base-column slice directly (ORDER BY without a
    // preceding select). Keys point straight at the column storage; the
    // permutation is slice-relative.
    if (node.column == nullptr) {
      return Status::InvalidArgument("leaf sort needs a bound column");
    }
    const Column& col = *node.column;
    const RowRange range = node.EffectiveRange();
    const uint64_t n = range.size();
    const SortKeys keys =
        col.type() == DataType::kFloat64
            ? SortKeys{col.f64().data() + range.begin, nullptr}
            : SortKeys{nullptr, col.i64().data() + range.begin};
    std::vector<uint64_t> perm;
    sort_perm(keys, n, &perm);
    result->kind = Intermediate::Kind::kValues;
    result->values = MakeVecLike(col);
    result->origin = range;
    result->values.Reserve(perm.size());
    result->head.reserve(perm.size());
    for (uint64_t i : perm) {
      const oid row = range.begin + i;
      GatherInto(col, row, &result->values);
      result->head.push_back(row);
    }
    m->tuples_in = n;
    m->tuples_out = perm.size();
    m->sort_rows = n;
    m->bytes_in = n * DataTypeWidth(col.type());
    m->bytes_out = perm.size() * 16;
    return Status::OK();
  }

  return Status::InvalidArgument(
      "sort input must be values, rowids, or grouped aggs");
}

}  // namespace apq
