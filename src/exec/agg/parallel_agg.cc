#include "exec/agg/parallel_agg.h"

#include <algorithm>
#include <utility>

#include "util/hash_clock.h"

namespace apq {

size_t ParallelGroupBy(const int64_t* keys, uint64_t n,
                       const ParallelAggOptions& opts,
                       std::vector<int64_t>* out_gids,
                       std::vector<int64_t>* out_keys,
                       std::vector<MorselMetrics>* morsels) {
  MorselSource src(0, n, opts.morsel_rows);
  const size_t nm = src.num_morsels();
  if (nm < 2 || opts.scheduler == nullptr) return 0;
  MorselScheduler& sched = *opts.scheduler;

  const size_t base = out_gids->size();
  out_gids->resize(base + n);
  int64_t* gids = out_gids->data() + base;

  // Phase 1 — thread-local ingest. Table index 0 belongs to the submitting
  // thread (kCallerWorker), 1..W to the scheduler workers; a worker runs one
  // task at a time, so its table needs no synchronization. Rows get their
  // *local* group id for now; table_of remembers which table owns each
  // morsel's ids for the relabel pass.
  const size_t ntables = static_cast<size_t>(sched.num_workers()) + 1;
  std::vector<AggTable> tables(ntables);
  std::vector<int> table_of(nm, 0);
  std::vector<MorselMetrics> mm(nm);
  sched.ParallelFor(nm, [&](size_t i, int worker) {
    const Morsel ms = src.morsel(i);
    const double t0 = NowNs();
    const int t = worker + 1;  // kCallerWorker = -1 -> slot 0
    AggTable& tab = tables[t];
    for (uint64_t pos = ms.begin; pos < ms.end; ++pos) {
      gids[pos] = tab.FindOrInsert(keys[pos], pos);
    }
    table_of[i] = t;
    mm[i] = MorselMetrics{ms.size(), ms.size(), NowNs() - t0, worker};
  });

  // Phase 2 — partitioned merge: each radix partition of the key hash is
  // merged by one worker, computing per key the minimum first-occurrence
  // position across all thread-local tables (schedule-invariant even though
  // each table's content depends on which morsels its worker ran). Tables
  // bucket their groups by partition first, so total merge work is one pass
  // over the groups rather than one pass per partition.
  const size_t nparts = NextPow2(ntables);
  std::vector<std::vector<std::vector<uint32_t>>> tbuckets(ntables);
  sched.ParallelFor(ntables, [&](size_t t, int) {
    const AggTable& tab = tables[t];
    tbuckets[t].resize(nparts);
    for (uint32_t s = 0; s < tab.num_groups(); ++s) {
      tbuckets[t][AggTable::Mix(tab.key(s)) & (nparts - 1)].push_back(s);
    }
  });
  std::vector<AggTable> parts(nparts);
  sched.ParallelFor(nparts, [&](size_t p, int) {
    AggTable& pt = parts[p];
    for (size_t t = 0; t < ntables; ++t) {
      const AggTable& tab = tables[t];
      for (uint32_t s : tbuckets[t][p]) {
        pt.FindOrInsert(tab.key(s), tab.first_pos(s));
      }
    }
  });

  // Phase 3 — global renumbering: rank keys by earliest occurrence. Input
  // positions are unique, so the order (and thus every group id) is total
  // and identical to the scalar path's insertion order.
  std::vector<std::pair<uint64_t, int64_t>> order;  // (first_pos, key)
  {
    size_t total = 0;
    for (const AggTable& pt : parts) total += pt.num_groups();
    order.reserve(total);
  }
  for (const AggTable& pt : parts) {
    const uint64_t g = pt.num_groups();
    for (uint32_t s = 0; s < g; ++s) {
      order.emplace_back(pt.first_pos(s), pt.key(s));
    }
  }
  std::sort(order.begin(), order.end());
  AggTable global(order.size());
  out_keys->reserve(out_keys->size() + order.size());
  for (const auto& [pos, key] : order) {
    global.FindOrInsert(key, pos);  // slot ids follow insertion = rank order
    out_keys->push_back(key);
  }

  // Phase 4 — relabel local ids to global ids: one lookup per *group* to
  // build each table's translation, then one array load per row.
  std::vector<std::vector<int64_t>> l2g(ntables);
  sched.ParallelFor(ntables, [&](size_t t, int) {
    const AggTable& tab = tables[t];
    l2g[t].resize(tab.num_groups());
    for (uint32_t s = 0; s < tab.num_groups(); ++s) {
      l2g[t][s] = global.Find(tab.key(s));
    }
  });
  sched.ParallelFor(nm, [&](size_t i, int) {
    const Morsel ms = src.morsel(i);
    const std::vector<int64_t>& map = l2g[table_of[i]];
    for (uint64_t pos = ms.begin; pos < ms.end; ++pos) {
      gids[pos] = map[gids[pos]];
    }
  });

  morsels->insert(morsels->end(), mm.begin(), mm.end());
  return nm;
}

size_t ParallelGroupedAgg(const int64_t* gids, uint64_t n,
                          const double* vals_f64, const int64_t* vals_i64,
                          AggFn fn, uint64_t ngroups,
                          const ParallelAggOptions& opts, double* out_vals,
                          int64_t* out_counts) {
  MorselSource src(0, n, opts.morsel_rows);
  const size_t nm = src.num_morsels();
  if (nm < 2 || opts.scheduler == nullptr || ngroups == 0) return 0;
  MorselScheduler& sched = *opts.scheduler;

  // Phase 1 — per-morsel partials. Tables are per *morsel*, not per worker:
  // the merge folds them in morsel index order, so the result is independent
  // of which worker ran what (per-worker partials would reassociate
  // differently every run). Each morsel buckets its groups by output
  // partition as it finishes, so the merge scans every group exactly once.
  size_t nparts = static_cast<size_t>(sched.num_workers()) + 1;
  if (nparts > ngroups) nparts = ngroups;
  std::vector<AggTable> partials(nm);
  std::vector<std::vector<std::vector<uint32_t>>> pbuckets(nm);
  sched.ParallelFor(nm, [&](size_t i, int) {
    AggTable& tab = partials[i];
    const Morsel ms = src.morsel(i);
    for (uint64_t pos = ms.begin; pos < ms.end; ++pos) {
      const double v = vals_f64 != nullptr ? vals_f64[pos]
                       : vals_i64 != nullptr
                           ? static_cast<double>(vals_i64[pos])
                           : 1.0;
      tab.Update(fn, gids[pos], v, pos);
    }
    pbuckets[i].resize(nparts);
    for (uint32_t s = 0; s < tab.num_groups(); ++s) {
      const uint64_t gid = static_cast<uint64_t>(tab.key(s));
      pbuckets[i][gid * nparts / ngroups].push_back(s);
    }
  });

  // Phase 2 — merge: partition p owns the group ids with
  // gid * nparts / ngroups == p (a contiguous range), so each output slot is
  // folded by exactly one worker and the folds race with nothing.
  sched.ParallelFor(nparts, [&](size_t p, int) {
    for (size_t i = 0; i < nm; ++i) {
      const AggTable& tab = partials[i];
      for (uint32_t s : pbuckets[i][p]) {
        const int64_t gid = tab.key(s);
        switch (fn) {
          case AggFn::kSum:
          case AggFn::kAvg:
          case AggFn::kCount: out_vals[gid] += tab.agg_val(s); break;
          case AggFn::kMin:
            out_vals[gid] = std::min(out_vals[gid], tab.agg_val(s));
            break;
          case AggFn::kMax:
            out_vals[gid] = std::max(out_vals[gid], tab.agg_val(s));
            break;
          case AggFn::kNone: break;
        }
        out_counts[gid] += tab.agg_count(s);
      }
    }
  });
  return nm;
}

}  // namespace apq
