#include "exec/agg/parallel_agg.h"

#include <algorithm>
#include <utility>

#include "obs/resource_tracker.h"
#include "util/hash_clock.h"

namespace apq {

size_t ParallelGroupBy(const int64_t* keys, uint64_t n,
                       const ParallelAggOptions& opts,
                       std::vector<int64_t>* out_gids,
                       std::vector<int64_t>* out_keys,
                       std::vector<MorselMetrics>* morsels) {
  MorselSource src(0, n, opts.morsel_rows);
  const size_t nm = src.num_morsels();
  if (nm < 2 || opts.scheduler == nullptr) return 0;
  MorselScheduler& sched = *opts.scheduler;

  const size_t base = out_gids->size();
  out_gids->resize(base + n);
  int64_t* gids = out_gids->data() + base;

  // Phase 1 — thread-local ingest. Table index 0 belongs to the submitting
  // thread (kCallerWorker), 1..W to the scheduler workers; a worker runs one
  // task at a time, so its table needs no synchronization. Rows get their
  // *local* group id for now; table_of remembers which table owns each
  // morsel's ids for the relabel pass.
  const size_t ntables = static_cast<size_t>(sched.num_workers()) + 1;
  std::vector<AggTable> tables(ntables);
  std::vector<int> table_of(nm, 0);
  std::vector<MorselMetrics> mm(nm);
  sched.ParallelFor(nm, [&](size_t i, int worker) {
    const Morsel ms = src.morsel(i);
    const double t0 = NowNs();
    const int t = worker + 1;  // kCallerWorker = -1 -> slot 0
    AggTable& tab = tables[t];
    for (uint64_t pos = ms.begin; pos < ms.end; ++pos) {
      gids[pos] = tab.FindOrInsert(keys[pos], pos);
    }
    table_of[i] = t;
    mm[i] = MorselMetrics{ms.size(), ms.size(), NowNs() - t0, worker};
  });

  // The thread-local tables are this operator's big working set; they stay
  // live through the merge/relabel phases, then the guard releases them.
  obs::ScopedMemCharge table_charge;
  for (const AggTable& tab : tables) table_charge.Add(tab.byte_size());

  // Phase 2 — partitioned merge: each radix partition of the key hash is
  // merged by one worker, computing per key the minimum first-occurrence
  // position across all thread-local tables (schedule-invariant even though
  // each table's content depends on which morsels its worker ran). Tables
  // bucket their groups by partition first, so total merge work is one pass
  // over the groups rather than one pass per partition.
  const size_t nparts = NextPow2(ntables);
  std::vector<std::vector<std::vector<uint32_t>>> tbuckets(ntables);
  sched.ParallelFor(ntables, [&](size_t t, int) {
    const AggTable& tab = tables[t];
    tbuckets[t].resize(nparts);
    for (uint32_t s = 0; s < tab.num_groups(); ++s) {
      tbuckets[t][AggTable::Mix(tab.key(s)) & (nparts - 1)].push_back(s);
    }
  });
  std::vector<AggTable> parts(nparts);
  sched.ParallelFor(nparts, [&](size_t p, int) {
    AggTable& pt = parts[p];
    for (size_t t = 0; t < ntables; ++t) {
      const AggTable& tab = tables[t];
      for (uint32_t s : tbuckets[t][p]) {
        pt.FindOrInsert(tab.key(s), tab.first_pos(s));
      }
    }
  });

  // Phase 3 — global renumbering: rank keys by earliest occurrence. Input
  // positions are unique, so the order (and thus every group id) is total
  // and identical to the scalar path's insertion order.
  std::vector<std::pair<uint64_t, int64_t>> order;  // (first_pos, key)
  {
    size_t total = 0;
    for (const AggTable& pt : parts) total += pt.num_groups();
    order.reserve(total);
  }
  for (const AggTable& pt : parts) {
    const uint64_t g = pt.num_groups();
    for (uint32_t s = 0; s < g; ++s) {
      order.emplace_back(pt.first_pos(s), pt.key(s));
    }
  }
  std::sort(order.begin(), order.end());
  AggTable global(order.size());
  out_keys->reserve(out_keys->size() + order.size());
  for (const auto& [pos, key] : order) {
    global.FindOrInsert(key, pos);  // slot ids follow insertion = rank order
    out_keys->push_back(key);
  }

  // Phase 4 — relabel local ids to global ids: one lookup per *group* to
  // build each table's translation, then one array load per row.
  std::vector<std::vector<int64_t>> l2g(ntables);
  sched.ParallelFor(ntables, [&](size_t t, int) {
    const AggTable& tab = tables[t];
    l2g[t].resize(tab.num_groups());
    for (uint32_t s = 0; s < tab.num_groups(); ++s) {
      l2g[t][s] = global.Find(tab.key(s));
    }
  });
  sched.ParallelFor(nm, [&](size_t i, int) {
    const Morsel ms = src.morsel(i);
    const std::vector<int64_t>& map = l2g[table_of[i]];
    for (uint64_t pos = ms.begin; pos < ms.end; ++pos) {
      gids[pos] = map[gids[pos]];
    }
  });

  morsels->insert(morsels->end(), mm.begin(), mm.end());
  return nm;
}

namespace {

// ---- dense-range flat ingest ------------------------------------------------
// For small group counts the per-morsel hash table is overkill: a flat array
// indexed by gid ingests with one load/store per row (no hashing, no probe
// chain), and equal-gid runs fold through the SIMD ingest reductions. Only
// folds whose result provably equals the per-row fold are vectorized, so the
// output is bit-identical to the hash path (and the scalar loop) at every
// dispatch tier.

/// Minimum equal-gid run length worth a SIMD reduction call.
constexpr uint64_t kSimdRunRows = 16;

/// Flat per-morsel partial: vals/counts indexed by gid. Absent groups keep
/// the fold identity (kMin: 1e300, kMax: -1e300, else 0; count 0), so the
/// merge can fold every slot unconditionally as an exact no-op.
struct FlatPartial {
  std::vector<double> vals;
  std::vector<int64_t> counts;
};

void IngestFlat(const int64_t* gids, const double* vf, const int64_t* vi,
                AggFn fn, uint64_t b, uint64_t e, const simd::SimdOps* simd,
                FlatPartial* out) {
  double* vals = out->vals.data();
  int64_t* counts = out->counts.data();
  // Morsel-level SUM exactness: when rows * max|v| <= 2^53 every partial sum
  // of every group's fold (any association) stays on integers doubles
  // represent exactly, so adding an equal-gid run as one integer sum is
  // bit-identical to the row loop. Checked once per morsel.
  bool exact_sum = false;
  if (vi != nullptr && (fn == AggFn::kSum || fn == AggFn::kAvg) &&
      simd != nullptr && simd->sum_i64_exact != nullptr &&
      simd->minmax_i64 != nullptr && e > b) {
    int64_t mn, mx;
    simd->minmax_i64(vi + b, e - b, &mn, &mx);
    const uint64_t am = mn == INT64_MIN
                            ? (1ull << 63)
                            : static_cast<uint64_t>(mn < 0 ? -mn : mn);
    const uint64_t bm = static_cast<uint64_t>(mx < 0 ? -mx : mx);
    const uint64_t maxabs = am > bm ? am : bm;
    exact_sum = maxabs <= (1ull << 53) / (e - b);
  }
  uint64_t pos = b;
  while (pos < e) {
    const int64_t g = gids[pos];
    uint64_t r = pos + 1;
    while (r < e && gids[r] == g) ++r;
    const uint64_t len = r - pos;
    bool folded = false;
    if (len >= kSimdRunRows) {
      switch (fn) {
        case AggFn::kCount:
          // The repeated +1.0 fold stays exact while the count is <= 2^53;
          // vals[g] is bounded by the morsel row count, far below that.
          vals[g] += static_cast<double>(len);
          folded = true;
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          // Lattice folds; the int64->double cast is monotonic, so min/max
          // commute with it (see exec/simd/simd_ops.h).
          if (vi != nullptr && simd != nullptr &&
              simd->minmax_i64 != nullptr) {
            int64_t mn, mx;
            simd->minmax_i64(vi + pos, len, &mn, &mx);
            const double x = static_cast<double>(fn == AggFn::kMin ? mn : mx);
            vals[g] = fn == AggFn::kMin ? std::min(vals[g], x)
                                        : std::max(vals[g], x);
            folded = true;
          } else if (vf != nullptr && simd != nullptr &&
                     simd->minmax_f64 != nullptr) {
            double mn, mx;
            simd->minmax_f64(vf + pos, len, &mn, &mx);
            vals[g] = fn == AggFn::kMin ? std::min(vals[g], mn)
                                        : std::max(vals[g], mx);
            folded = true;
          }
          break;
        case AggFn::kSum:
        case AggFn::kAvg:
          if (exact_sum) {
            double s;
            if (simd->sum_i64_exact(vi + pos, len, &s)) {
              vals[g] += s;
              folded = true;
            }
          }
          break;
        case AggFn::kNone:
          break;
      }
    }
    if (folded) {
      counts[g] += static_cast<int64_t>(len);
    } else {
      for (uint64_t p = pos; p < r; ++p) {
        const double v = vf != nullptr ? vf[p]
                         : vi != nullptr ? static_cast<double>(vi[p])
                                         : 1.0;
        switch (fn) {
          case AggFn::kSum:
          case AggFn::kAvg: vals[g] += v; break;
          case AggFn::kCount: vals[g] += 1.0; break;
          case AggFn::kMin: vals[g] = std::min(vals[g], v); break;
          case AggFn::kMax: vals[g] = std::max(vals[g], v); break;
          case AggFn::kNone: break;
        }
        counts[g] += 1;
      }
    }
    pos = r;
  }
}

/// Memory budget for the flat path: per-morsel arrays are nm * ngroups
/// cells of 16 bytes. Past these bounds the hash path is the better deal.
constexpr uint64_t kFlatMaxGroups = 4096;
constexpr uint64_t kFlatMaxCells = 1ull << 22;

}  // namespace

size_t ParallelGroupedAgg(const int64_t* gids, uint64_t n,
                          const double* vals_f64, const int64_t* vals_i64,
                          AggFn fn, uint64_t ngroups,
                          const ParallelAggOptions& opts, double* out_vals,
                          int64_t* out_counts) {
  MorselSource src(0, n, opts.morsel_rows);
  const size_t nm = src.num_morsels();
  if (nm < 2 || opts.scheduler == nullptr || ngroups == 0) return 0;
  MorselScheduler& sched = *opts.scheduler;

  if (ngroups <= kFlatMaxGroups &&
      static_cast<uint64_t>(nm) * ngroups <= kFlatMaxCells) {
    // Dense-range flat path. Same structure as the hash path below — phase 1
    // per-morsel partials, phase 2 contiguous-gid-range merge folding
    // morsels in index order — with arrays instead of hash tables.
    const double init = fn == AggFn::kMin ? 1e300
                        : fn == AggFn::kMax ? -1e300
                                            : 0.0;
    std::vector<FlatPartial> partials(nm);
    sched.ParallelFor(nm, [&](size_t i, int) {
      partials[i].vals.assign(ngroups, init);
      partials[i].counts.assign(ngroups, 0);
      const Morsel ms = src.morsel(i);
      IngestFlat(gids, vals_f64, vals_i64, fn, ms.begin, ms.end, opts.simd,
                 &partials[i]);
    });

    // nm * ngroups cells of 16 bytes, live until the merge below finishes.
    obs::ScopedMemCharge partials_charge(
        static_cast<uint64_t>(nm) * ngroups *
        (sizeof(double) + sizeof(int64_t)));

    size_t nparts = static_cast<size_t>(sched.num_workers()) + 1;
    if (nparts > ngroups) nparts = ngroups;
    sched.ParallelFor(nparts, [&](size_t p, int) {
      // Partition p owns gids with gid * nparts / ngroups == p — the range
      // [ceil(p*ngroups/nparts), ceil((p+1)*ngroups/nparts)). Groups absent
      // from a morsel are skipped (count 0), so each output slot sees
      // exactly the folds the hash merge performs, in morsel index order.
      const uint64_t lo = (p * ngroups + nparts - 1) / nparts;
      const uint64_t hi = ((p + 1) * ngroups + nparts - 1) / nparts;
      for (uint64_t g = lo; g < hi; ++g) {
        double v = out_vals[g];
        int64_t c = out_counts[g];
        for (size_t i = 0; i < nm; ++i) {
          if (partials[i].counts[g] == 0) continue;
          const double pv = partials[i].vals[g];
          switch (fn) {
            case AggFn::kSum:
            case AggFn::kAvg:
            case AggFn::kCount: v += pv; break;
            case AggFn::kMin: v = std::min(v, pv); break;
            case AggFn::kMax: v = std::max(v, pv); break;
            case AggFn::kNone: break;
          }
          c += partials[i].counts[g];
        }
        out_vals[g] = v;
        out_counts[g] = c;
      }
    });
    return nm;
  }

  // Phase 1 — per-morsel partials. Tables are per *morsel*, not per worker:
  // the merge folds them in morsel index order, so the result is independent
  // of which worker ran what (per-worker partials would reassociate
  // differently every run). Each morsel buckets its groups by output
  // partition as it finishes, so the merge scans every group exactly once.
  size_t nparts = static_cast<size_t>(sched.num_workers()) + 1;
  if (nparts > ngroups) nparts = ngroups;
  std::vector<AggTable> partials(nm);
  std::vector<std::vector<std::vector<uint32_t>>> pbuckets(nm);
  sched.ParallelFor(nm, [&](size_t i, int) {
    AggTable& tab = partials[i];
    const Morsel ms = src.morsel(i);
    for (uint64_t pos = ms.begin; pos < ms.end; ++pos) {
      const double v = vals_f64 != nullptr ? vals_f64[pos]
                       : vals_i64 != nullptr
                           ? static_cast<double>(vals_i64[pos])
                           : 1.0;
      tab.Update(fn, gids[pos], v, pos);
    }
    pbuckets[i].resize(nparts);
    for (uint32_t s = 0; s < tab.num_groups(); ++s) {
      const uint64_t gid = static_cast<uint64_t>(tab.key(s));
      pbuckets[i][gid * nparts / ngroups].push_back(s);
    }
  });

  // Per-morsel hash partials, live until the merge below folds them.
  obs::ScopedMemCharge partials_charge;
  for (const AggTable& tab : partials) partials_charge.Add(tab.byte_size());

  // Phase 2 — merge: partition p owns the group ids with
  // gid * nparts / ngroups == p (a contiguous range), so each output slot is
  // folded by exactly one worker and the folds race with nothing.
  sched.ParallelFor(nparts, [&](size_t p, int) {
    for (size_t i = 0; i < nm; ++i) {
      const AggTable& tab = partials[i];
      for (uint32_t s : pbuckets[i][p]) {
        const int64_t gid = tab.key(s);
        switch (fn) {
          case AggFn::kSum:
          case AggFn::kAvg:
          case AggFn::kCount: out_vals[gid] += tab.agg_val(s); break;
          case AggFn::kMin:
            out_vals[gid] = std::min(out_vals[gid], tab.agg_val(s));
            break;
          case AggFn::kMax:
            out_vals[gid] = std::max(out_vals[gid], tab.agg_val(s));
            break;
          case AggFn::kNone: break;
        }
        out_counts[gid] += tab.agg_count(s);
      }
    }
  });
  return nm;
}

}  // namespace apq
