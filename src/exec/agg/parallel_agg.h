// Morsel-parallel aggregation: thread-local pre-aggregation with a
// partitioned merge.
//
// Group-by ingest and grouped aggregation were the last heavy operators
// still running whole-column (select and fetch-join morselized in an earlier
// step): one sequential hash-insert loop over the full input. This pipeline
// splits the input into morsels on the work-stealing scheduler
// (sched/morsel_scheduler.h):
//
//  * ParallelGroupBy — each scheduler worker ingests its morsels into a
//    thread-local AggTable (local group ids, per-key minimum input
//    position), the tables are merged by radix partition of the key hash
//    (each partition merged by one worker), and group ids are renumbered by
//    ranking keys on their earliest input position — which reproduces the
//    scalar interpreter's first-occurrence numbering *bit-identically*,
//    regardless of morsel size, worker count, or steal order.
//
//  * ParallelGroupedAgg — each *morsel* folds its rows into a private
//    AggTable keyed by (already-global) group id; partials are merged over
//    contiguous group-id ranges, one range per worker, folding tables in
//    morsel index order so the result is deterministic across worker counts
//    and runs. Counts and MIN/MAX/COUNT values are bit-identical to the
//    scalar loop; SUM/AVG reassociate across morsel boundaries (partial sums
//    added in morsel order), which is deterministic but may differ from the
//    sequential fold in the last bits.
#ifndef APQ_EXEC_AGG_PARALLEL_AGG_H_
#define APQ_EXEC_AGG_PARALLEL_AGG_H_

#include <cstdint>
#include <vector>

#include "exec/agg/agg_table.h"
#include "exec/morsel_source.h"
#include "exec/op_kind.h"
#include "exec/simd/simd_ops.h"
#include "sched/morsel_scheduler.h"

namespace apq {

/// \brief How the aggregation pipeline splits and schedules its input.
struct ParallelAggOptions {
  uint64_t morsel_rows = kDefaultMorselRows;
  MorselScheduler* scheduler = nullptr;  ///< required; callers share fleets
  /// SIMD dispatch table for the dense-range ingest reductions (null ops or
  /// null entries fold row-at-a-time). Only folds whose result provably
  /// equals the per-row fold run vectorized, so outputs stay bit-identical
  /// across tiers.
  const simd::SimdOps* simd = nullptr;
};

/// \brief Morsel-parallel group-by over `keys[0..n)`.
///
/// Appends n group ids to `out_gids` and the distinct keys (indexed by group
/// id) to `out_keys`, numbering groups in global first-occurrence order —
/// bit-identical to the sequential insert loop. Appends one MorselMetrics
/// per ingest morsel to `morsels` (tuples_in = tuples_out = morsel rows).
///
/// Returns the number of morsels run; 0 when the input fits in fewer than
/// two morsels or no scheduler was given — the caller should then run its
/// sequential path (nothing has been written).
size_t ParallelGroupBy(const int64_t* keys, uint64_t n,
                       const ParallelAggOptions& opts,
                       std::vector<int64_t>* out_gids,
                       std::vector<int64_t>* out_keys,
                       std::vector<MorselMetrics>* morsels);

/// \brief Morsel-parallel grouped aggregation.
///
/// `gids[0..n)` are dense group ids in [0, ngroups); row i's value is
/// vals_f64[i] / vals_i64[i] (whichever is non-null) or 1.0 when both are
/// null (COUNT). Folds into out_vals/out_counts[0..ngroups), which the
/// caller must have initialized to the scalar init (kMin: 1e300, kMax:
/// -1e300, else 0; counts 0). AVG is left as (sum, count) — the caller
/// divides, as on the sequential path.
///
/// Returns the number of morsels run; 0 = caller runs its sequential loop
/// (nothing has been written).
size_t ParallelGroupedAgg(const int64_t* gids, uint64_t n,
                          const double* vals_f64, const int64_t* vals_i64,
                          AggFn fn, uint64_t ngroups,
                          const ParallelAggOptions& opts, double* out_vals,
                          int64_t* out_counts);

}  // namespace apq

#endif  // APQ_EXEC_AGG_PARALLEL_AGG_H_
