#include "exec/agg/agg_table.h"

namespace apq {

namespace {

double AggInit(AggFn fn) {
  switch (fn) {
    case AggFn::kMin: return 1e300;
    case AggFn::kMax: return -1e300;
    default: return 0.0;
  }
}

}  // namespace

AggTable::AggTable(uint64_t expected_groups) {
  // 3/4 max load: buckets >= groups * 4/3, floor of 64 to keep the growth
  // path off the tiny-table fast case.
  const uint64_t want = expected_groups == 0 ? 64 : expected_groups * 4 / 3 + 1;
  const uint64_t nb = NextPow2(want < 64 ? 64 : want);
  buckets_.assign(nb, 0);
  mask_ = nb - 1;
  if (expected_groups > 0) {
    keys_.reserve(expected_groups);
    first_pos_.reserve(expected_groups);
  }
}

void AggTable::Rehash(uint64_t new_buckets) {
  buckets_.assign(new_buckets, 0);
  mask_ = new_buckets - 1;
  for (uint32_t slot = 0; slot < keys_.size(); ++slot) {
    uint64_t b = Mix(keys_[slot]) & mask_;
    while (buckets_[b] != 0) b = (b + 1) & mask_;
    buckets_[b] = slot + 1;
  }
}

uint32_t AggTable::FindOrInsert(int64_t key, uint64_t pos) {
  if ((keys_.size() + 1) * 4 > buckets_.size() * 3) {
    Rehash(buckets_.size() * 2);
  }
  uint64_t b = Mix(key) & mask_;
  for (;;) {
    const uint32_t e = buckets_[b];
    if (e == 0) {
      const uint32_t slot = static_cast<uint32_t>(keys_.size());
      buckets_[b] = slot + 1;
      keys_.push_back(key);
      first_pos_.push_back(pos);
      return slot;
    }
    const uint32_t slot = e - 1;
    if (keys_[slot] == key) {
      // Keep the earliest position: ingest order is arbitrary under work
      // stealing, but the minimum over all occurrences is schedule-invariant.
      if (pos < first_pos_[slot]) first_pos_[slot] = pos;
      return slot;
    }
    b = (b + 1) & mask_;
  }
}

uint32_t AggTable::Find(int64_t key) const {
  uint64_t b = Mix(key) & mask_;
  for (;;) {
    const uint32_t e = buckets_[b];
    if (e == 0) return kNoSlot;
    const uint32_t slot = e - 1;
    if (keys_[slot] == key) return slot;
    b = (b + 1) & mask_;
  }
}

uint32_t AggTable::Update(AggFn fn, int64_t key, double v, uint64_t pos) {
  const uint32_t slot = FindOrInsert(key, pos);
  if (vals_.size() < keys_.size()) {
    vals_.resize(keys_.size(), AggInit(fn));
    counts_.resize(keys_.size(), 0);
  }
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kAvg: vals_[slot] += v; break;
    case AggFn::kCount: vals_[slot] += 1.0; break;
    case AggFn::kMin:
      if (v < vals_[slot]) vals_[slot] = v;
      break;
    case AggFn::kMax:
      if (v > vals_[slot]) vals_[slot] = v;
      break;
    case AggFn::kNone: break;
  }
  counts_[slot] += 1;
  return slot;
}

}  // namespace apq
