// Flat open-addressing aggregation hash table.
//
// The scalar interpreter builds groups through a node-based
// std::unordered_map insert loop; this table is the cache-friendly
// replacement the parallel aggregation pipeline (parallel_agg.h) builds its
// thread-local partials in: one linear-probed bucket array of 4-byte slot
// references over dense columnar group storage (keys, first-occurrence
// positions, and SUM/AVG/COUNT/MIN/MAX aggregate state).
//
// Keys are int64 — ints, date days, and dictionary codes all share that
// storage (storage/column.h), so one specialization covers every group-by
// attribute the engine produces. Slots are numbered in insertion order,
// which is what lets the partitioned merge renumber thread-local group ids
// into the scalar path's global first-occurrence order.
#ifndef APQ_EXEC_AGG_AGG_TABLE_H_
#define APQ_EXEC_AGG_AGG_TABLE_H_

#include <cstdint>
#include <vector>

#include "exec/op_kind.h"
#include "util/hash_clock.h"

namespace apq {

/// \brief Open-addressing hash table from int64 key to a dense group slot,
/// with optional per-slot aggregate state. Not thread-safe: the parallel
/// pipeline gives each worker (or morsel) its own table and merges afterward.
class AggTable {
 public:
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

  /// `expected_groups` pre-sizes the bucket array (0 = start minimal and
  /// grow by doubling at 3/4 load).
  explicit AggTable(uint64_t expected_groups = 0);

  /// Returns the slot of `key`, inserting a new slot (id = num_groups() - 1,
  /// insertion order) on first sight. `pos` is the input position of this
  /// occurrence: the slot records the *minimum* position ever passed, so
  /// after ingesting any subset of the input in any order, first_pos(slot)
  /// is the position of the key's earliest occurrence in that subset.
  uint32_t FindOrInsert(int64_t key, uint64_t pos);

  /// Slot of `key`, or kNoSlot when absent. Never inserts.
  uint32_t Find(int64_t key) const;

  /// Fused FindOrInsert + aggregate fold, one input row at a time: folds `v`
  /// into the slot's value per `fn` (kSum/kAvg accumulate, kCount adds 1
  /// ignoring v, kMin/kMax fold) and increments the slot's count — exactly
  /// the scalar interpreter's per-row update. New slots start from the
  /// scalar init (kMin: 1e300, kMax: -1e300, else 0). A table must not mix
  /// Update calls of different fns.
  uint32_t Update(AggFn fn, int64_t key, double v, uint64_t pos);

  uint64_t num_groups() const { return keys_.size(); }
  int64_t key(uint32_t slot) const { return keys_[slot]; }
  uint64_t first_pos(uint32_t slot) const { return first_pos_[slot]; }
  double agg_val(uint32_t slot) const { return vals_[slot]; }
  int64_t agg_count(uint32_t slot) const { return counts_[slot]; }

  uint64_t byte_size() const {
    return buckets_.size() * sizeof(uint32_t) + keys_.size() * 8 +
           first_pos_.size() * 8 + vals_.size() * 8 + counts_.size() * 8;
  }

  /// The 64-bit finalizer used for bucket addressing (util/hash_clock.h),
  /// exposed so the merge can radix-partition keys with the same mix.
  static uint64_t Mix(int64_t key) { return MixHash64(key); }

 private:
  void Rehash(uint64_t new_buckets);

  std::vector<uint32_t> buckets_;  // 1 + slot; 0 = empty
  uint64_t mask_ = 0;
  // Dense group storage, indexed by slot. vals_/counts_ stay empty until the
  // first Update (FindOrInsert-only tables carry no aggregate state).
  std::vector<int64_t> keys_;
  std::vector<uint64_t> first_pos_;
  std::vector<double> vals_;
  std::vector<int64_t> counts_;
};

}  // namespace apq

#endif  // APQ_EXEC_AGG_AGG_TABLE_H_
