#include "exec/cost_model.h"

#include <cmath>

namespace apq {

double CostModel::Work(const OpMetrics& m) const {
  double ns = params_.dispatch_ns;
  switch (m.kind) {
    case OpKind::kSelect:
      ns += m.tuples_in * params_.scan_ns_per_tuple;
      ns += m.random_accesses *
            params_.RandomAccessNs(static_cast<double>(m.random_working_set));
      ns += m.tuples_out * params_.out_ns_per_tuple;
      break;
    case OpKind::kFetchJoin:
      // Sequential pass over the candidate list plus one random gather per
      // in-slice candidate.
      ns += m.tuples_in * params_.scan_ns_per_tuple;
      ns += m.random_accesses *
            params_.RandomAccessNs(static_cast<double>(m.random_working_set));
      ns += m.tuples_out * params_.out_ns_per_tuple;
      break;
    case OpKind::kJoin:
      ns += m.hash_build_rows * params_.hash_insert_ns;
      ns += m.random_accesses *
            params_.RandomAccessNs(static_cast<double>(m.random_working_set));
      ns += m.tuples_out * 2 * params_.out_ns_per_tuple;
      break;
    case OpKind::kGroupBy:
      ns += m.tuples_in *
            (params_.group_ns_per_tuple +
             0.05 * params_.RandomAccessNs(
                        static_cast<double>(m.random_working_set)));
      ns += m.tuples_in * params_.scan_ns_per_tuple;
      break;
    case OpKind::kAggregate:
    case OpKind::kAggrMerge:
      ns += m.tuples_in * 1.5 * params_.scan_ns_per_tuple;
      ns += m.tuples_out * params_.out_ns_per_tuple;
      break;
    case OpKind::kExchangeUnion:
      // Pure materialization: copies every input byte (paper §2.1 "medium":
      // the union turns expensive under low selectivity).
      ns += m.bytes_in * params_.copy_ns_per_byte;
      break;
    case OpKind::kMap:
      ns += m.tuples_in * params_.scan_ns_per_tuple;
      ns += m.tuples_out * params_.out_ns_per_tuple;
      break;
    case OpKind::kSort:
    case OpKind::kTopN: {
      double n = static_cast<double>(m.sort_rows);
      if (n > 1) ns += n * std::log2(n) * params_.sort_ns_per_item;
      ns += m.tuples_out * params_.out_ns_per_tuple;
      break;
    }
    case OpKind::kResult:
      ns = 0;  // the terminal marker costs nothing
      break;
  }
  return ns;
}

double CostModel::MemIntensity(const OpMetrics& m) const {
  bool big_ws = static_cast<double>(m.random_working_set) > params_.l3_bytes;
  switch (m.kind) {
    case OpKind::kSelect: return 0.55;
    case OpKind::kFetchJoin: return big_ws ? 0.85 : 0.35;
    case OpKind::kJoin: return big_ws ? 0.80 : 0.40;
    case OpKind::kGroupBy: return big_ws ? 0.75 : 0.40;
    case OpKind::kAggregate:
    case OpKind::kAggrMerge: return 0.40;
    case OpKind::kExchangeUnion: return 0.90;
    case OpKind::kMap: return 0.60;
    case OpKind::kSort:
    case OpKind::kTopN: return 0.30;
    case OpKind::kResult: return 0.0;
  }
  return 0.5;
}

}  // namespace apq
