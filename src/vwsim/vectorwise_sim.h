// Vectorwise-like comparator (paper §4.2.4).
//
// Vectorwise 3.5.1 generated cost-model exchange-operator parallel plans with
// resource allocation driven by admission control: under a heavy concurrent
// workload, the first client's query receives all resources while the
// remaining clients' queries get progressively fewer cores — effectively
// executing serially. We model exactly that policy on top of the same
// simulated machine: the DOP of a query is chosen from the cost model's
// estimate of total work and the cores granted by admission control.
#ifndef APQ_VWSIM_VECTORWISE_SIM_H_
#define APQ_VWSIM_VECTORWISE_SIM_H_

#include "engine/engine.h"
#include "service/admission_limits.h"

namespace apq {

/// \brief Vectorwise-policy configuration. The defaults come from
/// service/admission_limits.h — the same constants the live query service
/// enforces — so the simulated comparator and the served engine cannot
/// drift apart.
struct VectorwiseConfig {
  /// Target per-core work (ns): the cost model picks DOP ~ total_work / this.
  /// Sized for the repository's scaled-down datasets (DESIGN.md §2).
  double work_per_core_ns = service::kDefaultWorkPerCoreNs;
  /// Admission control: clients beyond the first get
  /// service::AdmissionGrant(cores, active_clients) cores. The first client
  /// gets every core.
  bool admission_control = true;
};

/// \brief Runs a query the way Vectorwise would: static cost-model DOP under
/// admission control.
class VectorwiseSim {
 public:
  explicit VectorwiseSim(VectorwiseConfig config = VectorwiseConfig())
      : config_(config) {}

  /// Chooses the DOP for a query given its serial profile and the number of
  /// concurrently active clients. `first_client` marks the privileged stream.
  int ChooseDop(Engine& engine, const QueryPlan& serial_plan,
                int active_clients, bool first_client) const;

  /// Executes with the chosen DOP (exchange-operator plan = the static
  /// parallelizer's plan at that DOP).
  StatusOr<QueryRunResult> Run(Engine& engine, const QueryPlan& serial_plan,
                               int active_clients, bool first_client,
                               const std::vector<SimTask>& background = {},
                               uint64_t seed_salt = 0) const;

 private:
  VectorwiseConfig config_;
};

}  // namespace apq

#endif  // APQ_VWSIM_VECTORWISE_SIM_H_
