#include "vwsim/vectorwise_sim.h"

#include <algorithm>
#include <cmath>

namespace apq {

int VectorwiseSim::ChooseDop(Engine& engine, const QueryPlan& serial_plan,
                             int active_clients, bool first_client) const {
  int cores = engine.config().sim.logical_cores;
  int granted = cores;
  if (config_.admission_control && !first_client) {
    // The shared grant formula (service/admission_limits.h): the live query
    // service degrades per-query workers with exactly this policy.
    granted = service::AdmissionGrant(cores, active_clients);
  }
  // Cost-model DOP: enough partitions that each core gets at least
  // work_per_core_ns of work, capped by the granted cores.
  EvalResult er;
  Status st = engine.evaluator()->Execute(serial_plan, &er);
  if (!st.ok()) return 1;
  double total_work = 0;
  for (const auto& m : er.metrics) total_work += engine.cost_model().Work(m);
  int by_cost =
      static_cast<int>(std::floor(total_work / config_.work_per_core_ns));
  return std::max(1, std::min(granted, by_cost));
}

StatusOr<QueryRunResult> VectorwiseSim::Run(
    Engine& engine, const QueryPlan& serial_plan, int active_clients,
    bool first_client, const std::vector<SimTask>& background,
    uint64_t seed_salt) const {
  int dop = ChooseDop(engine, serial_plan, active_clients, first_client);
  if (dop <= 1) return engine.RunPlan(serial_plan, background, seed_salt);
  return engine.RunHeuristic(serial_plan, dop, background, seed_salt);
}

}  // namespace apq
