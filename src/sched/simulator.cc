#include "sched/simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace apq {

namespace {
constexpr double kEps = 1e-6;
}

SimOutcome Simulator::Run(const std::vector<SimTask>& tasks,
                          uint64_t run_seed_salt) const {
  SimOutcome out;
  const size_t n = tasks.size();
  out.timings.assign(n, SimTaskTiming{});
  if (n == 0) return out;

  Rng rng(config_.seed * 0x9E3779B97F4A7C15ULL + run_seed_salt + 1);

  // Apply noise and OS-interference peaks to each task's work.
  std::vector<double> remaining(n);
  for (size_t i = 0; i < n; ++i) {
    double w = tasks[i].work_ns;
    if (config_.noise_sigma > 0) {
      w *= std::exp(rng.NextGaussian() * config_.noise_sigma);
    }
    if (config_.peak_probability > 0 &&
        rng.NextDouble() < config_.peak_probability) {
      w *= config_.peak_magnitude;
    }
    if (w < 1.0) w = 1.0;
    remaining[i] = w;
    out.timings[i].noisy_work_ns = w;
  }

  // Dependency bookkeeping.
  std::vector<int> pending_deps(n, 0);
  std::vector<std::vector<int>> consumers(n);
  for (size_t i = 0; i < n; ++i) {
    pending_deps[i] = static_cast<int>(tasks[i].deps.size());
    for (int d : tasks[i].deps) consumers[d].push_back(static_cast<int>(i));
  }

  // Tasks whose deps are met but whose arrival is in the future.
  std::vector<int> waiting_arrival;
  // Ready tasks, FIFO per instance. Core assignment is fair across
  // instances (each client connection has its own interpreter; the scheduler
  // round-robins clients rather than letting one batch monopolize cores).
  int max_inst = 0;
  for (const auto& t : tasks) max_inst = std::max(max_inst, t.instance);
  std::vector<std::deque<int>> ready(max_inst + 1);
  std::vector<int> running_per_instance(max_inst + 1, 0);
  size_t num_ready = 0;
  auto push_ready = [&](int t) {
    ready[tasks[t].instance].push_back(t);
    ++num_ready;
  };
  auto pop_ready = [&]() {
    int best_inst = -1;
    for (int i = 0; i <= max_inst; ++i) {
      if (ready[i].empty()) continue;
      if (best_inst < 0 ||
          running_per_instance[i] < running_per_instance[best_inst]) {
        best_inst = i;
      }
    }
    int t = ready[best_inst].front();
    ready[best_inst].pop_front();
    --num_ready;
    return t;
  };
  for (size_t i = 0; i < n; ++i) {
    if (pending_deps[i] == 0) {
      if (tasks[i].arrival_ns > 0) waiting_arrival.push_back(static_cast<int>(i));
      else push_ready(static_cast<int>(i));
    }
  }
  std::sort(waiting_arrival.begin(), waiting_arrival.end(), [&](int a, int b) {
    return tasks[a].arrival_ns < tasks[b].arrival_ns;
  });
  size_t next_arrival_idx = 0;

  std::vector<int> running;
  std::vector<bool> core_busy(config_.logical_cores, false);
  double now = 0;
  size_t completed = 0;

  auto alloc_core = [&]() {
    for (int c = 0; c < config_.logical_cores; ++c) {
      if (!core_busy[c]) {
        core_busy[c] = true;
        return c;
      }
    }
    return -1;
  };

  // Rate of each running task given the current running set:
  //   cpu share:   full speed while active <= physical cores; hyperthreads
  //                only add smt_throughput each beyond that.
  //   memory share: memory-bound fraction slows when the summed intensity
  //                exceeds the number of sustained memory streams.
  auto compute_rates = [&](std::vector<double>* rates) {
    int active = static_cast<int>(running.size());
    double cpu_share = 1.0;
    if (active > config_.physical_cores) {
      double capacity =
          config_.physical_cores +
          config_.smt_throughput *
              std::min(active - config_.physical_cores,
                       config_.logical_cores - config_.physical_cores);
      cpu_share = capacity / active;
    }
    double mem_sum = 0;
    for (int t : running) mem_sum += tasks[t].mem_intensity;
    double mem_factor =
        mem_sum > config_.mem_streams ? config_.mem_streams / mem_sum : 1.0;
    rates->resize(running.size());
    for (size_t i = 0; i < running.size(); ++i) {
      double m = tasks[running[i]].mem_intensity;
      (*rates)[i] = cpu_share * ((1.0 - m) + m * mem_factor);
      if ((*rates)[i] < 1e-9) (*rates)[i] = 1e-9;
    }
  };

  std::vector<double> rates;
  while (completed < n) {
    // Admit arrivals whose time has come.
    while (next_arrival_idx < waiting_arrival.size() &&
           tasks[waiting_arrival[next_arrival_idx]].arrival_ns <= now + kEps) {
      push_ready(waiting_arrival[next_arrival_idx]);
      ++next_arrival_idx;
    }
    // Start ready tasks on free cores, fairly across instances.
    while (num_ready > 0) {
      int core = alloc_core();
      if (core < 0) break;
      int t = pop_ready();
      running.push_back(t);
      ++running_per_instance[tasks[t].instance];
      out.timings[t].start_ns = now;
      out.timings[t].core = core;
    }

    compute_rates(&rates);

    // Time to next completion among running tasks.
    double dt = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < running.size(); ++i) {
      dt = std::min(dt, remaining[running[i]] / rates[i]);
    }
    // Time to next arrival.
    if (next_arrival_idx < waiting_arrival.size()) {
      double ta = tasks[waiting_arrival[next_arrival_idx]].arrival_ns - now;
      if (running.empty() || ta < dt) dt = ta;
    }
    if (!std::isfinite(dt)) break;  // deadlock guard (cyclic deps)
    if (dt < 0) dt = 0;

    now += dt;
    // Progress running tasks and collect completions.
    std::vector<int> finished;
    for (size_t i = 0; i < running.size(); ++i) {
      remaining[running[i]] -= rates[i] * dt;
      if (remaining[running[i]] <= kEps) finished.push_back(running[i]);
    }
    for (int t : finished) {
      out.timings[t].end_ns = now;
      core_busy[out.timings[t].core] = false;
      running.erase(std::find(running.begin(), running.end(), t));
      --running_per_instance[tasks[t].instance];
      ++completed;
      for (int c : consumers[t]) {
        if (--pending_deps[c] == 0) {
          if (tasks[c].arrival_ns > now + kEps) {
            // Insert keeping arrival order.
            auto pos = std::upper_bound(
                waiting_arrival.begin() + next_arrival_idx,
                waiting_arrival.end(), c, [&](int a, int b) {
                  return tasks[a].arrival_ns < tasks[b].arrival_ns;
                });
            waiting_arrival.insert(pos, c);
          } else {
            push_ready(c);
          }
        }
      }
    }
  }

  // Outcome statistics.
  int max_instance = 0;
  for (const auto& t : tasks) max_instance = std::max(max_instance, t.instance);
  out.instance_completion_ns.assign(max_instance + 1, 0.0);
  std::vector<double> instance_arrival(max_instance + 1, 1e300);
  for (size_t i = 0; i < n; ++i) {
    out.makespan_ns = std::max(out.makespan_ns, out.timings[i].end_ns);
    out.total_busy_ns += out.timings[i].end_ns - out.timings[i].start_ns;
    int inst = tasks[i].instance;
    out.instance_completion_ns[inst] =
        std::max(out.instance_completion_ns[inst], out.timings[i].end_ns);
    instance_arrival[inst] = std::min(instance_arrival[inst], tasks[i].arrival_ns);
  }
  out.instance_response_ns.resize(max_instance + 1);
  for (int i = 0; i <= max_instance; ++i) {
    out.instance_response_ns[i] =
        out.instance_completion_ns[i] -
        (instance_arrival[i] > 1e299 ? 0.0 : instance_arrival[i]);
  }
  if (out.makespan_ns > 0) {
    out.utilization = out.total_busy_ns / (out.makespan_ns * config_.logical_cores);
  }
  return out;
}

}  // namespace apq
