// A fixed-size worker thread pool for real (wall-clock) parallel execution.
//
// The virtual-time simulator (simulator.h) models the paper's 32/96-thread
// machines; this pool is the hardware-truth counterpart: the evaluator
// schedules independent plan nodes (the clone subtrees created by exchange
// mutations) onto these workers, so parallelized plans actually run in
// parallel on the host CPU.
//
// Tasks may submit further tasks (the evaluator enqueues a node's consumers
// as they become ready); tasks must never block on other tasks. Completion is
// tracked by the caller (the pool itself only drains on destruction).
#ifndef APQ_SCHED_THREAD_POOL_H_
#define APQ_SCHED_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apq {

/// \brief Fixed-size FIFO thread pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are still executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` for execution on some worker. Safe to call from within a
  /// running task.
  void Submit(std::function<void()> fn);

  /// A sensible default worker count for this host.
  static int DefaultThreads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace apq

#endif  // APQ_SCHED_THREAD_POOL_H_
