#include "sched/thread_pool.h"

namespace apq {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace apq
