// Morsel-driven intra-operator execution: a work-stealing task scheduler.
//
// The thread pool (thread_pool.h) exploits *inter-node* dataflow parallelism:
// independent plan nodes (exchange clone subtrees) run concurrently, but one
// dense scan still occupies one core. This scheduler supplies the missing
// *intra-operator* axis, HyPer-style: an operator's input is split into
// fixed-size morsels (~64K rows, see exec/morsel_source.h), each morsel is an
// independent task producing a thread-local result fragment, and fragments
// are concatenated in morsel order so results stay bit-identical to serial
// whole-column execution.
//
// Scheduling is work-stealing over per-worker deques: a ParallelFor call
// distributes its morsels in contiguous blocks across the workers' deques,
// each worker pops its own deque LIFO (the block it was dealt, cache-warm)
// and steals FIFO from a victim when its own deque runs dry (cold end of the
// victim's block, classic Chase-Lev discipline with a small mutex per deque —
// morsel tasks are tens of microseconds, so lock cost is noise).
//
// The scheduler is *shared*: many queries (and many node-pool workers inside
// one query) may call ParallelFor concurrently; their morsels interleave on
// one worker fleet instead of each query spawning its own pool. The calling
// thread participates in its own job until no unclaimed morsels of that job
// remain, so a query never fully blocks behind another query's backlog.
#ifndef APQ_SCHED_MORSEL_SCHEDULER_H_
#define APQ_SCHED_MORSEL_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace apq {

/// \brief What one scheduler worker has done over its lifetime (observability
/// for benches and the concurrent-workload example; read when quiescent).
struct MorselWorkerStats {
  uint64_t tasks = 0;   ///< morsel tasks this worker executed
  uint64_t steals = 0;  ///< of those, taken from another worker's deque
};

/// \brief Work-stealing morsel scheduler with per-worker deques.
///
/// Thread-safe: ParallelFor may be called from any number of threads
/// concurrently (multi-query sharing). Tasks must not call ParallelFor on the
/// same scheduler (no nesting; the evaluator never does).
class MorselScheduler {
 public:
  /// Spawns `num_workers` workers; 0 = one per hardware thread.
  explicit MorselScheduler(int num_workers = 0);

  /// Joins all workers. All ParallelFor calls must have returned.
  ~MorselScheduler();

  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(task_index, worker)` for every task_index in [0, num_tasks),
  /// potentially in parallel, and returns when all have completed. `worker`
  /// is the executing worker id, or kCallerWorker when the submitting thread
  /// ran the task itself. Task order is unspecified; callers must make
  /// results order-independent (index into a fragment array).
  void ParallelFor(size_t num_tasks,
                   const std::function<void(size_t, int)>& fn);

  /// Worker id reported for tasks the submitting thread executed.
  static constexpr int kCallerWorker = -1;

  /// Per-worker lifetime counters (tasks run by submitting threads are in
  /// caller_tasks()).
  std::vector<MorselWorkerStats> worker_stats() const;
  uint64_t caller_tasks() const { return caller_tasks_.load(); }
  /// Total morsel tasks completed (workers + callers).
  uint64_t total_tasks() const;

  /// A process-wide scheduler (hardware-sized) for callers that want the
  /// default shared fleet without wiring one through explicitly.
  static const std::shared_ptr<MorselScheduler>& Shared();

 private:
  struct Job;
  struct Task {
    Job* job = nullptr;
    size_t index = 0;
  };
  // One worker's deque + counters, padded so neighbours don't false-share.
  struct alignas(64) WorkerSlot {
    std::mutex mu;
    std::deque<Task> dq;
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> steals{0};
  };

  void WorkerLoop(int w);
  bool PopOwn(int w, Task* out);
  /// On success `*victim` (when non-null) is the worker whose deque the task
  /// came from — the steal trace event's a1.
  bool StealAny(int w, Task* out, int* victim = nullptr);
  bool PopForJob(Job* job, Task* out);
  static void RunTask(const Task& t, int worker);

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> caller_tasks_{0};
  std::atomic<size_t> next_deal_{0};  // round-robin base for job distribution

  // Registry instruments, resolved once per scheduler (metrics aggregate
  // across scheduler instances; tests diff before/after a quiescent run).
  // Always-on: one relaxed atomic add per task on top of the slot counters.
  std::vector<obs::Counter*> m_worker_tasks_;   // per worker index
  std::vector<obs::Counter*> m_worker_steals_;  // per worker index
  obs::Counter* m_tasks_ = nullptr;             // all claims (workers+caller)
  obs::Counter* m_steals_ = nullptr;
  obs::Counter* m_caller_tasks_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;         // submitted-but-unclaimed
  obs::Histogram* m_steal_latency_ = nullptr;   // ns from own-deque-dry to
                                                // successful steal

  // Sleep/wake: workers wait on idle_cv_ when the whole system is out of
  // tasks; pending_ counts submitted-but-unclaimed tasks.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> pending_{0};
  bool stop_ = false;
};

}  // namespace apq

#endif  // APQ_SCHED_MORSEL_SCHEDULER_H_
