// Morsel-driven intra-operator execution: a work-stealing task scheduler.
//
// The thread pool (thread_pool.h) exploits *inter-node* dataflow parallelism:
// independent plan nodes (exchange clone subtrees) run concurrently, but one
// dense scan still occupies one core. This scheduler supplies the missing
// *intra-operator* axis, HyPer-style: an operator's input is split into
// fixed-size morsels (~64K rows, see exec/morsel_source.h), each morsel is an
// independent task producing a thread-local result fragment, and fragments
// are concatenated in morsel order so results stay bit-identical to serial
// whole-column execution.
//
// Scheduling is work-stealing over per-worker deques: a ParallelFor call
// distributes its morsels in contiguous blocks across the workers' deques,
// each worker pops its own deque LIFO (the block it was dealt, cache-warm)
// and steals FIFO from a victim when its own deque runs dry (cold end of the
// victim's block, classic Chase-Lev discipline with a small mutex per deque —
// morsel tasks are tens of microseconds, so lock cost is noise).
//
// The scheduler is *shared*: many queries (and many node-pool workers inside
// one query) may call ParallelFor concurrently; their morsels interleave on
// one worker fleet instead of each query spawning its own pool. The calling
// thread participates in its own job until no unclaimed morsels of that job
// remain, so a query never fully blocks behind another query's backlog.
#ifndef APQ_SCHED_MORSEL_SCHEDULER_H_
#define APQ_SCHED_MORSEL_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace apq {

/// \brief What one scheduler worker has done over its lifetime (observability
/// for benches and the concurrent-workload example; read when quiescent).
struct MorselWorkerStats {
  uint64_t tasks = 0;   ///< morsel tasks this worker executed
  uint64_t steals = 0;  ///< of those, taken from another worker's deque
  uint64_t steal_fails = 0;  ///< own deque dry AND nothing to steal (went idle)
  uint64_t busy_ns = 0;      ///< wall time spent executing tasks
};

/// \brief One flight-recorder sample: a periodic snapshot of scheduler
/// pressure, kept in a small ring so /debug/workers can show the recent
/// load shape, not just lifetime totals.
struct MorselFlightSample {
  double t_ns = 0;        ///< sample time relative to scheduler start
  uint64_t pending = 0;   ///< submitted-but-unclaimed tasks at sample time
  uint64_t tasks = 0;     ///< lifetime tasks completed (workers + caller)
  uint64_t steals = 0;    ///< lifetime successful steals
};

/// \brief Work-stealing morsel scheduler with per-worker deques.
///
/// Thread-safe: ParallelFor may be called from any number of threads
/// concurrently (multi-query sharing). Tasks must not call ParallelFor on the
/// same scheduler (no nesting; the evaluator never does).
class MorselScheduler {
 public:
  /// Spawns `num_workers` workers; 0 = one per hardware thread.
  explicit MorselScheduler(int num_workers = 0);

  /// Joins all workers. All ParallelFor calls must have returned.
  ~MorselScheduler();

  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(task_index, worker)` for every task_index in [0, num_tasks),
  /// potentially in parallel, and returns when all have completed. `worker`
  /// is the executing worker id, or kCallerWorker when the submitting thread
  /// ran the task itself. Task order is unspecified; callers must make
  /// results order-independent (index into a fragment array).
  void ParallelFor(size_t num_tasks,
                   const std::function<void(size_t, int)>& fn);

  /// Worker id reported for tasks the submitting thread executed.
  static constexpr int kCallerWorker = -1;

  /// Per-worker lifetime counters (tasks run by submitting threads are in
  /// caller_tasks()).
  std::vector<MorselWorkerStats> worker_stats() const;
  uint64_t caller_tasks() const { return caller_tasks_.load(); }
  uint64_t caller_busy_ns() const { return caller_busy_ns_.load(); }
  /// Total morsel tasks completed (workers + callers).
  uint64_t total_tasks() const;
  /// Submitted-but-unclaimed tasks right now (a live fleet-pressure signal;
  /// the query service reports it in /debug/service).
  uint64_t pending() const { return pending_.load(std::memory_order_relaxed); }
  /// Nanoseconds since this scheduler's workers were spawned.
  double uptime_ns() const;

  /// Oldest-first copy of the flight-recorder ring (pressure samples taken
  /// at most every ~50ms while jobs are being submitted).
  std::vector<MorselFlightSample> flight_samples() const;

  /// This scheduler's worker-health document (one entry of /debug/workers).
  std::string DebugJson() const;

  /// The /debug/workers body: every live scheduler's DebugJson under
  /// {"schedulers":[...]}. Installed as the HTTP exporter's workers
  /// provider by the first scheduler constructed.
  static std::string WorkersJson();

  /// A process-wide scheduler (hardware-sized) for callers that want the
  /// default shared fleet without wiring one through explicitly.
  static const std::shared_ptr<MorselScheduler>& Shared();

 private:
  struct Job;
  struct Task {
    Job* job = nullptr;
    size_t index = 0;
  };
  // One worker's deque + counters, padded so neighbours don't false-share.
  struct alignas(64) WorkerSlot {
    std::mutex mu;
    std::deque<Task> dq;
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> steal_fails{0};
    std::atomic<uint64_t> busy_ns{0};
  };

  void WorkerLoop(int w);
  bool PopOwn(int w, Task* out);
  /// On success `*victim` (when non-null) is the worker whose deque the task
  /// came from — the steal trace event's a1.
  bool StealAny(int w, Task* out, int* victim = nullptr);
  bool PopForJob(Job* job, Task* out);
  /// Runs the task (with the owning query's id + operator block installed),
  /// bills its duration/queue-wait, and returns the execution time in ns so
  /// the claiming side can accumulate busy time.
  static double RunTask(const Task& t, int worker);
  void MaybeSampleFlight();

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> caller_tasks_{0};
  std::atomic<uint64_t> caller_busy_ns_{0};
  std::atomic<size_t> next_deal_{0};  // round-robin base for job distribution
  double start_ns_ = 0;               // NowNs() at construction

  // Flight recorder: a small ring of recent pressure samples, written by
  // ParallelFor (rate-limited via flight_last_ns_ CAS) and copied whole by
  // DebugJson. Sized for ~6s of history at the 50ms cadence.
  static constexpr size_t kFlightCapacity = 128;
  static constexpr double kFlightIntervalNs = 50e6;
  mutable std::mutex flight_mu_;
  std::deque<MorselFlightSample> flight_;
  std::atomic<uint64_t> flight_last_ns_{0};

  // Registry instruments, resolved once per scheduler (metrics aggregate
  // across scheduler instances; tests diff before/after a quiescent run).
  // Always-on: one relaxed atomic add per task on top of the slot counters.
  std::vector<obs::Counter*> m_worker_tasks_;   // per worker index
  std::vector<obs::Counter*> m_worker_steals_;  // per worker index
  std::vector<obs::Counter*> m_worker_busy_;    // per worker index, ns
  obs::Counter* m_tasks_ = nullptr;             // all claims (workers+caller)
  obs::Counter* m_steals_ = nullptr;
  obs::Counter* m_steal_fails_ = nullptr;       // went idle with nothing left
  obs::Counter* m_caller_tasks_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;         // submitted-but-unclaimed
  obs::Histogram* m_steal_latency_ = nullptr;   // ns from own-deque-dry to
                                                // successful steal

  // Sleep/wake: workers wait on idle_cv_ when the whole system is out of
  // tasks; pending_ counts submitted-but-unclaimed tasks.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> pending_{0};
  bool stop_ = false;
};

}  // namespace apq

#endif  // APQ_SCHED_MORSEL_SCHEDULER_H_
