// Virtual-time multi-core execution simulator.
//
// The paper's experiments ran on 32/96-hardware-thread Xeon boxes. This
// repository substitutes that hardware with an event-driven processor-sharing
// simulation: each operator is a task with a single-core work amount and a
// memory intensity; tasks are scheduled dataflow-style onto N logical cores.
// The simulation models:
//   - hyper-threading: beyond the physical core count, extra logical cores
//     add only smt_throughput extra throughput each,
//   - memory-bandwidth saturation: when the summed memory intensity of
//     running tasks exceeds mem_streams, the memory-bound fraction of every
//     running task slows proportionally (processor sharing),
//   - seeded multiplicative noise and rare OS-interference peaks,
//   - per-operator dispatch latency.
// This is what stands in for "executing on the paper's multicore machine";
// all adaptive-parallelization decisions consume these simulated times.
#ifndef APQ_SCHED_SIMULATOR_H_
#define APQ_SCHED_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace apq {

/// \brief Simulated machine description (paper Table 1 shapes).
struct SimConfig {
  int logical_cores = 32;
  int physical_cores = 16;
  double smt_throughput = 0.30;  // extra throughput per hyperthread
  /// Number of fully memory-bound tasks the memory system sustains at full
  /// speed; beyond this, bandwidth is shared (two sockets, 8 channels).
  double mem_streams = 10.0;
  double noise_sigma = 0.02;       // lognormal per-task noise
  double peak_probability = 0.0;   // chance a task suffers an OS peak
  double peak_magnitude = 8.0;     // slowdown factor during a peak
  uint64_t seed = 42;

  static SimConfig TwoSocket32() { return SimConfig{}; }
  static SimConfig FourSocket96() {
    SimConfig c;
    c.logical_cores = 96;
    c.physical_cores = 48;
    c.mem_streams = 20.0;  // four sockets, more memory controllers
    return c;
  }
  static SimConfig Cores(int logical, int physical) {
    SimConfig c;
    c.logical_cores = logical;
    c.physical_cores = physical;
    return c;
  }
};

/// \brief One schedulable unit (an operator execution).
struct SimTask {
  int node_id = -1;     // plan node that produced the metrics
  int instance = 0;     // plan instance (for concurrent workloads)
  double work_ns = 0;   // single-core full-speed execution time
  double mem_intensity = 0.5;
  double arrival_ns = 0;          // earliest start (client arrival)
  std::vector<int> deps;          // indices into the task vector
};

/// \brief Timing of one executed task.
struct SimTaskTiming {
  double start_ns = 0;
  double end_ns = 0;
  int core = -1;
  double noisy_work_ns = 0;  // work after noise/peak adjustment
};

/// \brief Simulation outcome.
struct SimOutcome {
  std::vector<SimTaskTiming> timings;  // parallel to the input task vector
  double makespan_ns = 0;              // last completion
  double total_busy_ns = 0;            // sum of task durations
  /// Fraction of core-time used: total_busy / (makespan * logical_cores).
  /// This is the paper's "multi-core utilization" / "parallelism usage".
  double utilization = 0;
  /// Per instance: completion time and response (completion - arrival).
  std::vector<double> instance_completion_ns;
  std::vector<double> instance_response_ns;
};

/// \brief Event-driven dataflow simulation of the task graph.
class Simulator {
 public:
  explicit Simulator(SimConfig config) : config_(config) {}

  const SimConfig& config() const { return config_; }

  /// Runs the task graph to completion and returns timings. `run_seed_salt`
  /// decorrelates noise across repeated runs of the same plan.
  SimOutcome Run(const std::vector<SimTask>& tasks,
                 uint64_t run_seed_salt = 0) const;

 private:
  SimConfig config_;
};

}  // namespace apq

#endif  // APQ_SCHED_SIMULATOR_H_
