#include "sched/morsel_scheduler.h"

#include <sstream>
#include <string>

#include "obs/http_exporter.h"
#include "obs/query_log.h"
#include "obs/resource_tracker.h"
#include "obs/trace.h"
#include "sched/thread_pool.h"
#include "util/hash_clock.h"

namespace apq {

namespace {

// Live schedulers, for the /debug/workers provider. A scheduler's dtor
// unregisters (under this mutex) before its members are destroyed, so
// WorkersJson never reads a freed instance.
std::mutex g_sched_mu;
std::vector<const MorselScheduler*>& SchedRegistry() {
  static auto* v = new std::vector<const MorselScheduler*>();
  return *v;
}

}  // namespace

// One ParallelFor invocation: the function to run plus completion tracking.
// Lives on the caller's stack; tasks referencing it are guaranteed drained
// before ParallelFor returns. Carries the submitting thread's query id and
// operator accounting block so tasks executed on workers bill the same
// query/operator the caller would have (obs/resource_tracker.h).
struct MorselScheduler::Job {
  const std::function<void(size_t, int)>* fn = nullptr;
  std::atomic<size_t> remaining{0};
  std::mutex mu;
  std::condition_variable done_cv;
  uint64_t query_id = 0;
  obs::OpAcct* op_acct = nullptr;
  double submit_ns = 0;
};

MorselScheduler::MorselScheduler(int num_workers) {
  if (num_workers <= 0) num_workers = ThreadPool::DefaultThreads();
  start_ns_ = NowNs();
  slots_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  // Resolve the registry instruments before workers spawn: registration
  // takes the registry mutex, the per-task increments are lock-free.
  auto& reg = obs::MetricsRegistry::Global();
  m_tasks_ = reg.GetCounter("apq_sched_tasks_total");
  m_steals_ = reg.GetCounter("apq_sched_steals_total");
  m_steal_fails_ = reg.GetCounter("apq_sched_steal_fails_total");
  m_caller_tasks_ = reg.GetCounter("apq_sched_caller_tasks_total");
  m_queue_depth_ = reg.GetGauge("apq_sched_queue_depth");
  m_steal_latency_ = reg.GetHistogram("apq_sched_steal_latency_ns",
                                      obs::Histogram::LatencyBoundsNs());
  m_worker_tasks_.reserve(num_workers);
  m_worker_steals_.reserve(num_workers);
  m_worker_busy_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    const std::string idx = std::to_string(i);
    m_worker_tasks_.push_back(reg.GetCounter(
        "apq_sched_worker_tasks_total{worker=\"" + idx + "\"}"));
    m_worker_steals_.push_back(reg.GetCounter(
        "apq_sched_worker_steals_total{worker=\"" + idx + "\"}"));
    m_worker_busy_.push_back(reg.GetCounter(
        "apq_sched_worker_busy_ns_total{worker=\"" + idx + "\"}"));
  }
  {
    std::lock_guard<std::mutex> lock(g_sched_mu);
    SchedRegistry().push_back(this);
  }
  obs::SetWorkersProvider(&MorselScheduler::WorkersJson);
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

MorselScheduler::~MorselScheduler() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (auto& w : workers_) w.join();
  std::lock_guard<std::mutex> lock(g_sched_mu);
  auto& v = SchedRegistry();
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (*it == this) {
      v.erase(it);
      break;
    }
  }
}

double MorselScheduler::RunTask(const Task& t, int worker) {
  Job* job = t.job;
  const double t0 = NowNs();
  {
    // Reproduce the submitting thread's accounting context: charges and
    // trace events made inside the task land on the owning query/operator
    // even from a stolen execution on a foreign worker.
    obs::QueryIdScope qid_scope(job->query_id);
    obs::OpAcctScope acct_scope(job->op_acct);
    (*job->fn)(t.index, worker);
  }
  const double t1 = NowNs();
  if (obs::AccountingEnabled() && job->query_id != 0) {
    obs::BillTask(job->query_id, job->op_acct, t1 - t0,
                  t0 - job->submit_ns);
  }
  // Decrement *under the job lock*: the ParallelFor waiter re-checks
  // `remaining` under this same lock and destroys the stack-allocated Job the
  // moment it observes zero, so the count must never reach zero while this
  // thread has yet to take (or still holds) the mutex.
  std::lock_guard<std::mutex> lock(job->mu);
  if (job->remaining.fetch_sub(1) == 1) job->done_cv.notify_all();
  return t1 - t0;
}

bool MorselScheduler::PopOwn(int w, Task* out) {
  WorkerSlot& s = *slots_[w];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.dq.empty()) return false;
  *out = s.dq.back();  // LIFO: newest-dealt end of the own block, cache-warm
  s.dq.pop_back();
  pending_.fetch_sub(1);
  m_queue_depth_->Add(-1);
  return true;
}

bool MorselScheduler::StealAny(int w, Task* out, int* victim) {
  const int n = static_cast<int>(slots_.size());
  for (int k = 1; k < n; ++k) {
    const int v_idx = (w + k) % n;
    WorkerSlot& v = *slots_[v_idx];
    std::lock_guard<std::mutex> lock(v.mu);
    if (v.dq.empty()) continue;
    *out = v.dq.front();  // FIFO: cold end of the victim's block
    v.dq.pop_front();
    pending_.fetch_sub(1);
    m_queue_depth_->Add(-1);
    if (victim != nullptr) *victim = v_idx;
    return true;
  }
  return false;
}

bool MorselScheduler::PopForJob(Job* job, Task* out) {
  // The submitting thread only helps with its *own* job: it scans every deque
  // for a task of that job (front first — steal side), leaving other jobs'
  // tasks for the worker fleet.
  for (auto& slot : slots_) {
    WorkerSlot& s = *slot;
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.dq.begin(); it != s.dq.end(); ++it) {
      if (it->job == job) {
        *out = *it;
        s.dq.erase(it);
        pending_.fetch_sub(1);
        m_queue_depth_->Add(-1);
        return true;
      }
    }
  }
  return false;
}

void MorselScheduler::WorkerLoop(int w) {
  for (;;) {
    Task t;
    if (PopOwn(w, &t)) {
      slots_[w]->tasks.fetch_add(1);
      m_tasks_->Inc();
      m_worker_tasks_[w]->Inc();
      const double busy = RunTask(t, w);
      slots_[w]->busy_ns.fetch_add(static_cast<uint64_t>(busy));
      m_worker_busy_[w]->Inc(static_cast<uint64_t>(busy));
      continue;
    }
    // The steal path is off the hot path (own deque dry), so it can afford a
    // clock read for the steal-latency histogram even with tracing off.
    const double steal_t0 = NowNs();
    int victim = -1;
    if (StealAny(w, &t, &victim)) {
      slots_[w]->tasks.fetch_add(1);
      slots_[w]->steals.fetch_add(1);
      m_tasks_->Inc();
      m_worker_tasks_[w]->Inc();
      m_steals_->Inc();
      m_worker_steals_[w]->Inc();
      m_steal_latency_->Observe(NowNs() - steal_t0);
      obs::EmitInstant(obs::SpanKind::kSteal, "steal", w, victim);
      const double busy = RunTask(t, w);
      slots_[w]->busy_ns.fetch_add(static_cast<uint64_t>(busy));
      m_worker_busy_[w]->Inc(static_cast<uint64_t>(busy));
      continue;
    }
    // Own deque dry AND every victim dry: this worker is about to go idle.
    slots_[w]->steal_fails.fetch_add(1);
    m_steal_fails_->Inc();
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] { return stop_ || pending_.load() > 0; });
    if (stop_) return;  // all ParallelFor calls returned: nothing pending
  }
}

void MorselScheduler::ParallelFor(size_t num_tasks,
                                  const std::function<void(size_t, int)>& fn) {
  if (num_tasks == 0) return;
  Job job;
  job.fn = &fn;
  job.remaining.store(num_tasks);
  job.query_id = obs::CurrentQueryId();
  job.op_acct = obs::CurrentOpAcct();
  job.submit_ns = NowNs();

  // pending_ is raised *before* any task becomes claimable, so a worker
  // racing ahead of the dealing loop can never decrement it below zero; the
  // lock pairs with the workers' idle predicate to avoid lost wakeups.
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    pending_.fetch_add(num_tasks);
  }
  m_queue_depth_->Add(static_cast<int64_t>(num_tasks));
  // Deal contiguous blocks of morsels across the deques, rotating the first
  // recipient per job so concurrent small jobs don't all pile onto worker 0.
  const size_t nw = slots_.size();
  const size_t base = next_deal_.fetch_add(1) % nw;
  const size_t chunk = (num_tasks + nw - 1) / nw;
  for (size_t w = 0; w < nw; ++w) {
    const size_t lo = w * chunk;
    if (lo >= num_tasks) break;
    const size_t hi = lo + chunk < num_tasks ? lo + chunk : num_tasks;
    WorkerSlot& s = *slots_[(base + w) % nw];
    std::lock_guard<std::mutex> lock(s.mu);
    for (size_t i = lo; i < hi; ++i) s.dq.push_back(Task{&job, i});
  }
  idle_cv_.notify_all();
  MaybeSampleFlight();

  // Help with this job until its unclaimed tasks are gone, then wait for the
  // in-flight stragglers running on workers.
  Task t;
  while (job.remaining.load() > 0 && PopForJob(&job, &t)) {
    caller_tasks_.fetch_add(1);
    m_tasks_->Inc();
    m_caller_tasks_->Inc();
    const double busy = RunTask(t, kCallerWorker);
    caller_busy_ns_.fetch_add(static_cast<uint64_t>(busy));
  }
  std::unique_lock<std::mutex> lock(job.mu);
  job.done_cv.wait(lock, [&job] { return job.remaining.load() == 0; });
}

void MorselScheduler::MaybeSampleFlight() {
  const double now = NowNs();
  uint64_t last = flight_last_ns_.load(std::memory_order_relaxed);
  if (now - static_cast<double>(last) < kFlightIntervalNs) return;
  if (!flight_last_ns_.compare_exchange_strong(
          last, static_cast<uint64_t>(now), std::memory_order_relaxed)) {
    return;  // a concurrent submitter took this sample slot
  }
  MorselFlightSample s;
  s.t_ns = now - start_ns_;
  s.pending = pending_.load();
  s.tasks = total_tasks();
  uint64_t steals = 0;
  for (const auto& slot : slots_) steals += slot->steals.load();
  s.steals = steals;
  std::lock_guard<std::mutex> lock(flight_mu_);
  flight_.push_back(s);
  while (flight_.size() > kFlightCapacity) flight_.pop_front();
}

std::vector<MorselWorkerStats> MorselScheduler::worker_stats() const {
  std::vector<MorselWorkerStats> out(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    out[i].tasks = slots_[i]->tasks.load();
    out[i].steals = slots_[i]->steals.load();
    out[i].steal_fails = slots_[i]->steal_fails.load();
    out[i].busy_ns = slots_[i]->busy_ns.load();
  }
  return out;
}

uint64_t MorselScheduler::total_tasks() const {
  uint64_t total = caller_tasks_.load();
  for (const auto& s : slots_) total += s->tasks.load();
  return total;
}

double MorselScheduler::uptime_ns() const { return NowNs() - start_ns_; }

std::vector<MorselFlightSample> MorselScheduler::flight_samples() const {
  std::lock_guard<std::mutex> lock(flight_mu_);
  return std::vector<MorselFlightSample>(flight_.begin(), flight_.end());
}

std::string MorselScheduler::DebugJson() const {
  const double uptime = uptime_ns();
  std::ostringstream os;
  os.precision(15);
  os << "{\"workers\":" << num_workers() << ",\"uptime_ns\":" << uptime
     << ",\"pending\":" << pending_.load()
     << ",\"caller_tasks\":" << caller_tasks_.load()
     << ",\"caller_busy_ns\":" << caller_busy_ns_.load()
     << ",\"total_tasks\":" << total_tasks() << ",\"worker_list\":[";
  for (size_t i = 0; i < slots_.size(); ++i) {
    const WorkerSlot& s = *slots_[i];
    const double busy = static_cast<double>(s.busy_ns.load());
    // idle is derived (uptime − busy), clamped: a task finishing between the
    // two reads can make busy momentarily exceed the uptime snapshot.
    const double idle = uptime > busy ? uptime - busy : 0;
    os << (i == 0 ? "" : ",") << "{\"worker\":" << i
       << ",\"tasks\":" << s.tasks.load() << ",\"steals\":" << s.steals.load()
       << ",\"steal_fails\":" << s.steal_fails.load()
       << ",\"busy_ns\":" << busy << ",\"idle_ns\":" << idle << "}";
  }
  os << "],\"flight\":[";
  const std::vector<MorselFlightSample> samples = flight_samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    const MorselFlightSample& f = samples[i];
    os << (i == 0 ? "" : ",") << "{\"t_ns\":" << f.t_ns
       << ",\"pending\":" << f.pending << ",\"tasks\":" << f.tasks
       << ",\"steals\":" << f.steals << "}";
  }
  os << "]}";
  return os.str();
}

std::string MorselScheduler::WorkersJson() {
  std::ostringstream os;
  os << "{\"schedulers\":[";
  std::lock_guard<std::mutex> lock(g_sched_mu);
  const auto& v = SchedRegistry();
  for (size_t i = 0; i < v.size(); ++i) {
    os << (i == 0 ? "" : ",") << v[i]->DebugJson();
  }
  os << "]}";
  return os.str();
}

const std::shared_ptr<MorselScheduler>& MorselScheduler::Shared() {
  static const std::shared_ptr<MorselScheduler> shared =
      std::make_shared<MorselScheduler>(0);
  return shared;
}

}  // namespace apq
