// Query-service load bench: replay an open-loop arrival trace (mixed short
// selects + heavy aggregations) against an in-process QueryService over real
// sockets, at 0.5x / 1x / 2x of estimated capacity, and report achieved qps
// and p50/p99 response latency per phase.
//
// Open loop means arrivals are scheduled on a fixed clock, NOT gated on
// responses — exactly the regime where an unprotected server collapses
// (queues grow without bound, p99 goes unbounded). The admission controller
// converts that collapse into bounded queueing plus fast typed rejection:
// the acceptance shape is p99 at 2x staying within the same order of
// magnitude as at 0.5x while the shed count absorbs the overflow.
//
//   ./bench_service [--json out.json] [--rows N] [--seconds S]
//
// --json writes a google-benchmark-shaped document so tools/bench_trend.py
// can gate the serving trajectory against the committed BENCH_service.json
// seed (items_per_second = completed-OK qps per phase).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "engine/engine.h"
#include "service/query_service.h"
#include "util/hash_clock.h"
#include "workload/tpch.h"

using namespace apq;

namespace {

// 70% short selects, 30% heavy analytics, deterministically interleaved.
const char* MixQuery(uint64_t i) {
  switch (i % 10) {
    case 3: return "Q9";
    case 6: return "Q4";
    case 9: return "Q19";
    case 5: return "Q14";
    default: return "Q6";
  }
}

struct PhaseResult {
  std::string name;
  double load = 0;        // fraction of estimated capacity
  double offered_qps = 0; // arrival rate
  double ok_qps = 0;      // completed queries per wall second
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t err = 0;
  double p50_ns = 0;      // OK-response latency from *scheduled* arrival
  double p99_ns = 0;
  double shed_p99_ns = 0; // rejection latency (the fast-fail contract)
};

double Percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

// One persistent client connection speaking the line protocol.
class Conn {
 public:
  explicit Conn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ok_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0;
  }
  ~Conn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return ok_; }

  bool Send(const std::string& line) {
    return ::send(fd_, line.data(), line.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(line.size());
  }

  // Reads one END-terminated block; returns its first line.
  std::string ReadHeader() {
    size_t pos;
    while ((pos = buf_.find("END\n")) == std::string::npos) {
      char tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
      if (n <= 0) return "";
      buf_.append(tmp, static_cast<size_t>(n));
    }
    const std::string block = buf_.substr(0, pos + 4);
    buf_.erase(0, pos + 4);
    return block.substr(0, block.find('\n'));
  }

 private:
  int fd_ = -1;
  bool ok_ = false;
  std::string buf_;
};

PhaseResult RunPhase(int port, const std::string& name, double load,
                     double capacity_qps, double seconds, int fleet) {
  PhaseResult r;
  r.name = name;
  r.load = load;
  r.offered_qps = capacity_qps * load;
  const double spacing_ns = 1e9 / r.offered_qps;
  const uint64_t n = static_cast<uint64_t>(r.offered_qps * seconds);

  std::atomic<uint64_t> next{0};
  std::mutex agg_mu;
  std::vector<double> ok_lat, shed_lat;
  std::atomic<uint64_t> ok{0}, shed{0}, err{0};

  // True open loop: every connection has a sender thread pacing arrivals on
  // the schedule and a separate receiver thread draining responses, so a
  // slow (queued) response never delays the next arrival. tag= correlates
  // a response back to its scheduled arrival time.
  const double t0 = NowNs() + 10e6;  // arrivals start 10ms out
  std::vector<std::thread> threads;
  for (int c = 0; c < fleet; ++c) {
    threads.emplace_back([&] {
      auto conn = std::make_shared<Conn>(port);
      if (!conn->ok()) return;
      auto targets = std::make_shared<std::map<uint64_t, double>>();
      auto targets_mu = std::make_shared<std::mutex>();
      auto sent = std::make_shared<std::atomic<uint64_t>>(0);
      auto sender_done = std::make_shared<std::atomic<bool>>(false);

      std::thread receiver([&, conn, targets, targets_mu, sent,
                            sender_done] {
        std::vector<double> my_ok, my_shed;
        uint64_t received = 0;
        while (!sender_done->load() || received < sent->load()) {
          const std::string header = conn->ReadHeader();
          if (header.empty()) break;  // connection lost
          ++received;
          const size_t tp = header.find(" tag=");
          if (tp == std::string::npos) {
            err.fetch_add(1);
            continue;
          }
          const uint64_t tag = std::stoull(header.substr(tp + 5));
          double target = 0;
          {
            std::lock_guard<std::mutex> lock(*targets_mu);
            auto it = targets->find(tag);
            if (it != targets->end()) {
              target = it->second;
              targets->erase(it);
            }
          }
          const double lat = NowNs() - target;
          if (header.rfind("OK ", 0) == 0) {
            ok.fetch_add(1);
            my_ok.push_back(lat);
          } else if (header.rfind("ERR SHED", 0) == 0) {
            shed.fetch_add(1);
            my_shed.push_back(lat);
          } else {
            err.fetch_add(1);
          }
        }
        std::lock_guard<std::mutex> lock(agg_mu);
        ok_lat.insert(ok_lat.end(), my_ok.begin(), my_ok.end());
        shed_lat.insert(shed_lat.end(), my_shed.begin(), my_shed.end());
      });

      uint64_t i;
      while ((i = next.fetch_add(1)) < n) {
        const double target = t0 + static_cast<double>(i) * spacing_ns;
        const double now = NowNs();
        if (target > now) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(
              static_cast<int64_t>(target - now)));
        }
        {
          std::lock_guard<std::mutex> lock(*targets_mu);
          (*targets)[i + 1] = target;
        }
        if (!conn->Send(std::string("RUN ") + MixQuery(i) + " tag=" +
                        std::to_string(i + 1) + "\n")) {
          err.fetch_add(1);
          continue;
        }
        sent->fetch_add(1);
      }
      sender_done->store(true);
      receiver.join();
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = (NowNs() - t0) / 1e9;

  r.ok = ok.load();
  r.shed = shed.load();
  r.err = err.load();
  r.ok_qps = wall_s > 0 ? static_cast<double>(r.ok) / wall_s : 0;
  r.p50_ns = Percentile(ok_lat, 0.50);
  r.p99_ns = Percentile(ok_lat, 0.99);
  r.shed_p99_ns = Percentile(shed_lat, 0.99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  uint64_t rows = 60'000;
  double seconds = 2.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (arg == "--rows" && i + 1 < argc) rows = std::stoull(argv[++i]);
    else if (arg == "--seconds" && i + 1 < argc) seconds = std::stod(argv[++i]);
  }

  TpchConfig tcfg;
  tcfg.lineitem_rows = rows;
  auto catalog = Tpch::Generate(tcfg);

  service::ServiceConfig scfg = service::ServiceConfig::FromEnv();
  scfg.port = 0;  // ephemeral; this bench is its own client
  service::QueryService svc;
  {
    Status st = svc.Start(catalog, scfg);
    if (!st.ok()) {
      std::fprintf(stderr, "service start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  // Estimate capacity from the mix's mean direct service time: with
  // max_concurrent executors, capacity ~= max_concurrent / t_mean.
  double t_mean_ns;
  {
    EngineConfig ecfg;
    ecfg.use_morsels = true;
    Engine engine(ecfg);
    double total = 0;
    int runs = 0;
    for (uint64_t i = 0; i < 10; ++i) {
      auto plan = Tpch::Query(*catalog, MixQuery(i));
      if (!plan.ok()) continue;
      auto run = engine.RunPlan(plan.ValueOrDie());
      if (!run.ok()) continue;
      total += run.ValueOrDie().wall_ns;
      ++runs;
    }
    t_mean_ns = runs > 0 ? total / runs : 1e6;
  }
  const double capacity_qps =
      static_cast<double>(scfg.max_concurrent) * 1e9 / t_mean_ns;

  std::printf("service bench: %" PRIu64 " lineitem rows, mean service time "
              "%.3f ms, max_concurrent=%d, queue_depth=%zu, fleet=%d, "
              "estimated capacity %.0f qps\n",
              rows, t_mean_ns / 1e6, scfg.max_concurrent,
              scfg.max_queue_depth, svc.fleet_workers(), capacity_qps);

  const int client_fleet = 32;
  std::vector<PhaseResult> phases;
  for (const double load : {0.5, 1.0, 2.0}) {
    char name[64];
    std::snprintf(name, sizeof(name), "BM_ServiceOpenLoop/load_%.1fx", load);
    phases.push_back(
        RunPhase(svc.port(), name, load, capacity_qps, seconds, client_fleet));
    const PhaseResult& r = phases.back();
    std::printf("%-32s offered %7.0f qps  completed %7.0f qps  "
                "ok %6" PRIu64 "  shed %5" PRIu64 "  err %3" PRIu64
                "  p50 %8.2f ms  p99 %8.2f ms  shed-p99 %.2f ms\n",
                r.name.c_str(), r.offered_qps, r.ok_qps, r.ok, r.shed, r.err,
                r.p50_ns / 1e6, r.p99_ns / 1e6, r.shed_p99_ns / 1e6);
  }
  svc.Stop();

  // The overload contract: at 2x the server sheds instead of collapsing, so
  // OK-p99 stays bounded (queue depth caps the wait) and rejections are
  // orders of magnitude faster than service.
  const PhaseResult& low = phases.front();
  const PhaseResult& over = phases.back();
  const double p99_ratio =
      low.p99_ns > 0 ? over.p99_ns / low.p99_ns : 0;
  std::printf("\noverload p99 / light-load p99 = %.1fx  (shed absorbed "
              "%" PRIu64 " of %" PRIu64 " offered)\n",
              p99_ratio, over.shed, over.ok + over.shed + over.err);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\"context\":{\"executable\":\"bench_service\"},"
        << "\"benchmarks\":[";
    out.precision(15);
    for (size_t i = 0; i < phases.size(); ++i) {
      const PhaseResult& r = phases[i];
      if (i > 0) out << ",";
      out << "{\"name\":\"" << r.name << "\",\"run_type\":\"iteration\","
          << "\"iterations\":" << (r.ok + r.shed)
          << ",\"real_time\":" << r.p99_ns << ",\"time_unit\":\"ns\","
          << "\"items_per_second\":" << r.ok_qps
          << ",\"ok\":" << r.ok << ",\"shed\":" << r.shed
          << ",\"p50_ns\":" << r.p50_ns << ",\"p99_ns\":" << r.p99_ns
          << ",\"shed_p99_ns\":" << r.shed_p99_ns << "}";
    }
    out << "]}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
