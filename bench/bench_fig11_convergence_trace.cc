// Figure 11: the adaptive-parallelization convergence trace of a join
// operator plan — execution time per run, showing minima, plateaus, up-hill
// sections, and a noise peak, until the credit/debit balance converges.
//
// Paper: join micro-benchmark, ~35 runs, a visible OS-interference peak near
// run 30. Here: the same micro-benchmark shape with the simulator's noise and
// peak injection enabled.
#include "bench_util.h"
#include "plan/builder.h"
#include "util/rng.h"

using namespace apq;
using namespace apq::bench;

int main() {
  const uint64_t outer_rows = 400'000;
  const uint64_t inner_rows = 25'000;
  Banner("Figure 11: convergence-algorithm scenarios (join plan)",
         "Fig 11 (execution time vs run; minima, plateaus, noise peak)",
         "outer=" + std::to_string(outer_rows) +
             " inner=" + std::to_string(inner_rows) + " noise=4% peaks=1.2%");

  Rng rng(5);
  std::vector<int64_t> outer(outer_rows), inner(inner_rows);
  for (auto& v : outer) v = static_cast<int64_t>(rng.Uniform(inner_rows));
  for (uint64_t i = 0; i < inner_rows; ++i) inner[i] = static_cast<int64_t>(i);
  auto t_outer = std::make_shared<Table>("outer_t");
  APQ_CHECK_OK(t_outer->AddColumn(Column::MakeInt64("o_key", std::move(outer))));
  auto t_inner = std::make_shared<Table>("inner_t");
  APQ_CHECK_OK(t_inner->AddColumn(Column::MakeInt64("i_key", std::move(inner))));

  PlanBuilder b("join_micro");
  int jn = b.JoinLeaf(t_outer->GetColumn("o_key"), t_inner->GetColumn("i_key"));
  int cnt = b.AggScalar(AggFn::kCount, jn);
  QueryPlan serial = b.Result(cnt);

  SimConfig sim = SimConfig::TwoSocket32();
  sim.noise_sigma = 0.04;
  sim.peak_probability = 0.012;  // rare OS-interference peaks (paper §3.3.3)
  sim.peak_magnitude = 10.0;
  EngineConfig cfg = EngineConfig::WithSim(sim);
  Engine engine(cfg);

  auto ap = engine.RunAdaptive(serial);
  APQ_CHECK(ap.ok());
  const AdaptiveOutcome& o = ap.ValueOrDie();

  std::printf("\n# run  time_ms  mutation (execution-time series of Fig 11)\n");
  double maxt = 0;
  for (const auto& r : o.runs) maxt = std::max(maxt, r.time_ns);
  for (const auto& r : o.runs) {
    int bars = static_cast<int>(r.time_ns / maxt * 56);
    std::printf("%4d  %8.3f  %-7s |%s\n", r.run, r.time_ns / 1e6,
                r.mutation.c_str(), std::string(bars, '#').c_str());
  }
  std::printf(
      "\nserial %.3f ms -> GME %.3f ms at run %d (%.1fx); total %d runs\n",
      o.serial_time_ns / 1e6, o.gme_time_ns / 1e6, o.gme_run, o.Speedup(),
      o.total_runs);
  std::printf(
      "paper shape: steep initial descent, local minima and plateaus in the\n"
      "middle, an isolated noise peak that does not halt convergence.\n");
  return 0;
}
