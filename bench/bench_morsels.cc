// Morsel-driven vs whole-column execution (google-benchmark, real
// wall-clock): dense select and fetch-join at 2M rows, whole-column kernels
// vs morsel execution across worker counts. Per-worker throughput is reported
// via counters (workerN_tasks/s plus a steal rate), so scheduler balance is
// visible even where wall-clock speedup isn't (single-core CI containers).
//
// Run: build/bench_morsels [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "plan/builder.h"
#include "sched/morsel_scheduler.h"
#include "util/rng.h"

namespace apq {
namespace {

struct Fixture {
  ColumnPtr ints, floats;
  Fixture() {
    Rng rng(42);
    const uint64_t n = 1 << 21;  // 2M rows
    std::vector<int64_t> iv(n);
    std::vector<double> fv(n);
    for (auto& v : iv) v = rng.UniformRange(0, 999);
    for (auto& v : fv) v = rng.NextDouble();
    ints = Column::MakeInt64("ints", std::move(iv));
    floats = Column::MakeFloat64("floats", std::move(fv));
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

QueryPlan SelectPlan() {
  PlanBuilder b("sel");
  int sel = b.Select(F().ints.get(), Predicate::RangeI64(0, 499));
  return b.Result(sel);
}

QueryPlan FetchJoinPlan() {
  PlanBuilder b("fetch");
  int sel = b.Select(F().ints.get(), Predicate::RangeI64(0, 499));
  int f = b.FetchJoin(F().floats.get(), sel);
  return b.Result(f);
}

// Attaches per-worker throughput counters from the scheduler's lifetime
// deltas over the timed region.
void ReportWorkerThroughput(benchmark::State& state,
                            const MorselScheduler& sched,
                            const std::vector<MorselWorkerStats>& before,
                            uint64_t caller_before, double elapsed_s) {
  const auto after = sched.worker_stats();
  uint64_t tasks = 0, steals = 0;
  for (size_t w = 0; w < after.size(); ++w) {
    const uint64_t wt = after[w].tasks - before[w].tasks;
    tasks += wt;
    steals += after[w].steals - before[w].steals;
    state.counters["w" + std::to_string(w) + "_tasks/s"] =
        elapsed_s > 0 ? static_cast<double>(wt) / elapsed_s : 0;
  }
  const uint64_t ct = sched.caller_tasks() - caller_before;
  tasks += ct;
  state.counters["caller_tasks/s"] =
      elapsed_s > 0 ? static_cast<double>(ct) / elapsed_s : 0;
  state.counters["morsels/s"] =
      elapsed_s > 0 ? static_cast<double>(tasks) / elapsed_s : 0;
  state.counters["steal_pct"] =
      tasks > 0 ? 100.0 * static_cast<double>(steals) /
                      static_cast<double>(tasks)
                : 0;
}

void RunPlanBench(benchmark::State& state, const QueryPlan& plan,
                  bool use_morsels) {
  const int workers = static_cast<int>(state.range(0));
  ExecOptions o;
  o.use_morsels = use_morsels;
  o.morsel_workers = workers;
  Evaluator eval(o);
  std::shared_ptr<MorselScheduler> sched;
  std::vector<MorselWorkerStats> before;
  uint64_t caller_before = 0;
  if (use_morsels) {
    sched = eval.EnsureMorselScheduler();
    before = sched->worker_stats();
    caller_before = sched->caller_tasks();
  }
  auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  state.SetItemsProcessed(state.iterations() * F().ints->size());
  if (use_morsels) {
    ReportWorkerThroughput(state, *sched, before, caller_before, elapsed_s);
  }
}

void BM_SelectWholeColumn(benchmark::State& state) {
  RunPlanBench(state, SelectPlan(), /*use_morsels=*/false);
}
BENCHMARK(BM_SelectWholeColumn)->Arg(1)->UseRealTime();

void BM_SelectMorsels(benchmark::State& state) {
  RunPlanBench(state, SelectPlan(), /*use_morsels=*/true);
}
// range(0) = morsel scheduler workers. On a single-core host the >1-worker
// rows show scheduling overhead only; wall-clock speedup needs real cores
// (the acceptance criterion gates on hardware_concurrency() >= 4).
BENCHMARK(BM_SelectMorsels)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_FetchJoinWholeColumn(benchmark::State& state) {
  RunPlanBench(state, FetchJoinPlan(), /*use_morsels=*/false);
}
BENCHMARK(BM_FetchJoinWholeColumn)->Arg(1)->UseRealTime();

void BM_FetchJoinMorsels(benchmark::State& state) {
  RunPlanBench(state, FetchJoinPlan(), /*use_morsels=*/true);
}
BENCHMARK(BM_FetchJoinMorsels)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace apq

BENCHMARK_MAIN();
