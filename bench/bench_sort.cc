// Parallel sort subsystem vs whole-column execution (google-benchmark, real
// wall-clock): 2M-row full sort and bounded top-N (limit 10 / 10K),
// sequential stable sort vs morsel-local runs + merge-path k-way merge
// across worker counts. Reports per-worker morsel throughput, steal rate,
// and the worst per-operator morsel skew of the last run, mirroring
// bench_morsels / bench_agg.
//
// The acceptance target (>= 2x sort throughput at 4 workers) is only
// demonstrable on hosts with >= 4 hardware threads; on smaller containers
// the >1-worker rows show scheduling overhead only.
//
// Run: build/bench_sort [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "plan/builder.h"
#include "sched/morsel_scheduler.h"
#include "util/rng.h"

namespace apq {
namespace {

constexpr uint64_t kRows = 1 << 21;  // 2M rows

struct Fixture {
  ColumnPtr keys;  // tied doubles: stability-relevant, merge-heavy
  Fixture() {
    Rng rng(42);
    std::vector<double> v(kRows);
    for (auto& x : v) {
      x = static_cast<double>(rng.UniformRange(0, 99999)) * 0.25;
    }
    keys = Column::MakeFloat64("keys", std::move(v));
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

QueryPlan SortPlan() {
  PlanBuilder b("sort");
  int s = b.SortLeaf(F().keys.get());
  return b.Result(s);
}

QueryPlan TopNPlan(uint64_t limit) {
  PlanBuilder b("topn");
  int t = b.TopNLeaf(F().keys.get(), limit, /*descending=*/true);
  return b.Result(t);
}

// Attaches per-worker throughput / steal counters from the scheduler's
// lifetime deltas plus the worst per-operator morsel skew of the last run.
void ReportSortCounters(benchmark::State& state, const MorselScheduler& sched,
                        const std::vector<MorselWorkerStats>& before,
                        uint64_t caller_before, double elapsed_s,
                        const EvalResult& last) {
  const auto after = sched.worker_stats();
  uint64_t tasks = 0, steals = 0;
  for (size_t w = 0; w < after.size(); ++w) {
    const uint64_t wt = after[w].tasks - before[w].tasks;
    tasks += wt;
    steals += after[w].steals - before[w].steals;
    state.counters["w" + std::to_string(w) + "_tasks/s"] =
        elapsed_s > 0 ? static_cast<double>(wt) / elapsed_s : 0;
  }
  const uint64_t ct = sched.caller_tasks() - caller_before;
  tasks += ct;
  state.counters["caller_tasks/s"] =
      elapsed_s > 0 ? static_cast<double>(ct) / elapsed_s : 0;
  state.counters["morsels/s"] =
      elapsed_s > 0 ? static_cast<double>(tasks) / elapsed_s : 0;
  state.counters["steal_pct"] =
      tasks > 0
          ? 100.0 * static_cast<double>(steals) / static_cast<double>(tasks)
          : 0;
  double skew = 0;
  for (const auto& m : last.metrics) {
    if (m.morsels.empty()) continue;
    double total = 0, peak = 0;
    for (const auto& ms : m.morsels) {
      total += ms.wall_ns;
      peak = std::max(peak, ms.wall_ns);
    }
    const double mean = total / static_cast<double>(m.morsels.size());
    skew = std::max(skew, mean > 0 ? peak / mean : 1.0);
  }
  state.counters["max_skew"] = skew;
}

void RunPlanBench(benchmark::State& state, const QueryPlan& plan,
                  bool parallel, int workers) {
  ExecOptions o;
  o.use_morsels = parallel;
  o.use_parallel_sort = parallel;
  o.morsel_workers = workers;
  Evaluator eval(o);
  std::shared_ptr<MorselScheduler> sched;
  std::vector<MorselWorkerStats> before;
  uint64_t caller_before = 0;
  if (parallel) {
    sched = eval.EnsureMorselScheduler();
    before = sched->worker_stats();
    caller_before = sched->caller_tasks();
  }
  EvalResult last;
  auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
    last = std::move(er);
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  state.SetItemsProcessed(state.iterations() * kRows);
  if (parallel) {
    ReportSortCounters(state, *sched, before, caller_before, elapsed_s, last);
  }
}

void BM_SortWholeColumn(benchmark::State& state) {
  RunPlanBench(state, SortPlan(), /*parallel=*/false, 1);
}
BENCHMARK(BM_SortWholeColumn)->UseRealTime();

void BM_SortParallel(benchmark::State& state) {
  RunPlanBench(state, SortPlan(), /*parallel=*/true,
               static_cast<int>(state.range(0)));
}
// range(0) = morsel scheduler workers.
BENCHMARK(BM_SortParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_TopNWholeColumn(benchmark::State& state) {
  RunPlanBench(state, TopNPlan(static_cast<uint64_t>(state.range(0))),
               /*parallel=*/false, 1);
}
BENCHMARK(BM_TopNWholeColumn)->Arg(10)->Arg(10'000)->UseRealTime();

void BM_TopNParallel(benchmark::State& state) {
  RunPlanBench(state, TopNPlan(static_cast<uint64_t>(state.range(0))),
               /*parallel=*/true, static_cast<int>(state.range(1)));
}
// range(0) = limit, range(1) = morsel scheduler workers.
BENCHMARK(BM_TopNParallel)
    ->ArgsProduct({{10, 10'000}, {1, 2, 4, 8}})
    ->UseRealTime();

}  // namespace
}  // namespace apq

BENCHMARK_MAIN();
