// Figure 14 + Table 2: adaptively parallelized select-operator plan (TPC-H
// Q6 shape) under varying input size and selectivity.
//
// Paper: sizes 10/20/100 GB x selectivity 0%/50%/100% (paper's "selectivity"
// counts NON-matching tuples: 0% = all output). AP speedup decreases with
// increasing selectivity and increases as input shrinks; AP ~ HP overall
// (Table 2). Figure 14 plots time per adaptive run.
//
// Scaled here: lineitem rows {60k, 120k, 600k} stand in for 10/20/100 GB.
#include "bench_util.h"
#include "workload/tpch.h"

using namespace apq;
using namespace apq::bench;

int main() {
  Banner("Figure 14 + Table 2: select-plan adaptation (Q6 shape)",
         "Fig 14 (time per run) and Table 2 (AP vs HP speedups)",
         "sizes {60k,120k,600k} rows ~ paper {10,20,100} GB; "
         "selectivity 0/50/100% (paper convention: 0% = all output)");

  struct SizePoint {
    const char* label;
    uint64_t rows;
  };
  const SizePoint sizes[] = {{"100GB~300k", 300'000},
                             {"20GB~120k", 120'000},
                             {"10GB~60k", 60'000}};
  // Paper selectivity s% = (100-s)% of tuples match.
  const int sels[] = {0, 50, 100};

  TablePrinter table({"size", "paper-sel", "AP speedup", "HP speedup",
                      "AP gme (ms)", "HP (ms)", "serial (ms)", "gme run"});

  for (const auto& sp : sizes) {
    TpchConfig cfg;
    cfg.lineitem_rows = sp.rows;
    auto cat = Tpch::Generate(cfg);
    for (int sel : sels) {
      double match = (100.0 - sel) / 100.0;
      if (match <= 0) match = 0.002;  // "100%": virtually no output
      Engine engine(PaperEngine());
      auto serial = Tpch::Q6Selectivity(*cat, match);
      APQ_CHECK(serial.ok());
      auto sres = engine.RunSerial(serial.ValueOrDie());
      APQ_CHECK(sres.ok());
      auto ap = engine.RunAdaptive(serial.ValueOrDie());
      APQ_CHECK(ap.ok());
      auto hp = engine.RunHeuristic(serial.ValueOrDie());
      APQ_CHECK(hp.ok());
      const AdaptiveOutcome& o = ap.ValueOrDie();
      double hp_t = hp.ValueOrDie().time_ns;
      table.AddRow({sp.label, std::to_string(sel) + "%",
                    TablePrinter::Fmt(o.Speedup(), 1),
                    TablePrinter::Fmt(o.serial_time_ns / hp_t, 1),
                    Ms(o.gme_time_ns), Ms(hp_t), Ms(o.serial_time_ns),
                    std::to_string(o.gme_run)});

      // Figure 14's series for the 20GB-equivalent size.
      if (sp.rows == 120'000) {
        std::printf("fig14 series (size=%s, paper-sel=%d%%): ", sp.label, sel);
        for (size_t r = 0; r < o.runs.size(); r += 4) {
          std::printf("%.2f ", o.runs[r].time_ns / 1e6);
        }
        std::printf("(ms per 4th run)\n");
      }
    }
  }
  table.Print();
  std::printf(
      "\npaper shape (Table 2): speedup falls as selectivity rises (less\n"
      "output -> cheaper serial plan); smaller inputs converge to larger\n"
      "speedups for AP; AP and HP are in the same league throughout.\n");
  return 0;
}
