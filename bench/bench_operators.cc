// Operator micro-benchmarks (google-benchmark, real wall-clock): raw
// throughput of the physical operators and the zero-copy slicing machinery.
// Complements the simulated-time figure benches: these numbers validate that
// the real evaluator is itself a reasonable columnar engine.
#include <benchmark/benchmark.h>

#include "adaptive/mutator.h"
#include "exec/evaluator.h"
#include "plan/builder.h"
#include "util/rng.h"

namespace apq {
namespace {

struct Fixture {
  ColumnPtr ints, floats, fk, pk;
  Fixture() {
    Rng rng(42);
    const uint64_t n = 1 << 20;
    std::vector<int64_t> iv(n), fkv(n), pkv(1 << 14);
    std::vector<double> fv(n);
    for (auto& v : iv) v = rng.UniformRange(0, 999);
    for (auto& v : fkv) v = rng.UniformRange(0, (1 << 14) - 1);
    for (auto& v : fv) v = rng.NextDouble();
    for (size_t i = 0; i < pkv.size(); ++i) pkv[i] = static_cast<int64_t>(i);
    ints = Column::MakeInt64("ints", std::move(iv));
    floats = Column::MakeFloat64("floats", std::move(fv));
    fk = Column::MakeInt64("fk", std::move(fkv));
    pk = Column::MakeInt64("pk", std::move(pkv));
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

void BM_SelectScan(benchmark::State& state) {
  const int64_t hi = state.range(0);
  Evaluator eval;
  PlanBuilder b("sel");
  int sel = b.Select(F().ints.get(), Predicate::RangeI64(0, hi));
  QueryPlan plan = b.Result(sel);
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().ints->size());
}
BENCHMARK(BM_SelectScan)->Arg(99)->Arg(499)->Arg(999);

void BM_FetchJoinGather(benchmark::State& state) {
  Evaluator eval;
  PlanBuilder b("fetch");
  int sel = b.Select(F().ints.get(), Predicate::RangeI64(0, state.range(0)));
  int f = b.FetchJoin(F().floats.get(), sel);
  QueryPlan plan = b.Result(f);
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().ints->size());
}
BENCHMARK(BM_FetchJoinGather)->Arg(99)->Arg(999);

void BM_HashJoinProbe(benchmark::State& state) {
  Evaluator eval;  // hash cached after first build: measures probe
  PlanBuilder b("join");
  int jn = b.JoinLeaf(F().fk.get(), F().pk.get());
  int cnt = b.AggScalar(AggFn::kCount, jn);
  QueryPlan plan = b.Result(cnt);
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().fk->size());
}
BENCHMARK(BM_HashJoinProbe);

void BM_HashBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto idx = HashIndex::Build(*F().pk, F().pk->full_range());
    benchmark::DoNotOptimize(idx->num_keys());
  }
  state.SetItemsProcessed(state.iterations() * F().pk->size());
}
BENCHMARK(BM_HashBuild);

void BM_GroupBySum(benchmark::State& state) {
  Evaluator eval;
  PlanBuilder b("gb");
  int sel = b.Select(F().ints.get(), Predicate::RangeI64(0, 999));
  int keys = b.FetchJoin(F().fk.get(), sel);
  int vals = b.FetchJoin(F().floats.get(), sel);
  int gb = b.GroupBy(keys);
  int ag = b.AggGrouped(AggFn::kSum, gb, vals);
  QueryPlan plan = b.Result(ag);
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().ints->size());
}
BENCHMARK(BM_GroupBySum);

void BM_ExchangeUnionPack(benchmark::State& state) {
  // Cost of packing: a split select + union, vs the plain select.
  Evaluator eval;
  Mutator mutator;
  PlanBuilder b("sel");
  int sel = b.Select(F().ints.get(), Predicate::RangeI64(0, 499));
  QueryPlan plan = b.Result(sel);
  APQ_CHECK_OK(mutator.SplitNode(&plan, sel, static_cast<int>(state.range(0))));
  for (auto _ : state) {
    EvalResult er;
    benchmark::DoNotOptimize(eval.Execute(plan, &er));
  }
  state.SetItemsProcessed(state.iterations() * F().ints->size());
}
BENCHMARK(BM_ExchangeUnionPack)->Arg(2)->Arg(8)->Arg(32);

void BM_SliceCreation(benchmark::State& state) {
  // Paper §2.3: creating range-partition slices copies no data.
  ColumnSlice s{F().ints.get(), F().ints->full_range()};
  for (auto _ : state) {
    auto [a, bslice] = s.Split();
    benchmark::DoNotOptimize(a.range.begin + bslice.range.end);
  }
}
BENCHMARK(BM_SliceCreation);

}  // namespace
}  // namespace apq

BENCHMARK_MAIN();
