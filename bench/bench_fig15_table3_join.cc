// Figure 15 + Table 3: adaptively parallelized join-operator plan for varying
// outer (probe) and inner (hash build) sizes.
//
// Paper: outer {3200,2000,640} MB x inner {64,16} MB; the 16 MB inner fits
// the 20 MB L3, improving the probe phase, so its speedups are higher;
// speedup grows with outer size; AP ~ HP.
//
// Scaled here (64 KB simulated L3, DESIGN.md §2): outer {400k,250k,80k} rows,
// inner {24k, 2k} rows — the 2k-row inner (~56 KB with its hash) fits the simulated L3, the
// 24k-row inner (192 KB) does not, preserving the cache crossover.
#include "bench_util.h"
#include "plan/builder.h"
#include "util/rng.h"

using namespace apq;
using namespace apq::bench;

namespace {

struct JoinCase {
  std::shared_ptr<Table> outer;
  std::shared_ptr<Table> inner;
};

JoinCase MakeJoin(uint64_t outer_rows, uint64_t inner_rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> o(outer_rows), in(inner_rows);
  for (auto& v : o) v = static_cast<int64_t>(rng.Uniform(inner_rows));
  for (uint64_t i = 0; i < inner_rows; ++i) in[i] = static_cast<int64_t>(i);
  JoinCase jc;
  jc.outer = std::make_shared<Table>("outer_t");
  APQ_CHECK_OK(jc.outer->AddColumn(Column::MakeInt64("o_key", std::move(o))));
  jc.inner = std::make_shared<Table>("inner_t");
  APQ_CHECK_OK(jc.inner->AddColumn(Column::MakeInt64("i_key", std::move(in))));
  return jc;
}

}  // namespace

int main() {
  Banner("Figure 15 + Table 3: join-plan adaptation",
         "Fig 15 (time per run) and Table 3 (AP vs HP speedups)",
         "outer {400k,250k,80k} ~ paper {3200,2000,640} MB; inner {24k,2k} ~ "
         "{64,16} MB (2k fits the scaled L3)");

  struct OuterPoint {
    const char* label;
    uint64_t rows;
  };
  const OuterPoint outers[] = {{"3200MB~400k", 400'000},
                               {"2000MB~250k", 250'000},
                               {"640MB~80k", 80'000}};
  struct InnerPoint {
    const char* label;
    uint64_t rows;
  };
  const InnerPoint inners[] = {{"64MB~24k", 24'000}, {"16MB~2k", 2'000}};

  TablePrinter table({"outer", "inner", "AP speedup", "HP speedup",
                      "AP gme (ms)", "HP (ms)", "serial (ms)", "gme run"});

  for (const auto& op : outers) {
    for (const auto& ip : inners) {
      JoinCase jc = MakeJoin(op.rows, ip.rows, 17);
      PlanBuilder b("join_micro");
      int jn = b.JoinLeaf(jc.outer->GetColumn("o_key"),
                          jc.inner->GetColumn("i_key"));
      int cnt = b.AggScalar(AggFn::kCount, jn);
      QueryPlan serial = b.Result(cnt);

      Engine engine(PaperEngine());
      auto sres = engine.RunSerial(serial);
      APQ_CHECK(sres.ok());
      auto ap = engine.RunAdaptive(serial);
      APQ_CHECK(ap.ok());
      auto hp = engine.RunHeuristic(serial, 32);
      APQ_CHECK(hp.ok());
      const AdaptiveOutcome& o = ap.ValueOrDie();
      double hp_t = hp.ValueOrDie().time_ns;
      table.AddRow({op.label, ip.label, TablePrinter::Fmt(o.Speedup(), 2),
                    TablePrinter::Fmt(o.serial_time_ns / hp_t, 2),
                    Ms(o.gme_time_ns), Ms(hp_t), Ms(o.serial_time_ns),
                    std::to_string(o.gme_run)});

      if (op.rows == 400'000) {
        std::printf("fig15 series (outer=%s inner=%s): ", op.label, ip.label);
        for (size_t r = 0; r < o.runs.size(); r += 4) {
          std::printf("%.2f ", o.runs[r].time_ns / 1e6);
        }
        std::printf("(ms per 4th run)\n");
      }
    }
  }
  table.Print();
  std::printf(
      "\npaper shape (Table 3): the cache-resident inner gives the higher\n"
      "speedups (probe phase avoids cache thrashing); speedup grows with\n"
      "outer size; AP and HP are comparable on pure join plans.\n");
  return 0;
}
