// Ablation study of the convergence algorithm's design choices (§3.3):
//   - leaking debit on/off          (guarantees termination on stable systems)
//   - peak grace on/off             (tolerates OS-interference spikes)
//   - GME threshold sweep           (noise rejection vs late refinements)
//   - Extra_Runs sweep              (premature vs extended convergence)
//   - union fan-in threshold sweep  (plan-explosion guard, §2.3)
#include "bench_util.h"
#include "workload/tpch.h"

using namespace apq;
using namespace apq::bench;

namespace {

struct Variant {
  std::string name;
  EngineConfig cfg;
};

void RunVariants(const std::vector<Variant>& variants, const Catalog& cat,
                 const char* query) {
  TablePrinter table({"variant", "total runs", "gme run", "gme (ms)",
                      "best (ms)", "speedup"});
  for (const auto& v : variants) {
    Engine engine(v.cfg);
    auto serial = Tpch::Query(cat, query);
    APQ_CHECK(serial.ok());
    auto ap = engine.RunAdaptive(serial.ValueOrDie());
    APQ_CHECK(ap.ok());
    const AdaptiveOutcome& o = ap.ValueOrDie();
    table.AddRow({v.name, std::to_string(o.total_runs),
                  std::to_string(o.gme_run), Ms(o.gme_time_ns),
                  Ms(o.best_time_ns), TablePrinter::Fmt(o.Speedup(), 1)});
  }
  table.Print();
}

EngineConfig Noisy() {
  SimConfig sim = SimConfig::TwoSocket32();
  sim.noise_sigma = 0.04;
  sim.peak_probability = 0.01;
  sim.peak_magnitude = 8.0;
  EngineConfig cfg = EngineConfig::WithSim(sim);
  cfg.convergence.max_runs = 260;
  return cfg;
}

}  // namespace

int main() {
  TpchConfig tcfg;
  tcfg.lineitem_rows = 60'000;
  Banner("Ablation: convergence-algorithm design choices",
         "§3.3 scenarios: leaking debit, peak grace, threshold, Extra_Runs; "
         "§2.3 union fan-in guard",
         "lineitem=" + std::to_string(tcfg.lineitem_rows) +
             " noise=4% peaks=1%");
  auto cat = Tpch::Generate(tcfg);

  {
    std::printf("\n-- leaking debit (Q6, noisy machine) --\n");
    Variant on{"leak on (paper)", Noisy()};
    Variant off{"leak off", Noisy()};
    off.cfg.convergence.leaking_debit = false;
    RunVariants({on, off}, *cat, "Q6");
    std::printf("expectation: without the leak a stable system drains credit\n"
                "only via noise; convergence takes far longer (§3.3.2).\n");
  }
  {
    std::printf("\n-- peak grace (Q14, very noisy machine) --\n");
    Variant on{"grace on (paper)", Noisy()};
    on.cfg.sim.peak_probability = 0.05;
    Variant off{"grace off", Noisy()};
    off.cfg.sim.peak_probability = 0.05;
    off.cfg.convergence.peak_grace = false;
    RunVariants({on, off}, *cat, "Q14");
    std::printf("expectation: without the grace run, one OS peak can halt\n"
                "adaptation prematurely (§3.3.3).\n");
  }
  {
    std::printf("\n-- GME threshold sweep (Q6) --\n");
    std::vector<Variant> vs;
    for (double t : {0.01, 0.02, 0.05, 0.10}) {
      Variant v{"threshold " + TablePrinter::Fmt(t * 100, 0) + "%", Noisy()};
      v.cfg.convergence.gme_threshold = t;
      vs.push_back(v);
    }
    RunVariants(vs, *cat, "Q6");
    std::printf("expectation: large thresholds discard late (genuine)\n"
                "refinements; tiny thresholds chase noise-level minima.\n");
  }
  {
    std::printf("\n-- Extra_Runs sweep (Q14) --\n");
    std::vector<Variant> vs;
    for (int e : {2, 4, 8, 16}) {
      Variant v{"Extra_Runs " + std::to_string(e), Noisy()};
      v.cfg.convergence.extra_runs = e;
      vs.push_back(v);
    }
    RunVariants(vs, *cat, "Q14");
    std::printf("expectation: small Extra_Runs risks premature convergence;\n"
                "large values extend the search (paper: 8 is safe).\n");
  }
  {
    std::printf("\n-- partitions per invocation (Q6; paper §4.3 extension) --\n");
    std::vector<Variant> vs;
    for (int w : {2, 4, 8}) {
      Variant v{"split " + std::to_string(w) + "-way", Noisy()};
      v.cfg.mutator.split_ways = w;
      vs.push_back(v);
    }
    RunVariants(vs, *cat, "Q6");
    std::printf("expectation: introducing more operators per invocation\n"
                "reaches the minimum in fewer runs (paper: 'the number of\n"
                "runs could be made much lower').\n");
  }
  {
    std::printf("\n-- union fan-in threshold sweep (Q9, join-heavy) --\n");
    std::vector<Variant> vs;
    for (int f : {4, 15, 64}) {
      Variant v{"fan-in guard " + std::to_string(f), Noisy()};
      v.cfg.mutator.union_fanin_threshold = f;
      vs.push_back(v);
    }
    RunVariants(vs, *cat, "Q9");
    std::printf("expectation: a tight guard stops parallelization early; a\n"
                "loose one lets plans explode (paper settled on 15).\n");
  }
  return 0;
}
