// Table 5 + Figures 19/20: plan statistics and multi-core utilization of
// TPC-H Q14 under adaptive vs heuristic parallelization, with tomographs.
//
// Paper: AP plan has 10 selects / 16 joins / 35% utilization; HP plan has
// 65 selects / 32 joins / 75% utilization. AP's lower utilization leaves
// spare resources for concurrent queries.
#include "bench_util.h"
#include "profile/profiler.h"
#include "workload/tpch.h"

using namespace apq;
using namespace apq::bench;

int main() {
  TpchConfig cfg;
  cfg.lineitem_rows = 60'000;
  Banner("Table 5 + Figs 19/20: Q14 plan statistics and utilization",
         "Table 5 (#selects/#joins/utilization), Figs 19-20 (tomographs)",
         "lineitem=" + std::to_string(cfg.lineitem_rows) + " sim=2x16c/32t");
  auto cat = Tpch::Generate(cfg);
  Engine engine(PaperEngine());

  auto serial = Tpch::Q14(*cat);
  APQ_CHECK(serial.ok());
  auto ap = engine.RunAdaptive(serial.ValueOrDie());
  APQ_CHECK(ap.ok());
  auto hp = engine.RunHeuristic(serial.ValueOrDie());
  APQ_CHECK(hp.ok());

  const AdaptiveOutcome& a = ap.ValueOrDie();
  const QueryRunResult& h = hp.ValueOrDie();
  PlanStats as = a.gme_plan.Stats();
  PlanStats hs = h.stats;

  TablePrinter table({"", "AP", "HP"});
  table.AddRow({"# Select operators", std::to_string(as.num_selects),
                std::to_string(hs.num_selects)});
  table.AddRow({"# Join operators", std::to_string(as.num_joins),
                std::to_string(hs.num_joins)});
  table.AddRow({"# FetchJoin operators", std::to_string(as.num_fetchjoins),
                std::to_string(hs.num_fetchjoins)});
  table.AddRow({"# Exchange unions", std::to_string(as.num_unions),
                std::to_string(hs.num_unions)});
  table.AddRow({"% Multi-core utilization",
                TablePrinter::Fmt(a.gme_profile.utilization * 100, 1),
                TablePrinter::Fmt(h.utilization * 100, 1)});
  table.AddRow({"response time (ms)", Ms(a.gme_time_ns), Ms(h.time_ns)});
  table.Print();

  std::printf("\n--- Fig 19: adaptive parallelization tomograph (Q14) ---\n%s",
              RenderTomograph(a.gme_profile).c_str());
  std::printf("\n--- Fig 20: heuristic parallelization tomograph (Q14) ---\n%s",
              RenderTomograph(h.profile).c_str());
  std::printf(
      "\npaper shape: the adaptive plan runs far fewer operator clones with\n"
      "visibly more idle core-time (35%% vs 75%% utilization in the paper),\n"
      "at similar isolated response time.\n");
  return 0;
}
