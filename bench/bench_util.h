// Shared helpers for the per-figure/per-table bench harnesses.
//
// Every bench prints (a) the paper reference it regenerates, (b) the seed and
// scaled-down parameters used (DESIGN.md §2 substitutions), and (c) the
// series/rows in the paper's format. Absolute times are simulated-machine
// times; the comparison targets are the *shapes*, recorded in EXPERIMENTS.md.
#ifndef APQ_BENCH_BENCH_UTIL_H_
#define APQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "engine/engine.h"
#include "util/table_printer.h"

namespace apq::bench {

inline void Banner(const char* experiment, const char* paper_ref,
                   const std::string& params) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("parameters: %s\n", params.c_str());
  std::printf("================================================================\n");
}

inline std::string Ms(double ns, int prec = 3) {
  return TablePrinter::Fmt(ns / 1e6, prec);
}

/// A standard paper-scale machine: the Table 1 two-socket box.
inline EngineConfig PaperEngine() {
  return EngineConfig::WithSim(SimConfig::TwoSocket32());
}

}  // namespace apq::bench

#endif  // APQ_BENCH_BENCH_UTIL_H_
