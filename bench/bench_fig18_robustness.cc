// Figure 18 (A-D): robustness of the convergence algorithm across repeated
// adaptive-parallelization invocations of the TPC-H query subset.
//
//  A: total convergence runs per query, three independent invocations
//  B: the run at which the global minimum occurs, three invocations
//  C: the global minimum execution time, three invocations
//  D: global-minimum run vs total convergence runs (queries keep draining
//     credit long after the GME is found when the leaking debit is small)
//
// Paper: minimal variation across invocations for all three metrics; most
// queries converge within ~40-160 runs on the 32-core machine.
#include "bench_util.h"
#include "workload/tpch.h"

using namespace apq;
using namespace apq::bench;

int main() {
  TpchConfig cfg;
  cfg.lineitem_rows = 60'000;
  Banner("Figure 18: convergence-algorithm robustness",
         "Fig 18 A (runs), B (GME run), C (GME time), D (GME vs total)",
         "lineitem=" + std::to_string(cfg.lineitem_rows) +
             " three invocations, noise=3%");
  auto cat = Tpch::Generate(cfg);

  SimConfig sim = SimConfig::TwoSocket32();
  sim.noise_sigma = 0.03;

  TablePrinter a({"query", "runs inv1", "runs inv2", "runs inv3"});
  TablePrinter b({"query", "gme-run inv1", "gme-run inv2", "gme-run inv3"});
  TablePrinter c({"query", "gme-ms inv1", "gme-ms inv2", "gme-ms inv3"});
  TablePrinter d({"query", "gme run", "total runs"});

  for (const auto& name : Tpch::QueryNames()) {
    std::vector<std::string> ra = {name}, rb = {name}, rc = {name};
    int last_gme = 0, last_total = 0;
    for (int inv = 0; inv < 3; ++inv) {
      SimConfig s = sim;
      s.seed = sim.seed + inv * 977;  // independent noise per invocation
      EngineConfig ecfg = EngineConfig::WithSim(s);
      ecfg.convergence.max_runs = 220;
      Engine engine(ecfg);
      auto serial = Tpch::Query(*cat, name);
      APQ_CHECK(serial.ok());
      auto ap = engine.RunAdaptive(serial.ValueOrDie());
      APQ_CHECK(ap.ok());
      const AdaptiveOutcome& o = ap.ValueOrDie();
      ra.push_back(std::to_string(o.total_runs));
      rb.push_back(std::to_string(o.gme_run));
      rc.push_back(Ms(o.gme_time_ns));
      last_gme = o.gme_run;
      last_total = o.total_runs;
    }
    a.AddRow(ra);
    b.AddRow(rb);
    c.AddRow(rc);
    d.AddRow({name, std::to_string(last_gme), std::to_string(last_total)});
  }
  std::printf("\n(A) total convergence runs per invocation\n");
  a.Print();
  std::printf("\n(B) run at which the global minimum occurs\n");
  b.Print();
  std::printf("\n(C) global minimum execution time\n");
  c.Print();
  std::printf("\n(D) global-minimum run vs total convergence runs (3rd inv.)\n");
  d.Print();
  std::printf(
      "\npaper shape: all three metrics vary little across invocations; the\n"
      "total convergence runs exceed the GME run considerably for queries\n"
      "whose leaking debit drains slowly (Q8/Q14/Q22 in the paper).\n");
  return 0;
}
