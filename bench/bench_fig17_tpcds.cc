// Figure 17 (a and b): TPC-DS queries, heuristic vs adaptive, on the
// two-socket and four-socket machines.
//
// Paper: SF-100 TPC-DS (skewed); adaptive plans are up to 5x faster than
// heuristic plans, attributed to correct partition counts and data skew;
// 2-socket vs 4-socket times are similar (minimal NUMA effects).
#include "bench_util.h"
#include "workload/tpcds.h"

using namespace apq;
using namespace apq::bench;

namespace {

void RunMachine(const char* label, SimConfig sim,
                const std::shared_ptr<Catalog>& cat) {
  EngineConfig cfg = EngineConfig::WithSim(sim);
  cfg.convergence.max_runs = 220;
  Engine engine(cfg);
  TablePrinter table({"query", "heuristic (ms)", "adaptive (ms)", "HP/AP",
                      "gme run"});
  double worst = 0;
  for (const auto& name : Tpcds::QueryNames()) {
    auto serial = Tpcds::Query(*cat, name);
    APQ_CHECK(serial.ok());
    auto hp = engine.RunHeuristic(serial.ValueOrDie());
    APQ_CHECK(hp.ok());
    auto ap = engine.RunAdaptive(serial.ValueOrDie());
    APQ_CHECK(ap.ok());
    double h = hp.ValueOrDie().time_ns;
    double a = ap.ValueOrDie().gme_time_ns;
    worst = std::max(worst, h / a);
    table.AddRow({name, Ms(h), Ms(a), TablePrinter::Fmt(h / a, 2),
                  std::to_string(ap.ValueOrDie().gme_run)});
  }
  std::printf("\n--- %s ---\n", label);
  table.Print();
  std::printf("max adaptive advantage on %s: %.1fx\n", label, worst);
}

}  // namespace

int main() {
  TpcdsConfig cfg;
  cfg.store_sales_rows = 120'000;
  Banner("Figure 17: TPC-DS, heuristic vs adaptive, 2- and 4-socket",
         "Fig 17a (2-socket 2.0GHz) and Fig 17b (4-socket 2.4GHz), 100GB",
         "store_sales=" + std::to_string(cfg.store_sales_rows) +
             " zipf=" + TablePrinter::Fmt(cfg.zipf_theta, 2) +
             " seed=" + std::to_string(cfg.seed));
  auto cat = Tpcds::Generate(cfg);

  RunMachine("Fig 17a: 2-socket, 32 threads", SimConfig::TwoSocket32(), cat);
  RunMachine("Fig 17b: 4-socket, 96 threads", SimConfig::FourSocket96(), cat);

  std::printf(
      "\npaper shape: adaptive up to ~5x better than heuristic on skewed\n"
      "TPC-DS; the two machines show similar times (minimal NUMA effect);\n"
      "extra cores beyond a threshold do not improve execution further.\n");
  return 0;
}
