// Figure 1: response-time variation of heuristically parallelized TPC-H
// queries under a heavy concurrent CPU-bound workload, for DOP 8 / 16 / 32.
//
// Paper: three TPC-H queries on SF-10, 32 hyper-threaded cores, 0% idleness;
// no DOP dominates across queries. Here: three complex queries from the
// paper's subset (stand-ins for Q9/Q13/Q17), a 32-client background load.
#include "bench_util.h"
#include "workload/tpch.h"

using namespace apq;
using namespace apq::bench;

int main() {
  TpchConfig cfg;
  cfg.lineitem_rows = 60'000;
  Banner("Figure 1: DOP sensitivity under concurrent workload",
         "Fig 1 (heuristic plans, DOP in {8,16,32}, 32 clients)",
         "lineitem=" + std::to_string(cfg.lineitem_rows) +
             " seed=" + std::to_string(cfg.seed) + " sim=2x16c/32t");
  auto cat = Tpch::Generate(cfg);
  EngineConfig ecfg = PaperEngine();
  ecfg.exec_threads = 0;  // hardware truth: one worker per hardware thread
  Engine engine(ecfg);

  // Background: a mixed bag of heuristic plans invoked by 32 clients.
  std::vector<QueryPlan> bg_plans;
  for (const char* q : {"Q6", "Q14", "Q19"}) {
    auto serial = Tpch::Query(*cat, q);
    APQ_CHECK(serial.ok());
    auto hp = engine.HeuristicPlan(serial.ValueOrDie(), 32);
    APQ_CHECK(hp.ok());
    bg_plans.push_back(hp.MoveValueOrDie());
  }
  std::vector<const QueryPlan*> mix;
  for (const auto& p : bg_plans) mix.push_back(&p);
  // Steady load: client arrivals spaced so the machine stays busy for the
  // whole measurement (0% idleness) without a single thundering-herd bulge.
  auto bg = engine.BuildBackground(mix, 32, /*spacing_ns=*/0.4e6);
  APQ_CHECK(bg.ok());

  // Simulated times drive the paper shape; the "wall" column is hardware
  // truth: the evaluator's real wall-clock on this host, with plan nodes
  // executed on one worker per hardware thread (exec_threads = 0 above).
  TablePrinter table({"query", "dop 8 (ms)", "dop 16 (ms)", "dop 32 (ms)",
                      "best dop", "wall@32 (ms)"});
  for (const char* q : {"Q9", "Q8", "Q19"}) {
    auto serial = Tpch::Query(*cat, q);
    APQ_CHECK(serial.ok());
    std::vector<std::string> row = {q};
    double best = 1e300;
    int best_dop = 0;
    double wall32 = 0;
    for (int dop : {8, 16, 32}) {
      auto res = engine.RunHeuristic(serial.ValueOrDie(), dop,
                                     bg.ValueOrDie(), /*seed_salt=*/dop);
      APQ_CHECK(res.ok());
      double t = res.ValueOrDie().time_ns;
      row.push_back(Ms(t));
      if (dop == 32) wall32 = res.ValueOrDie().wall_ns;
      if (t < best) {
        best = t;
        best_dop = dop;
      }
    }
    row.push_back(std::to_string(best_dop));
    row.push_back(Ms(wall32));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\npaper shape: no single DOP wins for all queries under load; the\n"
      "best DOP varies per query, motivating feedback-driven adaptation.\n");
  return 0;
}
