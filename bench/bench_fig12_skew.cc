// Figure 12 (+ Fig 13's data): parallel select on a skewed column using
//   - static equi-range partitioning, 8 partitions / 8 threads,
//   - static 128 partitions / 8 threads (the work-stealing analogue: the
//     simulator's FIFO dataflow queue lets early finishers pull remaining
//     partitions, exactly the many-small-tasks stealing setup),
//   - dynamic (adaptively sized) partitions, 8 threads.
//
// Paper: 1000M tuples (8 GB); dynamic is up to 60% better than static-8 and
// competitive with static-128 stealing. Here: the Fig 13 layout at 2M rows.
#include "bench_util.h"
#include "workload/skew.h"

using namespace apq;
using namespace apq::bench;

int main() {
  SkewConfig scfg;
  scfg.rows = 2'000'000;
  Banner("Figure 12: skewed select, static vs work-stealing vs dynamic",
         "Fig 12 (+ Fig 13 data layout), 8 threads",
         "rows=" + std::to_string(scfg.rows) + " clusters=5 seed=" +
             std::to_string(scfg.seed));
  auto cat = GenerateSkewed(scfg);

  SimConfig sim = SimConfig::Cores(8, 8);
  EngineConfig cfg = EngineConfig::WithSim(sim);
  Engine engine(cfg);

  TablePrinter table({"% skew", "static 8p/8t (ms)", "static 128p/8t (ms)",
                      "dynamic 8t (ms)", "dyn vs static-8"});
  for (int pct : {10, 20, 30, 40, 50}) {
    auto plan = SkewedSelectPlan(*cat, scfg, pct);
    APQ_CHECK(plan.ok());
    auto hp8 = engine.RunHeuristic(plan.ValueOrDie(), 8, {}, pct);
    APQ_CHECK(hp8.ok());
    auto hp128 = engine.RunHeuristic(plan.ValueOrDie(), 128, {}, pct);
    APQ_CHECK(hp128.ok());
    auto ap = engine.RunAdaptive(plan.ValueOrDie());
    APQ_CHECK(ap.ok());
    double st8 = hp8.ValueOrDie().time_ns;
    double st128 = hp128.ValueOrDie().time_ns;
    double dyn = ap.ValueOrDie().gme_time_ns;
    table.AddRow({std::to_string(pct), Ms(st8), Ms(st128), Ms(dyn),
                  TablePrinter::Fmt((st8 - dyn) / st8 * 100, 1) + "% better"});
  }
  table.Print();
  std::printf(
      "\npaper shape: dynamic (adaptive) partitioning beats static-8 by up\n"
      "to ~60%% on skewed data and is competitive with the 128-partition\n"
      "work-stealing configuration.\n");
  return 0;
}
