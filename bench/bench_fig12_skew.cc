// Figure 12 (+ Fig 13's data): parallel select on a skewed column using
//   - static equi-range partitioning, 8 partitions / 8 threads,
//   - static 128 partitions / 8 threads (the work-stealing analogue: the
//     simulator's FIFO dataflow queue lets early finishers pull remaining
//     partitions, exactly the many-small-tasks stealing setup),
//   - dynamic (adaptively sized) partitions, 8 threads.
//
// Paper: 1000M tuples (8 GB); dynamic is up to 60% better than static-8 and
// competitive with static-128 stealing. Here: the Fig 13 layout at 2M rows.
//
// Second table: the skew-aware mutator (split points from the profiled
// per-morsel tuple histogram, MutatorConfig::skew_threshold) against the
// uniform-halving baseline (threshold = inf) — converged morsel skew, skew
// mutations taken, and the partition boundaries the process ended on.
//
// Usage: bench_fig12_skew [rows]   (default 2,000,000; CI smokes at 400,000)
#include <algorithm>
#include <cstdlib>

#include "bench_util.h"
#include "exec/compare.h"
#include "workload/skew.h"

using namespace apq;
using namespace apq::bench;

namespace {

AdaptiveOutcome RunAdaptiveOrDie(Engine& engine, const QueryPlan& plan) {
  auto out = engine.RunAdaptive(plan);
  APQ_CHECK(out.ok());
  return out.MoveValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  SkewConfig scfg;
  scfg.rows = 2'000'000;
  if (argc > 1) {
    const long long n = std::atoll(argv[1]);
    APQ_CHECK(n > 0);
    scfg.rows = static_cast<uint64_t>(n);
  }
  Banner("Figure 12: skewed select, static vs work-stealing vs dynamic",
         "Fig 12 (+ Fig 13 data layout), 8 threads",
         "rows=" + std::to_string(scfg.rows) + " clusters=5 seed=" +
             std::to_string(scfg.seed));
  auto cat = GenerateSkewed(scfg);

  SimConfig sim = SimConfig::Cores(8, 8);
  EngineConfig cfg = EngineConfig::WithSim(sim);
  Engine engine(cfg);

  TablePrinter table({"% skew", "static 8p/8t (ms)", "static 128p/8t (ms)",
                      "dynamic 8t (ms)", "dyn vs static-8"});
  for (int pct : {10, 20, 30, 40, 50}) {
    auto plan = SkewedSelectPlan(*cat, scfg, pct);
    APQ_CHECK(plan.ok());
    auto hp8 = engine.RunHeuristic(plan.ValueOrDie(), 8, {}, pct);
    APQ_CHECK(hp8.ok());
    auto hp128 = engine.RunHeuristic(plan.ValueOrDie(), 128, {}, pct);
    APQ_CHECK(hp128.ok());
    auto ap = engine.RunAdaptive(plan.ValueOrDie());
    APQ_CHECK(ap.ok());
    double st8 = hp8.ValueOrDie().time_ns;
    double st128 = hp128.ValueOrDie().time_ns;
    double dyn = ap.ValueOrDie().gme_time_ns;
    table.AddRow({std::to_string(pct), Ms(st8), Ms(st128), Ms(dyn),
                  TablePrinter::Fmt((st8 - dyn) / st8 * 100, 1) + "% better"});
  }
  table.Print();
  std::printf(
      "\npaper shape: dynamic (adaptive) partitioning beats static-8 by up\n"
      "to ~60%% on skewed data and is competitive with the 128-partition\n"
      "work-stealing configuration.\n");

  // ---- skew-aware mutator vs uniform halving -------------------------------
  // Morsel-driven execution profiles per-morsel tuple histograms; the
  // skew-aware mutator turns them into value-balanced split points while the
  // uniform baseline (skew_threshold = inf) keeps halving ranges. Converged
  // tuple skew (deterministic) is the headline; wall skew is hardware truth.
  std::printf(
      "\nskew-aware mutator (split points from per-morsel tuple histograms)\n"
      "vs uniform halving, morsel-driven profiles, results verified equal:\n");
  const uint64_t morsel_rows = std::max<uint64_t>(scfg.rows / 256, 1024);
  TablePrinter t2({"% skew", "unif tskew", "aware tskew", "unif wskew",
                   "aware wskew", "skew muts", "aware boundaries"});
  for (int pct : {20, 40, 60}) {
    auto plan = SkewedSelectPlan(*cat, scfg, pct);
    APQ_CHECK(plan.ok());

    EngineConfig base = EngineConfig::WithSim(sim);
    base.use_morsels = true;
    base.morsel_rows = morsel_rows;

    EngineConfig uniform_cfg = base;
    uniform_cfg.mutator.skew_threshold = 1e30;  // never trips: uniform splits
    Engine uniform_engine(uniform_cfg);
    AdaptiveOutcome uniform =
        RunAdaptiveOrDie(uniform_engine, plan.ValueOrDie());

    Engine aware_engine(base);  // default skew_threshold
    AdaptiveOutcome aware = RunAdaptiveOrDie(aware_engine, plan.ValueOrDie());

    APQ_CHECK(IntermediatesEqual(uniform.result, aware.result, 0.0));

    // The converged partitioning: select slices when the select was the
    // re-partitioned operator, else the fetch-join's (dedup'd — propagation
    // clones share slices).
    std::vector<RowRange> slices =
        PartitionSlices(aware.gme_plan, OpKind::kSelect);
    if (slices.empty()) {
      slices = PartitionSlices(aware.gme_plan, OpKind::kFetchJoin);
      slices.erase(std::unique(slices.begin(), slices.end()), slices.end());
    }
    std::string bounds;
    for (size_t i = 0; i < slices.size() && i < 4; ++i) {
      bounds += slices[i].ToString();
    }
    if (slices.size() > 4) {
      bounds += "... (" + std::to_string(slices.size()) + " pieces)";
    }
    if (bounds.empty()) bounds = "(unsplit)";
    t2.AddRow({std::to_string(pct),
               TablePrinter::Fmt(uniform.gme_profile.MaxMorselTupleSkew(), 2),
               TablePrinter::Fmt(aware.gme_profile.MaxMorselTupleSkew(), 2),
               TablePrinter::Fmt(uniform.gme_profile.MaxMorselSkew(), 2),
               TablePrinter::Fmt(aware.gme_profile.MaxMorselSkew(), 2),
               std::to_string(aware.skew_mutations), bounds});
  }
  t2.Print();
  std::printf(
      "\npaper shape: value-balanced re-partitioning cuts the converged\n"
      "intra-operator skew (tskew: deterministic tuple-weight imbalance,\n"
      "wskew: wall-clock max/mean) that uniform halving leaves behind,\n"
      "with bit-identical results.\n");
  return 0;
}
