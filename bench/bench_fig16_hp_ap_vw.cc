// Figure 16: heuristic vs adaptive vs Vectorwise-style parallelization on the
// TPC-H query subset, in isolated and 32-client concurrent settings.
//
// Paper: isolated HP ~ AP (Q9/Q19 degrade slightly for AP); under a 32-client
// concurrent workload, AP clearly wins (Q6/Q14 ~90% better, Q8 ~50%), and
// MonetDB-AP beats Vectorwise, whose admission control serializes the later
// clients' queries.
#include "bench_util.h"
#include "vwsim/vectorwise_sim.h"
#include "workload/tpch.h"

using namespace apq;
using namespace apq::bench;

int main() {
  TpchConfig cfg;
  cfg.lineitem_rows = 60'000;
  Banner("Figure 16: HP vs AP vs Vectorwise, isolated and concurrent",
         "Fig 16 (6 bars per query: HP/AP/VW x isolated/concurrent)",
         "lineitem=" + std::to_string(cfg.lineitem_rows) +
             " clients=32 sim=2x16c/32t");
  auto cat = Tpch::Generate(cfg);

  EngineConfig ecfg = PaperEngine();
  ecfg.convergence.max_runs = 220;  // bench wall-clock budget
  Engine engine(ecfg);
  VectorwiseSim vw;

  // Concurrent background: 32 clients running random simple+complex TPC-H
  // heuristic plans (the paper's homogeneous batch workload).
  std::vector<QueryPlan> bg_plans;
  for (const char* q : {"Q6", "Q14", "Q19", "Q4"}) {
    auto serial = Tpch::Query(*cat, q);
    APQ_CHECK(serial.ok());
    auto hp = engine.HeuristicPlan(serial.ValueOrDie(), 32);
    APQ_CHECK(hp.ok());
    bg_plans.push_back(hp.MoveValueOrDie());
  }
  std::vector<const QueryPlan*> mix;
  for (const auto& p : bg_plans) mix.push_back(&p);
  auto bg_or = engine.BuildBackground(mix, 32, /*spacing_ns=*/0.3e6);
  APQ_CHECK(bg_or.ok());
  const std::vector<SimTask>& bg = bg_or.ValueOrDie();

  TablePrinter table({"query", "HP iso (ms)", "AP iso (ms)", "VW iso (ms)",
                      "HP conc (ms)", "AP conc (ms)", "VW conc (ms)",
                      "AP conc gain vs HP"});
  for (const auto& name : Tpch::QueryNames()) {
    auto serial = Tpch::Query(*cat, name);
    APQ_CHECK(serial.ok());
    const QueryPlan& sp = serial.ValueOrDie();

    auto hp_iso = engine.RunHeuristic(sp);
    APQ_CHECK(hp_iso.ok());
    auto ap_iso = engine.RunAdaptive(sp);
    APQ_CHECK(ap_iso.ok());
    auto vw_iso = vw.Run(engine, sp, /*active_clients=*/1, true);
    APQ_CHECK(vw_iso.ok());

    auto hp_conc = engine.RunHeuristic(sp, -1, bg);
    APQ_CHECK(hp_conc.ok());
    auto ap_conc = engine.RunAdaptive(sp, bg);
    APQ_CHECK(ap_conc.ok());
    // Vectorwise under 32 concurrent clients: this query is a late client,
    // admission control grants it ~1 core.
    auto vw_conc = vw.Run(engine, sp, /*active_clients=*/32, false, bg);
    APQ_CHECK(vw_conc.ok());

    double hp_c = hp_conc.ValueOrDie().time_ns;
    double ap_c = ap_conc.ValueOrDie().gme_time_ns;
    table.AddRow({name, Ms(hp_iso.ValueOrDie().time_ns),
                  Ms(ap_iso.ValueOrDie().gme_time_ns),
                  Ms(vw_iso.ValueOrDie().time_ns), Ms(hp_c), Ms(ap_c),
                  Ms(vw_conc.ValueOrDie().time_ns),
                  TablePrinter::Fmt((hp_c - ap_c) / hp_c * 100, 0) + "%"});
  }
  table.Print();
  std::printf(
      "\npaper shape: isolated HP ~ AP; concurrent AP beats HP (up to ~90%%\n"
      "for the simple queries) and beats the admission-controlled VW.\n");
  return 0;
}
